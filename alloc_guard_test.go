package optimus

import (
	"math/rand"
	"testing"

	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/obs"
	"optimus/internal/psys"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// TestAllocationBudgets is the CI regression guard for the zero-allocation
// scheduler kernels: once warmed, the hot paths must stay within fixed
// allocs-per-op budgets. The budgets carry roughly 2× headroom over measured
// steady state, so they catch a reintroduced per-item allocation (which scales
// with input size) without flaking on incidental small ones.
func TestAllocationBudgets(t *testing.T) {
	t.Run("allocate", func(t *testing.T) {
		zoo := workload.Zoo()
		rng := rand.New(rand.NewSource(1))
		const nJobs = 100
		jobs := make([]*core.JobInfo, nJobs)
		for i := range jobs {
			m := zoo[i%len(zoo)]
			mode := speedfit.Mode(rng.Intn(2))
			jobs[i] = &core.JobInfo{
				ID:            i,
				RemainingWork: 1000 + rng.Float64()*100000,
				Speed:         func(p, w int) float64 { return m.TrueSpeed(mode, p, w) },
				WorkerRes:     m.WorkerRes,
				PSRes:         m.PSRes,
				MaxWorkers:    16,
				MaxPS:         16,
			}
		}
		capacity := cluster.Resources{
			cluster.CPU:    float64(nJobs) * 40,
			cluster.Memory: float64(nJobs) * 160,
		}
		st := core.NewAllocState()
		st.Allocate(jobs, capacity) // warm the scratch buffers
		allocs := testing.AllocsPerRun(10, func() {
			st.Allocate(jobs, capacity)
		})
		// A per-job or per-grant allocation would cost ≥100 here.
		if allocs > 25 {
			t.Errorf("warmed Allocate: %.1f allocs/op, budget 25", allocs)
		}

		// Disabled observability must be free: a switched-off tracer and
		// audit log attached to the same state may not add a single
		// allocation over the baseline just measured.
		st.Trace = obs.NewTracer(obs.DefaultSpanBuffer)
		st.Audit = obs.NewAuditLog(obs.DefaultAuditBuffer)
		st.Trace.SetEnabled(false)
		st.Audit.SetEnabled(false)
		st.Allocate(jobs, capacity)
		disabled := testing.AllocsPerRun(10, func() {
			st.Allocate(jobs, capacity)
		})
		if disabled > allocs {
			t.Errorf("disabled tracing costs allocations: %.1f allocs/op vs %.1f baseline", disabled, allocs)
		}
	})

	t.Run("place", func(t *testing.T) {
		zoo := workload.Zoo()
		rng := rand.New(rand.NewSource(3))
		const nJobs = 80
		jobs := make([]*core.JobInfo, nJobs)
		for i := range jobs {
			m := zoo[i%len(zoo)]
			mode := speedfit.Mode(rng.Intn(2))
			jobs[i] = &core.JobInfo{
				ID:            i,
				RemainingWork: 1000 + rng.Float64()*100000,
				Speed:         func(p, w int) float64 { return m.TrueSpeed(mode, p, w) },
				WorkerRes:     m.WorkerRes,
				PSRes:         m.PSRes,
				MaxWorkers:    16,
				MaxPS:         16,
			}
		}
		cl := cluster.Uniform(20, cluster.Resources{
			cluster.CPU: 64, cluster.Memory: 256,
		})
		ast := core.NewAllocState()
		alloc := ast.Allocate(jobs, cl.Capacity())
		reqs := make([]core.PlacementRequest, 0, nJobs)
		for _, in := range jobs {
			a := alloc[in.ID]
			if a.PS > 0 && a.Workers > 0 {
				reqs = append(reqs, core.PlacementRequest{
					JobID: in.ID, Alloc: a,
					WorkerRes: in.WorkerRes, PSRes: in.PSRes,
				})
			}
		}
		st := core.NewPlaceState()
		cl.ResetAll()
		st.Place(reqs, cl) // warm the scratch buffers
		allocs := testing.AllocsPerRun(10, func() {
			cl.ResetAll()
			st.Place(reqs, cl)
		})
		// The warmed placer stages rows into reusable scratch and materializes
		// the caller-owned result in one arena pass: a map plus three backing
		// arrays, independent of request and node count (the pre-arena placer
		// cost ~253 here, one allocation per placement row). Budget leaves
		// room for map growth internals without tolerating per-row costs.
		if allocs > 30 {
			t.Errorf("warmed Place: %.1f allocs/op, budget 30", allocs)
		}
	})

	t.Run("cells-interval", func(t *testing.T) {
		zoo := workload.Zoo()
		rng := rand.New(rand.NewSource(2))
		const nJobs = 60
		jobs := make([]*core.JobInfo, nJobs)
		for i := range jobs {
			m := zoo[i%len(zoo)]
			mode := speedfit.Mode(rng.Intn(2))
			jobs[i] = &core.JobInfo{
				ID:            i + 1,
				RemainingWork: 1000 + rng.Float64()*100000,
				Speed:         func(p, w int) float64 { return m.TrueSpeed(mode, p, w) },
				WorkerRes:     m.WorkerRes,
				PSRes:         m.PSRes,
				MaxWorkers:    16,
				MaxPS:         16,
			}
		}
		cl := cluster.Uniform(12, cluster.Resources{
			cluster.CPU: 48, cluster.Memory: 192,
		})
		capacity := cl.Capacity()
		ms := cells.New(cells.Options{Cells: 3})
		reqs := make([]core.PlacementRequest, 0, nJobs)
		interval := func() {
			alloc := ms.Allocate(jobs, capacity)
			cl.ResetAll()
			reqs = reqs[:0]
			for _, in := range jobs {
				a := alloc[in.ID]
				if a.PS > 0 && a.Workers > 0 {
					reqs = append(reqs, core.PlacementRequest{
						JobID: in.ID, Alloc: a,
						WorkerRes: in.WorkerRes, PSRes: in.PSRes,
					})
				}
			}
			ms.Place(reqs, cl)
		}
		for i := 0; i < 3; i++ { // warm scratch, bind store, settle assignments
			interval()
		}
		allocs := testing.AllocsPerRun(10, interval)
		// A steady-state interval's unavoidable costs are the kernels'
		// caller-owned result maps/slices plus the per-cell goroutine
		// fan-out — all O(placed jobs), none O(rounds). Budget carries ~2×
		// headroom over the measured steady state (~370) so a reintroduced
		// per-node or per-task allocation (≥ thousands here) still trips it.
		if allocs > 700 {
			t.Errorf("steady-state cells interval: %.1f allocs/op, budget 700", allocs)
		}
	})

	t.Run("lossfit", func(t *testing.T) {
		m := workload.ZooByName("seq2seq")
		f := &lossfit.Fitter{OutlierWindow: 5}
		for i := 0; i < 200; i++ {
			e := float64(i + 1)
			if err := f.Add(e, m.TrueLoss(e)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := f.Fit(); err != nil { // warm the scratch buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := f.Fit(); err != nil {
				t.Fatal(err)
			}
		})
		// The old fitter allocated per candidate asymptote (41 grid points ×
		// matrix + NNLS scratch ≈ 9500); a warmed refit must stay near zero.
		if allocs > 20 {
			t.Errorf("warmed lossfit refit: %.1f allocs/op, budget 20", allocs)
		}
	})

	t.Run("psstep-tcp", func(t *testing.T) {
		data, _, err := psys.SyntheticRegression(512, 64, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		job, err := psys.StartJob(psys.JobConfig{
			Model: psys.LinearRegression{Features: 64}, Data: data,
			Mode: speedfit.Sync, Workers: 2, Servers: 2,
			BatchSize: 32, LR: 0.05, Transport: psys.TransportTCP, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer job.Stop()
		if _, err := job.RunSteps(1); err != nil { // warm pools and pull buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := job.RunSteps(1); err != nil {
				t.Fatal(err)
			}
		})
		// The gob transport cost ~203 allocs/step; the framed transport leaves
		// mostly the engine's per-step stat bookkeeping (~35).
		if allocs > 70 {
			t.Errorf("warmed TCP training step: %.1f allocs/op, budget 70", allocs)
		}
	})
}

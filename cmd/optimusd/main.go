// Command optimusd runs the Optimus scheduler as a long-lived daemon: jobs
// are submitted over HTTP, rescheduled every interval by the §4
// allocator/placer driven by §3 online-fitted models, and observable via a
// streaming event feed and Prometheus metrics.
//
// Usage:
//
//	optimusd -addr :8080                         # paper testbed cluster
//	optimusd -nodes 20 -interval 600 -tick 1s    # 20 uniform nodes, 600x time
//	optimusd -snapshot state.json -restore       # resume a previous run
//	optimusd -wal-dir ./wal -fsync group         # durable write-ahead log
//	optimusd -wal-dir ./wal -follow              # warm-standby follower
//	optimusd -trace=false                        # disable decision tracing
//	optimusd -pprof-addr localhost:6060          # expose net/http/pprof
//	optimusd -version                            # print build info and exit
//
// Durability (-wal-dir): every acked submission, cancellation and scheduling
// round is framed into a segmented write-ahead log before it takes effect;
// after a crash (kill -9 included) the daemon replays the log and resumes
// with byte-identical job state. -fsync picks the durability/latency trade:
// "each" (fsync per record), "group" (concurrent acks share one fsync — the
// default) or "off" (benchmarks only).
//
// High availability (-follow): a second optimusd pointed at the same
// -wal-dir runs as a warm standby — it tails the leader's log into a live
// engine, serves all read endpoints (writes get 503 + the leader hint), and
// when the leader's lease (a file next to the log) expires it takes over
// within one -lease-ttl: drains the tail, repairs any torn record, bumps the
// lease term, and starts scheduling. Admission is exactly-once across the
// cutover because the log is the admission ledger.
//
// Tracing (-trace, on by default) records per-round scheduler spans and the
// per-job decision audit, served at GET /v1/trace (Chrome trace-event JSON)
// and GET /v1/jobs/{id}/explain. Profiling (-pprof-addr, off by default)
// starts a second listener serving only the pprof handlers, so profiles
// never share a port with the public API.
//
// Observability: an always-on flight recorder (internal/obs) keeps the last
// few thousand structured engine/WAL/HA events in a ring. GET /readyz is the
// traffic gate (per-component checks, distinct from /healthz liveness) and
// GET /debug/bundle packages the flight tail, goroutine stacks, a metrics
// snapshot and build info into one JSON document. The same bundle is written
// to disk next to the WAL on fail-stop (a lost leader lease) and on SIGQUIT,
// so a dead daemon leaves its black box behind.
//
// A graceful shutdown (SIGINT/SIGTERM) drains in-flight requests, writes a
// WAL checkpoint when -wal-dir is set, and, when -snapshot is set, writes
// the full job state so a later -restore resumes every job with its fitted
// model state and progress intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/ha"
	"optimus/internal/obs"
	"optimus/internal/serve"
	"optimus/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		portfile = flag.String("portfile", "", "write the bound address to this file (for scripts using -addr :0)")
		nodes    = flag.Int("nodes", 0, "uniform cluster size; 0 uses the paper's 13-node testbed")
		cellsN   = flag.Int("cells", 1, "scheduling cells; >1 runs the sharded shared-state multi-scheduler with optimistic commits")
		interval = flag.Float64("interval", 600, "simulated seconds of training per scheduling round")
		tick     = flag.Duration("tick", time.Second, "wall-clock period between rounds (tick < interval·1s runs faster than real time)")
		seed     = flag.Int64("seed", 1, "PRNG seed for observation noise and stragglers")
		maxJobs  = flag.Int("max-jobs", 4096, "admission-control cap on live jobs")
		snapshot = flag.String("snapshot", "", "write a JSON state snapshot here on shutdown")
		restore  = flag.Bool("restore", false, "resume from the -snapshot file at startup (missing/empty file starts fresh)")

		walDir     = flag.String("wal-dir", "", "write-ahead log directory; enables crash-consistent durability")
		fsyncMode  = flag.String("fsync", "group", "WAL fsync policy: each, group or off")
		follow     = flag.Bool("follow", false, "run as a warm-standby follower tailing -wal-dir; takes over when the leader's lease expires")
		leaseTTL   = flag.Duration("lease-ttl", 5*time.Second, "leader lease validity window")
		haID       = flag.String("ha-id", "", "identity in the leader lease (default host:pid)")
		ckptRounds = flag.Int("wal-checkpoint-rounds", 0, "rounds between WAL snapshot checkpoints (0 uses the serve default, negative disables)")

		stragglerProb = flag.Float64("straggler-prob", 0, "per-job per-round straggler probability (§5.2)")
		speedNoise    = flag.Float64("speed-noise", 0.03, "relative speed observation noise")
		lossNoise     = flag.Float64("loss-noise", 0.03, "relative loss observation noise")
		scalingBase   = flag.Float64("scaling-base", 0, "fixed scaling pause in simulated seconds (§5.4)")

		traceOn     = flag.Bool("trace", true, "record scheduler spans and the decision audit (GET /v1/trace, /v1/jobs/{id}/explain)")
		traceBuffer = flag.Int("trace-buffer", 0, "span ring size (0 uses the obs package default)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
		logLevel    = flag.String("log-level", "info", "stderr log level: debug, info, warn or error (the flight recorder keeps all levels)")
		version     = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("optimusd", obs.Build())
		return
	}
	// The flight recorder outlives any single subsystem: the logger tees every
	// line into it, the daemon/lease/tailer record their own events, and the
	// debug bundle dumps it. One ring per process.
	flight := obs.NewFlightRecorder(0)
	lg := obs.NewLogger(os.Stderr, "optimusd", flight)
	lg.SetTimestamps(true)
	lvl, err := obs.ParseSeverity(*logLevel)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	lg.SetLevel(lvl)
	fsync, err := wal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	id := *haID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	opts := options{
		addr: *addr, portfile: *portfile, snapshot: *snapshot, restore: *restore,
		pprofAddr: *pprofAddr,
		nodes:     *nodes,
		walDir:    *walDir, fsync: fsync, follow: *follow,
		leaseTTL: *leaseTTL, haID: id,
		cfg: serve.Config{
			Interval:            *interval,
			Tick:                *tick,
			Seed:                *seed,
			Cells:               *cellsN,
			MaxJobs:             *maxJobs,
			StragglerProb:       *stragglerProb,
			SpeedNoise:          *speedNoise,
			LossNoise:           *lossNoise,
			ScalingBase:         *scalingBase,
			Trace:               *traceOn,
			TraceBuffer:         *traceBuffer,
			WALCheckpointRounds: *ckptRounds,
			Flight:              flight,
		},
	}
	if err := run(opts, lg); err != nil {
		lg.Fatalf("%v", err)
	}
}

// options is everything main parses from flags: the daemon Config plus the
// process-level concerns (listeners, snapshot files, the WAL/HA role) that
// wrap it.
type options struct {
	addr, portfile string
	snapshot       string
	restore        bool
	pprofAddr      string
	nodes          int
	walDir         string
	fsync          wal.FsyncPolicy
	follow         bool
	leaseTTL       time.Duration
	haID           string
	cfg            serve.Config
}

// bundlePath names an on-disk debug bundle next to the WAL (or in the
// working directory for a WAL-less daemon), tagged with the trigger and pid.
func bundlePath(walDir, trigger string) string {
	dir := walDir
	if dir == "" {
		dir = "."
	}
	return filepath.Join(dir, fmt.Sprintf("bundle-%s-%d.json", trigger, os.Getpid()))
}

func run(opts options, lg *obs.Logger) error {
	flight := lg.Flight()
	var c *cluster.Cluster
	if opts.nodes > 0 {
		c = cluster.Uniform(opts.nodes, cluster.Resources{
			cluster.CPU: 32, cluster.Memory: 128,
			cluster.GPU: 4, cluster.Bandwidth: 10,
		})
	} else {
		c = cluster.Testbed()
	}
	opts.cfg.Cluster = c

	d, err := serve.New(opts.cfg)
	if err != nil {
		return err
	}

	// A fatal log call (lost lease, unrecoverable fault) writes the black box
	// to disk before the process exits: fail-stop leaves evidence behind.
	lg.SetOnFatal(func(reason string) {
		d.FailStop(reason)
		p := bundlePath(opts.walDir, "failstop")
		if err := d.WriteBundle(p, "fail-stop: "+reason); err != nil {
			fmt.Fprintf(os.Stderr, "optimusd: fail-stop bundle: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "optimusd: fail-stop bundle written to %s\n", p)
		}
	})

	// SIGQUIT dumps a bundle without dying — the live-incident counterpart of
	// the fail-stop bundle.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			p := bundlePath(opts.walDir, "sigquit")
			if err := d.WriteBundle(p, "sigquit"); err != nil {
				lg.Errorf("sigquit bundle: %v", err)
			} else {
				lg.Infof("sigquit bundle written to %s", p)
			}
		}
	}()
	defer signal.Stop(sigq)

	var lease *ha.Lease
	if opts.walDir != "" {
		if err := os.MkdirAll(opts.walDir, 0o755); err != nil {
			return fmt.Errorf("wal dir: %w", err)
		}
		lease = &ha.Lease{
			Path: filepath.Join(opts.walDir, "LEASE"),
			ID:   opts.haID, TTL: opts.leaseTTL,
			Flight: flight,
		}
	}
	if opts.follow && lease == nil {
		return errors.New("-follow requires -wal-dir")
	}

	// Leader (or plain single-node) startup: claim the lease first, then
	// rebuild state — WAL history when present, else the -restore snapshot.
	var term uint64 = 1
	var wlog *wal.Log
	if !opts.follow {
		if lease != nil {
			st, ok, err := lease.TryAcquire()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("leader lease held by %q (term %d) until %s; start with -follow to run as a warm standby",
					st.Holder, st.Term, st.Expires.Format(time.RFC3339))
			}
			term = st.Term
			defer lease.Release()
		}
		restored, err := recoverState(opts, d, lg)
		if err != nil {
			return err
		}
		if opts.walDir != "" {
			wlog, err = wal.Open(wal.Options{Dir: opts.walDir, Fsync: opts.fsync,
				Flight: flight})
			if err != nil {
				return err
			}
			defer wlog.Close()
			d.AttachWAL(wlog)
			if restored {
				// Anchor the snapshot-restored state so the log is
				// self-contained from record one.
				if err := d.WALCheckpoint(); err != nil {
					return fmt.Errorf("anchoring restored state: %w", err)
				}
			}
		}
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if opts.portfile != "" {
		if err := os.WriteFile(opts.portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing portfile: %w", err)
		}
	}
	role := "leader"
	if opts.follow {
		role = "follower"
	} else if opts.walDir == "" {
		role = "standalone"
	}
	lg.Infof("%s", obs.Build())
	lg.Infof("listening on %s (%s, %d nodes, %d cells, interval %gs, tick %s)",
		ln.Addr(), role, c.Len(), max(opts.cfg.Cells, 1), opts.cfg.Interval, opts.cfg.Tick)

	if opts.pprofAddr != "" {
		pln, err := net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// An explicit mux rather than http.DefaultServeMux: the profiling
		// listener serves pprof and nothing else.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				lg.Errorf("pprof server: %v", err)
			}
		}()
		defer pln.Close()
		lg.Infof("pprof on http://%s/debug/pprof/", pln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The HTTP surface is up in both roles: a follower serves every read
	// endpoint (writes get 503 ErrNotLeader) while it tails the log.
	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if opts.follow {
		newTerm, promoted, err := followLoop(ctx, d, opts, lease, lg)
		if err != nil {
			shutdownHTTP(srv, lg)
			return err
		}
		if !promoted { // clean shutdown while still following
			shutdownHTTP(srv, lg)
			return nil
		}
		term = newTerm
		// Take over: open-for-write repairs the dead leader's torn tail,
		// then the promotion is announced in the log itself.
		wlog, err = wal.Open(wal.Options{Dir: opts.walDir, Fsync: opts.fsync,
			Flight: flight})
		if err != nil {
			shutdownHTTP(srv, lg)
			return fmt.Errorf("takeover: %w", err)
		}
		defer wlog.Close()
		defer lease.Release()
		d.AttachWAL(wlog)
		d.SetReadOnly(false)
		lg.Infof("promoted to leader at term %d (sim time %.0fs, %d rounds)",
			term, d.Now(), d.Rounds())
	}

	if wlog != nil {
		if err := d.WALAppendMembership(opts.haID, term, "leader"); err != nil {
			shutdownHTTP(srv, lg)
			return err
		}
		d.SetHAStatus(serve.HAStatus{Role: "leader", ID: opts.haID, Term: term,
			LeaseHolder: opts.haID})
		go renewLoop(ctx, lease, lg)
	}

	// Scheduler event loop.
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		d.Run(ctx)
	}()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	lg.Infof("shutting down")
	shutdownHTTP(srv, lg)
	<-loopDone

	if wlog != nil {
		if err := d.WALCheckpoint(); err != nil {
			lg.Errorf("wal checkpoint: %v", err)
		}
	}
	if opts.snapshot != "" {
		f, err := os.Create(opts.snapshot)
		if err != nil {
			return fmt.Errorf("creating snapshot: %w", err)
		}
		if err := d.WriteSnapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("writing snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		lg.Infof("state saved to %s (sim time %.0fs, %d rounds)",
			opts.snapshot, d.Now(), d.Rounds())
	}
	return nil
}

func shutdownHTTP(srv *http.Server, lg *obs.Logger) {
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		lg.Errorf("http shutdown: %v", err)
	}
}

// recoverState rebuilds the daemon at leader startup: WAL replay when the
// log has history, else the -restore snapshot (which then gets anchored as
// the log's first checkpoint). Mixing both is refused — the log already
// supersedes any older snapshot. Returns whether a snapshot was restored.
func recoverState(opts options, d *serve.Daemon, lg *obs.Logger) (bool, error) {
	var replayed serve.WALReplayStats
	if opts.walDir != "" {
		var err error
		replayed, err = d.ReplayWAL(opts.walDir)
		if err != nil {
			return false, fmt.Errorf("wal replay: %w", err)
		}
		if replayed.Records > 0 {
			lg.Infof("replayed %d wal records (last seq %d, checkpoint %d, torn tail: %v): sim time %.0fs, %d rounds",
				replayed.Records, replayed.AppliedSeq, replayed.Checkpoint,
				replayed.Torn, d.Now(), d.Rounds())
		}
		if replayed.Duplicates > 0 {
			return false, fmt.Errorf("wal replay: %d duplicate admissions — log corrupt", replayed.Duplicates)
		}
	}
	if !opts.restore {
		return false, nil
	}
	if opts.snapshot == "" {
		return false, errors.New("-restore requires -snapshot")
	}
	if replayed.Records > 0 {
		return false, errors.New("-restore refused: -wal-dir already has history (the log supersedes the snapshot; drop one)")
	}
	f, err := os.Open(opts.snapshot)
	if errors.Is(err, os.ErrNotExist) {
		lg.Warnf("-restore: snapshot %s does not exist; starting fresh", opts.snapshot)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("opening snapshot: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		lg.Warnf("-restore: snapshot %s is empty; starting fresh", opts.snapshot)
		return false, nil
	}
	if err := d.Restore(f); err != nil {
		return false, err
	}
	lg.Infof("restored state from %s (sim time %.0fs, %d rounds)",
		opts.snapshot, d.Now(), d.Rounds())
	return true, nil
}

// followLoop tails the leader's log into the warm standby until the leader
// lease expires (→ returns the new term and true) or ctx is cancelled
// (→ false). The poll period is a fraction of the lease TTL so takeover
// lands well within one TTL of the leader dying.
func followLoop(ctx context.Context, d *serve.Daemon, opts options, lease *ha.Lease, lg *obs.Logger) (uint64, bool, error) {
	applier := d.NewWALApplier()
	tailer := &ha.Tailer{Dir: opts.walDir, Flight: lg.Flight()}
	d.SetReadOnly(true)
	d.SetHAStatus(serve.HAStatus{Role: "follower", ID: opts.haID})
	poll := opts.leaseTTL / 5
	if poll < 20*time.Millisecond {
		poll = 20 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	var lag uint64
	for {
		select {
		case <-ctx.Done():
			return 0, false, nil
		case <-t.C:
		}
		n, torn, err := tailer.Poll(applier.Apply)
		if err != nil {
			return 0, false, fmt.Errorf("follow: %w", err)
		}
		// A torn tail mid-follow is the leader mid-write: the records behind
		// the tear count as lag until a later poll reads them whole.
		if torn {
			lag++
		} else {
			lag = 0
		}
		st, err := lease.Read()
		if err != nil {
			return 0, false, err
		}
		if n > 0 || st.Term > 0 {
			d.SetHAStatus(serve.HAStatus{Role: "follower", ID: opts.haID,
				Term: st.Term, LeaseHolder: st.Holder,
				AppliedSeq: applier.AppliedSeq(), LagRecords: lag})
		}
		if st.Held(time.Now()) {
			continue
		}
		got, ok, err := lease.TryAcquire()
		if err != nil {
			return 0, false, err
		}
		if !ok {
			continue // another standby won; keep following
		}
		// Drain whatever the dead leader managed to write, then promote.
		if _, _, err := tailer.Poll(applier.Apply); err != nil {
			return 0, false, fmt.Errorf("takeover drain: %w", err)
		}
		applier.Finish()
		if dups := applier.Duplicates(); dups > 0 {
			return 0, false, fmt.Errorf("takeover: %d duplicate admissions in log", dups)
		}
		lg.Infof("leader lease (holder %q) expired: taking over at term %d after %d applied records",
			st.Holder, got.Term, applier.Records())
		return got.Term, true, nil
	}
}

// renewLoop keeps the leader lease alive and fail-stops the process the
// moment renewal discovers another holder: a deposed leader must never ack
// another write, or the new leader's history would fork. The fatal path runs
// the logger's OnFatal hook, which writes the fail-stop debug bundle before
// the process exits.
func renewLoop(ctx context.Context, lease *ha.Lease, lg *obs.Logger) {
	t := time.NewTicker(lease.TTL / 3)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := lease.Renew(); err != nil {
				lg.Fatalf("leader lease lost (%v): fail-stop", err)
			}
		}
	}
}

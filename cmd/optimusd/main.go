// Command optimusd runs the Optimus scheduler as a long-lived daemon: jobs
// are submitted over HTTP, rescheduled every interval by the §4
// allocator/placer driven by §3 online-fitted models, and observable via a
// streaming event feed and Prometheus metrics.
//
// Usage:
//
//	optimusd -addr :8080                         # paper testbed cluster
//	optimusd -nodes 20 -interval 600 -tick 1s    # 20 uniform nodes, 600x time
//	optimusd -snapshot state.json -restore       # resume a previous run
//
// A graceful shutdown (SIGINT/SIGTERM) drains in-flight requests and, when
// -snapshot is set, writes the full job state so a later -restore resumes
// every job with its fitted model state and progress intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimusd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		portfile = flag.String("portfile", "", "write the bound address to this file (for scripts using -addr :0)")
		nodes    = flag.Int("nodes", 0, "uniform cluster size; 0 uses the paper's 13-node testbed")
		interval = flag.Float64("interval", 600, "simulated seconds of training per scheduling round")
		tick     = flag.Duration("tick", time.Second, "wall-clock period between rounds (tick < interval·1s runs faster than real time)")
		seed     = flag.Int64("seed", 1, "PRNG seed for observation noise and stragglers")
		maxJobs  = flag.Int("max-jobs", 4096, "admission-control cap on live jobs")
		snapshot = flag.String("snapshot", "", "write a JSON state snapshot here on shutdown")
		restore  = flag.Bool("restore", false, "resume from the -snapshot file at startup")

		stragglerProb = flag.Float64("straggler-prob", 0, "per-job per-round straggler probability (§5.2)")
		speedNoise    = flag.Float64("speed-noise", 0.03, "relative speed observation noise")
		lossNoise     = flag.Float64("loss-noise", 0.03, "relative loss observation noise")
		scalingBase   = flag.Float64("scaling-base", 0, "fixed scaling pause in simulated seconds (§5.4)")
	)
	flag.Parse()
	if err := run(*addr, *portfile, *nodes, *interval, *tick, *seed, *maxJobs,
		*snapshot, *restore, *stragglerProb, *speedNoise, *lossNoise, *scalingBase); err != nil {
		log.Fatal(err)
	}
}

func run(addr, portfile string, nodes int, interval float64, tick time.Duration,
	seed int64, maxJobs int, snapshot string, restore bool,
	stragglerProb, speedNoise, lossNoise, scalingBase float64) error {

	var c *cluster.Cluster
	if nodes > 0 {
		c = cluster.Uniform(nodes, cluster.Resources{
			cluster.CPU: 32, cluster.Memory: 128,
			cluster.GPU: 4, cluster.Bandwidth: 10,
		})
	} else {
		c = cluster.Testbed()
	}

	d, err := serve.New(serve.Config{
		Cluster:       c,
		Interval:      interval,
		Tick:          tick,
		Seed:          seed,
		MaxJobs:       maxJobs,
		StragglerProb: stragglerProb,
		SpeedNoise:    speedNoise,
		LossNoise:     lossNoise,
		ScalingBase:   scalingBase,
	})
	if err != nil {
		return err
	}

	if restore {
		if snapshot == "" {
			return errors.New("-restore requires -snapshot")
		}
		f, err := os.Open(snapshot)
		if err != nil {
			return fmt.Errorf("opening snapshot: %w", err)
		}
		err = d.Restore(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("restored state from %s (sim time %.0fs, %d rounds)",
			snapshot, d.Now(), d.Rounds())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if portfile != "" {
		if err := os.WriteFile(portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing portfile: %w", err)
		}
	}
	log.Printf("listening on %s (%d nodes, interval %gs, tick %s)",
		ln.Addr(), c.Len(), interval, tick)

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Scheduler event loop.
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		d.Run(ctx)
	}()

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	<-loopDone

	if snapshot != "" {
		f, err := os.Create(snapshot)
		if err != nil {
			return fmt.Errorf("creating snapshot: %w", err)
		}
		if err := d.WriteSnapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("writing snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("state saved to %s (sim time %.0fs, %d rounds)",
			snapshot, d.Now(), d.Rounds())
	}
	return nil
}

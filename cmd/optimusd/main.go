// Command optimusd runs the Optimus scheduler as a long-lived daemon: jobs
// are submitted over HTTP, rescheduled every interval by the §4
// allocator/placer driven by §3 online-fitted models, and observable via a
// streaming event feed and Prometheus metrics.
//
// Usage:
//
//	optimusd -addr :8080                         # paper testbed cluster
//	optimusd -nodes 20 -interval 600 -tick 1s    # 20 uniform nodes, 600x time
//	optimusd -snapshot state.json -restore       # resume a previous run
//	optimusd -trace=false                        # disable decision tracing
//	optimusd -pprof-addr localhost:6060          # expose net/http/pprof
//
// Tracing (-trace, on by default) records per-round scheduler spans and the
// per-job decision audit, served at GET /v1/trace (Chrome trace-event JSON)
// and GET /v1/jobs/{id}/explain. Profiling (-pprof-addr, off by default)
// starts a second listener serving only the pprof handlers, so profiles
// never share a port with the public API.
//
// A graceful shutdown (SIGINT/SIGTERM) drains in-flight requests and, when
// -snapshot is set, writes the full job state so a later -restore resumes
// every job with its fitted model state and progress intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimusd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address (use :0 for a random port)")
		portfile = flag.String("portfile", "", "write the bound address to this file (for scripts using -addr :0)")
		nodes    = flag.Int("nodes", 0, "uniform cluster size; 0 uses the paper's 13-node testbed")
		cellsN   = flag.Int("cells", 1, "scheduling cells; >1 runs the sharded shared-state multi-scheduler with optimistic commits")
		interval = flag.Float64("interval", 600, "simulated seconds of training per scheduling round")
		tick     = flag.Duration("tick", time.Second, "wall-clock period between rounds (tick < interval·1s runs faster than real time)")
		seed     = flag.Int64("seed", 1, "PRNG seed for observation noise and stragglers")
		maxJobs  = flag.Int("max-jobs", 4096, "admission-control cap on live jobs")
		snapshot = flag.String("snapshot", "", "write a JSON state snapshot here on shutdown")
		restore  = flag.Bool("restore", false, "resume from the -snapshot file at startup")

		stragglerProb = flag.Float64("straggler-prob", 0, "per-job per-round straggler probability (§5.2)")
		speedNoise    = flag.Float64("speed-noise", 0.03, "relative speed observation noise")
		lossNoise     = flag.Float64("loss-noise", 0.03, "relative loss observation noise")
		scalingBase   = flag.Float64("scaling-base", 0, "fixed scaling pause in simulated seconds (§5.4)")

		traceOn     = flag.Bool("trace", true, "record scheduler spans and the decision audit (GET /v1/trace, /v1/jobs/{id}/explain)")
		traceBuffer = flag.Int("trace-buffer", 0, "span ring size (0 uses the obs package default)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	opts := options{
		addr: *addr, portfile: *portfile, snapshot: *snapshot, restore: *restore,
		pprofAddr: *pprofAddr,
		nodes:     *nodes,
		cfg: serve.Config{
			Interval:      *interval,
			Tick:          *tick,
			Seed:          *seed,
			Cells:         *cellsN,
			MaxJobs:       *maxJobs,
			StragglerProb: *stragglerProb,
			SpeedNoise:    *speedNoise,
			LossNoise:     *lossNoise,
			ScalingBase:   *scalingBase,
			Trace:         *traceOn,
			TraceBuffer:   *traceBuffer,
		},
	}
	if err := run(opts); err != nil {
		log.Fatal(err)
	}
}

// options is everything main parses from flags: the daemon Config plus the
// process-level concerns (listeners, snapshot files) that wrap it.
type options struct {
	addr, portfile string
	snapshot       string
	restore        bool
	pprofAddr      string
	nodes          int
	cfg            serve.Config
}

func run(opts options) error {
	var c *cluster.Cluster
	if opts.nodes > 0 {
		c = cluster.Uniform(opts.nodes, cluster.Resources{
			cluster.CPU: 32, cluster.Memory: 128,
			cluster.GPU: 4, cluster.Bandwidth: 10,
		})
	} else {
		c = cluster.Testbed()
	}
	opts.cfg.Cluster = c

	d, err := serve.New(opts.cfg)
	if err != nil {
		return err
	}

	snapshot := opts.snapshot
	if opts.restore {
		if snapshot == "" {
			return errors.New("-restore requires -snapshot")
		}
		f, err := os.Open(snapshot)
		if err != nil {
			return fmt.Errorf("opening snapshot: %w", err)
		}
		err = d.Restore(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("restored state from %s (sim time %.0fs, %d rounds)",
			snapshot, d.Now(), d.Rounds())
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	if opts.portfile != "" {
		if err := os.WriteFile(opts.portfile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing portfile: %w", err)
		}
	}
	log.Printf("listening on %s (%d nodes, %d cells, interval %gs, tick %s)",
		ln.Addr(), c.Len(), max(opts.cfg.Cells, 1), opts.cfg.Interval, opts.cfg.Tick)

	if opts.pprofAddr != "" {
		pln, err := net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// An explicit mux rather than http.DefaultServeMux: the profiling
		// listener serves pprof and nothing else.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		defer pln.Close()
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Scheduler event loop.
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		d.Run(ctx)
	}()

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	<-loopDone

	if snapshot != "" {
		f, err := os.Create(snapshot)
		if err != nil {
			return fmt.Errorf("creating snapshot: %w", err)
		}
		if err := d.WriteSnapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("writing snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("state saved to %s (sim time %.0fs, %d rounds)",
			snapshot, d.Now(), d.Rounds())
	}
	return nil
}

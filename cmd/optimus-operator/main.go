// Command optimus-operator runs the complete Optimus system against real
// components: training jobs on the psys parameter-server framework, §3
// models fitted from their live telemetry, §4.1 marginal-gain allocation
// each interval, §5.4 checkpoint-based rescaling, and pod groups bound on
// the mini Kubernetes control plane by the §4.2 scheduler.
//
// Usage:
//
//	optimus-operator -nodes 3 -jobs 3 -interval 300ms
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/kube"
	"optimus/internal/operator"
	"optimus/internal/speedfit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimus-operator: ")
	var (
		nodes    = flag.Int("nodes", 3, "cluster size")
		jobs     = flag.Int("jobs", 3, "jobs to submit")
		interval = flag.Duration("interval", 300*time.Millisecond,
			"scheduling interval (paper: 10 minutes; shrunk for the demo)")
		maxCycles   = flag.Int("max-cycles", 200, "stop after this many intervals")
		metricsAddr = flag.String("metrics-addr", "",
			"serve Prometheus metrics on this address (e.g. :9090); empty disables")
	)
	flag.Parse()

	api := kube.NewAPIServer()
	for i := 0; i < *nodes; i++ {
		err := api.RegisterNode(kube.Node{
			Name: fmt.Sprintf("node-%d", i),
			Capacity: cluster.Resources{
				cluster.CPU: 16, cluster.Memory: 64,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	op := operator.New(api, "/tmp")
	defer op.Shutdown()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := op.WritePrometheus(w); err != nil {
				log.Printf("metrics export: %v", err)
			}
		})
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	specs := []string{"linreg:24", "mlp:8x12", "logreg:16"}
	for id := 0; id < *jobs; id++ {
		mode := speedfit.Sync
		if id%2 == 1 {
			mode = speedfit.Async
		}
		err := op.Submit(operator.JobRequest{
			ID:        id,
			ModelSpec: specs[id%len(specs)],
			Examples:  1200,
			Noise:     0.01,
			Mode:      mode,
			BatchSize: 32,
			LR:        0.1,
			Seed:      int64(id + 1),
			Threshold: 0.02,
			PSRes:     cluster.Resources{cluster.CPU: 3, cluster.Memory: 8},
			WorkerRes: cluster.Resources{cluster.CPU: 5, cluster.Memory: 10},
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("submitted job %d (%s, %s)", id, specs[id%len(specs)], mode)
	}

	for cycle := 1; cycle <= *maxCycles; cycle++ {
		time.Sleep(*interval)
		rep, err := op.Cycle()
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Resized) > 0 || len(rep.Completed) > 0 {
			log.Printf("cycle %d: active=%d resized=%v completed=%v bound=%d",
				cycle, rep.Active, rep.Resized, rep.Completed, rep.Bound)
		}
		if rep.Active == 0 && cycle > 1 {
			break
		}
	}
	for _, st := range op.Status() {
		log.Printf("job %d: completed=%v steps=%d final=(%dps,%dw) last-loss=%.5f",
			st.ID, st.Completed, st.Steps, st.PS, st.Workers, st.LastLoss)
	}
}

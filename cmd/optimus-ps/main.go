// Command optimus-ps runs a real parameter-server training job locally with
// the psys framework: synthetic data, SGD workers, push/pull over the chosen
// transport, live loss reporting, and a demonstration of §5's mechanisms —
// straggler detection/replacement and checkpoint-based elastic scaling.
//
// Usage:
//
//	optimus-ps -workers 3 -servers 2 -mode sync -steps 200
//	optimus-ps -transport tcp -scale-to 6x3 -straggle
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"optimus/internal/obs"
	"optimus/internal/psys"
	"optimus/internal/speedfit"
)

var lg = obs.NewLogger(os.Stderr, "optimus-ps", nil)

func main() {

	var (
		workers   = flag.Int("workers", 3, "initial worker count")
		servers   = flag.Int("servers", 2, "initial parameter-server count")
		modeStr   = flag.String("mode", "sync", "training mode: sync | async")
		transport = flag.String("transport", "local", "transport: local | tcp")
		steps     = flag.Int("steps", 200, "steps per phase")
		features  = flag.Int("features", 64, "model dimension")
		examples  = flag.Int("examples", 4000, "dataset size")
		batch     = flag.Int("batch", 32, "per-worker mini-batch size")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		seed      = flag.Int64("seed", 1, "random seed")
		scaleTo   = flag.String("scale-to", "", "elastic rescale after phase 1, e.g. 6x3 (workers x servers)")
		straggle  = flag.Bool("straggle", false, "inject a straggler and let detection replace it")

		// Multi-process mode: run this binary as one node of a distributed
		// job (coordinator, parameter server or worker), so the full
		// training topology spans real OS processes.
		role      = flag.String("role", "", "distributed role: coordinator | server | worker (empty = single-process demo)")
		coordAddr = flag.String("coord", "127.0.0.1:7070", "coordinator address (distributed mode)")
		listen    = flag.String("listen", "127.0.0.1:0", "serve address (server role)")
		modelSpec = flag.String("model", "linreg:64", "model spec for distributed mode: linreg:F | logreg:F | mlp:FxH")
	)
	flag.Parse()

	if *role != "" {
		runDistributed(*role, *coordAddr, *listen, *modelSpec, *modeStr,
			*workers, *servers, *batch, *lr, *seed, *examples, *steps)
		return
	}

	mode := speedfit.Sync
	if *modeStr == "async" {
		mode = speedfit.Async
	} else if *modeStr != "sync" {
		lg.Fatalf("unknown mode %q", *modeStr)
	}
	tr := psys.TransportLocal
	if *transport == "tcp" {
		tr = psys.TransportTCP
	} else if *transport != "local" {
		lg.Fatalf("unknown transport %q", *transport)
	}

	data, _, err := psys.SyntheticRegression(*examples, *features, 0.01, *seed)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	cfg := psys.JobConfig{
		Model:     psys.LinearRegression{Features: *features},
		Data:      data,
		Mode:      mode,
		Workers:   *workers,
		Servers:   *servers,
		BatchSize: *batch,
		LR:        *lr,
		Transport: tr,
		Seed:      *seed,
	}
	if *straggle {
		cfg.WorkerDelays = map[int]time.Duration{0: 8 * time.Millisecond}
		lg.Infof("injecting straggler: worker 0 delayed 8ms/step")
	}

	job, err := psys.StartJob(cfg)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	defer job.Stop()
	lg.Infof("phase 1: %d workers, %d servers, %s, %s transport",
		job.Workers(), job.Servers(), mode, tr)

	runPhase := func(j *psys.Job, n int) []psys.StepStat {
		start := time.Now()
		stats, err := j.RunSteps(n)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		loss, err := j.Loss()
		if err != nil {
			lg.Fatalf("%v", err)
		}
		elapsed := time.Since(start)
		rate := float64(n) / elapsed.Seconds()
		lg.Infof("  %d steps in %v (%.0f steps/s/worker), full-data loss %.6f",
			n, elapsed.Round(time.Millisecond), rate, loss)
		return stats
	}

	stats := runPhase(job, *steps)

	if *straggle {
		if s := psys.DetectStragglers(stats); len(s) > 0 {
			lg.Infof("stragglers detected: %v — replacing (§5.2)", s)
			for _, id := range s {
				if err := job.ReplaceWorker(id); err != nil {
					lg.Fatalf("%v", err)
				}
			}
			runPhase(job, *steps)
		} else {
			lg.Infof("no stragglers detected")
		}
	}

	if *scaleTo != "" {
		var w, p int
		if _, err := fmt.Sscanf(strings.ToLower(*scaleTo), "%dx%d", &w, &p); err != nil {
			lg.Fatalf("bad -scale-to %q (want WxP, e.g. 6x3)", *scaleTo)
		}
		ckpt := filepath.Join(os.TempDir(), fmt.Sprintf("optimus-ps-%d.ckpt", os.Getpid()))
		defer os.Remove(ckpt)
		lg.Infof("elastic scaling to %d workers / %d servers via checkpoint %s (§5.4)", w, p, ckpt)
		scaled, err := psys.Scale(job, w, p, ckpt)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer scaled.Stop()
		lg.Infof("phase 2: resumed at round %d, chunk imbalance %d examples",
			scaled.Rounds(), scaled.ChunkImbalance())
		runPhase(scaled, *steps)
	}
	lg.Infof("done")
}

// runDistributed runs one node of a multi-process training job.
func runDistributed(role, coordAddr, listen, modelSpec, modeStr string,
	workers, servers, batch int, lr float64, seed int64, examples, steps int) {
	mode := speedfit.Sync
	if modeStr == "async" {
		mode = speedfit.Async
	}
	switch role {
	case "coordinator":
		coord, err := psys.StartCoordinator(psys.DistSpec{
			ModelSpec: modelSpec, Mode: mode,
			Workers: workers, Servers: servers, BatchSize: batch,
			LR: lr, Seed: seed, Examples: examples, Noise: 0.01,
		}, coordAddr)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer coord.Close()
		lg.Infof("coordinator on %s: expecting %d servers, %d workers",
			coord.Addr(), servers, workers)
		// Report progress until every worker has finished its steps.
		want := workers * steps
		for {
			st := coord.Status()
			lg.Infof("servers=%d workers=%d reports=%d/%d last-loss=%.6f",
				st.ServersReady, st.WorkersJoined, st.Reports, want, st.LastLoss)
			if st.Reports >= want {
				lg.Infof("all workers done")
				return
			}
			time.Sleep(500 * time.Millisecond)
		}
	case "server":
		s, err := psys.RunDistServer(coordAddr, listen)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		lg.Infof("parameter server %d serving on %s (ctrl-c to stop)", s.Index, s.Addr())
		select {} // serve until killed
	case "worker":
		w, err := psys.RunDistWorker(coordAddr)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer w.Close()
		lg.Infof("worker %d training %d steps", w.ID, steps)
		loss, err := w.Steps(steps)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		lg.Infof("worker %d done, final batch loss %.6f", w.ID, loss)
	default:
		lg.Fatalf("unknown role %q (want coordinator|server|worker)", role)
	}
}

package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus/internal/cluster"
	"optimus/internal/obs"
	"optimus/internal/sim"
	"optimus/internal/workload"
)

// policyByName resolves a -policy flag value.
func policyByName(name string) sim.Policy {
	switch name {
	case "optimus":
		return sim.OptimusPolicy()
	case "drf":
		return sim.DRFPolicy()
	case "tetris":
		return sim.TetrisPolicy()
	default:
		lg.Fatalf("unknown policy %q", name)
		panic("unreachable")
	}
}

// tracedSim runs one simulation with tracing and auditing attached. An empty
// path runs the built-in demo mix (a Fig-11-style downscaled workload), so
// `optimus-trace spans` works with no arguments.
func tracedSim(path, policyName string, seed int64) (*obs.Tracer, *obs.AuditLog, *sim.Result) {
	var jobs []workload.JobSpec
	if path != "" {
		jobs = loadJobs(path)
	} else {
		jobs = workload.Generate(workload.GenConfig{
			N: 9, Horizon: 8000, Seed: seed + 100,
			Downscale: 0.03, Arrivals: workload.UniformArrivals,
		})
	}
	tr := obs.NewTracer(obs.DefaultSpanBuffer)
	au := obs.NewAuditLog(obs.DefaultAuditBuffer)
	res, err := sim.Run(sim.Config{
		Cluster:           cluster.Testbed(),
		Jobs:              jobs,
		Policy:            policyByName(policyName),
		Interval:          600,
		Seed:              seed,
		PreRunSamples:     6,
		SpeedNoise:        0.03,
		LossNoise:         0.01,
		PriorityFactor:    0.95,
		ScalingBase:       12,
		ScalingPerTask:    0.3,
		ReconfigThreshold: 0.15,
		Trace:             tr,
		Audit:             au,
	})
	if err != nil {
		lg.Fatalf("%v", err)
	}
	return tr, au, res
}

// splitFileArg peels an optional leading FILE operand off a subcommand's
// argument list (flags always start with '-').
func splitFileArg(args []string) (string, []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// cmdSpans replays a trace under full tracing and writes the span tree as
// Chrome trace-event JSON — load it at https://ui.perfetto.dev or in
// chrome://tracing. The run summary and hot-path latency digests go to
// stderr so stdout stays pipeable.
func cmdSpans(args []string) {
	file, rest := splitFileArg(args)
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	policyName := fs.String("policy", "optimus", "scheduler: optimus|drf|tetris")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(rest); err != nil {
		lg.Fatalf("%v", err)
	}
	tr, _, res := tracedSim(file, *policyName, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	spans := tr.Spans()
	if err := obs.WriteChromeTrace(w, spans); err != nil {
		lg.Fatalf("%v", err)
	}
	lg.Infof("%d spans over %d intervals (%s)", len(spans), res.Intervals, res.Summary)
	lg.Infof("interval %s", res.Metrics.IntervalDuration().Summary())
	lg.Infof("refit    %s", res.Metrics.RefitDuration().Summary())
	lg.Infof("allocate %s", res.Metrics.AllocateDuration().Summary())
	lg.Infof("place    %s", res.Metrics.PlaceDuration().Summary())
	if *out != "" {
		lg.Infof("trace → %s", *out)
	}
}

// cmdExplain replays a trace under auditing and renders one job's complete
// decision history: every §4.1 marginal-gain grant (with the gain, dominant
// share, priority and heap depth behind it) and every §4.2 placement.
func cmdExplain(args []string) {
	file, rest := splitFileArg(args)
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	jobID := fs.Int("job", -1, "job ID to explain (required)")
	policyName := fs.String("policy", "optimus", "scheduler: optimus|drf|tetris")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(rest); err != nil {
		lg.Fatalf("%v", err)
	}
	if *jobID < 0 {
		lg.Fatalf("explain needs -job N")
	}
	_, au, res := tracedSim(file, *policyName, *seed)

	grants := au.Grants(*jobID)
	places := au.Places(*jobID)
	if len(grants) == 0 && len(places) == 0 {
		lg.Fatalf("no decisions recorded for job %d (unknown job, or audit ring wrapped; ran %d intervals)",
			*jobID, res.Intervals)
	}
	if jct, ok := res.JCTs[*jobID]; ok {
		fmt.Printf("job %d: completed, jct=%.0fs\n", *jobID, jct)
	} else {
		fmt.Printf("job %d: did not complete in %d intervals\n", *jobID, res.Intervals)
	}
	fmt.Printf("\n%d grants:\n", len(grants))
	fmt.Printf("%6s %9s %-7s %12s %9s %5s %5s %7s\n",
		"round", "time", "kind", "gain", "domshare", "prio", "heap", "ps/w")
	for _, g := range grants {
		fmt.Printf("%6d %8.0fs %-7s %12.4g %9.4f %5.2f %5d %3d/%-3d\n",
			g.Round, g.Time, g.Kind, g.Gain, g.DominantShare, g.Priority,
			g.HeapDepth, g.PS, g.Workers)
	}
	fmt.Printf("\n%d placements:\n", len(places))
	fmt.Printf("%6s %9s %7s %7s %6s %5s  %s\n",
		"round", "time", "ps/w", "servers", "spread", "even", "nodes")
	for _, p := range places {
		fmt.Printf("%6d %8.0fs %3d/%-3d %7d %6d %5v  %s\n",
			p.Round, p.Time, p.PS, p.Workers, p.Servers, p.Spread, p.Even,
			strings.Join(p.Nodes, ","))
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"optimus/internal/serve"
)

// cmdBundle fetches a debug bundle from a live daemon (URL) or a bundle file
// written on fail-stop/SIGQUIT, and renders the incident-relevant parts:
// build identity, readiness verdict, SLO burn, and the flight-recorder tail.
// -diff renders what changed between two bundles (e.g. before/after a
// failover, or a fail-stop bundle against the promoted follower's live one).
func cmdBundle(args []string) {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		usage()
	}
	src := args[0]
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	n := fs.Int("n", 20, "flight events to show from the tail")
	diff := fs.String("diff", "", "second bundle (URL or file) to diff against")
	out := fs.String("o", "", "also save the raw bundle JSON here")
	if err := fs.Parse(args[1:]); err != nil {
		lg.Fatalf("%v", err)
	}
	b, raw := fetchBundle(src)
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			lg.Fatalf("%v", err)
		}
		lg.Infof("bundle → %s (%d bytes)", *out, len(raw))
	}
	if *diff != "" {
		b2, _ := fetchBundle(*diff)
		printBundleDiff(b, b2)
		return
	}
	printBundle(b, *n)
}

// fetchBundle loads a bundle from an HTTP endpoint or a file. A bare
// host:port or a URL without a path gets /debug/bundle appended.
func fetchBundle(src string) (serve.Bundle, []byte) {
	var raw []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		url := src
		if !strings.Contains(strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://"), "/") {
			url += "/debug/bundle"
		}
		resp, err := http.Get(url)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer resp.Body.Close()
		raw, err = io.ReadAll(resp.Body)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		if resp.StatusCode != http.StatusOK {
			lg.Fatalf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(raw)))
		}
	} else {
		var err error
		raw, err = os.ReadFile(src)
		if err != nil {
			lg.Fatalf("%v", err)
		}
	}
	var b serve.Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		lg.Fatalf("%s: not a debug bundle: %v", src, err)
	}
	return b, raw
}

func printBundle(b serve.Bundle, tail int) {
	fmt.Printf("bundle: %s (reason: %s)\n", b.Written.Format(time.RFC3339), b.Reason)
	fmt.Printf("build:  optimusd %s %s rev %s\n", b.Build.Version, b.Build.GoVersion, orDash(b.Build.Revision))
	fmt.Printf("state:  up %.0fs, %d rounds, sim time %.0fs, %d jobs (%d live)\n",
		b.UptimeSeconds, b.Rounds, b.SimTime, b.Cluster.Jobs, b.Cluster.LiveJobs)
	if b.HA != nil {
		fmt.Printf("ha:     %s id=%s term=%d lag=%d\n", b.HA.Role, b.HA.ID, b.HA.Term, b.HA.LagRecords)
	}
	if b.WAL != nil {
		fmt.Printf("wal:    %d appends, %d fsyncs, last seq %d (durable %d), %d segments\n",
			b.WAL.Appends, b.WAL.Fsyncs, b.WAL.LastSeq, b.WAL.DurableSeq, b.WAL.Segments)
	}
	verdict := "READY"
	if !b.Ready.Ready {
		verdict = "NOT READY"
	}
	fmt.Printf("ready:  %s\n", verdict)
	for _, name := range sortedKeys(b.Ready.Components) {
		c := b.Ready.Components[name]
		mark := "ok "
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Printf("        %-4s %-9s %s\n", mark, name, c.Detail)
	}
	fmt.Printf("slo:    overrun rate %.4f (burn %.2f), api p99 %.4fs, slow burn %.2f, error burn %.2f\n",
		b.SLO.OverrunRate, b.SLO.OverrunBurn, b.SLO.APIP99Seconds,
		b.SLO.APISlowBurn, b.SLO.APIErrorBurn)
	evs := b.Flight
	if len(evs) > tail {
		evs = evs[len(evs)-tail:]
	}
	fmt.Printf("flight: %d events captured, last %d:\n", len(b.Flight), len(evs))
	for _, ev := range evs {
		fmt.Printf("  %s\n", ev.String())
	}
}

// printBundleDiff renders what changed from a to b: readiness transitions,
// counters, and the flight events b has beyond a's last sequence — the
// narrative of whatever happened in between.
func printBundleDiff(a, b serve.Bundle) {
	fmt.Printf("a: %s (%s)   b: %s (%s)\n",
		a.Written.Format(time.RFC3339), a.Reason, b.Written.Format(time.RFC3339), b.Reason)
	fmt.Printf("rounds %d → %d, sim time %.0fs → %.0fs, ready %v → %v\n",
		a.Rounds, b.Rounds, a.SimTime, b.SimTime, a.Ready.Ready, b.Ready.Ready)
	for _, name := range sortedKeys(b.Ready.Components) {
		cb := b.Ready.Components[name]
		ca, had := a.Ready.Components[name]
		switch {
		case !had:
			fmt.Printf("component %s: (new) ok=%v %s\n", name, cb.OK, cb.Detail)
		case ca.OK != cb.OK:
			fmt.Printf("component %s: ok=%v → ok=%v (%s)\n", name, ca.OK, cb.OK, cb.Detail)
		}
	}
	var lastA uint64
	if len(a.Flight) > 0 {
		lastA = a.Flight[len(a.Flight)-1].Seq
	}
	var fresh int
	for _, ev := range b.Flight {
		if ev.Seq > lastA {
			fresh++
		}
	}
	fmt.Printf("flight: %d events in b after a's last seq %d:\n", fresh, lastA)
	for _, ev := range b.Flight {
		if ev.Seq > lastA {
			fmt.Printf("  %s\n", ev.String())
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

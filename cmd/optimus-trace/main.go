// Command optimus-trace generates, inspects and replays workload traces.
//
// Usage:
//
//	optimus-trace gen     -n 30 -arrivals poisson -o trace.csv
//	optimus-trace info    trace.csv
//	optimus-trace run     trace.csv -policy optimus -timeline tl.csv -jcts jcts.csv
//	optimus-trace faults  -trace trace.csv -mtbf 50000 -o faults.txt
//	optimus-trace run     trace.csv -faults faults.txt
//	optimus-trace spans   trace.csv -o spans.json
//	optimus-trace explain trace.csv -job 3
//	optimus-trace wal     ./wal-dir -o records.jsonl
//
// `spans` replays a trace with scheduler tracing on and emits the span tree
// as Chrome trace-event JSON (load in Perfetto); `explain` renders one job's
// full decision audit — every marginal-gain grant and placement. Both run on
// a built-in demo workload when FILE is omitted (see internal/obs).
//
// Traces are plain CSV (see internal/trace), so a run is fully replayable
// and its outputs feed standard plotting tools. Fault schedules are plain
// text (see internal/chaos): generating one with `faults` and passing it to
// `run` under different -policy values replays the identical fault sequence
// against every scheduler.
package main

import (
	"flag"
	"fmt"
	"os"

	"optimus/internal/chaos"
	"optimus/internal/cluster"
	"optimus/internal/obs"
	"optimus/internal/sim"
	"optimus/internal/trace"
	"optimus/internal/workload"
)

// lg is the tool's leveled logger (CLI format: no timestamps, component
// prefix "optimus-trace"). Every subcommand shares it.
var lg = obs.NewLogger(os.Stderr, "optimus-trace", nil)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "faults":
		cmdFaults(os.Args[2:])
	case "spans":
		cmdSpans(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "wal":
		cmdWAL(os.Args[2:])
	case "bundle":
		cmdBundle(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println("optimus-trace", obs.Build())
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  optimus-trace gen    [-n N] [-horizon S] [-seed N] [-downscale F] [-arrivals uniform|poisson|google] -o FILE
  optimus-trace info   FILE
  optimus-trace run    FILE [-policy optimus|drf|tetris] [-seed N] [-faults FILE] [-timeline FILE] [-jcts FILE]
  optimus-trace faults [-trace FILE] [-seed N] [-horizon S] [-mtbf S] [-kill-rate R] [-straggler-rate R] -o FILE
  optimus-trace spans   [FILE] [-policy optimus|drf|tetris] [-seed N] [-o FILE]
  optimus-trace explain [FILE] -job N [-policy optimus|drf|tetris] [-seed N]
  optimus-trace wal     DIR [-o FILE] [-raw]
  optimus-trace bundle  URL|FILE [-n N] [-diff URL|FILE] [-o FILE]
  optimus-trace version`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 30, "number of jobs")
	horizon := fs.Float64("horizon", 8000, "arrival window seconds")
	seed := fs.Int64("seed", 1, "random seed")
	downscale := fs.Float64("downscale", 0.03, "dataset downscale factor")
	arrivals := fs.String("arrivals", "uniform", "arrival process: uniform|poisson|google")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		lg.Fatalf("%v", err)
	}
	var proc workload.ArrivalProcess
	switch *arrivals {
	case "uniform":
		proc = workload.UniformArrivals
	case "poisson":
		proc = workload.PoissonArrivals
	case "google":
		proc = workload.GoogleTraceArrivals
	default:
		lg.Fatalf("unknown arrival process %q", *arrivals)
	}
	jobs := workload.Generate(workload.GenConfig{
		N: *n, Horizon: *horizon, Seed: *seed,
		Downscale: *downscale, Arrivals: proc,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteJobs(w, jobs); err != nil {
		lg.Fatalf("%v", err)
	}
	if *out != "" {
		lg.Infof("wrote %d jobs to %s", len(jobs), *out)
	}
}

func loadJobs(path string) []workload.JobSpec {
	f, err := os.Open(path)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	defer f.Close()
	jobs, err := trace.ReadJobs(f)
	if err != nil {
		lg.Fatalf("%v", err)
	}
	return jobs
}

func cmdInfo(args []string) {
	if len(args) < 1 {
		usage()
	}
	jobs := loadJobs(args[0])
	byModel := map[string]int{}
	byMode := map[string]int{}
	var first, last float64
	for i, j := range jobs {
		byModel[j.Model.Name]++
		byMode[j.Mode.String()]++
		if i == 0 || j.Arrival < first {
			first = j.Arrival
		}
		if j.Arrival > last {
			last = j.Arrival
		}
	}
	fmt.Printf("%d jobs, arrivals %.0fs..%.0fs\n", len(jobs), first, last)
	fmt.Printf("modes: %v\n", byMode)
	fmt.Printf("models: %v\n", byModel)
}

func cmdRun(args []string) {
	if len(args) < 1 {
		usage()
	}
	path := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	policyName := fs.String("policy", "optimus", "scheduler: optimus|drf|tetris")
	seed := fs.Int64("seed", 1, "simulation seed")
	faultsFile := fs.String("faults", "", "chaos schedule file to replay against the run")
	timelineOut := fs.String("timeline", "", "write per-interval stats CSV here")
	jctsOut := fs.String("jcts", "", "write per-job completion times CSV here")
	if err := fs.Parse(args[1:]); err != nil {
		lg.Fatalf("%v", err)
	}
	var faults *chaos.Schedule
	if *faultsFile != "" {
		f, err := os.Open(*faultsFile)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		sched, err := chaos.ParseSchedule(f)
		f.Close()
		if err != nil {
			lg.Fatalf("%s: %v", *faultsFile, err)
		}
		faults = &sched
	}
	policy := policyByName(*policyName)
	jobs := loadJobs(path)
	res, err := sim.Run(sim.Config{
		Cluster:           cluster.Testbed(),
		Jobs:              jobs,
		Policy:            policy,
		Interval:          600,
		Seed:              *seed,
		PreRunSamples:     6,
		SpeedNoise:        0.03,
		LossNoise:         0.01,
		PriorityFactor:    0.95,
		ScalingBase:       12,
		ScalingPerTask:    0.3,
		ReconfigThreshold: 0.15,
		Faults:            faults,
	})
	if err != nil {
		lg.Fatalf("%v", err)
	}
	fmt.Printf("%s: %s\n", policy.Name, res.Summary)
	if len(res.Unfinished) > 0 {
		fmt.Printf("unfinished jobs: %v\n", res.Unfinished)
	}
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer f.Close()
		if err := trace.WriteTimeline(f, res.Timeline); err != nil {
			lg.Fatalf("%v", err)
		}
		lg.Infof("timeline → %s", *timelineOut)
	}
	if *jctsOut != "" {
		f, err := os.Create(*jctsOut)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer f.Close()
		if err := trace.WriteJCTs(f, res.JCTs); err != nil {
			lg.Fatalf("%v", err)
		}
		lg.Infof("jcts → %s", *jctsOut)
	}
}

// cmdFaults draws a random chaos schedule for a trace's jobs against the
// testbed nodes and writes it in the internal/chaos file format. The output
// is a pure function of the flags, so regenerating with the same arguments
// reproduces the schedule exactly.
func cmdFaults(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace whose job IDs receive job-level faults")
	seed := fs.Int64("seed", 1, "generator seed")
	horizon := fs.Float64("horizon", 30000, "faults drawn in [0, horizon) seconds")
	mtbf := fs.Float64("mtbf", 50000, "per-node mean time between crashes (0 disables)")
	outage := fs.Float64("outage", 1200, "mean node outage seconds")
	killRate := fs.Float64("kill-rate", 1.0, "expected task kills per job over the horizon")
	stragRate := fs.Float64("straggler-rate", 0.8, "expected stragglers per job over the horizon")
	ckptProb := fs.Float64("ckpt-fail-prob", 0.2, "per-job checkpoint-write failure probability")
	netSlow := fs.Int("net-slow", 1, "fabric-wide slowdown events")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		lg.Fatalf("%v", err)
	}
	var jobIDs []int
	if *tracePath != "" {
		for _, j := range loadJobs(*tracePath) {
			jobIDs = append(jobIDs, j.ID)
		}
	}
	var nodes []string
	for _, n := range cluster.Testbed().Nodes() {
		nodes = append(nodes, n.ID)
	}
	sched := chaos.Generate(chaos.GenConfig{
		Seed: *seed, Horizon: *horizon,
		Nodes: nodes, NodeMTBF: *mtbf, MeanOutage: *outage,
		Jobs: jobIDs, TaskKillRate: *killRate, StragglerRate: *stragRate,
		CkptFailProb: *ckptProb, NetSlowCount: *netSlow,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := chaos.WriteSchedule(w, sched); err != nil {
		lg.Fatalf("%v", err)
	}
	if *out != "" {
		lg.Infof("wrote %d faults to %s", sched.Len(), *out)
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"

	"optimus/internal/serve"
	"optimus/internal/wal"
)

// walLine is one dumped record: the frame header plus the decoded payload.
type walLine struct {
	Seq     uint64 `json:"seq"`
	Type    string `json:"type"`
	Payload any    `json:"payload,omitempty"`
}

// cmdWAL dumps an optimusd write-ahead log directory as one JSON object per
// record, newline-delimited, followed by a scan summary on stderr. The dump
// is read-only — a torn tail is reported, never repaired — so it is safe to
// point at a live leader's log.
func cmdWAL(args []string) {
	if len(args) < 1 || len(args[0]) > 0 && args[0][0] == '-' {
		usage()
	}
	dir := args[0]
	fs := flag.NewFlagSet("wal", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	raw := fs.Bool("raw", false, "emit payloads as raw logged JSON instead of decoding")
	if err := fs.Parse(args[1:]); err != nil {
		lg.Fatalf("%v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			lg.Fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	res, err := wal.Scan(dir, func(r wal.Record) error {
		line := walLine{Seq: r.Seq, Type: r.Type.String()}
		if *raw {
			line.Payload = json.RawMessage(r.Payload)
		} else if p, err := serve.WALDecodePayload(r); err != nil {
			// Unknown or malformed payloads still dump (the frame CRC
			// already vouched for the bytes); fall back to the raw JSON.
			line.Payload = json.RawMessage(r.Payload)
		} else {
			line.Payload = p
		}
		return enc.Encode(line)
	})
	if err != nil {
		lg.Fatalf("%v", err)
	}
	if err := bw.Flush(); err != nil {
		lg.Fatalf("%v", err)
	}
	lg.Infof("%d records, last seq %d", res.Records, res.LastSeq)
	if res.Torn {
		lg.Infof("torn tail in %s at offset %d (next writer open will truncate it)",
			res.TornSegment, res.TornOffset)
	}
	if ckpt, err := wal.LastCheckpoint(dir); err == nil && ckpt > 0 {
		lg.Infof("latest checkpoint anchor: seq %d", ckpt)
	}
}

// Command jsonok asserts that stdin is well-formed, non-empty JSON: it must
// parse, and a top-level object or array must have at least one member. Exit
// status 0 on success, 1 (with the reason on stderr) otherwise. Shell test
// scripts (scripts/smoke_optimusd.sh) pipe API responses through it instead
// of grepping for brace fragments.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail("reading stdin: %v", err)
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		fail("invalid JSON: %v", err)
	}
	switch t := v.(type) {
	case nil:
		fail("JSON is null")
	case map[string]any:
		if len(t) == 0 {
			fail("JSON object is empty")
		}
	case []any:
		if len(t) == 0 {
			fail("JSON array is empty")
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsonok: "+format+"\n", args...)
	os.Exit(1)
}

// Command optimus-sim regenerates the paper's tables and figures from the
// reproduction: pass one or more experiment IDs (fig11, table2, ...) or
// "all". Use -quick for a fast smoke run and -seed to vary randomness.
//
// Usage:
//
//	optimus-sim [-quick] [-seed N] [-parallel N] all
//	optimus-sim fig11 table3
//	optimus-sim -faults faults.txt failures
//	optimus-sim -cpuprofile cpu.pprof -memprofile mem.pprof fig11
//	optimus-sim -list
//
// -parallel bounds the worker pool that fans independent simulator runs
// across cores (0 = GOMAXPROCS, 1 = serial); any setting produces the same
// tables for the same seed. -faults replays a chaos schedule file (see
// optimus-trace faults) in the failures exhibit instead of its generated
// one. -cpuprofile/-memprofile write pprof profiles of the run so hot-path
// work stays evidence-driven.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"optimus/internal/chaos"
	"optimus/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	parallel := flag.Int("parallel", 0,
		"worker-pool width for independent simulator runs (0 = GOMAXPROCS, 1 = serial)")
	faultsFile := flag.String("faults", "", "chaos schedule file for the failures exhibit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: optimus-sim [-quick] [-seed N] [-parallel N] <experiment-id>... | all")
		fmt.Fprintln(os.Stderr, "experiments:", strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiments.IDs()
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed, Parallel: *parallel}
	if *faultsFile != "" {
		f, err := os.Open(*faultsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sched, err := chaos.ParseSchedule(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *faultsFile, err)
			os.Exit(1)
		}
		opt.Faults = &sched
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	runsBefore := experiments.RunCount()
	failed := false
	for _, id := range ids {
		tbl, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tbl.Print(os.Stdout)
	}
	fmt.Fprintf(os.Stderr, "optimus-sim: %d experiment(s), %d simulator run(s), %d worker(s), %s wall-clock\n",
		len(ids), experiments.RunCount()-runsBefore, workers,
		time.Since(start).Round(time.Millisecond))

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	if failed {
		os.Exit(1)
	}
}

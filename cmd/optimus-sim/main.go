// Command optimus-sim regenerates the paper's tables and figures from the
// reproduction: pass one or more experiment IDs (fig11, table2, ...) or
// "all". Use -quick for a fast smoke run and -seed to vary randomness.
//
// Usage:
//
//	optimus-sim [-quick] [-seed N] all
//	optimus-sim fig11 table3
//	optimus-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: optimus-sim [-quick] [-seed N] <experiment-id>... | all")
		fmt.Fprintln(os.Stderr, "experiments:", strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiments.IDs()
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed}
	failed := false
	for _, id := range ids {
		tbl, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tbl.Print(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}

// Command optimus-sim regenerates the paper's tables and figures from the
// reproduction: pass one or more experiment IDs (fig11, table2, ...) or
// "all". Use -quick for a fast smoke run and -seed to vary randomness.
//
// Usage:
//
//	optimus-sim [-quick] [-seed N] all
//	optimus-sim fig11 table3
//	optimus-sim -faults faults.txt failures
//	optimus-sim -list
//
// -faults replays a chaos schedule file (see optimus-trace faults) in the
// failures exhibit instead of its generated one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optimus/internal/chaos"
	"optimus/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	faultsFile := flag.String("faults", "", "chaos schedule file for the failures exhibit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: optimus-sim [-quick] [-seed N] <experiment-id>... | all")
		fmt.Fprintln(os.Stderr, "experiments:", strings.Join(experiments.IDs(), " "))
		os.Exit(2)
	}
	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = experiments.IDs()
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed}
	if *faultsFile != "" {
		f, err := os.Open(*faultsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sched, err := chaos.ParseSchedule(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *faultsFile, err)
			os.Exit(1)
		}
		opt.Faults = &sched
	}
	failed := false
	for _, id := range ids {
		tbl, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		tbl.Print(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}

// Command optimus-kube demonstrates Optimus deployed against the miniature
// container orchestrator (§5.5): it registers nodes, submits PS-job pod
// groups, runs the Optimus scheduler to bind them with the §4.2 placement,
// starts kubelets whose pods execute real psys training tasks, and prints
// the resulting layout and training progress.
//
// Usage:
//
//	optimus-kube -nodes 4 -jobs 2
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/kube"
	"optimus/internal/psys"
	"optimus/internal/speedfit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimus-kube: ")
	var (
		nodes = flag.Int("nodes", 4, "cluster size")
		jobs  = flag.Int("jobs", 2, "number of training jobs to submit")
		steps = flag.Int("steps", 120, "training steps per job")
	)
	flag.Parse()

	api := kube.NewAPIServer()
	for i := 0; i < *nodes; i++ {
		err := api.RegisterNode(kube.Node{
			Name: fmt.Sprintf("node-%d", i),
			Capacity: cluster.Resources{
				cluster.CPU: 16, cluster.Memory: 64,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Each job runs a real psys training session; its pods are bookkeeping
	// handles the kubelets "start" (in a real deployment each pod would be
	// one container; here the job engine drives its tasks in-process).
	type jobRuntime struct {
		job  *psys.Job
		once sync.Once
	}
	runtimes := make(map[int]*jobRuntime)
	var mu sync.Mutex

	for j := 0; j < *jobs; j++ {
		data, _, err := psys.SyntheticRegression(2000, 32, 0.01, int64(j+1))
		if err != nil {
			log.Fatal(err)
		}
		pj, err := psys.StartJob(psys.JobConfig{
			Model: psys.LinearRegression{Features: 32}, Data: data,
			Mode: speedfit.Sync, Workers: 3, Servers: 2,
			BatchSize: 32, LR: 0.05, Seed: int64(j + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		runtimes[j] = &jobRuntime{job: pj}
		mu.Unlock()

		for t := 0; t < 2; t++ {
			err := api.CreatePod(kube.Pod{
				Name: fmt.Sprintf("job%d-ps-%d", j, t), JobID: j, Role: kube.RolePS,
				Resources: cluster.Resources{cluster.CPU: 3, cluster.Memory: 8},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		for t := 0; t < 3; t++ {
			err := api.CreatePod(kube.Pod{
				Name: fmt.Sprintf("job%d-w-%d", j, t), JobID: j, Role: kube.RoleWorker,
				Resources: cluster.Resources{cluster.CPU: 5, cluster.Memory: 10},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	// Kubelets: when the first pod of a job starts on a node, kick off that
	// job's training loop.
	runner := func(p kube.Pod) func() {
		mu.Lock()
		rt := runtimes[p.JobID]
		mu.Unlock()
		if rt == nil {
			return nil
		}
		rt.once.Do(func() {
			go func() {
				if _, err := rt.job.RunSteps(*steps); err != nil {
					log.Printf("job %d: %v", p.JobID, err)
					return
				}
				loss, err := rt.job.Loss()
				if err != nil {
					log.Printf("job %d: %v", p.JobID, err)
					return
				}
				log.Printf("job %d finished %d steps, loss %.6f", p.JobID, *steps, loss)
			}()
		})
		return func() {}
	}
	var kubelets []*kube.Kubelet
	for i := 0; i < *nodes; i++ {
		kubelets = append(kubelets, kube.StartKubelet(api, fmt.Sprintf("node-%d", i), runner))
	}
	defer func() {
		for _, k := range kubelets {
			k.Stop()
		}
		mu.Lock()
		for _, rt := range runtimes {
			rt.job.Stop()
		}
		mu.Unlock()
	}()

	sched := kube.NewOptimusScheduler(api)
	bound, err := sched.ScheduleOnce()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scheduler bound %d pods", bound)

	running := kube.WaitRunning(api, bound, 5*time.Second)
	log.Printf("%d pods running", running)

	// Print the layout: Theorem-1 placement should colocate each job's PS
	// and workers on the fewest nodes, evenly.
	byNode := map[string][]string{}
	for _, p := range api.ListPods() {
		byNode[p.NodeName] = append(byNode[p.NodeName], p.Name)
	}
	var names []string
	for n := range byNode {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(byNode[n])
		log.Printf("  %s: %v", n, byNode[n])
	}

	// Let training run to completion.
	time.Sleep(300 * time.Millisecond)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		mu.Lock()
		for _, rt := range runtimes {
			if rt.job.Rounds() < *steps {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Printf("done")
}

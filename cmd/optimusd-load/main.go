// Command optimusd-load is a load generator for optimusd: it fires N
// concurrent job submissions at a running daemon, polls a sample of the
// created jobs, and reports submission latency percentiles. It exits
// non-zero if any submission fails, making it usable as a CI smoke gate.
//
// Usage:
//
//	optimusd-load -url http://localhost:8080 -n 1000 -c 64
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optimusd-load: ")
	var (
		url     = flag.String("url", "http://localhost:8080", "optimusd base URL")
		n       = flag.Int("n", 1000, "total submissions")
		c       = flag.Int("c", 64, "concurrent clients")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()
	if err := run(*url, *n, *c, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(url string, n, conc int, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}

	models := []string{"resnext-110", "resnet-50", "seq2seq"}
	jobs := make(chan int)
	latencies := make([]time.Duration, n)
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				body := fmt.Sprintf(
					`{"model":%q,"mode":"async","threshold":0.05,"downscale":0.2}`,
					models[i%len(models)])
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/jobs", "application/json",
					bytes.NewReader([]byte(body)))
				latencies[i] = time.Since(t0)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	ok := int64(n) - failed.Load()
	fmt.Printf("submissions: %d ok, %d failed in %s (%.0f/s)\n",
		ok, failed.Load(), elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	fmt.Printf("latency: p50 %s  p95 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(1.0).Round(time.Microsecond))

	// Spot-check that the daemon actually registered the jobs.
	resp, err := client.Get(url + "/v1/jobs/1")
	if err != nil {
		return fmt.Errorf("poll job 1: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("poll job 1: status %d", resp.StatusCode)
	}

	if failed.Load() > 0 {
		os.Exit(1)
	}
	return nil
}

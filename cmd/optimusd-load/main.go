// Command optimusd-load is a load generator for optimusd with two modes.
//
// Closed-loop (default, the original CI smoke gate): fire -n submissions
// from -c concurrent clients as fast as they complete, poll a created job,
// report latency percentiles:
//
//	optimusd-load -url http://localhost:8080 -n 1000 -c 64
//
// Open-loop (YCSB-style, enabled by -duration): a dispatcher fires
// operations at their scheduled arrival times regardless of how fast the
// daemon answers — the open-loop model that exposes queueing collapse which
// closed-loop clients hide. Latency is measured from each operation's
// *intended* start (coordinated-omission safe: a stalled daemon is charged
// for the stall, not forgiven for it). Operations are drawn from a pluggable
// mix over submit / status / delete / SSE-connect; status and delete target
// existing jobs through a YCSB key distribution (zipfian, latest, uniform):
//
//	optimusd-load -url http://localhost:8080 -duration 10s -rate 500 \
//	    -mix submit=5,status=90,delete=3,sse=2 -dist zipfian -clients 256
//
// The run reports per-op p50/p99/p999, attempted vs completed throughput and
// the daemon's interval-overrun rate (scraped from /v1/cluster before and
// after). It exits non-zero when the error rate exceeds -max-error-rate or
// the overall p99 exceeds -max-p99, making it a CI SLO gate. With -bench the
// summary is also emitted as a `go test -bench`-format line so benchjson can
// track it in BENCH_N.json.
//
// Failover scenario (-urls): a comma-separated target list turns the
// open-loop run into an HA probe — every transport failure or 5xx rotates to
// the next target (a follower answers reads immediately and writes once
// promoted), each such failure counts as a lost request, and the report adds
// the blackout window: the longest stretch from a failure to the next
// success anywhere in the pool. scripts/smoke_failover.sh drives this while
// kill -9ing the leader mid-run:
//
//	optimusd-load -urls http://localhost:8080,http://localhost:8081 \
//	    -duration 10s -rate 300 -mix submit=80,status=20
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optimus/internal/obs"
	"optimus/internal/workload"
)

var lg = obs.NewLogger(os.Stderr, "optimusd-load", nil)

func main() {
	var (
		url     = flag.String("url", "http://localhost:8080", "optimusd base URL")
		urls    = flag.String("urls", "", "comma-separated failover targets (open-loop only; overrides -url)")
		n       = flag.Int("n", 1000, "closed-loop mode: total submissions")
		c       = flag.Int("c", 64, "closed-loop mode: concurrent clients")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")

		duration = flag.Duration("duration", 0, "open-loop mode: run length (0 = closed-loop mode)")
		rate     = flag.Float64("rate", 500, "open-loop mode: mean arrival rate, ops/sec")
		arrivals = flag.String("arrivals", "poisson", "open-loop arrival process: poisson or uniform")
		mix      = flag.String("mix", "submit=5,status=90,delete=3,sse=2", "operation mix as kind=weight pairs")
		dist     = flag.String("dist", "zipfian", "key distribution for status/delete: zipfian, latest or uniform")
		theta    = flag.Float64("theta", 0, "zipfian skew constant (default 0.99)")
		clients  = flag.Int("clients", 256, "open-loop mode: worker pool size")
		seed     = flag.Int64("seed", 1, "rng seed for mix and key choices")

		maxErrRate = flag.Float64("max-error-rate", 0, "exit non-zero when errors/ops exceeds this fraction")
		maxP99     = flag.Duration("max-p99", 0, "exit non-zero when overall p99 exceeds this (0 disables)")
		benchName  = flag.String("bench", "", "also print a go-bench format summary line under this name")
	)
	flag.Parse()
	if *duration > 0 {
		cfg := loadConfig{
			tg: newTargets(*urls, *url), duration: *duration, rate: *rate,
			arrivals: *arrivals,
			mix:      *mix, dist: *dist, theta: *theta, clients: *clients,
			seed: *seed, timeout: *timeout,
			maxErrRate: *maxErrRate, maxP99: *maxP99, benchName: *benchName,
		}
		if err := runOpenLoop(cfg); err != nil {
			lg.Fatalf("%v", err)
		}
		return
	}
	if *urls != "" {
		lg.Fatalf("-urls requires open-loop mode (set -duration)")
	}
	if err := runClosedLoop(*url, *n, *c, *timeout); err != nil {
		lg.Fatalf("%v", err)
	}
}

// ---------------------------------------------------------------------------
// Closed-loop mode (the original smoke gate).

func runClosedLoop(url string, n, conc int, timeout time.Duration) error {
	client := &http.Client{Timeout: timeout}

	models := []string{"resnext-110", "resnet-50", "seq2seq"}
	jobs := make(chan int)
	latencies := make([]time.Duration, n)
	var failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				body := fmt.Sprintf(
					`{"model":%q,"mode":"async","threshold":0.05,"downscale":0.2}`,
					models[i%len(models)])
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/jobs", "application/json",
					bytes.NewReader([]byte(body)))
				latencies[i] = time.Since(t0)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	ok := int64(n) - failed.Load()
	fmt.Printf("submissions: %d ok, %d failed in %s (%.0f/s)\n",
		ok, failed.Load(), elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	fmt.Printf("latency: p50 %s  p95 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(1.0).Round(time.Microsecond))

	// Spot-check that the daemon actually registered the jobs.
	resp, err := client.Get(url + "/v1/jobs/1")
	if err != nil {
		return fmt.Errorf("poll job 1: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("poll job 1: status %d", resp.StatusCode)
	}

	if failed.Load() > 0 {
		os.Exit(1)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Open-loop mode.

// targets is the (possibly single-element) pool of optimusd base URLs. Every
// transport failure or 5xx rotates the pool to the next target and counts a
// lost request; the blackout window is the longest failure→success gap, i.e.
// how long the cluster as a whole refused the workload. All methods are
// worker-concurrency safe.
type targets struct {
	urls       []string
	cur        atomic.Int32
	lost       atomic.Int64
	switches   atomic.Int64
	firstFail  atomic.Int64 // unix-nanos of the oldest unrecovered failure, 0 = healthy
	blackoutNs atomic.Int64 // longest observed blackout
}

func newTargets(csv, single string) *targets {
	t := &targets{}
	if csv != "" {
		for _, u := range strings.Split(csv, ",") {
			if u = strings.TrimSpace(u); u != "" {
				t.urls = append(t.urls, strings.TrimRight(u, "/"))
			}
		}
	}
	if len(t.urls) == 0 {
		t.urls = []string{single}
	}
	return t
}

func (t *targets) url() string { return t.urls[t.cur.Load()] }

// ok records a successful operation, closing any open blackout window.
func (t *targets) ok() {
	if f := t.firstFail.Swap(0); f != 0 {
		w := time.Now().UnixNano() - f
		for {
			cur := t.blackoutNs.Load()
			if w <= cur || t.blackoutNs.CompareAndSwap(cur, w) {
				return
			}
		}
	}
}

// fail records a lost request, opens the blackout window if the pool looked
// healthy, and rotates to the next target.
func (t *targets) fail() {
	t.lost.Add(1)
	t.firstFail.CompareAndSwap(0, time.Now().UnixNano())
	if len(t.urls) > 1 {
		cur := t.cur.Load()
		if t.cur.CompareAndSwap(cur, (cur+1)%int32(len(t.urls))) {
			t.switches.Add(1)
		}
	}
}

func (t *targets) blackout() time.Duration {
	w := t.blackoutNs.Load()
	// A window still open at read time (run ended mid-blackout) counts too.
	if f := t.firstFail.Load(); f != 0 {
		if open := time.Now().UnixNano() - f; open > w {
			w = open
		}
	}
	return time.Duration(w)
}

type loadConfig struct {
	tg         *targets
	duration   time.Duration
	rate       float64
	arrivals   string
	mix        string
	dist       string
	theta      float64
	clients    int
	seed       int64
	timeout    time.Duration
	maxErrRate float64
	maxP99     time.Duration
	benchName  string
}

type opKind int

const (
	opSubmit opKind = iota
	opStatus
	opDelete
	opSSE
	numOps
)

var opNames = [numOps]string{"submit", "status", "delete", "sse"}

// parseMix parses "submit=5,status=90,delete=3,sse=2" into weights.
func parseMix(s string) ([numOps]float64, error) {
	var w [numOps]float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return w, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || v < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for k := opKind(0); k < numOps; k++ {
			if opNames[k] == kv[0] {
				w[k] = v
				found = true
				break
			}
		}
		if !found {
			return w, fmt.Errorf("unknown op %q (have submit, status, delete, sse)", kv[0])
		}
	}
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total == 0 {
		return w, fmt.Errorf("mix %q has zero total weight", s)
	}
	return w, nil
}

// idStore publishes created job IDs for lock-free keyed reads: the backing
// array is preallocated (appends never move it), writes append under a
// mutex then advance the atomic count, readers load the count and index
// below it — the atomic store/load pair orders the element write before the
// read.
type idStore struct {
	mu  sync.Mutex
	ids []int64
	n   atomic.Int64
}

func newIDStore(capacity int) *idStore {
	return &idStore{ids: make([]int64, 0, capacity)}
}

func (s *idStore) add(id int64) {
	s.mu.Lock()
	if len(s.ids) < cap(s.ids) {
		s.ids = append(s.ids, id)
		s.n.Store(int64(len(s.ids)))
	}
	s.mu.Unlock()
}

func (s *idStore) size() int { return int(s.n.Load()) }

func (s *idStore) at(k int) int64 { return s.ids[k] }

// op is one scheduled operation.
type op struct {
	kind     opKind
	intended time.Time
}

type counters struct {
	ok        [numOps]atomic.Int64
	errs      [numOps]atomic.Int64
	throttled atomic.Int64 // 429 on submit: backpressure, not failure
	conflicts atomic.Int64 // 409 on delete: already terminal, not failure
}

type clusterProbe struct {
	Rounds           int64 `json:"rounds"`
	IntervalOverruns int64 `json:"intervalOverruns"`
}

func probeCluster(client *http.Client, url string) (clusterProbe, error) {
	var p clusterProbe
	resp, err := client.Get(url + "/v1/cluster")
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return p, fmt.Errorf("GET /v1/cluster: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&p)
	return p, err
}

func runOpenLoop(cfg loadConfig) error {
	weights, err := parseMix(cfg.mix)
	if err != nil {
		return err
	}
	var arrive workload.ArrivalProcess
	switch cfg.arrivals {
	case "poisson":
		arrive = workload.PoissonArrivals
	case "uniform":
		arrive = workload.UniformArrivals
	default:
		return fmt.Errorf("unknown arrival process %q (have poisson, uniform)", cfg.arrivals)
	}
	if _, err := workload.NewKeyDist(cfg.dist, cfg.theta); err != nil {
		return err
	}
	if cfg.clients < 1 {
		cfg.clients = 1
	}

	horizon := cfg.duration.Seconds()
	total := int(cfg.rate * horizon)
	if total < 1 {
		return fmt.Errorf("rate %g over %s yields no operations", cfg.rate, cfg.duration)
	}

	master := rand.New(rand.NewSource(cfg.seed))
	times := arrive(master, total, horizon)
	kinds := make([]opKind, total)
	cum := weights
	for k := opKind(1); k < numOps; k++ {
		cum[k] += cum[k-1]
	}
	for i := range kinds {
		u := master.Float64() * cum[numOps-1]
		for k := opKind(0); k < numOps; k++ {
			if u < cum[k] {
				kinds[i] = k
				break
			}
		}
	}

	client := &http.Client{
		Timeout:   cfg.timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: cfg.clients},
	}
	// SSE connections outlive cfg.timeout by design; they get a per-request
	// context deadline instead of a client-wide one.
	sseClient := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}

	// Seed the keyspace so keyed ops always have a target, even under a
	// status-only mix.
	store := newIDStore(total + 1)
	if id, outcome, _ := doSubmit(client, cfg.tg.url(), master); outcome == outcomeOK {
		store.add(id)
	} else {
		return fmt.Errorf("seeding submit failed against %s", cfg.tg.url())
	}

	before, err := probeCluster(client, cfg.tg.url())
	if err != nil {
		return fmt.Errorf("pre-run cluster probe: %w", err)
	}

	var (
		hists   [numOps]obs.AtomicHistogram
		overall obs.AtomicHistogram
		cnt     counters
	)
	// The queue holds every operation: the dispatcher never blocks on slow
	// workers, which is what makes the loop open rather than closed.
	queue := make(chan op, total)
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w) + 1))
			kd, _ := workload.NewKeyDist(cfg.dist, cfg.theta)
			for o := range queue {
				runOp(o, cfg, client, sseClient, rng, kd, store, &hists[o.kind], &overall, &cnt)
			}
		}(w)
	}

	start := time.Now()
	for i := 0; i < total; i++ {
		intended := start.Add(time.Duration(times[i] * float64(time.Second)))
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		queue <- op{kind: kinds[i], intended: intended}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	// Probe whichever target the pool ended on — after a failover that is
	// the promoted follower, not the corpse.
	after, err := probeCluster(client, cfg.tg.url())
	if err != nil {
		return fmt.Errorf("post-run cluster probe: %w", err)
	}

	return report(cfg, weights, elapsed, total, &hists, &overall, &cnt, before, after)
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeErr
	outcomeThrottled
	outcomeConflict
)

var loadModels = []string{"resnext-110", "resnet-50", "seq2seq"}

// doSubmit posts one submission. The third result reports the target looking
// down — transport failure or 5xx (a follower answers writes with 503 until
// promoted) — which is what rotates a failover pool.
func doSubmit(client *http.Client, url string, rng *rand.Rand) (int64, outcome, bool) {
	body := fmt.Sprintf(
		`{"model":%q,"mode":"async","threshold":0.05,"downscale":0.2}`,
		loadModels[rng.Intn(len(loadModels))])
	resp, err := client.Post(url+"/v1/jobs", "application/json",
		strings.NewReader(body))
	if err != nil {
		return 0, outcomeErr, true
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		var created struct {
			ID int64 `json:"id"`
		}
		if json.NewDecoder(resp.Body).Decode(&created) != nil || created.ID == 0 {
			return 0, outcomeErr, false
		}
		io.Copy(io.Discard, resp.Body)
		return created.ID, outcomeOK, false
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return 0, outcomeThrottled, false
	default:
		io.Copy(io.Discard, resp.Body)
		return 0, outcomeErr, resp.StatusCode >= 500
	}
}

func runOp(o op, cfg loadConfig, client, sseClient *http.Client,
	rng *rand.Rand, kd workload.KeyDist, store *idStore,
	h, overall *obs.AtomicHistogram, cnt *counters) {
	res := outcomeErr
	url := cfg.tg.url()
	srvDown := false
	switch o.kind {
	case opSubmit:
		var id int64
		if id, res, srvDown = doSubmit(client, url, rng); res == outcomeOK {
			store.add(id)
		}
	case opStatus:
		id := store.at(kd.Draw(rng, store.size()))
		resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%d", url, id))
		if err != nil {
			srvDown = true
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				res = outcomeOK
			}
			srvDown = resp.StatusCode >= 500
		}
	case opDelete:
		id := store.at(kd.Draw(rng, store.size()))
		req, _ := http.NewRequest(http.MethodDelete,
			fmt.Sprintf("%s/v1/jobs/%d", url, id), nil)
		resp, err := client.Do(req)
		if err != nil {
			srvDown = true
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				res = outcomeOK
			case http.StatusConflict: // already done/cancelled: expected
				res = outcomeConflict
			}
			srvDown = resp.StatusCode >= 500
		}
	case opSSE:
		// Connect, read the first bytes of the stream (replay or comment),
		// disconnect: measures subscriber-attach latency under churn.
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
			url+"/v1/events?since=0", nil)
		resp, err := sseClient.Do(req)
		if err != nil {
			srvDown = true
		} else {
			buf := make([]byte, 512)
			if _, rerr := resp.Body.Read(buf); rerr == nil || rerr == io.EOF {
				res = outcomeOK
			}
			resp.Body.Close()
		}
		cancel()
	}
	if srvDown {
		cfg.tg.fail()
	} else {
		cfg.tg.ok()
	}
	// Coordinated-omission-safe: latency runs from the intended start, so
	// queue wait behind a stalled daemon is charged to the daemon.
	lat := time.Since(o.intended).Seconds()
	h.Observe(lat)
	overall.Observe(lat)
	switch res {
	case outcomeOK:
		cnt.ok[o.kind].Add(1)
	case outcomeThrottled:
		cnt.throttled.Add(1)
		cnt.ok[o.kind].Add(1) // backpressure is correct behavior, not an error
	case outcomeConflict:
		cnt.conflicts.Add(1)
		cnt.ok[o.kind].Add(1)
	default:
		cnt.errs[o.kind].Add(1)
	}
}

func report(cfg loadConfig, weights [numOps]float64, elapsed time.Duration,
	total int, hists *[numOps]obs.AtomicHistogram, overall *obs.AtomicHistogram,
	cnt *counters, before, after clusterProbe) error {

	var okTotal, errTotal int64
	for k := opKind(0); k < numOps; k++ {
		okTotal += cnt.ok[k].Load()
		errTotal += cnt.errs[k].Load()
	}
	fmt.Printf("open-loop: rate=%g/s duration=%s clients=%d mix=%s dist=%s arrivals=%s\n",
		cfg.rate, cfg.duration, cfg.clients, cfg.mix, cfg.dist, cfg.arrivals)
	fmt.Printf("ops: %d attempted, %d ok, %d errors, %d throttled, %d conflicts in %s (%.0f/s completed)\n",
		total, okTotal, errTotal, cnt.throttled.Load(), cnt.conflicts.Load(),
		elapsed.Round(time.Millisecond), float64(okTotal+errTotal)/elapsed.Seconds())

	fmt.Println("latency from intended start (coordinated-omission safe):")
	for k := opKind(0); k < numOps; k++ {
		if weights[k] == 0 {
			continue
		}
		s := hists[k].Snapshot()
		if s.Count() == 0 {
			continue
		}
		fmt.Printf("  %-6s n=%-7d p50=%-9s p99=%-9s p999=%-9s max=%s\n",
			opNames[k], s.Count(),
			fmtSec(s.Quantile(0.50)), fmtSec(s.Quantile(0.99)),
			fmtSec(s.Quantile(0.999)), fmtSec(s.Max()))
	}
	all := overall.Snapshot()
	fmt.Printf("  %-6s n=%-7d p50=%-9s p99=%-9s p999=%-9s max=%s\n",
		"all", all.Count(),
		fmtSec(all.Quantile(0.50)), fmtSec(all.Quantile(0.99)),
		fmtSec(all.Quantile(0.999)), fmtSec(all.Max()))

	dRounds := after.Rounds - before.Rounds
	dOver := after.IntervalOverruns - before.IntervalOverruns
	overrunRate := 0.0
	if dRounds > 0 {
		overrunRate = float64(dOver) / float64(dRounds)
	}
	fmt.Printf("intervals: %d rounds, %d overruns (rate %.3f)\n", dRounds, dOver, overrunRate)

	if len(cfg.tg.urls) > 1 {
		fmt.Printf("failover: %d targets, %d switches, %d lost requests, blackout window %s, ended on %s\n",
			len(cfg.tg.urls), cfg.tg.switches.Load(), cfg.tg.lost.Load(),
			cfg.tg.blackout().Round(time.Millisecond), cfg.tg.url())
	}

	if cfg.benchName != "" && all.Count() > 0 {
		// go-bench format so benchjson (and its -diff warnings) can track the
		// open-loop numbers in BENCH_N.json alongside the micro-benchmarks.
		meanNs := all.Sum() / float64(all.Count()) * 1e9
		fmt.Printf("Benchmark%s \t %d \t %.0f ns/op \t %.0f ops/s \t %.3f p99-ms \t %.4f overrun-rate \t %.5f err-rate\n",
			cfg.benchName, all.Count(), meanNs,
			float64(okTotal+errTotal)/elapsed.Seconds(),
			all.Quantile(0.99)*1e3, overrunRate,
			errRate(errTotal, okTotal))
	}

	if r := errRate(errTotal, okTotal); r > cfg.maxErrRate {
		fmt.Printf("FAIL: error rate %.4f exceeds -max-error-rate %.4f\n", r, cfg.maxErrRate)
		os.Exit(1)
	}
	if cfg.maxP99 > 0 && time.Duration(all.Quantile(0.99)*float64(time.Second)) > cfg.maxP99 {
		fmt.Printf("FAIL: overall p99 %s exceeds -max-p99 %s\n",
			fmtSec(all.Quantile(0.99)), cfg.maxP99)
		os.Exit(1)
	}
	return nil
}

func errRate(errs, ok int64) float64 {
	if errs+ok == 0 {
		return 0
	}
	return float64(errs) / float64(errs+ok)
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON benchmark record, the repo's machine-readable performance
// trajectory (BENCH_N.json files at the repo root). Non-benchmark lines pass
// through to stdout unchanged, so it can sit at the end of a pipe without
// hiding the test output:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_2.json
//
// With -diff it also loads a previous record and prints per-benchmark ns/op
// and allocs/op deltas, the review artifact for performance PRs:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -o BENCH_2.json -diff BENCH_1.json
//
// -warn-over N prints a WARNING line for every diffed benchmark whose ns/op
// regressed by more than N percent (optionally restricted to names matching
// -warn-match). Warnings never change the exit status — they are a review
// signal for CI logs, not a gate; micro-benchmarks on shared runners are too
// noisy to fail a build on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra collects custom b.ReportMetric units (e.g. "ops/s", "p99-ms",
	// "overrun-rate" from the serving load benchmarks), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Record is the file layout: context lines from the bench header plus the
// parsed entries, in input order.
type Record struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output JSON file (default stdout only)")
	diff := flag.String("diff", "", "previous record to print ns/op and allocs/op deltas against")
	warnOver := flag.Float64("warn-over", 0, "with -diff: print WARNING lines for ns/op regressions above this percent (0 disables)")
	warnMatch := flag.String("warn-match", "", "with -warn-over: regexp limiting which benchmarks are checked (default all)")
	flag.Parse()
	var warnRe *regexp.Regexp
	if *warnMatch != "" {
		re, err := regexp.Compile(*warnMatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -warn-match:", err)
			os.Exit(1)
		}
		warnRe = re
	}

	var rec Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(rec.Benchmarks), *out)
	}
	if *diff != "" {
		if err := printDiff(*diff, rec, *warnOver, warnRe); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// printDiff compares the freshly parsed record against a previous JSON file,
// matching benchmarks by name. New or vanished benchmarks are flagged rather
// than silently dropped. With warnOver > 0, benchmarks (filtered by warnRe
// when non-nil) whose ns/op regressed beyond that percentage get a WARNING
// line; warnings never affect the exit status.
func printDiff(oldPath string, rec Record, warnOver float64, warnRe *regexp.Regexp) error {
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old Record
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("parse %s: %w", oldPath, err)
	}
	prev := make(map[string]Entry, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		prev[e.Name] = e
	}
	fmt.Printf("\nbenchmark deltas vs %s:\n", oldPath)
	fmt.Printf("%-36s %14s %11s %14s %11s\n", "name", "ns/op", "Δ", "allocs/op", "Δ")
	seen := make(map[string]bool, len(rec.Benchmarks))
	for _, e := range rec.Benchmarks {
		seen[e.Name] = true
		o, ok := prev[e.Name]
		if !ok {
			fmt.Printf("%-36s %14.0f %11s %14.0f %11s\n", e.Name, e.NsPerOp, "(new)", e.AllocsPerOp, "(new)")
			continue
		}
		fmt.Printf("%-36s %14.0f %11s %14.0f %11s\n",
			e.Name, e.NsPerOp, pctDelta(o.NsPerOp, e.NsPerOp),
			e.AllocsPerOp, pctDelta(o.AllocsPerOp, e.AllocsPerOp))
		if warnOver > 0 && o.NsPerOp > 0 && (warnRe == nil || warnRe.MatchString(e.Name)) {
			if pct := 100 * (e.NsPerOp - o.NsPerOp) / o.NsPerOp; pct > warnOver {
				fmt.Printf("WARNING: %s ns/op regressed %+.1f%% vs %s (budget %g%%)\n",
					e.Name, pct, oldPath, warnOver)
			}
		}
	}
	for _, o := range old.Benchmarks {
		if !seen[o.Name] {
			fmt.Printf("%-36s %14s %11s %14s %11s\n", o.Name, "-", "(gone)", "-", "(gone)")
		}
	}
	return nil
}

// pctDelta formats the relative change from old to cur; negative is an
// improvement for both tracked metrics.
func pctDelta(old, cur float64) string {
	if old == 0 {
		if cur == 0 {
			return "0%"
		}
		return "(was 0)"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-old)/old)
}

// parseLine parses one result line, e.g.
//
//	BenchmarkAllocate/jobs=100-8   3003   464695 ns/op   100097 B/op   1883 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: trimGOMAXPROCS(fields[0]), Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		case "MB/s":
			// speed column; not tracked
		default:
			if e.Extra == nil {
				e.Extra = make(map[string]float64)
			}
			e.Extra[fields[i+1]] = v
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// trimGOMAXPROCS drops the trailing "-N" procs suffix the bench runner
// appends, so records diff cleanly across machines.
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

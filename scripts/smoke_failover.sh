#!/usr/bin/env bash
# HA failover smoke: a leader and a warm-standby follower share one WAL
# directory; open-loop load runs against both URLs while the leader is
# kill -9ed mid-run. Asserts, in order:
#
#   1. the follower promotes itself to leader within one lease TTL
#      (polled from /v1/cluster's ha block),
#   2. admission is exactly-once across the cutover — the full WAL history
#      has no duplicate submit IDs (optimus-trace wal dump),
#   3. no acked submission was lost — every job ID the harness stored is
#      still served by the new leader,
#   4. the new leader keeps admitting (post-failover submit succeeds),
#   5. the promoted follower's /debug/bundle is valid JSON whose flight
#      recorder narrates the takeover,
#   6. (fail-stop phase) a live leader whose lease is stolen fail-stops
#      and leaves a bundle-failstop-<pid>.json on disk that explains why.
#
# Both daemons are built with -race so the whole failover path runs under
# the detector. Used by CI (make failover-smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

TTL=${TTL:-2s}
DUR=${DUR:-8s}
RATE=${RATE:-150}

workdir=$(mktemp -d)
lpid=""
fpid=""
cleanup() {
    kill -9 $lpid $fpid 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -race -o "$workdir/optimusd" ./cmd/optimusd
go build -o "$workdir/optimusd-load" ./cmd/optimusd-load
go build -o "$workdir/optimus-trace" ./cmd/optimus-trace
go build -o "$workdir/jsonok" ./cmd/jsonok

waldir="$workdir/wal"

"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/lport" \
    -wal-dir "$waldir" -fsync group -lease-ttl "$TTL" -ha-id leader \
    -nodes 16 -tick 100ms >"$workdir/leader.log" 2>&1 &
lpid=$!
for i in $(seq 1 50); do [ -s "$workdir/lport" ] && break; sleep 0.1; done
leader=$(cat "$workdir/lport")

"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/fport" \
    -wal-dir "$waldir" -follow -lease-ttl "$TTL" -ha-id follower \
    -nodes 16 -tick 100ms >"$workdir/follower.log" 2>&1 &
fpid=$!
for i in $(seq 1 50); do [ -s "$workdir/fport" ] && break; sleep 0.1; done
follower=$(cat "$workdir/fport")

echo "== failover smoke: leader $leader (pid $lpid), follower $follower (pid $fpid), ttl $TTL =="

# Readiness before any load: the leader must be fully up, and the follower
# must be ready-for-takeover (replay lag within bound) — distinct checks.
for url in "$leader" "$follower"; do
    ok=0
    for i in $(seq 1 50); do
        code=$(curl -s -o "$workdir/ready.json" -w '%{http_code}' "http://$url/readyz")
        [ "$code" = 200 ] && { ok=1; break; }
        sleep 0.1
    done
    [ "$ok" = 1 ] || { echo "FAIL: $url never ready:"; cat "$workdir/ready.json"; exit 1; }
done
echo "leader and follower both ready"

# Open-loop load against the pool; submit-heavy so the cutover is exercised
# on the write path. The harness tolerates the blackout (-max-error-rate 1)
# — the assertions below are the gate, not its error rate.
"$workdir/optimusd-load" -urls "http://$leader,http://$follower" \
    -duration "$DUR" -rate "$RATE" -clients 64 \
    -mix 'submit=60,status=40' -dist uniform \
    -max-error-rate 1 >"$workdir/load.log" 2>&1 &
loadpid=$!

# kill -9 the leader mid-run: no snapshot, no graceful WAL close.
sleep 3
kill -9 $lpid
killed_at=$(date +%s.%N)
echo "leader killed"

# 1. Follower must report itself leader once the lease runs out. The dead
# leader's last renewal can predate the kill by almost one TTL, so
# "takeover within one TTL of expiry" is a 2*TTL wall-clock budget from the
# kill (polled at 100ms).
ttl_s=${TTL%s}
role=""
promoted=0
for i in $(seq 1 $((ttl_s * 20))); do
    role=$(curl -sf "http://$follower/v1/cluster" | sed -n 's/.*"role":"\([a-z]*\)".*/\1/p' || true)
    if [ "$role" = "leader" ]; then promoted=1; break; fi
    sleep 0.1
done
if [ "$promoted" != 1 ]; then
    echo "FAIL: follower never promoted within 2x$TTL (role=$role)"
    tail -5 "$workdir/follower.log" "$workdir/leader.log"
    exit 1
fi
took=$(awk "BEGIN{printf \"%.1f\", $(date +%s.%N) - $killed_at}")
echo "follower promoted to leader in ${took}s (ttl $TTL)"

wait $loadpid || true
cat "$workdir/load.log"
grep -q '^failover:' "$workdir/load.log" || { echo "FAIL: no failover report"; exit 1; }

# 4. The new leader keeps admitting.
code=$(curl -s -o "$workdir/post.json" -w '%{http_code}' -X POST \
    -d '{"model":"resnet-50","mode":"async"}' "http://$follower/v1/jobs")
[ "$code" = "201" ] || { echo "FAIL: post-failover submit got $code"; exit 1; }
echo "post-failover submit OK"

# 2. Exactly-once admission: no job ID appears in two submit records.
"$workdir/optimus-trace" wal "$waldir" -o "$workdir/wal.jsonl" 2>"$workdir/walscan.log"
cat "$workdir/walscan.log"
dups=$(grep '"type":"submit"' "$workdir/wal.jsonl" \
    | sed 's/.*"payload":{"id":\([0-9]*\).*/\1/' | sort -n | uniq -d | wc -l)
[ "$dups" = "0" ] || { echo "FAIL: $dups duplicate admissions in WAL"; exit 1; }
nsub=$(grep -c '"type":"submit"' "$workdir/wal.jsonl")
echo "exactly-once admission: $nsub submits, 0 duplicates"

# 3. No acked submission lost: every submit ID in the log is served.
lost=0
for id in $(grep '"type":"submit"' "$workdir/wal.jsonl" \
    | sed 's/.*"payload":{"id":\([0-9]*\).*/\1/'); do
    curl -sf "http://$follower/v1/jobs/$id" >/dev/null || { lost=$((lost+1)); echo "lost job $id"; }
done
[ "$lost" = "0" ] || { echo "FAIL: $lost acked jobs missing after failover"; exit 1; }
echo "all $nsub acked submissions survived the failover"

# 5. The promoted follower's debug bundle narrates the takeover.
curl -s "http://$follower/debug/bundle" >"$workdir/bundle.json"
"$workdir/jsonok" <"$workdir/bundle.json" ||
    { echo "FAIL: /debug/bundle is not valid JSON:"; head -c 400 "$workdir/bundle.json"; exit 1; }
grep -q '"msg":"lease acquired"' "$workdir/bundle.json" ||
    { echo "FAIL: bundle flight tail missing lease acquisition"; exit 1; }
grep -q '"role":"leader"' "$workdir/bundle.json" ||
    { echo "FAIL: bundle HA block does not show leadership"; exit 1; }
echo "promoted follower's bundle narrates the takeover"

kill -TERM $fpid
wait $fpid || true
fpid=""
grep -i 'DATA RACE' "$workdir/leader.log" "$workdir/follower.log" && { echo "FAIL: race detected"; exit 1; }

# 6. Fail-stop phase: a standalone leader whose lease is stolen must
# fail-stop (not split-brain) and leave a bundle explaining why. Forge an
# intruder lease document with a higher term; the next renewal (TTL/3)
# sees a foreign holder, Fatalf fires, and the fail-stop hook writes
# bundle-failstop-<pid>.json next to the WAL before the process dies.
waldir2="$workdir/wal2"
"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/l2port" \
    -wal-dir "$waldir2" -fsync group -lease-ttl 1s -ha-id doomed \
    -nodes 16 -tick 100ms >"$workdir/doomed.log" 2>&1 &
l2pid=$!
for i in $(seq 1 50); do [ -s "$workdir/l2port" ] && break; sleep 0.1; done
expires=$(date -u -d '+60 seconds' +%Y-%m-%dT%H:%M:%SZ)
printf '{"holder":"intruder","term":99,"expires":"%s"}' "$expires" \
    >"$waldir2/LEASE.forged"
mv "$waldir2/LEASE.forged" "$waldir2/LEASE"
echo "lease forged; waiting for the doomed leader (pid $l2pid) to fail-stop"
dead=0
for i in $(seq 1 50); do
    kill -0 $l2pid 2>/dev/null || { dead=1; break; }
    sleep 0.1
done
[ "$dead" = 1 ] || { echo "FAIL: leader survived a stolen lease (split-brain)"; kill -9 $l2pid; exit 1; }
wait $l2pid 2>/dev/null && { echo "FAIL: fail-stop exited 0"; exit 1; }
fsbundle="$waldir2/bundle-failstop-$l2pid.json"
[ -s "$fsbundle" ] || { echo "FAIL: no fail-stop bundle at $fsbundle"; ls "$waldir2"; exit 1; }
"$workdir/jsonok" <"$fsbundle" ||
    { echo "FAIL: fail-stop bundle is not valid JSON:"; head -c 400 "$fsbundle"; exit 1; }
# The on-disk bundle is indented JSON ("key": "value"), unlike the compact
# HTTP encoding — allow the space in the greps.
grep -q '"msg": *"lease lost"' "$fsbundle" ||
    { echo "FAIL: fail-stop bundle's flight tail missing the lease loss"; exit 1; }
grep -q '"reason": *"fail-stop: leader lease lost' "$fsbundle" ||
    { echo "FAIL: fail-stop bundle missing the fail-stop reason"; exit 1; }
echo "fail-stop bundle $(basename "$fsbundle") explains the lease loss"

echo "failover smoke OK"

#!/usr/bin/env bash
# HA failover smoke: a leader and a warm-standby follower share one WAL
# directory; open-loop load runs against both URLs while the leader is
# kill -9ed mid-run. Asserts, in order:
#
#   1. the follower promotes itself to leader within one lease TTL
#      (polled from /v1/cluster's ha block),
#   2. admission is exactly-once across the cutover — the full WAL history
#      has no duplicate submit IDs (optimus-trace wal dump),
#   3. no acked submission was lost — every job ID the harness stored is
#      still served by the new leader,
#   4. the new leader keeps admitting (post-failover submit succeeds).
#
# Both daemons are built with -race so the whole failover path runs under
# the detector. Used by CI (make failover-smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

TTL=${TTL:-2s}
DUR=${DUR:-8s}
RATE=${RATE:-150}

workdir=$(mktemp -d)
lpid=""
fpid=""
cleanup() {
    kill -9 $lpid $fpid 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -race -o "$workdir/optimusd" ./cmd/optimusd
go build -o "$workdir/optimusd-load" ./cmd/optimusd-load
go build -o "$workdir/optimus-trace" ./cmd/optimus-trace

waldir="$workdir/wal"

"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/lport" \
    -wal-dir "$waldir" -fsync group -lease-ttl "$TTL" -ha-id leader \
    -nodes 16 -tick 100ms >"$workdir/leader.log" 2>&1 &
lpid=$!
for i in $(seq 1 50); do [ -s "$workdir/lport" ] && break; sleep 0.1; done
leader=$(cat "$workdir/lport")

"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/fport" \
    -wal-dir "$waldir" -follow -lease-ttl "$TTL" -ha-id follower \
    -nodes 16 -tick 100ms >"$workdir/follower.log" 2>&1 &
fpid=$!
for i in $(seq 1 50); do [ -s "$workdir/fport" ] && break; sleep 0.1; done
follower=$(cat "$workdir/fport")

echo "== failover smoke: leader $leader (pid $lpid), follower $follower (pid $fpid), ttl $TTL =="

# Open-loop load against the pool; submit-heavy so the cutover is exercised
# on the write path. The harness tolerates the blackout (-max-error-rate 1)
# — the assertions below are the gate, not its error rate.
"$workdir/optimusd-load" -urls "http://$leader,http://$follower" \
    -duration "$DUR" -rate "$RATE" -clients 64 \
    -mix 'submit=60,status=40' -dist uniform \
    -max-error-rate 1 >"$workdir/load.log" 2>&1 &
loadpid=$!

# kill -9 the leader mid-run: no snapshot, no graceful WAL close.
sleep 3
kill -9 $lpid
killed_at=$(date +%s.%N)
echo "leader killed"

# 1. Follower must report itself leader once the lease runs out. The dead
# leader's last renewal can predate the kill by almost one TTL, so
# "takeover within one TTL of expiry" is a 2*TTL wall-clock budget from the
# kill (polled at 100ms).
ttl_s=${TTL%s}
role=""
promoted=0
for i in $(seq 1 $((ttl_s * 20))); do
    role=$(curl -sf "http://$follower/v1/cluster" | sed -n 's/.*"role":"\([a-z]*\)".*/\1/p' || true)
    if [ "$role" = "leader" ]; then promoted=1; break; fi
    sleep 0.1
done
if [ "$promoted" != 1 ]; then
    echo "FAIL: follower never promoted within 2x$TTL (role=$role)"
    tail -5 "$workdir/follower.log" "$workdir/leader.log"
    exit 1
fi
took=$(awk "BEGIN{printf \"%.1f\", $(date +%s.%N) - $killed_at}")
echo "follower promoted to leader in ${took}s (ttl $TTL)"

wait $loadpid || true
cat "$workdir/load.log"
grep -q '^failover:' "$workdir/load.log" || { echo "FAIL: no failover report"; exit 1; }

# 4. The new leader keeps admitting.
code=$(curl -s -o "$workdir/post.json" -w '%{http_code}' -X POST \
    -d '{"model":"resnet-50","mode":"async"}' "http://$follower/v1/jobs")
[ "$code" = "201" ] || { echo "FAIL: post-failover submit got $code"; exit 1; }
echo "post-failover submit OK"

# 2. Exactly-once admission: no job ID appears in two submit records.
"$workdir/optimus-trace" wal "$waldir" -o "$workdir/wal.jsonl" 2>"$workdir/walscan.log"
cat "$workdir/walscan.log"
dups=$(grep '"type":"submit"' "$workdir/wal.jsonl" \
    | sed 's/.*"payload":{"id":\([0-9]*\).*/\1/' | sort -n | uniq -d | wc -l)
[ "$dups" = "0" ] || { echo "FAIL: $dups duplicate admissions in WAL"; exit 1; }
nsub=$(grep -c '"type":"submit"' "$workdir/wal.jsonl")
echo "exactly-once admission: $nsub submits, 0 duplicates"

# 3. No acked submission lost: every submit ID in the log is served.
lost=0
for id in $(grep '"type":"submit"' "$workdir/wal.jsonl" \
    | sed 's/.*"payload":{"id":\([0-9]*\).*/\1/'); do
    curl -sf "http://$follower/v1/jobs/$id" >/dev/null || { lost=$((lost+1)); echo "lost job $id"; }
done
[ "$lost" = "0" ] || { echo "FAIL: $lost acked jobs missing after failover"; exit 1; }
echo "all $nsub acked submissions survived the failover"

kill -TERM $fpid
wait $fpid || true
fpid=""
grep -i 'DATA RACE' "$workdir/leader.log" "$workdir/follower.log" && { echo "FAIL: race detected"; exit 1; }

echo "failover smoke OK"

#!/usr/bin/env bash
# Open-loop serving smoke: boot optimusd and drive it with the YCSB-style
# harness for 10 seconds at -cells 1 and -cells 4. The harness itself is the
# gate — it exits non-zero when any op errors (-max-error-rate 0) or the
# overall intended-start p99 breaches the SLO (-max-p99). Used by CI.
set -euo pipefail
cd "$(dirname "$0")/.."

DUR=${DUR:-10s}
RATE=${RATE:-300}
MAX_P99=${MAX_P99:-500ms}

workdir=$(mktemp -d)
pid=""
trap 'kill $pid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/optimusd" ./cmd/optimusd
go build -o "$workdir/optimusd-load" ./cmd/optimusd-load

for cells in 1 4; do
    rm -f "$workdir/port"
    "$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/port" \
        -cells "$cells" -nodes 16 -tick 100ms >"$workdir/d$cells.log" 2>&1 &
    pid=$!
    for i in $(seq 1 50); do
        [ -s "$workdir/port" ] && break
        sleep 0.1
    done
    addr=$(cat "$workdir/port")
    echo "== open-loop smoke: cells=$cells on $addr =="
    "$workdir/optimusd-load" -url "http://$addr" \
        -duration "$DUR" -rate "$RATE" -clients 128 \
        -mix 'submit=5,status=90,delete=3,sse=2' -dist zipfian \
        -max-error-rate 0 -max-p99 "$MAX_P99"
    kill -TERM $pid
    wait $pid || true
    pid=""
done

echo "open-loop smoke OK"

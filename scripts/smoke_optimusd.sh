#!/usr/bin/env bash
# End-to-end smoke test for the optimusd daemon: boot on a random port,
# submit a job over HTTP, poll it to a running allocation, take a graceful
# shutdown snapshot, restart with -restore, and verify the job survived.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill $pid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/optimusd" ./cmd/optimusd
go build -o "$workdir/optimusd-load" ./cmd/optimusd-load
go build -o "$workdir/jsonok" ./cmd/jsonok

"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/port" \
    -tick 100ms -snapshot "$workdir/state.json" >"$workdir/d1.log" 2>&1 &
pid=$!

for i in $(seq 1 50); do
    [ -s "$workdir/port" ] && break
    sleep 0.1
done
addr=$(cat "$workdir/port")
echo "daemon on $addr"

# Readiness gate: no traffic until /readyz reports every component up.
ready=0
for i in $(seq 1 50); do
    code=$(curl -s -o "$workdir/ready.json" -w '%{http_code}' "http://$addr/readyz")
    [ "$code" = 200 ] && { ready=1; break; }
    sleep 0.1
done
[ "$ready" = 1 ] || { echo "daemon never became ready:"; cat "$workdir/ready.json"; exit 1; }
"$workdir/jsonok" <"$workdir/ready.json" ||
    { echo "/readyz is not valid JSON:"; cat "$workdir/ready.json"; exit 1; }
grep -q '"engine"' "$workdir/ready.json" ||
    { echo "/readyz missing engine component:"; cat "$workdir/ready.json"; exit 1; }
curl -s "http://$addr/metrics" | grep -q '^optimus_ready 1' ||
    { echo "metrics missing optimus_ready gauge"; exit 1; }

code=$(curl -s -o "$workdir/submit.json" -w '%{http_code}' \
    -X POST "http://$addr/v1/jobs" \
    -d '{"model":"resnet-50","mode":"async","threshold":0.01}')
[ "$code" = 201 ] || { echo "submit returned $code"; cat "$workdir/submit.json"; exit 1; }
grep -q '"id":1' "$workdir/submit.json" || { echo "no job id in response"; exit 1; }

# Poll until the scheduler places the job.
for i in $(seq 1 50); do
    curl -s "http://$addr/v1/jobs/1" >"$workdir/status.json"
    grep -q '"state":"running"' "$workdir/status.json" && break
    sleep 0.1
done
grep -q '"state":"running"' "$workdir/status.json" || {
    echo "job never ran:"; cat "$workdir/status.json"; exit 1; }
grep -q '"workers":' "$workdir/status.json" || { echo "no allocation"; exit 1; }

curl -s "http://$addr/metrics" | grep -q '^optimus_jobs_arrived_total 1' ||
    { echo "metrics missing arrival counter"; exit 1; }
# The SSE stream never terminates on its own; let curl time out after the
# ring replay and inspect what it captured.
curl -s --max-time 2 "http://$addr/v1/events?since=0" >"$workdir/events.txt" || true
grep -q 'event: placed' "$workdir/events.txt" ||
    { echo "event stream missing placed event"; cat "$workdir/events.txt"; exit 1; }

# Decision tracing (-trace defaults on): the span export and the per-job
# audit must both serve non-empty, well-formed JSON.
curl -s "http://$addr/v1/trace" >"$workdir/trace.json"
"$workdir/jsonok" <"$workdir/trace.json" ||
    { echo "/v1/trace is not valid JSON:"; head -c 400 "$workdir/trace.json"; exit 1; }
grep -q '"name":"interval"' "$workdir/trace.json" ||
    { echo "trace has no interval spans"; head -c 400 "$workdir/trace.json"; exit 1; }
curl -s "http://$addr/v1/jobs/1/explain" >"$workdir/explain.json"
"$workdir/jsonok" <"$workdir/explain.json" ||
    { echo "/v1/jobs/1/explain is not valid JSON:"; cat "$workdir/explain.json"; exit 1; }
grep -q '"kind":"seed"' "$workdir/explain.json" ||
    { echo "explain has no seed grant:"; cat "$workdir/explain.json"; exit 1; }

# Debug bundle: one JSON document with build info, readiness, SLO burn,
# the flight-recorder tail and goroutine stacks.
curl -s "http://$addr/debug/bundle" >"$workdir/bundle.json"
"$workdir/jsonok" <"$workdir/bundle.json" ||
    { echo "/debug/bundle is not valid JSON:"; head -c 400 "$workdir/bundle.json"; exit 1; }
for field in '"build"' '"ready"' '"slo"' '"flight"' '"goroutines"'; do
    grep -q "$field" "$workdir/bundle.json" ||
        { echo "bundle missing $field:"; head -c 400 "$workdir/bundle.json"; exit 1; }
done
grep -q '"msg":"round"' "$workdir/bundle.json" ||
    { echo "bundle flight tail has no engine rounds"; exit 1; }
# Build identity is served everywhere it should be.
curl -s "http://$addr/v1/cluster" | grep -q '"build"' ||
    { echo "/v1/cluster missing build block"; exit 1; }
curl -s "http://$addr/metrics" | grep -q '^optimus_build_info{' ||
    { echo "metrics missing optimus_build_info"; exit 1; }
"$workdir/optimusd" -version | grep -q '^optimusd ' ||
    { echo "-version printed nothing"; exit 1; }

"$workdir/optimusd-load" -url "http://$addr" -n 200 -c 32

# Graceful shutdown writes the snapshot.
kill -TERM $pid
wait $pid
[ -s "$workdir/state.json" ] || { echo "no snapshot written"; exit 1; }

# Restart from the snapshot: the job must come back with its progress.
"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/port2" \
    -tick 100ms -snapshot "$workdir/state.json" -restore >"$workdir/d2.log" 2>&1 &
pid=$!
for i in $(seq 1 50); do
    [ -s "$workdir/port2" ] && break
    sleep 0.1
done
addr2=$(cat "$workdir/port2")
curl -s "http://$addr2/v1/jobs/1" >"$workdir/restored.json"
grep -Eq '"state":"(running|waiting|done)"' "$workdir/restored.json" ||
    { echo "job lost in restore:"; cat "$workdir/restored.json"; exit 1; }
grep -q '"progressEpochs":0,' "$workdir/restored.json" &&
    { echo "restored job lost its progress:"; cat "$workdir/restored.json"; exit 1; }
kill -TERM $pid
wait $pid

# Multi-cell mode: boot the sharded shared-state scheduler (-cells 4),
# submit a handful of jobs, and verify /v1/cluster reports per-cell stats
# with committed grants.
"$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/port3" \
    -cells 4 -nodes 16 -tick 100ms >"$workdir/d3.log" 2>&1 &
pid=$!
for i in $(seq 1 50); do
    [ -s "$workdir/port3" ] && break
    sleep 0.1
done
addr3=$(cat "$workdir/port3")
echo "multi-cell daemon on $addr3"
grep -q '4 cells' "$workdir/d3.log" ||
    { echo "daemon did not report 4 cells:"; cat "$workdir/d3.log"; exit 1; }

for model in resnet-50 inception-bn seq2seq dssm; do
    code=$(curl -s -o /dev/null -w '%{http_code}' \
        -X POST "http://$addr3/v1/jobs" \
        -d '{"model":"'"$model"'","mode":"async","threshold":0.01}')
    [ "$code" = 201 ] || { echo "multi-cell submit of $model returned $code"; exit 1; }
done

# Poll until the cells layer has committed grants for the jobs.
for i in $(seq 1 50); do
    curl -s "http://$addr3/v1/cluster" >"$workdir/cluster.json"
    grep -q '"commits":[1-9]' "$workdir/cluster.json" && break
    sleep 0.1
done
"$workdir/jsonok" <"$workdir/cluster.json" ||
    { echo "/v1/cluster is not valid JSON:"; head -c 400 "$workdir/cluster.json"; exit 1; }
grep -q '"cells"' "$workdir/cluster.json" ||
    { echo "cluster status missing per-cell stats:"; cat "$workdir/cluster.json"; exit 1; }
grep -q '"cell":3' "$workdir/cluster.json" ||
    { echo "cluster status missing cell 3:"; cat "$workdir/cluster.json"; exit 1; }
grep -q '"commits":[1-9]' "$workdir/cluster.json" ||
    { echo "no committed grants in multi-cell mode:"; cat "$workdir/cluster.json"; exit 1; }
curl -s "http://$addr3/metrics" | grep -q '^optimusd_cell_jobs{cell="0"}' ||
    { echo "metrics missing per-cell gauges"; exit 1; }
kill -TERM $pid
wait $pid

echo "optimusd smoke OK"

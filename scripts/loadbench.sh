#!/usr/bin/env bash
# Serving-path load benchmark: the exhibit behind BENCH_6.json.
#
# Two layers, one combined go-bench stream piped through benchjson:
#
#   1. In-process before/after — BenchmarkServingMix* and
#      BenchmarkServingCluster* drive identical traffic against a
#      single-mutex facade of the old serving path and against the sharded
#      daemon, reporting sustained ops/s and histogram p99 alongside ns/op.
#   2. End-to-end open-loop — optimusd-load fires a YCSB-style
#      submit/status/delete/SSE mix at a real optimusd over HTTP for
#      -cells 1, 4 and 8, recording coordinated-omission-safe latency and
#      the scheduler's interval-overrun rate.
#
# Environment knobs: OUT (default BENCH_6.json), DUR, RATE, CLIENTS, and
# DIFF=BENCH_6.json to print advisory deltas against a committed record.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_6.json}
DUR=${DUR:-10s}
RATE=${RATE:-500}
CLIENTS=${CLIENTS:-256}

workdir=$(mktemp -d)
pid=""
trap 'kill $pid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/optimusd" ./cmd/optimusd
go build -o "$workdir/optimusd-load" ./cmd/optimusd-load

{
    go test -run '^$' -bench '^BenchmarkServing' -benchmem ./internal/serve/

    for cells in 1 4 8; do
        rm -f "$workdir/port"
        "$workdir/optimusd" -addr 127.0.0.1:0 -portfile "$workdir/port" \
            -cells "$cells" -nodes 32 -tick 100ms \
            >"$workdir/d$cells.log" 2>&1 &
        pid=$!
        for i in $(seq 1 50); do
            [ -s "$workdir/port" ] && break
            sleep 0.1
        done
        addr=$(cat "$workdir/port")
        "$workdir/optimusd-load" -url "http://$addr" \
            -duration "$DUR" -rate "$RATE" -clients "$CLIENTS" \
            -mix 'submit=5,status=90,delete=3,sse=2' -dist zipfian \
            -max-error-rate 0 \
            -bench "ServingOpenLoop/dist=zipfian/cells=$cells"
        kill -TERM $pid
        wait $pid || true
        pid=""
    done
} | go run ./cmd/benchjson -o "$OUT" \
    ${DIFF:+-diff "$DIFF" -warn-over 15 -warn-match Serving}

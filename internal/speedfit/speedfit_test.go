package speedfit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// trueAsync evaluates Eqn 3 with known θ.
func trueAsync(th [4]float64, p, w int) float64 {
	pf, wf := float64(p), float64(w)
	return wf / (th[0] + th[1]*wf/pf + th[2]*wf + th[3]*pf)
}

// trueSync evaluates Eqn 4 with known θ and batch size M.
func trueSync(th [5]float64, m float64, p, w int) float64 {
	pf, wf := float64(p), float64(w)
	return 1 / (th[0]*m/wf + th[1] + th[2]*wf/pf + th[3]*wf + th[4]*pf)
}

func asyncSamples(th [4]float64, configs [][2]int, noise float64, seed int64) []Sample {
	r := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, len(configs))
	for _, c := range configs {
		s := trueAsync(th, c[0], c[1])
		s *= 1 + noise*r.NormFloat64()
		if s <= 0 {
			s = 1e-6
		}
		out = append(out, Sample{P: c[0], W: c[1], Speed: s})
	}
	return out
}

func grid(maxP, maxW int) [][2]int {
	var out [][2]int
	for p := 1; p <= maxP; p++ {
		for w := 1; w <= maxW; w++ {
			out = append(out, [2]int{p, w})
		}
	}
	return out
}

func TestFitAsyncRecoversSpeeds(t *testing.T) {
	// Paper Table 2 async coefficients: θ0=2.83, θ1=3.92, θ2=0.00, θ3=0.11.
	th := [4]float64{2.83, 3.92, 0.00, 0.11}
	samples := asyncSamples(th, grid(8, 8), 0, 1)
	m, err := Fit(Async, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 12; p++ {
		for w := 1; w <= 12; w++ {
			want := trueAsync(th, p, w)
			got := m.Speed(p, w)
			if math.Abs(got-want)/want > 0.01 {
				t.Fatalf("Speed(%d,%d) = %g, want %g", p, w, got, want)
			}
		}
	}
}

func TestFitSyncRecoversSpeeds(t *testing.T) {
	// Paper Table 2 sync coefficients: 1.02, 2.78, 4.92, 0.00, 0.02; pick a
	// batch size and rescale so speeds are O(0.1) like Fig 9.
	th := [5]float64{1.02, 2.78, 4.92, 0.001, 0.02}
	const M = 32
	var samples []Sample
	for _, c := range grid(6, 10) {
		samples = append(samples, Sample{P: c[0], W: c[1], Speed: trueSync(th, M, c[0], c[1])})
	}
	m, err := Fit(Sync, samples, M)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 8; p++ {
		for w := 1; w <= 12; w++ {
			want := trueSync(th, M, p, w)
			got := m.Speed(p, w)
			if math.Abs(got-want)/want > 0.01 {
				t.Fatalf("Speed(%d,%d) = %g, want %g", p, w, got, want)
			}
		}
	}
}

func TestFitSyncRequiresBatchSize(t *testing.T) {
	if _, err := Fit(Sync, nil, 0); err == nil {
		t.Error("expected error for zero batch size")
	}
}

func TestFitTooFewSamples(t *testing.T) {
	th := [4]float64{1, 1, 0.1, 0.1}
	samples := asyncSamples(th, [][2]int{{1, 1}, {2, 2}, {1, 2}}, 0, 1)
	if _, err := Fit(Async, samples, 0); err == nil {
		t.Error("expected error for too few samples")
	}
	// Exactly ncoef samples are allowed (the paper's 5-sample sync init).
	exact := asyncSamples(th, [][2]int{{1, 1}, {2, 2}, {1, 2}, {2, 1}}, 0, 1)
	if _, err := Fit(Async, exact, 0); err != nil {
		t.Errorf("exactly-determined fit rejected: %v", err)
	}
}

func TestFitSkipsInvalidSamples(t *testing.T) {
	th := [4]float64{2, 3, 0.05, 0.1}
	samples := asyncSamples(th, grid(5, 5), 0, 1)
	samples = append(samples,
		Sample{P: 0, W: 1, Speed: 1},
		Sample{P: 1, W: -1, Speed: 1},
		Sample{P: 1, W: 1, Speed: -5},
		Sample{P: 1, W: 1, Speed: math.NaN()},
	)
	m, err := Fit(Async, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := trueAsync(th, 3, 3)
	if got := m.Speed(3, 3); math.Abs(got-want)/want > 0.02 {
		t.Errorf("Speed(3,3) = %g, want %g", got, want)
	}
}

func TestModelSpeedEdgeCases(t *testing.T) {
	var unfitted Model
	if unfitted.Speed(1, 1) != 0 {
		t.Error("unfitted model should predict 0")
	}
	th := [4]float64{2, 3, 0.05, 0.1}
	m, err := Fit(Async, asyncSamples(th, grid(5, 5), 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Speed(0, 5) != 0 || m.Speed(5, 0) != 0 || m.Speed(-1, -1) != 0 {
		t.Error("non-positive configurations must predict 0 speed")
	}
}

func TestSyncSpeedHasInteriorMaximum(t *testing.T) {
	// §3.2 observation (c): with enough per-worker overhead, adding workers
	// eventually slows sync training. Verify the fitted model reproduces the
	// non-monotonicity of its ground truth.
	th := [5]float64{0.5, 0.1, 0.5, 0.3, 0.01}
	const M = 64
	var samples []Sample
	for _, c := range grid(4, 20) {
		samples = append(samples, Sample{P: c[0], W: c[1], Speed: trueSync(th, M, c[0], c[1])})
	}
	m, err := Fit(Sync, samples, M)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	best, bestW := 0.0, 0
	for w := 1; w <= 20; w++ {
		if s := m.Speed(p, w); s > best {
			best, bestW = s, w
		}
	}
	if bestW == 20 || bestW == 1 {
		t.Errorf("expected interior speed maximum, got w*=%d", bestW)
	}
	if m.Speed(p, 20) >= best {
		t.Error("speed at w=20 should be below the maximum")
	}
}

func TestAsyncDiminishingReturns(t *testing.T) {
	// §3.2 observation (b): adding servers helps with diminishing returns.
	th := [4]float64{2.83, 3.92, 0.0, 0.11}
	m, err := Fit(Async, asyncSamples(th, grid(10, 10), 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	const w = 10
	g1 := m.Speed(2, w) - m.Speed(1, w)
	g2 := m.Speed(6, w) - m.Speed(5, w)
	if g2 >= g1 {
		t.Errorf("marginal gain should shrink: Δ(1→2)=%g, Δ(5→6)=%g", g1, g2)
	}
}

func TestEstimatorAveragesNoise(t *testing.T) {
	th := [4]float64{2, 3, 0.05, 0.1}
	e := NewEstimator(Async, 0)
	r := rand.New(rand.NewSource(5))
	for _, c := range grid(5, 5) {
		truth := trueAsync(th, c[0], c[1])
		for rep := 0; rep < 20; rep++ {
			s := truth * (1 + 0.05*r.NormFloat64())
			if s <= 0 {
				s = truth
			}
			if err := e.Observe(c[0], c[1], s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.Configurations() != 25 {
		t.Fatalf("Configurations = %d, want 25", e.Configurations())
	}
	m, err := e.Fit()
	if err != nil {
		t.Fatal(err)
	}
	want := trueAsync(th, 4, 4)
	if got := m.Speed(4, 4); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Speed(4,4) = %g, want %g (±5%%)", got, want)
	}
}

func TestEstimatorObserveValidation(t *testing.T) {
	e := NewEstimator(Async, 0)
	if err := e.Observe(0, 1, 1); err == nil {
		t.Error("expected error for p=0")
	}
	if err := e.Observe(1, 1, 0); err == nil {
		t.Error("expected error for zero speed")
	}
	if err := e.Observe(1, 1, math.Inf(1)); err == nil {
		t.Error("expected error for infinite speed")
	}
}

func TestSamplingPlan(t *testing.T) {
	plan := SamplingPlan(5, 20)
	if len(plan) != 5 {
		t.Fatalf("plan length = %d, want 5", len(plan))
	}
	seen := make(map[[2]int]bool)
	for _, c := range plan {
		if c[0] <= 0 || c[1] <= 0 {
			t.Errorf("invalid configuration %v", c)
		}
		if c[0]+c[1] > 20 {
			t.Errorf("configuration %v exceeds maxTasks", c)
		}
		if seen[c] {
			t.Errorf("duplicate configuration %v", c)
		}
		seen[c] = true
	}
	if got := SamplingPlan(0, 10); got != nil {
		t.Errorf("SamplingPlan(0) = %v, want nil", got)
	}
	// Tiny maxTasks still yields at least (1,1).
	small := SamplingPlan(3, 2)
	if len(small) == 0 {
		t.Error("expected non-empty plan for maxTasks=2")
	}
}

func TestModeString(t *testing.T) {
	if Async.String() != "async" || Sync.String() != "sync" {
		t.Error("unexpected Mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

// Property: fitting noiseless data from the model family always reproduces
// the speeds to within 2% on the sampled region (Fig. 9 claim (a)).
func TestFitPropertyAsync(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		th := [4]float64{
			0.5 + 5*r.Float64(),
			0.5 + 5*r.Float64(),
			r.Float64() * 0.2,
			r.Float64() * 0.2,
		}
		samples := asyncSamples(th, grid(6, 6), 0, seed)
		m, err := Fit(Async, samples, 0)
		if err != nil {
			return false
		}
		for _, c := range grid(6, 6) {
			want := trueAsync(th, c[0], c[1])
			got := m.Speed(c[0], c[1])
			if math.Abs(got-want)/want > 0.02 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Fig. 8's claim — with ≥10 random samples out of the full grid,
// the mean estimation error stays below ~10% under mild noise.
func TestSampleEfficiency(t *testing.T) {
	th := [4]float64{2.83, 3.92, 0.01, 0.11}
	full := grid(12, 12)
	r := rand.New(rand.NewSource(21))
	var meanErr float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		idx := r.Perm(len(full))[:12]
		var configs [][2]int
		for _, i := range idx {
			configs = append(configs, full[i])
		}
		samples := asyncSamples(th, configs, 0.02, int64(trial))
		m, err := Fit(Async, samples, 0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range full {
			want := trueAsync(th, c[0], c[1])
			sum += math.Abs(m.Speed(c[0], c[1])-want) / want
		}
		meanErr += sum / float64(len(full))
	}
	meanErr /= trials
	if meanErr > 0.10 {
		t.Errorf("mean estimation error = %.1f%%, want < 10%%", meanErr*100)
	}
}

func TestEstimatorDecayTracksDrift(t *testing.T) {
	// The true speed of a configuration drops by half mid-stream (e.g. the
	// network got busy). A decaying estimator must track the new regime; the
	// plain mean stays stuck in between.
	observe := func(decay float64) float64 {
		e := NewEstimator(Async, 0)
		e.Decay = decay
		for i := 0; i < 50; i++ {
			if err := e.Observe(2, 4, 10); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if err := e.Observe(2, 4, 5); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range e.Samples() {
			if s.P == 2 && s.W == 4 {
				return s.Speed
			}
		}
		t.Fatal("configuration missing")
		return 0
	}
	plain := observe(0)
	decayed := observe(0.8)
	if math.Abs(plain-7.5) > 0.1 {
		t.Errorf("plain mean = %g, want ≈ 7.5", plain)
	}
	if math.Abs(decayed-5) > 0.2 {
		t.Errorf("decayed mean = %g, want ≈ 5 (tracking the new regime)", decayed)
	}
}

// TestEstimatorFitCacheMatchesRefit is the dirty-flag contract: cached fits
// must be indistinguishable from always-refitting on the same observations.
func TestEstimatorFitCacheMatchesRefit(t *testing.T) {
	th := [4]float64{0.02, 0.01, 0.003, 0.002}
	e := NewEstimator(Async, 0)
	n := 0
	for p := 1; p <= 6; p++ {
		for w := 1; w <= 6; w++ {
			if err := e.Observe(p, w, trueAsync(th, p, w)); err != nil {
				t.Fatal(err)
			}
			n++
			if n < 6 || n%5 != 0 {
				continue
			}
			got, gotErr := e.Fit()
			again, againErr := e.Fit() // no new data: cache hit
			if (gotErr == nil) != (againErr == nil) {
				t.Fatalf("n=%d: err %v vs cached err %v", n, gotErr, againErr)
			}
			want, wantErr := Fit(e.Mode, e.Samples(), e.BatchSize)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("n=%d: err %v vs fresh err %v", n, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if got.Residual != want.Residual || got.Residual != again.Residual ||
				len(got.Theta) != len(want.Theta) {
				t.Fatalf("n=%d: cached fit %+v != fresh fit %+v", n, got, want)
			}
			for i := range got.Theta {
				if got.Theta[i] != want.Theta[i] || got.Theta[i] != again.Theta[i] {
					t.Fatalf("n=%d: theta[%d] cached %g fresh %g", n, i, got.Theta[i], want.Theta[i])
				}
			}
		}
	}
}

// TestSamplesDeterministicOrder pins the (p, w) ordering of Samples: NNLS
// sums rows in floating point, so map-iteration order would make fitted
// coefficients — and with them whole simulator runs — irreproducible.
func TestSamplesDeterministicOrder(t *testing.T) {
	e := NewEstimator(Async, 0)
	for _, c := range [][2]int{{3, 1}, {1, 2}, {2, 2}, {1, 1}, {2, 1}} {
		if err := e.Observe(c[0], c[1], 1.0); err != nil {
			t.Fatal(err)
		}
	}
	got := e.Samples()
	want := [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}}
	for i, s := range got {
		if s.P != want[i][0] || s.W != want[i][1] {
			t.Fatalf("Samples()[%d] = (%d,%d), want (%d,%d)", i, s.P, s.W, want[i][0], want[i][1])
		}
	}
}

// Package speedfit implements the resource→training-speed models of Optimus
// (§3.2 of the paper). A job's training speed f(p, w) — steps completed per
// second with p parameter servers and w workers — is modeled as
//
//	async: f(p,w) = w · (θ0 + θ1·w/p + θ2·w + θ3·p)⁻¹        (Eqn 3)
//	sync:  f(p,w) = (θ0·M/w + θ1 + θ2·w/p + θ3·w + θ4·p)⁻¹   (Eqn 4)
//
// with non-negative θ. Both are linear in θ after transforming the response
// (w/f for async, 1/f for sync), so fitting reduces to NNLS — exactly the
// solver the paper uses. Coefficients are learned from a handful of sample
// runs before the job starts and recalibrated online as real (p, w, speed)
// observations arrive.
package speedfit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"optimus/internal/nnls"
)

// Mode distinguishes the two training regimes of the parameter-server
// architecture (§2.2).
type Mode int

const (
	// Async: workers proceed at their own pace; servers update per push.
	Async Mode = iota
	// Sync: all workers advance in lockstep; the global batch size M is
	// fixed and each worker processes M/w examples per step.
	Sync
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Async:
		return "async"
	case Sync:
		return "sync"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Sample is one observed training speed under a (p, w) configuration.
type Sample struct {
	P     int     // number of parameter servers, ≥ 1
	W     int     // number of workers, ≥ 1
	Speed float64 // steps per second, > 0
}

// Model is a fitted speed function.
type Model struct {
	Mode  Mode
	Theta []float64 // 4 coefficients for Async, 5 for Sync
	M     float64   // global batch size (Sync only)
	// Residual is the NNLS residual in the transformed (inverse-speed)
	// space, reported like the paper's "residual sum of squares" in Table 2.
	Residual float64
}

// Valid reports whether the model has been fitted.
func (m Model) Valid() bool { return len(m.Theta) > 0 }

// Speed predicts the training speed for a configuration. Non-positive p or w
// yields zero: a job with no workers or no servers makes no progress.
func (m Model) Speed(p, w int) float64 {
	if p <= 0 || w <= 0 || !m.Valid() {
		return 0
	}
	pf, wf := float64(p), float64(w)
	switch m.Mode {
	case Async:
		t := m.Theta
		den := t[0] + t[1]*wf/pf + t[2]*wf + t[3]*pf
		if den <= 0 {
			return 0
		}
		return wf / den
	case Sync:
		t := m.Theta
		den := t[0]*m.M/wf + t[1] + t[2]*wf/pf + t[3]*wf + t[4]*pf
		if den <= 0 {
			return 0
		}
		return 1 / den
	default:
		return 0
	}
}

// Fit learns a speed model from samples. For Sync mode, batchSize M must be
// positive; it is ignored for Async. At least numCoefficients+1 distinct
// samples are required.
func Fit(mode Mode, samples []Sample, batchSize float64) (Model, error) {
	var s fitScratch
	return s.fit(mode, samples, batchSize)
}

// fitScratch bundles the design matrix, right-hand side, and NNLS workspace
// one Fit needs, so an Estimator's periodic refits reuse the buffers and
// warm-start the solver from the previous refit's active set.
type fitScratch struct {
	ws  nnls.Workspace
	mat nnls.Matrix
	rhs []float64
}

// fit is Fit running on a reusable scratch.
func (s *fitScratch) fit(mode Mode, samples []Sample, batchSize float64) (Model, error) {
	ncoef := 4
	if mode == Sync {
		ncoef = 5
		if batchSize <= 0 {
			return Model{}, errors.New("speedfit: sync fitting requires a positive batch size")
		}
	}
	data := s.mat.Data[:0]
	rhs := s.rhs[:0]
	for _, smp := range samples {
		if smp.P <= 0 || smp.W <= 0 || smp.Speed <= 0 ||
			math.IsNaN(smp.Speed) || math.IsInf(smp.Speed, 0) {
			continue
		}
		pf, wf := float64(smp.P), float64(smp.W)
		switch mode {
		case Async:
			// w/f = θ0 + θ1·w/p + θ2·w + θ3·p
			data = append(data, 1, wf/pf, wf, pf)
			rhs = append(rhs, wf/smp.Speed)
		case Sync:
			// 1/f = θ0·M/w + θ1 + θ2·w/p + θ3·w + θ4·p
			data = append(data, batchSize/wf, 1, wf/pf, wf, pf)
			rhs = append(rhs, 1/smp.Speed)
		}
	}
	s.mat.Data, s.rhs = data, rhs
	s.mat.Rows, s.mat.Cols = len(rhs), ncoef
	// An exactly-determined system is acceptable: the paper initializes the
	// sync model (5 coefficients) from exactly 5 pre-run samples.
	if s.mat.Rows < ncoef {
		return Model{}, fmt.Errorf("speedfit: need at least %d valid samples, have %d",
			ncoef, s.mat.Rows)
	}
	theta, res, err := s.ws.Solve(&s.mat, rhs)
	if err != nil {
		return Model{}, fmt.Errorf("speedfit: NNLS failed: %w", err)
	}
	// The workspace owns theta; Model retains Theta, so copy it out.
	m := Model{Mode: mode, Theta: append([]float64(nil), theta...), M: batchSize, Residual: res * res}
	if m.Speed(1, 1) <= 0 {
		return Model{}, errors.New("speedfit: degenerate fit (zero speed at p=w=1)")
	}
	return m, nil
}

// Estimator accumulates speed observations for one job and refits on demand,
// the online half of §3.2. It deduplicates by configuration, keeping a
// running mean per (p, w) so noisy repeated observations average out.
//
// Decay, when set in (0, 1), turns the mean into an exponentially weighted
// one: each new observation of a configuration scales the old estimate by
// Decay. Runtime conditions drift — "job training speed is further
// influenced by many runtime factors, such as available bandwidth at the
// time" (§2.3) — so recent measurements should dominate stale ones.
type Estimator struct {
	Mode      Mode
	BatchSize float64
	Decay     float64

	acc map[[2]int]*accum

	// Fit cache: the fit is a pure function of the accumulated averages, so
	// it only needs to re-run when Observe has changed them since the last
	// Fit (the scheduler refits every job every interval, but most jobs gain
	// no new configuration data between intervals).
	dirty     bool
	fitted    bool
	cached    Model
	cachedErr error
	gen       uint64 // bumped by Observe; see Generation

	// scratch holds the sorted-sample buffer and NNLS workspace reused
	// across refits; allocated on first Fit.
	scratch *estScratch
}

type estScratch struct {
	samples []Sample
	fit     fitScratch
}

type accum struct {
	sum float64
	n   float64
}

// NewEstimator creates an estimator for the given training mode. batchSize
// is required for Sync jobs.
func NewEstimator(mode Mode, batchSize float64) *Estimator {
	return &Estimator{Mode: mode, BatchSize: batchSize, acc: make(map[[2]int]*accum)}
}

// Observe records one speed measurement for configuration (p, w).
func (e *Estimator) Observe(p, w int, speed float64) error {
	if p <= 0 || w <= 0 {
		return fmt.Errorf("speedfit: invalid configuration p=%d w=%d", p, w)
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return fmt.Errorf("speedfit: invalid speed %g", speed)
	}
	key := [2]int{p, w}
	a := e.acc[key]
	if a == nil {
		a = &accum{}
		e.acc[key] = a
	}
	if e.Decay > 0 && e.Decay < 1 {
		a.sum = a.sum*e.Decay + speed
		a.n = a.n*e.Decay + 1
	} else {
		a.sum += speed
		a.n++
	}
	e.dirty = true
	e.gen++
	return nil
}

// Generation is a change-tracking stamp for incremental schedulers: it is
// always non-zero and advances exactly when an accepted Observe changes the
// accumulated averages (and therefore possibly the fitted model). Equal
// generations guarantee identical Fit results, given unchanged settings.
func (e *Estimator) Generation() uint64 { return e.gen + 1 }

// Configurations reports how many distinct (p, w) points have been observed.
func (e *Estimator) Configurations() int { return len(e.acc) }

// Samples returns the averaged per-configuration observations, ordered by
// (p, w). The order is deterministic on purpose: NNLS accumulates rows in
// floating point, so map-iteration order would leak run-to-run jitter into
// the fitted coefficients and break the simulator's reproducibility.
func (e *Estimator) Samples() []Sample {
	return e.samplesInto(make([]Sample, 0, len(e.acc)))
}

// Accum exports the raw per-configuration accumulators as (p, w, sum, n)
// rows ordered by (p, w). Unlike Samples, which collapses each configuration
// to its mean, the rows carry the observation weights, so an estimator
// rebuilt via SetAccum continues averaging exactly where this one left off —
// the property a durable snapshot needs for byte-identical refits.
func (e *Estimator) Accum() [][4]float64 {
	out := make([][4]float64, 0, len(e.acc))
	for key, a := range e.acc {
		out = append(out, [4]float64{float64(key[0]), float64(key[1]), a.sum, a.n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// SetAccum replaces the estimator's state with rows from Accum. Invalid rows
// (non-positive configuration or weight) are dropped.
func (e *Estimator) SetAccum(rows [][4]float64) {
	e.acc = make(map[[2]int]*accum, len(rows))
	for _, r := range rows {
		p, w := int(r[0]), int(r[1])
		if p < 1 || w < 1 || r[3] <= 0 {
			continue
		}
		e.acc[[2]int{p, w}] = &accum{sum: r[2], n: r[3]}
	}
	e.dirty = true
	e.fitted = false
	e.gen++
}

// samplesInto appends the averaged observations to dst (reusing its backing
// array) and sorts them by (p, w).
func (e *Estimator) samplesInto(dst []Sample) []Sample {
	out := dst
	for key, a := range e.acc {
		out = append(out, Sample{P: key[0], W: key[1], Speed: a.sum / a.n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].W < out[j].W
	})
	return out
}

// Fit produces a model from everything observed so far. The result is cached
// until the next Observe: re-fitting without new data always reproduces the
// same model, so the cache is exact, not approximate.
func (e *Estimator) Fit() (Model, error) {
	if e.fitted && !e.dirty {
		return e.cached, e.cachedErr
	}
	if e.scratch == nil {
		e.scratch = new(estScratch)
	}
	e.scratch.samples = e.samplesInto(e.scratch.samples[:0])
	e.cached, e.cachedErr = e.scratch.fit.fit(e.Mode, e.scratch.samples, e.BatchSize)
	e.fitted, e.dirty = true, false
	return e.cached, e.cachedErr
}

// SamplingPlan returns a small set of (p, w) configurations for the
// pre-run profiling phase (§3.2 "Model fitting": the paper finds 5–10 sample
// runs suffice for <10% error). Configurations are spread across the
// p:w space up to maxTasks total tasks per run.
func SamplingPlan(n, maxTasks int) [][2]int {
	if n <= 0 {
		return nil
	}
	if maxTasks < 2 {
		maxTasks = 2
	}
	// Cover ratios p:w in {1:4, 1:2, 1:1, 2:1} and a couple of scales.
	ratios := [][2]int{{1, 4}, {1, 2}, {1, 1}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2}}
	var plan [][2]int
	seen := make(map[[2]int]bool)
	scale := 1
	for len(plan) < n {
		for _, r := range ratios {
			p, w := r[0]*scale, r[1]*scale
			if p+w > maxTasks {
				continue
			}
			key := [2]int{p, w}
			if seen[key] {
				continue
			}
			seen[key] = true
			plan = append(plan, key)
			if len(plan) == n {
				return plan
			}
		}
		scale++
		if scale > maxTasks {
			break
		}
	}
	return plan
}

// Package psassign implements the parameter-block→parameter-server
// assignment strategies of §5.3: MXNet's default threshold heuristic (small
// blocks to a random server, big blocks sliced across all servers) and the
// paper's Parameter Assignment Algorithm (PAA), plus the imbalance metrics
// of Table 3 and a load-aware step-time model that quantifies how imbalance
// slows training (Figs 20–21).
package psassign

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// Assignment is the outcome of distributing a model's parameter blocks over
// p parameter servers.
type Assignment struct {
	// Bytes[i] is the number of parameters (not raw bytes) hosted by PS i.
	Bytes []int64
	// Requests[i] is the number of parameter-update requests PS i serves
	// per worker per training step (one request per hosted block/partition).
	Requests []int
}

// NumPS returns the number of parameter servers.
func (a Assignment) NumPS() int { return len(a.Bytes) }

// TotalRequests is the total number of update requests per worker per step —
// Table 3's third column. Slicing a block across servers multiplies its
// requests.
func (a Assignment) TotalRequests() int {
	t := 0
	for _, r := range a.Requests {
		t += r
	}
	return t
}

// MaxSizeDiff is the maximal difference of hosted parameter counts between
// two servers — Table 3's first column.
func (a Assignment) MaxSizeDiff() int64 {
	if len(a.Bytes) == 0 {
		return 0
	}
	lo, hi := a.Bytes[0], a.Bytes[0]
	for _, b := range a.Bytes {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	return hi - lo
}

// MaxRequestDiff is the maximal difference of request counts between two
// servers — Table 3's second column.
func (a Assignment) MaxRequestDiff() int {
	if len(a.Requests) == 0 {
		return 0
	}
	lo, hi := a.Requests[0], a.Requests[0]
	for _, r := range a.Requests {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return hi - lo
}

// MaxBytes is the parameter count on the most loaded server.
func (a Assignment) MaxBytes() int64 {
	var hi int64
	for _, b := range a.Bytes {
		if b > hi {
			hi = b
		}
	}
	return hi
}

// DefaultMXNetThreshold is MXNet's default big-block threshold (§5.3: 10⁶
// parameters).
const DefaultMXNetThreshold = 1_000_000

// MXNet reproduces the default MXNet distribution: a block smaller than the
// threshold goes to one uniformly random server; a block at or above the
// threshold is sliced evenly across all servers (each slice is one request
// on its server). The random choice is seeded for reproducibility.
func MXNet(blocks []int64, p int, threshold int64, seed int64) (Assignment, error) {
	if p < 1 {
		return Assignment{}, fmt.Errorf("psassign: need at least 1 server, got %d", p)
	}
	if threshold <= 0 {
		threshold = DefaultMXNetThreshold
	}
	a := Assignment{Bytes: make([]int64, p), Requests: make([]int, p)}
	r := rand.New(rand.NewSource(seed))
	for _, b := range blocks {
		if b <= 0 {
			return Assignment{}, fmt.Errorf("psassign: invalid block size %d", b)
		}
		if b < threshold {
			i := r.Intn(p)
			a.Bytes[i] += b
			a.Requests[i]++
			continue
		}
		// Slice evenly across all servers.
		base := b / int64(p)
		rem := b % int64(p)
		for i := 0; i < p; i++ {
			part := base
			if int64(i) < rem {
				part++
			}
			if part > 0 {
				a.Bytes[i] += part
				a.Requests[i]++
			}
		}
	}
	return a, nil
}

// PAA implements the paper's Parameter Assignment Algorithm. Blocks are
// processed in decreasing size order against avg = total/p:
//
//   - tiny blocks (< smallFrac·avg) go to the server with the fewest
//     requests;
//   - medium blocks (≤ avg) go best-fit: the server with the smallest
//     remaining capacity (avg − assigned) that still accommodates them, or
//     the least-loaded server when none has room;
//   - large blocks (> avg) are sliced into ≤ avg partitions, each assigned
//     to the server with the least assigned parameters.
//
// smallFrac ≤ 0 selects the paper's default of 1%.
func PAA(blocks []int64, p int, smallFrac float64) (Assignment, error) {
	if p < 1 {
		return Assignment{}, fmt.Errorf("psassign: need at least 1 server, got %d", p)
	}
	if smallFrac <= 0 {
		smallFrac = 0.01
	}
	var total int64
	for _, b := range blocks {
		if b <= 0 {
			return Assignment{}, fmt.Errorf("psassign: invalid block size %d", b)
		}
		total += b
	}
	avg := float64(total) / float64(p)

	sorted := make([]int64, len(blocks))
	copy(sorted, blocks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })

	a := Assignment{Bytes: make([]int64, p), Requests: make([]int, p)}
	parts := make([][]int64, p) // per-server assigned block/partition sizes
	assign := func(i int, part int64) {
		a.Bytes[i] += part
		a.Requests[i]++
		parts[i] = append(parts[i], part)
	}
	for _, b := range sorted {
		bf := float64(b)
		switch {
		case bf > avg:
			// Slice into avg-sized partitions; each goes to the server with
			// the least assigned parameters.
			remaining := b
			for remaining > 0 {
				part := int64(avg)
				if part < 1 {
					part = 1
				}
				if part > remaining {
					part = remaining
				}
				assign(leastBytes(a), part)
				remaining -= part
			}
		case bf >= smallFrac*avg:
			// Best fit by remaining capacity.
			best, bestLeft := -1, math.Inf(1)
			for i := 0; i < p; i++ {
				left := avg - float64(a.Bytes[i])
				if left >= bf && left < bestLeft {
					best, bestLeft = i, left
				}
			}
			if best < 0 {
				// No server has nominal room: fall back to the server with
				// the fewest requests so neither bytes nor request counts
				// concentrate.
				best = leastRequests(a)
			}
			assign(best, b)
		default:
			// Tiny block: balance the request counts.
			assign(leastRequests(a), b)
		}
	}
	rebalanceRequests(&a, parts, avg)
	return a, nil
}

// rebalanceRequests implements PAA objective (c): minimize the maximal
// difference of request counts between servers. Small blocks (≤ 5% of the
// per-server average) migrate from the most- to the least-requested server
// until the spread reaches 1 or only large blocks remain — large blocks stay
// put so objective (a), size balance, is not sacrificed.
func rebalanceRequests(a *Assignment, parts [][]int64, avg float64) {
	limit := int64(avg * 0.05)
	if limit < 1 {
		limit = 1
	}
	for guard := 0; guard < 10*len(a.Bytes)*len(a.Bytes)+1000; guard++ {
		hi, lo := 0, 0
		for i := range a.Requests {
			if a.Requests[i] > a.Requests[hi] {
				hi = i
			}
			if a.Requests[i] < a.Requests[lo] {
				lo = i
			}
		}
		if a.Requests[hi]-a.Requests[lo] <= 1 {
			return
		}
		// Smallest movable block on the busiest server.
		smallest := -1
		for j, sz := range parts[hi] {
			if sz <= limit && (smallest < 0 || sz < parts[hi][smallest]) {
				smallest = j
			}
		}
		if smallest < 0 {
			return // nothing movable without hurting size balance
		}
		sz := parts[hi][smallest]
		parts[hi] = append(parts[hi][:smallest], parts[hi][smallest+1:]...)
		parts[lo] = append(parts[lo], sz)
		a.Bytes[hi] -= sz
		a.Bytes[lo] += sz
		a.Requests[hi]--
		a.Requests[lo]++
	}
}

func leastBytes(a Assignment) int {
	best := 0
	for i := range a.Bytes {
		if a.Bytes[i] < a.Bytes[best] {
			best = i
		}
	}
	return best
}

func leastRequests(a Assignment) int {
	best := 0
	for i := range a.Requests {
		if a.Requests[i] < a.Requests[best] ||
			(a.Requests[i] == a.Requests[best] && a.Bytes[i] < a.Bytes[best]) {
			best = i
		}
	}
	return best
}

// perRequestOverhead is the per-update-request handling cost on a parameter
// server, per worker (connection/control-message processing, §3.2's
// communication-overhead term broken down per request).
const perRequestOverhead = 0.0004 // seconds

// StepTime evaluates the Eqn-2 step time under an explicit parameter
// assignment: the transfer and update terms are driven by the busiest
// server's parameter share (instead of the balanced S/p), and request
// handling adds per-request overhead on the busiest server. This is the
// mechanism behind Figs 20–21: imbalance inflates the slowest PS's work and
// with it the whole synchronous step.
func StepTime(m *workload.Model, mode speedfit.Mode, w int, a Assignment) float64 {
	p := a.NumPS()
	if p < 1 || w < 1 {
		return math.Inf(1)
	}
	wf := float64(w)
	var mEff float64
	if mode == speedfit.Sync {
		mEff = float64(m.GlobalBatch) / wf
	} else {
		mEff = float64(m.BatchPerWkr)
	}
	compute := mEff*m.FwdPerEx + m.Backward

	maxBytes := float64(a.MaxBytes()) * 4 // parameters → bytes (float32)
	transfer := 2 * maxBytes * wf / m.PSBandwidth
	update := (maxBytes / (m.ModelBytes / float64(p))) * // load relative to balanced
		(m.ModelBytes / m.UpdateRate) * wf / float64(p)

	maxReq := 0
	for _, r := range a.Requests {
		if r > maxReq {
			maxReq = r
		}
	}
	reqOverhead := perRequestOverhead * float64(maxReq) * wf

	overhead := m.OverheadWkr*wf + m.OverheadPS*float64(p)
	return compute + transfer + update + reqOverhead + overhead
}

// Speed converts StepTime to steps/second for the mode.
func Speed(m *workload.Model, mode speedfit.Mode, w int, a Assignment) float64 {
	t := StepTime(m, mode, w, a)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	if mode == speedfit.Async {
		return float64(w) / t
	}
	return 1 / t
}

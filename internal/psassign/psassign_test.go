package psassign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

func resnetBlocks(t *testing.T) []int64 {
	t.Helper()
	m := workload.ZooByName("resnet-50")
	if m == nil {
		t.Fatal("resnet-50 missing from zoo")
	}
	return m.ParameterBlocks()
}

func sum(bs []int64) int64 {
	var s int64
	for _, b := range bs {
		s += b
	}
	return s
}

func TestMXNetConservesParameters(t *testing.T) {
	blocks := resnetBlocks(t)
	a, err := MXNet(blocks, 10, DefaultMXNetThreshold, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(a.Bytes); got != sum(blocks) {
		t.Errorf("assigned %d params, want %d", got, sum(blocks))
	}
	if a.NumPS() != 10 {
		t.Errorf("NumPS = %d", a.NumPS())
	}
}

func TestPAAConservesParameters(t *testing.T) {
	blocks := resnetBlocks(t)
	a, err := PAA(blocks, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(a.Bytes); got != sum(blocks) {
		t.Errorf("assigned %d params, want %d", got, sum(blocks))
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := MXNet([]int64{1}, 0, 0, 1); err == nil {
		t.Error("MXNet accepted p=0")
	}
	if _, err := PAA([]int64{1}, 0, 0); err == nil {
		t.Error("PAA accepted p=0")
	}
	if _, err := MXNet([]int64{0}, 2, 0, 1); err == nil {
		t.Error("MXNet accepted zero block")
	}
	if _, err := PAA([]int64{-5}, 2, 0); err == nil {
		t.Error("PAA accepted negative block")
	}
}

// Table 3's qualitative content: PAA yields (a) much smaller size imbalance,
// (b) much smaller request imbalance, (c) fewer total requests than MXNet.
func TestTable3Shape(t *testing.T) {
	blocks := resnetBlocks(t)
	const p = 10
	mx, err := MXNet(blocks, p, DefaultMXNetThreshold, 7)
	if err != nil {
		t.Fatal(err)
	}
	paa, err := PAA(blocks, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MXNet: sizeDiff=%.2fM reqDiff=%d total=%d",
		float64(mx.MaxSizeDiff())/1e6, mx.MaxRequestDiff(), mx.TotalRequests())
	t.Logf("PAA:   sizeDiff=%.2fM reqDiff=%d total=%d",
		float64(paa.MaxSizeDiff())/1e6, paa.MaxRequestDiff(), paa.TotalRequests())

	if paa.MaxSizeDiff() >= mx.MaxSizeDiff() {
		t.Errorf("PAA size diff %d not below MXNet %d",
			paa.MaxSizeDiff(), mx.MaxSizeDiff())
	}
	if paa.MaxRequestDiff() >= mx.MaxRequestDiff() {
		t.Errorf("PAA request diff %d not below MXNet %d",
			paa.MaxRequestDiff(), mx.MaxRequestDiff())
	}
	if paa.TotalRequests() >= mx.TotalRequests() {
		t.Errorf("PAA total requests %d not below MXNet %d",
			paa.TotalRequests(), mx.TotalRequests())
	}
	// The paper: PAA keeps request diff at 1 and never splits more blocks
	// than necessary. Our PAA may split the giant blocks only.
	if paa.MaxRequestDiff() > 3 {
		t.Errorf("PAA request diff %d, want ≤ 3", paa.MaxRequestDiff())
	}
}

// Fig 20: PAA's speed advantage over MXNet grows with the number of servers.
func TestFig20AdvantageGrowsWithPS(t *testing.T) {
	m := workload.ZooByName("resnet-50")
	blocks := m.ParameterBlocks()
	const w = 10
	ratioAt := func(p int) float64 {
		mx, err := MXNet(blocks, p, DefaultMXNetThreshold, 3)
		if err != nil {
			t.Fatal(err)
		}
		paa, err := PAA(blocks, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		return Speed(m, speedfit.Sync, w, paa) / Speed(m, speedfit.Sync, w, mx)
	}
	r4, r20 := ratioAt(4), ratioAt(20)
	t.Logf("PAA/MXNet speed ratio: p=4 → %.3f, p=20 → %.3f", r4, r20)
	if r4 < 1.0 {
		t.Errorf("PAA slower than MXNet at p=4: ratio %.3f", r4)
	}
	if r20 <= r4 {
		t.Errorf("advantage should grow with p: %.3f at 4 vs %.3f at 20", r4, r20)
	}
}

// Fig 21: PAA speeds up every model in the zoo (up to ~29% in the paper).
func TestFig21AllModelsImprove(t *testing.T) {
	const p, w = 10, 10
	for _, m := range workload.Zoo() {
		blocks := m.ParameterBlocks()
		mx, err := MXNet(blocks, p, DefaultMXNetThreshold, 5)
		if err != nil {
			t.Fatal(err)
		}
		paa, err := PAA(blocks, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		sp, sm := Speed(m, speedfit.Sync, w, paa), Speed(m, speedfit.Sync, w, mx)
		if sp < sm*0.999 {
			t.Errorf("%s: PAA %.4f slower than MXNet %.4f", m.Name, sp, sm)
		}
	}
}

func TestStepTimeEdgeCases(t *testing.T) {
	m := workload.ZooByName("cnn-rand")
	var empty Assignment
	if got := StepTime(m, speedfit.Sync, 5, empty); got != got+0 && got <= 0 {
		t.Error("StepTime with no servers should be +Inf")
	}
	if got := Speed(m, speedfit.Sync, 0, empty); got != 0 {
		t.Errorf("Speed with w=0 = %g, want 0", got)
	}
}

func TestAssignmentMetricsEmpty(t *testing.T) {
	var a Assignment
	if a.MaxSizeDiff() != 0 || a.MaxRequestDiff() != 0 || a.TotalRequests() != 0 {
		t.Error("empty assignment metrics should be zero")
	}
}

// Property: PAA never splits a block smaller than avg, so total requests ≤
// blocks + p·(number of giant blocks); and all parameters are conserved.
func TestPAAProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 1 + r.Intn(16)
		n := 1 + r.Intn(60)
		blocks := make([]int64, n)
		var total int64
		giants := 0
		for i := range blocks {
			blocks[i] = 1 + int64(r.Intn(2_000_000))
			total += blocks[i]
		}
		avg := float64(total) / float64(p)
		for _, b := range blocks {
			if float64(b) > avg {
				giants++
			}
		}
		a, err := PAA(blocks, p, 0)
		if err != nil {
			return false
		}
		if sum(a.Bytes) != total {
			return false
		}
		// Each giant block contributes at most ceil(b/avg) ≤ p+1 requests.
		if a.TotalRequests() > n+giants*(p+1) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: PAA's size imbalance is bounded by the largest non-giant block
// (or the slice size), so it is never catastrophically uneven.
func TestPAABalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := 2 + r.Intn(10)
		blocks := make([]int64, 20+r.Intn(80))
		for i := range blocks {
			blocks[i] = 1 + int64(r.Intn(500_000))
		}
		a, err := PAA(blocks, p, 0)
		if err != nil {
			return false
		}
		var maxBlock int64
		for _, b := range blocks {
			if b > maxBlock {
				maxBlock = b
			}
		}
		var total int64
		for _, b := range blocks {
			total += b
		}
		avg := total / int64(p)
		bound := maxBlock
		if avg > bound {
			bound = avg
		}
		return a.MaxSizeDiff() <= 2*bound
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

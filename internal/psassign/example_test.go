package psassign_test

import (
	"fmt"

	"optimus/internal/psassign"
)

// ExamplePAA shows the §5.3 Parameter Assignment Algorithm balancing a
// skewed block distribution — one giant embedding layer plus dust — across
// three parameter servers, versus MXNet's default threshold heuristic.
func ExamplePAA() {
	blocks := []int64{900, 40, 35, 30, 10, 5, 5, 5} // parameters per layer
	paa, err := psassign.PAA(blocks, 3, 0)
	if err != nil {
		panic(err)
	}
	mxnet, err := psassign.MXNet(blocks, 3, 1000, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PAA   size-diff=%d request-diff=%d\n", paa.MaxSizeDiff(), paa.MaxRequestDiff())
	fmt.Printf("MXNet size-diff=%d request-diff=%d\n", mxnet.MaxSizeDiff(), mxnet.MaxRequestDiff())
	// Output:
	// PAA   size-diff=39 request-diff=1
	// MXNet size-diff=955 request-diff=2
}

package psassign

import (
	"math/rand"
	"testing"
)

// FuzzPAA hardens the assignment algorithms: any positive block distribution
// must be conserved exactly, with non-negative per-server loads.
func FuzzPAA(f *testing.F) {
	f.Add(int64(1), 10, 4)
	f.Add(int64(2), 157, 10)
	f.Add(int64(3), 1, 1)
	f.Add(int64(4), 60, 16)

	f.Fuzz(func(t *testing.T, seed int64, nBlocks, servers int) {
		if nBlocks < 1 || nBlocks > 512 || servers < 1 || servers > 64 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		blocks := make([]int64, nBlocks)
		var total int64
		for i := range blocks {
			blocks[i] = 1 + int64(r.Intn(5_000_000))
			total += blocks[i]
		}
		for name, assign := range map[string]func() (Assignment, error){
			"paa":   func() (Assignment, error) { return PAA(blocks, servers, 0) },
			"mxnet": func() (Assignment, error) { return MXNet(blocks, servers, 0, seed) },
		} {
			a, err := assign()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var got int64
			for _, b := range a.Bytes {
				if b < 0 {
					t.Fatalf("%s: negative server load", name)
				}
				got += b
			}
			if got != total {
				t.Fatalf("%s: conserved %d of %d parameters", name, got, total)
			}
			if a.TotalRequests() < nBlocks {
				t.Fatalf("%s: %d requests for %d blocks", name, a.TotalRequests(), nBlocks)
			}
		}
	})
}

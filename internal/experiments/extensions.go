package experiments

import (
	"fmt"

	"optimus/internal/sim"
	"optimus/internal/workload"
)

func init() {
	register("ablation-priority", ablationPriority)
	register("stragglers", stragglerStudy)
	register("mixed", mixedWorkloads)
}

// ablationPriority reproduces §6.3's priority-factor study: damping the
// marginal gain of beginning-state jobs by 0.95 should reduce average JCT
// and makespan slightly (the paper measures 2.66% and 1.88%).
func ablationPriority(opt Options) (Table, error) {
	t := Table{
		ID:      "ablation-priority",
		Title:   "Priority factor for beginning-state jobs (§4.1/§6.3)",
		Columns: []string{"priority-factor", "avg-JCT(s)", "makespan(s)", "norm-JCT"},
		Notes:   "paper: factor 0.95 improves JCT 2.66% and makespan 1.88%",
	}
	factors := []float64{1.0, 0.95}
	cases := make([]testbedCase, len(factors))
	for i, factor := range factors {
		factor := factor
		cases[i] = testbedCase{
			policy: sim.OptimusPolicy(),
			mutate: func(c *sim.Config) { c.PriorityFactor = factor },
		}
	}
	stats, err := testbedSweep(opt, cases, 3)
	if err != nil {
		return Table{}, err
	}
	var baseJCT float64
	for i, factor := range factors {
		jct, span := stats[i].jct, stats[i].span
		if factor == 1.0 {
			baseJCT = jct
		}
		t.Rows = append(t.Rows, []string{
			f2(factor), fmt.Sprintf("%.0f", jct), fmt.Sprintf("%.0f", span),
			f2(jct / baseJCT),
		})
	}
	return t, nil
}

// stragglerStudy measures §5.2's straggler handling: with slow workers
// appearing at random, Optimus (which detects and replaces them each
// interval) should degrade less than the baselines (which do not).
func stragglerStudy(opt Options) (Table, error) {
	t := Table{
		ID:      "stragglers",
		Title:   "Straggler injection: slowdown vs straggler-free run (§5.2)",
		Columns: []string{"scheduler", "clean-JCT(s)", "straggler-JCT(s)", "slowdown"},
		Notes:   "Optimus replaces stragglers after one detection interval; baselines keep them",
	}
	// One fan-out for all six columns: each policy's clean and straggling
	// averages are independent runs.
	policies := []sim.Policy{sim.OptimusPolicy(), sim.DRFPolicy(), sim.TetrisPolicy()}
	var cases []testbedCase
	for _, policy := range policies {
		cases = append(cases,
			testbedCase{policy: policy},
			testbedCase{policy: policy, mutate: func(c *sim.Config) {
				c.StragglerProb = 0.4
				c.StragglerSlowdown = 0.5
			}})
	}
	stats, err := testbedSweep(opt, cases, 3)
	if err != nil {
		return Table{}, err
	}
	for i, policy := range policies {
		clean, strag := stats[2*i].jct, stats[2*i+1].jct
		t.Rows = append(t.Rows, []string{
			policy.Name, fmt.Sprintf("%.0f", clean), fmt.Sprintf("%.0f", strag),
			f2(strag / clean),
		})
	}
	return t, nil
}

// mixedWorkloads exercises the §7 extension where Optimus receives only a
// time-varying share of the cluster from a central resource manager (e.g.
// half the nodes during the day, all of them at night).
func mixedWorkloads(opt Options) (Table, error) {
	t := Table{
		ID:      "mixed",
		Title:   "Mixed workloads: time-varying cluster share (§7)",
		Columns: []string{"share-schedule", "scheduler", "avg-JCT(s)", "makespan(s)"},
		Notes:   "Optimus adapts each interval to the share it is granted",
	}
	schedules := []struct {
		name string
		fn   func(t float64) float64
	}{
		{"full-cluster", nil},
		{"half-cluster", func(float64) float64 { return 0.5 }},
		{"day-night", func(tm float64) float64 {
			// 0.5 for the first 2 hours ("day"), full afterwards ("night").
			if tm < 7200 {
				return 0.5
			}
			return 1.0
		}},
	}
	n := 15
	if opt.Quick {
		n = 6
	}
	jobs := workload.Generate(workload.GenConfig{
		N: n, Horizon: 4000, Seed: opt.Seed + 300, Downscale: 0.03,
	})
	policies := []sim.Policy{sim.OptimusPolicy(), sim.DRFPolicy()}
	var cfgs []sim.Config
	for _, sched := range schedules {
		for _, policy := range policies {
			cfg := simConfig(policy, jobs, opt.Seed)
			cfg.ShareSchedule = sched.fn
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return Table{}, err
	}
	for si, sched := range schedules {
		for pi, policy := range policies {
			s := results[si*len(policies)+pi].Summary
			t.Rows = append(t.Rows, []string{
				sched.name, policy.Name,
				fmt.Sprintf("%.0f", s.AvgJCT),
				fmt.Sprintf("%.0f", s.Makespan),
			})
		}
	}
	return t, nil
}

package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun smoke-tests every registered experiment in quick
// mode: it must produce a non-empty table with consistent row widths.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != id {
				t.Errorf("table ID %q, want %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Print(&buf)
			if !strings.Contains(buf.String(), tbl.Title) {
				t.Error("Print omitted the title")
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsCoverEveryPaperExhibit(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "table2", "table3", "overhead",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// Fig 11's headline shape: DRF and Tetris normalized JCT > 1 (Optimus wins).
func TestFig11Shape(t *testing.T) {
	tbl, err := Run("fig11", Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		normJCT := cell(t, row[1])
		switch row[0] {
		case "optimus":
			if normJCT != 1 {
				t.Errorf("optimus norm-JCT = %g, want 1", normJCT)
			}
		default:
			if normJCT <= 1 {
				t.Errorf("%s norm-JCT = %g, want > 1", row[0], normJCT)
			}
		}
	}
}

// Table 3's shape: PAA strictly better on all three metrics.
func TestTable3Shape(t *testing.T) {
	tbl, err := Run("table3", Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	mx, paa := tbl.Rows[0], tbl.Rows[1]
	for col := 1; col <= 3; col++ {
		if cell(t, paa[col]) >= cell(t, mx[col]) {
			t.Errorf("column %s: PAA %s not below MXNet %s",
				tbl.Columns[col], paa[col], mx[col])
		}
	}
}

// Fig 20's shape: PAA speedup at the largest PS count exceeds the smallest.
func TestFig20Shape(t *testing.T) {
	tbl, err := Run("fig20", Options{Quick: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl.Rows[0][3])
	last := cell(t, tbl.Rows[len(tbl.Rows)-1][3])
	if last <= first {
		t.Errorf("PAA speedup should grow with ps: %.3f → %.3f", first, last)
	}
}

// Fig 15's shape: error-free row is 1.00 and the largest error is ≥ it.
func TestFig15Shape(t *testing.T) {
	tbl, err := Run("fig15", Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] == "0" {
			if v := cell(t, row[2]); v < 0.95 || v > 1.05 {
				t.Errorf("zero-error norm-JCT = %g, want ≈ 1", v)
			}
		}
	}
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"optimus/internal/ascii"
	"optimus/internal/lossfit"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

func init() {
	register("table1", table1Workloads)
	register("fig1", fig1TrainingCurves)
	register("fig2", fig2TrainingTimes)
	register("fig4", fig4SpeedVsConfig)
	register("fig5", fig5LossCurves)
	register("fig6", fig6PredictionErrors)
	register("fig7", fig7OnlineFitting)
	register("fig8", fig8SampleEfficiency)
	register("fig9", fig9SpeedFunctions)
	register("fig10", fig10PlacementExample)
	register("table2", table2Coefficients)
}

// fig1TrainingCurves regenerates Fig. 1: training/validation loss and
// accuracy of ResNext-110 on CIFAR10 over epochs. Accuracy is derived from
// the loss trajectory (production models: loss convergence implies accuracy
// convergence, §2.1).
func fig1TrainingCurves(opt Options) (Table, error) {
	m := workload.ZooByName("resnext-110")
	total := m.EpochsToConverge(0.002, 3)
	points := 20
	if opt.Quick {
		points = 8
	}
	t := Table{
		ID:      "fig1",
		Title:   "Training curves of ResNext-110 on CIFAR10",
		Columns: []string{"epoch", "train-loss", "val-loss", "train-acc", "val-acc"},
		Notes:   "loss normalized to the first epoch; accuracy derived from loss progress",
	}
	l0, lInf := m.TrueLoss(1), m.LossB2
	var xs, losses, accs []float64
	for i := 0; i <= points; i++ {
		e := 1 + float64(i)/float64(points)*(total-1)
		l := m.TrueLoss(e)
		progress := (l0 - l) / (l0 - lInf)
		trainAcc := 0.10 + 0.85*progress
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", e),
			f(l), f(l * 1.12), // validation tracks training with a gap
			f2(trainAcc), f2(trainAcc - 0.03),
		})
		xs = append(xs, e)
		losses = append(losses, l)
		accs = append(accs, trainAcc)
	}
	t.Series = []ascii.Series{
		{Name: "train-loss", X: xs, Y: losses},
		{Name: "train-acc", X: xs, Y: accs},
	}
	return t, nil
}

// fig2TrainingTimes regenerates Fig. 2: time-to-convergence of every Table-1
// model on a single worker + single PS (the paper's one-GPU measurement).
func fig2TrainingTimes(Options) (Table, error) {
	t := Table{
		ID:      "fig2",
		Title:   "Training time to convergence per model (1 worker, 1 ps)",
		Columns: []string{"model", "epochs", "steps", "time", "time-seconds"},
		Notes:   "spans minutes to weeks, matching the paper's spread",
	}
	for _, m := range workload.Zoo() {
		epochs := m.EpochsToConverge(0.01, 3)
		steps := epochs * float64(m.StepsPerEpoch(speedfit.Sync, 1, 1))
		secs := steps * m.TrueStepTime(speedfit.Sync, 1, 1)
		t.Rows = append(t.Rows, []string{
			m.Name, fmt.Sprintf("%.0f", epochs), fmt.Sprintf("%.0f", steps),
			humanDuration(secs), fmt.Sprintf("%.0f", secs),
		})
	}
	return t, nil
}

func humanDuration(secs float64) string {
	switch {
	case secs < 120:
		return fmt.Sprintf("%.0fs", secs)
	case secs < 7200:
		return fmt.Sprintf("%.1fm", secs/60)
	case secs < 2*86400:
		return fmt.Sprintf("%.1fh", secs/3600)
	default:
		return fmt.Sprintf("%.1fd", secs/86400)
	}
}

// fig4SpeedVsConfig regenerates Fig. 4: ResNet-50 sync training speed (a)
// with 20 total containers split between PS and workers and (b) at a 1:1
// ratio with increasing scale.
func fig4SpeedVsConfig(Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	t := Table{
		ID:      "fig4",
		Title:   "ResNet-50 sync training speed vs resource configuration",
		Columns: []string{"panel", "workers", "ps", "steps/s"},
		Notes:   "panel a: interior optimum; panel b: diminishing/negative returns",
	}
	var xa, ya, xb, yb []float64
	for w := 1; w <= 19; w++ {
		s := m.TrueSpeed(speedfit.Sync, 20-w, w)
		t.Rows = append(t.Rows, []string{
			"a(total=20)", fmt.Sprint(w), fmt.Sprint(20 - w), f(s),
		})
		xa = append(xa, float64(w))
		ya = append(ya, s)
	}
	for w := 2; w <= 20; w += 2 {
		s := m.TrueSpeed(speedfit.Sync, w, w)
		t.Rows = append(t.Rows, []string{
			"b(1:1)", fmt.Sprint(w), fmt.Sprint(w), f(s),
		})
		xb = append(xb, float64(w))
		yb = append(yb, s)
	}
	t.Series = []ascii.Series{
		{Name: "total=20 (vs workers)", X: xa, Y: ya},
		{Name: "1:1 scale", X: xb, Y: yb},
	}
	return t, nil
}

// fig5LossCurves regenerates Fig. 5: normalized training-loss curves of all
// nine jobs against training progress (%).
func fig5LossCurves(Options) (Table, error) {
	t := Table{
		ID:      "fig5",
		Title:   "Normalized training-loss curves for all Table-1 jobs",
		Columns: []string{"model", "progress%", "normalized-loss"},
	}
	for _, m := range workload.Zoo() {
		total := m.EpochsToConverge(0.005, 3)
		l0 := m.TrueLoss(1)
		var xs, ys []float64
		for _, pct := range []float64{0, 10, 25, 50, 75, 100} {
			e := 1 + pct/100*(total-1)
			t.Rows = append(t.Rows, []string{
				m.Name, fmt.Sprintf("%.0f", pct), f(m.TrueLoss(e) / l0),
			})
			xs = append(xs, pct)
			ys = append(ys, m.TrueLoss(e)/l0)
		}
		switch m.Name {
		case "resnext-110", "seq2seq", "ds2":
			t.Series = append(t.Series, ascii.Series{Name: m.Name, X: xs, Y: ys})
		}
	}
	return t, nil
}

// fig6PredictionErrors regenerates Fig. 6: the convergence-prediction error
// of online fitting as training progresses, for every job.
func fig6PredictionErrors(opt Options) (Table, error) {
	t := Table{
		ID:      "fig6",
		Title:   "Convergence-prediction error vs training progress",
		Columns: []string{"model", "progress%", "error%"},
		Notes:   "error = (estimated total epochs − actual) / actual × 100",
	}
	rng := rand.New(rand.NewSource(opt.Seed + 6))
	marks := []float64{20, 40, 60, 80, 100}
	for _, m := range workload.Zoo() {
		total := m.EpochsToConverge(0.005, 3)
		fitter := lossfit.NewFitter()
		next := 0
		for e := 1.0; e <= total && next < len(marks); e++ {
			loss := m.TrueLoss(e) * (1 + 0.01*rng.NormFloat64())
			if loss <= 0 {
				loss = m.TrueLoss(e)
			}
			if err := fitter.Add(e, loss); err != nil {
				return Table{}, err
			}
			if e/total*100 >= marks[next] {
				errPct := math.NaN()
				if model, err := fitter.Fit(); err == nil {
					if est, err := model.StepsToConverge(0.005, 1, 3); err == nil {
						errPct = (est - total) / total * 100
					}
				}
				t.Rows = append(t.Rows, []string{
					m.Name, fmt.Sprintf("%.0f", marks[next]), f2(errPct),
				})
				next++
			}
		}
	}
	return t, nil
}

// fig7OnlineFitting regenerates Fig. 7: the fitted loss-curve coefficients
// for Seq2Seq as data accumulates. Ground truth: β0=0.21, β1=1.07, β2=0.07.
func fig7OnlineFitting(opt Options) (Table, error) {
	m := workload.ZooByName("seq2seq")
	t := Table{
		ID:      "fig7",
		Title:   "Online loss-model fitting for Seq2Seq",
		Columns: []string{"progress%", "beta0", "beta1", "beta2", "rms-residual"},
		Notes:   "paper's fit: β0=0.21 β1=1.07 β2=0.07 (our ground truth)",
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	total := m.EpochsToConverge(0.005, 3)
	var pts []lossfit.Point
	marks := []float64{25, 50, 75, 100}
	next := 0
	for e := 1.0; e <= total && next < len(marks); e++ {
		loss := m.TrueLoss(e) * (1 + 0.01*rng.NormFloat64())
		pts = append(pts, lossfit.Point{K: e, Loss: loss})
		if e/total*100 >= marks[next] {
			model, err := lossfit.FitPoints(pts, 5)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", marks[next]),
				f(model.B0), f(model.B1), f(model.B2 * model.MaxLoss), f(model.Residual),
			})
			next++
		}
	}
	return t, nil
}

// fig8SampleEfficiency regenerates Fig. 8: speed-model estimation error vs
// the number of pre-run (p,w) samples.
func fig8SampleEfficiency(opt Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	t := Table{
		ID:      "fig8",
		Title:   "Speed-estimation error vs number of profiling samples",
		Columns: []string{"samples", "mean-error%"},
		Notes:   "<10% error from ~10 samples, with diminishing returns (paper Fig. 8)",
	}
	rng := rand.New(rand.NewSource(opt.Seed + 8))
	var full [][2]int
	for p := 1; p <= 12; p++ {
		for w := 1; w <= 12; w++ {
			full = append(full, [2]int{p, w})
		}
	}
	counts := []int{6, 8, 10, 12, 16, 24}
	trials := 30
	if opt.Quick {
		trials = 8
	}
	for _, n := range counts {
		var meanErr float64
		ok := 0
		for trial := 0; trial < trials; trial++ {
			idx := rng.Perm(len(full))[:n]
			var samples []speedfit.Sample
			for _, i := range idx {
				c := full[i]
				truth := m.TrueSpeed(speedfit.Async, c[0], c[1])
				samples = append(samples, speedfit.Sample{
					P: c[0], W: c[1],
					Speed: truth * (1 + 0.02*rng.NormFloat64()),
				})
			}
			model, err := speedfit.Fit(speedfit.Async, samples, 0)
			if err != nil {
				continue
			}
			var sum float64
			for _, c := range full {
				truth := m.TrueSpeed(speedfit.Async, c[0], c[1])
				sum += math.Abs(model.Speed(c[0], c[1])-truth) / truth
			}
			meanErr += sum / float64(len(full))
			ok++
		}
		if ok == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), f2(meanErr / float64(ok) * 100),
		})
		if len(t.Series) == 0 {
			t.Series = []ascii.Series{{Name: "mean error %"}}
		}
		t.Series[0].X = append(t.Series[0].X, float64(n))
		t.Series[0].Y = append(t.Series[0].Y, meanErr/float64(ok)*100)
	}
	return t, nil
}

// speedSamples collects noisy ground-truth observations over a (p,w) grid.
func speedSamples(m *workload.Model, mode speedfit.Mode, maxP, maxW int,
	noise float64, rng *rand.Rand) []speedfit.Sample {
	var out []speedfit.Sample
	for p := 1; p <= maxP; p++ {
		for w := 1; w <= maxW; w++ {
			truth := m.TrueSpeed(mode, p, w)
			if truth <= 0 {
				continue
			}
			s := truth * (1 + noise*rng.NormFloat64())
			if s <= 0 {
				s = truth
			}
			out = append(out, speedfit.Sample{P: p, W: w, Speed: s})
		}
	}
	return out
}

// fig9SpeedFunctions regenerates Fig. 9: measured points vs fitted speed
// curves for ResNet-50 in both training modes (the paper's four panels).
func fig9SpeedFunctions(opt Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	rng := rand.New(rand.NewSource(opt.Seed + 9))
	t := Table{
		ID:      "fig9",
		Title:   "Measured vs fitted training speed, ResNet-50 (40 containers)",
		Columns: []string{"panel", "ps", "workers", "measured", "fitted"},
	}
	for _, mode := range []speedfit.Mode{speedfit.Async, speedfit.Sync} {
		samples := speedSamples(m, mode, 20, 20, 0.02, rng)
		model, err := speedfit.Fit(mode, samples, float64(m.GlobalBatch))
		if err != nil {
			return Table{}, err
		}
		for _, ps := range []int{6, 12, 18} {
			for w := 4; w <= 20; w += 4 {
				t.Rows = append(t.Rows, []string{
					mode.String(), fmt.Sprint(ps), fmt.Sprint(w),
					f(m.TrueSpeed(mode, ps, w)), f(model.Speed(ps, w)),
				})
			}
		}
	}
	return t, nil
}

// table2Coefficients regenerates Table 2: the fitted θ coefficients of the
// speed functions and their residuals.
func table2Coefficients(opt Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	rng := rand.New(rand.NewSource(opt.Seed + 2))
	t := Table{
		ID:      "table2",
		Title:   "Fitted speed-function coefficients (ResNet-50)",
		Columns: []string{"mode", "th0", "th1", "th2", "th3", "th4", "residual-ss"},
		Notes:   "compute+transfer terms dominate, as in the paper's Table 2",
	}
	for _, mode := range []speedfit.Mode{speedfit.Async, speedfit.Sync} {
		samples := speedSamples(m, mode, 20, 20, 0.01, rng)
		model, err := speedfit.Fit(mode, samples, float64(m.GlobalBatch))
		if err != nil {
			return Table{}, err
		}
		row := []string{mode.String()}
		for i := 0; i < 5; i++ {
			if i < len(model.Theta) {
				row = append(row, f(model.Theta[i]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, f(model.Residual))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig10PlacementExample regenerates the paper's worked placement example
// (§4.2 Fig. 10): 2 PS + 4 workers over a small homogeneous cluster. The
// cross-server transfer time of the Theorem-1 even spread must beat skewed
// spreads over the same servers and improve as the server count shrinks.
func fig10PlacementExample(Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	t := Table{
		ID:      "fig10",
		Title:   "Placement example: cross-server transfer time of 2 PS + 4 workers",
		Columns: []string{"placement", "servers", "transfer-time(s)"},
		Notes:   "Theorem 1: even counts on the fewest servers minimize transfer time",
	}
	cases := []struct {
		name   string
		spread workload.TaskSpread
	}{
		{"even-1-server", workload.EvenSpread(2, 4, 1)},
		{"even-2-servers", workload.EvenSpread(2, 4, 2)},
		{"even-3-servers", workload.EvenSpread(2, 4, 3)},
		{"paper(a)=even-2", workload.TaskSpread{PSOnNode: []int{1, 1, 0}, WorkersOnNode: []int{2, 2, 0}}},
		{"paper(b)=skewed", workload.TaskSpread{PSOnNode: []int{2, 0, 0}, WorkersOnNode: []int{1, 3, 0}}},
	}
	for _, c := range cases {
		used := 0
		for i := range c.spread.PSOnNode {
			if c.spread.PSOnNode[i]+c.spread.WorkersOnNode[i] > 0 {
				used++
			}
		}
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(used), f(m.CrossServerTransferTime(c.spread) * 2),
		})
	}
	return t, nil
}

// table1Workloads regenerates Table 1: the nine deep-learning jobs used for
// tests and experiments, with their reproduction physics alongside the
// paper's reported attributes.
func table1Workloads(Options) (Table, error) {
	t := Table{
		ID:    "table1",
		Title: "Deep learning jobs used for tests and experiments",
		Columns: []string{
			"model", "params(M)", "type", "domain", "dataset",
			"examples", "blocks", "sync-batch",
		},
	}
	for _, m := range workload.Zoo() {
		t.Rows = append(t.Rows, []string{
			m.Name, f(m.ParamsMillion), m.NetType, m.Domain, m.Dataset,
			fmt.Sprint(m.DatasetSize), fmt.Sprint(m.NumBlocks), fmt.Sprint(m.GlobalBatch),
		})
	}
	return t, nil
}

package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// render prints a table to bytes for exact comparison.
func render(t *testing.T, id string, opt Options) []byte {
	t.Helper()
	tbl, err := Run(id, opt)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	tbl.Print(&buf)
	return buf.Bytes()
}

// TestSerialParallelIdentical is the engine's golden determinism contract:
// the same seed must produce byte-identical tables whether the worker pool
// is serial or wide. Covers a sweep exhibit, the deduplicated error-injection
// sweep, the doubled-case straggler study, the shared-fault-schedule
// failures exhibit and the share-schedule mixed exhibit.
func TestSerialParallelIdentical(t *testing.T) {
	for _, id := range []string{"fig11", "fig15", "stragglers", "failures", "mixed"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := render(t, id, Options{Quick: true, Seed: 7, Parallel: 1})
			wide := render(t, id, Options{Quick: true, Seed: 7, Parallel: 8})
			if !bytes.Equal(serial, wide) {
				t.Errorf("serial and parallel output differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
					serial, wide)
			}
		})
	}
}

// TestForEachOrderStable checks that results land at their submission index
// no matter how the pool interleaves, for widths below, at and above n.
func TestForEachOrderStable(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 3, n, 2 * n} {
		out := make([]int, n)
		err := forEach(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachFirstErrorByIndex checks the deterministic error contract: the
// lowest-index failure is reported regardless of completion order, and every
// index still runs.
func TestForEachFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	var ran int64
	err := forEach(4, 16, func(i int) error {
		atomic.AddInt64(&ran, 1)
		switch i {
		case 3:
			return errLow
		case 12:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Errorf("got error %v, want the lowest-index one (%v)", err, errLow)
	}
	if ran != 16 {
		t.Errorf("ran %d of 16 indices", ran)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := forEach(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0 returned %v", err)
	}
}

// TestRunCountAdvances checks the CLI's run accounting: executing an exhibit
// must raise the process-wide simulator-run counter.
func TestRunCountAdvances(t *testing.T) {
	before := RunCount()
	if _, err := Run("overhead", Options{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := RunCount() - before; got < 1 {
		t.Errorf("RunCount advanced by %d, want >= 1", got)
	}
}

// TestWorkersDefault pins the Options.Parallel semantics: zero means "use
// the machine", explicit widths are honored verbatim.
func TestWorkersDefault(t *testing.T) {
	if w := (Options{}).workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
	for _, n := range []int{1, 2, 7} {
		if w := (Options{Parallel: n}).workers(); w != n {
			t.Errorf("Parallel=%d → workers %d", n, w)
		}
	}
}

// TestTestbedSweepMatchesSingleRuns cross-checks the engine against the
// direct path: a one-case sweep must reproduce exactly what hand-rolled
// serial sim.Run calls produce for the same seeds.
func TestTestbedSweepMatchesSingleRuns(t *testing.T) {
	opt := Options{Quick: true, Seed: 11, Parallel: 4}
	cases := []testbedCase{{policy: comparisonPolicies()[0]}}
	a, err := testbedSweep(opt, cases, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testbedSweep(Options{Quick: true, Seed: 11, Parallel: 1}, cases, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Errorf("parallel sweep %v != serial sweep %v", a, b)
	}
}

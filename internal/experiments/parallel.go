// Parallel execution engine for the experiment harness.
//
// Every paper exhibit decomposes into independent simulator runs — one per
// (policy, repetition, sweep-point) combination — and each sim.Config is
// fully self-contained: it owns its cluster, derives every random draw from
// its own Seed, and shares only immutable inputs (job specs, model physics)
// with its siblings. The engine fans those configurations across a worker
// pool and collects results in submission order, so the same seed produces
// byte-identical tables whether the pool has one worker or GOMAXPROCS.
package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"optimus/internal/metrics"
	"optimus/internal/sim"
	"optimus/internal/workload"
)

// workers resolves the worker-pool width: Options.Parallel when set,
// otherwise every available core.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// simRuns counts sim.Run executions across the process, for the CLI's
// wall-clock/run-count report.
var simRuns int64

// RunCount reports how many simulator runs the experiments package has
// executed so far in this process.
func RunCount() int64 { return atomic.LoadInt64(&simRuns) }

// forEach runs fn(i) for every i in [0, n) on `workers` goroutines. Work is
// handed out through an atomic cursor, so completion order is arbitrary but
// each index runs exactly once; callers write results into index i of a
// pre-sized slice to keep collection order-stable. All indices run even when
// some fail; the lowest-index error is returned, matching what a serial loop
// that failed fast would have reported deterministically.
func forEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runConfigs executes independent simulator configurations on the worker
// pool. results[i] corresponds to cfgs[i] regardless of completion order.
func runConfigs(opt Options, cfgs []sim.Config) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(cfgs))
	err := forEach(opt.workers(), len(cfgs), func(i int) error {
		atomic.AddInt64(&simRuns, 1)
		res, rerr := sim.Run(cfgs[i])
		if rerr != nil {
			return rerr
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// testbedCase is one column of a testbed sweep: a policy plus an optional
// config mutation, averaged over the shared repetition workloads.
type testbedCase struct {
	policy sim.Policy
	mutate func(*sim.Config)
}

// policyStats aggregates one testbedCase's repetitions.
type policyStats struct {
	jct, span   float64
	jcts, spans []float64
}

// testbedSweep runs every case over `reps` testbed workloads (the same rep
// workloads for every case, as the paper averages over shared repetitions)
// through the parallel engine in a single fan-out, and returns per-case mean
// JCT/makespan plus the per-rep samples.
func testbedSweep(opt Options, cases []testbedCase, reps int) ([]policyStats, error) {
	if opt.Quick {
		reps = 1
	}
	// Repetition workloads are shared across cases and never mutated by the
	// simulator, so generating each once is safe under the pool.
	repJobs := make([][]workload.JobSpec, reps)
	for r := range repJobs {
		repJobs[r] = workload.Generate(workload.GenConfig{
			N: 15, Horizon: 4000, Seed: opt.Seed + int64(r*997), Downscale: 0.03,
		})
	}
	cfgs := make([]sim.Config, 0, len(cases)*reps)
	for _, c := range cases {
		for r := 0; r < reps; r++ {
			cfg := simConfig(c.policy, repJobs[r], opt.Seed+int64(r))
			if c.mutate != nil {
				c.mutate(&cfg)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return nil, err
	}
	stats := make([]policyStats, len(cases))
	for ci := range cases {
		st := &stats[ci]
		for r := 0; r < reps; r++ {
			res := results[ci*reps+r]
			st.jcts = append(st.jcts, res.Summary.AvgJCT)
			st.spans = append(st.spans, res.Summary.Makespan)
		}
		st.jct, st.span = metrics.Mean(st.jcts), metrics.Mean(st.spans)
	}
	return stats, nil
}

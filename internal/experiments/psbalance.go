package experiments

import (
	"fmt"

	"optimus/internal/ascii"
	"optimus/internal/psassign"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

func init() {
	register("table3", table3ParamDistribution)
	register("fig20", fig20LoadBalanceSpeed)
	register("fig21", fig21PAASpeedup)
}

// table3ParamDistribution regenerates Table 3: load-imbalance metrics of
// the MXNet default distribution vs PAA on ResNet-50's parameter blocks.
func table3ParamDistribution(opt Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	blocks := m.ParameterBlocks()
	const p = 10
	mx, err := psassign.MXNet(blocks, p, psassign.DefaultMXNetThreshold, opt.Seed+3)
	if err != nil {
		return Table{}, err
	}
	paa, err := psassign.PAA(blocks, p, 0)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "table3",
		Title: "Parameter distribution across 10 PS, ResNet-50 (157 blocks, 25M params)",
		Columns: []string{
			"algorithm", "size-diff(M)", "request-diff", "total-requests",
		},
		Notes: "paper: MXNet 3.6M/43/247 vs PAA 0.1M/1/157",
	}
	for _, row := range []struct {
		name string
		a    psassign.Assignment
	}{{"MXNet", mx}, {"PAA", paa}} {
		t.Rows = append(t.Rows, []string{
			row.name,
			f2(float64(row.a.MaxSizeDiff()) / 1e6),
			fmt.Sprint(row.a.MaxRequestDiff()),
			fmt.Sprint(row.a.TotalRequests()),
		})
	}
	return t, nil
}

// fig20LoadBalanceSpeed regenerates Fig. 20: ResNet-50 sync training speed
// with 10 workers while varying the PS count, under both assignments.
func fig20LoadBalanceSpeed(opt Options) (Table, error) {
	m := workload.ZooByName("resnet-50")
	blocks := m.ParameterBlocks()
	const w = 10
	t := Table{
		ID:      "fig20",
		Title:   "Training speed vs #PS: PAA vs MXNet (ResNet-50, 10 workers)",
		Columns: []string{"ps", "mxnet-steps/s", "paa-steps/s", "paa-speedup"},
		Notes:   "PAA's advantage grows with the PS count (paper Fig. 20)",
	}
	for p := 4; p <= 20; p += 4 {
		mx, err := psassign.MXNet(blocks, p, psassign.DefaultMXNetThreshold, opt.Seed+4)
		if err != nil {
			return Table{}, err
		}
		paa, err := psassign.PAA(blocks, p, 0)
		if err != nil {
			return Table{}, err
		}
		sm := psassign.Speed(m, speedfit.Sync, w, mx)
		sp := psassign.Speed(m, speedfit.Sync, w, paa)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p), f(sm), f(sp), f2(sp / sm),
		})
		if len(t.Series) == 0 {
			t.Series = []ascii.Series{{Name: "MXNet"}, {Name: "PAA"}}
		}
		t.Series[0].X = append(t.Series[0].X, float64(p))
		t.Series[0].Y = append(t.Series[0].Y, sm)
		t.Series[1].X = append(t.Series[1].X, float64(p))
		t.Series[1].Y = append(t.Series[1].Y, sp)
	}
	return t, nil
}

// fig21PAASpeedup regenerates Fig. 21: PAA's speedup over the MXNet default
// for every Table-1 model at 10 PS / 10 workers, sync training.
func fig21PAASpeedup(opt Options) (Table, error) {
	const p, w = 10, 10
	t := Table{
		ID:      "fig21",
		Title:   "PAA speedup over MXNet default per model (10 ps, 10 workers)",
		Columns: []string{"model", "mxnet-steps/s", "paa-steps/s", "speedup%"},
		Notes:   "paper: up to 29% speedup",
	}
	for _, m := range workload.Zoo() {
		blocks := m.ParameterBlocks()
		mx, err := psassign.MXNet(blocks, p, psassign.DefaultMXNetThreshold, opt.Seed+5)
		if err != nil {
			return Table{}, err
		}
		paa, err := psassign.PAA(blocks, p, 0)
		if err != nil {
			return Table{}, err
		}
		sm := psassign.Speed(m, speedfit.Sync, w, mx)
		sp := psassign.Speed(m, speedfit.Sync, w, paa)
		t.Rows = append(t.Rows, []string{
			m.Name, f(sm), f(sp), f2((sp/sm - 1) * 100),
		})
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/metrics"
	"optimus/internal/sim"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

func init() {
	register("fig11", fig11Comparison)
	register("fig12", fig12Scalability)
	register("fig13", fig13Stats)
	register("fig14", fig14Timelines)
	register("fig15", fig15ErrorSensitivity)
	register("fig16", fig16TrainingModes)
	register("fig17", fig17ArrivalProcesses)
	register("fig18", fig18AllocAblation)
	register("fig19", fig19PlacementAblation)
	register("overhead", overheadScaling)
}

// mixFor builds the §6.1 workload: random Table-1 jobs with random training
// modes and thresholds in [1%,5%], arriving over the window, datasets
// downscaled so a run lasts hours rather than weeks.
func mixFor(opt Options, n int, arrivals workload.ArrivalProcess) []workload.JobSpec {
	if opt.Quick {
		n = n / 3
		if n < 6 {
			n = 6
		}
	}
	return workload.Generate(workload.GenConfig{
		N: n, Horizon: 8000, Seed: opt.Seed + 100, Downscale: 0.03,
		Arrivals: arrivals,
	})
}

// simConfig is the shared full-system configuration: estimation on (pre-run
// profiling, online refits), checkpoint scaling overhead, priority factor.
func simConfig(policy sim.Policy, jobs []workload.JobSpec, seed int64) sim.Config {
	return sim.Config{
		Cluster:           cluster.Testbed(),
		Jobs:              jobs,
		Policy:            policy,
		Interval:          600,
		Seed:              seed,
		PreRunSamples:     5,
		SpeedNoise:        0.03,
		LossNoise:         0.01,
		PriorityFactor:    0.95,
		ScalingBase:       12,
		ScalingPerTask:    0.3,
		ReconfigThreshold: 0.15,
	}
}

// comparisonPolicies is the Fig-11/13/14/16/17 scheduler lineup.
func comparisonPolicies() []sim.Policy {
	return []sim.Policy{sim.OptimusPolicy(), sim.DRFPolicy(), sim.TetrisPolicy()}
}

// policyCases wraps the comparison lineup as testbed sweep cases.
func policyCases(policies []sim.Policy, mutate func(*sim.Config)) []testbedCase {
	cases := make([]testbedCase, len(policies))
	for i, p := range policies {
		cases[i] = testbedCase{policy: p, mutate: mutate}
	}
	return cases
}

// fig11Comparison regenerates Fig. 11: normalized JCT and makespan of
// Optimus vs the DRF fairness scheduler and Tetris, on the paper's 9-job
// testbed workload (averaged over 3 repetitions as in §6.1).
func fig11Comparison(opt Options) (Table, error) {
	t := Table{
		ID:      "fig11",
		Title:   "Normalized JCT and makespan vs baselines (testbed workload)",
		Columns: []string{"scheduler", "norm-JCT", "norm-makespan", "avg-JCT(s)", "makespan(s)"},
		Notes:   "paper: DRF 2.39x JCT / 1.63x makespan vs Optimus; Tetris in between",
	}
	policies := comparisonPolicies()
	stats, err := testbedSweep(opt, policyCases(policies, nil), 3)
	if err != nil {
		return Table{}, err
	}
	var baseJCT, baseSpan float64
	for i, policy := range policies {
		jct, span := stats[i].jct, stats[i].span
		if policy.Name == "optimus" {
			baseJCT, baseSpan = jct, span
		}
		t.Rows = append(t.Rows, []string{
			policy.Name, f2(jct / baseJCT), f2(span / baseSpan),
			fmt.Sprintf("%.0f", jct), fmt.Sprintf("%.0f", span),
		})
	}
	return t, nil
}

// fig12Scalability regenerates Fig. 12: wall-clock scheduling time of one
// full Optimus cycle (allocation + placement) for large synthetic clusters.
func fig12Scalability(opt Options) (Table, error) {
	t := Table{
		ID:      "fig12",
		Title:   "Scheduling time vs cluster size",
		Columns: []string{"jobs", "nodes", "tasks-allocated", "time"},
		Notes:   "paper: 4,000 jobs / ~100,000 tasks on 16,000 nodes within 5 s (1 core)",
	}
	jobCounts := []int{1000, 4000}
	nodeCounts := []int{1000, 4000, 16000}
	if opt.Quick {
		jobCounts = []int{200}
		nodeCounts = []int{500, 1000}
	}
	// This exhibit measures the scheduler's own wall-clock, so its sweep
	// points run serially on purpose: timing them concurrently would measure
	// pool contention, not scheduling time.
	zoo := workload.Zoo()
	for _, nJobs := range jobCounts {
		for _, nNodes := range nodeCounts {
			c := cluster.Uniform(nNodes, cluster.Resources{
				cluster.CPU: 32, cluster.Memory: 128,
			})
			rng := rand.New(rand.NewSource(opt.Seed + int64(nJobs+nNodes)))
			jobs := make([]*core.JobInfo, nJobs)
			for i := range jobs {
				m := zoo[i%len(zoo)]
				mode := speedfit.Mode(rng.Intn(2))
				jobs[i] = &core.JobInfo{
					ID:            i,
					RemainingWork: 1000 + rng.Float64()*100000,
					Speed: func(p, w int) float64 {
						return m.TrueSpeed(mode, p, w)
					},
					WorkerRes:  m.WorkerRes,
					PSRes:      m.PSRes,
					MaxWorkers: 16,
					MaxPS:      16,
				}
			}
			start := time.Now()
			alloc := core.Allocate(jobs, c.Capacity())
			var reqs []core.PlacementRequest
			tasks := 0
			for _, j := range jobs {
				a := alloc[j.ID]
				tasks += a.Tasks()
				if a.PS > 0 && a.Workers > 0 {
					reqs = append(reqs, core.PlacementRequest{
						JobID: j.ID, Alloc: a,
						WorkerRes: j.WorkerRes, PSRes: j.PSRes,
					})
				}
			}
			core.Place(reqs, c)
			elapsed := time.Since(start)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(nJobs), fmt.Sprint(nNodes), fmt.Sprint(tasks),
				elapsed.Round(time.Millisecond).String(),
			})
		}
	}
	return t, nil
}

// fig13Stats regenerates Fig. 13: mean and standard deviation of JCT and
// makespan over repeated runs (the paper uses 3 repetitions).
func fig13Stats(opt Options) (Table, error) {
	reps := 3
	if opt.Quick {
		reps = 2
	}
	t := Table{
		ID:      "fig13",
		Title:   "JCT and makespan, mean ± stddev over repetitions",
		Columns: []string{"scheduler", "avg-JCT(s)", "sd-JCT", "makespan(s)", "sd-makespan"},
	}
	policies := comparisonPolicies()
	stats, err := testbedSweep(opt, policyCases(policies, nil), reps)
	if err != nil {
		return Table{}, err
	}
	for i, policy := range policies {
		jcts, spans := stats[i].jcts, stats[i].spans
		t.Rows = append(t.Rows, []string{
			policy.Name,
			fmt.Sprintf("%.0f", metrics.Mean(jcts)), fmt.Sprintf("%.0f", metrics.Stddev(jcts)),
			fmt.Sprintf("%.0f", metrics.Mean(spans)), fmt.Sprintf("%.0f", metrics.Stddev(spans)),
		})
	}
	return t, nil
}

// fig14Timelines regenerates Fig. 14: running-task counts and normalized
// CPU utilizations over the course of one run, per scheduler.
func fig14Timelines(opt Options) (Table, error) {
	jobs := workload.Generate(workload.GenConfig{
		N: 15, Horizon: 4000, Seed: opt.Seed + 100, Downscale: 0.03,
	})
	t := Table{
		ID:      "fig14",
		Title:   "Running tasks and normalized CPU utilization over time",
		Columns: []string{"scheduler", "time(s)", "tasks", "worker-util", "ps-util"},
	}
	policies := comparisonPolicies()
	cfgs := make([]sim.Config, len(policies))
	for i, policy := range policies {
		cfgs[i] = simConfig(policy, jobs, opt.Seed)
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, policy := range policies {
		res := results[i]
		stride := len(res.Timeline)/8 + 1
		for i := 0; i < len(res.Timeline); i += stride {
			s := res.Timeline[i]
			t.Rows = append(t.Rows, []string{
				policy.Name, fmt.Sprintf("%.0f", s.Time), fmt.Sprint(s.RunningTasks),
				f2(s.WorkerUtil), f2(s.PSUtil),
			})
		}
	}
	return t, nil
}

// fig15ErrorSensitivity regenerates Fig. 15: JCT/makespan degradation under
// injected convergence- and speed-prediction errors.
func fig15ErrorSensitivity(opt Options) (Table, error) {
	jobs := mixFor(opt, 12, nil)
	levels := []float64{0, 0.15, 0.30, 0.45}
	if opt.Quick {
		levels = []float64{0, 0.45}
	}
	reps := 3
	if opt.Quick {
		reps = 1
	}
	t := Table{
		ID:      "fig15",
		Title:   "Sensitivity to prediction errors (Optimus)",
		Columns: []string{"error-kind", "error%", "norm-JCT", "norm-makespan"},
		Notes:   "speed error hurts more than convergence error (paper §6.3)",
	}
	// One combo per distinct (conv, speed) error pair; the error-free pair is
	// shared by both kinds' zero levels and by the normalization base, so it
	// runs once instead of three times.
	type combo struct{ conv, speed float64 }
	combos := []combo{{0, 0}}
	for _, e := range levels {
		if e > 0 {
			combos = append(combos, combo{conv: e})
		}
	}
	for _, e := range levels {
		if e > 0 {
			combos = append(combos, combo{speed: e})
		}
	}
	cfgs := make([]sim.Config, 0, len(combos)*reps)
	for _, c := range combos {
		for r := 0; r < reps; r++ {
			cfg := simConfig(sim.OptimusPolicy(), jobs, opt.Seed+int64(r*13))
			cfg.UseTrueModels = true
			cfg.InjectConvError = c.conv
			cfg.InjectSpeedError = c.speed
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return Table{}, err
	}
	avg := make(map[combo][2]float64, len(combos))
	for ci, c := range combos {
		var jct, span float64
		for r := 0; r < reps; r++ {
			s := results[ci*reps+r].Summary
			jct += s.AvgJCT
			span += s.Makespan
		}
		avg[c] = [2]float64{jct / float64(reps), span / float64(reps)}
	}
	base := avg[combo{}]
	baseJCT, baseSpan := base[0], base[1]
	for _, kind := range []string{"convergence", "speed"} {
		for _, e := range levels {
			c := combo{}
			if kind == "convergence" {
				c.conv = e
			} else {
				c.speed = e
			}
			a := avg[c]
			t.Rows = append(t.Rows, []string{
				kind, fmt.Sprintf("%.0f", e*100),
				f2(a[0] / baseJCT), f2(a[1] / baseSpan),
			})
		}
	}
	return t, nil
}

// fig16TrainingModes regenerates Fig. 16: all-async vs all-sync workloads.
func fig16TrainingModes(opt Options) (Table, error) {
	t := Table{
		ID:      "fig16",
		Title:   "Sensitivity to training modes",
		Columns: []string{"mode", "scheduler", "norm-JCT", "norm-makespan"},
	}
	modes := []speedfit.Mode{speedfit.Async, speedfit.Sync}
	policies := comparisonPolicies()
	var cfgs []sim.Config
	for _, mode := range modes {
		m := mode
		n := 36
		if opt.Quick {
			n = 12
		}
		jobs := workload.Generate(workload.GenConfig{
			N: n, Horizon: 8000, Seed: opt.Seed + 200, Downscale: 0.03, ForceMode: &m,
		})
		for _, policy := range policies {
			cfgs = append(cfgs, simConfig(policy, jobs, opt.Seed))
		}
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return Table{}, err
	}
	for mi, mode := range modes {
		var base metrics.Summary
		for pi, policy := range policies {
			s := results[mi*len(policies)+pi].Summary
			if policy.Name == "optimus" {
				base = s
			}
			t.Rows = append(t.Rows, []string{
				mode.String(), policy.Name,
				f2(s.AvgJCT / base.AvgJCT),
				f2(s.Makespan / base.Makespan),
			})
		}
	}
	return t, nil
}

// fig17ArrivalProcesses regenerates Fig. 17: Poisson and Google-trace-like
// arrival processes.
func fig17ArrivalProcesses(opt Options) (Table, error) {
	t := Table{
		ID:      "fig17",
		Title:   "Sensitivity to job arrival processes",
		Columns: []string{"arrivals", "scheduler", "norm-JCT", "norm-makespan"},
		Notes:   "gain grows under bursty (trace-like) arrivals, as in the paper",
	}
	procs := []struct {
		name string
		fn   workload.ArrivalProcess
	}{
		{"poisson", workload.PoissonArrivals},
		{"google-trace", workload.GoogleTraceArrivals},
	}
	policies := comparisonPolicies()
	var cfgs []sim.Config
	for _, proc := range procs {
		jobs := mixFor(opt, 36, proc.fn)
		for _, policy := range policies {
			cfgs = append(cfgs, simConfig(policy, jobs, opt.Seed))
		}
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return Table{}, err
	}
	for qi, proc := range procs {
		var base metrics.Summary
		for pi, policy := range policies {
			s := results[qi*len(policies)+pi].Summary
			if policy.Name == "optimus" {
				base = s
			}
			t.Rows = append(t.Rows, []string{
				proc.name, policy.Name,
				f2(s.AvgJCT / base.AvgJCT),
				f2(s.Makespan / base.Makespan),
			})
		}
	}
	return t, nil
}

// fig18AllocAblation regenerates Fig. 18: baseline allocators paired with
// Optimus placement, isolating the marginal-gain allocation algorithm.
func fig18AllocAblation(opt Options) (Table, error) {
	t := Table{
		ID:      "fig18",
		Title:   "Resource-allocation ablation (all use Optimus placement)",
		Columns: []string{"allocator", "norm-JCT", "norm-makespan"},
		Notes:   "paper: allocation contributes ~62% JCT / 31% makespan reduction",
	}
	policies := []sim.Policy{
		sim.OptimusPolicy(),
		sim.Hybrid("drf-alloc", sim.DRFAllocatorOnly, core.Place),
		sim.Hybrid("tetris-alloc", sim.TetrisAllocatorOnly, core.Place),
	}
	stats, err := testbedSweep(opt, policyCases(policies, func(c *sim.Config) {
		c.UseTrueModels = true  // isolate the algorithm from estimation noise
		c.ReconfigThreshold = 0 // and from the §7 churn damper
	}), 3)
	if err != nil {
		return Table{}, err
	}
	var baseJCT, baseSpan float64
	for i, policy := range policies {
		jct, span := stats[i].jct, stats[i].span
		if policy.Name == "optimus" {
			baseJCT, baseSpan = jct, span
		}
		t.Rows = append(t.Rows, []string{
			policy.Name, f2(jct / baseJCT), f2(span / baseSpan),
		})
	}
	return t, nil
}

// fig19PlacementAblation regenerates Fig. 19: baseline placements paired
// with Optimus allocation, isolating the Theorem-1 placement scheme.
func fig19PlacementAblation(opt Options) (Table, error) {
	t := Table{
		ID:      "fig19",
		Title:   "Task-placement ablation (all use Optimus allocation)",
		Columns: []string{"placement", "norm-JCT", "norm-makespan"},
		Notes:   "paper: ~10% vs Tetris packing, ~15% vs load-balancing spread",
	}
	policies := []sim.Policy{
		sim.OptimusPolicy(),
		sim.Hybrid("spread-place", core.Allocate, sim.DRFPolicy().Place),
		sim.Hybrid("pack-place", core.Allocate, sim.TetrisPolicy().Place),
	}
	stats, err := testbedSweep(opt, policyCases(policies, func(c *sim.Config) {
		c.UseTrueModels = true
		c.ReconfigThreshold = 0
	}), 3)
	if err != nil {
		return Table{}, err
	}
	var baseJCT, baseSpan float64
	for i, policy := range policies {
		jct, span := stats[i].jct, stats[i].span
		if policy.Name == "optimus" {
			baseJCT, baseSpan = jct, span
		}
		t.Rows = append(t.Rows, []string{
			policy.Name, f2(jct / baseJCT), f2(span / baseSpan),
		})
	}
	return t, nil
}

// overheadScaling reproduces §6.2's resource-adjustment overhead figure: the
// share of the makespan spent in checkpoint-based reconfiguration.
func overheadScaling(opt Options) (Table, error) {
	jobs := workload.Generate(workload.GenConfig{
		N: 15, Horizon: 4000, Seed: opt.Seed + 100, Downscale: 0.03,
	})
	results, err := runConfigs(opt, []sim.Config{
		simConfig(sim.OptimusPolicy(), jobs, opt.Seed),
	})
	if err != nil {
		return Table{}, err
	}
	res := results[0]
	return Table{
		ID:      "overhead",
		Title:   "Resource-adjustment (checkpoint scaling) overhead",
		Columns: []string{"scaling-overhead%", "makespan(s)"},
		Rows: [][]string{{
			f2(res.Summary.ScalingFrac * 100),
			fmt.Sprintf("%.0f", res.Summary.Makespan),
		}},
		Notes: "paper reports 2.54% of makespan",
	}, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§3 examples, §6 evaluation): each experiment is a named
// function producing a Table of rows matching what the paper plots. The CLI
// (cmd/optimus-sim) and the benchmark harness (bench_test.go) both consume
// this registry, so numbers printed by `go test -bench` and by the CLI come
// from the same code.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"optimus/internal/ascii"
	"optimus/internal/chaos"
)

// Table is one experiment's regenerated data.
type Table struct {
	ID      string // e.g. "fig11", "table2"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string // paper-vs-reproduction commentary
	// Series, when set, is plotted as a terminal chart under the rows —
	// figures render as figures.
	Series []ascii.Series
}

// Print renders the table as aligned text.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	_ = line
	// Render header, separator, rows.
	printRow(w, t.Columns, widths)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(w, sep, widths)
	for _, row := range t.Rows {
		printRow(w, row, widths)
	}
	if len(t.Series) > 0 {
		fmt.Fprint(w, ascii.Chart(t.Series, 56, 10))
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func printRow(w io.Writer, cells []string, widths []int) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		width := 0
		if i < len(widths) {
			width = widths[i]
		}
		parts[i] = fmt.Sprintf("%-*s", width, c)
	}
	fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
}

// Options tunes experiment cost. Quick mode shrinks sweeps so the whole
// suite runs in seconds (used by tests and -bench smoke runs); full mode
// reproduces the paper-scale sweeps.
type Options struct {
	Quick bool
	Seed  int64
	// Parallel is the worker-pool width for independent simulator runs.
	// Zero means GOMAXPROCS; 1 forces serial execution. Any width produces
	// byte-identical tables for the same seed (see internal/experiments/
	// parallel.go for the invariants that guarantee this).
	Parallel int
	// Faults, when set, replaces the failure exhibit's generated chaos
	// schedule with a user-provided one (cmd/optimus-sim -faults).
	Faults *chaos.Schedule
}

// Runner is one registered experiment.
type Runner func(Options) (Table, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs lists the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, opt Options) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown id %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(opt)
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// f2 formats with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

package experiments

import (
	"fmt"

	"optimus/internal/sim"
)

func init() {
	register("cells", cellsSharding)
}

// cellsSharding compares the single-engine §4 scheduler against the sharded
// shared-state multi-scheduler (internal/cells) at several cell counts on
// the same workload. The cells-1 row doubles as a visible equivalence
// exhibit: it must reproduce the optimus row exactly (the golden tests pin
// this byte-for-byte). Higher cell counts trade scheduling quality for
// parallel interval computation; the commit-protocol columns show how much
// optimism the shared-state store had to absorb.
func cellsSharding(opt Options) (Table, error) {
	jobs := mixFor(opt, 18, nil)
	policies := []sim.Policy{
		sim.OptimusPolicy(),
		sim.CellsPolicy(1),
		sim.CellsPolicy(2),
		sim.CellsPolicy(4),
	}
	t := Table{
		ID:      "cells",
		Title:   "Sharded multi-cell scheduling vs the single engine",
		Columns: []string{"policy", "avg JCT (s)", "makespan (s)", "commits", "conflicts", "avoided", "retries", "moved"},
		Notes: "cells-1 must equal optimus exactly (golden equivalence); " +
			"conflicts/avoided/retries are the optimistic-commit outcomes, " +
			"moved counts cross-cell rebalancer migrations",
	}
	for _, p := range policies {
		res, err := sim.Run(simConfig(p, jobs, opt.Seed))
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		commits, conflicts, avoided, retries, moved := res.Metrics.CellCounters()
		t.Rows = append(t.Rows, []string{
			p.Name,
			f(res.Summary.AvgJCT),
			f(res.Summary.Makespan),
			fmt.Sprint(commits),
			fmt.Sprint(conflicts),
			fmt.Sprint(avoided),
			fmt.Sprint(retries),
			fmt.Sprint(moved),
		})
	}
	return t, nil
}

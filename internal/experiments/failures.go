package experiments

import (
	"fmt"

	"optimus/internal/chaos"
	"optimus/internal/cluster"
	"optimus/internal/sim"
	"optimus/internal/workload"
)

func init() {
	register("failures", failureSweep)
}

// failureSweep is the resilience exhibit: one seeded chaos schedule — node
// crashes from a Poisson MTBF process, task kills, stragglers, a fabric
// slowdown and checkpoint-write failures — replayed identically against
// Optimus, DRF and Tetris, next to each policy's fault-free run. Because the
// injector and the simulator are both deterministic, every policy faces the
// exact same fault sequence, isolating how scheduling policy shapes recovery
// cost.
func failureSweep(opt Options) (Table, error) {
	t := Table{
		ID:    "failures",
		Title: "JCT under injected failures: identical fault schedule per policy",
		Columns: []string{"scheduler", "clean-JCT(s)", "faulty-JCT(s)", "slowdown",
			"faults", "restarts", "wasted(s)", "recovery(s)"},
		Notes: "crashes roll jobs back to their last checkpoint; Optimus also replaces injected stragglers (§5.2, §5.4)",
	}
	n := 15
	if opt.Quick {
		n = 6
	}
	jobs := workload.Generate(workload.GenConfig{
		N: n, Horizon: 4000, Seed: opt.Seed + 400, Downscale: 0.03,
	})

	sched := opt.Faults
	if sched == nil {
		var nodes []string
		for _, nd := range cluster.Testbed().Nodes() {
			nodes = append(nodes, nd.ID)
		}
		jobIDs := make([]int, len(jobs))
		for i, j := range jobs {
			jobIDs[i] = j.ID
		}
		// Keep the fault horizon inside the run's expected makespan so most
		// of the schedule actually fires before the last job completes.
		s := chaos.Generate(chaos.GenConfig{
			Seed: opt.Seed + 41, Horizon: 9000,
			Nodes: nodes, NodeMTBF: 30000, MeanOutage: 1200,
			Jobs: jobIDs, TaskKillRate: 1.0,
			StragglerRate: 0.8, StragglerSlowdown: 0.5, StragglerDur: 1800,
			CkptFailProb: 0.2, NetSlowCount: 1, NetSlowDur: 1200, NetSlowSeverity: 0.7,
		})
		sched = &s
	}

	// The schedule is shared read-only: each run builds its own injector
	// cursor from a copy, so the same fault sequence replays against every
	// policy concurrently.
	policies := []sim.Policy{sim.OptimusPolicy(), sim.DRFPolicy(), sim.TetrisPolicy()}
	cfgs := make([]sim.Config, 0, 2*len(policies))
	for _, policy := range policies {
		cfgs = append(cfgs, simConfig(policy, jobs, opt.Seed))
		cfg := simConfig(policy, jobs, opt.Seed)
		cfg.Faults = sched
		cfgs = append(cfgs, cfg)
	}
	results, err := runConfigs(opt, cfgs)
	if err != nil {
		return Table{}, err
	}
	for i, policy := range policies {
		clean, faulty := results[2*i], results[2*i+1]
		slowdown := 0.0
		if clean.Summary.AvgJCT > 0 {
			slowdown = faulty.Summary.AvgJCT / clean.Summary.AvgJCT
		}
		t.Rows = append(t.Rows, []string{
			policy.Name,
			fmt.Sprintf("%.0f", clean.Summary.AvgJCT),
			fmt.Sprintf("%.0f", faulty.Summary.AvgJCT),
			f2(slowdown),
			fmt.Sprintf("%d", faulty.Summary.FaultsInjected),
			fmt.Sprintf("%d", faulty.Summary.TasksRestarted),
			fmt.Sprintf("%.0f", faulty.Summary.WastedWork),
			fmt.Sprintf("%.0f", faulty.Summary.RecoveryTime),
		})
	}
	return t, nil
}

package core

import (
	"sort"

	"optimus/internal/cluster"
	"optimus/internal/obs"
)

// PlacementRequest asks the placer to deploy a job's granted allocation.
type PlacementRequest struct {
	JobID            int
	Alloc            Allocation
	WorkerRes, PSRes cluster.Resources
}

// Placement records where one job's tasks landed: parallel slices of node
// IDs and per-node PS/worker counts.
type Placement struct {
	NodeIDs       []string
	PSOnNode      []int
	WorkersOnNode []int
}

// Servers returns the number of distinct servers used.
func (p Placement) Servers() int { return len(p.NodeIDs) }

// Counts returns the placed totals.
func (p Placement) Counts() (ps, workers int) {
	for _, v := range p.PSOnNode {
		ps += v
	}
	for _, v := range p.WorkersOnNode {
		workers += v
	}
	return ps, workers
}

// demand returns the job's total resource demand, used for smallest-first
// ordering.
func (r PlacementRequest) demand() cluster.Resources {
	return r.WorkerRes.Scale(float64(r.Alloc.Workers)).
		Add(r.PSRes.Scale(float64(r.Alloc.PS)))
}

// PlaceState owns the scratch memory of the §4.2 placer: the request
// ordering, a free-CPU-sorted node index maintained incrementally across
// placements, and the per-attempt count/spare buffers of the greedy
// fallback. The zero value is ready to use; a state is not safe for
// concurrent use.
//
// The sorted index is the core optimization: the previous implementation
// re-selected (or re-sorted) the most-available nodes from scratch for every
// request, while committing a placement only changes the availability of the
// handful of nodes it touched. Place now sorts the cluster once per call and
// re-sifts just the touched nodes after each commit (partition + merge), so
// each request sees exactly the ordering a full re-sort would produce at a
// fraction of the cost.
type PlaceState struct {
	// Trace, when non-nil and enabled, receives one "place-kernel" span per
	// Place call. Audit, when non-nil and enabled, receives one PlaceEvent
	// per committed placement — the §4.2 decision audit log. Both default to
	// nil; the disabled path performs no extra work.
	Trace *obs.Tracer
	Audit *obs.AuditLog

	ordered []PlacementRequest
	index   []*cluster.Node // sorted: available CPU desc, node ID asc
	merged  []*cluster.Node // merge scratch, swapped with index after resift
	moved   []*cluster.Node // touched nodes awaiting re-insertion
	touched map[string]struct{}
	psOn    []int
	wOn     []int
	spare   []cluster.Resources
}

// NewPlaceState returns an empty placer state.
func NewPlaceState() *PlaceState { return &PlaceState{} }

// nodeLess is the §4.2 server ordering: descending available CPU, ties
// broken by node ID. It matches cluster.SortedByAvailable(cluster.CPU) and
// is a total order (IDs are unique), so any sort produces one canonical
// sequence.
func nodeLess(a, b *cluster.Node) bool {
	aa, ab := a.Available()[cluster.CPU], b.Available()[cluster.CPU]
	if aa != ab {
		return aa > ab
	}
	return a.ID < b.ID
}

// Place implements the §4.2 placement scheme. Servers are sorted in
// descending order of available CPU; jobs are placed smallest-demand-first
// (starvation avoidance); each job uses the smallest k such that the top-k
// servers can host an even split of its PS and workers (Theorem 1), with
// remainders assigned to the most-available servers. Placed resources are
// allocated on the cluster's nodes. Jobs that cannot be placed are returned
// in unplaced and must be paused until the next interval (§4.2).
//
// The returned map, Placements, and unplaced slice are caller-owned; only
// the state's internal scratch is reused between calls.
func (st *PlaceState) Place(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	sp := st.Trace.Begin("place-kernel")
	defer st.Trace.End(sp)
	placements := make(map[int]Placement, len(reqs))
	var unplaced []int

	st.ordered = append(st.ordered[:0], reqs...)
	ordered := st.ordered
	capacity := c.Capacity()
	sort.SliceStable(ordered, func(i, j int) bool {
		di, _ := ordered[i].demand().DominantShare(capacity)
		dj, _ := ordered[j].demand().DominantShare(capacity)
		if di != dj {
			return di < dj
		}
		return ordered[i].JobID < ordered[j].JobID
	})

	// One full sort per Place call; incrementally re-sifted after commits.
	st.index = append(st.index[:0], c.Nodes()...)
	index := st.index
	sort.Slice(index, func(i, j int) bool { return nodeLess(index[i], index[j]) })
	if st.touched == nil {
		st.touched = make(map[string]struct{})
	}

	for _, req := range ordered {
		if req.Alloc.PS <= 0 || req.Alloc.Workers <= 0 {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		pl, even, ok := st.placeOne(req)
		if !ok {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		// Commit allocations to the chosen nodes, then restore the index
		// ordering for the nodes whose availability just changed.
		commitPlacement(req, pl, c)
		placements[req.JobID] = pl
		if st.Audit.Enabled() {
			st.Audit.Place(obs.PlaceEvent{
				Job: req.JobID,
				PS:  req.Alloc.PS, Workers: req.Alloc.Workers,
				Servers: pl.Servers(),
				Spread:  placementSpread(pl),
				Even:    even,
				Nodes:   append([]string(nil), pl.NodeIDs...),
			})
		}
		clear(st.touched)
		for _, id := range pl.NodeIDs {
			st.touched[id] = struct{}{}
		}
		st.resift()
	}
	return placements, unplaced
}

// Place is the stateless convenience wrapper: each call runs on a fresh
// PlaceState. Hot paths should hold a PlaceState and call its method.
func Place(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	var st PlaceState
	return st.Place(reqs, c)
}

// resift restores sorted order after the touched nodes' availability
// shrank: the untouched nodes are still mutually sorted, so partition them
// out, sort just the touched ones, and merge the two runs. The comparator is
// a total order, so the merge reproduces exactly what a full re-sort would.
func (st *PlaceState) resift() {
	if len(st.touched) == 0 {
		return
	}
	moved := st.moved[:0]
	kept := st.index[:0] // in-place partition: writes trail reads
	for _, n := range st.index {
		if _, hit := st.touched[n.ID]; hit {
			moved = append(moved, n)
		} else {
			kept = append(kept, n)
		}
	}
	sort.Slice(moved, func(i, j int) bool { return nodeLess(moved[i], moved[j]) })

	merged := st.merged[:0]
	i, j := 0, 0
	for i < len(kept) && j < len(moved) {
		if nodeLess(kept[i], moved[j]) {
			merged = append(merged, kept[i])
			i++
		} else {
			merged = append(merged, moved[j])
			j++
		}
	}
	merged = append(merged, kept[i:]...)
	merged = append(merged, moved[j:]...)

	st.moved = moved[:0]
	st.merged = st.index[:0] // old backing array becomes next merge scratch
	st.index = merged
}

// placementSpread is the audit evenness metric: the difference between the
// most- and least-loaded servers of the placement, counting both task kinds.
// A Theorem-1 even split has spread ≤ 1 per task kind, so ≤ 2 total; large
// values flag fragmented greedy placements.
func placementSpread(pl Placement) int {
	if len(pl.NodeIDs) == 0 {
		return 0
	}
	min, max := -1, 0
	for i := range pl.NodeIDs {
		t := pl.PSOnNode[i] + pl.WorkersOnNode[i]
		if t > max {
			max = t
		}
		if min < 0 || t < min {
			min = t
		}
	}
	return max - min
}

// placeOne finds the smallest k such that the first k index nodes fit an
// even split of the job. When no exact even split exists on any prefix
// (per-node capacities may be too uneven), it falls back to a greedy
// placement that keeps per-node counts as balanced as the capacities allow —
// preserving Theorem 1's spirit while guaranteeing progress whenever the job
// fits at all. The second result reports whether the Theorem-1 even-split
// path produced the placement (audit evenness flag).
func (st *PlaceState) placeOne(req PlacementRequest) (Placement, bool, bool) {
	p, w := req.Alloc.PS, req.Alloc.Workers
	nodes := st.index
	// Searching every prefix is O(N²) per job on a full cluster. Beyond
	// k = p+w each server hosts at most one task of each kind, so growing k
	// further only helps by swapping in different servers — territory the
	// greedy fallback covers directly. Bounding the scan keeps a scheduling
	// cycle near-linear in cluster size (the Fig-12 scalability property).
	maxK := p + w + 16
	bound := maxK
	if bound > len(nodes) {
		bound = len(nodes)
	}
	for k := 1; k <= bound; k++ {
		if evenSplitFits(req, nodes[:k], p, w) {
			return buildEvenSplit(nodes[:k], p, w), true, true
		}
	}
	top := nodes
	if maxK < len(top) {
		top = top[:maxK]
	}
	if pl, ok := st.greedyBalanced(req, top, p, w); ok {
		return pl, false, true
	}
	if len(top) < len(nodes) {
		// The top-K slice may just have been unlucky with fragmentation; try
		// the complete ordering before pausing the job.
		pl, ok := st.greedyBalanced(req, nodes, p, w)
		return pl, false, ok
	}
	return Placement{}, false, false
}

// greedyBalanced assigns tasks one at a time to the fitting node currently
// hosting the fewest tasks of this job (ties broken by available CPU, then
// node order). Workers go first since they are usually the larger profile.
func (st *PlaceState) greedyBalanced(req PlacementRequest, nodes []*cluster.Node, p, w int) (Placement, bool) {
	k := len(nodes)
	psOn := resizeInts(&st.psOn, k)
	wOn := resizeInts(&st.wOn, k)
	if cap(st.spare) < k {
		st.spare = make([]cluster.Resources, k)
	}
	spare := st.spare[:k]
	for i, n := range nodes {
		spare[i] = n.Available()
	}
	assign := func(res cluster.Resources, counts []int) bool {
		best := -1
		for i := range nodes {
			if !res.Fits(spare[i]) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			ci, cb := psOn[i]+wOn[i], psOn[best]+wOn[best]
			if ci < cb || (ci == cb && spare[i][cluster.CPU] > spare[best][cluster.CPU]) {
				best = i
			}
		}
		if best < 0 {
			return false
		}
		spare[best] = spare[best].Sub(res)
		counts[best]++
		return true
	}
	for t := 0; t < w; t++ {
		if !assign(req.WorkerRes, wOn) {
			return Placement{}, false
		}
	}
	for t := 0; t < p; t++ {
		if !assign(req.PSRes, psOn) {
			return Placement{}, false
		}
	}
	var pl Placement
	for i, n := range nodes {
		if psOn[i] == 0 && wOn[i] == 0 {
			continue
		}
		pl.NodeIDs = append(pl.NodeIDs, n.ID)
		pl.PSOnNode = append(pl.PSOnNode, psOn[i])
		pl.WorkersOnNode = append(pl.WorkersOnNode, wOn[i])
	}
	return pl, true
}

// resizeInts returns *s resized to n elements, all zero, growing the backing
// array only when needed.
func resizeInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
		return *s
	}
	out := (*s)[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// evenSplit returns the PS and worker counts node i receives when p PS and
// w workers are split evenly over k servers, remainders going to the
// most-available servers (which come first in the sorted slice).
func evenSplit(i, k, p, w int) (ps, workers int) {
	ps = p / k
	if i < p%k {
		ps++
	}
	workers = w / k
	if i < w%k {
		workers++
	}
	return ps, workers
}

// evenSplitFits checks whether an even split of p PS and w workers over the
// given servers fits, without materializing the placement.
func evenSplitFits(req PlacementRequest, nodes []*cluster.Node, p, w int) bool {
	k := len(nodes)
	for i, n := range nodes {
		pi, wi := evenSplit(i, k, p, w)
		need := req.PSRes.Scale(float64(pi)).
			Add(req.WorkerRes.Scale(float64(wi)))
		if !need.Fits(n.Available()) {
			return false
		}
	}
	return true
}

// buildEvenSplit materializes the even-split placement evenSplitFits
// accepted. The slices are freshly allocated: placements outlive the call.
func buildEvenSplit(nodes []*cluster.Node, p, w int) Placement {
	k := len(nodes)
	pl := Placement{
		NodeIDs:       make([]string, k),
		PSOnNode:      make([]int, k),
		WorkersOnNode: make([]int, k),
	}
	for i, n := range nodes {
		pl.NodeIDs[i] = n.ID
		pl.PSOnNode[i], pl.WorkersOnNode[i] = evenSplit(i, k, p, w)
	}
	return pl
}

// commitPlacement reserves the placed tasks on the cluster nodes.
func commitPlacement(req PlacementRequest, pl Placement, c *cluster.Cluster) {
	for i, id := range pl.NodeIDs {
		n := c.Node(id)
		for t := 0; t < pl.PSOnNode[i]; t++ {
			if err := n.Allocate(req.PSRes); err != nil {
				// tryEvenSplit verified the fit; failure here means the
				// cluster changed concurrently, which Place does not support.
				panic("core: placement commit failed: " + err.Error())
			}
		}
		for t := 0; t < pl.WorkersOnNode[i]; t++ {
			if err := n.Allocate(req.WorkerRes); err != nil {
				panic("core: placement commit failed: " + err.Error())
			}
		}
	}
}

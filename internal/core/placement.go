package core

import (
	"sort"

	"optimus/internal/cluster"
)

// PlacementRequest asks the placer to deploy a job's granted allocation.
type PlacementRequest struct {
	JobID            int
	Alloc            Allocation
	WorkerRes, PSRes cluster.Resources
}

// Placement records where one job's tasks landed: parallel slices of node
// IDs and per-node PS/worker counts.
type Placement struct {
	NodeIDs       []string
	PSOnNode      []int
	WorkersOnNode []int
}

// Servers returns the number of distinct servers used.
func (p Placement) Servers() int { return len(p.NodeIDs) }

// Counts returns the placed totals.
func (p Placement) Counts() (ps, workers int) {
	for _, v := range p.PSOnNode {
		ps += v
	}
	for _, v := range p.WorkersOnNode {
		workers += v
	}
	return ps, workers
}

// demand returns the job's total resource demand, used for smallest-first
// ordering.
func (r PlacementRequest) demand() cluster.Resources {
	return r.WorkerRes.Scale(float64(r.Alloc.Workers)).
		Add(r.PSRes.Scale(float64(r.Alloc.PS)))
}

// Place implements the §4.2 placement scheme. Servers are sorted in
// descending order of available CPU; jobs are placed smallest-demand-first
// (starvation avoidance); each job uses the smallest k such that the top-k
// servers can host an even split of its PS and workers (Theorem 1), with
// remainders assigned to the most-available servers. Placed resources are
// allocated on the cluster's nodes. Jobs that cannot be placed are returned
// in unplaced and must be paused until the next interval (§4.2).
func Place(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	placements := make(map[int]Placement, len(reqs))
	var unplaced []int

	ordered := make([]PlacementRequest, len(reqs))
	copy(ordered, reqs)
	capacity := c.Capacity()
	sort.SliceStable(ordered, func(i, j int) bool {
		di, _ := ordered[i].demand().DominantShare(capacity)
		dj, _ := ordered[j].demand().DominantShare(capacity)
		if di != dj {
			return di < dj
		}
		return ordered[i].JobID < ordered[j].JobID
	})

	for _, req := range ordered {
		if req.Alloc.PS <= 0 || req.Alloc.Workers <= 0 {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		// A job only ever needs its p+w(+slack) most-available servers, so a
		// bounded top-K selection replaces a full O(N log N) sort per job —
		// the difference between seconds and tens of seconds at the Fig-12
		// scale of 16,000 nodes.
		nodes := topAvailable(c, req.Alloc.PS+req.Alloc.Workers+16)
		pl, ok := placeOne(req, nodes)
		if !ok {
			// Fall back to the complete ordering before pausing the job:
			// the top-K slice may just have been unlucky with fragmentation.
			pl, ok = placeOne(req, c.SortedByAvailable(cluster.CPU))
		}
		if !ok {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		// Commit allocations to the chosen nodes.
		commitPlacement(req, pl, c)
		placements[req.JobID] = pl
	}
	return placements, unplaced
}

// topAvailable returns the k nodes with the most available CPU, sorted in
// descending order (ties by node ID), using a single bounded-heap pass over
// the cluster instead of a full sort.
func topAvailable(c *cluster.Cluster, k int) []*cluster.Node {
	all := c.Nodes()
	if k >= len(all) {
		return c.SortedByAvailable(cluster.CPU)
	}
	// less reports whether a should be kept over b (a is "better").
	less := func(a, b *cluster.Node) bool {
		aa, ab := a.Available()[cluster.CPU], b.Available()[cluster.CPU]
		if aa != ab {
			return aa > ab
		}
		return a.ID < b.ID
	}
	top := make([]*cluster.Node, 0, k)
	for _, n := range all {
		if len(top) < k {
			top = append(top, n)
			// Sift the new entry into place (top kept sorted, best first).
			for i := len(top) - 1; i > 0 && less(top[i], top[i-1]); i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if !less(n, top[k-1]) {
			continue
		}
		top[k-1] = n
		for i := k - 1; i > 0 && less(top[i], top[i-1]); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
	}
	return top
}

// placeOne finds the smallest k such that the first k nodes fit an even
// split of the job. When no exact even split exists on any prefix (per-node
// capacities may be too uneven), it falls back to a greedy placement that
// keeps per-node counts as balanced as the capacities allow — preserving
// Theorem 1's spirit while guaranteeing progress whenever the job fits at
// all.
func placeOne(req PlacementRequest, nodes []*cluster.Node) (Placement, bool) {
	p, w := req.Alloc.PS, req.Alloc.Workers
	// Searching every prefix is O(N²) per job on a full cluster. Beyond
	// k = p+w each server hosts at most one task of each kind, so growing k
	// further only helps by swapping in different servers — territory the
	// greedy fallback covers directly. Bounding the scan keeps a scheduling
	// cycle near-linear in cluster size (the Fig-12 scalability property).
	maxK := p + w + 16
	if maxK > len(nodes) {
		maxK = len(nodes)
	}
	for k := 1; k <= maxK; k++ {
		pl, ok := tryEvenSplit(req, nodes[:k], p, w)
		if ok {
			return pl, true
		}
	}
	return greedyBalanced(req, nodes, p, w)
}

// greedyBalanced assigns tasks one at a time to the fitting node currently
// hosting the fewest tasks of this job (ties broken by available CPU, then
// node order). Workers go first since they are usually the larger profile.
func greedyBalanced(req PlacementRequest, nodes []*cluster.Node, p, w int) (Placement, bool) {
	k := len(nodes)
	psOn := make([]int, k)
	wOn := make([]int, k)
	spare := make([]cluster.Resources, k)
	for i, n := range nodes {
		spare[i] = n.Available()
	}
	assign := func(res cluster.Resources, counts []int) bool {
		best := -1
		for i := range nodes {
			if !res.Fits(spare[i]) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			ci, cb := psOn[i]+wOn[i], psOn[best]+wOn[best]
			if ci < cb || (ci == cb && spare[i][cluster.CPU] > spare[best][cluster.CPU]) {
				best = i
			}
		}
		if best < 0 {
			return false
		}
		spare[best] = spare[best].Sub(res)
		counts[best]++
		return true
	}
	for t := 0; t < w; t++ {
		if !assign(req.WorkerRes, wOn) {
			return Placement{}, false
		}
	}
	for t := 0; t < p; t++ {
		if !assign(req.PSRes, psOn) {
			return Placement{}, false
		}
	}
	var pl Placement
	for i, n := range nodes {
		if psOn[i] == 0 && wOn[i] == 0 {
			continue
		}
		pl.NodeIDs = append(pl.NodeIDs, n.ID)
		pl.PSOnNode = append(pl.PSOnNode, psOn[i])
		pl.WorkersOnNode = append(pl.WorkersOnNode, wOn[i])
	}
	return pl, true
}

// tryEvenSplit checks whether an even split of p PS and w workers over the
// given servers fits, assigning remainders to the most-available servers
// (which come first in the sorted slice).
func tryEvenSplit(req PlacementRequest, nodes []*cluster.Node, p, w int) (Placement, bool) {
	k := len(nodes)
	pl := Placement{
		NodeIDs:       make([]string, k),
		PSOnNode:      make([]int, k),
		WorkersOnNode: make([]int, k),
	}
	for i, n := range nodes {
		pl.NodeIDs[i] = n.ID
		pl.PSOnNode[i] = p / k
		if i < p%k {
			pl.PSOnNode[i]++
		}
		pl.WorkersOnNode[i] = w / k
		if i < w%k {
			pl.WorkersOnNode[i]++
		}
	}
	for i, n := range nodes {
		need := req.PSRes.Scale(float64(pl.PSOnNode[i])).
			Add(req.WorkerRes.Scale(float64(pl.WorkersOnNode[i])))
		if !need.Fits(n.Available()) {
			return Placement{}, false
		}
	}
	return pl, true
}

// commitPlacement reserves the placed tasks on the cluster nodes.
func commitPlacement(req PlacementRequest, pl Placement, c *cluster.Cluster) {
	for i, id := range pl.NodeIDs {
		n := c.Node(id)
		for t := 0; t < pl.PSOnNode[i]; t++ {
			if err := n.Allocate(req.PSRes); err != nil {
				// tryEvenSplit verified the fit; failure here means the
				// cluster changed concurrently, which Place does not support.
				panic("core: placement commit failed: " + err.Error())
			}
		}
		for t := 0; t < pl.WorkersOnNode[i]; t++ {
			if err := n.Allocate(req.WorkerRes); err != nil {
				panic("core: placement commit failed: " + err.Error())
			}
		}
	}
}

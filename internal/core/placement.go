package core

import (
	"slices"

	"optimus/internal/cluster"
	"optimus/internal/obs"
)

// PlacementRequest asks the placer to deploy a job's granted allocation.
type PlacementRequest struct {
	JobID            int
	Alloc            Allocation
	WorkerRes, PSRes cluster.Resources
}

// Placement records where one job's tasks landed: parallel slices of node
// IDs and per-node PS/worker counts.
type Placement struct {
	NodeIDs       []string
	PSOnNode      []int
	WorkersOnNode []int
}

// Servers returns the number of distinct servers used.
func (p Placement) Servers() int { return len(p.NodeIDs) }

// Counts returns the placed totals.
func (p Placement) Counts() (ps, workers int) {
	for _, v := range p.PSOnNode {
		ps += v
	}
	for _, v := range p.WorkersOnNode {
		workers += v
	}
	return ps, workers
}

// demand returns the job's total resource demand, used for smallest-first
// ordering.
func (r PlacementRequest) demand() cluster.Resources {
	return r.WorkerRes.Scale(float64(r.Alloc.Workers)).
		Add(r.PSRes.Scale(float64(r.Alloc.PS)))
}

// orderedReq is one entry of the placer's smallest-dominant-share-first
// ordering, carrying the precomputed share so the sort comparator (and the
// incremental session's prefix diffing) never re-derive it.
type orderedReq struct {
	req   PlacementRequest
	share float64
}

// placeRec is one committed placement expressed as a segment of the state's
// record arrays: recNodes/recPS/recW[off : off+n]. Placements are
// materialized from the records in a single pass at the end of Place, so the
// search/commit loop itself performs no per-job allocation.
type placeRec struct {
	job  int
	off  int
	n    int
	even bool
}

// PlaceState owns the scratch memory of the §4.2 placer: the request
// ordering, a free-CPU-sorted node index maintained incrementally across
// placements, the per-attempt count/spare buffers of the greedy fallback,
// and the record arrays the chosen placements are staged in before
// materialization. The zero value is ready to use; a state is not safe for
// concurrent use.
//
// The sorted index is the core optimization: the previous implementation
// re-selected (or re-sorted) the most-available nodes from scratch for every
// request, while committing a placement only changes the availability of the
// handful of nodes it touched. Place now sorts the cluster once per call and
// re-sifts just the touched nodes after each commit — each sinks to its new
// position by binary search — so each request sees exactly the ordering a
// full re-sort would produce at a fraction of the cost.
type PlaceState struct {
	// Trace, when non-nil and enabled, receives one "place-kernel" span per
	// Place call. Audit, when non-nil and enabled, receives one PlaceEvent
	// per committed placement — the §4.2 decision audit log. Both default to
	// nil; the disabled path performs no extra work.
	Trace *obs.Tracer
	Audit *obs.AuditLog

	ordered []orderedReq
	index   []*cluster.Node // sorted: available CPU desc, node ID asc
	touched []int           // index positions staged by the current placeOne, ascending
	psOn    []int
	wOn     []int
	spare   []cluster.Resources

	// Staged placements of the current call: placeOne appends (node, ps, w)
	// rows, placeRecs segments them per job, materialize() turns them into
	// the caller-owned map with exactly four allocations (map + 3 arenas).
	recNodes []*cluster.Node
	recPS    []int
	recW     []int
	recs     []placeRec
}

// NewPlaceState returns an empty placer state.
func NewPlaceState() *PlaceState { return &PlaceState{} }

// nodeLess is the §4.2 server ordering: descending available CPU, ties
// broken by node ID. It matches cluster.SortedByAvailable(cluster.CPU) and
// is a total order (IDs are unique), so any sort produces one canonical
// sequence.
func nodeLess(a, b *cluster.Node) bool {
	aa, ab := a.Available()[cluster.CPU], b.Available()[cluster.CPU]
	if aa != ab {
		return aa > ab
	}
	return a.ID < b.ID
}

// nodeCmp is nodeLess as a three-way comparison for the generic sorts, which
// unlike sort.Slice do not box the slice and stay allocation-free — resift
// sorts on every commit, so that per-call allocation was the placer's
// dominant steady-state garbage.
func nodeCmp(a, b *cluster.Node) int {
	if nodeLess(a, b) {
		return -1
	}
	if nodeLess(b, a) {
		return 1
	}
	return 0
}

// Place implements the §4.2 placement scheme. Servers are sorted in
// descending order of available CPU; jobs are placed smallest-demand-first
// (starvation avoidance); each job uses the smallest k such that the top-k
// servers can host an even split of its PS and workers (Theorem 1), with
// remainders assigned to the most-available servers. Placed resources are
// allocated on the cluster's nodes. Jobs that cannot be placed are returned
// in unplaced and must be paused until the next interval (§4.2).
//
// The returned map, Placements, and unplaced slice are caller-owned; only
// the state's internal scratch is reused between calls.
func (st *PlaceState) Place(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	sp := st.Trace.Begin("place-kernel")
	defer st.Trace.End(sp)
	ordered := st.orderReqs(reqs, c.Capacity())
	st.beginIndex(c)
	st.resetRecs()

	var unplaced []int
	for i := range ordered {
		req := ordered[i].req
		if req.Alloc.PS <= 0 || req.Alloc.Workers <= 0 {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		if _, ok := st.placeStep(req, c); !ok {
			unplaced = append(unplaced, req.JobID)
		}
	}
	return st.materialize(len(reqs)), unplaced
}

// orderReqs copies the requests into the state's ordering scratch with their
// dominant shares precomputed and applies the §4.2 smallest-demand-first
// stable sort (share ascending, job ID tiebreak).
func (st *PlaceState) orderReqs(reqs []PlacementRequest, capacity cluster.Resources) []orderedReq {
	st.ordered = st.ordered[:0]
	for _, r := range reqs {
		share, _ := r.demand().DominantShare(capacity)
		st.ordered = append(st.ordered, orderedReq{req: r, share: share})
	}
	ordered := st.ordered
	slices.SortStableFunc(ordered, func(a, b orderedReq) int {
		if a.share != b.share {
			if a.share < b.share {
				return -1
			}
			return 1
		}
		return a.req.JobID - b.req.JobID
	})
	return ordered
}

// beginIndex (re)builds the sorted node index from the cluster's current
// availability. One full sort per Place call; incrementally re-sifted after
// commits.
func (st *PlaceState) beginIndex(c *cluster.Cluster) {
	st.index = append(st.index[:0], c.Nodes()...)
	slices.SortFunc(st.index, nodeCmp)
}

// resetRecs clears the staged-placement record arrays for a fresh run.
func (st *PlaceState) resetRecs() {
	st.recNodes = st.recNodes[:0]
	st.recPS = st.recPS[:0]
	st.recW = st.recW[:0]
	st.recs = st.recs[:0]
}

// placeStep searches, stages, and commits one request against the current
// index state: the placeOne search appends the chosen rows to the record
// arrays, the commit reserves them on the cluster, and the touched nodes are
// re-sifted back into sorted order. Returns the record and whether the job
// was placed; on failure the staged rows are rolled back.
func (st *PlaceState) placeStep(req PlacementRequest, c *cluster.Cluster) (placeRec, bool) {
	off := len(st.recNodes)
	st.touched = st.touched[:0]
	even, ok := st.placeOne(req)
	if !ok {
		st.recNodes = st.recNodes[:off]
		st.recPS = st.recPS[:off]
		st.recW = st.recW[:off]
		return placeRec{}, false
	}
	rec := placeRec{job: req.JobID, off: off, n: len(st.recNodes) - off, even: even}
	st.commitRec(req, rec, c)
	st.recs = append(st.recs, rec)
	if st.Audit.Enabled() {
		ids := make([]string, rec.n)
		for i := 0; i < rec.n; i++ {
			ids[i] = st.recNodes[off+i].ID
		}
		st.Audit.Place(obs.PlaceEvent{
			Job: req.JobID,
			PS:  req.Alloc.PS, Workers: req.Alloc.Workers,
			Servers: rec.n,
			Spread:  st.recSpread(rec),
			Even:    rec.even,
			Nodes:   ids,
		})
	}
	st.resift()
	return rec, true
}

// commitRec reserves a staged placement's tasks on its nodes, PS tasks
// first, matching the reference commit order task by task (the arithmetic
// order matters for byte-identical float state).
func (st *PlaceState) commitRec(req PlacementRequest, rec placeRec, c *cluster.Cluster) {
	for i := rec.off; i < rec.off+rec.n; i++ {
		n := st.recNodes[i]
		for t := 0; t < st.recPS[i]; t++ {
			if err := n.Allocate(req.PSRes); err != nil {
				// placeOne verified the fit; failure here means the cluster
				// changed concurrently, which Place does not support.
				panic("core: placement commit failed: " + err.Error())
			}
		}
		for t := 0; t < st.recW[i]; t++ {
			if err := n.Allocate(req.WorkerRes); err != nil {
				panic("core: placement commit failed: " + err.Error())
			}
		}
	}
}

// recSpread is placementSpread computed on a staged record segment.
func (st *PlaceState) recSpread(rec placeRec) int {
	if rec.n == 0 {
		return 0
	}
	min, max := -1, 0
	for i := rec.off; i < rec.off+rec.n; i++ {
		t := st.recPS[i] + st.recW[i]
		if t > max {
			max = t
		}
		if min < 0 || t < min {
			min = t
		}
	}
	return max - min
}

// materialize builds the caller-owned result from the staged records: one
// node-ID arena, two count arenas, and the map — four allocations total,
// independent of job count beyond the map's buckets. Each Placement's slices
// are capped sub-slices of the arenas, so callers appending to one placement
// cannot bleed into the next.
func (st *PlaceState) materialize(sizeHint int) map[int]Placement {
	placements := make(map[int]Placement, sizeHint)
	total := len(st.recNodes)
	ids := make([]string, total)
	ps := make([]int, total)
	ws := make([]int, total)
	copy(ps, st.recPS)
	copy(ws, st.recW)
	for i, n := range st.recNodes {
		ids[i] = n.ID
	}
	for _, rec := range st.recs {
		end := rec.off + rec.n
		placements[rec.job] = Placement{
			NodeIDs:       ids[rec.off:end:end],
			PSOnNode:      ps[rec.off:end:end],
			WorkersOnNode: ws[rec.off:end:end],
		}
	}
	return placements
}

// Place is the stateless convenience wrapper: each call runs on a fresh
// PlaceState. Hot paths should hold a PlaceState and call its method.
func Place(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	var st PlaceState
	return st.Place(reqs, c)
}

// resift restores sorted order after a commit shrank the staged nodes'
// availability. A node that lost capacity can only sink toward the tail of
// the descending-availability order, and the staged positions (recorded by
// the search as it walked the index) are ascending — so processing them from
// the right, each node binary-searches its insertion point in the
// already-sorted suffix and sinks there with one memmove. The comparator is a
// total order, so the result is exactly what a full re-sort would produce.
// (The previous implementation partitioned the touched nodes out by ID and
// re-merged the full index after every commit; that per-commit O(nodes) pass
// of string hashing and comparisons dominated placement on large clusters.)
func (st *PlaceState) resift() {
	index := st.index
	for t := len(st.touched) - 1; t >= 0; t-- {
		i := st.touched[t]
		n := index[i]
		lo, hi := i+1, len(index)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if nodeLess(index[mid], n) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > i+1 {
			copy(index[i:], index[i+1:lo])
			index[lo-1] = n
		}
	}
	st.touched = st.touched[:0]
}

// placementSpread is the audit evenness metric: the difference between the
// most- and least-loaded servers of the placement, counting both task kinds.
// A Theorem-1 even split has spread ≤ 1 per task kind, so ≤ 2 total; large
// values flag fragmented greedy placements.
func placementSpread(pl Placement) int {
	if len(pl.NodeIDs) == 0 {
		return 0
	}
	min, max := -1, 0
	for i := range pl.NodeIDs {
		t := pl.PSOnNode[i] + pl.WorkersOnNode[i]
		if t > max {
			max = t
		}
		if min < 0 || t < min {
			min = t
		}
	}
	return max - min
}

// placeOne finds the smallest k such that the first k index nodes fit an
// even split of the job, staging the chosen rows in the record arrays. When
// no exact even split exists on any prefix (per-node capacities may be too
// uneven), it falls back to a greedy placement that keeps per-node counts as
// balanced as the capacities allow — preserving Theorem 1's spirit while
// guaranteeing progress whenever the job fits at all. The first result
// reports whether the Theorem-1 even-split path produced the placement
// (audit evenness flag).
func (st *PlaceState) placeOne(req PlacementRequest) (even, ok bool) {
	p, w := req.Alloc.PS, req.Alloc.Workers
	nodes := st.index
	// Searching every prefix is O(N²) per job on a full cluster. Beyond
	// k = p+w each server hosts at most one task of each kind, so growing k
	// further only helps by swapping in different servers — territory the
	// greedy fallback covers directly. Bounding the scan keeps a scheduling
	// cycle near-linear in cluster size (the Fig-12 scalability property).
	maxK := p + w + 16
	bound := maxK
	if bound > len(nodes) {
		bound = len(nodes)
	}
	for k := 1; k <= bound; k++ {
		if evenSplitFits(req, nodes[:k], p, w) {
			st.stageEvenSplit(nodes[:k], p, w)
			return true, true
		}
	}
	top := nodes
	if maxK < len(top) {
		top = top[:maxK]
	}
	if st.greedyBalanced(req, top, p, w) {
		return false, true
	}
	if len(top) < len(nodes) {
		// The top-K slice may just have been unlucky with fragmentation; try
		// the complete ordering before pausing the job.
		return false, st.greedyBalanced(req, nodes, p, w)
	}
	return false, false
}

// stageEvenSplit appends the even-split placement evenSplitFits accepted to
// the record arrays, recording each node's index position for resift. Like
// the reference construction, every one of the k nodes is included even if it
// receives zero tasks of one kind.
func (st *PlaceState) stageEvenSplit(nodes []*cluster.Node, p, w int) {
	k := len(nodes)
	for i, n := range nodes {
		ps, workers := evenSplit(i, k, p, w)
		st.recNodes = append(st.recNodes, n)
		st.recPS = append(st.recPS, ps)
		st.recW = append(st.recW, workers)
		st.touched = append(st.touched, i)
	}
}

// greedyBalanced assigns tasks one at a time to the fitting node currently
// hosting the fewest tasks of this job (ties broken by available CPU, then
// node order), staging the resulting rows on success. Workers go first since
// they are usually the larger profile.
func (st *PlaceState) greedyBalanced(req PlacementRequest, nodes []*cluster.Node, p, w int) bool {
	k := len(nodes)
	psOn := resizeInts(&st.psOn, k)
	wOn := resizeInts(&st.wOn, k)
	if cap(st.spare) < k {
		st.spare = make([]cluster.Resources, k)
	}
	spare := st.spare[:k]
	for i, n := range nodes {
		spare[i] = n.Available()
	}
	assign := func(res cluster.Resources, counts []int) bool {
		best := -1
		for i := range nodes {
			if !res.Fits(spare[i]) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			ci, cb := psOn[i]+wOn[i], psOn[best]+wOn[best]
			if ci < cb || (ci == cb && spare[i][cluster.CPU] > spare[best][cluster.CPU]) {
				best = i
			}
		}
		if best < 0 {
			return false
		}
		spare[best] = spare[best].Sub(res)
		counts[best]++
		return true
	}
	for t := 0; t < w; t++ {
		if !assign(req.WorkerRes, wOn) {
			return false
		}
	}
	for t := 0; t < p; t++ {
		if !assign(req.PSRes, psOn) {
			return false
		}
	}
	for i, n := range nodes {
		if psOn[i] == 0 && wOn[i] == 0 {
			continue
		}
		st.recNodes = append(st.recNodes, n)
		st.recPS = append(st.recPS, psOn[i])
		st.recW = append(st.recW, wOn[i])
		st.touched = append(st.touched, i)
	}
	return true
}

// resizeInts returns *s resized to n elements, all zero, growing the backing
// array only when needed.
func resizeInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
		return *s
	}
	out := (*s)[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// evenSplit returns the PS and worker counts node i receives when p PS and
// w workers are split evenly over k servers, remainders going to the
// most-available servers (which come first in the sorted slice).
func evenSplit(i, k, p, w int) (ps, workers int) {
	ps = p / k
	if i < p%k {
		ps++
	}
	workers = w / k
	if i < w%k {
		workers++
	}
	return ps, workers
}

// evenSplitFits checks whether an even split of p PS and w workers over the
// given servers fits, without materializing the placement.
func evenSplitFits(req PlacementRequest, nodes []*cluster.Node, p, w int) bool {
	k := len(nodes)
	for i, n := range nodes {
		pi, wi := evenSplit(i, k, p, w)
		need := req.PSRes.Scale(float64(pi)).
			Add(req.WorkerRes.Scale(float64(wi)))
		if !need.Fits(n.Available()) {
			return false
		}
	}
	return true
}

// commitPlacement reserves the placed tasks on the cluster nodes. Place's
// hot path commits from staged records (commitRec); this Placement-based
// form is kept for the reference-spec tests and the incremental session's
// prefix replay, which re-applies cached placements with the same per-task
// arithmetic order.
func commitPlacement(req PlacementRequest, pl Placement, c *cluster.Cluster) {
	for i, id := range pl.NodeIDs {
		n := c.Node(id)
		for t := 0; t < pl.PSOnNode[i]; t++ {
			if err := n.Allocate(req.PSRes); err != nil {
				// tryEvenSplit verified the fit; failure here means the
				// cluster changed concurrently, which Place does not support.
				panic("core: placement commit failed: " + err.Error())
			}
		}
		for t := 0; t < pl.WorkersOnNode[i]; t++ {
			if err := n.Allocate(req.WorkerRes); err != nil {
				panic("core: placement commit failed: " + err.Error())
			}
		}
	}
}

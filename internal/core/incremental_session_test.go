package core

import (
	"math/rand"
	"reflect"
	"testing"

	"optimus/internal/cluster"
)

// churnWorld is the mutable state the churn oracle drives: a live job set
// with arrivals, completions, refits, and priority changes, plus a
// persistent cluster for the incremental placement session (the reference
// placer gets a fresh cluster every step).
type churnWorld struct {
	r        *rand.Rand
	jobs     []*JobInfo
	nextID   int
	gen      uint64
	capacity cluster.Resources
	specs    []cluster.Resources
	sessCl   *cluster.Cluster
}

func newChurnWorld(r *rand.Rand, startJobs int) *churnWorld {
	w := &churnWorld{r: r}
	for i := 0; i < startJobs; i++ {
		w.jobs = append(w.jobs, w.newJob())
	}
	w.specs = randClusterSpec(r)
	w.sessCl = buildCluster(w.specs)
	scale := 2 + r.Float64()*38
	n := float64(startJobs + 1)
	w.capacity = cluster.Resources{
		cluster.CPU:    n * scale,
		cluster.Memory: n * scale * 3,
	}
	return w
}

// newJob mirrors randJobs' smooth random speed surfaces, with a fresh
// SpeedGen stamp per surface so the session can trust unchanged jobs.
func (w *churnWorld) newJob() *JobInfo {
	r := w.r
	id := w.nextID
	w.nextID++
	j := &JobInfo{
		ID:            id,
		RemainingWork: 1e4 * (0.5 + r.Float64()),
		WorkerRes: cluster.Resources{
			cluster.CPU:    2 + 2*r.Float64(),
			cluster.Memory: 4 + 4*r.Float64(),
		},
		PSRes: cluster.Resources{
			cluster.CPU:    1 + r.Float64(),
			cluster.Memory: 2 + 2*r.Float64(),
		},
		MaxWorkers: r.Intn(3) * 8,
		MaxPS:      r.Intn(3) * 4,
	}
	if r.Intn(4) == 0 {
		j.Priority = 0.95
	}
	w.refit(j)
	return j
}

// refit installs a fresh random speed surface and bumps the generation.
func (w *churnWorld) refit(j *JobInfo) {
	a := 0.5 + w.r.Float64()
	b := 0.1 + w.r.Float64()
	c := 0.05 + 0.2*w.r.Float64()
	j.Speed = func(p, ww int) float64 {
		if p <= 0 || ww <= 0 {
			return 0
		}
		pf, wf := float64(p), float64(ww)
		return a * wf / (1 + b*wf/pf + c*wf)
	}
	w.gen++
	j.SpeedGen = w.gen
}

// step applies one churn operation. op is reduced modulo the op count, so a
// fuzz byte stream can drive it directly.
func (w *churnWorld) step(op byte) {
	r := w.r
	switch op % 8 {
	case 0: // clean interval: touch nothing
	case 1: // arrival
		w.jobs = append(w.jobs, w.newJob())
	case 2: // completion
		if len(w.jobs) > 0 {
			i := r.Intn(len(w.jobs))
			w.jobs = append(w.jobs[:i], w.jobs[i+1:]...)
		}
	case 3: // refit: new speed surface + progress
		if len(w.jobs) > 0 {
			j := w.jobs[r.Intn(len(w.jobs))]
			j.RemainingWork *= 0.5 + r.Float64()
			w.refit(j)
		}
	case 4: // progress only (work shrinks, model unchanged)
		if len(w.jobs) > 0 {
			w.jobs[r.Intn(len(w.jobs))].RemainingWork *= 0.9
		}
	case 5: // priority change
		if len(w.jobs) > 0 {
			j := w.jobs[r.Intn(len(w.jobs))]
			if j.Priority == 0 {
				j.Priority = 0.95
			} else {
				j.Priority = 0
			}
		}
	case 6: // capacity change (must force a full allocator recompute)
		w.capacity = w.capacity.Scale(0.8 + 0.4*r.Float64())
	case 7: // external cluster mutation (must trip the post-commit guard)
		nodes := w.sessCl.Nodes()
		n := nodes[r.Intn(len(nodes))]
		_ = n.Allocate(cluster.Resources{cluster.CPU: 0.25})
	}
}

// interval runs one scheduling interval through the incremental sessions and
// the from-scratch reference kernels, requiring byte-identical allocations,
// placements, unplaced lists, and final per-node float state.
func (w *churnWorld) interval(t testing.TB, inc *Incremental) {
	t.Helper()
	wantAlloc := refAllocate(w.jobs, w.capacity)
	gotAlloc := inc.Alloc.Allocate(w.jobs, w.capacity)
	if !reflect.DeepEqual(wantAlloc, gotAlloc) {
		t.Fatalf("allocations diverge\nref: %v\nnew: %v", wantAlloc, gotAlloc)
	}

	var reqs []PlacementRequest
	for _, j := range w.jobs {
		a := gotAlloc[j.ID]
		if a.PS > 0 && a.Workers > 0 {
			reqs = append(reqs, PlacementRequest{
				JobID: j.ID, Alloc: a,
				WorkerRes: j.WorkerRes, PSRes: j.PSRes,
			})
		}
	}

	cRef := buildCluster(w.specs)
	wantPl, wantUn := refPlace(reqs, cRef)
	gotPl, gotUn := inc.Place.Place(reqs, w.sessCl)
	if !reflect.DeepEqual(wantPl, gotPl) {
		t.Fatalf("placements diverge\nref: %v\nnew: %v", wantPl, gotPl)
	}
	if !reflect.DeepEqual(wantUn, gotUn) {
		t.Fatalf("unplaced diverge\nref: %v\nnew: %v", wantUn, gotUn)
	}
	for i, n := range cRef.Nodes() {
		if n.Used() != w.sessCl.Nodes()[i].Used() {
			t.Fatalf("node %s usage diverges: ref %v, new %v",
				n.ID, n.Used(), w.sessCl.Nodes()[i].Used())
		}
	}
}

// TestIncrementalSessionChurn is the property-test arm of the churn oracle:
// random arrive/complete/refit/priority/capacity/mutation sequences, with
// the incremental session output compared against the from-scratch reference
// after every single step.
func TestIncrementalSessionChurn(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(4000 + seed))
		w := newChurnWorld(r, 1+r.Intn(24))
		inc := NewIncremental()
		inc.Alloc.MinParallelDirty = 2 // exercise the parallel refit pool
		for step := 0; step < 40; step++ {
			w.step(byte(r.Intn(256)))
			w.interval(t, inc)
		}
	}
}

// TestIncrementalSessionTiers pins the tier accounting: a repeated identical
// interval must hit both clean fast paths, a single-job change must take the
// incremental allocator tier, and a capacity change must force full
// recomputes.
func TestIncrementalSessionTiers(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	w := newChurnWorld(r, 12)
	// Capped jobs and generous capacity so the run is uncontended (an
	// uncapped job under a monotone speed surface never saturates, which
	// rightly forces the contended full path) and the incremental allocator
	// tier is reachable.
	for _, j := range w.jobs {
		j.MaxWorkers, j.MaxPS = 8, 4
	}
	w.capacity = cluster.Resources{cluster.CPU: 1e6, cluster.Memory: 4e6}
	inc := NewIncremental()

	w.interval(t, inc) // prime: full tier for both kernels
	st := inc.Stats()
	if st.AllocFull != 1 || st.PlaceFull != 1 {
		t.Fatalf("priming interval: want one full tier each, got %+v", st)
	}

	w.interval(t, inc) // untouched: clean tier for both
	st = inc.Stats()
	if st.AllocClean != 1 || st.PlaceClean != 1 {
		t.Fatalf("clean interval not detected: %+v", st)
	}
	if st.LastDirty != 0 || st.LastMigrated != 0 {
		t.Fatalf("clean interval reported churn: %+v", st)
	}

	// One job progresses: incremental allocator tier with dirty set of 1.
	w.jobs[3].RemainingWork *= 0.9
	w.interval(t, inc)
	st = inc.Stats()
	if st.AllocIncremental != 1 || st.LastDirty != 1 || st.DirtyJobs != 1 {
		t.Fatalf("single-dirty interval not incremental: %+v", st)
	}

	// Capacity change: full allocator recompute.
	w.capacity = w.capacity.Scale(0.9)
	w.interval(t, inc)
	st = inc.Stats()
	if st.AllocFull != 2 {
		t.Fatalf("capacity change did not force full allocator tier: %+v", st)
	}
}

// TestPlaceSessionCleanReturnsCached verifies the clean tier returns the
// session's cached objects without touching the cluster (no reset, no
// re-commit).
func TestPlaceSessionCleanReturnsCached(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	specs := randClusterSpec(r)
	c := buildCluster(specs)
	jobs := randJobs(r, 8)
	alloc := refAllocate(jobs, cluster.Resources{cluster.CPU: 1e5, cluster.Memory: 4e5})
	var reqs []PlacementRequest
	for _, j := range jobs {
		a := alloc[j.ID]
		if a.PS > 0 && a.Workers > 0 {
			reqs = append(reqs, PlacementRequest{JobID: j.ID, Alloc: a, WorkerRes: j.WorkerRes, PSRes: j.PSRes})
		}
	}
	s := NewPlaceSession()
	pl1, _ := s.Place(reqs, c)
	used := make([]cluster.Resources, 0, len(c.Nodes()))
	for _, n := range c.Nodes() {
		used = append(used, n.Used())
	}
	pl2, _ := s.Place(reqs, c)
	if &pl1 == nil || reflect.ValueOf(pl1).Pointer() != reflect.ValueOf(pl2).Pointer() {
		t.Fatal("clean tier did not return the cached placement map")
	}
	for i, n := range c.Nodes() {
		if n.Used() != used[i] {
			t.Fatalf("clean tier mutated node %s", n.ID)
		}
	}
	if s.LastMigrated() != 0 {
		t.Fatalf("clean tier migrated %d tasks", s.LastMigrated())
	}
}

// FuzzIncrementalChurn is the fuzz arm of the churn oracle: the input bytes
// drive the op sequence directly, with equality against the from-scratch
// reference asserted after every step.
func FuzzIncrementalChurn(f *testing.F) {
	f.Add([]byte{1, 3, 0, 2, 6, 1, 7, 3, 5, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 1, 1, 2, 2, 2, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 24 {
			return
		}
		var seed int64
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		r := rand.New(rand.NewSource(seed))
		w := newChurnWorld(r, 1+r.Intn(10))
		inc := NewIncremental()
		inc.Alloc.MinParallelDirty = 3
		for _, op := range data {
			w.step(op)
			w.interval(t, inc)
		}
	})
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optimus/internal/cluster"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

var (
	wres = cluster.Resources{cluster.CPU: 5, cluster.Memory: 10}
	pres = cluster.Resources{cluster.CPU: 5, cluster.Memory: 10}
)

// jobFromModel builds a JobInfo backed by a workload model's true speed.
func jobFromModel(id int, name string, mode speedfit.Mode, work float64) *JobInfo {
	m := workload.ZooByName(name)
	return &JobInfo{
		ID:            id,
		RemainingWork: work,
		Speed:         func(p, w int) float64 { return m.TrueSpeed(mode, p, w) },
		WorkerRes:     wres,
		PSRes:         pres,
	}
}

func capFor(tasks int) cluster.Resources {
	return cluster.Resources{
		cluster.CPU:    float64(tasks) * 5,
		cluster.Memory: float64(tasks) * 10,
	}
}

func TestAllocateEmpty(t *testing.T) {
	if got := Allocate(nil, capFor(10)); len(got) != 0 {
		t.Errorf("Allocate(nil) = %v", got)
	}
}

func TestAllocateStarvationAvoidance(t *testing.T) {
	jobs := []*JobInfo{
		jobFromModel(0, "resnet-50", speedfit.Sync, 1e6),
		jobFromModel(1, "cnn-rand", speedfit.Async, 100),
		jobFromModel(2, "seq2seq", speedfit.Sync, 5e5),
	}
	alloc := Allocate(jobs, capFor(40))
	for _, j := range jobs {
		a := alloc[j.ID]
		if a.PS < 1 || a.Workers < 1 {
			t.Errorf("job %d got %+v, want ≥(1,1)", j.ID, a)
		}
	}
}

func TestAllocateRespectsCapacity(t *testing.T) {
	jobs := []*JobInfo{
		jobFromModel(0, "resnet-50", speedfit.Sync, 1e6),
		jobFromModel(1, "rnn-lstm", speedfit.Async, 1e6),
	}
	capacity := capFor(20)
	alloc := Allocate(jobs, capacity)
	var used cluster.Resources
	for _, j := range jobs {
		a := alloc[j.ID]
		used = used.Add(j.WorkerRes.Scale(float64(a.Workers))).
			Add(j.PSRes.Scale(float64(a.PS)))
	}
	if !used.Fits(capacity) {
		t.Errorf("allocation %v exceeds capacity %v", used, capacity)
	}
}

func TestAllocateSkipsJobsThatDontFit(t *testing.T) {
	jobs := []*JobInfo{
		jobFromModel(0, "resnet-50", speedfit.Sync, 1e6),
		jobFromModel(1, "cnn-rand", speedfit.Async, 1e6),
	}
	// Capacity for exactly one (1,1) pair: job 0 (lower ID) gets it.
	alloc := Allocate(jobs, capFor(2))
	if a := alloc[0]; a.PS != 1 || a.Workers != 1 {
		t.Errorf("job 0 got %+v, want (1,1)", a)
	}
	if a := alloc[1]; a.PS != 0 || a.Workers != 0 {
		t.Errorf("job 1 got %+v, want (0,0)", a)
	}
}

func TestAllocateStopsAtDiminishingReturns(t *testing.T) {
	// One small job in a huge cluster: allocation should stop well short of
	// capacity once marginal gains go non-positive (sync jobs slow down with
	// too many workers).
	j := jobFromModel(0, "resnet-50", speedfit.Sync, 1e5)
	alloc := Allocate([]*JobInfo{j}, capFor(10000))
	a := alloc[0]
	if a.Tasks() >= 10000 {
		t.Errorf("allocated %d tasks; greedy should stop at diminishing returns", a.Tasks())
	}
	if a.Tasks() < 2 {
		t.Errorf("allocated %+v; expected growth beyond the seed pair", a)
	}
	t.Logf("single ResNet-50 sync job settled at p=%d w=%d", a.PS, a.Workers)
}

func TestAllocateMoreWorkMoreResources(t *testing.T) {
	// Two identical jobs except remaining work; the longer job's marginal
	// gains are uniformly larger, so it must receive at least as many tasks.
	big := jobFromModel(0, "rnn-lstm", speedfit.Async, 1e7)
	small := jobFromModel(1, "rnn-lstm", speedfit.Async, 1e3)
	alloc := Allocate([]*JobInfo{big, small}, capFor(30))
	if alloc[0].Tasks() < alloc[1].Tasks() {
		t.Errorf("big job got %d tasks, small got %d", alloc[0].Tasks(), alloc[1].Tasks())
	}
}

func TestAllocateHonorsCaps(t *testing.T) {
	j := jobFromModel(0, "resnext-110", speedfit.Async, 1e8)
	j.MaxWorkers, j.MaxPS = 3, 2
	alloc := Allocate([]*JobInfo{j}, capFor(1000))
	a := alloc[0]
	if a.Workers > 3 || a.PS > 2 {
		t.Errorf("allocation %+v exceeds caps (3 workers, 2 ps)", a)
	}
}

func TestAllocatePriorityDampens(t *testing.T) {
	// Same job twice, one with dampened priority: under tight capacity the
	// dampened job should never receive more tasks.
	mk := func(id int, prio float64) *JobInfo {
		j := jobFromModel(id, "inception-bn", speedfit.Async, 1e6)
		j.Priority = prio
		return j
	}
	a := Allocate([]*JobInfo{mk(0, 1.0), mk(1, 0.5)}, capFor(12))
	if a[1].Tasks() > a[0].Tasks() {
		t.Errorf("dampened job got %d tasks, full-priority job %d",
			a[1].Tasks(), a[0].Tasks())
	}
}

func TestAllocateStalledJobGetsUnstuck(t *testing.T) {
	// A speed function that needs at least 2 workers to progress: the huge
	// stall-escape gain must drive the allocator to grant the second worker.
	j := &JobInfo{
		ID:            0,
		RemainingWork: 1000,
		Speed: func(p, w int) float64 {
			if p < 1 || w < 2 {
				return 0
			}
			return float64(w)
		},
		WorkerRes: wres,
		PSRes:     pres,
	}
	alloc := Allocate([]*JobInfo{j}, capFor(10))
	if alloc[0].Workers < 2 {
		t.Errorf("allocation %+v; want ≥2 workers to unstall", alloc[0])
	}
}

// Property: allocations never exceed capacity and every job with a granted
// seed pair keeps at least (1,1).
func TestAllocateInvariants(t *testing.T) {
	names := []string{"resnet-50", "cnn-rand", "seq2seq", "dssm", "ds2"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		jobs := make([]*JobInfo, n)
		for i := range jobs {
			mode := speedfit.Mode(r.Intn(2))
			jobs[i] = jobFromModel(i, names[r.Intn(len(names))], mode,
				float64(1+r.Intn(1_000_000)))
		}
		capacity := capFor(4 + r.Intn(60))
		alloc := Allocate(jobs, capacity)
		var used cluster.Resources
		for _, j := range jobs {
			a := alloc[j.ID]
			if a.PS < 0 || a.Workers < 0 {
				return false
			}
			if (a.PS > 0) != (a.Workers > 0) {
				return false // seed pair is all-or-nothing
			}
			used = used.Add(j.WorkerRes.Scale(float64(a.Workers))).
				Add(j.PSRes.Scale(float64(a.PS)))
		}
		return used.Fits(capacity)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// --- placement tests ---

func placeReq(id, ps, w int) PlacementRequest {
	return PlacementRequest{
		JobID:     id,
		Alloc:     Allocation{PS: ps, Workers: w},
		WorkerRes: wres,
		PSRes:     pres,
	}
}

func TestPlaceSingleJobFewestServers(t *testing.T) {
	// 2 PS + 4 workers, each node fits 6 tasks → everything on one node.
	c := cluster.Uniform(3, capFor(6))
	pls, unplaced := Place([]PlacementRequest{placeReq(0, 2, 4)}, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	pl := pls[0]
	if pl.Servers() != 1 {
		t.Errorf("used %d servers, want 1 (Theorem 1: fewest servers)", pl.Servers())
	}
	ps, w := pl.Counts()
	if ps != 2 || w != 4 {
		t.Errorf("placed %d ps %d workers, want 2/4", ps, w)
	}
}

func TestPlaceEvenSplit(t *testing.T) {
	// Each node fits 3 tasks; a 2ps+4w job needs 2 nodes with 1ps+2w each —
	// exactly Fig. 10's optimal placement (c) modulo server count.
	c := cluster.Uniform(4, capFor(3))
	pls, unplaced := Place([]PlacementRequest{placeReq(0, 2, 4)}, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	pl := pls[0]
	if pl.Servers() != 2 {
		t.Fatalf("used %d servers, want 2", pl.Servers())
	}
	for i := range pl.NodeIDs {
		if pl.PSOnNode[i] != 1 || pl.WorkersOnNode[i] != 2 {
			t.Errorf("node %d got %dps/%dw, want 1/2",
				i, pl.PSOnNode[i], pl.WorkersOnNode[i])
		}
	}
}

func TestPlaceSmallestJobFirst(t *testing.T) {
	// Capacity for 6 tasks total. A big job (8 tasks) and a small job (2
	// tasks): smallest-first means the small job gets placed, big is paused.
	c := cluster.Uniform(2, capFor(3))
	pls, unplaced := Place([]PlacementRequest{
		placeReq(0, 4, 4),
		placeReq(1, 1, 1),
	}, c)
	if _, ok := pls[1]; !ok {
		t.Error("small job not placed")
	}
	if len(unplaced) != 1 || unplaced[0] != 0 {
		t.Errorf("unplaced = %v, want [0]", unplaced)
	}
}

func TestPlaceCommitsResources(t *testing.T) {
	c := cluster.Uniform(2, capFor(4))
	_, unplaced := Place([]PlacementRequest{placeReq(0, 2, 2)}, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	used := c.Used()
	want := wres.Scale(2).Add(pres.Scale(2))
	if used != want {
		t.Errorf("cluster used %v, want %v", used, want)
	}
}

func TestPlaceZeroAllocationUnplaced(t *testing.T) {
	c := cluster.Uniform(2, capFor(4))
	_, unplaced := Place([]PlacementRequest{placeReq(0, 0, 0)}, c)
	if len(unplaced) != 1 {
		t.Errorf("unplaced = %v, want the zero-alloc job", unplaced)
	}
}

func TestPlaceRespectsExistingLoad(t *testing.T) {
	c := cluster.Uniform(2, capFor(4))
	// Pre-load node-0 almost fully.
	if err := c.Node("node-0").Allocate(capFor(3)); err != nil {
		t.Fatal(err)
	}
	pls, unplaced := Place([]PlacementRequest{placeReq(0, 1, 2)}, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	pl := pls[0]
	// The 3-task job fits entirely on node-1 (the most-available server).
	if pl.Servers() != 1 || pl.NodeIDs[0] != "node-1" {
		t.Errorf("placement = %+v, want all tasks on node-1", pl)
	}
}

// Property: placements never overcommit any node, and placed counts always
// match the request.
func TestPlaceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := cluster.Uniform(1+r.Intn(8), capFor(1+r.Intn(8)))
		var reqs []PlacementRequest
		for i := 0; i < 1+r.Intn(6); i++ {
			reqs = append(reqs, placeReq(i, 1+r.Intn(4), 1+r.Intn(6)))
		}
		pls, unplaced := Place(reqs, c)
		for _, n := range c.Nodes() {
			if !n.Used().Fits(n.Capacity) {
				return false
			}
		}
		if len(pls)+len(unplaced) != len(reqs) {
			return false
		}
		for _, req := range reqs {
			pl, ok := pls[req.JobID]
			if !ok {
				continue
			}
			ps, w := pl.Counts()
			if ps != req.Alloc.PS || w != req.Alloc.Workers {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// End-to-end: allocate on the paper's testbed capacity, then place — the
// full §4 pipeline must terminate with a feasible configuration.
func TestAllocateThenPlace(t *testing.T) {
	c := cluster.Testbed()
	jobs := []*JobInfo{
		jobFromModel(0, "resnet-50", speedfit.Sync, 5e5),
		jobFromModel(1, "cnn-rand", speedfit.Async, 1e4),
		jobFromModel(2, "seq2seq", speedfit.Sync, 2e5),
		jobFromModel(3, "dssm", speedfit.Async, 8e4),
	}
	alloc := Allocate(jobs, c.Capacity())
	var reqs []PlacementRequest
	for _, j := range jobs {
		a := alloc[j.ID]
		if a.Tasks() == 0 {
			continue
		}
		reqs = append(reqs, PlacementRequest{
			JobID: j.ID, Alloc: a, WorkerRes: j.WorkerRes, PSRes: j.PSRes,
		})
	}
	pls, unplaced := Place(reqs, c)
	if len(pls) == 0 {
		t.Fatalf("nothing placed; unplaced=%v", unplaced)
	}
	for _, n := range c.Nodes() {
		if !n.Used().Fits(n.Capacity) {
			t.Errorf("node %s overcommitted: %v > %v", n.ID, n.Used(), n.Capacity)
		}
	}
}

// TestAllocateNearOptimal validates the greedy against brute force: on small
// two-job instances, the marginal-gain allocation's total remaining time
// Σ Q_j/f_j must come close to the exhaustive optimum (greedy on concave
// diminishing-return surfaces is near-optimal; the paper relies on this).
func TestAllocateNearOptimal(t *testing.T) {
	names := []string{"resnet-50", "rnn-lstm", "inception-bn"}
	worst := 1.0
	for trial := 0; trial < 12; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		jobs := []*JobInfo{
			jobFromModel(0, names[r.Intn(len(names))], speedfit.Mode(r.Intn(2)),
				float64(1000+r.Intn(100000))),
			jobFromModel(1, names[r.Intn(len(names))], speedfit.Mode(r.Intn(2)),
				float64(1000+r.Intn(100000))),
		}
		const slots = 10 // tasks of 5 CPU each
		capacity := capFor(slots)

		total := func(a0, a1 Allocation) float64 {
			sum := 0.0
			for i, a := range []Allocation{a0, a1} {
				f := jobs[i].Speed(a.PS, a.Workers)
				if f <= 0 {
					return math.Inf(1)
				}
				sum += jobs[i].RemainingWork / f
			}
			return sum
		}

		// Brute force over all feasible splits.
		best := math.Inf(1)
		for p0 := 1; p0 <= slots; p0++ {
			for w0 := 1; w0 <= slots; w0++ {
				for p1 := 1; p1 <= slots; p1++ {
					for w1 := 1; w1 <= slots; w1++ {
						if p0+w0+p1+w1 > slots {
							continue
						}
						if v := total(Allocation{p0, w0}, Allocation{p1, w1}); v < best {
							best = v
						}
					}
				}
			}
		}

		alloc := Allocate(jobs, capacity)
		got := total(alloc[0], alloc[1])
		if math.IsInf(got, 1) {
			t.Fatalf("trial %d: greedy produced non-progressing allocation %+v", trial, alloc)
		}
		if ratio := got / best; ratio > worst {
			worst = ratio
		}
	}
	t.Logf("worst greedy/optimal ratio over 12 random instances: %.3f", worst)
	if worst > 1.15 {
		t.Errorf("greedy within %.1f%% of optimal, want ≤ 15%%", (worst-1)*100)
	}
}

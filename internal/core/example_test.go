package core_test

import (
	"fmt"

	"optimus/internal/cluster"
	"optimus/internal/core"
)

// ExampleAllocate shows the §4.1 marginal-gain allocation for two jobs with
// different amounts of remaining work: the allocator seeds both with one
// PS + one worker, then pours the rest of the capacity into whichever job's
// completion time shrinks the most per unit of dominant resource.
func ExampleAllocate() {
	speed := func(p, w int) float64 { // a simple diminishing-returns surface
		if p < 1 || w < 1 {
			return 0
		}
		return float64(w) / (1 + 0.5*float64(w)/float64(p) + 0.1*float64(w))
	}
	jobs := []*core.JobInfo{
		{ID: 0, RemainingWork: 10000, Speed: speed,
			WorkerRes: cluster.Resources{cluster.CPU: 4},
			PSRes:     cluster.Resources{cluster.CPU: 2}},
		{ID: 1, RemainingWork: 100, Speed: speed,
			WorkerRes: cluster.Resources{cluster.CPU: 4},
			PSRes:     cluster.Resources{cluster.CPU: 2}},
	}
	alloc := core.Allocate(jobs, cluster.Resources{cluster.CPU: 60})
	fmt.Printf("long job:  %d ps, %d workers\n", alloc[0].PS, alloc[0].Workers)
	fmt.Printf("short job: %d ps, %d workers\n", alloc[1].PS, alloc[1].Workers)
	// Output:
	// long job:  9 ps, 9 workers
	// short job: 1 ps, 1 workers
}

// ExamplePlace shows the §4.2 Theorem-1 placement: the job lands on the
// fewest servers that fit it, with PS and workers spread evenly.
func ExamplePlace() {
	c := cluster.Uniform(4, cluster.Resources{cluster.CPU: 16, cluster.Memory: 64})
	placements, unplaced := core.Place([]core.PlacementRequest{{
		JobID:     7,
		Alloc:     core.Allocation{PS: 2, Workers: 4},
		WorkerRes: cluster.Resources{cluster.CPU: 5, cluster.Memory: 10},
		PSRes:     cluster.Resources{cluster.CPU: 3, cluster.Memory: 8},
	}}, c)
	pl := placements[7]
	fmt.Printf("unplaced: %d, servers used: %d\n", len(unplaced), pl.Servers())
	for i, node := range pl.NodeIDs {
		fmt.Printf("%s: %d ps, %d workers\n", node, pl.PSOnNode[i], pl.WorkersOnNode[i])
	}
	// Output:
	// unplaced: 0, servers used: 2
	// node-0: 1 ps, 2 workers
	// node-1: 1 ps, 2 workers
}

package core

// This file preserves the pre-incremental Allocate and Place implementations
// verbatim (modulo ref* renames) as an executable specification. The
// property tests in incremental_test.go drive both versions over seeded
// random workloads and require identical outputs, so any behavioural drift
// in the optimized kernels fails loudly rather than silently skewing
// exhibit tables.

import (
	"container/heap"
	"math"
	"sort"

	"optimus/internal/cluster"
)

type refCandidate struct {
	job   *JobInfo
	kind  gainKind
	gain  float64
	alloc Allocation
}

type refGainHeap []refCandidate

func (h refGainHeap) Len() int            { return len(h) }
func (h refGainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h refGainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refGainHeap) Push(x interface{}) { *h = append(*h, x.(refCandidate)) }
func (h *refGainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func refBestGain(j *JobInfo, a Allocation, capacity cluster.Resources) (gainKind, float64) {
	base := remainingTime(j, a.PS, a.Workers)

	gw := math.Inf(-1)
	if j.MaxWorkers == 0 || a.Workers < j.MaxWorkers {
		tw := remainingTime(j, a.PS, a.Workers+1)
		gw = normalizedGain(base, tw, j.WorkerRes, capacity)
	}
	gp := math.Inf(-1)
	if j.MaxPS == 0 || a.PS < j.MaxPS {
		tp := remainingTime(j, a.PS+1, a.Workers)
		gp = normalizedGain(base, tp, j.PSRes, capacity)
	}

	prio := j.Priority
	if prio == 0 {
		prio = 1
	}
	if gw >= gp {
		return addWorker, gw * prio
	}
	return addPS, gp * prio
}

func refOtherGain(j *JobInfo, a Allocation, capacity cluster.Resources, tried gainKind) (gainKind, float64) {
	base := remainingTime(j, a.PS, a.Workers)
	prio := j.Priority
	if prio == 0 {
		prio = 1
	}
	if tried == addWorker {
		if j.MaxPS != 0 && a.PS >= j.MaxPS {
			return addPS, math.Inf(-1)
		}
		tp := remainingTime(j, a.PS+1, a.Workers)
		return addPS, normalizedGain(base, tp, j.PSRes, capacity) * prio
	}
	if j.MaxWorkers != 0 && a.Workers >= j.MaxWorkers {
		return addWorker, math.Inf(-1)
	}
	tw := remainingTime(j, a.PS, a.Workers+1)
	return addWorker, normalizedGain(base, tw, j.WorkerRes, capacity) * prio
}

func refAllocate(jobs []*JobInfo, capacity cluster.Resources) map[int]Allocation {
	out := make(map[int]Allocation, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	remaining := capacity

	ordered := make([]*JobInfo, len(jobs))
	copy(ordered, jobs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	var active []*JobInfo
	for _, j := range ordered {
		seed := j.WorkerRes.Add(j.PSRes)
		if !seed.Fits(remaining) {
			out[j.ID] = Allocation{}
			continue
		}
		remaining = remaining.Sub(seed)
		out[j.ID] = Allocation{PS: 1, Workers: 1}
		active = append(active, j)
	}

	h := make(refGainHeap, 0, len(active))
	for _, j := range active {
		kind, gain := refBestGain(j, out[j.ID], capacity)
		if gain > 0 {
			h = append(h, refCandidate{job: j, kind: kind, gain: gain, alloc: out[j.ID]})
		}
	}
	heap.Init(&h)

	for h.Len() > 0 {
		c := heap.Pop(&h).(refCandidate)
		cur := out[c.job.ID]
		if c.alloc != cur {
			kind, gain := refBestGain(c.job, cur, capacity)
			if gain > 0 {
				heap.Push(&h, refCandidate{job: c.job, kind: kind, gain: gain, alloc: cur})
			}
			continue
		}
		var req cluster.Resources
		if c.kind == addWorker {
			req = c.job.WorkerRes
		} else {
			req = c.job.PSRes
		}
		if !req.Fits(remaining) {
			if alt, gain := refOtherGain(c.job, cur, capacity, c.kind); gain > 0 {
				var altReq cluster.Resources
				if alt == addWorker {
					altReq = c.job.WorkerRes
				} else {
					altReq = c.job.PSRes
				}
				if altReq.Fits(remaining) {
					heap.Push(&h, refCandidate{job: c.job, kind: alt, gain: gain, alloc: cur})
				}
			}
			continue
		}
		remaining = remaining.Sub(req)
		if c.kind == addWorker {
			cur.Workers++
		} else {
			cur.PS++
		}
		out[c.job.ID] = cur
		if kind, gain := refBestGain(c.job, cur, capacity); gain > 0 {
			heap.Push(&h, refCandidate{job: c.job, kind: kind, gain: gain, alloc: cur})
		}
	}
	return out
}

func refPlace(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	placements := make(map[int]Placement, len(reqs))
	var unplaced []int

	ordered := make([]PlacementRequest, len(reqs))
	copy(ordered, reqs)
	capacity := c.Capacity()
	sort.SliceStable(ordered, func(i, j int) bool {
		di, _ := ordered[i].demand().DominantShare(capacity)
		dj, _ := ordered[j].demand().DominantShare(capacity)
		if di != dj {
			return di < dj
		}
		return ordered[i].JobID < ordered[j].JobID
	})

	for _, req := range ordered {
		if req.Alloc.PS <= 0 || req.Alloc.Workers <= 0 {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		nodes := refTopAvailable(c, req.Alloc.PS+req.Alloc.Workers+16)
		pl, ok := refPlaceOne(req, nodes)
		if !ok {
			pl, ok = refPlaceOne(req, c.SortedByAvailable(cluster.CPU))
		}
		if !ok {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		commitPlacement(req, pl, c)
		placements[req.JobID] = pl
	}
	return placements, unplaced
}

func refTopAvailable(c *cluster.Cluster, k int) []*cluster.Node {
	all := c.Nodes()
	if k >= len(all) {
		return c.SortedByAvailable(cluster.CPU)
	}
	less := func(a, b *cluster.Node) bool {
		aa, ab := a.Available()[cluster.CPU], b.Available()[cluster.CPU]
		if aa != ab {
			return aa > ab
		}
		return a.ID < b.ID
	}
	top := make([]*cluster.Node, 0, k)
	for _, n := range all {
		if len(top) < k {
			top = append(top, n)
			for i := len(top) - 1; i > 0 && less(top[i], top[i-1]); i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
			continue
		}
		if !less(n, top[k-1]) {
			continue
		}
		top[k-1] = n
		for i := k - 1; i > 0 && less(top[i], top[i-1]); i-- {
			top[i], top[i-1] = top[i-1], top[i]
		}
	}
	return top
}

func refPlaceOne(req PlacementRequest, nodes []*cluster.Node) (Placement, bool) {
	p, w := req.Alloc.PS, req.Alloc.Workers
	maxK := p + w + 16
	if maxK > len(nodes) {
		maxK = len(nodes)
	}
	for k := 1; k <= maxK; k++ {
		pl, ok := refTryEvenSplit(req, nodes[:k], p, w)
		if ok {
			return pl, true
		}
	}
	return refGreedyBalanced(req, nodes, p, w)
}

func refGreedyBalanced(req PlacementRequest, nodes []*cluster.Node, p, w int) (Placement, bool) {
	k := len(nodes)
	psOn := make([]int, k)
	wOn := make([]int, k)
	spare := make([]cluster.Resources, k)
	for i, n := range nodes {
		spare[i] = n.Available()
	}
	assign := func(res cluster.Resources, counts []int) bool {
		best := -1
		for i := range nodes {
			if !res.Fits(spare[i]) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			ci, cb := psOn[i]+wOn[i], psOn[best]+wOn[best]
			if ci < cb || (ci == cb && spare[i][cluster.CPU] > spare[best][cluster.CPU]) {
				best = i
			}
		}
		if best < 0 {
			return false
		}
		spare[best] = spare[best].Sub(res)
		counts[best]++
		return true
	}
	for t := 0; t < w; t++ {
		if !assign(req.WorkerRes, wOn) {
			return Placement{}, false
		}
	}
	for t := 0; t < p; t++ {
		if !assign(req.PSRes, psOn) {
			return Placement{}, false
		}
	}
	var pl Placement
	for i, n := range nodes {
		if psOn[i] == 0 && wOn[i] == 0 {
			continue
		}
		pl.NodeIDs = append(pl.NodeIDs, n.ID)
		pl.PSOnNode = append(pl.PSOnNode, psOn[i])
		pl.WorkersOnNode = append(pl.WorkersOnNode, wOn[i])
	}
	return pl, true
}

func refTryEvenSplit(req PlacementRequest, nodes []*cluster.Node, p, w int) (Placement, bool) {
	k := len(nodes)
	pl := Placement{
		NodeIDs:       make([]string, k),
		PSOnNode:      make([]int, k),
		WorkersOnNode: make([]int, k),
	}
	for i, n := range nodes {
		pl.NodeIDs[i] = n.ID
		pl.PSOnNode[i] = p / k
		if i < p%k {
			pl.PSOnNode[i]++
		}
		pl.WorkersOnNode[i] = w / k
		if i < w%k {
			pl.WorkersOnNode[i]++
		}
	}
	for i, n := range nodes {
		need := req.PSRes.Scale(float64(pl.PSOnNode[i])).
			Add(req.WorkerRes.Scale(float64(pl.WorkersOnNode[i])))
		if !need.Fits(n.Available()) {
			return Placement{}, false
		}
	}
	return pl, true
}

// Package core implements the primary contribution of the Optimus paper:
// the dynamic scheduling algorithm of §4, consisting of marginal-gain-based
// resource allocation (§4.1) and the Theorem-1 task placement scheme (§4.2).
// It is deliberately independent of the simulator and of the real PS
// framework — both feed it JobInfo views and consume its decisions.
package core

import (
	"math"
	"sort"

	"optimus/internal/cluster"
	"optimus/internal/obs"
)

// JobInfo is the scheduler's view of one active job in a scheduling
// interval: how much work remains (from the §3.1 convergence estimator) and
// how fast the job would run under any (p, w) (from the §3.2 speed model).
type JobInfo struct {
	ID int
	// RemainingWork is Q_j: outstanding training steps until convergence.
	RemainingWork float64
	// Speed is the fitted f(p, w) in steps/second. It must be safe to call
	// with any non-negative arguments and return 0 when progress is
	// impossible.
	Speed func(p, w int) float64
	// WorkerRes / PSRes are the per-task resource profiles (N_j and O_j).
	WorkerRes, PSRes cluster.Resources
	// Priority scales the job's marginal gain; §4.1 suggests 0.95 for jobs
	// in their beginning state (large prediction errors). Zero means 1.0.
	Priority float64
	// MaxWorkers / MaxPS cap the allocation (0 = no cap). Synchronous jobs
	// cap workers at the global batch size.
	MaxWorkers, MaxPS int
	// SpeedGen is the change-tracking stamp of the Speed surface, used only
	// by the incremental AllocSession (the kernel itself ignores it). Equal
	// non-zero stamps across intervals promise that Speed is the identical
	// pure function both times; zero means "unknown", which the session
	// treats as changed every interval. Callers wire it to their speed
	// model's generation counter (see speedfit.Estimator.Generation).
	SpeedGen uint64
}

// Allocation is the number of parameter servers and workers granted to a
// job. The JSON tags fix the wire shape used by the optimusd API and its
// state snapshots.
type Allocation struct {
	PS      int `json:"ps"`
	Workers int `json:"workers"`
}

// Tasks returns the total number of tasks in the allocation.
func (a Allocation) Tasks() int { return a.PS + a.Workers }

// MemoizeSpeed wraps a speed function with a lookup table keyed on (p, w).
// The greedy allocator evaluates each job's Speed O(tasks granted) times and
// almost always at arguments it has already visited — the base allocation is
// re-probed on every heap pop — while the underlying closures (fitted models
// over placement physics, or the simulator's ground-truth surfaces) are far
// more expensive than a map hit. Callers with expensive speed functions wrap
// once per scheduling interval (see sim.schedulerView) rather than inside
// Allocate itself, so cheap closures pay no map overhead. Speed functions
// must be pure for the lifetime of the wrapper for the memo to be exact.
func MemoizeSpeed(f func(p, w int) float64) func(p, w int) float64 {
	cache := make(map[[2]int]float64)
	return func(p, w int) float64 {
		key := [2]int{p, w}
		if v, ok := cache[key]; ok {
			return v
		}
		v := f(p, w)
		cache[key] = v
		return v
	}
}

// remainingTime returns Q/f(p,w), with +Inf when the job cannot progress.
func remainingTime(j *JobInfo, p, w int) float64 {
	f := j.Speed(p, w)
	if f <= 0 || math.IsNaN(f) {
		return math.Inf(1)
	}
	return j.RemainingWork / f
}

// gainKind distinguishes the two grant actions of §4.1.
type gainKind int

const (
	addWorker gainKind = iota
	addPS
)

// heapEntry is the best pending grant for one job run. Entries are always
// current: the heap holds at most one entry per job, and the only job whose
// gain changes between pops is the one just granted — its entry is replaced
// at the top in the same operation. `after` carries the remaining time the
// entry's action would leave the job with, so granting it never re-evaluates
// the (pure) speed model for a configuration already probed.
type heapEntry struct {
	gain  float64
	after float64
	kind  gainKind
	run   int32 // index into AllocState.runs
}

// gainHeap is a typed max-heap of heapEntry (gain descending, ties broken by
// run index for determinism). It replaces the previous container/heap
// implementation, whose interface{}-based Push/Pop boxed every candidate and
// allocated on each heap operation. Only three operations are needed:
// heapify after bulk append, replace-top, and pop-top — none allocate.
type gainHeap []heapEntry

func (h gainHeap) less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].run < h[j].run
}

func (h gainHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h gainHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// replaceTop overwrites the maximum element and restores heap order.
func (h gainHeap) replaceTop(e heapEntry) {
	h[0] = e
	h.siftDown(0)
}

// popTop removes the maximum element, returning the shortened heap.
func (h gainHeap) popTop() gainHeap {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return h
}

// bestGain computes the larger of the two marginal gains (9) for a job at
// its current allocation, normalized by the dominant-resource share of the
// task being added (the DRF-style normalization of §4.1, which makes gains
// comparable across heterogeneous task profiles).
func bestGain(j *JobInfo, a Allocation, capacity cluster.Resources) (gainKind, float64) {
	kind, gain, _ := bestGainFrom(j, a, remainingTime(j, a.PS, a.Workers), capacity)
	return kind, gain
}

// bestGainFrom is bestGain with the job's current remaining time supplied by
// the caller (the allocator carries it across grants instead of re-deriving
// it from the speed model). It additionally returns the remaining time the
// winning action would leave the job with.
func bestGainFrom(j *JobInfo, a Allocation, base float64, capacity cluster.Resources) (gainKind, float64, float64) {
	gw, tw := math.Inf(-1), math.Inf(1)
	if j.MaxWorkers == 0 || a.Workers < j.MaxWorkers {
		tw = remainingTime(j, a.PS, a.Workers+1)
		gw = normalizedGain(base, tw, j.WorkerRes, capacity)
	}
	gp, tp := math.Inf(-1), math.Inf(1)
	if j.MaxPS == 0 || a.PS < j.MaxPS {
		tp = remainingTime(j, a.PS+1, a.Workers)
		gp = normalizedGain(base, tp, j.PSRes, capacity)
	}

	prio := j.Priority
	if prio == 0 {
		prio = 1
	}
	if gw >= gp {
		return addWorker, gw * prio, tw
	}
	return addPS, gp * prio, tp
}

// normalizedGain is (t_before − t_after) / dominantShare(taskRes).
func normalizedGain(before, after float64, taskRes, capacity cluster.Resources) float64 {
	if math.IsInf(after, 1) {
		return math.Inf(-1) // adding the task still yields no progress
	}
	var diff float64
	if math.IsInf(before, 1) {
		// From stalled to progressing: infinitely valuable; use a huge
		// finite gain so ordering among such jobs still considers after.
		diff = 1e18 / (1 + after)
	} else {
		diff = before - after
	}
	share, _ := taskRes.DominantShare(capacity)
	if share <= 0 {
		share = 1e-12
	}
	return diff / share
}

// allocRun is the per-job working state of one Allocate invocation: the
// allocation granted so far and the remaining completion time it implies
// (kept current so gain evaluations never re-probe the base configuration).
type allocRun struct {
	job    *JobInfo
	alloc  Allocation
	remain float64
}

// AllocState owns the scratch memory of the §4.1 allocator so the scheduler
// can run Allocate every interval without re-allocating its job ordering,
// run table, gain heap, or result map. The zero value is ready to use. A
// state is not safe for concurrent use; each concurrent scheduling session
// (e.g. parallel simulator runs) needs its own.
//
// The map returned by Allocate is owned by the state and is overwritten by
// the next Allocate call; callers that retain allocations across intervals
// must copy it.
type AllocState struct {
	// Trace, when non-nil and enabled, receives one "alloc-kernel" span per
	// Allocate call. Audit, when non-nil and enabled, receives one
	// GrantEvent per grant — the §4.1 decision audit log. Both default to
	// nil; the disabled path performs no extra allocation (CI-guarded by
	// alloc_guard_test.go) and near-zero extra work.
	Trace *obs.Tracer
	Audit *obs.AuditLog

	// fitFailed reports whether the most recent Allocate call hit at least
	// one failed capacity check (a seed that did not fit, or a grant whose
	// task no longer fit the remaining capacity). When false, the run was
	// uncontended: every job reached its gain-saturation point independently,
	// which is the precondition for AllocSession's incremental fast path.
	fitFailed bool

	ordered []*JobInfo
	runs    []allocRun
	heap    gainHeap
	out     map[int]Allocation
}

// FitFailed reports whether the last Allocate run hit any failed capacity
// check. See the field comment; AllocSession uses this to decide whether
// per-job incremental recomputation is equivalent to a from-scratch run.
func (st *AllocState) FitFailed() bool { return st.fitFailed }

// NewAllocState returns an empty allocator state.
func NewAllocState() *AllocState { return &AllocState{} }

// Allocate runs the §4.1 marginal-gain algorithm: every active job first
// receives one worker and one parameter server (starvation avoidance), then
// single tasks are granted greedily to the job whose completion time shrinks
// the most per unit of dominant resource, until the cluster capacity C_r is
// exhausted or all marginal gains turn non-positive.
//
// Jobs whose initial (1,1) pair does not fit the remaining capacity receive
// an empty allocation — the caller pauses them until the next interval.
func (st *AllocState) Allocate(jobs []*JobInfo, capacity cluster.Resources) map[int]Allocation {
	sp := st.Trace.Begin("alloc-kernel")
	defer st.Trace.End(sp)
	st.fitFailed = false
	if st.out == nil {
		st.out = make(map[int]Allocation, len(jobs))
	} else {
		clear(st.out)
	}
	out := st.out
	if len(jobs) == 0 {
		return out
	}
	remaining := capacity

	// Phase 1: one worker + one PS per job, in deterministic job-ID order.
	st.ordered = append(st.ordered[:0], jobs...)
	ordered := st.ordered
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	runs := st.runs[:0]
	for _, j := range ordered {
		seed := j.WorkerRes.Add(j.PSRes)
		if !seed.Fits(remaining) {
			st.fitFailed = true
			out[j.ID] = Allocation{}
			continue
		}
		remaining = remaining.Sub(seed)
		runs = append(runs, allocRun{job: j, alloc: Allocation{PS: 1, Workers: 1}})
		if st.Audit.Enabled() {
			share, _ := seed.DominantShare(capacity)
			st.Audit.Grant(obs.GrantEvent{
				Job: j.ID, Kind: obs.GrantSeed,
				DominantShare: share, Priority: effectivePriority(j),
				PS: 1, Workers: 1,
			})
		}
	}
	st.runs = runs

	// Phase 2: greedy marginal-gain grants. One always-current heap entry per
	// job: a grant changes only that job's gain, so its entry is recomputed
	// and replaced at the top while every other entry stays valid.
	h := st.heap[:0]
	for ri := range runs {
		r := &runs[ri]
		r.remain = remainingTime(r.job, r.alloc.PS, r.alloc.Workers)
		kind, gain, after := bestGainFrom(r.job, r.alloc, r.remain, capacity)
		if gain > 0 {
			h = append(h, heapEntry{gain: gain, after: after, kind: kind, run: int32(ri)})
		}
	}
	st.heap = h
	h.init()

	for len(h) > 0 {
		e := h[0]
		r := &runs[e.run]
		var req cluster.Resources
		if e.kind == addWorker {
			req = r.job.WorkerRes
		} else {
			req = r.job.PSRes
		}
		if !req.Fits(remaining) {
			st.fitFailed = true
			// This particular task no longer fits. The job may still have a
			// fitting alternative action; try the other kind once.
			if alt, gain, after := otherGainFrom(r.job, r.alloc, r.remain, capacity, e.kind); gain > 0 {
				var altReq cluster.Resources
				if alt == addWorker {
					altReq = r.job.WorkerRes
				} else {
					altReq = r.job.PSRes
				}
				if altReq.Fits(remaining) {
					h.replaceTop(heapEntry{gain: gain, after: after, kind: alt, run: e.run})
					continue
				}
			}
			h = h.popTop()
			continue
		}
		remaining = remaining.Sub(req)
		if e.kind == addWorker {
			r.alloc.Workers++
		} else {
			r.alloc.PS++
		}
		r.remain = e.after
		if st.Audit.Enabled() {
			kind := obs.GrantWorker
			if e.kind == addPS {
				kind = obs.GrantPS
			}
			share, _ := req.DominantShare(capacity)
			st.Audit.Grant(obs.GrantEvent{
				Job: r.job.ID, Kind: kind, Gain: e.gain,
				DominantShare: share, Priority: effectivePriority(r.job),
				HeapDepth: len(h),
				PS:        r.alloc.PS, Workers: r.alloc.Workers,
			})
		}
		if kind, gain, after := bestGainFrom(r.job, r.alloc, r.remain, capacity); gain > 0 {
			h.replaceTop(heapEntry{gain: gain, after: after, kind: kind, run: e.run})
		} else {
			h = h.popTop()
		}
	}

	for ri := range runs {
		out[runs[ri].job.ID] = runs[ri].alloc
	}
	return out
}

// Allocate is the stateless convenience wrapper: each call runs on a fresh
// AllocState, so the returned map is caller-owned. Hot paths should hold an
// AllocState and call its method instead.
func Allocate(jobs []*JobInfo, capacity cluster.Resources) map[int]Allocation {
	var st AllocState
	return st.Allocate(jobs, capacity)
}

// effectivePriority resolves the zero-means-1.0 convention of
// JobInfo.Priority for audit reporting.
func effectivePriority(j *JobInfo) float64 {
	if j.Priority == 0 {
		return 1
	}
	return j.Priority
}

// otherGain computes the normalized gain of the action other than `tried`.
func otherGain(j *JobInfo, a Allocation, capacity cluster.Resources, tried gainKind) (gainKind, float64) {
	kind, gain, _ := otherGainFrom(j, a, remainingTime(j, a.PS, a.Workers), capacity, tried)
	return kind, gain
}

// otherGainFrom is otherGain with the job's current remaining time supplied
// by the caller; it additionally returns the remaining time the alternative
// action would leave the job with.
func otherGainFrom(j *JobInfo, a Allocation, base float64, capacity cluster.Resources, tried gainKind) (gainKind, float64, float64) {
	prio := j.Priority
	if prio == 0 {
		prio = 1
	}
	if tried == addWorker {
		if j.MaxPS != 0 && a.PS >= j.MaxPS {
			return addPS, math.Inf(-1), math.Inf(1)
		}
		tp := remainingTime(j, a.PS+1, a.Workers)
		return addPS, normalizedGain(base, tp, j.PSRes, capacity) * prio, tp
	}
	if j.MaxWorkers != 0 && a.Workers >= j.MaxWorkers {
		return addWorker, math.Inf(-1), math.Inf(1)
	}
	tw := remainingTime(j, a.PS, a.Workers+1)
	return addWorker, normalizedGain(base, tw, j.WorkerRes, capacity) * prio, tw
}

// Package core implements the primary contribution of the Optimus paper:
// the dynamic scheduling algorithm of §4, consisting of marginal-gain-based
// resource allocation (§4.1) and the Theorem-1 task placement scheme (§4.2).
// It is deliberately independent of the simulator and of the real PS
// framework — both feed it JobInfo views and consume its decisions.
package core

import (
	"container/heap"
	"math"
	"sort"

	"optimus/internal/cluster"
)

// JobInfo is the scheduler's view of one active job in a scheduling
// interval: how much work remains (from the §3.1 convergence estimator) and
// how fast the job would run under any (p, w) (from the §3.2 speed model).
type JobInfo struct {
	ID int
	// RemainingWork is Q_j: outstanding training steps until convergence.
	RemainingWork float64
	// Speed is the fitted f(p, w) in steps/second. It must be safe to call
	// with any non-negative arguments and return 0 when progress is
	// impossible.
	Speed func(p, w int) float64
	// WorkerRes / PSRes are the per-task resource profiles (N_j and O_j).
	WorkerRes, PSRes cluster.Resources
	// Priority scales the job's marginal gain; §4.1 suggests 0.95 for jobs
	// in their beginning state (large prediction errors). Zero means 1.0.
	Priority float64
	// MaxWorkers / MaxPS cap the allocation (0 = no cap). Synchronous jobs
	// cap workers at the global batch size.
	MaxWorkers, MaxPS int
}

// Allocation is the number of parameter servers and workers granted to a job.
type Allocation struct {
	PS      int
	Workers int
}

// Tasks returns the total number of tasks in the allocation.
func (a Allocation) Tasks() int { return a.PS + a.Workers }

// MemoizeSpeed wraps a speed function with a lookup table keyed on (p, w).
// The greedy allocator evaluates each job's Speed O(tasks granted) times and
// almost always at arguments it has already visited — the base allocation is
// re-probed on every heap pop — while the underlying closures (fitted models
// over placement physics, or the simulator's ground-truth surfaces) are far
// more expensive than a map hit. Callers with expensive speed functions wrap
// once per scheduling interval (see sim.schedulerView) rather than inside
// Allocate itself, so cheap closures pay no map overhead. Speed functions
// must be pure for the lifetime of the wrapper for the memo to be exact.
func MemoizeSpeed(f func(p, w int) float64) func(p, w int) float64 {
	cache := make(map[[2]int]float64)
	return func(p, w int) float64 {
		key := [2]int{p, w}
		if v, ok := cache[key]; ok {
			return v
		}
		v := f(p, w)
		cache[key] = v
		return v
	}
}

// remainingTime returns Q/f(p,w), with +Inf when the job cannot progress.
func remainingTime(j *JobInfo, p, w int) float64 {
	f := j.Speed(p, w)
	if f <= 0 || math.IsNaN(f) {
		return math.Inf(1)
	}
	return j.RemainingWork / f
}

// gainKind distinguishes the two grant actions of §4.1.
type gainKind int

const (
	addWorker gainKind = iota
	addPS
)

// candidate is a heap entry: the best pending grant for one job.
type candidate struct {
	job   *JobInfo
	kind  gainKind
	gain  float64
	alloc Allocation // allocation the gain was computed against (staleness check)
}

type gainHeap []candidate

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// bestGain computes the larger of the two marginal gains (9) for a job at
// its current allocation, normalized by the dominant-resource share of the
// task being added (the DRF-style normalization of §4.1, which makes gains
// comparable across heterogeneous task profiles).
func bestGain(j *JobInfo, a Allocation, capacity cluster.Resources) (gainKind, float64) {
	base := remainingTime(j, a.PS, a.Workers)

	gw := math.Inf(-1)
	if j.MaxWorkers == 0 || a.Workers < j.MaxWorkers {
		tw := remainingTime(j, a.PS, a.Workers+1)
		gw = normalizedGain(base, tw, j.WorkerRes, capacity)
	}
	gp := math.Inf(-1)
	if j.MaxPS == 0 || a.PS < j.MaxPS {
		tp := remainingTime(j, a.PS+1, a.Workers)
		gp = normalizedGain(base, tp, j.PSRes, capacity)
	}

	prio := j.Priority
	if prio == 0 {
		prio = 1
	}
	if gw >= gp {
		return addWorker, gw * prio
	}
	return addPS, gp * prio
}

// normalizedGain is (t_before − t_after) / dominantShare(taskRes).
func normalizedGain(before, after float64, taskRes, capacity cluster.Resources) float64 {
	if math.IsInf(after, 1) {
		return math.Inf(-1) // adding the task still yields no progress
	}
	var diff float64
	if math.IsInf(before, 1) {
		// From stalled to progressing: infinitely valuable; use a huge
		// finite gain so ordering among such jobs still considers after.
		diff = 1e18 / (1 + after)
	} else {
		diff = before - after
	}
	share, _ := taskRes.DominantShare(capacity)
	if share <= 0 {
		share = 1e-12
	}
	return diff / share
}

// Allocate runs the §4.1 marginal-gain algorithm: every active job first
// receives one worker and one parameter server (starvation avoidance), then
// single tasks are granted greedily to the job whose completion time shrinks
// the most per unit of dominant resource, until the cluster capacity C_r is
// exhausted or all marginal gains turn non-positive.
//
// Jobs whose initial (1,1) pair does not fit the remaining capacity receive
// an empty allocation — the caller pauses them until the next interval.
func Allocate(jobs []*JobInfo, capacity cluster.Resources) map[int]Allocation {
	out := make(map[int]Allocation, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	remaining := capacity

	// Phase 1: one worker + one PS per job, in deterministic job-ID order.
	ordered := make([]*JobInfo, len(jobs))
	copy(ordered, jobs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	var active []*JobInfo
	for _, j := range ordered {
		seed := j.WorkerRes.Add(j.PSRes)
		if !seed.Fits(remaining) {
			out[j.ID] = Allocation{}
			continue
		}
		remaining = remaining.Sub(seed)
		out[j.ID] = Allocation{PS: 1, Workers: 1}
		active = append(active, j)
	}

	// Phase 2: greedy marginal-gain grants via a lazy max-heap.
	h := make(gainHeap, 0, len(active))
	for _, j := range active {
		kind, gain := bestGain(j, out[j.ID], capacity)
		if gain > 0 {
			h = append(h, candidate{job: j, kind: kind, gain: gain, alloc: out[j.ID]})
		}
	}
	heap.Init(&h)

	for h.Len() > 0 {
		c := heap.Pop(&h).(candidate)
		cur := out[c.job.ID]
		if c.alloc != cur {
			// Stale entry (the job was granted since): recompute and requeue.
			kind, gain := bestGain(c.job, cur, capacity)
			if gain > 0 {
				heap.Push(&h, candidate{job: c.job, kind: kind, gain: gain, alloc: cur})
			}
			continue
		}
		var req cluster.Resources
		if c.kind == addWorker {
			req = c.job.WorkerRes
		} else {
			req = c.job.PSRes
		}
		if !req.Fits(remaining) {
			// This particular task no longer fits. The job may still have a
			// fitting alternative action; try the other kind once.
			if alt, gain := otherGain(c.job, cur, capacity, c.kind); gain > 0 {
				var altReq cluster.Resources
				if alt == addWorker {
					altReq = c.job.WorkerRes
				} else {
					altReq = c.job.PSRes
				}
				if altReq.Fits(remaining) {
					heap.Push(&h, candidate{job: c.job, kind: alt, gain: gain, alloc: cur})
				}
			}
			continue
		}
		remaining = remaining.Sub(req)
		if c.kind == addWorker {
			cur.Workers++
		} else {
			cur.PS++
		}
		out[c.job.ID] = cur
		if kind, gain := bestGain(c.job, cur, capacity); gain > 0 {
			heap.Push(&h, candidate{job: c.job, kind: kind, gain: gain, alloc: cur})
		}
	}
	return out
}

// otherGain computes the normalized gain of the action other than `tried`.
func otherGain(j *JobInfo, a Allocation, capacity cluster.Resources, tried gainKind) (gainKind, float64) {
	base := remainingTime(j, a.PS, a.Workers)
	prio := j.Priority
	if prio == 0 {
		prio = 1
	}
	if tried == addWorker {
		if j.MaxPS != 0 && a.PS >= j.MaxPS {
			return addPS, math.Inf(-1)
		}
		tp := remainingTime(j, a.PS+1, a.Workers)
		return addPS, normalizedGain(base, tp, j.PSRes, capacity) * prio
	}
	if j.MaxWorkers != 0 && a.Workers >= j.MaxWorkers {
		return addWorker, math.Inf(-1)
	}
	tw := remainingTime(j, a.PS, a.Workers+1)
	return addWorker, normalizedGain(base, tw, j.WorkerRes, capacity) * prio
}

package core

import (
	"math/rand"
	"reflect"
	"testing"

	"optimus/internal/cluster"
)

// randJobs builds n jobs with random smooth speed surfaces, resource
// profiles, caps, and priorities. Random float64 parameters make exact gain
// ties (where the old and new heaps could legitimately order grants
// differently) improbable, so output equality is a meaningful oracle.
func randJobs(r *rand.Rand, n int) []*JobInfo {
	jobs := make([]*JobInfo, n)
	for i := range jobs {
		a := 0.5 + r.Float64()
		b := 0.1 + r.Float64()
		c := 0.05 + 0.2*r.Float64()
		j := &JobInfo{
			ID:            i,
			RemainingWork: 1e4 * (0.5 + r.Float64()),
			Speed: func(p, w int) float64 {
				if p <= 0 || w <= 0 {
					return 0
				}
				pf, wf := float64(p), float64(w)
				return a * wf / (1 + b*wf/pf + c*wf)
			},
			WorkerRes: cluster.Resources{
				cluster.CPU:    2 + 2*r.Float64(),
				cluster.Memory: 4 + 4*r.Float64(),
			},
			PSRes: cluster.Resources{
				cluster.CPU:    1 + r.Float64(),
				cluster.Memory: 2 + 2*r.Float64(),
			},
			MaxWorkers: r.Intn(3) * 8, // 0 (uncapped) two thirds of the time
			MaxPS:      r.Intn(3) * 4,
		}
		if r.Intn(4) == 0 {
			j.Priority = 0.95
		}
		jobs[i] = j
	}
	return jobs
}

// TestAllocateMatchesReference drives the incremental AllocState allocator
// and the preserved pre-refactor implementation over seeded random workloads
// and requires identical allocations. A single AllocState is reused across
// all cases, so stale-scratch bugs surface as cross-seed contamination.
func TestAllocateMatchesReference(t *testing.T) {
	st := NewAllocState()
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		jobs := randJobs(r, n)
		// Capacity between starving and abundant, varying per seed.
		scale := 2 + r.Float64()*38
		capacity := cluster.Resources{
			cluster.CPU:    float64(n) * scale,
			cluster.Memory: float64(n) * scale * 3,
		}

		want := refAllocate(jobs, capacity)
		got := st.Allocate(jobs, capacity)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: allocations diverge\nref: %v\nnew: %v", seed, want, got)
		}
	}
}

// clusterSpec captures node capacities so a random cluster can be built
// twice — the reference and incremental placers each need their own copy to
// commit allocations into.
func randClusterSpec(r *rand.Rand) []cluster.Resources {
	n := 3 + r.Intn(30)
	specs := make([]cluster.Resources, n)
	for i := range specs {
		specs[i] = cluster.Resources{
			cluster.CPU:    8 + float64(r.Intn(5))*4,
			cluster.Memory: 32 + float64(r.Intn(4))*16,
		}
	}
	return specs
}

func buildCluster(specs []cluster.Resources) *cluster.Cluster {
	c := cluster.New()
	for i, cap := range specs {
		if err := c.AddNode(cluster.NewNode(nodeID(i), cap)); err != nil {
			panic(err)
		}
	}
	return c
}

func nodeID(i int) string {
	// Zero-padded so lexicographic ID order is stable regardless of count.
	const digits = "0123456789"
	return "n" + string([]byte{digits[i/100%10], digits[i/10%10], digits[i%10]})
}

// TestPlaceMatchesReference drives PlaceState.Place and the preserved
// pre-refactor Place over seeded random request batches on identical
// clusters, requiring identical placements, unplaced sets, and final
// per-node usage. One PlaceState is reused across every seed.
func TestPlaceMatchesReference(t *testing.T) {
	st := NewPlaceState()
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		specs := randClusterSpec(r)
		cRef := buildCluster(specs)
		cNew := buildCluster(specs)

		nreq := 1 + r.Intn(12)
		reqs := make([]PlacementRequest, nreq)
		for i := range reqs {
			reqs[i] = PlacementRequest{
				JobID: i,
				Alloc: Allocation{PS: r.Intn(6), Workers: r.Intn(10)},
				WorkerRes: cluster.Resources{
					cluster.CPU:    1 + 3*r.Float64(),
					cluster.Memory: 2 + 6*r.Float64(),
				},
				PSRes: cluster.Resources{
					cluster.CPU:    1 + 2*r.Float64(),
					cluster.Memory: 1 + 4*r.Float64(),
				},
			}
		}

		wantPl, wantUn := refPlace(reqs, cRef)
		gotPl, gotUn := st.Place(reqs, cNew)

		if !reflect.DeepEqual(wantPl, gotPl) {
			t.Fatalf("seed %d: placements diverge\nref: %v\nnew: %v", seed, wantPl, gotPl)
		}
		if !reflect.DeepEqual(wantUn, gotUn) {
			t.Fatalf("seed %d: unplaced diverge\nref: %v\nnew: %v", seed, wantUn, gotUn)
		}
		for i, n := range cRef.Nodes() {
			if n.Used() != cNew.Nodes()[i].Used() {
				t.Fatalf("seed %d: node %s usage diverges: ref %v, new %v",
					seed, n.ID, n.Used(), cNew.Nodes()[i].Used())
			}
		}
	}
}

// TestGainHeapOpsAllocationFree is the regression guard for the satellite
// fix: the old container/heap-based gainHeap boxed every candidate through
// interface{}, allocating on each Push/Pop. The typed heap's operations must
// not allocate at all.
func TestGainHeapOpsAllocationFree(t *testing.T) {
	const n = 64
	buf := make(gainHeap, 0, n)
	r := rand.New(rand.NewSource(7))
	gains := make([]float64, n)
	for i := range gains {
		gains[i] = r.Float64()
	}
	allocs := testing.AllocsPerRun(200, func() {
		h := buf[:0]
		for i := 0; i < n; i++ {
			h = append(h, heapEntry{gain: gains[i], run: int32(i)})
		}
		h.init()
		for i := 0; i < n/2; i++ {
			h.replaceTop(heapEntry{gain: gains[i] / 2, run: int32(i)})
		}
		for len(h) > 0 {
			h = h.popTop()
		}
	})
	if allocs != 0 {
		t.Errorf("heap operations allocated %.1f times per run, want 0", allocs)
	}
}

// TestGainHeapOrdering cross-checks the manual sift routines against a
// straightforward sort: popping everything must yield gains in descending
// order with run-index ties ascending.
func TestGainHeapOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(50)
		h := make(gainHeap, 0, n)
		for i := 0; i < n; i++ {
			g := float64(r.Intn(10)) // coarse values force ties
			h = append(h, heapEntry{gain: g, run: int32(i)})
		}
		h.init()
		var prev *heapEntry
		for len(h) > 0 {
			e := h[0]
			if prev != nil {
				if e.gain > prev.gain {
					t.Fatalf("trial %d: gain out of order: %v after %v", trial, e, *prev)
				}
				if e.gain == prev.gain && e.run < prev.run {
					t.Fatalf("trial %d: tie-break out of order: run %d after %d",
						trial, e.run, prev.run)
				}
			}
			cp := e
			prev = &cp
			h = h.popTop()
		}
	}
}

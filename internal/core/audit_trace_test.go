package core

import (
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/obs"
	"optimus/internal/speedfit"
)

// TestAllocateAuditTrail checks the §4.1 decision audit log: every job gets
// one seed grant, every extra task one worker/ps grant whose running totals
// reconstruct the final allocation exactly.
func TestAllocateAuditTrail(t *testing.T) {
	jobs := []*JobInfo{
		jobFromModel(0, "resnet-50", speedfit.Sync, 1e6),
		jobFromModel(1, "cnn-rand", speedfit.Async, 1e5),
	}
	st := NewAllocState()
	st.Audit = obs.NewAuditLog(256)
	st.Trace = obs.NewTracer(16)
	alloc := st.Allocate(jobs, capFor(30))

	for _, j := range jobs {
		evs := st.Audit.Grants(j.ID)
		if len(evs) == 0 {
			t.Fatalf("job %d: no grant events", j.ID)
		}
		if evs[0].Kind != obs.GrantSeed {
			t.Errorf("job %d: first event %q, want seed", j.ID, evs[0].Kind)
		}
		last := evs[len(evs)-1]
		if got := alloc[j.ID]; last.PS != got.PS || last.Workers != got.Workers {
			t.Errorf("job %d: audit ends at %d/%d, allocation is %+v",
				j.ID, last.PS, last.Workers, got)
		}
		for i, ev := range evs {
			if ev.DominantShare <= 0 {
				t.Errorf("job %d event %d: dominant share %g", j.ID, i, ev.DominantShare)
			}
			if ev.Priority != 1 {
				t.Errorf("job %d event %d: priority %g, want 1", j.ID, i, ev.Priority)
			}
			if i == 0 {
				continue
			}
			if ev.Kind != obs.GrantWorker && ev.Kind != obs.GrantPS {
				t.Errorf("job %d event %d: kind %q", j.ID, i, ev.Kind)
			}
			if ev.Gain <= 0 {
				t.Errorf("job %d event %d: non-positive gain %g granted", j.ID, i, ev.Gain)
			}
			grew := ev.PS == evs[i-1].PS && ev.Workers == evs[i-1].Workers+1 ||
				ev.Workers == evs[i-1].Workers && ev.PS == evs[i-1].PS+1
			if !grew {
				t.Errorf("job %d event %d: totals %d/%d do not extend %d/%d by one task",
					j.ID, i, ev.PS, ev.Workers, evs[i-1].PS, evs[i-1].Workers)
			}
		}
	}

	spans := st.Trace.Spans()
	if len(spans) != 1 || spans[0].Name != "alloc-kernel" {
		t.Errorf("spans = %+v, want one alloc-kernel", spans)
	}
}

// TestPlaceAuditTrail checks the §4.2 placement audit: one PlaceEvent per
// committed job carrying server count, spread, and the Theorem-1 flag.
func TestPlaceAuditTrail(t *testing.T) {
	c := cluster.Uniform(4, capFor(3))
	st := NewPlaceState()
	st.Audit = obs.NewAuditLog(64)
	st.Trace = obs.NewTracer(16)
	pls, unplaced := st.Place([]PlacementRequest{placeReq(0, 2, 4)}, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	evs := st.Audit.Places(0)
	if len(evs) != 1 {
		t.Fatalf("place events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.PS != 2 || ev.Workers != 4 {
		t.Errorf("event totals %d/%d, want 2/4", ev.PS, ev.Workers)
	}
	if ev.Servers != pls[0].Servers() {
		t.Errorf("event servers %d, placement used %d", ev.Servers, pls[0].Servers())
	}
	if !ev.Even {
		t.Error("even split not flagged")
	}
	if ev.Spread != 0 {
		t.Errorf("spread %d on a perfectly even split", ev.Spread)
	}
	if len(ev.Nodes) != len(pls[0].NodeIDs) {
		t.Errorf("event nodes %v vs placement %v", ev.Nodes, pls[0].NodeIDs)
	}
	if sp := st.Trace.Spans(); len(sp) != 1 || sp[0].Name != "place-kernel" {
		t.Errorf("spans = %+v, want one place-kernel", sp)
	}
}

// TestPlacementSpread pins the audit evenness metric.
func TestPlacementSpread(t *testing.T) {
	if got := placementSpread(Placement{}); got != 0 {
		t.Errorf("empty spread = %d", got)
	}
	pl := Placement{
		NodeIDs:       []string{"a", "b", "c"},
		PSOnNode:      []int{1, 0, 0},
		WorkersOnNode: []int{3, 2, 1},
	}
	if got := placementSpread(pl); got != 3 {
		t.Errorf("spread = %d, want 3 (max 4 − min 1)", got)
	}
}

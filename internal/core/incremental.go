// Incremental rescheduling: delta-driven session wrappers around the §4.1
// allocator and §4.2 placer.
//
// In steady state almost nothing changes between two scheduling intervals —
// a refitted speed model here, an arrival or completion there — yet the
// kernels recompute every job from scratch each tick. The sessions in this
// file track exactly what changed (the dirty set) and reuse everything else,
// with three tiers per kernel:
//
//   - clean:       identical inputs, identical base state → return the prior
//     output untouched (a few O(n) field compares, no kernel work).
//   - incremental: only a few jobs dirty → recompute just those and patch
//     the persistent output in place.
//   - full:        anything the cheap reasoning cannot cover → run the
//     from-scratch kernel and re-prime the caches from its result.
//
// The overriding invariant, guarded by reference_test.go and the churn
// fuzz/property oracle in incremental_session_test.go, is byte-identical
// output: a session must return exactly what the from-scratch kernel would
// return for the same inputs, at every interval, including float state on
// the cluster nodes. Each fast tier is therefore taken only when a
// conservative argument shows the from-scratch run would reproduce the
// cached result:
//
// Allocation. When a from-scratch §4.1 run never fails a capacity check
// (AllocState.FitFailed() == false), grants interact only through the shared
// `remaining` pool and every fit succeeds, so the greedy interleaving is
// irrelevant: each job ends at its independent saturation point — grant the
// best-gain action while the marginal gain stays positive. The session
// caches that saturation per job and, on a sparse-dirty interval, recomputes
// it only for dirty jobs, then re-validates that the summed demand still
// fits capacity with a conservative margin (1e-6 relative) that dwarfs any
// float-summation-order difference from the sequential run. If the margin
// check fails, the previous run was contended, or observability wants the
// full decision stream, the session falls back to the real kernel.
//
// Placement. The placer's output is a pure function of the sorted request
// sequence and the cluster's pre-placement state. If both are unchanged, the
// committed cluster state from last interval is already the correct result —
// the session verifies per-node usage against its post-commit snapshot and
// returns the cached placements without resetting or re-placing anything
// (zero migrations). When a suffix of the sorted order changed, the session
// resets the cluster, replays the unchanged prefix commits task-by-task in
// the original arithmetic order (byte-identical float state), and runs the
// real search only for the suffix, reporting how many committed tasks had to
// move (the §5 checkpoint/restart migration cost).
package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"optimus/internal/cluster"
)

// IncrStats are the cumulative incremental-scheduling counters of one
// session pair, exported through optimusd's /v1/cluster endpoint and the
// Prometheus families in internal/metrics.
type IncrStats struct {
	// Interval counts per allocator tier.
	AllocClean       uint64 `json:"alloc_clean"`
	AllocIncremental uint64 `json:"alloc_incremental"`
	AllocFull        uint64 `json:"alloc_full"`
	// DirtyJobs is the cumulative dirty-set size over incremental intervals;
	// LastDirty is the most recent interval's dirty-set size.
	DirtyJobs uint64 `json:"dirty_jobs_total"`
	LastDirty int    `json:"last_dirty"`
	// Interval counts per placer tier.
	PlaceClean   uint64 `json:"place_clean"`
	PlacePartial uint64 `json:"place_partial"`
	PlaceFull    uint64 `json:"place_full"`
	// TasksMigrated is the cumulative number of previously-running tasks
	// whose node assignment changed; LastMigrated is the last interval's.
	TasksMigrated uint64 `json:"tasks_migrated_total"`
	LastMigrated  int    `json:"last_migrated"`
}

// Incremental bundles an allocation session and a placement session — the
// delta-driven replacement for a bare AllocState/PlaceState pair.
type Incremental struct {
	Alloc *AllocSession
	Place *PlaceSession
}

// NewIncremental returns a ready session pair.
func NewIncremental() *Incremental {
	return &Incremental{Alloc: NewAllocSession(), Place: NewPlaceSession()}
}

// Stats merges both sessions' counters.
func (in *Incremental) Stats() IncrStats {
	st := in.Alloc.stats
	st.PlaceClean = in.Place.clean
	st.PlacePartial = in.Place.partial
	st.PlaceFull = in.Place.full
	st.TasksMigrated = in.Place.migratedTotal
	st.LastMigrated = in.Place.lastMigrated
	return st
}

// ---------------------------------------------------------------------------
// Allocation session
// ---------------------------------------------------------------------------

// allocMemo is one job's cached state: the input fields the dirty scan
// compares, the saturation allocation of the last valid run, and the
// resources it consumes.
type allocMemo struct {
	remainingWork float64
	priority      float64
	workerRes     cluster.Resources
	psRes         cluster.Resources
	maxWorkers    int
	maxPS         int
	speedGen      uint64
	force         bool // MarkDirty was called; cleared on recompute

	alloc    Allocation
	consumed cluster.Resources
	seen     uint64 // round stamp, for membership diffing
}

// AllocSession wraps an AllocState with the dirty-set layer described in the
// package comment. The map returned by Allocate is owned by the session and
// patched in place across calls; callers must treat it as read-only and copy
// anything they retain or modify.
type AllocSession struct {
	// St is the underlying from-scratch kernel, used for the full tier.
	// Attach Trace/Audit here; note that enabled observability forces the
	// full tier so the decision stream stays complete.
	St *AllocState

	// MinParallelDirty is the dirty-set size at which saturation recomputes
	// fan out across a worker pool (the internal/experiments pattern). Jobs
	// are independent, so results are deterministic; Speed closures of
	// distinct jobs must be safe to call concurrently. Zero means the
	// default (48); negative disables parallelism.
	MinParallelDirty int

	memos     map[int]*allocMemo
	out       map[int]Allocation
	lastCap   cluster.Resources
	round     uint64
	haveRun   bool
	contended bool

	dirty   []*JobInfo
	removed []int
	results []satResult
	stats   IncrStats
}

type satResult struct {
	alloc    Allocation
	consumed cluster.Resources
	ok       bool
}

// NewAllocSession returns a session over a fresh AllocState.
func NewAllocSession() *AllocSession {
	return &AllocSession{St: NewAllocState(), memos: make(map[int]*allocMemo)}
}

// MarkDirty forces a job to be treated as changed on the next Allocate,
// regardless of field comparison. Useful when a caller mutated something the
// session cannot observe (e.g. a Speed closure without a SpeedGen stamp —
// though zero SpeedGen already means always-dirty).
func (s *AllocSession) MarkDirty(id int) {
	if m, ok := s.memos[id]; ok {
		m.force = true
	}
}

// Stats returns the allocation-side counters (zero placement fields).
func (s *AllocSession) Stats() IncrStats { return s.stats }

// Allocate is the delta-driven counterpart of AllocState.Allocate: identical
// output for every input, at a fraction of the steady-state cost. Job IDs
// must be unique within one call (as every caller already guarantees).
func (s *AllocSession) Allocate(jobs []*JobInfo, capacity cluster.Resources) map[int]Allocation {
	if s.St == nil {
		s.St = NewAllocState()
	}
	if s.memos == nil {
		s.memos = make(map[int]*allocMemo)
	}
	s.round++

	if !s.haveRun || capacity != s.lastCap || s.St.Trace.Enabled() || s.St.Audit.Enabled() {
		return s.full(jobs, capacity)
	}

	// Dirty scan: compare every job against its memo.
	dirty := s.dirty[:0]
	matched := 0
	for _, j := range jobs {
		m := s.memos[j.ID]
		if m == nil {
			dirty = append(dirty, j)
			continue
		}
		matched++
		m.seen = s.round
		if m.force ||
			m.remainingWork != j.RemainingWork ||
			m.priority != j.Priority ||
			m.workerRes != j.WorkerRes ||
			m.psRes != j.PSRes ||
			m.maxWorkers != j.MaxWorkers ||
			m.maxPS != j.MaxPS ||
			j.SpeedGen == 0 || m.speedGen != j.SpeedGen {
			dirty = append(dirty, j)
		}
	}
	s.dirty = dirty

	// Membership diff: memos not seen this round belong to departed jobs.
	removed := s.removed[:0]
	if matched != len(s.memos) {
		for id, m := range s.memos {
			if m.seen != s.round {
				removed = append(removed, id)
			}
		}
	}
	s.removed = removed

	if len(dirty) == 0 && len(removed) == 0 {
		s.stats.AllocClean++
		s.stats.LastDirty = 0
		return s.out
	}
	if s.contended {
		return s.full(jobs, capacity)
	}

	// Incremental tier: recompute only the dirty jobs' saturation points.
	if cap(s.results) < len(dirty) {
		s.results = make([]satResult, len(dirty))
	}
	results := s.results[:len(dirty)]
	capEff := effectiveCapacity(capacity)
	sat := func(i int) {
		a, consumed, ok := saturateJob(dirty[i], capacity, capEff)
		results[i] = satResult{alloc: a, consumed: consumed, ok: ok}
	}
	if minPar := s.minParallelDirty(); minPar > 0 && len(dirty) >= minPar {
		parallelFor(runtime.GOMAXPROCS(0), len(dirty), sat)
	} else {
		for i := range dirty {
			sat(i)
		}
	}
	for i := range results {
		if !results[i].ok {
			// A dirty job's independent path hit the capacity envelope: the
			// uncontended-separability argument no longer applies.
			return s.full(jobs, capacity)
		}
	}

	for _, id := range removed {
		delete(s.memos, id)
		delete(s.out, id)
	}
	for i, j := range dirty {
		m := s.memos[j.ID]
		if m == nil {
			m = &allocMemo{}
			s.memos[j.ID] = m
		}
		m.snapshot(j)
		m.seen = s.round
		m.alloc = results[i].alloc
		m.consumed = results[i].consumed
		s.out[j.ID] = m.alloc
	}

	// Re-validate the whole-cluster envelope. Summation order differs from
	// the sequential kernel's running subtraction, so the margin inside
	// effectiveCapacity absorbs any float-ordering discrepancy; on failure
	// fall back to the real kernel (which full() re-primes from).
	var total cluster.Resources
	for _, m := range s.memos {
		total = total.Add(m.consumed)
	}
	if !total.Fits(capEff) {
		return s.full(jobs, capacity)
	}

	s.stats.AllocIncremental++
	s.stats.LastDirty = len(dirty)
	s.stats.DirtyJobs += uint64(len(dirty))
	return s.out
}

// full runs the from-scratch kernel and re-primes every cache from its
// result.
func (s *AllocSession) full(jobs []*JobInfo, capacity cluster.Resources) map[int]Allocation {
	res := s.St.Allocate(jobs, capacity)
	if s.out == nil {
		s.out = make(map[int]Allocation, len(jobs))
	} else {
		clear(s.out)
	}
	for id, a := range res {
		s.out[id] = a
	}
	// Rebuild memos in place, dropping departed jobs.
	for _, j := range jobs {
		m := s.memos[j.ID]
		if m == nil {
			m = &allocMemo{}
			s.memos[j.ID] = m
		}
		m.snapshot(j)
		m.seen = s.round
		m.alloc = res[j.ID]
		m.consumed = j.PSRes.Scale(float64(m.alloc.PS)).
			Add(j.WorkerRes.Scale(float64(m.alloc.Workers)))
	}
	if len(s.memos) != len(jobs) {
		for id, m := range s.memos {
			if m.seen != s.round {
				delete(s.memos, id)
			}
		}
	}
	s.lastCap = capacity
	s.haveRun = true
	s.contended = s.St.FitFailed()
	s.stats.AllocFull++
	s.stats.LastDirty = len(jobs)
	return s.out
}

func (m *allocMemo) snapshot(j *JobInfo) {
	m.remainingWork = j.RemainingWork
	m.priority = j.Priority
	m.workerRes = j.WorkerRes
	m.psRes = j.PSRes
	m.maxWorkers = j.MaxWorkers
	m.maxPS = j.MaxPS
	m.speedGen = j.SpeedGen
	m.force = false
}

func (s *AllocSession) minParallelDirty() int {
	switch {
	case s.MinParallelDirty < 0:
		return 0
	case s.MinParallelDirty == 0:
		return 48
	}
	return s.MinParallelDirty
}

// saturateJob replays the §4.1 grant sequence for one job in isolation:
// starting from the (1,1) seed, grant the better action while its normalized
// gain is positive. In an uncontended run this is exactly the allocation the
// interleaved greedy loop produces (see the package comment). The job's
// growing demand is checked against the conservative capacity envelope; a
// violation reports ok=false and the caller falls back to the full kernel —
// this also bounds uncapped jobs whose gain never turns non-positive.
func saturateJob(j *JobInfo, capacity, capEff cluster.Resources) (Allocation, cluster.Resources, bool) {
	a := Allocation{PS: 1, Workers: 1}
	consumed := j.WorkerRes.Add(j.PSRes)
	if !consumed.Fits(capEff) {
		return Allocation{}, cluster.Resources{}, false
	}
	remain := remainingTime(j, 1, 1)
	for {
		kind, gain, after := bestGainFrom(j, a, remain, capacity)
		if !(gain > 0) {
			return a, consumed, true
		}
		var req cluster.Resources
		if kind == addWorker {
			req = j.WorkerRes
		} else {
			req = j.PSRes
		}
		next := consumed.Add(req)
		if !next.Fits(capEff) {
			return a, consumed, false
		}
		consumed = next
		if kind == addWorker {
			a.Workers++
		} else {
			a.PS++
		}
		remain = after
	}
}

// effectiveCapacity shrinks every resource by a conservative margin (1e-6
// relative + 1e-9 absolute). The incremental tier's feasibility checks run
// against this envelope so that float-summation-order differences from the
// sequential kernel (≈1e-13 relative) can never let the fast path commit an
// allocation the from-scratch run would have clipped.
func effectiveCapacity(capacity cluster.Resources) cluster.Resources {
	eff := capacity
	for r := range eff {
		eff[r] -= 1e-9 + 1e-6*math.Abs(eff[r])
	}
	return eff
}

// parallelFor runs fn(i) for every i in [0, n) across a worker pool, handing
// out work through an atomic cursor — the internal/experiments fan-out
// pattern, inlined here because core sits below that package.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Placement session
// ---------------------------------------------------------------------------

// sessionRec is one entry of the sorted request order from the session's
// last computed round, with its outcome.
type sessionRec struct {
	req    PlacementRequest
	share  float64
	placed bool
	pl     Placement
}

// PlaceSession wraps a PlaceState with placement diffing. Unlike the bare
// kernel, the session owns the cluster-reset step: callers must NOT call
// ResetAll before Place — the session invokes Prepare (default: ResetAll)
// only when it actually recomputes, which is what makes the clean tier free.
// The returned map and unplaced slice are session-owned and patched across
// calls; callers must treat them as read-only.
//
// The session is keyed to one cluster. Per-node usage is verified against
// the post-commit snapshot on every call, so external mutation of the
// cluster between rounds safely degrades to a full recompute rather than
// corrupting results. Changes to the *pre-place* state that Prepare would
// produce (e.g. new down-node reservations) are invisible until Prepare
// runs; callers owning such state must call Invalidate when it changes.
type PlaceSession struct {
	// St is the underlying kernel. Attach Trace/Audit here; enabled
	// observability forces the full tier.
	St *PlaceState
	// Prepare resets the cluster to its pre-placement state. Nil means
	// plain ResetAll.
	Prepare func(c *cluster.Cluster)

	cl        *cluster.Cluster
	nodes     []*cluster.Node
	postUsed  []cluster.Resources
	lastCap   cluster.Resources
	lastInput []PlacementRequest
	recs      []sessionRec
	nextRecs  []sessionRec
	out       map[int]Placement
	unplaced  []int
	requested map[int]struct{}
	haveRun   bool
	forceFull bool

	clean, partial, full uint64
	migratedTotal        uint64
	lastMigrated         int
}

// NewPlaceSession returns a session over a fresh PlaceState.
func NewPlaceSession() *PlaceSession {
	return &PlaceSession{St: NewPlaceState()}
}

// Invalidate forces the next Place to recompute from scratch. Call it when
// the pre-placement state Prepare produces has changed (node reservations,
// share schedules, fault injection).
func (s *PlaceSession) Invalidate() { s.forceFull = true }

// LastMigrated reports how many previously-running tasks the most recent
// Place moved to a different node.
func (s *PlaceSession) LastMigrated() int { return s.lastMigrated }

// Place is the delta-driven counterpart of PlaceState.Place. Do not reset
// the cluster first — see the type comment. Job IDs must be unique within
// one call.
func (s *PlaceSession) Place(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	if s.St == nil {
		s.St = NewPlaceState()
	}
	observed := s.St.Trace.Enabled() || s.St.Audit.Enabled()
	base := s.haveRun && !s.forceFull && !observed && c == s.cl && s.sameBase(c)
	if base && s.sameInput(reqs) {
		s.clean++
		s.lastMigrated = 0
		return s.out, s.unplaced
	}
	if base {
		return s.placePartial(reqs, c)
	}
	return s.placeFull(reqs, c)
}

// PlaceRetry places extra requests onto the cluster's current committed
// state — the engine's fragmentation shrink-retry path. It runs the bare
// kernel (exactly what non-session callers do) and schedules a full
// recompute for the next round, since the retried jobs' effective requests
// no longer match what the allocator will ask for next time.
func (s *PlaceSession) PlaceRetry(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	out, unplaced := s.St.Place(reqs, c)
	s.forceFull = true
	return out, unplaced
}

// sameBase verifies the cluster is byte-identical to the session's
// post-commit snapshot: same node objects, same per-node usage, same
// capacity.
func (s *PlaceSession) sameBase(c *cluster.Cluster) bool {
	nodes := c.Nodes()
	if len(nodes) != len(s.nodes) {
		return false
	}
	for i, n := range nodes {
		if n != s.nodes[i] || n.Used() != s.postUsed[i] {
			return false
		}
	}
	return c.Capacity() == s.lastCap
}

// sameInput reports whether the request slice matches last round's,
// element-wise in the given order.
func (s *PlaceSession) sameInput(reqs []PlacementRequest) bool {
	if len(reqs) != len(s.lastInput) {
		return false
	}
	for i := range reqs {
		if reqs[i] != s.lastInput[i] {
			return false
		}
	}
	return true
}

// placeFull resets the cluster, runs the kernel, and re-primes the caches.
func (s *PlaceSession) placeFull(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	s.prepare(c)
	out, unplaced := s.St.Place(reqs, c)
	migrated := 0
	if s.haveRun && c == s.cl {
		migrated = s.migrations(s.recs, out, reqs)
	}
	s.recs = s.recs[:0]
	for i := range s.St.ordered {
		or := &s.St.ordered[i]
		rec := sessionRec{req: or.req, share: or.share}
		if pl, ok := out[or.req.JobID]; ok {
			rec.placed = true
			rec.pl = pl
		}
		s.recs = append(s.recs, rec)
	}
	s.out = out
	s.unplaced = unplaced
	s.adopt(reqs, c)
	s.full++
	s.finishMigrated(migrated)
	return out, unplaced
}

// placePartial reuses the unchanged prefix of the sorted request order:
// reset, replay the prefix commits in the original per-task arithmetic
// order, and run the real search only for the changed suffix.
func (s *PlaceSession) placePartial(reqs []PlacementRequest, c *cluster.Cluster) (map[int]Placement, []int) {
	st := s.St
	ordered := st.orderReqs(reqs, s.lastCap)
	prefix := 0
	for prefix < len(ordered) && prefix < len(s.recs) && ordered[prefix].req == s.recs[prefix].req {
		prefix++
	}
	if prefix == len(ordered) && prefix == len(s.recs) {
		// Same sorted work — the input order was merely permuted, and the
		// kernel's output depends only on the sorted order.
		s.lastInput = append(s.lastInput[:0], reqs...)
		s.clean++
		s.lastMigrated = 0
		return s.out, s.unplaced
	}

	s.prepare(c)
	for i := 0; i < prefix; i++ {
		if s.recs[i].placed {
			commitPlacement(s.recs[i].req, s.recs[i].pl, c)
		}
	}
	st.beginIndex(c)
	st.resetRecs()
	var sufUnplaced []int
	for i := prefix; i < len(ordered); i++ {
		req := ordered[i].req
		if req.Alloc.PS <= 0 || req.Alloc.Workers <= 0 {
			sufUnplaced = append(sufUnplaced, req.JobID)
			continue
		}
		if _, ok := st.placeStep(req, c); !ok {
			sufUnplaced = append(sufUnplaced, req.JobID)
		}
	}
	sufOut := st.materialize(len(ordered) - prefix)

	// Patch the persistent output map: drop the old suffix, insert the new.
	for i := prefix; i < len(s.recs); i++ {
		if s.recs[i].placed {
			delete(s.out, s.recs[i].req.JobID)
		}
	}
	for id, pl := range sufOut {
		s.out[id] = pl
	}

	migrated := s.migrations(s.recs, s.out, reqs)

	newRecs := append(s.nextRecs[:0], s.recs[:prefix]...)
	var unplaced []int
	for i := 0; i < prefix; i++ {
		if !newRecs[i].placed {
			unplaced = append(unplaced, newRecs[i].req.JobID)
		}
	}
	unplaced = append(unplaced, sufUnplaced...)
	for i := prefix; i < len(ordered); i++ {
		rec := sessionRec{req: ordered[i].req, share: ordered[i].share}
		if pl, ok := sufOut[rec.req.JobID]; ok {
			rec.placed = true
			rec.pl = pl
		}
		newRecs = append(newRecs, rec)
	}
	s.nextRecs = s.recs[:0]
	s.recs = newRecs
	s.unplaced = unplaced
	s.adopt(reqs, c)
	s.partial++
	s.finishMigrated(migrated)
	return s.out, s.unplaced
}

// adopt records the round's inputs and the cluster's post-commit state.
func (s *PlaceSession) adopt(reqs []PlacementRequest, c *cluster.Cluster) {
	s.lastInput = append(s.lastInput[:0], reqs...)
	s.nodes = append(s.nodes[:0], c.Nodes()...)
	if cap(s.postUsed) < len(s.nodes) {
		s.postUsed = make([]cluster.Resources, len(s.nodes))
	}
	s.postUsed = s.postUsed[:len(s.nodes)]
	for i, n := range s.nodes {
		s.postUsed[i] = n.Used()
	}
	s.lastCap = c.Capacity()
	s.cl = c
	s.haveRun = true
	s.forceFull = false
}

func (s *PlaceSession) finishMigrated(migrated int) {
	s.lastMigrated = migrated
	s.migratedTotal += uint64(migrated)
}

func (s *PlaceSession) prepare(c *cluster.Cluster) {
	if s.Prepare != nil {
		s.Prepare(c)
	} else {
		c.ResetAll()
	}
}

// migrations counts tasks that were committed somewhere last round and must
// now stop or move: for every previously-placed job that is still requested
// this round, tasks on a node beyond what the new placement keeps there.
// Jobs absent from the new request list completed — their tasks stopping is
// not a migration.
func (s *PlaceSession) migrations(oldRecs []sessionRec, newOut map[int]Placement, reqs []PlacementRequest) int {
	if s.requested == nil {
		s.requested = make(map[int]struct{}, len(reqs))
	} else {
		clear(s.requested)
	}
	for _, r := range reqs {
		s.requested[r.JobID] = struct{}{}
	}
	moved := 0
	for i := range oldRecs {
		old := &oldRecs[i]
		if !old.placed {
			continue
		}
		if _, ok := s.requested[old.req.JobID]; !ok {
			continue
		}
		newPl, havePl := newOut[old.req.JobID]
		for k, nodeID := range old.pl.NodeIDs {
			oldCount := old.pl.PSOnNode[k] + old.pl.WorkersOnNode[k]
			newCount := 0
			if havePl {
				for m, id := range newPl.NodeIDs {
					if id == nodeID {
						newCount = newPl.PSOnNode[m] + newPl.WorkersOnNode[m]
						break
					}
				}
			}
			if oldCount > newCount {
				moved += oldCount - newCount
			}
		}
	}
	return moved
}

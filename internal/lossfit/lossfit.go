// Package lossfit implements the online convergence estimation of Optimus
// (§3.1 of the paper). Training-loss samples are preprocessed (outlier
// removal against a neighbour window, normalization by the maximum observed
// loss) and fitted to the SGD convergence model
//
//	l(k) = 1/(β0·k + β1) + β2,   β0, β1, β2 ≥ 0
//
// where k is the training step (or epoch). The fitted model predicts the
// total number of steps needed until the per-epoch loss decrease stays below
// the job owner's convergence threshold, and hence the remaining work Q_j
// the scheduler plugs into its completion-time objective.
package lossfit

import (
	"errors"
	"fmt"
	"math"

	"optimus/internal/nnls"
)

// Point is one training-loss observation at step K.
type Point struct {
	K    float64 // training step (or epoch) index, > 0
	Loss float64 // raw training loss at that step
}

// Model is the fitted convergence curve l(k) = 1/(β0·k+β1) + β2 on the
// normalized loss scale (losses divided by MaxLoss).
type Model struct {
	B0, B1, B2 float64
	// MaxLoss is the normalization constant: raw losses were divided by it
	// before fitting. Loss() reports normalized values; RawLoss() rescales.
	MaxLoss float64
	// Residual is the root-mean-square error of the fit in normalized space.
	Residual float64
}

// Loss evaluates the normalized fitted curve at step k.
func (m Model) Loss(k float64) float64 {
	den := m.B0*k + m.B1
	if den <= 0 {
		return 1 + m.B2
	}
	return 1/den + m.B2
}

// RawLoss evaluates the fitted curve in raw-loss units.
func (m Model) RawLoss(k float64) float64 { return m.Loss(k) * m.MaxLoss }

// Valid reports whether the model can make forward progress predictions.
func (m Model) Valid() bool {
	return m.B0 > 0 && !math.IsNaN(m.B0) && !math.IsNaN(m.B1) && !math.IsNaN(m.B2)
}

// StepsToConverge returns the first step k* at which the model's loss
// decrease over each of `consecutive` consecutive windows of `window` steps
// stays below threshold (on the normalized loss scale). window is typically
// the number of steps per epoch, matching the paper's epoch-granularity
// convergence rule. It returns an error if the model cannot converge.
func (m Model) StepsToConverge(threshold float64, window, consecutive int) (float64, error) {
	if !m.Valid() {
		return 0, errors.New("lossfit: model not fitted")
	}
	if threshold <= 0 {
		return 0, fmt.Errorf("lossfit: threshold must be positive, got %g", threshold)
	}
	if window <= 0 || consecutive <= 0 {
		return 0, errors.New("lossfit: window and consecutive must be positive")
	}
	// The per-window decrease d(k) = l(k) − l(k+window) is monotonically
	// decreasing in k for this model family, so the convergence point is the
	// first k where d(k) < threshold; the "consecutive" windows after it
	// automatically satisfy the condition. Solve d(k) = threshold in closed
	// form is messy; a doubling+bisection search is exact enough and cheap.
	wf := float64(window)
	decrease := func(k float64) float64 { return m.Loss(k) - m.Loss(k+wf) }

	if decrease(1) < threshold {
		return wf * float64(consecutive), nil // converged almost immediately
	}
	lo, hi := 1.0, 2.0
	for decrease(hi) >= threshold {
		hi *= 2
		if hi > 1e12 {
			return 0, errors.New("lossfit: model does not converge under threshold")
		}
	}
	for i := 0; i < 200 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if decrease(mid) >= threshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Converged when the condition has held for `consecutive` windows.
	return hi + wf*float64(consecutive), nil
}

// Fitter accumulates loss observations and produces Models on demand. It is
// the online half of §3.1: call Add after every step (or once per epoch with
// averaged losses, per the paper's sampling note) and Fit whenever the
// scheduler needs a fresh convergence estimate.
type Fitter struct {
	points []Point
	// OutlierWindow is the neighbour half-window used in preprocessing
	// (paper example: min of the next 5 and max of the previous 5 samples).
	OutlierWindow int
	// MaxPoints caps the number of retained samples; when exceeded, pairs of
	// adjacent samples are averaged (the paper's "average several data
	// points" reduction). Zero means unlimited.
	MaxPoints int

	// Fit cache: FitPoints is pure in (points, OutlierWindow), so the result
	// only changes when Add appends a sample (or the window setting moves).
	// The scheduler refits every active job every interval; between epoch
	// boundaries nothing new arrives, so the cached model is exact.
	dirty        bool
	fitted       bool
	cachedWindow int
	cached       Model
	cachedErr    error
	gen          uint64 // bumped by Add; see Generation

	// scratch holds the NNLS workspace and preprocessing buffers reused
	// across refits; allocated on first Fit.
	scratch *fitScratch
}

// fitScratch bundles every buffer one FitPoints evaluation needs. A Fitter
// keeps one across refits so the steady-state "one new point then refit"
// cycle allocates nothing and warm-starts NNLS from the previous active set.
type fitScratch struct {
	ws      nnls.Workspace
	mat     nnls.Matrix
	rhs     []float64
	cleaned []Point
	orig    []Point
}

// NewFitter returns a Fitter with the paper's default preprocessing window.
func NewFitter() *Fitter {
	return &Fitter{OutlierWindow: 5, MaxPoints: 4096}
}

// Add records one loss observation. Non-finite or non-positive steps are
// rejected so callers can feed raw telemetry without pre-validating.
func (f *Fitter) Add(k, loss float64) error {
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return fmt.Errorf("lossfit: invalid step %g", k)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return fmt.Errorf("lossfit: invalid loss %g", loss)
	}
	f.points = append(f.points, Point{K: k, Loss: loss})
	if f.MaxPoints > 0 && len(f.points) > f.MaxPoints {
		f.compact()
	}
	f.dirty = true
	f.gen++
	return nil
}

// Generation is a change-tracking stamp for incremental schedulers: it is
// always non-zero and advances exactly when an accepted Add changes the
// sample set (and therefore possibly the fitted model). Equal generations
// guarantee Fit returns the same model, given unchanged settings.
func (f *Fitter) Generation() uint64 { return f.gen + 1 }

// Len reports the number of retained samples.
func (f *Fitter) Len() int { return len(f.points) }

// compact halves the sample count by averaging adjacent pairs.
func (f *Fitter) compact() {
	out := f.points[:0]
	for i := 0; i+1 < len(f.points); i += 2 {
		a, b := f.points[i], f.points[i+1]
		out = append(out, Point{K: (a.K + b.K) / 2, Loss: (a.Loss + b.Loss) / 2})
	}
	if len(f.points)%2 == 1 {
		out = append(out, f.points[len(f.points)-1])
	}
	f.points = out
}

// Preprocess applies the paper's outlier removal and normalization and
// returns the cleaned (k, normalized loss) series plus the normalization
// constant. It is exported for tests and for the experiment harness.
func Preprocess(points []Point, window int) ([]Point, float64) {
	if len(points) == 0 {
		return nil, 0
	}
	cleaned := make([]Point, len(points))
	copy(cleaned, points)

	// Outlier removal: a point must fall within [min of the next `window`
	// losses, max of the previous `window` losses]; otherwise it is replaced
	// by the mean of its immediate neighbours.
	if window > 0 {
		orig := make([]Point, len(points))
		copy(orig, points)
		for i := range orig {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := i + 1; j <= i+window && j < len(orig); j++ {
				if orig[j].Loss < lo {
					lo = orig[j].Loss
				}
			}
			for j := i - 1; j >= 0 && j >= i-window; j-- {
				if orig[j].Loss > hi {
					hi = orig[j].Loss
				}
			}
			if math.IsInf(lo, 1) || math.IsInf(hi, -1) {
				continue // boundary points keep their value
			}
			if orig[i].Loss >= lo && orig[i].Loss <= hi {
				continue
			}
			var sum float64
			var n int
			if i > 0 {
				sum += orig[i-1].Loss
				n++
			}
			if i+1 < len(orig) {
				sum += orig[i+1].Loss
				n++
			}
			if n > 0 {
				cleaned[i].Loss = sum / float64(n)
			}
		}
	}

	var maxLoss float64
	for _, p := range cleaned {
		if p.Loss > maxLoss {
			maxLoss = p.Loss
		}
	}
	if maxLoss <= 0 {
		maxLoss = 1
	}
	for i := range cleaned {
		cleaned[i].Loss /= maxLoss
	}
	return cleaned, maxLoss
}

// Fit fits the convergence model to the samples collected so far. At least
// four samples are required. Results are cached until the next Add (or an
// OutlierWindow change), so repeated scheduler refits without new
// observations cost a field read instead of a grid of NNLS solves.
func (f *Fitter) Fit() (Model, error) {
	if f.fitted && !f.dirty && f.cachedWindow == f.OutlierWindow {
		return f.cached, f.cachedErr
	}
	if f.scratch == nil {
		f.scratch = new(fitScratch)
	}
	f.cached, f.cachedErr = f.scratch.fitPoints(f.points, f.OutlierWindow)
	f.fitted, f.dirty, f.cachedWindow = true, false, f.OutlierWindow
	return f.cached, f.cachedErr
}

// FitPoints fits the model to an explicit sample set.
//
// The model is nonlinear in β, but for a fixed asymptote β2 the substitution
// u = 1/(l − β2) turns it into the linear model u = β0·k + β1 solvable with
// NNLS. We search β2 over a grid below the smallest observed loss, solve the
// linear subproblem for each candidate, and keep the fit with the smallest
// residual measured in the original loss space. This mirrors the paper's
// NNLS-based fitting while staying dependency-free and deterministic.
func FitPoints(points []Point, window int) (Model, error) {
	var s fitScratch
	return s.fitPoints(points, window)
}

// fitPoints is FitPoints running on a reusable scratch.
func (s *fitScratch) fitPoints(points []Point, window int) (Model, error) {
	if len(points) < 4 {
		return Model{}, fmt.Errorf("lossfit: need at least 4 points, have %d", len(points))
	}
	cleaned, maxLoss := s.preprocess(points, window)

	minLoss := math.Inf(1)
	for _, p := range cleaned {
		if p.Loss < minLoss {
			minLoss = p.Loss
		}
	}

	best := Model{Residual: math.Inf(1), MaxLoss: maxLoss}
	const gridSteps = 40
	for g := 0; g <= gridSteps; g++ {
		b2 := minLoss * float64(g) / float64(gridSteps+1)
		m, ok := s.fitWithAsymptote(cleaned, b2)
		if !ok {
			continue
		}
		if m.Residual < best.Residual {
			best = m
			best.MaxLoss = maxLoss
		}
	}
	if math.IsInf(best.Residual, 1) {
		return Model{}, errors.New("lossfit: fitting failed for all asymptote candidates")
	}
	return best, nil
}

// preprocess is Preprocess writing into the scratch buffers. The returned
// slice is owned by the scratch and valid until the next call.
func (s *fitScratch) preprocess(points []Point, window int) ([]Point, float64) {
	if len(points) == 0 {
		return nil, 0
	}
	s.cleaned = append(s.cleaned[:0], points...)
	cleaned := s.cleaned

	// Outlier removal: a point must fall within [min of the next `window`
	// losses, max of the previous `window` losses]; otherwise it is replaced
	// by the mean of its immediate neighbours.
	if window > 0 {
		s.orig = append(s.orig[:0], points...)
		orig := s.orig
		for i := range orig {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := i + 1; j <= i+window && j < len(orig); j++ {
				if orig[j].Loss < lo {
					lo = orig[j].Loss
				}
			}
			for j := i - 1; j >= 0 && j >= i-window; j-- {
				if orig[j].Loss > hi {
					hi = orig[j].Loss
				}
			}
			if math.IsInf(lo, 1) || math.IsInf(hi, -1) {
				continue // boundary points keep their value
			}
			if orig[i].Loss >= lo && orig[i].Loss <= hi {
				continue
			}
			var sum float64
			var n int
			if i > 0 {
				sum += orig[i-1].Loss
				n++
			}
			if i+1 < len(orig) {
				sum += orig[i+1].Loss
				n++
			}
			if n > 0 {
				cleaned[i].Loss = sum / float64(n)
			}
		}
	}

	var maxLoss float64
	for _, p := range cleaned {
		if p.Loss > maxLoss {
			maxLoss = p.Loss
		}
	}
	if maxLoss <= 0 {
		maxLoss = 1
	}
	for i := range cleaned {
		cleaned[i].Loss /= maxLoss
	}
	return cleaned, maxLoss
}

// fitWithAsymptote solves the linear subproblem for a fixed β2 and evaluates
// the residual in loss space. The design matrix and rhs are assembled in the
// scratch buffers and solved with the scratch workspace, which warm-starts
// from the previous candidate's (or previous refit's) active set.
func (s *fitScratch) fitWithAsymptote(cleaned []Point, b2 float64) (Model, bool) {
	data := s.mat.Data[:0]
	rhs := s.rhs[:0]
	for _, p := range cleaned {
		d := p.Loss - b2
		if d <= 1e-9 {
			continue // point at/below asymptote: cannot transform
		}
		data = append(data, p.K, 1)
		rhs = append(rhs, 1/d)
	}
	s.mat.Data, s.rhs = data, rhs
	s.mat.Rows, s.mat.Cols = len(rhs), 2
	if s.mat.Rows < 3 {
		return Model{}, false
	}
	x, _, err := s.ws.Solve(&s.mat, rhs)
	if err != nil {
		return Model{}, false
	}
	m := Model{B0: x[0], B1: x[1], B2: b2}
	if m.B0 <= 0 {
		return Model{}, false // flat model: no convergence information
	}
	// Residual in the original (normalized) loss space.
	var ss float64
	for _, p := range cleaned {
		d := m.Loss(p.K) - p.Loss
		ss += d * d
	}
	m.Residual = math.Sqrt(ss / float64(len(cleaned)))
	return m, true
}

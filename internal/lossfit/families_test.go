package lossfit

import (
	"math"
	"math/rand"
	"testing"
)

func expCurve(b0, b1, b2 float64, n int, noise float64, seed int64) []Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		k := float64(i + 1)
		l := b1*math.Exp(-b0*k) + b2 + noise*r.NormFloat64()
		if l < 1e-9 {
			l = 1e-9
		}
		pts[i] = Point{K: k, Loss: l}
	}
	return pts
}

func TestFitExponentialRecoversCurve(t *testing.T) {
	pts := expCurve(0.08, 1.0, 0.1, 80, 0, 1)
	m, err := FitExponential(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != FamilyExponential {
		t.Errorf("family = %v", m.Family)
	}
	for _, k := range []float64{10, 40, 70} {
		want := 1.0*math.Exp(-0.08*k) + 0.1
		got := m.RawLoss(k)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("RawLoss(%g) = %g, want ≈ %g", k, got, want)
		}
	}
}

func TestFitExponentialTooFewPoints(t *testing.T) {
	if _, err := FitExponential(expCurve(0.1, 1, 0, 3, 0, 1), 5); err == nil {
		t.Error("accepted 3 points")
	}
}

func TestFitBestSelectsCorrectFamily(t *testing.T) {
	// Exponential data → exponential family wins.
	expPts := expCurve(0.1, 1.0, 0.05, 80, 0.001, 2)
	m, err := FitBest(expPts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Family != FamilyExponential {
		t.Errorf("exponential data fitted as %v", m.Family)
	}
	// Inverse (Eqn-1) data → inverse family wins.
	invPts := synth(0.15, 1.0, 0.05, 80, 0.001, 3)
	m2, err := FitBest(invPts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Family != FamilyInverse {
		t.Errorf("inverse data fitted as %v", m2.Family)
	}
}

func TestFamilyModelStepsToConverge(t *testing.T) {
	m := FamilyModel{Family: FamilyExponential, B0: 0.05, B1: 1, B2: 0.05, MaxLoss: 1}
	steps, err := m.StepsToConverge(0.001, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if steps <= 0 {
		t.Fatalf("steps = %g", steps)
	}
	if d := m.Loss(steps) - m.Loss(steps+1); d >= 0.001 {
		t.Errorf("decrease at k* = %g, want < threshold", d)
	}
	var invalid FamilyModel
	if _, err := invalid.StepsToConverge(0.01, 1, 3); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := m.StepsToConverge(0, 1, 3); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestFamilyString(t *testing.T) {
	if FamilyInverse.String() != "inverse" || FamilyExponential.String() != "exponential" {
		t.Error("unexpected family names")
	}
	if Family(7).String() == "" {
		t.Error("unknown family should stringify")
	}
}

// The paper's motivating case: an A3C-like curve that Eqn 1 describes badly
// but the exponential family handles — FitBest must pick the better one and
// its convergence estimate must beat the forced-inverse estimate.
func TestFitBestImprovesConvergenceEstimate(t *testing.T) {
	pts := expCurve(0.12, 1.0, 0.02, 60, 0.002, 4)
	best, err := FitBest(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := FitPoints(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if best.Residual >= inv.Residual {
		t.Errorf("best residual %g not below inverse %g", best.Residual, inv.Residual)
	}
}

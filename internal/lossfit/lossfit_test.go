package lossfit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth generates points from a known curve with optional noise.
func synth(b0, b1, b2 float64, n int, noise float64, seed int64) []Point {
	r := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		k := float64(i + 1)
		l := 1/(b0*k+b1) + b2
		l += noise * r.NormFloat64()
		if l < 1e-6 {
			l = 1e-6
		}
		pts[i] = Point{K: k, Loss: l}
	}
	return pts
}

func TestFitRecoversNoiselessCurve(t *testing.T) {
	// Seq2Seq-like coefficients from Fig. 7: β0=0.21, β1=1.07, β2=0.07.
	pts := synth(0.21, 1.07, 0.07, 60, 0, 1)
	m, err := FitPoints(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The preprocessing normalizes by max loss; predicted curve should match
	// the input data closely in normalized space.
	if m.Residual > 1e-3 {
		t.Errorf("residual = %g, want < 1e-3", m.Residual)
	}
	// Check pointwise agreement against the raw curve.
	for _, k := range []float64{5, 20, 50} {
		want := 1/(0.21*k+1.07) + 0.07
		got := m.RawLoss(k)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("RawLoss(%g) = %g, want ≈ %g", k, got, want)
		}
	}
}

func TestFitWithNoise(t *testing.T) {
	pts := synth(0.05, 1.0, 0.1, 200, 0.01, 2)
	m, err := FitPoints(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{50, 100, 150} {
		want := 1/(0.05*k+1.0) + 0.1
		got := m.RawLoss(k)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("RawLoss(%g) = %g, want ≈ %g (±10%%)", k, got, want)
		}
	}
}

func TestFitTooFewPoints(t *testing.T) {
	if _, err := FitPoints(synth(0.2, 1, 0, 3, 0, 1), 5); err == nil {
		t.Error("expected error for 3 points")
	}
}

func TestFitterAddValidation(t *testing.T) {
	f := NewFitter()
	if err := f.Add(0, 1); err == nil {
		t.Error("expected error for step 0")
	}
	if err := f.Add(-1, 1); err == nil {
		t.Error("expected error for negative step")
	}
	if err := f.Add(1, math.NaN()); err == nil {
		t.Error("expected error for NaN loss")
	}
	if err := f.Add(math.Inf(1), 1); err == nil {
		t.Error("expected error for infinite step")
	}
	if err := f.Add(1, 0.5); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
}

func TestFitterCompaction(t *testing.T) {
	f := NewFitter()
	f.MaxPoints = 16
	for i := 1; i <= 100; i++ {
		if err := f.Add(float64(i), 1/float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() > 16 {
		t.Errorf("Len = %d, want ≤ 16 after compaction", f.Len())
	}
	// Compacted data should still fit well.
	m, err := f.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Valid() {
		t.Error("model invalid after compaction")
	}
}

func TestPreprocessOutlierRemoval(t *testing.T) {
	pts := synth(0.2, 1, 0.05, 30, 0, 3)
	// Inject a wild spike in the middle.
	spiked := make([]Point, len(pts))
	copy(spiked, pts)
	spiked[15].Loss = 100
	cleaned, _ := Preprocess(spiked, 5)
	// The spike must have been replaced by the neighbour average, so after
	// normalization the max should be at the first point, not index 15.
	if cleaned[15].Loss > cleaned[0].Loss {
		t.Errorf("outlier survived: cleaned[15]=%g > cleaned[0]=%g",
			cleaned[15].Loss, cleaned[0].Loss)
	}
}

func TestPreprocessNormalization(t *testing.T) {
	pts := []Point{{1, 8}, {2, 4}, {3, 2}, {4, 1}}
	cleaned, maxLoss := Preprocess(pts, 0)
	if maxLoss != 8 {
		t.Errorf("maxLoss = %g, want 8", maxLoss)
	}
	for _, p := range cleaned {
		if p.Loss < 0 || p.Loss > 1 {
			t.Errorf("normalized loss %g outside [0,1]", p.Loss)
		}
	}
}

func TestPreprocessEmpty(t *testing.T) {
	cleaned, maxLoss := Preprocess(nil, 5)
	if cleaned != nil || maxLoss != 0 {
		t.Errorf("Preprocess(nil) = %v, %g; want nil, 0", cleaned, maxLoss)
	}
}

func TestStepsToConverge(t *testing.T) {
	m := Model{B0: 0.01, B1: 1, B2: 0.05, MaxLoss: 1}
	steps, err := m.StepsToConverge(0.001, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if steps <= 0 {
		t.Fatalf("steps = %g, want > 0", steps)
	}
	// At the reported point, the per-window decrease must be below threshold.
	w := 100.0
	if d := m.Loss(steps) - m.Loss(steps+w); d >= 0.001 {
		t.Errorf("decrease at k*=%g is %g, want < 0.001", steps, d)
	}
	// Tighter thresholds require more steps.
	tight, err := m.StepsToConverge(0.0001, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tight <= steps {
		t.Errorf("tighter threshold gave %g steps, want > %g", tight, steps)
	}
}

func TestStepsToConvergeErrors(t *testing.T) {
	var zero Model
	if _, err := zero.StepsToConverge(0.01, 10, 3); err == nil {
		t.Error("expected error for unfitted model")
	}
	m := Model{B0: 0.01, B1: 1, MaxLoss: 1}
	if _, err := m.StepsToConverge(0, 10, 3); err == nil {
		t.Error("expected error for zero threshold")
	}
	if _, err := m.StepsToConverge(0.01, 0, 3); err == nil {
		t.Error("expected error for zero window")
	}
	if _, err := m.StepsToConverge(0.01, 10, 0); err == nil {
		t.Error("expected error for zero consecutive")
	}
}

func TestModelLossMonotone(t *testing.T) {
	m := Model{B0: 0.1, B1: 1, B2: 0.02, MaxLoss: 1}
	prev := math.Inf(1)
	for k := 1.0; k < 1000; k *= 1.5 {
		l := m.Loss(k)
		if l > prev {
			t.Fatalf("loss increased at k=%g: %g > %g", k, l, prev)
		}
		prev = l
	}
}

// Property: the fitted model is always valid and its predicted losses are
// within the data's range for curves from the model family.
func TestFitProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b0 := 0.01 + r.Float64()*0.5
		b1 := 0.5 + r.Float64()*2
		b2 := r.Float64() * 0.3
		pts := synth(b0, b1, b2, 40+r.Intn(100), 0.002, seed)
		m, err := FitPoints(pts, 5)
		if err != nil {
			return false
		}
		if !m.Valid() {
			return false
		}
		// Prediction at a seen step should be close to truth.
		k := float64(20)
		want := 1/(b0*k+b1) + b2
		got := m.RawLoss(k)
		return math.Abs(got-want)/want < 0.2
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: prediction improves (or stays comparable) with more data — the
// paper's Fig. 6 claim. We check that the error with 80% of samples is not
// wildly worse than with 20%.
func TestFitImprovesWithData(t *testing.T) {
	pts := synth(0.05, 1.2, 0.08, 300, 0.005, 77)
	errAt := func(frac float64) float64 {
		n := int(frac * float64(len(pts)))
		m, err := FitPoints(pts[:n], 5)
		if err != nil {
			t.Fatalf("fit at %g%%: %v", frac*100, err)
		}
		trueSteps := convergencePoint(0.05, 1.2, 0.08, 0.0005, 10)
		got, err := m.StepsToConverge(0.0005, 10, 3)
		if err != nil {
			return math.Inf(1)
		}
		return math.Abs(got-trueSteps) / trueSteps
	}
	early, late := errAt(0.2), errAt(0.8)
	if late > early*2+0.2 {
		t.Errorf("late error %.3f much worse than early %.3f", late, early)
	}
}

// convergencePoint computes the true step at which the per-window decrease
// falls below threshold for the exact curve.
func convergencePoint(b0, b1, b2, threshold float64, window int) float64 {
	loss := func(k float64) float64 { return 1/(b0*k+b1) + b2 }
	w := float64(window)
	k := 1.0
	for loss(k)-loss(k+w) >= threshold {
		k++
		if k > 1e9 {
			return math.Inf(1)
		}
	}
	return k
}

// TestFitCacheMatchesRefit is the dirty-flag contract: a Fitter's cached Fit
// must be indistinguishable from refitting the accumulated points from
// scratch, at every point in the Add/Fit interleaving.
func TestFitCacheMatchesRefit(t *testing.T) {
	pts := synth(0.2, 1.0, 0.06, 60, 0.01, 9)
	f := NewFitter()
	for i, p := range pts {
		if err := f.Add(p.K, p.Loss); err != nil {
			t.Fatal(err)
		}
		if i < 4 || i%7 != 0 {
			continue
		}
		got, gotErr := f.Fit()
		// Repeat without new data: must hit the cache and return the same.
		again, againErr := f.Fit()
		if got != again || (gotErr == nil) != (againErr == nil) {
			t.Fatalf("point %d: cached refit diverged: %+v vs %+v", i, got, again)
		}
		want, wantErr := FitPoints(pts[:i+1], f.OutlierWindow)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("point %d: err %v vs fresh err %v", i, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("point %d: cached fit %+v != fresh fit %+v", i, got, want)
		}
	}
}

// Changing the preprocessing window must invalidate the cache.
func TestFitCacheInvalidatedByWindowChange(t *testing.T) {
	pts := synth(0.15, 1.1, 0.05, 40, 0.02, 10)
	f := NewFitter()
	for _, p := range pts {
		if err := f.Add(p.K, p.Loss); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Fit(); err != nil {
		t.Fatal(err)
	}
	f.OutlierWindow = 0
	got, err := f.Fit()
	if err != nil {
		t.Fatal(err)
	}
	want, err := FitPoints(pts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("after window change: cached %+v != fresh %+v", got, want)
	}
}

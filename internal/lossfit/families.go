package lossfit

import (
	"errors"
	"fmt"
	"math"
)

// §7 notes that some models' loss curves "cannot be described ... using our
// fitting function in Eqn (1), but they may be fitted using other functions
// based on the convergence speed of the optimization algorithm". This file
// adds a second family — exponential decay, the linear-convergence shape of
// strongly convex objectives and many well-tuned production models — and a
// selector that fits all families and keeps the best.

// Family identifies a convergence-curve family.
type Family int

const (
	// FamilyInverse is the paper's Eqn-1 SGD model l = 1/(β0·k+β1) + β2.
	FamilyInverse Family = iota
	// FamilyExponential is l = β1·exp(−β0·k) + β2 (linear convergence).
	FamilyExponential
)

// String implements fmt.Stringer.
func (f Family) String() string {
	switch f {
	case FamilyInverse:
		return "inverse"
	case FamilyExponential:
		return "exponential"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// FamilyModel is a fitted curve from any family, with the same prediction
// interface as the Eqn-1 Model.
type FamilyModel struct {
	Family     Family
	B0, B1, B2 float64
	MaxLoss    float64
	Residual   float64
}

// Loss evaluates the normalized curve at step k.
func (m FamilyModel) Loss(k float64) float64 {
	switch m.Family {
	case FamilyExponential:
		return m.B1*math.Exp(-m.B0*k) + m.B2
	default:
		den := m.B0*k + m.B1
		if den <= 0 {
			return 1 + m.B2
		}
		return 1/den + m.B2
	}
}

// RawLoss evaluates the curve in raw-loss units.
func (m FamilyModel) RawLoss(k float64) float64 { return m.Loss(k) * m.MaxLoss }

// Valid reports whether predictions are meaningful.
func (m FamilyModel) Valid() bool { return m.B0 > 0 && !math.IsNaN(m.B0) }

// StepsToConverge mirrors Model.StepsToConverge for any family.
func (m FamilyModel) StepsToConverge(threshold float64, window, consecutive int) (float64, error) {
	if !m.Valid() {
		return 0, errors.New("lossfit: model not fitted")
	}
	if threshold <= 0 || window <= 0 || consecutive <= 0 {
		return 0, errors.New("lossfit: invalid convergence arguments")
	}
	wf := float64(window)
	decrease := func(k float64) float64 { return m.Loss(k) - m.Loss(k+wf) }
	if decrease(1) < threshold {
		return wf * float64(consecutive), nil
	}
	lo, hi := 1.0, 2.0
	for decrease(hi) >= threshold {
		hi *= 2
		if hi > 1e12 {
			return 0, errors.New("lossfit: model does not converge under threshold")
		}
	}
	for i := 0; i < 200 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		if decrease(mid) >= threshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi + wf*float64(consecutive), nil
}

// FitExponential fits l = β1·exp(−β0·k) + β2 to the points. For a fixed β2
// the model is linear in log space: ln(l−β2) = ln β1 − β0·k, so — like the
// Eqn-1 fit — we grid-search the asymptote and solve the inner linear
// problem, scoring candidates by residual in loss space.
func FitExponential(points []Point, window int) (FamilyModel, error) {
	if len(points) < 4 {
		return FamilyModel{}, fmt.Errorf("lossfit: need at least 4 points, have %d", len(points))
	}
	cleaned, maxLoss := Preprocess(points, window)
	minLoss := math.Inf(1)
	for _, p := range cleaned {
		if p.Loss < minLoss {
			minLoss = p.Loss
		}
	}
	best := FamilyModel{Family: FamilyExponential, Residual: math.Inf(1), MaxLoss: maxLoss}
	const gridSteps = 40
	for g := 0; g <= gridSteps; g++ {
		b2 := minLoss * float64(g) / float64(gridSteps+1)
		m, ok := fitExpWithAsymptote(cleaned, b2)
		if !ok {
			continue
		}
		if m.Residual < best.Residual {
			m.MaxLoss = maxLoss
			best = m
		}
	}
	if math.IsInf(best.Residual, 1) {
		return FamilyModel{}, errors.New("lossfit: exponential fit failed")
	}
	return best, nil
}

// fitExpWithAsymptote solves the log-linear subproblem by ordinary least
// squares on (k, ln(l−β2)).
func fitExpWithAsymptote(cleaned []Point, b2 float64) (FamilyModel, bool) {
	var sk, sy, skk, sky float64
	n := 0
	for _, p := range cleaned {
		d := p.Loss - b2
		if d <= 1e-9 {
			continue
		}
		y := math.Log(d)
		sk += p.K
		sy += y
		skk += p.K * p.K
		sky += p.K * y
		n++
	}
	if n < 3 {
		return FamilyModel{}, false
	}
	nf := float64(n)
	den := nf*skk - sk*sk
	if den == 0 {
		return FamilyModel{}, false
	}
	slope := (nf*sky - sk*sy) / den
	intercept := (sy - slope*sk) / nf
	b0 := -slope
	b1 := math.Exp(intercept)
	if b0 <= 0 || b1 <= 0 {
		return FamilyModel{}, false
	}
	m := FamilyModel{Family: FamilyExponential, B0: b0, B1: b1, B2: b2}
	var ss float64
	for _, p := range cleaned {
		d := m.Loss(p.K) - p.Loss
		ss += d * d
	}
	m.Residual = math.Sqrt(ss / float64(len(cleaned)))
	return m, true
}

// FitBest fits every family and returns the one with the smallest residual —
// §7's "let the job owner provide the functions" made automatic.
func FitBest(points []Point, window int) (FamilyModel, error) {
	var best FamilyModel
	best.Residual = math.Inf(1)
	if inv, err := FitPoints(points, window); err == nil {
		best = FamilyModel{
			Family: FamilyInverse,
			B0:     inv.B0, B1: inv.B1, B2: inv.B2,
			MaxLoss: inv.MaxLoss, Residual: inv.Residual,
		}
	}
	if exp, err := FitExponential(points, window); err == nil && exp.Residual < best.Residual {
		best = exp
	}
	if math.IsInf(best.Residual, 1) {
		return FamilyModel{}, errors.New("lossfit: no family fits the data")
	}
	return best, nil
}

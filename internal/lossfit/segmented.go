package lossfit

import (
	"fmt"
	"math"
)

// SegmentedFitter implements the §7 "Convergence estimation" extension: for
// models whose learning rate drops at a predefined point (e.g. ResNet's
// ×0.1 step decay), the loss curve has a discontinuity that the single
// 1/(β0·k+β1)+β2 family cannot describe. The paper's remedy is to "treat the
// model training after learning rate adjustment as a new training job and
// restart online fitting" — this fitter detects such breaks automatically
// and fits only the current segment.
type SegmentedFitter struct {
	// DropFactor is the relative sudden loss decrease (vs the recent trend)
	// that is treated as a learning-rate event. Default 3: a step-to-step
	// drop more than 3× the recent average decrease starts a new segment.
	DropFactor float64
	// MinSegment is the minimum number of points before a break can be
	// declared, avoiding false restarts on early noise. Default 8.
	MinSegment int

	inner    *Fitter
	segments int
	lastK    float64
	lastLoss float64
	// recent step-to-step decreases, for the trend estimate
	recentDec []float64
}

// NewSegmentedFitter returns a fitter with default break detection.
func NewSegmentedFitter() *SegmentedFitter {
	return &SegmentedFitter{
		DropFactor: 3,
		MinSegment: 8,
		inner:      NewFitter(),
	}
}

// Segments reports how many fitting segments have been started (1 = no
// learning-rate event seen yet).
func (s *SegmentedFitter) Segments() int { return s.segments + 1 }

// Len reports the number of points in the current segment.
func (s *SegmentedFitter) Len() int { return s.inner.Len() }

// Add records one loss observation, starting a new segment if the point
// looks like a post-learning-rate-drop discontinuity.
func (s *SegmentedFitter) Add(k, loss float64) error {
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return fmt.Errorf("lossfit: invalid step %g", k)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return fmt.Errorf("lossfit: invalid loss %g", loss)
	}
	if s.inner.Len() >= s.minSegment() && s.lastLoss > 0 {
		dec := s.lastLoss - loss
		if trend := s.trend(); trend > 0 && dec > s.dropFactor()*trend {
			// Learning-rate event: restart fitting from here.
			s.inner = NewFitter()
			s.recentDec = nil
			s.segments++
		}
	}
	if s.lastLoss != 0 || s.inner.Len() > 0 {
		s.recentDec = append(s.recentDec, s.lastLoss-loss)
		if len(s.recentDec) > 10 {
			s.recentDec = s.recentDec[1:]
		}
	}
	s.lastK, s.lastLoss = k, loss
	return s.inner.Add(k, loss)
}

func (s *SegmentedFitter) minSegment() int {
	if s.MinSegment > 0 {
		return s.MinSegment
	}
	return 8
}

func (s *SegmentedFitter) dropFactor() float64 {
	if s.DropFactor > 0 {
		return s.DropFactor
	}
	return 3
}

// trend is the mean of the recent positive step-to-step decreases.
func (s *SegmentedFitter) trend() float64 {
	var sum float64
	n := 0
	for _, d := range s.recentDec {
		if d > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fit fits the model to the current segment only.
func (s *SegmentedFitter) Fit() (Model, error) { return s.inner.Fit() }

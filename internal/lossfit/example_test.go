package lossfit_test

import (
	"fmt"

	"optimus/internal/lossfit"
)

// ExampleFitter shows the §3.1 online convergence estimation: feed loss
// observations as training proceeds, fit the SGD model, and predict how many
// more steps the job needs until its per-epoch improvement stalls below the
// owner's threshold.
func ExampleFitter() {
	fitter := lossfit.NewFitter()
	for k := 1.0; k <= 30; k++ {
		loss := 1/(0.2*k+1.0) + 0.05 // the job's real (noise-free) curve
		if err := fitter.Add(k, loss); err != nil {
			panic(err)
		}
	}
	model, err := fitter.Fit()
	if err != nil {
		panic(err)
	}
	steps, err := model.StepsToConverge(0.001, 1, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted β0=%.2f; converges near step %.0f\n", model.B0, steps)
	// Output:
	// fitted β0=0.18; converges near step 72
}

package lossfit

import (
	"math"
	"testing"
)

// lrDropCurve simulates a ResNet-style schedule: one curve until epoch 50,
// then the learning rate drops and the loss falls onto a new, lower curve.
func lrDropCurve(k float64) float64 {
	if k < 50 {
		return 1/(0.05*k+1) + 0.30
	}
	return 1/(0.2*(k-49)+2) + 0.05
}

func TestSegmentedFitterDetectsLRDrop(t *testing.T) {
	s := NewSegmentedFitter()
	for k := 1.0; k <= 120; k++ {
		if err := s.Add(k, lrDropCurve(k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() != 2 {
		t.Fatalf("Segments = %d, want 2", s.Segments())
	}
	// The current segment's fit must describe the POST-drop curve.
	m, err := s.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{80, 100, 120} {
		want := lrDropCurve(k)
		got := m.RawLoss(k)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("RawLoss(%g) = %g, want ≈ %g", k, got, want)
		}
	}
	// A plain fitter over the whole history fits much worse near the end.
	plain := NewFitter()
	for k := 1.0; k <= 120; k++ {
		if err := plain.Add(k, lrDropCurve(k)); err != nil {
			t.Fatal(err)
		}
	}
	pm, err := plain.Fit()
	if err != nil {
		t.Fatal(err)
	}
	segErr := math.Abs(m.RawLoss(120) - lrDropCurve(120))
	plainErr := math.Abs(pm.RawLoss(120) - lrDropCurve(120))
	if segErr >= plainErr {
		t.Errorf("segmented error %g not below plain error %g", segErr, plainErr)
	}
}

func TestSegmentedFitterNoFalseRestart(t *testing.T) {
	// A smooth curve (no LR event) must stay in one segment even with noise.
	s := NewSegmentedFitter()
	for k := 1.0; k <= 100; k++ {
		loss := 1/(0.1*k+1) + 0.05
		if err := s.Add(k, loss); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() != 1 {
		t.Errorf("Segments = %d, want 1 for a smooth curve", s.Segments())
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
}

func TestSegmentedFitterValidation(t *testing.T) {
	s := NewSegmentedFitter()
	if err := s.Add(0, 1); err == nil {
		t.Error("accepted step 0")
	}
	if err := s.Add(1, math.Inf(1)); err == nil {
		t.Error("accepted infinite loss")
	}
}

func TestSegmentedFitterDefaults(t *testing.T) {
	s := &SegmentedFitter{inner: NewFitter()}
	if s.minSegment() != 8 || s.dropFactor() != 3 {
		t.Errorf("defaults = %d/%g, want 8/3", s.minSegment(), s.dropFactor())
	}
}

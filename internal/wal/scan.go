package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ScanResult summarizes one pass over a log directory.
type ScanResult struct {
	Records int    // records delivered to the callback
	LastSeq uint64 // sequence of the last valid record seen (0 if none)
	// Torn reports that the scan stopped at a damaged frame: a short read,
	// an impossible length, a CRC mismatch or a sequence gap. Everything
	// before TornOffset in TornSegment is valid; everything after is the
	// wreckage of a crash (or, for a live tailer, a leader mid-write).
	Torn        bool
	TornSegment string
	TornOffset  int64
}

// Scan replays every valid record in dir, in sequence order, through fn. A
// torn tail is not an error — the scan stops there and reports it in the
// result. fn returning an error aborts the scan and propagates.
func Scan(dir string, fn func(Record) error) (ScanResult, error) {
	return ScanFrom(dir, 0, fn)
}

// ScanFrom is Scan restricted to records with sequence > after. Whole
// segments below the cutoff are skipped without reading their frames.
func ScanFrom(dir string, after uint64, fn func(Record) error) (ScanResult, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return ScanResult{}, err
	}
	// Skip any segment whose successor starts at or below the cutoff: every
	// record in it has sequence < successor base ≤ after+1.
	first := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].base <= after+1 {
			first = i + 1
		}
	}
	return scanSegments(dir, segs[first:], after, fn)
}

// LastCheckpoint scans dir for the most recent TypeCheckpoint record and
// returns its sequence (0 when the log has none). Replays should start there.
func LastCheckpoint(dir string) (uint64, error) {
	var seq uint64
	_, err := Scan(dir, func(r Record) error {
		if r.Type == TypeCheckpoint {
			seq = r.Seq
		}
		return nil
	})
	return seq, err
}

// scanSegments drives decodeFrames over each segment in order, enforcing
// cross-segment sequence continuity. fn may be nil (pure validation scan).
func scanSegments(dir string, segs []segment, after uint64, fn func(Record) error) (ScanResult, error) {
	var res ScanResult
	var prev uint64 // last sequence seen across segments; 0 = none yet
	for _, seg := range segs {
		f, err := os.Open(filepath.Join(dir, seg.name))
		if err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		tornAt, err := decodeFrames(f, &prev, after, fn, &res)
		f.Close()
		if err != nil {
			return res, err
		}
		if tornAt >= 0 {
			res.Torn, res.TornSegment, res.TornOffset = true, seg.name, tornAt
			return res, nil
		}
	}
	return res, nil
}

// decodeFrames reads frames from r until EOF or damage. It returns the
// offset of the first damaged byte, or -1 when the segment is clean.
func decodeFrames(r io.Reader, prev *uint64, after uint64, fn func(Record) error, res *ScanResult) (int64, error) {
	var off int64
	var hdr [frameHeader]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return -1, nil
			}
			return off, nil // torn: partial header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n < frameMeta || n > maxFrameBody {
			return off, nil // torn: impossible length
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil // torn: partial body
		}
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(hdr[4:8]) {
			return off, nil // torn: corrupt body
		}
		seq := binary.BigEndian.Uint64(body[1:9])
		if *prev != 0 && seq != *prev+1 {
			return off, nil // torn: sequence gap
		}
		*prev = seq
		res.LastSeq = seq
		off += int64(frameHeader) + int64(n)
		if seq <= after {
			continue
		}
		if fn != nil {
			if err := fn(Record{Seq: seq, Type: Type(body[0]), Payload: body[frameMeta:]}); err != nil {
				return -1, err
			}
		}
		res.Records++
	}
}

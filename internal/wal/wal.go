// Package wal is a segmented, append-only write-ahead log: the durability
// layer that promotes optimusd from a process that loses every in-flight job
// on a crash into a control plane that can be killed -9 and replayed
// byte-identically (DESIGN.md §17).
//
// Records are typed, length-prefixed and CRC-framed:
//
//	uint32  body length (big endian)
//	uint32  IEEE CRC-32 of the body
//	body  = uint8 record type | uint64 sequence (big endian) | payload
//
// Sequence numbers are assigned by the log, start at 1 and increase by
// exactly 1 per record; a gap or CRC mismatch during a scan is treated as
// the torn tail of a crash and everything from that point on is ignored
// (and truncated away when the log is next opened for appending).
//
// The log is a directory of segment files named by the sequence number of
// their first record (%020d.wal). Appends roll to a new segment past
// SegmentBytes; Checkpoint starts a fresh segment with a checkpoint record
// (an application snapshot) and retires every older segment, bounding both
// disk use and replay time.
//
// Durability is a policy knob (per-record, grouped, off). Grouped is the
// serving default: AppendSync batches concurrent callers behind one fsync
// (classic group commit), so a burst of submissions pays ~one disk flush,
// not one per request, while every acked record is still durable before the
// ack.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"optimus/internal/obs"
)

// Type tags one record's payload schema. The concrete payloads live with the
// application (internal/serve); the log only frames and orders them.
type Type uint8

const (
	// TypeSubmit is one admitted job submission.
	TypeSubmit Type = 1
	// TypeCancel is one acknowledged cancellation.
	TypeCancel Type = 2
	// TypeProfile is a job's §3.2 pre-run profiling samples.
	TypeProfile Type = 3
	// TypeObserve is one interval's progress/speed/loss observation of a job.
	TypeObserve Type = 4
	// TypeDeploy is a §4 grant: a job's new deployment state.
	TypeDeploy Type = 5
	// TypeComplete marks a job converged.
	TypeComplete Type = 6
	// TypeFault is a straggler-injection state change.
	TypeFault Type = 7
	// TypeRound commits one scheduling interval (round counter + sim clock).
	TypeRound Type = 8
	// TypeMembership records a control-plane membership change (leader
	// election, follower takeover) with its lease term.
	TypeMembership Type = 9
	// TypeCheckpoint carries a full application snapshot; it is always the
	// first record of its segment and retires every earlier segment.
	TypeCheckpoint Type = 10
)

// String implements fmt.Stringer with the spelling used by optimus-trace wal.
func (t Type) String() string {
	switch t {
	case TypeSubmit:
		return "submit"
	case TypeCancel:
		return "cancel"
	case TypeProfile:
		return "profile"
	case TypeObserve:
		return "observe"
	case TypeDeploy:
		return "deploy"
	case TypeComplete:
		return "complete"
	case TypeFault:
		return "fault"
	case TypeRound:
		return "round"
	case TypeMembership:
		return "membership"
	case TypeCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Record is one decoded log entry. Payload aliases the scan buffer only for
// the duration of the scan callback; callers retaining it must copy.
type Record struct {
	Seq     uint64
	Type    Type
	Payload []byte
}

// FsyncPolicy selects when appended records reach stable storage.
type FsyncPolicy int

const (
	// FsyncGroup makes AppendSync durable via group commit: concurrent
	// callers share one fsync. Plain Append is buffered until the next group
	// flush. The serving default.
	FsyncGroup FsyncPolicy = iota
	// FsyncEach flushes and fsyncs after every single append.
	FsyncEach
	// FsyncOff never fsyncs (the OS flushes whenever it likes); AppendSync
	// degrades to Append. For benchmarks and tests only.
	FsyncOff
)

// String implements fmt.Stringer with the -fsync flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncGroup:
		return "group"
	case FsyncEach:
		return "each"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "group":
		return FsyncGroup, nil
	case "each":
		return FsyncEach, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want each, group or off)", s)
}

// Options parameterizes Open. The zero value of every field but Dir has a
// sensible default.
type Options struct {
	Dir          string
	Fsync        FsyncPolicy
	SegmentBytes int64 // roll threshold; default 4 MiB
	// Flight, when set, receives black-box events for torn-tail repairs,
	// segment rolls, checkpoints and I/O errors (nil is fine: every use is
	// nil-receiver safe).
	Flight *obs.FlightRecorder
}

const (
	defaultSegmentBytes = 4 << 20
	// frameHeader is length + CRC; frameMeta is type + seq inside the body.
	frameHeader = 8
	frameMeta   = 9
	// maxFrameBody bounds a single record (checkpoint snapshots included) so
	// a corrupt length prefix can never drive a giant allocation.
	maxFrameBody = 1 << 26
	segSuffix    = ".wal"
)

// ErrClosed is returned by appends on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Stats is a point-in-time view of the log's counters, exported by optimusd
// as the optimus_wal_* Prometheus family.
type Stats struct {
	Appends     uint64 // records appended this process
	Fsyncs      uint64 // fsync syscalls issued
	Bytes       uint64 // bytes appended this process
	Segments    int    // live segment files
	LastSeq     uint64 // last assigned sequence number
	DurableSeq  uint64 // last sequence known to be on stable storage
	Checkpoints uint64 // checkpoint/compaction cycles this process
}

// Log is an open, appendable write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when synced advances or the log closes
	f       *os.File
	buf     []byte // pending bytes not yet written to f
	seq     uint64 // last assigned sequence
	synced  uint64 // last sequence known durable
	syncing bool   // one group fsync in flight
	curBase uint64 // first sequence of the current segment
	curSize int64  // bytes in the current segment (including pending)
	err     error  // sticky I/O error; fails all later appends
	closed  bool

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	bytes       atomic.Uint64
	checkpoints atomic.Uint64
}

// Open scans dir (creating it if needed), truncates any torn tail left by a
// crash, and returns a log positioned to append after the last valid record.
// Segments past a tear are unreachable by sequence and are deleted.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	res, err := scanSegments(opts.Dir, segs, 0, nil)
	if err != nil {
		return nil, err
	}
	if res.Torn {
		// Crash repair: cut the torn segment back to its last valid frame and
		// drop every later segment (unreachable past the sequence gap).
		opts.Flight.Record("wal", obs.SevWarn, "torn tail truncated",
			obs.KS("segment", res.TornSegment), obs.KI("offset", res.TornOffset),
			obs.KU("lastSeq", res.LastSeq))
		if err := os.Truncate(filepath.Join(opts.Dir, res.TornSegment), res.TornOffset); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		drop := false
		for _, s := range segs {
			if drop {
				if err := os.Remove(filepath.Join(opts.Dir, s.name)); err != nil {
					return nil, fmt.Errorf("wal: dropping post-tear segment: %w", err)
				}
			}
			if s.name == res.TornSegment {
				drop = true
			}
		}
		segs, err = listSegments(opts.Dir)
		if err != nil {
			return nil, err
		}
	}
	l := &Log{opts: opts, seq: res.LastSeq, synced: res.LastSeq}
	l.cond = sync.NewCond(&l.mu)
	if len(segs) == 0 {
		if err := l.newSegmentLocked(l.seq + 1); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	path := filepath.Join(opts.Dir, last.name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f, l.curBase, l.curSize = f, last.base, st.Size()
	return l, nil
}

// newSegmentLocked closes the current segment (if any) and starts a new one
// whose first record will carry sequence base. Callers hold l.mu.
func (l *Log) newSegmentLocked(base uint64) error {
	if l.f != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		if l.opts.Fsync != FsyncOff {
			if err := l.f.Sync(); err != nil {
				return err
			}
			l.fsyncs.Add(1)
			l.synced = l.seq
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(base)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		// Sticky: a log that cannot open its next segment cannot honor any
		// later durability promise either — fail-stop the whole log so the
		// readiness plane reports it down instead of limping.
		l.err = fmt.Errorf("wal: %w", err)
		l.opts.Flight.Record("wal", obs.SevError, "segment create failed",
			obs.KU("base", base), obs.KS("err", err.Error()))
		return l.err
	}
	l.opts.Flight.Record("wal", obs.SevDebug, "segment roll", obs.KU("base", base))
	l.f, l.curBase, l.curSize = f, base, 0
	return nil
}

// flushLocked writes the pending buffer to the segment file.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = err
		l.opts.Flight.Record("wal", obs.SevError, "segment write failed",
			obs.KU("base", l.curBase), obs.KS("err", err.Error()))
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// appendLocked frames one record into the pending buffer, rolling segments
// as needed, and returns its sequence.
func (l *Log) appendLocked(t Type, payload []byte) (uint64, error) {
	switch {
	case l.closed:
		return 0, ErrClosed
	case l.err != nil:
		return 0, l.err
	case len(payload) > maxFrameBody-frameMeta:
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds frame limit", len(payload))
	}
	// Roll before the record so a record never spans segments. Deferred
	// while a group fsync is in flight: the fsync targets the current file.
	if l.curSize >= l.opts.SegmentBytes && !l.syncing {
		if err := l.newSegmentLocked(l.seq + 1); err != nil {
			return 0, err
		}
	}
	l.seq++
	var meta [frameHeader + frameMeta]byte
	body := frameMeta + len(payload)
	binary.BigEndian.PutUint32(meta[0:4], uint32(body))
	meta[8] = byte(t)
	binary.BigEndian.PutUint64(meta[9:17], l.seq)
	crc := crc32.ChecksumIEEE(meta[8:17])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.BigEndian.PutUint32(meta[4:8], crc)
	l.buf = append(l.buf, meta[:]...)
	l.buf = append(l.buf, payload...)
	l.curSize += int64(frameHeader + body)
	l.appends.Add(1)
	l.bytes.Add(uint64(frameHeader + body))
	return l.seq, nil
}

// syncToLocked blocks until sequence s is durable, driving or joining a
// group commit. The mutex is released during the fsync syscall so concurrent
// appenders keep filling the next group. Callers hold l.mu.
func (l *Log) syncToLocked(s uint64) error {
	for l.synced < s {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			l.cond.Wait() // join the in-flight group, re-check after
			continue
		}
		l.syncing = true
		if err := l.flushLocked(); err != nil {
			l.syncing = false
			l.cond.Broadcast()
			return err
		}
		target, f := l.seq, l.f
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		l.fsyncs.Add(1)
		l.syncing = false
		if err != nil {
			l.err = err
			l.opts.Flight.Record("wal", obs.SevError, "fsync failed",
				obs.KU("target", target), obs.KS("err", err.Error()))
		} else if target > l.synced {
			l.synced = target
		}
		l.cond.Broadcast()
	}
	return nil
}

// Append frames one record without waiting for durability. Under FsyncEach
// it still flushes and fsyncs (the policy is per-record, whoever appends);
// under FsyncGroup/FsyncOff it returns as soon as the record is buffered.
func (l *Log) Append(t Type, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, err := l.appendLocked(t, payload)
	if err != nil {
		return 0, err
	}
	if l.opts.Fsync == FsyncEach {
		return s, l.syncToLocked(s)
	}
	return s, nil
}

// AppendSync frames one record and makes it durable per the fsync policy
// before returning: immediately under FsyncEach, behind at most one shared
// group flush under FsyncGroup, not at all under FsyncOff.
func (l *Log) AppendSync(t Type, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, err := l.appendLocked(t, payload)
	if err != nil {
		return 0, err
	}
	if l.opts.Fsync == FsyncOff {
		return s, nil
	}
	return s, l.syncToLocked(s)
}

// Sync flushes and fsyncs everything appended so far (even under FsyncOff).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		l.opts.Flight.Record("wal", obs.SevError, "fsync failed",
			obs.KU("target", l.seq), obs.KS("err", err.Error()))
		return err
	}
	l.fsyncs.Add(1)
	l.synced = l.seq
	return nil
}

// Checkpoint writes snapshot as a TypeCheckpoint record opening a brand-new
// segment, fsyncs it, and deletes every older segment: replay afterwards
// starts from the snapshot instead of the beginning of history. Returns the
// checkpoint record's sequence.
func (l *Log) Checkpoint(snapshot []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	// Wait out any in-flight group fsync: rolling the file under it would
	// sync a closed descriptor.
	for l.syncing {
		l.cond.Wait()
	}
	if err := l.newSegmentLocked(l.seq + 1); err != nil {
		return 0, err
	}
	s, err := l.appendLocked(TypeCheckpoint, snapshot)
	if err != nil {
		return 0, err
	}
	if err := l.flushLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		l.err = err
		return 0, err
	}
	l.fsyncs.Add(1)
	l.synced = l.seq
	// The checkpoint is durable; everything before its segment is redundant.
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return 0, err
	}
	for _, seg := range segs {
		if seg.base < l.curBase {
			if err := os.Remove(filepath.Join(l.opts.Dir, seg.name)); err != nil {
				return 0, fmt.Errorf("wal: retiring segment: %w", err)
			}
		}
	}
	l.checkpoints.Add(1)
	l.opts.Flight.Record("wal", obs.SevInfo, "checkpoint",
		obs.KU("seq", s), obs.KI("bytes", int64(len(snapshot))))
	return s, nil
}

// LastSeq returns the last assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the log's sticky I/O error, if any: once set, every later
// append fails with it. The daemon's readiness plane polls this to report
// the WAL component down.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Dir returns the log's directory (where fail-stop debug bundles land).
func (l *Log) Dir() string { return l.opts.Dir }

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seq, synced := l.seq, l.synced
	l.mu.Unlock()
	segs, _ := listSegments(l.opts.Dir)
	return Stats{
		Appends:     l.appends.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Bytes:       l.bytes.Load(),
		Segments:    len(segs),
		LastSeq:     seq,
		DurableSeq:  synced,
		Checkpoints: l.checkpoints.Load(),
	}
}

// Close flushes, fsyncs (unless FsyncOff) and closes the log. Waiters on an
// in-flight group commit are released.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	l.closed = true
	l.cond.Broadcast()
	if err := l.flushLocked(); err != nil {
		l.f.Close()
		return err
	}
	if l.opts.Fsync != FsyncOff && l.err == nil {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return err
		}
		l.fsyncs.Add(1)
		l.synced = l.seq
	}
	return l.f.Close()
}

// segment is one discovered segment file.
type segment struct {
	name string
	base uint64 // sequence of its first record, from the file name
}

func segName(base uint64) string { return fmt.Sprintf("%020d%s", base, segSuffix) }

// listSegments returns dir's segment files sorted by base sequence. Files
// whose names don't parse are ignored (LEASE files, editor droppings).
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != segSuffix {
			continue
		}
		var base uint64
		if _, err := fmt.Sscanf(name, "%d", &base); err != nil {
			continue
		}
		segs = append(segs, segment{name: name, base: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

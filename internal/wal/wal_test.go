package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect replays dir into memory, copying payloads (they alias the scan
// buffer).
func collect(t *testing.T, dir string) ([]Record, ScanResult) {
	t.Helper()
	var recs []Record
	res, err := Scan(dir, func(r Record) error {
		recs = append(recs, Record{Seq: r.Seq, Type: r.Type,
			Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return recs, res
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 100)
	for i := range want {
		want[i] = []byte(fmt.Sprintf(`{"i":%d}`, i))
		seq, err := l.Append(Type(1+i%9), want[i])
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq %d, want %d", seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, dir)
	if res.Torn {
		t.Fatalf("unexpected tear: %+v", res)
	}
	if len(recs) != len(want) || res.LastSeq != uint64(len(want)) {
		t.Fatalf("got %d records lastSeq %d, want %d", len(recs), res.LastSeq, len(want))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Type != Type(1+i%9) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := l.Append(TypeObserve, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs, res := collect(t, dir)
	if len(recs) != 30 || res.LastSeq != 30 {
		t.Fatalf("got %d records lastSeq %d after reopens", len(recs), res.LastSeq)
	}
}

func TestSegmentRollAndScanFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := l.Append(TypeObserve, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	recs, res := collect(t, dir)
	if len(recs) != n || res.Torn {
		t.Fatalf("full scan got %d records torn=%v", len(recs), res.Torn)
	}
	// ScanFrom must deliver exactly the suffix, regardless of segment cuts.
	for _, after := range []uint64{0, 1, 50, 199, 200, 500} {
		var got []uint64
		res, err := ScanFrom(dir, after, func(r Record) error {
			got = append(got, r.Seq)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if after < n {
			want = n - int(after)
		}
		if len(got) != want || res.Records != want {
			t.Fatalf("ScanFrom(%d): %d records, want %d", after, len(got), want)
		}
		if want > 0 && (got[0] != after+1 || got[len(got)-1] != n) {
			t.Fatalf("ScanFrom(%d): range [%d,%d]", after, got[0], got[len(got)-1])
		}
	}
}

// TestTornTailTruncation corrupts the log at every suffix boundary and
// checks that a scan never fails and Open repairs to exactly the valid
// prefix.
func TestTornTailTruncation(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := l.Append(TypeSubmit, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		return dir, filepath.Join(dir, segs[0].name)
	}

	dir, seg := build(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := len(data) / 20

	for cut := len(data) - 1; cut > len(data)-2*frame; cut-- {
		dir, seg = build(t)
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, res := collect(t, dir)
		if wantTorn := cut%frame != 0; res.Torn != wantTorn {
			t.Fatalf("cut=%d: torn=%v, want %v", cut, res.Torn, wantTorn)
		}
		// Open must truncate to a clean log holding every untouched record.
		l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wantRecs := cut / frame
		if got := l.LastSeq(); got != uint64(wantRecs) {
			t.Fatalf("cut=%d: LastSeq %d, want %d", cut, got, wantRecs)
		}
		// And the log must be appendable right where it left off.
		if _, err := l.Append(TypeRound, []byte("resumed")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		recs, res := collect(t, dir)
		if res.Torn || len(recs) != wantRecs+1 {
			t.Fatalf("cut=%d: after repair got %d records torn=%v", cut, len(recs), res.Torn)
		}
	}
}

// TestBitFlipDetected flips one byte mid-log: the scan must stop cleanly at
// the flipped frame, never deliver garbage.
func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(TypeSubmit, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	frame := len(data) / 10
	data[5*frame+frameHeader+frameMeta+3] ^= 0xff // payload byte of record 6
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, dir)
	if !res.Torn || len(recs) != 5 || res.LastSeq != 5 {
		t.Fatalf("got %d records lastSeq %d torn=%v, want 5/5/true", len(recs), res.LastSeq, res.Torn)
	}
}

func TestCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncOff, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := l.Append(TypeObserve, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	ckptSeq, err := l.Checkpoint([]byte(`{"snapshot":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if ckptSeq != 51 {
		t.Fatalf("checkpoint seq %d, want 51", ckptSeq)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(TypeObserve, []byte("post")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, res := collect(t, dir)
	if res.Torn {
		t.Fatalf("tear after compaction: %+v", res)
	}
	if len(recs) != 6 || recs[0].Type != TypeCheckpoint || recs[0].Seq != 51 {
		t.Fatalf("compacted log holds %d records, first %v@%d", len(recs), recs[0].Type, recs[0].Seq)
	}
	last, err := LastCheckpoint(dir)
	if err != nil || last != 51 {
		t.Fatalf("LastCheckpoint = %d, %v", last, err)
	}
	// The compacted log must reopen and keep appending.
	l2, err := Open(Options{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := l2.Append(TypeRound, []byte("x")); err != nil || seq != 57 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
	l2.Close()
}

// TestGroupCommitConcurrent hammers AppendSync from many goroutines: every
// record must land durably with a unique sequence, and group commit must
// batch (fewer fsyncs than appends).
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 16, 50
	var wg sync.WaitGroup
	seqs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.AppendSync(TypeSubmit, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("AppendSync: %v", err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.DurableSeq != workers*per {
		t.Fatalf("durable %d, want %d", st.DurableSeq, workers*per)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("no batching: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	seen := make(map[uint64]bool)
	for _, ws := range seqs {
		for _, s := range ws {
			if seen[s] {
				t.Fatalf("duplicate sequence %d", s)
			}
			seen[s] = true
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, res := collect(t, dir)
	if res.Torn || len(recs) != workers*per {
		t.Fatalf("scan got %d records torn=%v", len(recs), res.Torn)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncEach, FsyncGroup, FsyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Fsync: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := l.AppendSync(TypeSubmit, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			st := l.Stats()
			switch pol {
			case FsyncEach:
				if st.Fsyncs < 10 {
					t.Fatalf("each: %d fsyncs for 10 appends", st.Fsyncs)
				}
			case FsyncOff:
				if st.Fsyncs != 0 {
					t.Fatalf("off: %d fsyncs", st.Fsyncs)
				}
				if st.DurableSeq != 0 {
					t.Fatalf("off: durable %d without a Sync", st.DurableSeq)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if recs, res := collect(t, dir); res.Torn || len(recs) != 10 {
				t.Fatalf("scan got %d torn=%v", len(recs), res.Torn)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncEach, FsyncGroup, FsyncOff} {
		got, err := ParseFsyncPolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("round trip %v: %v, %v", pol, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("always"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(TypeCheckpoint, make([]byte, maxFrameBody)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the scanner as a segment file: the
// decoder must never panic, must stop cleanly at the first damaged frame,
// and Open's crash repair must leave a log whose scan is tear-free and whose
// surviving records are exactly the valid prefix of the input.
func FuzzWALDecode(f *testing.F) {
	// Seed with a genuine log prefix plus adversarial shapes.
	dir := f.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(TypeObserve, []byte(`{"id":1,"k":2.5}`)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := listSegments(dir)
	valid, _ := os.ReadFile(filepath.Join(dir, segs[0].name))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		var first []Record
		res, err := Scan(dir, func(r Record) error {
			first = append(first, Record{Seq: r.Seq, Type: r.Type,
				Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			t.Fatalf("Scan errored (should report tears, not fail): %v", err)
		}
		// Delivered sequences must be contiguous (a valid frame sequence can
		// start anywhere — the front of the file may itself be sheared off).
		if len(first) > 0 && res.LastSeq != first[0].Seq+uint64(len(first))-1 {
			t.Fatalf("scan delivered %d records ending at %d, first %d",
				len(first), res.LastSeq, first[0].Seq)
		}
		if res.Torn && res.TornOffset > int64(len(data)) {
			t.Fatalf("torn offset %d beyond input %d", res.TornOffset, len(data))
		}

		// Crash repair: Open must truncate to the valid prefix and leave a
		// log that scans clean with the identical records.
		l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("Open on damaged log: %v", err)
		}
		if got := l.LastSeq(); got != res.LastSeq {
			t.Fatalf("repaired LastSeq %d, want %d", got, res.LastSeq)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var second []Record
		res2, err := Scan(dir, func(r Record) error {
			second = append(second, Record{Seq: r.Seq, Type: r.Type,
				Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil || res2.Torn {
			t.Fatalf("post-repair scan: err=%v torn=%v", err, res2.Torn)
		}
		if len(second) != len(first) {
			t.Fatalf("repair changed record count: %d -> %d", len(first), len(second))
		}
		for i := range second {
			if second[i].Seq != first[i].Seq || second[i].Type != first[i].Type ||
				!bytes.Equal(second[i].Payload, first[i].Payload) {
				t.Fatalf("record %d changed across repair", i)
			}
		}
	})
}

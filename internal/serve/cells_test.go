package serve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"optimus/internal/cluster"
)

// TestMultiCellDaemon boots a daemon on the sharded multi-scheduler and
// checks the full online path: jobs run, /v1/cluster carries per-cell
// stats, and /metrics exports the cell families.
func TestMultiCellDaemon(t *testing.T) {
	d, err := New(Config{
		Cluster: cluster.Uniform(8, cluster.Resources{
			cluster.CPU: 32, cluster.Memory: 128, cluster.GPU: 4, cluster.Bandwidth: 10,
		}),
		Seed:  7,
		Cells: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(d.policy.Name, "cells-") {
		t.Fatalf("policy %q, want cells-*", d.policy.Name)
	}

	for _, model := range []string{"resnet-50", "inception-bn", "seq2seq"} {
		submit(t, d, SubmitRequest{Model: model, Mode: "async",
			Threshold: 0.01, Downscale: 1})
	}
	for i := 0; i < 3; i++ {
		d.Step()
	}

	st := d.Cluster()
	if st.Cells == nil {
		t.Fatal("ClusterStatus.Cells missing under -cells 4")
	}
	if st.Cells.Cells != 4 || len(st.Cells.PerCell) != 4 {
		t.Fatalf("cells stats shape wrong: %+v", st.Cells)
	}
	if st.Cells.Commits == 0 {
		t.Fatal("no commits after 3 rounds with running jobs")
	}
	var jobs int
	for _, cs := range st.Cells.PerCell {
		jobs += cs.Jobs
	}
	if jobs != 3 {
		t.Fatalf("per-cell jobs sum to %d, want 3", jobs)
	}

	rec := httptest.NewRecorder()
	d.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"optimus_cell_commits_total",
		`optimusd_cell_jobs{cell="0"}`,
		`optimusd_cell_jobs{cell="3"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestSingleCellConfigUsesSingleEngine pins that -cells 1 (or unset) keeps
// the plain single-engine policy: the sharded layer must cost nothing until
// it is asked for.
func TestSingleCellConfigUsesSingleEngine(t *testing.T) {
	for _, n := range []int{0, 1} {
		d, err := New(Config{Cluster: cluster.Testbed(), Cells: n})
		if err != nil {
			t.Fatal(err)
		}
		if d.cells != nil || d.policy.Name != "optimus" {
			t.Fatalf("Cells=%d: policy %q cells=%v, want single engine", n, d.policy.Name, d.cells)
		}
		st := d.Cluster()
		if st.Cells != nil {
			t.Fatalf("Cells=%d: ClusterStatus.Cells should be omitted", n)
		}
	}
}

// Package serve is the online scheduler daemon behind cmd/optimusd: the
// paper's Optimus run as a long-lived service rather than a batch replay.
// Jobs arrive over HTTP, are admitted into a concurrency-safe registry,
// profiled (§3.2 pre-run sampling), and rescheduled every interval by the
// same §4 allocator/placer kernels and §3 lossfit/speedfit estimators the
// simulator drives — but on a real-or-scaled wall-clock tick instead of a
// replayed trace. Execution physics are the workload package's ground-truth
// models, so the daemon is a live cluster emulator: submissions, allocation,
// placement, progress, convergence and cancellation all happen while the
// process serves traffic.
//
// The HTTP surface (see api.go):
//
//	POST   /v1/jobs              submit (admission-controlled)
//	GET    /v1/jobs              list
//	GET    /v1/jobs/{id}         status: fitted loss curve, remaining-epoch
//	                             estimate, current (PS, workers) allocation
//	GET    /v1/jobs/{id}/explain decision audit: every §4.1 grant and §4.2
//	                             placement recorded for the job (needs -trace)
//	DELETE /v1/jobs/{id}         cancel with resource release
//	GET    /v1/cluster           per-node utilization
//	GET    /v1/events            SSE stream of scheduler decisions
//	GET    /v1/trace             scheduler spans as Chrome trace-event JSON
//	                             (needs -trace; open in Perfetto)
//	GET    /metrics              Prometheus text format, including scheduler
//	                             latency histograms
//	GET    /healthz              liveness
//
// Serving-path concurrency (DESIGN.md §16): the registry is sharded by job
// ID with per-shard locks, job and cluster statuses are immutable snapshots
// swapped in atomically (reads never block on the scheduler), and the SSE
// broker never blocks on slow subscribers. The engine mutex serializes
// scheduling rounds only; it is not on any request path.
//
// Graceful shutdown writes a JSON snapshot of all job state (snapshot.go);
// a daemon started with -restore resumes every job with its fitted model
// state and progress intact.
package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/metrics"
	"optimus/internal/obs"
	"optimus/internal/sim"
	"optimus/internal/speedfit"
	"optimus/internal/wal"
	"optimus/internal/workload"
)

// Config parameterizes the daemon. The zero value of every field has a
// sensible default filled in by New.
type Config struct {
	Cluster *cluster.Cluster // required

	// Interval is the simulated seconds of training each scheduling round
	// advances (the paper's 10-minute interval). Default 600.
	Interval float64
	// Tick is the wall-clock period between scheduling rounds in Run.
	// Tick == Interval·time.Second is real time; smaller is scaled time.
	// Default 1s (600× speedup at the default Interval).
	Tick time.Duration

	Seed int64 // default 1

	// Estimation behaviour, mirroring sim.Config.
	PreRunSamples         int     // §3.2 profiling runs per job (default 5)
	SpeedNoise, LossNoise float64 // relative observation noise (default 0.03)
	PriorEpochs           float64 // beginning-state convergence prior (default 80)
	PriorityFactor        float64 // §4.1 damping (default 0.95)

	// Scaling overhead charged when a running job's configuration changes
	// (§5.4): a fixed pause plus a per-task term, in simulated seconds.
	ScalingBase, ScalingPerTask float64

	// Stragglers: per running job per round, probability that one worker
	// degrades to StragglerSlowdown speed (§5.2). The Optimus policy
	// replaces the straggler after one detection round. Zero disables.
	StragglerProb     float64
	StragglerSlowdown float64 // default 0.5

	// Cells, when > 1, runs the sharded shared-state multi-scheduler
	// (internal/cells) instead of the single-engine kernels: the cluster is
	// split into Cells stripes, each scheduling in parallel against a
	// snapshot of a shared store with optimistic conflict-aware commits.
	// Per-cell stats appear in GET /v1/cluster and /metrics. Default 1.
	Cells int

	// MaxJobs is the admission-control cap on live (non-terminal) jobs;
	// submissions beyond it are rejected with 429. Default 4096.
	MaxJobs int

	// EventBuffer is the SSE ring size: how many past scheduler decisions a
	// late subscriber can replay. Default 4096.
	EventBuffer int

	// WALCheckpointRounds is how many scheduling rounds pass between
	// snapshot checkpoints on an attached WAL (wal.go): each checkpoint
	// anchors replay and retires every earlier segment. Default 512;
	// negative disables periodic checkpoints (graceful shutdown still
	// writes one). Ignored without AttachWAL.
	WALCheckpointRounds int

	// Trace enables the internal/obs observability layer: per-round span
	// trees (exported as Chrome trace-event JSON at GET /v1/trace) and the
	// per-grant/per-placement decision audit log behind
	// GET /v1/jobs/{id}/explain. Off by default; both endpoints then return
	// 404 and the scheduling loop pays no tracing cost.
	Trace bool
	// TraceBuffer / AuditBuffer size the span and audit-event rings.
	// Defaults obs.DefaultSpanBuffer / obs.DefaultAuditBuffer.
	TraceBuffer, AuditBuffer int

	// Flight is the always-on black-box flight recorder fed by the engine
	// loop, WAL, HA and SSE drop paths, dumped by GET /debug/bundle. Unlike
	// Trace it is on by default (the record path is lock-light and
	// allocation-free): when nil, New creates one of FlightBuffer capacity.
	// Pass a shared recorder so daemon-external components (the lease
	// renewer, the follower tailer) land in the same ring.
	Flight *obs.FlightRecorder
	// FlightBuffer sizes the ring New creates when Flight is nil. Default
	// obs.DefaultFlightBuffer.
	FlightBuffer int

	// EngineStaleAfter bounds the engine readiness check in GET /readyz: a
	// leader whose last scheduling round is older than this is not ready.
	// Default 10×Tick.
	EngineStaleAfter time.Duration
	// MaxFollowerLag bounds the follower readiness check: a follower more
	// than this many WAL records behind the leader is not ready. Default 64.
	MaxFollowerLag uint64

	// SLO targets behind the optimus_slo_* burn-rate gauges and the "slo"
	// block of GET /v1/cluster. SLOOverrunTarget is the tolerated fraction
	// of scheduling rounds that outlast the tick (default 0.01);
	// SLOAPILatencyTarget is the per-request latency objective (default
	// 100ms); SLOAPIErrorBudget is the tolerated fraction of requests that
	// are slow or 5xx (default 0.01).
	SLOOverrunTarget    float64
	SLOAPILatencyTarget time.Duration
	SLOAPIErrorBudget   float64
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 600
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PreRunSamples <= 0 {
		c.PreRunSamples = 5
	}
	if c.SpeedNoise == 0 {
		c.SpeedNoise = 0.03
	}
	if c.LossNoise == 0 {
		c.LossNoise = 0.03
	}
	if c.PriorEpochs <= 0 {
		c.PriorEpochs = 80
	}
	if c.PriorityFactor <= 0 {
		c.PriorityFactor = 0.95
	}
	if c.StragglerSlowdown <= 0 || c.StragglerSlowdown > 1 {
		c.StragglerSlowdown = 0.5
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.WALCheckpointRounds == 0 {
		c.WALCheckpointRounds = 512
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 4096
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = obs.DefaultSpanBuffer
	}
	if c.AuditBuffer <= 0 {
		c.AuditBuffer = obs.DefaultAuditBuffer
	}
	if c.FlightBuffer <= 0 {
		c.FlightBuffer = obs.DefaultFlightBuffer
	}
	if c.EngineStaleAfter <= 0 {
		c.EngineStaleAfter = 10 * c.Tick
	}
	if c.MaxFollowerLag == 0 {
		c.MaxFollowerLag = 64
	}
	if c.SLOOverrunTarget <= 0 {
		c.SLOOverrunTarget = 0.01
	}
	if c.SLOAPILatencyTarget <= 0 {
		c.SLOAPILatencyTarget = 100 * time.Millisecond
	}
	if c.SLOAPIErrorBudget <= 0 {
		c.SLOAPIErrorBudget = 0.01
	}
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// StatePending: admitted, not yet seen by a scheduling round.
	StatePending JobState = "pending"
	// StateWaiting: seen by the scheduler but currently without tasks
	// (allocation starved or placement failed).
	StateWaiting JobState = "waiting"
	// StateRunning: tasks deployed, training in progress.
	StateRunning JobState = "running"
	// StateDone: converged.
	StateDone JobState = "done"
	// StateCancelled: cancelled by the owner; resources released.
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state can never change again.
func (s JobState) terminal() bool { return s == StateDone || s == StateCancelled }

// job is the daemon's full view of one submitted job. Field ownership is
// split between two locks so cancels and status reads never wait on a
// scheduling round:
//
//   - spec, submittedWall, totalEpochs are immutable after admission.
//   - state, placed, alloc, spread, nodes are the deployment fields, guarded
//     by the job's registry shard lock; both the engine and Cancel mutate
//     them under it.
//   - progress, doneAt, profiled, lossFit, speedEst, lossObs, straggling are
//     estimation/physics state owned by the engine, guarded by the engine
//     mutex (Daemon.mu); the serving path never reads them directly.
//   - status is the job's read-mostly snapshot: an immutable JobStatus (plus
//     a lazily cached JSON encoding) republished on every state change. All
//     reads go through it, lock-free.
type job struct {
	spec          workload.JobSpec
	submittedWall time.Time

	// shard-guarded deployment fields
	state  JobState
	alloc  core.Allocation
	spread workload.TaskSpread
	nodes  []string
	placed bool

	// engine-guarded physics/estimation fields
	totalEpochs float64 // ground-truth epochs to convergence (physics)
	progress    float64 // epochs completed
	doneAt      float64 // simulated completion time
	profiled    bool
	lossFit     *lossfit.Fitter
	speedEst    *speedfit.Estimator
	// lossObs retains the observations fed to lossFit so snapshots can
	// rebuild the fitter exactly; capped at maxLossObs.
	lossObs    []lossfit.Point
	straggling bool

	// status is the atomically swapped read-mostly view (api.go).
	status atomic.Pointer[statusSnap]
}

const maxLossObs = 512

// arrival is one queued Submit→engine handoff: the metrics recorder is not
// synchronized, so submissions enqueue here and the engine (or a /metrics
// scrape, which holds the engine mutex anyway) drains into the recorder.
type arrival struct {
	id int
	t  float64
}

// Daemon owns the job registry, the cluster state and the scheduling loop.
// All methods are safe for concurrent use.
type Daemon struct {
	cfg    Config
	policy sim.Policy
	cells  *cells.MultiScheduler // non-nil only when cfg.Cells > 1
	bus    *eventBus
	// tracer/audit are non-nil only when cfg.Trace is set; every use is
	// nil-receiver-safe, so the disabled daemon skips the whole layer.
	tracer *obs.Tracer
	audit  *obs.AuditLog
	// flight is the always-on black-box recorder (health.go, bundle.go).
	flight *obs.FlightRecorder

	// reg is the sharded job registry; see registry.go and the field
	// ownership protocol on job.
	reg registry

	// Serving-path state: everything the HTTP handlers touch on their hot
	// paths is atomic or shard-guarded — never behind the engine mutex.
	nextID      atomic.Int64 // last assigned job ID
	live        atomic.Int64 // non-terminal jobs, for admission control
	rejected    atomic.Int64
	cancelledN  atomic.Int64
	simNow      atomic.Uint64 // Float64bits of the simulated clock
	roundsN     atomic.Int64
	overruns    atomic.Int64 // Run ticks whose Step outlasted cfg.Tick
	clusterSnap atomic.Pointer[clusterSnapshot]
	apiHist     obs.AtomicHistogram // API latency, written lock-free
	apiSlow     atomic.Int64        // API requests over SLOAPILatencyTarget
	apiErrs     atomic.Int64        // API responses with a 5xx status

	// Readiness state (health.go): wall nanos of the last completed round,
	// and the fail-stop reason once the daemon has permanently stood down.
	lastRoundWall atomic.Int64
	failStop      atomic.Pointer[string]

	// Durability / HA seam (wal.go): the attached log, follower mode, the
	// published HA role, and the WAL health counters.
	wlog        atomic.Pointer[wal.Log]
	readOnly    atomic.Bool
	haStat      atomic.Pointer[HAStatus]
	walErrs     atomic.Int64
	walReplayed atomic.Int64

	arrivalMu sync.Mutex
	arrivalQ  []arrival

	// mu is the engine mutex: it serializes scheduling rounds, snapshot and
	// restore, and guards the fields below plus every job's engine-guarded
	// fields. No HTTP read path takes it; /metrics takes it only around the
	// unsynchronized recorder.
	mu       sync.Mutex
	now      float64 // canonical simulated clock, mirrored into simNow
	rounds   int     // mirrored into roundsN
	rec      *metrics.Recorder
	rng      *rand.Rand
	lastIncr core.IncrStats

	startWall time.Time
}

// New builds a daemon over the given cluster. It does not start the
// scheduling loop; call Run (or Step from tests).
func New(cfg Config) (*Daemon, error) {
	cfg.fillDefaults()
	if cfg.Cluster == nil || cfg.Cluster.Len() == 0 {
		return nil, fmt.Errorf("serve: config needs a non-empty cluster")
	}
	flight := cfg.Flight
	if flight == nil {
		flight = obs.NewFlightRecorder(cfg.FlightBuffer)
	}
	d := &Daemon{
		cfg:       cfg,
		policy:    sim.OptimusPolicy().Session(),
		bus:       newEventBus(cfg.EventBuffer, flight),
		flight:    flight,
		rec:       metrics.NewRecorder(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		startWall: time.Now(),
	}
	// Engine freshness is measured from construction until the first round.
	d.lastRoundWall.Store(d.startWall.UnixNano())
	d.reg.init()
	if cfg.Cells > 1 {
		d.cells = cells.New(cells.Options{Cells: cfg.Cells, Recorder: d.rec,
			Flight: flight})
		d.policy = sim.Policy{
			Name:       fmt.Sprintf("cells-%d", cfg.Cells),
			Allocate:   d.cells.Allocate,
			Place:      d.cells.Place,
			Instrument: d.cells.Instrument,
		}
	}
	if cfg.Trace {
		d.tracer = obs.NewTracer(cfg.TraceBuffer)
		d.audit = obs.NewAuditLog(cfg.AuditBuffer)
	}
	if d.policy.Instrument != nil {
		d.policy.Instrument(d.tracer, d.audit)
	}
	d.mu.Lock()
	d.publishClusterLocked()
	d.mu.Unlock()
	return d, nil
}

// Now returns the daemon's simulated clock. Lock-free.
func (d *Daemon) Now() float64 {
	return math.Float64frombits(d.simNow.Load())
}

// Rounds returns the number of scheduling rounds executed. Lock-free.
func (d *Daemon) Rounds() int {
	return int(d.roundsN.Load())
}

// Flight returns the daemon's black-box recorder, for sharing with
// components outside the daemon (lease renewer, follower tailer, logger).
func (d *Daemon) Flight() *obs.FlightRecorder { return d.flight }

// advanceClockLocked moves the canonical simulated clock and its lock-free
// mirror. Callers hold d.mu.
func (d *Daemon) advanceClockLocked(t float64) {
	d.now = t
	d.simNow.Store(math.Float64bits(t))
}

// Submit admits one job into the registry. It returns the assigned ID, or
// an admission error (ErrFull, or validation failure). The whole path is
// lock-free against the scheduler: admission is an atomic counter, the
// registry insert takes only the job's shard lock.
func (d *Daemon) Submit(req SubmitRequest) (int, error) {
	spec, err := req.spec()
	if err != nil {
		return 0, err
	}
	if d.readOnly.Load() {
		return 0, ErrNotLeader
	}
	if d.live.Add(1) > int64(d.cfg.MaxJobs) {
		d.live.Add(-1)
		d.rejected.Add(1)
		return 0, ErrFull
	}
	id := int(d.nextID.Add(1))
	now := d.Now()
	spec.ID = id
	spec.Arrival = now
	j := &job{
		spec:          spec,
		submittedWall: time.Now(),
		state:         StatePending,
		totalEpochs:   spec.TotalEpochs(),
		lossFit:       lossfit.NewFitter(),
		speedEst: speedfit.NewEstimator(spec.Mode,
			float64(spec.Model.GlobalBatch)),
	}
	j.status.Store(newStatusSnap(d.buildStatus(j)))
	// Write-ahead: the admission is durable before the job is findable, so
	// every acked submission survives a crash and no engine record for the
	// job can precede its submit record. A failed append burns the assigned
	// ID (replay's nextID skips it — the submission was never acked).
	if err := d.walAppendDurable(wal.TypeSubmit, walSubmit{
		ID: id, Model: spec.Model.Name, Mode: spec.Mode.String(),
		Threshold: spec.Threshold, Downscale: spec.Downscale,
		Arrival: now, Wall: j.submittedWall,
	}); err != nil {
		d.live.Add(-1)
		return 0, fmt.Errorf("serve: wal append: %w", err)
	}
	// Publish before the registry insert: the job cannot be cancelled until
	// it is findable, so its "submitted" event is always first in the stream.
	d.publish(Event{Type: EventSubmitted, Job: id,
		Detail: fmt.Sprintf("%s %s th=%g", spec.Model.Name, spec.Mode, spec.Threshold)})
	d.reg.put(id, j)
	d.queueArrival(id, now)
	return id, nil
}

// queueArrival records one submission for the engine to drain into the
// unsynchronized metrics recorder.
func (d *Daemon) queueArrival(id int, t float64) {
	d.arrivalMu.Lock()
	d.arrivalQ = append(d.arrivalQ, arrival{id: id, t: t})
	d.arrivalMu.Unlock()
}

// drainArrivalsLocked moves queued submissions into the metrics recorder.
// Callers hold d.mu.
func (d *Daemon) drainArrivalsLocked() {
	d.arrivalMu.Lock()
	q := d.arrivalQ
	d.arrivalQ = nil
	d.arrivalMu.Unlock()
	for _, a := range q {
		d.rec.Arrive(a.id, a.t)
	}
}

// Cancel transitions a job to StateCancelled. Its resources are released at
// the next scheduling round (the cluster is rebuilt from live placements
// every round). Terminal jobs cannot be cancelled. Only the job's shard lock
// is taken: a cancel never waits for a scheduling round.
func (d *Daemon) Cancel(id int) error {
	if d.readOnly.Load() {
		return ErrNotLeader
	}
	j := d.reg.get(id)
	if j == nil {
		return ErrNotFound
	}
	sh := d.reg.shard(id)
	sh.mu.Lock()
	if j.state.terminal() {
		sh.mu.Unlock()
		return ErrTerminal
	}
	j.state = StateCancelled
	j.placed = false
	j.alloc = core.Allocation{}
	j.nodes = nil
	// Derive the new status from the previous snapshot rather than
	// recomputing: the estimation fields belong to the engine and may be
	// mid-mutation. The snapshot is immutable, so a copy-and-patch is safe.
	st := j.status.Load().st
	st.State = StateCancelled
	st.Alloc = core.Allocation{}
	st.Nodes = nil
	j.status.Store(newStatusSnap(st))
	d.publish(Event{Type: EventCancelled, Job: id})
	sh.mu.Unlock()
	d.live.Add(-1)
	d.cancelledN.Add(1)
	// Durable after the shard-locked mutation: the engine re-checks terminal
	// state under the shard lock before every mutation, so no state-changing
	// record for this job can land after this one.
	if err := d.walAppendDurable(wal.TypeCancel, walCancel{ID: id}); err != nil {
		return fmt.Errorf("serve: wal append: %w", err)
	}
	return nil
}

// Run drives the scheduling loop until ctx is cancelled: one Step every
// cfg.Tick of wall time. Rounds that outlast the tick are counted as
// interval overruns (exported via /metrics and /v1/cluster) — the daemon's
// core SLO signal under load.
func (d *Daemon) Run(ctx context.Context) {
	t := time.NewTicker(d.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			start := time.Now()
			d.Step()
			if elapsed := time.Since(start); elapsed > d.cfg.Tick {
				d.overruns.Add(1)
				d.flight.Record("engine", obs.SevWarn, "interval overrun",
					obs.KI("elapsedMs", elapsed.Milliseconds()),
					obs.KI("tickMs", d.cfg.Tick.Milliseconds()),
					obs.KI("round", int64(d.roundsN.Load())))
			}
		}
	}
}

// publish stamps and emits one event. Unlike the pre-sharding daemon this
// needs no global lock: the bus assigns sequence numbers internally, and
// callers that need event order to match state-change order for a job
// publish while holding that job's shard lock.
func (d *Daemon) publish(ev Event) {
	ev.Wall = time.Now()
	ev.SimTime = d.Now()
	d.bus.publish(ev)
}

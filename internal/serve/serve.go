// Package serve is the online scheduler daemon behind cmd/optimusd: the
// paper's Optimus run as a long-lived service rather than a batch replay.
// Jobs arrive over HTTP, are admitted into a concurrency-safe registry,
// profiled (§3.2 pre-run sampling), and rescheduled every interval by the
// same §4 allocator/placer kernels and §3 lossfit/speedfit estimators the
// simulator drives — but on a real-or-scaled wall-clock tick instead of a
// replayed trace. Execution physics are the workload package's ground-truth
// models, so the daemon is a live cluster emulator: submissions, allocation,
// placement, progress, convergence and cancellation all happen while the
// process serves traffic.
//
// The HTTP surface (see api.go):
//
//	POST   /v1/jobs              submit (admission-controlled)
//	GET    /v1/jobs              list
//	GET    /v1/jobs/{id}         status: fitted loss curve, remaining-epoch
//	                             estimate, current (PS, workers) allocation
//	GET    /v1/jobs/{id}/explain decision audit: every §4.1 grant and §4.2
//	                             placement recorded for the job (needs -trace)
//	DELETE /v1/jobs/{id}         cancel with resource release
//	GET    /v1/cluster           per-node utilization
//	GET    /v1/events            SSE stream of scheduler decisions
//	GET    /v1/trace             scheduler spans as Chrome trace-event JSON
//	                             (needs -trace; open in Perfetto)
//	GET    /metrics              Prometheus text format, including scheduler
//	                             latency histograms
//	GET    /healthz              liveness
//
// Graceful shutdown writes a JSON snapshot of all job state (snapshot.go);
// a daemon started with -restore resumes every job with its fitted model
// state and progress intact.
package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/metrics"
	"optimus/internal/obs"
	"optimus/internal/sim"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// Config parameterizes the daemon. The zero value of every field has a
// sensible default filled in by New.
type Config struct {
	Cluster *cluster.Cluster // required

	// Interval is the simulated seconds of training each scheduling round
	// advances (the paper's 10-minute interval). Default 600.
	Interval float64
	// Tick is the wall-clock period between scheduling rounds in Run.
	// Tick == Interval·time.Second is real time; smaller is scaled time.
	// Default 1s (600× speedup at the default Interval).
	Tick time.Duration

	Seed int64 // default 1

	// Estimation behaviour, mirroring sim.Config.
	PreRunSamples         int     // §3.2 profiling runs per job (default 5)
	SpeedNoise, LossNoise float64 // relative observation noise (default 0.03)
	PriorEpochs           float64 // beginning-state convergence prior (default 80)
	PriorityFactor        float64 // §4.1 damping (default 0.95)

	// Scaling overhead charged when a running job's configuration changes
	// (§5.4): a fixed pause plus a per-task term, in simulated seconds.
	ScalingBase, ScalingPerTask float64

	// Stragglers: per running job per round, probability that one worker
	// degrades to StragglerSlowdown speed (§5.2). The Optimus policy
	// replaces the straggler after one detection round. Zero disables.
	StragglerProb     float64
	StragglerSlowdown float64 // default 0.5

	// Cells, when > 1, runs the sharded shared-state multi-scheduler
	// (internal/cells) instead of the single-engine kernels: the cluster is
	// split into Cells stripes, each scheduling in parallel against a
	// snapshot of a shared store with optimistic conflict-aware commits.
	// Per-cell stats appear in GET /v1/cluster and /metrics. Default 1.
	Cells int

	// MaxJobs is the admission-control cap on live (non-terminal) jobs;
	// submissions beyond it are rejected with 429. Default 4096.
	MaxJobs int

	// EventBuffer is the SSE ring size: how many past scheduler decisions a
	// late subscriber can replay. Default 4096.
	EventBuffer int

	// Trace enables the internal/obs observability layer: per-round span
	// trees (exported as Chrome trace-event JSON at GET /v1/trace) and the
	// per-grant/per-placement decision audit log behind
	// GET /v1/jobs/{id}/explain. Off by default; both endpoints then return
	// 404 and the scheduling loop pays no tracing cost.
	Trace bool
	// TraceBuffer / AuditBuffer size the span and audit-event rings.
	// Defaults obs.DefaultSpanBuffer / obs.DefaultAuditBuffer.
	TraceBuffer, AuditBuffer int
}

func (c *Config) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 600
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PreRunSamples <= 0 {
		c.PreRunSamples = 5
	}
	if c.SpeedNoise == 0 {
		c.SpeedNoise = 0.03
	}
	if c.LossNoise == 0 {
		c.LossNoise = 0.03
	}
	if c.PriorEpochs <= 0 {
		c.PriorEpochs = 80
	}
	if c.PriorityFactor <= 0 {
		c.PriorityFactor = 0.95
	}
	if c.StragglerSlowdown <= 0 || c.StragglerSlowdown > 1 {
		c.StragglerSlowdown = 0.5
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 4096
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = obs.DefaultSpanBuffer
	}
	if c.AuditBuffer <= 0 {
		c.AuditBuffer = obs.DefaultAuditBuffer
	}
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// StatePending: admitted, not yet seen by a scheduling round.
	StatePending JobState = "pending"
	// StateWaiting: seen by the scheduler but currently without tasks
	// (allocation starved or placement failed).
	StateWaiting JobState = "waiting"
	// StateRunning: tasks deployed, training in progress.
	StateRunning JobState = "running"
	// StateDone: converged.
	StateDone JobState = "done"
	// StateCancelled: cancelled by the owner; resources released.
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state can never change again.
func (s JobState) terminal() bool { return s == StateDone || s == StateCancelled }

// job is the daemon's full view of one submitted job. All fields are
// guarded by the Daemon mutex.
type job struct {
	spec          workload.JobSpec
	submittedWall time.Time
	state         JobState

	totalEpochs float64 // ground-truth epochs to convergence (physics)
	progress    float64 // epochs completed
	doneAt      float64 // simulated completion time

	// current deployment
	alloc  core.Allocation
	spread workload.TaskSpread
	nodes  []string
	placed bool

	// estimation state (§3): the scheduler's view, never the ground truth
	profiled bool
	lossFit  *lossfit.Fitter
	speedEst *speedfit.Estimator
	// lossObs retains the observations fed to lossFit so snapshots can
	// rebuild the fitter exactly; capped at maxLossObs.
	lossObs []lossfit.Point

	straggling bool
}

const maxLossObs = 512

// Daemon owns the job registry, the cluster state and the scheduling loop.
// All methods are safe for concurrent use.
type Daemon struct {
	cfg    Config
	policy sim.Policy
	cells  *cells.MultiScheduler // non-nil only when cfg.Cells > 1
	bus    *eventBus
	// tracer/audit are non-nil only when cfg.Trace is set; every use is
	// nil-receiver-safe, so the disabled daemon skips the whole layer.
	tracer *obs.Tracer
	audit  *obs.AuditLog

	mu        sync.Mutex
	jobs      map[int]*job
	order     []int // submission order, for deterministic scheduling
	nextID    int
	now       float64 // simulated time
	rounds    int
	live      int // non-terminal jobs, for admission control
	rejected  int
	cancelled int
	rec       *metrics.Recorder
	rng       *rand.Rand
	startWall time.Time
	// lastIncr is the incremental-session counter snapshot after the previous
	// round, used to derive per-round tier deltas for the event stream.
	lastIncr core.IncrStats
}

// New builds a daemon over the given cluster. It does not start the
// scheduling loop; call Run (or Step from tests).
func New(cfg Config) (*Daemon, error) {
	cfg.fillDefaults()
	if cfg.Cluster == nil || cfg.Cluster.Len() == 0 {
		return nil, fmt.Errorf("serve: config needs a non-empty cluster")
	}
	d := &Daemon{
		cfg:       cfg,
		policy:    sim.OptimusPolicy().Session(),
		bus:       newEventBus(cfg.EventBuffer),
		jobs:      make(map[int]*job),
		nextID:    1,
		rec:       metrics.NewRecorder(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		startWall: time.Now(),
	}
	if cfg.Cells > 1 {
		d.cells = cells.New(cells.Options{Cells: cfg.Cells, Recorder: d.rec})
		d.policy = sim.Policy{
			Name:       fmt.Sprintf("cells-%d", cfg.Cells),
			Allocate:   d.cells.Allocate,
			Place:      d.cells.Place,
			Instrument: d.cells.Instrument,
		}
	}
	if cfg.Trace {
		d.tracer = obs.NewTracer(cfg.TraceBuffer)
		d.audit = obs.NewAuditLog(cfg.AuditBuffer)
	}
	if d.policy.Instrument != nil {
		d.policy.Instrument(d.tracer, d.audit)
	}
	return d, nil
}

// Now returns the daemon's simulated clock.
func (d *Daemon) Now() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// Rounds returns the number of scheduling rounds executed.
func (d *Daemon) Rounds() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// Submit admits one job into the registry. It returns the assigned ID, or
// an admission error (ErrFull, or validation failure).
func (d *Daemon) Submit(req SubmitRequest) (int, error) {
	spec, err := req.spec()
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live >= d.cfg.MaxJobs {
		d.rejected++
		return 0, ErrFull
	}
	id := d.nextID
	d.nextID++
	spec.ID = id
	spec.Arrival = d.now
	j := &job{
		spec:          spec,
		submittedWall: time.Now(),
		state:         StatePending,
		totalEpochs:   spec.TotalEpochs(),
		lossFit:       lossfit.NewFitter(),
		speedEst: speedfit.NewEstimator(spec.Mode,
			float64(spec.Model.GlobalBatch)),
	}
	d.jobs[id] = j
	d.order = append(d.order, id)
	d.live++
	d.rec.Arrive(id, d.now)
	d.publish(Event{Type: EventSubmitted, Job: id,
		Detail: fmt.Sprintf("%s %s th=%g", spec.Model.Name, spec.Mode, spec.Threshold)})
	return id, nil
}

// Cancel transitions a job to StateCancelled. Its resources are released at
// the next scheduling round (the cluster is rebuilt from live placements
// every round). Terminal jobs cannot be cancelled.
func (d *Daemon) Cancel(id int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return ErrNotFound
	}
	if j.state.terminal() {
		return ErrTerminal
	}
	j.state = StateCancelled
	j.placed = false
	j.alloc = core.Allocation{}
	j.nodes = nil
	d.live--
	d.cancelled++
	d.publish(Event{Type: EventCancelled, Job: id})
	return nil
}

// Run drives the scheduling loop until ctx is cancelled: one Step every
// cfg.Tick of wall time.
func (d *Daemon) Run(ctx context.Context) {
	t := time.NewTicker(d.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			d.Step()
		}
	}
}

// publish stamps and emits one event. Callers must hold d.mu (the sequence
// of events must match the sequence of state changes).
func (d *Daemon) publish(ev Event) {
	ev.Wall = time.Now()
	ev.SimTime = d.now
	d.bus.publish(ev)
}

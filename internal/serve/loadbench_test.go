package serve

import (
	"encoding/json"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/obs"
	"optimus/internal/workload"
)

// This file is the serving-path before/after exhibit behind BENCH_6.json:
// the same submit+status traffic driven against (a) a single-mutex facade
// reproducing the pre-sharding daemon — every API call and the scheduler
// round serialized on one lock, JSON marshaled inside it — and (b) the
// sharded daemon. Each benchmark reports sustained ops/s and the p99
// latency (log-bucketed histogram) alongside ns/op, so benchjson records
// the full exhibit in one entry.

// singleMutexServing is the executable reference spec of the old serving
// path: one global mutex across Submit, Status, Cluster and Step, with JSON
// encoding performed while the lock is held.
type singleMutexServing struct {
	mu sync.Mutex
	d  *Daemon
}

func (s *singleMutexServing) Submit(req SubmitRequest) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Submit(req)
}

func (s *singleMutexServing) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Cancel(id)
}

func (s *singleMutexServing) Status(id int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.d.Status(id)
	if err != nil {
		return nil, err
	}
	return json.Marshal(st) // encode under the lock, like the old handler
}

func (s *singleMutexServing) Cluster() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(s.d.Cluster())
}

func (s *singleMutexServing) Step() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Step()
}

// servingOps abstracts the two implementations under benchmark.
type servingOps interface {
	Submit(SubmitRequest) (int, error)
	Cancel(int) error
	Status(int) ([]byte, error)
	Cluster() ([]byte, error)
	Step()
}

// shardedServing drives the daemon exactly as the HTTP handlers do:
// lock-free snapshot reads with the pre-encoded bytes.
type shardedServing struct{ d *Daemon }

func (s shardedServing) Submit(req SubmitRequest) (int, error) { return s.d.Submit(req) }
func (s shardedServing) Cancel(id int) error                   { return s.d.Cancel(id) }
func (s shardedServing) Status(id int) ([]byte, error) {
	j := s.d.reg.get(id)
	if j == nil {
		return nil, ErrNotFound
	}
	return j.status.Load().bytes(), nil
}
func (s shardedServing) Cluster() ([]byte, error) {
	return s.d.clusterSnap.Load().bytes(), nil
}
func (s shardedServing) Step() { s.d.Step() }

const benchPreJobs = 512

func newBenchDaemon(b *testing.B) *Daemon {
	b.Helper()
	d, err := New(Config{
		Cluster: cluster.Uniform(64,
			cluster.Resources{cluster.CPU: 16, cluster.Memory: 80, cluster.Bandwidth: 1}),
		Seed:    1,
		MaxJobs: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	req, err := DecodeSubmit([]byte(`{"model":"resnext-110","mode":"async","threshold":0.05,"downscale":0.2}`))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchPreJobs; i++ {
		if _, err := d.Submit(req); err != nil {
			b.Fatal(err)
		}
	}
	d.Step() // deploy the pre-jobs so statuses carry allocations
	return d
}

// benchServingMix runs the open-loop-shaped mix (95% status on zipfian keys,
// 5% submit+cancel churn) from parallel goroutines while a stepper fires a
// scheduling round every 5ms — the contended steady state the tick loop
// creates in production.
func benchServingMix(b *testing.B, s servingOps) {
	submitReq, err := DecodeSubmit([]byte(`{"model":"resnet-50","mode":"async","threshold":0.05,"downscale":0.2}`))
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wgStep sync.WaitGroup
	wgStep.Add(1)
	go func() {
		defer wgStep.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Step()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	var hist obs.AtomicHistogram
	var seed atomic.Int64
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		kd, _ := workload.NewKeyDist("zipfian", 0)
		lastID := 0
		for pb.Next() {
			t0 := time.Now()
			if rng.Float64() < 0.05 {
				id, err := s.Submit(submitReq)
				if err != nil {
					b.Error(err)
					return
				}
				if lastID != 0 {
					_ = s.Cancel(lastID) // keep the live set bounded
				}
				lastID = id
			} else {
				id := kd.Draw(rng, benchPreJobs) + 1
				if _, err := s.Status(id); err != nil {
					b.Error(err)
					return
				}
			}
			hist.Observe(time.Since(t0).Seconds())
		}
	})
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	wgStep.Wait()

	snap := hist.Snapshot()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
	b.ReportMetric(snap.Quantile(0.99)*1e3, "p99-ms")
}

func BenchmarkServingMixSingleMutex(b *testing.B) {
	d := newBenchDaemon(b)
	benchServingMix(b, &singleMutexServing{d: d})
}

func BenchmarkServingMixSharded(b *testing.B) {
	d := newBenchDaemon(b)
	benchServingMix(b, shardedServing{d: d})
}

// benchClusterRead measures GET /v1/cluster's payload production under the
// same 5ms stepper: the old path re-marshaled the whole node list under the
// daemon mutex per request; the new one serves the engine's cached bytes.
func benchClusterRead(b *testing.B, s servingOps) {
	stop := make(chan struct{})
	var wgStep sync.WaitGroup
	wgStep.Add(1)
	go func() {
		defer wgStep.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Step()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			buf, err := s.Cluster()
			if err != nil || len(buf) == 0 {
				b.Errorf("cluster read: %v (%d bytes)", err, len(buf))
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wgStep.Wait()
}

func BenchmarkServingClusterSingleMutex(b *testing.B) {
	d := newBenchDaemon(b)
	benchClusterRead(b, &singleMutexServing{d: d})
}

func BenchmarkServingClusterSharded(b *testing.B) {
	d := newBenchDaemon(b)
	benchClusterRead(b, shardedServing{d: d})
}

// BenchmarkServingSSEPublish measures event publication with four healthy
// subscribers and one permanently stalled one — the fanout case the old
// broker handled by evicting the slow consumer inside the publish lock, and
// the new broker handles with drop-oldest queues.
func BenchmarkServingSSEPublish(b *testing.B) {
	bus := newEventBus(4096, nil)
	// Stalled subscriber: never drained.
	id0, _, _ := bus.subscribe(0)
	defer bus.unsubscribe(id0)
	// Healthy subscribers, drained concurrently.
	var wg sync.WaitGroup
	stopIDs := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		id, ch, _ := bus.subscribe(0)
		stopIDs = append(stopIDs, id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch {
			}
		}()
	}
	ev := Event{Type: EventScaled, Job: 7, Detail: "1ps/4w -> 2ps/8w"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.publish(ev)
	}
	b.StopTimer()
	b.ReportMetric(float64(bus.droppedTotal())/float64(b.N), "dropped/op")
	for _, id := range stopIDs {
		bus.unsubscribe(id)
	}
	wg.Wait()
}

package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optimus/internal/cluster"
)

// TestConcurrentSubmissions is the acceptance load test: ≥1000 concurrent
// HTTP submissions racing against the scheduler loop and an SSE consumer,
// with every job accounted for exactly once. Run under -race (make race).
func TestConcurrentSubmissions(t *testing.T) {
	const n = 1000
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 11, MaxJobs: 2 * n})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Scheduler loop racing with the submissions.
	stop := make(chan struct{})
	var wgStep sync.WaitGroup
	wgStep.Add(1)
	go func() {
		defer wgStep.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Step()
			}
		}
	}()

	// SSE consumer racing with both.
	ctx, cancelSSE := context.WithCancel(context.Background())
	defer cancelSSE()
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()

	client := &http.Client{Timeout: 30 * time.Second}
	var created, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := "resnext-110"
			if i%3 == 0 {
				model = "resnet-50"
			}
			body := fmt.Sprintf(`{"model":%q,"mode":"async","threshold":0.05,"downscale":0.2}`, model)
			resp, err := client.Post(srv.URL+"/v1/jobs", "application/json",
				strings.NewReader(body))
			if err != nil {
				failed.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusCreated {
				created.Add(1)
			} else {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	wgStep.Wait()
	cancelSSE()
	<-sseDone

	if failed.Load() != 0 {
		t.Fatalf("%d of %d submissions failed", failed.Load(), n)
	}
	if created.Load() != n {
		t.Fatalf("created %d jobs, want %d", created.Load(), n)
	}

	// Every submission got a unique ID and landed in the registry.
	if jobs := d.reg.len(); jobs != n {
		t.Fatalf("registry holds %d jobs, want %d", jobs, n)
	}
	if listed := len(d.List()); listed != n {
		t.Fatalf("list returns %d jobs, want %d", listed, n)
	}
	// One more round must schedule without incident at full occupancy.
	d.Step()
	cs := d.Cluster()
	if cs.LiveJobs > n {
		t.Fatalf("live jobs %d exceeds submissions", cs.LiveJobs)
	}
}

// TestConcurrentMixedTraffic hammers every endpoint at once: submissions,
// status polls, cancellations, cluster and metrics scrapes against a running
// scheduler loop.
func TestConcurrentMixedTraffic(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wgStep sync.WaitGroup
	wgStep.Add(1)
	go func() {
		defer wgStep.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Step()
			}
		}
	}()

	get := func(path string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"model":"resnext-110","mode":"async","downscale":0.2}`
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			id := i + 1 // not necessarily ours, but always a plausible ID
			get(fmt.Sprintf("/v1/jobs/%d", id))
			get("/v1/jobs")
			get("/v1/cluster")
			get("/metrics")
			if i%4 == 0 {
				req, _ := http.NewRequest(http.MethodDelete,
					fmt.Sprintf("%s/v1/jobs/%d", srv.URL, id), nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	wgStep.Wait()
}

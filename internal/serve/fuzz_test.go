package serve

import (
	"testing"
)

// FuzzDecodeSubmit fuzzes the job-submission request decoder: it must never
// panic, and anything it accepts must satisfy the documented invariants
// (known model, valid mode, threshold/downscale in range).
func FuzzDecodeSubmit(f *testing.F) {
	for _, seed := range []string{
		`{"model":"resnet-50","mode":"async"}`,
		`{"model":"resnext-110","mode":"sync","threshold":0.02,"downscale":0.5}`,
		`{"model":"seq2seq","mode":"sync","threshold":0.5}`,
		`{"model":"","mode":""}`,
		`{"model":"resnet-50","mode":"async","threshold":-1}`,
		`{"model":"resnet-50","mode":"async","unknown":true}`,
		`{}`,
		`[]`,
		`null`,
		``,
		`{"model":"resnet-50","mode":"async"}{"model":"x"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSubmit(data)
		if err != nil {
			return
		}
		spec, specErr := req.spec()
		if specErr != nil {
			t.Fatalf("DecodeSubmit accepted %q but spec() rejects: %v", data, specErr)
		}
		if spec.Model == nil {
			t.Fatalf("accepted request %q has nil model", data)
		}
		if spec.Threshold <= 0 || spec.Threshold > 0.5 {
			t.Fatalf("accepted threshold %g out of range (%q)", spec.Threshold, data)
		}
		if spec.Downscale <= 0 || spec.Downscale > 1 {
			t.Fatalf("accepted downscale %g out of range (%q)", spec.Downscale, data)
		}
	})
}

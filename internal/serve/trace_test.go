package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/obs"
)

// tracedServer builds a daemon with tracing on plus its HTTP front end.
func tracedServer(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 7, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func TestHTTPTraceEndpoint(t *testing.T) {
	d, srv := tracedServer(t)
	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	d.Step()
	d.Step()

	resp, err := http.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(body) {
		t.Fatalf("trace is not valid JSON:\n%s", body)
	}
	spans, err := obs.ReadChromeTrace(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
	}
	if byName["interval"] != 2 {
		t.Errorf("interval spans = %d, want one per Step", byName["interval"])
	}
	for _, name := range []string{"fit", "allocate", "place", "deploy", "alloc-kernel", "place-kernel"} {
		if byName[name] == 0 {
			t.Errorf("no %q spans in %v", name, byName)
		}
	}
}

func TestHTTPExplainEndpoint(t *testing.T) {
	d, srv := tracedServer(t)
	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	d.Step()

	resp, err := http.Get(srv.URL + "/v1/jobs/1/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d", resp.StatusCode)
	}
	var ex ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	if ex.Job != 1 || ex.State != StateRunning {
		t.Errorf("explain header %+v", ex)
	}
	if len(ex.Grants) == 0 {
		t.Fatal("no grant events")
	}
	if ex.Grants[0].Kind != obs.GrantSeed {
		t.Errorf("first grant %q, want seed", ex.Grants[0].Kind)
	}
	// The deployed allocation can be smaller than the last grant (the §4.2
	// fragmentation escape hatch shrinks unpackable allocations), never
	// larger.
	last := ex.Grants[len(ex.Grants)-1]
	if last.PS < ex.Alloc.PS || last.Workers < ex.Alloc.Workers {
		t.Errorf("grant history ends at %d/%d, below deployed allocation %+v", last.PS, last.Workers, ex.Alloc)
	}
	if len(ex.Placements) == 0 {
		t.Fatal("no placement events")
	}
	if ex.Placements[0].Servers == 0 || len(ex.Placements[0].Nodes) == 0 {
		t.Errorf("degenerate placement event %+v", ex.Placements[0])
	}

	// Unknown job → 404.
	resp2, err := http.Get(srv.URL + "/v1/jobs/999/explain")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job explain status = %d", resp2.StatusCode)
	}
}

// TestHTTPTraceDisabled pins the contract of an untraced daemon: both
// observability endpoints 404 and the scheduler records nothing.
func TestHTTPTraceDisabled(t *testing.T) {
	d, srv := testServer(t)
	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	d.Step()
	for _, path := range []string{"/v1/trace", "/v1/jobs/1/explain"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHTTPMetricsHistograms checks that the latency histograms flow through
// /metrics once rounds and API requests have happened.
func TestHTTPMetricsHistograms(t *testing.T) {
	d, srv := testServer(t)
	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	d.Step()
	// The submit above went through the latency middleware already; fetch
	// metrics twice so the first scrape's own latency is also recorded.
	if _, err := http.Get(srv.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE optimus_interval_duration_seconds histogram",
		"optimus_interval_duration_seconds_count 1",
		"# TYPE optimus_allocate_duration_seconds histogram",
		"# TYPE optimus_api_request_duration_seconds histogram",
		`optimus_api_request_duration_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSSEResumeExactlyOnce is the delivery-contract test for /v1/events: a
// client that disconnects mid-replay and resumes via Last-Event-ID must see
// every event exactly once across the two connections.
func TestSSEResumeExactlyOnce(t *testing.T) {
	d, srv := testServer(t)
	for i := 0; i < 4; i++ {
		postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	}
	d.Step()
	d.Step()

	// Ground truth: everything currently in the bus ring.
	subID, _, all := d.bus.subscribe(0)
	d.bus.unsubscribe(subID)
	if len(all) < 6 {
		t.Fatalf("only %d events published, test needs a longer history", len(all))
	}
	total := all[len(all)-1].Seq

	seen := make(map[int64]int)
	readIDs := func(body io.Reader, stopAfter int, stopAtSeq int64) int64 {
		scanner := bufio.NewScanner(body)
		var last int64
		n := 0
		for scanner.Scan() {
			line := scanner.Text()
			if !strings.HasPrefix(line, "id: ") {
				continue
			}
			seq, err := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q", line)
			}
			seen[seq]++
			last = seq
			n++
			if (stopAfter > 0 && n >= stopAfter) || (stopAtSeq > 0 && seq >= stopAtSeq) {
				return last
			}
		}
		t.Fatalf("stream ended after %d events (last seq %d): %v", n, last, scanner.Err())
		return last
	}

	// First connection: take 3 events of the replay, then drop the link.
	resp, err := http.Get(srv.URL + "/v1/events?since=0")
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := readIDs(resp.Body, 3, 0)
	resp.Body.Close()

	// Resume with Last-Event-ID, exactly as an SSE client would.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	readIDs(resp2.Body, 0, total)

	for seq := int64(1); seq <= total; seq++ {
		if seen[seq] != 1 {
			t.Errorf("seq %d delivered %d times, want exactly once", seq, seen[seq])
		}
	}
}

package serve

import (
	"sort"
	"sync"
)

// regShards is the fixed shard count of the job registry. Shards are struck
// by job-ID modulo; IDs are assigned monotonically, so consecutive
// submissions land on consecutive shards and the map mutexes see 1/regShards
// of the former global contention. A power of two keeps the modulo a mask.
const regShards = 32

// regShard is one stripe of the registry: a plain map under its own RWMutex.
// The shard lock guards the map itself and, by protocol, the deployment
// fields of every job in it (see job).
type regShard struct {
	mu   sync.RWMutex
	jobs map[int]*job
}

// registry is the sharded job map. It only ever grows: terminal jobs stay
// resident so status queries keep working, exactly like the pre-sharding
// single map.
type registry struct {
	shards [regShards]regShard
}

func (r *registry) init() {
	for i := range r.shards {
		r.shards[i].jobs = make(map[int]*job)
	}
}

// shard returns the stripe owning id.
func (r *registry) shard(id int) *regShard {
	return &r.shards[uint(id)%regShards]
}

// get looks one job up under its shard's read lock. Nil when absent.
func (r *registry) get(id int) *job {
	sh := r.shard(id)
	sh.mu.RLock()
	j := sh.jobs[id]
	sh.mu.RUnlock()
	return j
}

// put inserts one job under its shard's write lock.
func (r *registry) put(id int, j *job) {
	sh := r.shard(id)
	sh.mu.Lock()
	sh.jobs[id] = j
	sh.mu.Unlock()
}

// len counts all jobs, taking each shard's read lock briefly.
func (r *registry) len() int {
	n := 0
	for i := range r.shards {
		r.shards[i].mu.RLock()
		n += len(r.shards[i].jobs)
		r.shards[i].mu.RUnlock()
	}
	return n
}

// forEach visits every job under its owning shard's read lock, one shard at
// a time. Iteration order is arbitrary; callers needing submission order
// sort by ID afterwards (IDs are assigned monotonically, so ID order is
// submission order).
func (r *registry) forEach(fn func(id int, j *job)) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for id, j := range sh.jobs {
			fn(id, j)
		}
		sh.mu.RUnlock()
	}
}

// collect returns the jobs passing keep, sorted by ID (= submission order).
func (r *registry) collect(keep func(j *job) bool) []*job {
	var out []*job
	r.forEach(func(_ int, j *job) {
		if keep(j) {
			out = append(out, j)
		}
	})
	sort.Slice(out, func(a, b int) bool { return out[a].spec.ID < out[b].spec.ID })
	return out
}

// lockAll / unlockAll take and release every shard's write lock in index
// order, giving the snapshotter a consistent cut across shards.
func (r *registry) lockAll() {
	for i := range r.shards {
		r.shards[i].mu.Lock()
	}
}

func (r *registry) unlockAll() {
	for i := range r.shards {
		r.shards[i].mu.Unlock()
	}
}

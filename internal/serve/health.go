package serve

import (
	"fmt"
	"net/http"
	"time"

	"optimus/internal/obs"
)

// This file is the daemon's readiness plane. /healthz stays a bare liveness
// probe (the process is up and serving HTTP); GET /readyz is the traffic
// gate: per-component checks that say whether this daemon should receive
// load right now. A leader is ready when its engine ticked recently and its
// WAL is appendable; a follower is ready when its replication lag is within
// bound; a fail-stopped daemon is never ready again.

// ComponentHealth is one readiness check's result.
type ComponentHealth struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ReadyStatus is the GET /readyz body: the aggregate verdict plus every
// component check that produced it.
type ReadyStatus struct {
	Ready      bool                       `json:"ready"`
	Components map[string]ComponentHealth `json:"components"`
}

// Readiness evaluates the per-component checks. Lock-free: every input is
// an atomic or a snapshot.
func (d *Daemon) Readiness() ReadyStatus {
	comps := make(map[string]ComponentHealth, 4)
	ready := true
	add := func(name string, ok bool, detail string) {
		comps[name] = ComponentHealth{OK: ok, Detail: detail}
		if !ok {
			ready = false
		}
	}

	if r := d.failStop.Load(); r != nil {
		add("failstop", false, *r)
	}

	ha := d.haStat.Load()
	follower := d.readOnly.Load() || (ha != nil && ha.Role != "leader")
	if follower {
		// A follower runs no scheduling rounds; its readiness is how far its
		// replay trails the leader's log.
		lag := uint64(0)
		if ha != nil {
			lag = ha.LagRecords
		}
		add("ha", lag <= d.cfg.MaxFollowerLag,
			fmt.Sprintf("follower lag=%d records (bound %d)", lag, d.cfg.MaxFollowerLag))
	} else {
		if ha != nil {
			add("ha", true, "leader term="+fmt.Sprint(ha.Term))
		}
		age := time.Since(time.Unix(0, d.lastRoundWall.Load()))
		add("engine", age <= d.cfg.EngineStaleAfter,
			fmt.Sprintf("last round %s ago (bound %s)",
				age.Round(time.Millisecond), d.cfg.EngineStaleAfter))
	}

	if l := d.wlog.Load(); l != nil {
		if err := l.Err(); err != nil {
			add("wal", false, err.Error())
		} else {
			add("wal", true, "appendable")
		}
	}

	return ReadyStatus{Ready: ready, Components: comps}
}

// FailStop permanently marks the daemon not-ready and read-only: the
// terminal transition after a lost leader lease or an unrecoverable
// durability fault. The caller typically writes a debug bundle and exits;
// a test daemon just observes /readyz flip to 503.
func (d *Daemon) FailStop(reason string) {
	d.failStop.Store(&reason)
	d.readOnly.Store(true)
	d.flight.Record("daemon", obs.SevError, "fail-stop", obs.KS("reason", reason))
}

// FailStopped reports whether FailStop was called and with what reason.
func (d *Daemon) FailStopped() (string, bool) {
	if r := d.failStop.Load(); r != nil {
		return *r, true
	}
	return "", false
}

// handleReadyz serves the readiness verdict: 200 when every component check
// passes, 503 with the failing components otherwise.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := d.Readiness()
	code := http.StatusOK
	if !st.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

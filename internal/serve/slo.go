package serve

// SLO burn-rate accounting against the Config.SLO* targets. A burn value is
// the observed bad-event fraction divided by its budget: 1.0 means the
// daemon is consuming its error budget exactly as fast as the SLO allows,
// above 1 it is burning faster (alerting territory), 0 means no budget
// spent. Exposed as optimus_slo_* gauges on /metrics and as the "slo" block
// of GET /v1/cluster.

// SLOStatus is the daemon's current SLO attainment.
type SLOStatus struct {
	// Interval SLO: fraction of scheduling rounds that outlasted the tick.
	OverrunTarget float64 `json:"overrunTarget"`
	OverrunRate   float64 `json:"overrunRate"`
	OverrunBurn   float64 `json:"overrunBurn"`
	// API SLO: request latency p99 against the per-request target, plus the
	// slow-request and 5xx fractions against the shared error budget.
	APILatencyTargetSeconds float64 `json:"apiLatencyTargetSeconds"`
	APIP99Seconds           float64 `json:"apiP99Seconds"`
	APISlowRate             float64 `json:"apiSlowRate"`
	APISlowBurn             float64 `json:"apiSlowBurn"`
	APIErrorRate            float64 `json:"apiErrorRate"`
	APIErrorBurn            float64 `json:"apiErrorBurn"`
}

// SLO computes current attainment. Lock-free: counters are atomics and the
// latency histogram is snapshotted.
func (d *Daemon) SLO() SLOStatus {
	s := SLOStatus{
		OverrunTarget:           d.cfg.SLOOverrunTarget,
		APILatencyTargetSeconds: d.cfg.SLOAPILatencyTarget.Seconds(),
	}
	if rounds := d.roundsN.Load(); rounds > 0 {
		s.OverrunRate = float64(d.overruns.Load()) / float64(rounds)
		s.OverrunBurn = s.OverrunRate / d.cfg.SLOOverrunTarget
	}
	h := d.apiHist.Snapshot()
	if n := h.Count(); n > 0 {
		s.APIP99Seconds = h.Quantile(0.99)
		s.APISlowRate = float64(d.apiSlow.Load()) / float64(n)
		s.APISlowBurn = s.APISlowRate / d.cfg.SLOAPIErrorBudget
		s.APIErrorRate = float64(d.apiErrs.Load()) / float64(n)
		s.APIErrorBurn = s.APIErrorRate / d.cfg.SLOAPIErrorBudget
	}
	return s
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"optimus/internal/obs"
	"optimus/internal/wal"
)

// A debug bundle is the daemon's black box: one self-contained JSON document
// holding everything needed to reconstruct an incident after the fact — the
// flight-recorder tail, goroutine stacks, a Prometheus snapshot, tracer
// spans, the audit tail, WAL counters, HA state and build info. It is served
// live at GET /debug/bundle and written to disk on fail-stop and SIGQUIT
// (cmd/optimusd), so a kill -9'd or fail-stopped leader leaves evidence
// behind. optimus-trace bundle fetches, pretty-prints and diffs them.

// Caps keep a bundle readable and a few hundred KB, not unbounded: the
// flight tail is the incident window, spans/audit are recent context.
const (
	bundleFlightEvents = 2048
	bundleSpans        = 256
	bundleAuditEvents  = 256
	bundleStackBytes   = 1 << 20
)

// Bundle is the GET /debug/bundle document.
type Bundle struct {
	Written time.Time     `json:"written"`
	Reason  string        `json:"reason"`
	Build   obs.BuildInfo `json:"build"`

	UptimeSeconds float64 `json:"uptimeSeconds"`
	SimTime       float64 `json:"simTime"`
	Rounds        int     `json:"rounds"`

	Ready   ReadyStatus   `json:"ready"`
	SLO     SLOStatus     `json:"slo"`
	HA      *HAStatus     `json:"ha,omitempty"`
	WAL     *wal.Stats    `json:"wal,omitempty"`
	Cluster ClusterStatus `json:"cluster"`

	// Flight is the recorder tail, oldest first — the incident narrative.
	Flight []obs.FlightEvent `json:"flight"`
	// Spans / Grants / Placements are present only on a -trace daemon.
	Spans      []obs.Span       `json:"spans,omitempty"`
	Grants     []obs.GrantEvent `json:"grants,omitempty"`
	Placements []obs.PlaceEvent `json:"placements,omitempty"`

	// Goroutines is the full runtime.Stack dump; Metrics is the Prometheus
	// text exposition at capture time.
	Goroutines string `json:"goroutines"`
	Metrics    string `json:"metrics"`
}

// DebugBundle captures the daemon's current state. Safe to call from any
// goroutine, including a fail-stop path racing the engine: every source is
// an atomic, a snapshot, or its own lock.
func (d *Daemon) DebugBundle(reason string) Bundle {
	b := Bundle{
		Written:       time.Now(),
		Reason:        reason,
		Build:         obs.Build(),
		UptimeSeconds: time.Since(d.startWall).Seconds(),
		SimTime:       d.Now(),
		Rounds:        d.Rounds(),
		Ready:         d.Readiness(),
		SLO:           d.SLO(),
		HA:            d.haStat.Load(),
		Cluster:       d.Cluster(),
		Flight:        d.flight.Tail(bundleFlightEvents),
	}
	if ws, ok := d.WALStats(); ok {
		b.WAL = &ws
	}
	if d.tracer != nil {
		spans := d.tracer.Spans()
		if len(spans) > bundleSpans {
			spans = spans[len(spans)-bundleSpans:]
		}
		b.Spans = spans
	}
	if d.audit != nil {
		b.Grants = tailOf(d.audit.Grants(-1), bundleAuditEvents)
		b.Placements = tailOf(d.audit.Places(-1), bundleAuditEvents)
	}
	stack := make([]byte, bundleStackBytes)
	b.Goroutines = string(stack[:runtime.Stack(stack, true)])
	var mb bytes.Buffer
	d.writeMetrics(&mb)
	b.Metrics = mb.String()
	return b
}

func tailOf[T any](s []T, n int) []T {
	if len(s) > n {
		return s[len(s)-n:]
	}
	return s
}

// WriteBundle captures a bundle and writes it to path as indented JSON via a
// temp-file rename, so a crash mid-write never leaves a truncated document.
func (d *Daemon) WriteBundle(path, reason string) error {
	b, err := json.MarshalIndent(d.DebugBundle(reason), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bundle-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(name, path)
	}
	if err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// handleDebugBundle serves a freshly captured bundle.
func (d *Daemon) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.DebugBundle("api"))
}

package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// SnapshotVersion is the format version of the daemon's state snapshot.
// Version 2 added SpeedAcc (exact estimator accumulators); version-1
// snapshots (averaged SpeedObs) still restore.
const SnapshotVersion = 2

// Snapshot is the daemon's durable state: everything needed to resume every
// job with its progress, fitted model state and last allocation intact. The
// cluster's node-level bookkeeping is deliberately absent — it is rebuilt
// from live placements on the first scheduling round after restore, exactly
// as it is on every ordinary round.
type Snapshot struct {
	Version   int           `json:"version"`
	SavedWall time.Time     `json:"savedWall"`
	SimTime   float64       `json:"simTime"`
	Rounds    int           `json:"rounds"`
	NextID    int           `json:"nextId"`
	Rejected  int           `json:"rejected,omitempty"`
	Cancelled int           `json:"cancelled,omitempty"`
	Jobs      []JobSnapshot `json:"jobs"`
}

// JobSnapshot is one job's durable state. The loss fitter is persisted as
// its raw observations and replayed into a fresh fitter on restore; the
// speed estimator is persisted as its exact per-configuration accumulators
// (p, w, sum, weight), so the estimator after restore is byte-identical to
// the estimator before shutdown — including how future observations will be
// averaged in. SpeedObs is the version-1 averaged form, still read.
type JobSnapshot struct {
	ID            int               `json:"id"`
	Model         string            `json:"model"`
	Mode          string            `json:"mode"`
	Threshold     float64           `json:"threshold"`
	Downscale     float64           `json:"downscale,omitempty"`
	ArrivalSim    float64           `json:"arrivalSim"`
	SubmittedWall time.Time         `json:"submittedWall"`
	State         JobState          `json:"state"`
	Progress      float64           `json:"progressEpochs"`
	DoneAtSim     float64           `json:"doneAtSim,omitempty"`
	Alloc         core.Allocation   `json:"alloc"`
	Profiled      bool              `json:"profiled,omitempty"`
	Straggling    bool              `json:"straggling,omitempty"`
	LossObs       [][2]float64      `json:"lossObs,omitempty"`
	SpeedObs      []speedfit.Sample `json:"speedObs,omitempty"`
	SpeedAcc      [][4]float64      `json:"speedAcc,omitempty"`
}

// WriteSnapshot serializes the daemon's state as indented JSON. The engine
// mutex plus a brief all-shard write lock give a consistent cut across every
// job (a submit or cancel is either wholly before or wholly after the
// snapshot); JSON encoding happens after all shard locks are released.
func (d *Daemon) WriteSnapshot(w io.Writer) error {
	d.mu.Lock()
	snap := d.snapshotLocked()
	d.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// snapshotLocked builds the snapshot value. Callers hold d.mu; the WAL
// checkpoint path (wal.go) shares it with WriteSnapshot.
func (d *Daemon) snapshotLocked() Snapshot {
	snap := Snapshot{
		Version:   SnapshotVersion,
		SavedWall: time.Now(),
		SimTime:   d.now,
		Rounds:    d.rounds,
		NextID:    int(d.nextID.Load()) + 1,
		Rejected:  int(d.rejected.Load()),
		Cancelled: int(d.cancelledN.Load()),
	}
	d.reg.lockAll()
	for i := range d.reg.shards {
		for id, j := range d.reg.shards[i].jobs {
			js := JobSnapshot{
				ID:            id,
				Model:         j.spec.Model.Name,
				Mode:          j.spec.Mode.String(),
				Threshold:     j.spec.Threshold,
				Downscale:     j.spec.Downscale,
				ArrivalSim:    j.spec.Arrival,
				SubmittedWall: j.submittedWall,
				State:         j.state,
				Progress:      j.progress,
				DoneAtSim:     j.doneAt,
				Alloc:         j.alloc,
				Profiled:      j.profiled,
				Straggling:    j.straggling,
			}
			for _, p := range j.lossObs {
				js.LossObs = append(js.LossObs, [2]float64{p.K, p.Loss})
			}
			if j.profiled {
				js.SpeedAcc = j.speedEst.Accum()
			}
			snap.Jobs = append(snap.Jobs, js)
		}
	}
	d.reg.unlockAll()
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].ID < snap.Jobs[b].ID })
	return snap
}

// Restore loads a snapshot into a freshly constructed daemon. It must be
// called before the first Step/Submit; restoring over live state is an
// error.
func (d *Daemon) Restore(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("serve: reading snapshot: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.restoreSnapLocked(snap)
}

// restoreSnapLocked loads a decoded snapshot. Callers hold d.mu; the WAL
// replay applier (wal.go) shares it with Restore for checkpoint records.
func (d *Daemon) restoreSnapLocked(snap Snapshot) error {
	if snap.Version != 1 && snap.Version != SnapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if d.reg.len() != 0 || d.rounds != 0 {
		return fmt.Errorf("serve: cannot restore over live state")
	}
	var live int64
	for _, js := range snap.Jobs {
		j, err := restoreJob(js)
		if err != nil {
			return err
		}
		// Publish the status snapshot before the registry insert so the job
		// is never findable without one.
		j.status.Store(newStatusSnap(d.buildStatus(j)))
		d.reg.put(js.ID, j)
		d.rec.Arrive(js.ID, js.ArrivalSim)
		if !j.state.terminal() {
			live++
		}
		if j.state == StateDone {
			d.rec.Complete(js.ID, js.DoneAtSim)
		}
	}
	d.live.Store(live)
	d.advanceClockLocked(snap.SimTime)
	d.rounds = snap.Rounds
	d.roundsN.Store(int64(snap.Rounds))
	last := int64(snap.NextID) - 1
	if last < 0 {
		last = 0
	}
	d.nextID.Store(last)
	d.rejected.Store(int64(snap.Rejected))
	d.cancelledN.Store(int64(snap.Cancelled))
	d.publishClusterLocked()
	return nil
}

// restoreJob rebuilds one job, replaying the persisted observations into
// fresh estimators.
func restoreJob(js JobSnapshot) (*job, error) {
	model := workload.ZooByName(js.Model)
	if model == nil {
		return nil, fmt.Errorf("serve: snapshot job %d: unknown model %q", js.ID, js.Model)
	}
	var mode speedfit.Mode
	switch js.Mode {
	case "async":
		mode = speedfit.Async
	case "sync":
		mode = speedfit.Sync
	default:
		return nil, fmt.Errorf("serve: snapshot job %d: bad mode %q", js.ID, js.Mode)
	}
	switch js.State {
	case StatePending, StateWaiting, StateRunning, StateDone, StateCancelled:
	default:
		return nil, fmt.Errorf("serve: snapshot job %d: bad state %q", js.ID, js.State)
	}
	spec := workload.JobSpec{
		ID: js.ID, Model: model, Mode: mode,
		Threshold: js.Threshold, Arrival: js.ArrivalSim, Downscale: js.Downscale,
	}
	j := &job{
		spec:          spec,
		submittedWall: js.SubmittedWall,
		state:         js.State,
		totalEpochs:   spec.TotalEpochs(),
		progress:      js.Progress,
		doneAt:        js.DoneAtSim,
		alloc:         js.Alloc,
		profiled:      js.Profiled,
		straggling:    js.Straggling,
		lossFit:       lossfit.NewFitter(),
		speedEst: speedfit.NewEstimator(mode,
			float64(model.GlobalBatch)),
	}
	// A restored running job has no deployment yet: the first round after
	// restore re-places it (a fresh "placed" event), mirroring a §5.4
	// checkpoint restore of the whole cluster.
	if j.state == StateRunning {
		j.state = StateWaiting
		j.alloc = core.Allocation{}
	}
	for _, p := range js.LossObs {
		if err := j.lossFit.Add(p[0], p[1]); err == nil {
			j.lossObs = append(j.lossObs, lossfit.Point{K: p[0], Loss: p[1]})
		}
	}
	if len(js.SpeedAcc) > 0 {
		j.speedEst.SetAccum(js.SpeedAcc)
	} else {
		for _, s := range js.SpeedObs {
			_ = j.speedEst.Observe(s.P, s.W, s.Speed)
		}
	}
	return j, nil
}

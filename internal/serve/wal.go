package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/obs"
	"optimus/internal/speedfit"
	"optimus/internal/wal"
	"optimus/internal/workload"
)

// This file is the daemon's durability and replication seam (DESIGN.md §17):
// the typed WAL record payloads, the append hooks the serving/engine paths
// call, and the replay applier that rebuilds a daemon from a log.
//
// The replay contract is byte-identical state: every mutation of durable job
// state flows through exactly one record type carrying the *observed* values
// (noisy speed/loss measurements, not their post-hoc averages), so replaying
// the log performs the same Observe/Add calls the live engine performed and
// a post-replay WriteSnapshot equals a graceful-shutdown snapshot, modulo
// the savedWall timestamp. Two counters are deliberately outside the
// contract: admission rejections (telemetry, never acked as state) and IDs
// burned by a failed WAL append (the submission was never acked).
//
// Record ordering relies on the same seams as the serving path itself:
//   - a job's submit record is appended durably before the registry insert,
//     so no engine record for the job can precede it;
//   - deploy/complete records are appended inside the job's shard-lock
//     critical section, in mutation order;
//   - a cancel record is appended after its shard-locked mutation; engine
//     sections re-check terminal state under the shard lock before mutating,
//     so no state-changing record for the job can follow its cancel.

// ErrNotLeader rejects writes on a daemon serving as a read-only HA
// follower; clients should retry against the current leader.
var ErrNotLeader = errors.New("serve: not the leader (read-only follower)")

// WAL record payloads. Field names are compact on purpose: observe records
// dominate log volume (one per placed job per round).

type walSubmit struct {
	ID        int       `json:"id"`
	Model     string    `json:"model"`
	Mode      string    `json:"mode"`
	Threshold float64   `json:"th"`
	Downscale float64   `json:"ds,omitempty"`
	Arrival   float64   `json:"at"`
	Wall      time.Time `json:"wall"`
}

type walCancel struct {
	ID int `json:"id"`
}

type walProfile struct {
	ID      int               `json:"id"`
	Samples []speedfit.Sample `json:"samples"`
}

// walObserve carries one interval's accepted measurements for one job.
// A zero Speed or Loss means that half was rejected (or not measured) and
// must not be replayed into the estimators.
type walObserve struct {
	ID       int     `json:"id"`
	Progress float64 `json:"prog"`
	PS       int     `json:"ps,omitempty"`
	W        int     `json:"w,omitempty"`
	Speed    float64 `json:"speed,omitempty"`
	K        float64 `json:"k,omitempty"`
	Loss     float64 `json:"loss,omitempty"`
}

type walDeploy struct {
	ID    int      `json:"id"`
	State JobState `json:"state"`
	PS    int      `json:"ps,omitempty"`
	W     int      `json:"w,omitempty"`
	Nodes []string `json:"nodes,omitempty"`
}

type walComplete struct {
	ID     int     `json:"id"`
	DoneAt float64 `json:"done"`
}

type walFault struct {
	ID         int  `json:"id"`
	Straggling bool `json:"straggling"`
}

type walRound struct {
	Round   int     `json:"round"`
	SimTime float64 `json:"t"`
}

type walMembership struct {
	Holder string `json:"holder"`
	Term   uint64 `json:"term"`
	Role   string `json:"role"`
}

// AttachWAL connects an open log to the daemon: every subsequent
// state-changing operation appends a record before (submissions) or as
// (engine mutations) it takes effect. Attach before serving traffic.
func (d *Daemon) AttachWAL(l *wal.Log) { d.wlog.Store(l) }

// WALStats returns the attached log's counters, or false when none.
func (d *Daemon) WALStats() (wal.Stats, bool) {
	l := d.wlog.Load()
	if l == nil {
		return wal.Stats{}, false
	}
	return l.Stats(), true
}

// walOn reports whether a log is attached; hot paths check it before
// building a payload so the WAL-less daemon pays nothing.
func (d *Daemon) walOn() bool { return d.wlog.Load() != nil }

// walAppend buffers one record (durable at the next group flush — the round
// commit at the latest). Engine-path errors are counted, not propagated: the
// log's sticky error will surface on the next durable ack append.
func (d *Daemon) walAppend(t wal.Type, v any) {
	l := d.wlog.Load()
	if l == nil {
		return
	}
	b, err := json.Marshal(v)
	if err == nil {
		_, err = l.Append(t, b)
	}
	if err != nil {
		d.walErrs.Add(1)
		d.flight.Record("wal", obs.SevError, "append failed",
			obs.KS("type", t.String()), obs.KS("err", err.Error()))
	}
}

// walAppendDurable appends one record and waits for durability per the
// log's fsync policy. Ack paths (Submit, Cancel, round commits) use it.
func (d *Daemon) walAppendDurable(t wal.Type, v any) error {
	l := d.wlog.Load()
	if l == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err == nil {
		_, err = l.AppendSync(t, b)
	}
	if err != nil {
		d.walErrs.Add(1)
		d.flight.Record("wal", obs.SevError, "durable append failed",
			obs.KS("type", t.String()), obs.KS("err", err.Error()))
	}
	return err
}

// WALAppendMembership durably records a control-plane role change (leader
// start, follower takeover) with its lease term.
func (d *Daemon) WALAppendMembership(holder string, term uint64, role string) error {
	return d.walAppendDurable(wal.TypeMembership,
		walMembership{Holder: holder, Term: term, Role: role})
}

// walRoundLocked commits one scheduling interval: a durable round record
// (the group flush that also hardens the interval's buffered engine
// records), then a snapshot checkpoint every WALCheckpointRounds rounds.
// Callers hold d.mu with the round's mutations already applied.
func (d *Daemon) walRoundLocked() {
	l := d.wlog.Load()
	if l == nil {
		return
	}
	if err := d.walAppendDurable(wal.TypeRound,
		walRound{Round: d.rounds, SimTime: d.now}); err != nil {
		return
	}
	if n := d.cfg.WALCheckpointRounds; n > 0 && d.rounds%n == 0 {
		d.walCheckpointLocked(l)
	}
}

// walCheckpointLocked writes the full snapshot as a checkpoint record,
// retiring every earlier segment. Callers hold d.mu.
func (d *Daemon) walCheckpointLocked(l *wal.Log) {
	b, err := json.Marshal(d.snapshotLocked())
	if err == nil {
		_, err = l.Checkpoint(b)
	}
	if err != nil {
		d.walErrs.Add(1)
	}
}

// WALCheckpoint writes a snapshot checkpoint on demand (graceful shutdown,
// follower takeover). No-op without an attached log.
func (d *Daemon) WALCheckpoint() error {
	l := d.wlog.Load()
	if l == nil {
		return nil
	}
	d.mu.Lock()
	snap := d.snapshotLocked()
	d.mu.Unlock()
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	_, err = l.Checkpoint(b)
	return err
}

// SetReadOnly flips the daemon's follower mode: when set, Submit and Cancel
// fail with ErrNotLeader (HTTP 503) while every read path keeps serving.
func (d *Daemon) SetReadOnly(v bool) { d.readOnly.Store(v) }

// ReadOnly reports follower mode.
func (d *Daemon) ReadOnly() bool { return d.readOnly.Load() }

// HAStatus is the control-plane block of GET /v1/cluster when the daemon
// runs under internal/ha leadership.
type HAStatus struct {
	Role        string `json:"role"` // "leader" or "follower"
	ID          string `json:"id,omitempty"`
	Term        uint64 `json:"term,omitempty"`
	LeaseHolder string `json:"leaseHolder,omitempty"`
	// AppliedSeq is the last WAL sequence applied locally; LagRecords is the
	// follower's distance behind the leader's last scanned record.
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
	LagRecords uint64 `json:"lagRecords,omitempty"`
}

// SetHAStatus publishes the daemon's HA role into /v1/cluster and /metrics.
func (d *Daemon) SetHAStatus(st HAStatus) {
	d.haStat.Store(&st)
	d.mu.Lock()
	d.publishClusterLocked()
	d.mu.Unlock()
}

// HAState returns the last published HA status, or nil when not under HA.
func (d *Daemon) HAState() *HAStatus { return d.haStat.Load() }

// WALApplier replays records into a daemon: a fresh one at startup
// (ReplayWAL) or a warm standby continuously (the internal/ha follower).
// Apply and Finish are not safe for concurrent use with each other, but are
// safe against the daemon's read paths — mutations happen under the engine
// mutex and the owning shard locks, exactly like a scheduling round.
type WALApplier struct {
	d          *Daemon
	applied    uint64 // last applied sequence
	records    uint64
	duplicates uint64 // submit records for already-present IDs
	dirty      map[int]*job
	started    bool // a non-checkpoint record has been applied
}

// NewWALApplier builds an applier over d.
func (d *Daemon) NewWALApplier() *WALApplier {
	return &WALApplier{d: d, dirty: make(map[int]*job)}
}

// AppliedSeq is the sequence of the last applied record.
func (a *WALApplier) AppliedSeq() uint64 { return a.applied }

// Duplicates counts submit records whose job ID already existed — the
// exactly-once violation detector across HA cutovers. Zero in a healthy log.
func (a *WALApplier) Duplicates() uint64 { return a.duplicates }

// Records counts records applied (checkpoints included).
func (a *WALApplier) Records() uint64 { return a.records }

// Apply replays one record. Records are applied in sequence order; the
// caller (Scan/ScanFrom or a tailer) guarantees contiguity.
func (a *WALApplier) Apply(rec wal.Record) error {
	d := a.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := a.applyLocked(rec); err != nil {
		return fmt.Errorf("wal replay: record %d (%s): %w", rec.Seq, rec.Type, err)
	}
	a.applied = rec.Seq
	a.records++
	d.walReplayed.Add(1)
	return nil
}

func (a *WALApplier) applyLocked(rec wal.Record) error {
	d := a.d
	switch rec.Type {
	case wal.TypeCheckpoint:
		// A checkpoint is a summary of everything before it. On a fresh
		// daemon (replay starting at the checkpoint) restore it; on a warm
		// one (a tailing follower that already applied that history) it is
		// a no-op.
		if a.started || d.reg.len() != 0 || d.rounds != 0 {
			return nil
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Payload, &snap); err != nil {
			return err
		}
		return d.restoreSnapLocked(snap)
	case wal.TypeSubmit:
		var p walSubmit
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		if d.reg.get(p.ID) != nil {
			a.duplicates++
			return nil
		}
		model := workload.ZooByName(p.Model)
		if model == nil {
			return fmt.Errorf("unknown model %q", p.Model)
		}
		var mode speedfit.Mode
		switch p.Mode {
		case "async":
			mode = speedfit.Async
		case "sync":
			mode = speedfit.Sync
		default:
			return fmt.Errorf("bad mode %q", p.Mode)
		}
		spec := workload.JobSpec{
			ID: p.ID, Model: model, Mode: mode,
			Threshold: p.Threshold, Arrival: p.Arrival, Downscale: p.Downscale,
		}
		if spec.Downscale == 0 {
			spec.Downscale = 1
		}
		j := &job{
			spec:          spec,
			submittedWall: p.Wall,
			state:         StatePending,
			totalEpochs:   spec.TotalEpochs(),
			lossFit:       lossfit.NewFitter(),
			speedEst: speedfit.NewEstimator(mode,
				float64(model.GlobalBatch)),
		}
		j.status.Store(newStatusSnap(d.buildStatus(j)))
		d.reg.put(p.ID, j)
		if int64(p.ID) > d.nextID.Load() {
			d.nextID.Store(int64(p.ID))
		}
		d.live.Add(1)
		d.rec.Arrive(p.ID, p.Arrival)
		a.dirty[p.ID] = j
	case wal.TypeCancel:
		var p walCancel
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		j := d.reg.get(p.ID)
		if j == nil {
			return fmt.Errorf("cancel of unknown job %d", p.ID)
		}
		if !j.state.terminal() {
			d.live.Add(-1)
		}
		j.state = StateCancelled
		j.placed = false
		j.alloc = core.Allocation{}
		j.spread = workload.TaskSpread{}
		j.nodes = nil
		d.cancelledN.Add(1)
		a.dirty[p.ID] = j
	case wal.TypeProfile:
		var p walProfile
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		j := d.reg.get(p.ID)
		if j == nil {
			return fmt.Errorf("profile of unknown job %d", p.ID)
		}
		for _, s := range p.Samples {
			_ = j.speedEst.Observe(s.P, s.W, s.Speed)
		}
		j.profiled = true
		a.dirty[p.ID] = j
	case wal.TypeObserve:
		var p walObserve
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		j := d.reg.get(p.ID)
		if j == nil {
			return fmt.Errorf("observation of unknown job %d", p.ID)
		}
		// Observations may legitimately land on a job cancelled in the same
		// round (the physics pass raced the cancel, exactly as live): apply
		// the estimator updates, leave the state alone.
		j.progress = p.Progress
		if p.Speed > 0 {
			_ = j.speedEst.Observe(p.PS, p.W, p.Speed)
		}
		if p.Loss > 0 && j.lossFit.Add(p.K, p.Loss) == nil {
			j.lossObs = append(j.lossObs, lossfit.Point{K: p.K, Loss: p.Loss})
			if len(j.lossObs) > maxLossObs {
				j.lossObs = j.lossObs[len(j.lossObs)-maxLossObs:]
			}
		}
		a.dirty[p.ID] = j
	case wal.TypeDeploy:
		var p walDeploy
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		j := d.reg.get(p.ID)
		if j == nil {
			return fmt.Errorf("deployment of unknown job %d", p.ID)
		}
		if j.state.terminal() {
			return nil
		}
		j.state = p.State
		if p.PS > 0 && p.W > 0 {
			j.alloc = core.Allocation{PS: p.PS, Workers: p.W}
			j.nodes = p.Nodes
			j.placed = true
		} else {
			j.alloc = core.Allocation{}
			j.spread = workload.TaskSpread{}
			j.nodes = nil
			j.placed = false
		}
		a.dirty[p.ID] = j
	case wal.TypeComplete:
		var p walComplete
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		j := d.reg.get(p.ID)
		if j == nil {
			return fmt.Errorf("completion of unknown job %d", p.ID)
		}
		if !j.state.terminal() {
			d.live.Add(-1)
		}
		j.state = StateDone
		j.progress = j.totalEpochs
		j.doneAt = p.DoneAt
		j.placed = false
		j.alloc = core.Allocation{}
		j.spread = workload.TaskSpread{}
		j.nodes = nil
		d.rec.Complete(p.ID, p.DoneAt)
		a.dirty[p.ID] = j
	case wal.TypeFault:
		var p walFault
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		j := d.reg.get(p.ID)
		if j == nil {
			return fmt.Errorf("fault on unknown job %d", p.ID)
		}
		j.straggling = p.Straggling
		a.dirty[p.ID] = j
	case wal.TypeRound:
		var p walRound
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return err
		}
		a.started = true
		d.rounds = p.Round
		d.roundsN.Store(int64(p.Round))
		d.advanceClockLocked(p.SimTime)
		// Interval boundary: republish the round's touched jobs and the
		// cluster view, so a tailing follower serves fresh reads.
		for id, j := range a.dirty {
			sh := d.reg.shard(id)
			sh.mu.Lock()
			j.status.Store(newStatusSnap(d.buildStatus(j)))
			sh.mu.Unlock()
		}
		clear(a.dirty)
		d.publishClusterLocked()
	case wal.TypeMembership:
		a.started = true // role changes don't touch job state
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// Finish normalizes the applied state for serving, mirroring snapshot
// restore: replayed running jobs have no real deployment, so they restart
// as waiting and the first round after takeover re-places them (§5.4). It
// also republishes every job's status and the cluster snapshot.
func (a *WALApplier) Finish() {
	d := a.d
	d.mu.Lock()
	defer d.mu.Unlock()
	var live int64
	d.reg.lockAll()
	for i := range d.reg.shards {
		for _, j := range d.reg.shards[i].jobs {
			if j.state == StateRunning {
				j.state = StateWaiting
				j.alloc = core.Allocation{}
				j.spread = workload.TaskSpread{}
				j.nodes = nil
				j.placed = false
			}
			if !j.state.terminal() {
				live++
			}
			j.status.Store(newStatusSnap(d.buildStatus(j)))
		}
	}
	d.reg.unlockAll()
	d.live.Store(live)
	clear(a.dirty)
	d.publishClusterLocked()
}

// WALReplayStats summarizes one ReplayWAL.
type WALReplayStats struct {
	Records    int    // records applied
	AppliedSeq uint64 // last applied sequence
	Checkpoint uint64 // sequence of the anchoring checkpoint (0 = genesis)
	Duplicates uint64 // exactly-once violations detected (should be 0)
	Torn       bool   // the log ended in a torn tail (crash evidence)
}

// ReplayWAL rebuilds a freshly constructed daemon from the log in dir:
// restore the latest checkpoint, then re-apply every record after it. The
// daemon must not have served yet. A torn tail is not an error — it is the
// expected shape of a crash — and is reported in the stats; opening the
// directory for writing afterwards (wal.Open) truncates it.
func (d *Daemon) ReplayWAL(dir string) (WALReplayStats, error) {
	ckpt, err := wal.LastCheckpoint(dir)
	if err != nil {
		return WALReplayStats{}, err
	}
	var after uint64
	if ckpt > 0 {
		after = ckpt - 1
	}
	a := d.NewWALApplier()
	res, err := wal.ScanFrom(dir, after, a.Apply)
	if err != nil {
		return WALReplayStats{}, err
	}
	a.Finish()
	return WALReplayStats{
		Records:    res.Records,
		AppliedSeq: a.applied,
		Checkpoint: ckpt,
		Duplicates: a.duplicates,
		Torn:       res.Torn,
	}, nil
}

// WALDecodePayload renders one record payload for optimus-trace. It lives
// here (not in the trace tool) so the payload schemas stay private.
func WALDecodePayload(rec wal.Record) (any, error) {
	var v any
	switch rec.Type {
	case wal.TypeSubmit:
		v = &walSubmit{}
	case wal.TypeCancel:
		v = &walCancel{}
	case wal.TypeProfile:
		v = &walProfile{}
	case wal.TypeObserve:
		v = &walObserve{}
	case wal.TypeDeploy:
		v = &walDeploy{}
	case wal.TypeComplete:
		v = &walComplete{}
	case wal.TypeFault:
		v = &walFault{}
	case wal.TypeRound:
		v = &walRound{}
	case wal.TypeMembership:
		v = &walMembership{}
	case wal.TypeCheckpoint:
		v = &Snapshot{}
	default:
		return nil, fmt.Errorf("serve: unknown WAL record type %d", rec.Type)
	}
	dec := json.NewDecoder(bytes.NewReader(rec.Payload))
	if err := dec.Decode(v); err != nil {
		return nil, err
	}
	return v, nil
}

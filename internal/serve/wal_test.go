package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/wal"
)

// walTestDaemon builds a daemon with a WAL attached in dir.
func walTestDaemon(t *testing.T, dir string, seed int64, ckptRounds int) (*Daemon, *wal.Log) {
	t.Helper()
	d, err := New(Config{
		Cluster:             cluster.Testbed(),
		Seed:                seed,
		StragglerProb:       0.1,
		WALCheckpointRounds: ckptRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	d.AttachWAL(l)
	return d, l
}

// driveWAL runs a randomized submit/cancel/schedule workload against d.
func driveWAL(t *testing.T, d *Daemon, rng *rand.Rand, rounds int) {
	t.Helper()
	models := []string{"resnext-110", "inception-bn", "seq2seq", "dssm"}
	modes := []string{"async", "sync"}
	var ids []int
	for r := 0; r < rounds; r++ {
		for n := rng.Intn(3); n > 0; n-- {
			id, err := d.Submit(SubmitRequest{
				Model: models[rng.Intn(len(models))],
				Mode:  modes[rng.Intn(len(modes))],
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if len(ids) > 0 && rng.Float64() < 0.15 {
			id := ids[rng.Intn(len(ids))]
			if err := d.Cancel(id); err != nil && err != ErrTerminal {
				t.Fatal(err)
			}
		}
		d.Step()
	}
}

var savedWallRe = regexp.MustCompile(`"savedWall":\s*"[^"]*",?\n?`)

// snapshotBytes renders d's snapshot with the wall timestamp stripped.
func snapshotBytes(t *testing.T, d *Daemon) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return savedWallRe.ReplaceAll(buf.Bytes(), nil)
}

func freshDaemon(t *testing.T, seed int64) *Daemon {
	t.Helper()
	d, err := New(Config{
		Cluster: cluster.Testbed(),
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestWALReplayMatchesSnapshot is the crash-consistency core: across 30
// seeds, rebuilding a daemon by replaying its WAL must yield byte-identical
// state to restoring a graceful-shutdown snapshot. Half the seeds run with
// aggressive checkpoint compaction so replay also exercises the
// snapshot-anchored path (restore checkpoint, re-apply the suffix).
func TestWALReplayMatchesSnapshot(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ckpt := -1 // no periodic checkpoints
			if seed%2 == 0 {
				ckpt = 3 // compact every 3 rounds
			}
			dir := t.TempDir()
			d, l := walTestDaemon(t, dir, seed, ckpt)
			driveWAL(t, d, rand.New(rand.NewSource(seed*7)), 12)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Graceful path: snapshot → restore into a fresh daemon.
			var snap bytes.Buffer
			if err := d.WriteSnapshot(&snap); err != nil {
				t.Fatal(err)
			}
			restored := freshDaemon(t, seed)
			if err := restored.Restore(&snap); err != nil {
				t.Fatal(err)
			}
			want := snapshotBytes(t, restored)

			// Crash path: replay the log into a fresh daemon.
			replayed := freshDaemon(t, seed)
			stats, err := replayed.ReplayWAL(dir)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Duplicates != 0 {
				t.Fatalf("replay found %d duplicate admissions", stats.Duplicates)
			}
			if ckpt > 0 && stats.Checkpoint == 0 {
				t.Fatal("expected a checkpoint anchor in the compacted log")
			}
			got := snapshotBytes(t, replayed)
			if !bytes.Equal(want, got) {
				t.Fatalf("repldiff:\n--- graceful restore ---\n%s\n--- wal replay ---\n%s",
					firstDiff(want, got), firstDiff(got, want))
			}
		})
	}
}

// firstDiff returns a window around the first differing byte for diagnostics.
func firstDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-120, i+200
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return string(a[lo:hi])
}

// TestWALReplayTornTail cuts the log at every byte offset in its final
// segment (simulating a crash mid-write at any point) and checks that
// replay never errors, is deterministic, and that the repaired log accepts
// further appends.
func TestWALReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	d, l := walTestDaemon(t, dir, 42, -1)
	driveWAL(t, d, rand.New(rand.NewSource(99)), 6)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	whole, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Every-byte cuts are quadratic in log size; stride keeps it fast while
	// still hitting header, body and boundary offsets.
	for cut := 0; cut < len(whole); cut += 37 {
		cutDir := t.TempDir()
		for _, s := range segs[:len(segs)-1] {
			b, _ := os.ReadFile(s)
			if err := os.WriteFile(filepath.Join(cutDir, filepath.Base(s)), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(cutDir, filepath.Base(last)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		d1 := freshDaemon(t, 1)
		s1, err := d1.ReplayWAL(cutDir)
		if err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		d2 := freshDaemon(t, 1)
		s2, err := d2.ReplayWAL(cutDir)
		if err != nil {
			t.Fatalf("cut %d: second replay: %v", cut, err)
		}
		if s1 != s2 {
			t.Fatalf("cut %d: replay not deterministic: %+v vs %+v", cut, s1, s2)
		}
		if !bytes.Equal(snapshotBytes(t, d1), snapshotBytes(t, d2)) {
			t.Fatalf("cut %d: replayed states differ", cut)
		}
		// The repaired log must accept the takeover's membership record.
		rl, err := wal.Open(wal.Options{Dir: cutDir, Fsync: wal.FsyncOff})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		d1.AttachWAL(rl)
		if err := d1.WALAppendMembership("standby", 2, "leader"); err != nil {
			t.Fatalf("cut %d: post-repair append: %v", cut, err)
		}
		if err := rl.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALReadOnlyFollower checks the follower write fence.
func TestWALReadOnlyFollower(t *testing.T) {
	d := freshDaemon(t, 1)
	d.SetReadOnly(true)
	if _, err := d.Submit(SubmitRequest{Model: "resnext-110", Mode: "async"}); err != ErrNotLeader {
		t.Fatalf("submit on follower: %v, want ErrNotLeader", err)
	}
	if err := d.Cancel(1); err != ErrNotLeader {
		t.Fatalf("cancel on follower: %v, want ErrNotLeader", err)
	}
	d.SetReadOnly(false)
	if _, err := d.Submit(SubmitRequest{Model: "resnext-110", Mode: "async"}); err != nil {
		t.Fatalf("submit after promotion: %v", err)
	}
}

// TestWALRestartContinues replays a log, reattaches the repaired log, and
// keeps scheduling — the single-node crash-restart lifecycle.
func TestWALRestartContinues(t *testing.T) {
	dir := t.TempDir()
	d, l := walTestDaemon(t, dir, 7, -1)
	driveWAL(t, d, rand.New(rand.NewSource(7)), 5)
	rounds := d.Rounds()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := freshDaemon(t, 7)
	if _, err := d2.ReplayWAL(dir); err != nil {
		t.Fatal(err)
	}
	if d2.Rounds() != rounds {
		t.Fatalf("replayed rounds %d, want %d", d2.Rounds(), rounds)
	}
	l2, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	d2.AttachWAL(l2)
	id, err := d2.Submit(SubmitRequest{Model: "dssm", Mode: "async"})
	if err != nil {
		t.Fatal(err)
	}
	d2.Step()
	st, err := d2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning && st.State != StateWaiting {
		t.Fatalf("post-restart job state %q", st.State)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// The continued log must itself replay cleanly.
	d3 := freshDaemon(t, 7)
	if stats, err := d3.ReplayWAL(dir); err != nil || stats.Duplicates != 0 {
		t.Fatalf("replay of continued log: %+v err=%v", stats, err)
	}
	if _, err := d3.Status(id); err != nil {
		t.Fatalf("job submitted after restart missing from replay: %v", err)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"optimus/internal/core"
)

// EventType enumerates the scheduler decisions streamed on /v1/events.
type EventType string

const (
	EventSubmitted EventType = "submitted" // job admitted into the registry
	EventPlaced    EventType = "placed"    // first deployment of a job
	EventScaled    EventType = "scaled"    // running job's (PS, workers) changed
	EventUnplaced  EventType = "unplaced"  // running job lost its deployment
	EventCompleted EventType = "completed" // job converged
	EventCancelled EventType = "cancelled" // owner cancelled the job
	EventFault     EventType = "fault"     // injected degradation (straggler)
	EventRecovered EventType = "recovered" // fault repaired (§5.2 replacement)
	// EventRebalanced fires when the multi-cell rebalancer migrated jobs
	// between scheduling cells this round (-cells > 1 only).
	EventRebalanced EventType = "rebalanced"
	// EventRescheduled fires once per round under an incremental policy,
	// reporting which tier each kernel took (clean / incremental / full), the
	// dirty-set size and the number of tasks migrated, e.g.
	// "alloc=clean dirty=0 place=clean migrated=0".
	EventRescheduled EventType = "rescheduled"
)

// Event is one scheduler decision. Seq is a strictly increasing stream
// position usable as an SSE Last-Event-ID for resumption.
type Event struct {
	Seq     int64            `json:"seq"`
	Wall    time.Time        `json:"wall"`
	SimTime float64          `json:"simTime"`
	Type    EventType        `json:"type"`
	Job     int              `json:"job,omitempty"`
	Alloc   *core.Allocation `json:"alloc,omitempty"`
	Nodes   []string         `json:"nodes,omitempty"`
	Detail  string           `json:"detail,omitempty"`
}

// eventBus fans scheduler events out to SSE subscribers. A fixed ring
// buffer lets late or resuming subscribers replay recent history; a
// subscriber that cannot drain its channel is disconnected rather than
// allowed to backpressure the scheduling loop.
type eventBus struct {
	mu      sync.Mutex
	ring    []Event // ring[seq % len(ring)] when seq > 0
	nextSeq int64
	subs    map[int]chan Event
	nextSub int
}

func newEventBus(size int) *eventBus {
	return &eventBus{
		ring: make([]Event, size),
		subs: make(map[int]chan Event),
	}
}

// publish assigns the next sequence number, records the event in the ring
// and delivers it to every subscriber that has room.
func (b *eventBus) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSeq++
	ev.Seq = b.nextSeq
	b.ring[int(ev.Seq)%len(b.ring)] = ev
	for id, ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow consumer: cut it loose, it can resume via Last-Event-ID
			close(ch)
			delete(b.subs, id)
		}
	}
}

// subscribe registers a new subscriber and returns its id, live channel and
// the replay of ring events with Seq > after (in order).
func (b *eventBus) subscribe(after int64) (int, chan Event, []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var replay []Event
	lo := b.nextSeq - int64(len(b.ring)) + 1
	if lo < 1 {
		lo = 1
	}
	if after+1 > lo {
		lo = after + 1
	}
	for seq := lo; seq <= b.nextSeq; seq++ {
		replay = append(replay, b.ring[int(seq)%len(b.ring)])
	}
	id := b.nextSub
	b.nextSub++
	ch := make(chan Event, 256)
	b.subs[id] = ch
	return id, ch, replay
}

// unsubscribe removes a subscriber; idempotent with publish's eviction.
func (b *eventBus) unsubscribe(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.subs[id]; ok {
		close(ch)
		delete(b.subs, id)
	}
}

// handleEvents streams the decision log as Server-Sent Events. `?since=N`
// or a Last-Event-ID header resumes after sequence N.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var after int64
	if s := r.URL.Query().Get("since"); s != "" {
		after, _ = strconv.ParseInt(s, 10, 64)
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		after, _ = strconv.ParseInt(s, 10, 64)
	}
	id, ch, replay := d.bus.subscribe(after)
	defer d.bus.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok { // evicted as a slow consumer
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"optimus/internal/core"
	"optimus/internal/obs"
)

// EventType enumerates the scheduler decisions streamed on /v1/events.
type EventType string

const (
	EventSubmitted EventType = "submitted" // job admitted into the registry
	EventPlaced    EventType = "placed"    // first deployment of a job
	EventScaled    EventType = "scaled"    // running job's (PS, workers) changed
	EventUnplaced  EventType = "unplaced"  // running job lost its deployment
	EventCompleted EventType = "completed" // job converged
	EventCancelled EventType = "cancelled" // owner cancelled the job
	EventFault     EventType = "fault"     // injected degradation (straggler)
	EventRecovered EventType = "recovered" // fault repaired (§5.2 replacement)
	// EventRebalanced fires when the multi-cell rebalancer migrated jobs
	// between scheduling cells this round (-cells > 1 only).
	EventRebalanced EventType = "rebalanced"
	// EventRescheduled fires once per round under an incremental policy,
	// reporting which tier each kernel took (clean / incremental / full), the
	// dirty-set size and the number of tasks migrated, e.g.
	// "alloc=clean dirty=0 place=clean migrated=0".
	EventRescheduled EventType = "rescheduled"
)

// Event is one scheduler decision. Seq is a strictly increasing stream
// position usable as an SSE Last-Event-ID for resumption.
type Event struct {
	Seq     int64            `json:"seq"`
	Wall    time.Time        `json:"wall"`
	SimTime float64          `json:"simTime"`
	Type    EventType        `json:"type"`
	Job     int              `json:"job,omitempty"`
	Alloc   *core.Allocation `json:"alloc,omitempty"`
	Nodes   []string         `json:"nodes,omitempty"`
	Detail  string           `json:"detail,omitempty"`
}

// subQueueLen is the per-subscriber bounded queue depth. A subscriber that
// falls further behind loses its oldest queued events (drop-oldest), then
// recovers them from the ring on the handler side — Publish itself never
// waits and never disconnects anyone.
const subQueueLen = 256

// subscriber is one SSE consumer's delivery state.
type subscriber struct {
	mu sync.Mutex // serializes push vs close; the reader side needs no lock
	ch chan Event
	// after is the sequence already covered by the subscriber's replay at
	// registration; pushes at or below it are duplicates and skipped.
	after   int64
	closed  bool
	dropped atomic.Int64 // events evicted from this queue
}

// push enqueues ev without ever blocking: when the bounded queue is full the
// oldest queued event is evicted (counted in dropped) to make room. The
// handler detects the resulting gap by sequence number and backfills from
// the ring.
func (s *subscriber) push(ev Event, b *eventBus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || ev.Seq <= s.after {
		return
	}
	for {
		select {
		case s.ch <- ev:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			// Throttled black-box evidence: one event per 1024 drops keeps a
			// melting-down subscriber from flooding the flight ring.
			if n := b.dropped.Add(1); n&1023 == 1 {
				b.flight.Record("sse", obs.SevWarn, "subscriber dropping events",
					obs.KI("droppedTotal", n), obs.KI("seq", ev.Seq))
			}
		default:
			// A concurrent reader drained the queue between our two selects;
			// retry the send.
		}
	}
}

// eventBus fans scheduler events out to SSE subscribers. The hot path is
// wait-free for readers and near-lock-free for writers: a small publish
// mutex serializes only sequence assignment and the ring store; fanout
// happens outside it into per-subscriber bounded queues that drop-oldest
// rather than backpressure. A fixed ring of atomic pointers lets late or
// lossy subscribers replay recent history.
type eventBus struct {
	ring []atomic.Pointer[Event] // ring[seq % len(ring)] when seq > 0
	head atomic.Int64            // highest sequence published

	pubMu sync.Mutex // serializes seq assignment + ring writes + subscribe cuts

	subsMu  sync.RWMutex
	subs    map[int]*subscriber
	nextSub int

	dropped atomic.Int64 // total events evicted across all subscriber queues

	flight *obs.FlightRecorder // black-box evidence for drop storms
}

func newEventBus(size int, flight *obs.FlightRecorder) *eventBus {
	return &eventBus{
		ring:   make([]atomic.Pointer[Event], size),
		subs:   make(map[int]*subscriber),
		flight: flight,
	}
}

// publish assigns the next sequence number, records the event in the ring
// and delivers it to every subscriber's queue. It never blocks on a slow
// subscriber: queue overflow evicts that subscriber's oldest event instead.
func (b *eventBus) publish(ev Event) {
	b.pubMu.Lock()
	seq := b.head.Load() + 1
	ev.Seq = seq
	stored := ev
	b.ring[int(seq)%len(b.ring)].Store(&stored)
	b.head.Store(seq)
	b.pubMu.Unlock()

	b.subsMu.RLock()
	for _, s := range b.subs {
		s.push(ev, b)
	}
	b.subsMu.RUnlock()
}

// subscribe registers a new subscriber and returns its id, live channel and
// the replay of ring events with Seq > after (in order). The replay cut is
// taken under the publish mutex, so an event is delivered either in the
// replay or via the channel — never both, never neither.
func (b *eventBus) subscribe(after int64) (int, chan Event, []Event) {
	s := &subscriber{ch: make(chan Event, subQueueLen)}
	b.pubMu.Lock()
	head := b.head.Load()
	var replay []Event
	lo := head - int64(len(b.ring)) + 1
	if lo < 1 {
		lo = 1
	}
	if after+1 > lo {
		lo = after + 1
	}
	for seq := lo; seq <= head; seq++ {
		if p := b.ring[int(seq)%len(b.ring)].Load(); p != nil && p.Seq == seq {
			replay = append(replay, *p)
		}
	}
	s.after = head
	b.subsMu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = s
	b.subsMu.Unlock()
	b.pubMu.Unlock()
	return id, s.ch, replay
}

// unsubscribe removes a subscriber and closes its channel.
func (b *eventBus) unsubscribe(id int) {
	b.subsMu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
	}
	b.subsMu.Unlock()
	if !ok {
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}

// window returns the ring events with lo <= Seq <= hi that are still
// resident, plus the count that have been overwritten (lost for good).
func (b *eventBus) window(lo, hi int64) ([]Event, int64) {
	if lo < 1 {
		lo = 1
	}
	var out []Event
	var missing int64
	for seq := lo; seq <= hi; seq++ {
		if p := b.ring[int(seq)%len(b.ring)].Load(); p != nil && p.Seq == seq {
			out = append(out, *p)
		} else {
			missing++
		}
	}
	return out, missing
}

// droppedTotal reports events evicted from subscriber queues since start.
func (b *eventBus) droppedTotal() int64 { return b.dropped.Load() }

// numSubscribers reports currently registered subscribers.
func (b *eventBus) numSubscribers() int {
	b.subsMu.RLock()
	n := len(b.subs)
	b.subsMu.RUnlock()
	return n
}

// handleEvents streams the decision log as Server-Sent Events. `?since=N`
// or a Last-Event-ID header resumes after sequence N. The handler owns gap
// repair: when its bounded queue dropped events (or racing publishers
// delivered out of order), it backfills the missing sequence range from the
// ring, so the emitted stream is strictly ordered and exactly-once per
// sequence number; only events already overwritten in the ring are truly
// lost, and those are announced with a ": dropped N events" comment.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var after int64
	if s := r.URL.Query().Get("since"); s != "" {
		after, _ = strconv.ParseInt(s, 10, 64)
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		after, _ = strconv.ParseInt(s, 10, 64)
	}
	id, ch, replay := d.bus.subscribe(after)
	defer d.bus.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	next := after + 1
	for _, ev := range replay {
		if err := writeSSE(w, ev); err != nil {
			return
		}
		next = ev.Seq + 1
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ev.Seq < next { // duplicate of an already-emitted sequence
				continue
			}
			if ev.Seq > next { // queue dropped events; repair from the ring
				fill, missing := d.bus.window(next, ev.Seq-1)
				if missing > 0 {
					if _, err := fmt.Fprintf(w, ": dropped %d events\n\n", missing); err != nil {
						return
					}
				}
				for _, f := range fill {
					if err := writeSSE(w, f); err != nil {
						return
					}
				}
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			next = ev.Seq + 1
			flusher.Flush()
		}
	}
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optimus/internal/cluster"
)

func testServer(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d := testDaemon(t)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func postJob(t *testing.T, url, body string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, st
}

func TestHTTPSubmitStatusCancel(t *testing.T) {
	d, srv := testServer(t)

	code, st := postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	if st.ID != 1 || st.State != StatePending || st.Model != "resnet-50" {
		t.Fatalf("submit response %+v", st)
	}

	d.Step()

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", srv.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateRunning || got.Alloc.Tasks() == 0 {
		t.Fatalf("status after round: %+v", got)
	}

	// The wire shape of the allocation is {"ps":N,"workers":M}.
	raw, _ := json.Marshal(got.Alloc)
	if !bytes.Contains(raw, []byte(`"ps":`)) || !bytes.Contains(raw, []byte(`"workers":`)) {
		t.Fatalf("allocation wire shape %s", raw)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", srv.URL, st.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	// Cancel again → 409; unknown job → 404.
	resp, _ = http.DefaultClient.Do(req)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status = %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", resp.StatusCode)
	}
}

func TestHTTPValidationAndLimits(t *testing.T) {
	_, srv := testServer(t)
	if code, _ := postJob(t, srv.URL, `{"model":"nope","mode":"async"}`); code != http.StatusBadRequest {
		t.Fatalf("bad model status = %d", code)
	}
	// Oversized body.
	big := `{"model":"` + strings.Repeat("x", maxBodyBytes) + `","mode":"async"}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d", resp.StatusCode)
	}
}

func TestHTTPListAndCluster(t *testing.T) {
	d, srv := testServer(t)
	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	postJob(t, srv.URL, `{"model":"seq2seq","mode":"sync"}`)
	d.Step()

	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 || list.Jobs[0].ID != 1 || list.Jobs[1].ID != 2 {
		t.Fatalf("list %+v", list.Jobs)
	}

	resp, err = http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cs.Nodes) != cluster.Testbed().Len() {
		t.Fatalf("cluster reports %d nodes", len(cs.Nodes))
	}
	if cs.ClusterShare <= 0 {
		t.Fatalf("cluster share %g with two running jobs", cs.ClusterShare)
	}
	var usedCPU float64
	for _, n := range cs.Nodes {
		usedCPU += n.Used["cpu"]
	}
	if usedCPU <= 0 {
		t.Fatal("no per-node CPU usage reported")
	}
}

func TestHTTPMetrics(t *testing.T) {
	d, srv := testServer(t)
	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	d.Step()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"optimus_jobs_arrived_total 1",
		"optimusd_rounds_total 1",
		"optimusd_jobs_running 1",
		"optimus_running_tasks",
		"optimusd_sim_time_seconds 600",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestHTTPEventsSSE(t *testing.T) {
	d, srv := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	postJob(t, srv.URL, `{"model":"resnet-50","mode":"async","threshold":0.01}`)
	d.Step()

	// Read until the "placed" event arrives.
	scanner := bufio.NewScanner(resp.Body)
	var sawSubmitted, sawPlaced bool
	var lastID string
	for scanner.Scan() && !(sawSubmitted && sawPlaced) {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			lastID = strings.TrimPrefix(line, "id: ")
		case line == "event: submitted":
			sawSubmitted = true
		case line == "event: placed":
			sawPlaced = true
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
		}
	}
	if !sawSubmitted || !sawPlaced {
		t.Fatalf("stream ended early: submitted=%v placed=%v err=%v", sawSubmitted, sawPlaced, scanner.Err())
	}
	cancel()

	// Resuming with ?since=0 replays history from the ring.
	resp2, err := http.Get(srv.URL + "/v1/events?since=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	scanner = bufio.NewScanner(resp2.Body)
	deadline := time.After(5 * time.Second)
	got := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			if strings.HasPrefix(scanner.Text(), "id: ") {
				got <- strings.TrimPrefix(scanner.Text(), "id: ")
				return
			}
		}
	}()
	select {
	case first := <-got:
		if first != "1" {
			t.Fatalf("replay starts at id %s, want 1 (last live id was %s)", first, lastID)
		}
	case <-deadline:
		t.Fatal("replay produced no events")
	}
}

package serve

import (
	"bytes"
	"strings"
	"testing"

	"optimus/internal/cluster"
)

// TestSnapshotRestoreMidRun is the crash-recovery contract: kill the daemon
// while jobs are mid-training, start a fresh daemon from the snapshot, and
// the jobs resume with their progress, fitted loss model and speed samples
// intact, get re-placed on the first round, and run to completion.
func TestSnapshotRestoreMidRun(t *testing.T) {
	d1 := testDaemon(t)
	slow := submit(t, d1, SubmitRequest{Model: "resnet-50", Mode: "async",
		Threshold: 0.01, Downscale: 1})
	fast := submit(t, d1, SubmitRequest{Model: "resnext-110", Mode: "async",
		Threshold: 0.02, Downscale: 1})
	// Run far enough for the fast job to finish and the slow one to have a
	// fitted loss curve.
	for i := 0; i < 40; i++ {
		d1.Step()
	}
	before, err := d1.Status(slow)
	if err != nil {
		t.Fatal(err)
	}
	if before.State != StateRunning || before.LossFit == nil {
		t.Fatalf("precondition: slow job %+v", before)
	}
	fastBefore, _ := d1.Status(fast)
	if fastBefore.State != StateDone {
		t.Fatalf("precondition: fast job state %s", fastBefore.State)
	}

	var buf bytes.Buffer
	if err := d1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// d1 is now "killed": everything below uses a fresh daemon and cluster.

	d2, err := New(Config{Cluster: cluster.Testbed(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d2.Now() != d1.Now() || d2.Rounds() != d1.Rounds() {
		t.Fatalf("clock not restored: now %g/%g rounds %d/%d",
			d2.Now(), d1.Now(), d2.Rounds(), d1.Rounds())
	}

	after, err := d2.Status(slow)
	if err != nil {
		t.Fatal(err)
	}
	// Fitted model state survives the restart byte-for-byte: same
	// observations → same NNLS fit.
	if after.ProgressEpochs != before.ProgressEpochs {
		t.Fatalf("progress %.4f != %.4f", after.ProgressEpochs, before.ProgressEpochs)
	}
	if after.LossFit == nil {
		t.Fatal("loss fit lost in restore")
	}
	if *after.LossFit != *before.LossFit {
		t.Fatalf("loss fit drifted: %+v != %+v", *after.LossFit, *before.LossFit)
	}
	if after.SpeedConfigs != before.SpeedConfigs {
		t.Fatalf("speed configs %d != %d", after.SpeedConfigs, before.SpeedConfigs)
	}
	if after.EstTotalEpochs != before.EstTotalEpochs {
		t.Fatalf("estimated epochs %.2f != %.2f", after.EstTotalEpochs, before.EstTotalEpochs)
	}
	// Running jobs come back as waiting (no deployment yet) ...
	if after.State != StateWaiting || after.Alloc.Tasks() != 0 {
		t.Fatalf("restored job should await re-placement, got %+v", after)
	}
	// ... and the completed job keeps its completion record.
	fastAfter, _ := d2.Status(fast)
	if fastAfter.State != StateDone || fastAfter.JCT != fastBefore.JCT {
		t.Fatalf("done job corrupted by restore: %+v vs %+v", fastAfter, fastBefore)
	}

	// First round after restore re-places the job with a full-size
	// allocation and emits a fresh "placed" event.
	_, ch, _ := d2.bus.subscribe(0)
	d2.Step()
	after, _ = d2.Status(slow)
	if after.State != StateRunning || after.Alloc.Tasks() == 0 {
		t.Fatalf("job not re-placed after restore: %+v", after)
	}
	var placed bool
	for len(ch) > 0 {
		if ev := <-ch; ev.Type == EventPlaced && ev.Job == slow {
			placed = true
		}
	}
	if !placed {
		t.Fatal("no placed event for restored job")
	}

	// And it runs to completion on the restored daemon.
	for i := 0; i < 500 && after.State != StateDone; i++ {
		d2.Step()
		after, _ = d2.Status(slow)
	}
	if after.State != StateDone {
		t.Fatalf("restored job never converged: %+v", after)
	}
	// New submissions don't collide with restored IDs.
	id := submit(t, d2, SubmitRequest{Model: "resnext-110", Mode: "async"})
	if id != 3 {
		t.Fatalf("post-restore ID = %d, want 3", id)
	}
}

func TestRestoreRejectsLiveState(t *testing.T) {
	d1 := testDaemon(t)
	submit(t, d1, SubmitRequest{Model: "resnext-110", Mode: "async"})
	var buf bytes.Buffer
	if err := d1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	live := testDaemon(t)
	live.Step()
	if err := live.Restore(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "live state") {
		t.Fatalf("restore over live state: %v", err)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	cases := map[string]string{
		"bad version":   `{"version":99,"jobs":[]}`,
		"not json":      `nope`,
		"unknown model": `{"version":1,"jobs":[{"id":1,"model":"no-such","mode":"async"}]}`,
		"bad mode":      `{"version":1,"jobs":[{"id":1,"model":"resnet-50","mode":"batch"}]}`,
		"bad state":     `{"version":1,"jobs":[{"id":1,"model":"resnet-50","mode":"async","state":"exploded"}]}`,
	}
	for name, body := range cases {
		d := testDaemon(t)
		if err := d.Restore(strings.NewReader(body)); err == nil {
			t.Errorf("%s: restore accepted %q", name, body)
		}
	}
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/obs"
	"optimus/internal/wal"
)

func get(t *testing.T, d *Daemon, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	d.Handler().ServeHTTP(w, req)
	return w
}

func TestHealthzLiveness(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	w := get(t, d, "/healthz")
	if w.Code != 200 {
		t.Fatalf("GET /healthz = %d, want 200", w.Code)
	}
	if got := w.Body.String(); got != "ok\n" {
		t.Fatalf("GET /healthz body = %q, want \"ok\\n\"", got)
	}
}

func decodeReady(t *testing.T, w *httptest.ResponseRecorder) ReadyStatus {
	t.Helper()
	var st ReadyStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding /readyz body: %v", err)
	}
	return st
}

func TestReadyzLeaderFresh(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	w := get(t, d, "/readyz")
	st := decodeReady(t, w)
	if w.Code != 200 || !st.Ready {
		t.Fatalf("GET /readyz = %d ready=%v, want 200 ready: %+v", w.Code, st.Ready, st)
	}
	if c, ok := st.Components["engine"]; !ok || !c.OK {
		t.Fatalf("engine component not ok: %+v", st.Components)
	}
}

func TestReadyzEngineStale(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(),
		EngineStaleAfter: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	time.Sleep(2 * time.Millisecond)
	w := get(t, d, "/readyz")
	st := decodeReady(t, w)
	if w.Code != 503 || st.Ready {
		t.Fatalf("stale engine: GET /readyz = %d ready=%v, want 503 not-ready", w.Code, st.Ready)
	}
	if c := st.Components["engine"]; c.OK {
		t.Fatalf("engine component should fail when stale: %+v", c)
	}
	// The next round refreshes the bound's anchor, but the 1ns bound keeps it
	// failing — flip the config bound instead to see recovery.
	d.cfg.EngineStaleAfter = time.Hour
	d.Step()
	if st := d.Readiness(); !st.Ready {
		t.Fatalf("after a fresh round, want ready: %+v", st)
	}
}

func TestReadyzFollowerLag(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), MaxFollowerLag: 10})
	if err != nil {
		t.Fatal(err)
	}
	d.SetReadOnly(true)
	d.SetHAStatus(HAStatus{Role: "follower", ID: "standby", LagRecords: 3})
	w := get(t, d, "/readyz")
	st := decodeReady(t, w)
	if w.Code != 200 || !st.Ready {
		t.Fatalf("follower lag=3 (bound 10): GET /readyz = %d ready=%v, want ready: %+v",
			w.Code, st.Ready, st)
	}
	if _, ok := st.Components["engine"]; ok {
		t.Fatalf("follower readiness must not check engine freshness: %+v", st.Components)
	}
	d.SetHAStatus(HAStatus{Role: "follower", ID: "standby", LagRecords: 100})
	w = get(t, d, "/readyz")
	st = decodeReady(t, w)
	if w.Code != 503 || st.Ready {
		t.Fatalf("follower lag=100 (bound 10): GET /readyz = %d ready=%v, want not-ready",
			w.Code, st.Ready)
	}
	if c := st.Components["ha"]; c.OK {
		t.Fatalf("ha component should fail on excess lag: %+v", c)
	}
}

func TestReadyzFailStop(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	if st := d.Readiness(); !st.Ready {
		t.Fatalf("want ready before fail-stop: %+v", st)
	}
	d.FailStop("leader lease lost (test)")
	w := get(t, d, "/readyz")
	st := decodeReady(t, w)
	if w.Code != 503 || st.Ready {
		t.Fatalf("after FailStop: GET /readyz = %d ready=%v, want 503 not-ready", w.Code, st.Ready)
	}
	if c := st.Components["failstop"]; c.OK || !strings.Contains(c.Detail, "lease lost") {
		t.Fatalf("failstop component = %+v, want failing with the reason", c)
	}
	if reason, ok := d.FailStopped(); !ok || !strings.Contains(reason, "lease lost") {
		t.Fatalf("FailStopped() = %q, %v", reason, ok)
	}
	// Fail-stop implies read-only: no further acks.
	if _, err := d.Submit(SubmitRequest{Model: "resnext-110", Mode: "async"}); err != ErrNotLeader {
		t.Fatalf("Submit after FailStop = %v, want ErrNotLeader", err)
	}
	// The fail-stop left black-box evidence.
	found := false
	for _, ev := range d.Flight().Tail(16) {
		if ev.Msg == "fail-stop" {
			found = true
		}
	}
	if !found {
		t.Fatal("no fail-stop event in the flight recorder")
	}
}

func TestReadyzWALUnappendable(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "wal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1 forces a segment roll on every append after the first;
	// deleting the directory makes the roll's OpenFile fail, and that failure
	// is sticky — exactly how a dead disk surfaces.
	l, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	d.AttachWAL(l)
	if _, err := d.Submit(SubmitRequest{Model: "resnext-110", Mode: "async"}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if st := d.Readiness(); !st.Components["wal"].OK {
		t.Fatalf("want wal ok while appendable: %+v", st)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(SubmitRequest{Model: "resnext-110", Mode: "async"}); err == nil {
		t.Fatal("submit with an unwritable wal dir should fail")
	}
	w := get(t, d, "/readyz")
	st := decodeReady(t, w)
	if w.Code != 503 || st.Ready {
		t.Fatalf("unappendable wal: GET /readyz = %d ready=%v, want 503 not-ready", w.Code, st.Ready)
	}
	if c := st.Components["wal"]; c.OK || c.Detail == "" {
		t.Fatalf("wal component = %+v, want failing with the sticky error", c)
	}
}

func TestDebugBundle(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(SubmitRequest{Model: "resnext-110", Mode: "async"}); err != nil {
		t.Fatal(err)
	}
	d.Step()
	d.Step()
	w := get(t, d, "/debug/bundle")
	if w.Code != 200 {
		t.Fatalf("GET /debug/bundle = %d, want 200", w.Code)
	}
	var b Bundle
	if err := json.Unmarshal(w.Body.Bytes(), &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if b.Reason != "api" || b.Rounds != 2 {
		t.Fatalf("bundle reason=%q rounds=%d, want api/2", b.Reason, b.Rounds)
	}
	if b.Build.GoVersion == "" {
		t.Fatal("bundle missing build info")
	}
	if len(b.Flight) == 0 {
		t.Fatal("bundle has no flight events")
	}
	rounds := 0
	for _, ev := range b.Flight {
		if ev.Component == "engine" && ev.Msg == "round" {
			rounds++
		}
	}
	if rounds != 2 {
		t.Fatalf("bundle flight tail has %d round events, want 2", rounds)
	}
	if !strings.Contains(b.Metrics, "optimus_ready") {
		t.Fatal("bundle metrics snapshot missing optimus_ready")
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Fatal("bundle missing goroutine stacks")
	}

	// WriteBundle is the fail-stop/SIGQUIT path: on-disk and re-parseable.
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := d.WriteBundle(path, "test"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b2 Bundle
	if err := json.Unmarshal(raw, &b2); err != nil {
		t.Fatalf("on-disk bundle is not valid JSON: %v", err)
	}
	if b2.Reason != "test" {
		t.Fatalf("on-disk bundle reason = %q, want test", b2.Reason)
	}
}

// TestFlightRecordAllocBudget pins the daemon's record path at zero
// allocations — the property that lets the recorder stay on by default.
func TestFlightRecordAllocBudget(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed()})
	if err != nil {
		t.Fatal(err)
	}
	f := d.Flight()
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record("engine", obs.SevDebug, "round",
			obs.KI("round", 1), obs.KI("jobs", 3))
	})
	if allocs != 0 {
		t.Fatalf("flight Record allocates %.1f/op, want 0", allocs)
	}
}

func TestSLOAccounting(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(),
		SLOAPILatencyTarget: time.Nanosecond}) // every request counts as slow
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	get(t, d, "/v1/cluster")
	get(t, d, "/nope") // 404, not a 5xx
	s := d.SLO()
	if s.APISlowRate != 1 {
		t.Fatalf("APISlowRate = %g, want 1 with a 1ns target", s.APISlowRate)
	}
	if s.APIErrorRate != 0 {
		t.Fatalf("APIErrorRate = %g, want 0 (404s are not errors)", s.APIErrorRate)
	}
	if s.APISlowBurn != s.APISlowRate/0.01 {
		t.Fatalf("APISlowBurn = %g, want rate/budget", s.APISlowBurn)
	}
	// The cluster snapshot carries the SLO + build blocks after a round.
	d.Step()
	cs := d.Cluster()
	if cs.SLO == nil || cs.Build == nil {
		t.Fatalf("cluster status missing slo/build blocks: %+v", cs)
	}
}

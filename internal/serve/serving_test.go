package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/workload"
)

// TestClusterEncodeLargeConcurrent is the copy-then-encode regression test:
// GET /v1/cluster over a 10k-node cluster must serve (and JSON-encode) a
// consistent snapshot while submits and scheduling rounds race it. Before
// the snapshot rewrite this held the daemon mutex across marshaling 10k
// node maps; under -race this test pins the new lock-free path.
func TestClusterEncodeLargeConcurrent(t *testing.T) {
	d, err := New(Config{
		Cluster: cluster.Uniform(10000,
			cluster.Resources{cluster.CPU: 16, cluster.Memory: 80, cluster.Bandwidth: 1}),
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Two full scheduling rounds race the encodes: each republishes the
	// 10k-node cluster snapshot mid-read. (An unbounded loop would place
	// thousands of tasks over 10k nodes per round and dominate test time.)
	var wgStep sync.WaitGroup
	wgStep.Add(1)
	go func() {
		defer wgStep.Done()
		d.Step()
		d.Step()
	}()

	// ds2 has the zoo's smallest worker cap (GlobalBatch 64): if every
	// submit lands before the first round, a round deploys ≤8×65 tasks.
	// A 512-cap model here can make a single round place ~4600 tasks over
	// 10k nodes, which runs for minutes under the race detector.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := `{"model":"ds2","mode":"async","downscale":0.2}`
			resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				resp, err := http.Get(srv.URL + "/v1/cluster")
				if err != nil {
					t.Errorf("cluster: %v", err)
					return
				}
				var st ClusterStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Errorf("decode cluster: %v", err)
				}
				resp.Body.Close()
				if len(st.Nodes) != 10000 {
					t.Errorf("cluster snapshot has %d nodes, want 10000", len(st.Nodes))
				}
			}
		}()
	}
	wg.Wait()
	wgStep.Wait()
}

// TestSSESlowSubscriber: a stalled subscriber must not delay publish or
// starve healthy subscribers; its overflow is dropped oldest-first and
// counted, and a Last-Event-ID reconnect recovers the dropped span from the
// ring.
func TestSSESlowSubscriber(t *testing.T) {
	bus := newEventBus(4096, nil)

	// The stalled subscriber never drains its channel.
	stalledID, stalledCh, _ := bus.subscribe(0)
	defer bus.unsubscribe(stalledID)
	// The healthy subscriber drains concurrently; it may still drop a few if
	// the race scheduler starves its goroutine, so completeness is asserted
	// as received + its own dropped count.
	healthyID, healthyCh, _ := bus.subscribe(0)
	defer bus.unsubscribe(healthyID)
	bus.subsMu.RLock()
	stalledSub, healthySub := bus.subs[stalledID], bus.subs[healthyID]
	bus.subsMu.RUnlock()
	var received atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range healthyCh {
			received.Add(1)
		}
	}()

	const total = subQueueLen * 4
	start := time.Now()
	for i := 0; i < total; i++ {
		bus.publish(Event{Type: EventSubmitted, Job: i + 1})
	}
	elapsed := time.Since(start)
	// Publish must never block on the stalled queue: with drop-oldest this
	// loop is pure channel ops; a generous bound still catches a blocking
	// regression (which would hang forever, not just run slow).
	if elapsed > 10*time.Second {
		t.Fatalf("publishing %d events took %s; publish is blocking on the stalled subscriber", total, elapsed)
	}

	bus.unsubscribe(healthyID)
	<-done
	if got := received.Load() + healthySub.dropped.Load(); got != total {
		t.Fatalf("healthy subscriber accounts for %d of %d events", got, total)
	}

	// Drop-oldest accounting: the stalled queue holds the NEWEST subQueueLen
	// events; everything older was evicted and counted, per subscriber and
	// in the bus total.
	wantDropped := int64(total - subQueueLen)
	if got := stalledSub.dropped.Load(); got != wantDropped {
		t.Fatalf("stalled subscriber dropped %d events, want %d", got, wantDropped)
	}
	if got := bus.droppedTotal(); got != wantDropped+healthySub.dropped.Load() {
		t.Fatalf("bus dropped %d events, want %d", got, wantDropped+healthySub.dropped.Load())
	}
	// The queue's contents are exactly the newest events, in order.
	wantSeq := int64(total - subQueueLen + 1)
	for i := 0; i < subQueueLen; i++ {
		ev := <-stalledCh
		if ev.Seq != wantSeq {
			t.Fatalf("stalled queue event %d has seq %d, want %d (drop-oldest violated)", i, ev.Seq, wantSeq)
		}
		wantSeq++
	}

	// Last-Event-ID-style resume after the drops: subscribing after the last
	// sequence the stalled consumer actually saw replays the rest exactly.
	resumeAfter := int64(total - subQueueLen)
	_, _, replay := bus.subscribe(resumeAfter)
	if len(replay) != subQueueLen {
		t.Fatalf("resume replayed %d events, want %d", len(replay), subQueueLen)
	}
	for i, ev := range replay {
		if want := resumeAfter + int64(i) + 1; ev.Seq != want {
			t.Fatalf("resume replay[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

// TestSSESlowSubscriberHTTP drives the same property through the HTTP
// handler: a stalled SSE connection must not stall the scheduling loop or a
// healthy subscriber, and the daemon's dropped-event counter must surface
// on /metrics.
func TestSSESlowSubscriberHTTP(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 5, EventBuffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// Stalled subscriber: connects, never reads.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/events", nil)
	stalled, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close()

	// Generate far more events than the stalled subscriber's queue + the
	// kernel socket buffers could absorb, via direct bus publishes.
	const total = 20000
	doneTick := make(chan struct{})
	go func() {
		defer close(doneTick)
		for i := 0; i < total; i++ {
			d.publish(Event{Type: EventSubmitted, Job: i + 1})
		}
	}()
	select {
	case <-doneTick:
	case <-time.After(30 * time.Second):
		t.Fatal("publishing stalled behind a slow SSE subscriber")
	}

	// A fresh subscriber must still connect and see new events promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	req2, _ := http.NewRequestWithContext(ctx2, http.MethodGet,
		fmt.Sprintf("%s/v1/events?since=%d", srv.URL, total), nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	go d.publish(Event{Type: EventSubmitted, Job: total + 1})
	sc := bufio.NewScanner(resp2.Body)
	sawLive := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "id: ") {
			sawLive = true
			break
		}
	}
	if !sawLive {
		t.Fatal("healthy subscriber saw no live events while another subscriber was stalled")
	}
}

// TestSnapshotUnderConcurrentLoad is the sharded-registry equivalence test:
// a graceful-shutdown snapshot taken while submits, cancels and scheduling
// rounds are all in flight must restore into a daemon whose fitted-model
// state round-trips byte-identically.
func TestSnapshotUnderConcurrentLoad(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 17})
	if err != nil {
		t.Fatal(err)
	}

	// Warm up some fitted state.
	for i := 0; i < 6; i++ {
		mode := "async"
		if i%2 == 1 {
			mode = "sync"
		}
		req, err := DecodeSubmit([]byte(fmt.Sprintf(
			`{"model":"resnext-110","mode":%q,"threshold":0.05,"downscale":0.05}`, mode)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		d.Step()
	}

	// Concurrent churn while the snapshot is written.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Step()
			}
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req, _ := DecodeSubmit([]byte(
				`{"model":"resnet-50","mode":"async","threshold":0.05,"downscale":0.05}`))
			if id, err := d.Submit(req); err == nil && rng.Intn(3) == 0 {
				_ = d.Cancel(id)
			}
		}
	}()

	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	d2, err := New(Config{Cluster: cluster.Testbed(), Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Round-trip: re-snapshotting the restored daemon must preserve every
	// job's fitted-model state byte-for-byte (progress, loss observations,
	// speed samples), modulo the documented Running→Waiting deployment reset.
	var buf2 bytes.Buffer
	if err := d2.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	var s1, s2 Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf2.Bytes(), &s2); err != nil {
		t.Fatal(err)
	}
	if len(s1.Jobs) != len(s2.Jobs) {
		t.Fatalf("restored snapshot has %d jobs, original %d", len(s2.Jobs), len(s1.Jobs))
	}
	if s1.SimTime != s2.SimTime || s1.Rounds != s2.Rounds || s1.NextID != s2.NextID {
		t.Fatalf("header drift: %v/%v/%v vs %v/%v/%v",
			s1.SimTime, s1.Rounds, s1.NextID, s2.SimTime, s2.Rounds, s2.NextID)
	}
	for i := range s1.Jobs {
		a, b := s1.Jobs[i], s2.Jobs[i]
		if a.State == StateRunning { // documented restore transform
			a.State = StateWaiting
			a.Alloc = s2.Jobs[i].Alloc
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("job %d state not byte-identical after restore:\n  before: %s\n  after:  %s",
				a.ID, ja, jb)
		}
	}
	// And the serving path agrees with the engine state.
	for _, js := range s1.Jobs {
		st, err := d2.Status(js.ID)
		if err != nil {
			t.Fatalf("status %d after restore: %v", js.ID, err)
		}
		if st.ProgressEpochs != js.Progress {
			t.Fatalf("job %d progress %g after restore, want %g", js.ID, st.ProgressEpochs, js.Progress)
		}
	}
}

// TestOpenLoop1000Clients is the make-race acceptance load: ≥1000 concurrent
// open-loop clients (each firing its operations at intended times, never
// gated on responses) against the sharded daemon with the scheduler loop
// running. Mirrors `optimusd-load -duration -mix` in-process so the race
// detector sees every interleaving.
func TestOpenLoop1000Clients(t *testing.T) {
	const nClients = 1000
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 23, MaxJobs: 4 * nClients})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wgStep sync.WaitGroup
	wgStep.Add(1)
	go func() {
		defer wgStep.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.Step()
			}
		}
	}()

	// Seed the keyspace.
	seedReq, _ := DecodeSubmit([]byte(`{"model":"resnext-110","mode":"async","downscale":0.2}`))
	if _, err := d.Submit(seedReq); err != nil {
		t.Fatal(err)
	}

	var maxID atomic.Int64
	maxID.Store(1)
	var errs atomic.Int64
	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 128},
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			kd, _ := workload.NewKeyDist("zipfian", 0)
			const opsPerClient = 3
			for i := 0; i < opsPerClient; i++ {
				// Open-loop pacing: fire at the intended time whether or not
				// the previous response came back.
				intended := start.Add(time.Duration(rng.Int63n(int64(500 * time.Millisecond))))
				if s := time.Until(intended); s > 0 {
					time.Sleep(s)
				}
				switch r := rng.Float64(); {
				case r < 0.10: // submit
					resp, err := client.Post(srv.URL+"/v1/jobs", "application/json",
						strings.NewReader(`{"model":"resnet-50","mode":"async","downscale":0.2}`))
					if err != nil {
						errs.Add(1)
						continue
					}
					var created struct {
						ID int64 `json:"id"`
					}
					if resp.StatusCode == http.StatusCreated &&
						json.NewDecoder(resp.Body).Decode(&created) == nil {
						for {
							cur := maxID.Load()
							if created.ID <= cur || maxID.CompareAndSwap(cur, created.ID) {
								break
							}
						}
					} else if resp.StatusCode != http.StatusTooManyRequests {
						errs.Add(1)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case r < 0.95: // status via zipfian key
					id := int64(kd.Draw(rng, int(maxID.Load()))) + 1
					resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%d", srv.URL, id))
					if err != nil {
						errs.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					// 404 is legal: IDs are assigned before the registry
					// insert, so a racing reader can probe an ID a hair
					// before its submit's insert lands.
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						errs.Add(1)
					}
				default: // delete
					id := int64(kd.Draw(rng, int(maxID.Load()))) + 1
					req, _ := http.NewRequest(http.MethodDelete,
						fmt.Sprintf("%s/v1/jobs/%d", srv.URL, id), nil)
					resp, err := client.Do(req)
					if err != nil {
						errs.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict &&
						resp.StatusCode != http.StatusNotFound {
						errs.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	wgStep.Wait()

	if n := errs.Load(); n > 0 {
		t.Fatalf("%d operations failed under 1000-client open-loop load", n)
	}
	if d.Cluster().Jobs != d.reg.len() {
		t.Fatalf("cluster snapshot jobs %d != registry %d", d.Cluster().Jobs, d.reg.len())
	}
}

package serve

import (
	"strings"
	"testing"

	"optimus/internal/cluster"
)

// testDaemon builds a daemon over the paper's testbed cluster with noise
// small enough for deterministic-ish assertions.
func testDaemon(t *testing.T) *Daemon {
	t.Helper()
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func submit(t *testing.T, d *Daemon, req SubmitRequest) int {
	t.Helper()
	id, err := d.Submit(req)
	if err != nil {
		t.Fatalf("Submit(%+v): %v", req, err)
	}
	return id
}

func TestJobLifecycle(t *testing.T) {
	d := testDaemon(t)
	id := submit(t, d, SubmitRequest{Model: "resnet-50", Mode: "async",
		Threshold: 0.01, Downscale: 1})

	st, err := d.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending {
		t.Fatalf("state before first round = %s, want pending", st.State)
	}

	d.Step()
	st, _ = d.Status(id)
	if st.State != StateRunning {
		t.Fatalf("state after first round = %s, want running", st.State)
	}
	if st.Alloc.PS < 1 || st.Alloc.Workers < 1 {
		t.Fatalf("running job has empty allocation %+v", st.Alloc)
	}
	if len(st.Nodes) == 0 {
		t.Fatal("running job reports no nodes")
	}
	if st.ProgressEpochs <= 0 {
		t.Fatal("no progress after a round")
	}

	for i := 0; i < 500 && st.State != StateDone; i++ {
		d.Step()
		st, _ = d.Status(id)
	}
	if st.State != StateDone {
		t.Fatalf("job never converged; final state %s progress %.1f", st.State, st.ProgressEpochs)
	}
	if st.JCT <= 0 || st.DoneAtSim <= st.ArrivalSim {
		t.Fatalf("bad completion accounting: %+v", st)
	}
	if st.Alloc.Tasks() != 0 {
		t.Fatalf("done job still holds allocation %+v", st.Alloc)
	}

	// Online estimation state must have accumulated while running.
	if st.SpeedConfigs < 5 {
		t.Fatalf("speed estimator saw %d configurations, want ≥ 5 (pre-run profiling)", st.SpeedConfigs)
	}
}

func TestLossFitSurfacesInStatus(t *testing.T) {
	d := testDaemon(t)
	// Slow job: plenty of rounds to accumulate loss observations.
	id := submit(t, d, SubmitRequest{Model: "resnet-50", Mode: "async",
		Threshold: 0.01, Downscale: 0.5})
	var fitted bool
	for i := 0; i < 120; i++ {
		d.Step()
		st, _ := d.Status(id)
		if st.LossFit != nil {
			if st.LossFit.Samples < 5 {
				t.Fatalf("fit reported from %d samples", st.LossFit.Samples)
			}
			if st.LossFit.MaxLoss <= 0 {
				t.Fatalf("fitted curve has MaxLoss %g", st.LossFit.MaxLoss)
			}
			if st.EstRemainingEpochs <= 0 && st.State == StateRunning {
				t.Fatalf("running job with fit reports no remaining epochs: %+v", st)
			}
			fitted = true
			break
		}
		if st.State == StateDone {
			break
		}
	}
	if !fitted {
		t.Fatal("loss fit never surfaced in status")
	}
}

func TestCancelReleasesResources(t *testing.T) {
	d := testDaemon(t)
	id := submit(t, d, SubmitRequest{Model: "resnet-50", Mode: "async",
		Threshold: 0.01, Downscale: 1})
	d.Step()
	if st, _ := d.Status(id); st.State != StateRunning {
		t.Fatalf("precondition: job not running, got %s", st.State)
	}
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Status(id)
	if st.State != StateCancelled || st.Alloc.Tasks() != 0 {
		t.Fatalf("after cancel: %+v", st)
	}
	// Cancelling again is a conflict.
	if err := d.Cancel(id); err != ErrTerminal {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
	// The next round rebuilds the cluster without the job.
	d.Step()
	cs := d.Cluster()
	if cs.ClusterShare != 0 {
		t.Fatalf("cluster share %.3f after cancelling the only job", cs.ClusterShare)
	}
	if cs.LiveJobs != 0 {
		t.Fatalf("live jobs %d after cancel", cs.LiveJobs)
	}
}

func TestAdmissionControl(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{Model: "resnext-110", Mode: "async"}
	submit(t, d, req)
	submit(t, d, req)
	if _, err := d.Submit(req); err != ErrFull {
		t.Fatalf("third submit: %v, want ErrFull", err)
	}
	// Cancelling frees an admission slot.
	if err := d.Cancel(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(req); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	bad := []string{
		``,
		`not json`,
		`{"model":"no-such-model","mode":"async"}`,
		`{"model":"resnext-110","mode":"batch"}`,
		`{"model":"resnext-110","mode":"async","threshold":-1}`,
		`{"model":"resnext-110","mode":"async","threshold":0.9}`,
		`{"model":"resnext-110","mode":"async","downscale":1.5}`,
		`{"model":"resnext-110","mode":"async","unknown":1}`,
		`{"model":"resnext-110","mode":"async"}{"again":true}`,
	}
	for _, body := range bad {
		if _, err := DecodeSubmit([]byte(body)); err == nil {
			t.Errorf("DecodeSubmit(%q) accepted", body)
		}
	}
	good := `{"model":"resnext-110","mode":"sync","threshold":0.05,"downscale":0.25}`
	req, err := DecodeSubmit([]byte(good))
	if err != nil {
		t.Fatalf("DecodeSubmit(%q): %v", good, err)
	}
	if req.Model != "resnext-110" || req.Mode != "sync" {
		t.Fatalf("decoded %+v", req)
	}
}

func TestSchedulerEventsEmitted(t *testing.T) {
	d := testDaemon(t)
	_, ch, _ := d.bus.subscribe(0)
	id := submit(t, d, SubmitRequest{Model: "resnext-110", Mode: "async",
		Threshold: 0.02, Downscale: 1})
	for i := 0; i < 200; i++ {
		d.Step()
		if st, _ := d.Status(id); st.State == StateDone {
			break
		}
	}
	var kinds []string
drain:
	for {
		select {
		case ev := <-ch:
			kinds = append(kinds, string(ev.Type))
		default:
			break drain
		}
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []EventType{EventSubmitted, EventPlaced, EventCompleted} {
		if !strings.Contains(joined, string(want)) {
			t.Errorf("event stream missing %q: %s", want, joined)
		}
	}
	// Sequence numbers must be strictly increasing from 1.
	_, _, replay := d.bus.subscribe(0)
	for i, ev := range replay {
		if ev.Seq != int64(i+1) {
			t.Fatalf("replay[%d].Seq = %d", i, ev.Seq)
		}
	}
}

func TestStragglerFaultEvents(t *testing.T) {
	d, err := New(Config{Cluster: cluster.Testbed(), Seed: 3,
		StragglerProb: 1.0}) // every running job degrades every round
	if err != nil {
		t.Fatal(err)
	}
	id := submit(t, d, SubmitRequest{Model: "resnet-50", Mode: "async",
		Threshold: 0.01, Downscale: 1})
	d.Step()
	st, _ := d.Status(id)
	if !st.Straggling {
		t.Fatal("job not straggling with StragglerProb=1")
	}
	d.Step() // Optimus replaces the straggler after one detection round
	_, _, replay := d.bus.subscribe(0)
	var faults, recoveries int
	for _, ev := range replay {
		switch ev.Type {
		case EventFault:
			faults++
		case EventRecovered:
			recoveries++
		}
	}
	if faults == 0 || recoveries == 0 {
		t.Fatalf("faults=%d recoveries=%d, want both > 0", faults, recoveries)
	}
}

func TestEmptyRegistryTicksAdvanceClock(t *testing.T) {
	d := testDaemon(t)
	d.Step()
	d.Step()
	if got := d.Now(); got != 1200 {
		t.Fatalf("Now() = %g after two idle rounds, want 1200", got)
	}
	if d.Rounds() != 2 {
		t.Fatalf("Rounds() = %d, want 2", d.Rounds())
	}
}

package serve

import (
	"fmt"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/lossfit"
	"optimus/internal/metrics"
	"optimus/internal/obs"
	"optimus/internal/sim"
	"optimus/internal/wal"
	"optimus/internal/workload"
)

// Step executes one scheduling round: profile newly admitted jobs, rebuild
// the scheduler's estimated views, re-run §4.1 allocation and §4.2
// placement against the whole cluster, advance every deployed job by one
// interval of the ground-truth physics, and feed the resulting noisy
// observations back into the estimators. It is the live equivalent of one
// iteration of sim.Run's interval loop and is safe to call concurrently
// with the HTTP handlers.
//
// Concurrency: Step holds the engine mutex for the whole round, but the
// round never freezes the serving path — deployment state is swapped in and
// out through the registry's shard seams (short per-job shard-lock critical
// sections), so submits, cancels and status reads on other jobs proceed
// while the round runs.
func (d *Daemon) Step() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stepLocked()
}

// active returns the schedulable jobs in submission order, reading each
// job's state under its shard lock. A job cancelled after this cut is
// re-checked under its shard lock before any deployment mutation.
func (d *Daemon) active() []*job {
	return d.reg.collect(func(j *job) bool { return !j.state.terminal() })
}

func (d *Daemon) stepLocked() {
	d.drainArrivalsLocked()
	active := d.active()
	if len(active) == 0 {
		// Still release whatever the previous round deployed: the last
		// live job may have been cancelled since. The incremental placement
		// session cannot see this out-of-band reset, so its cache must not
		// survive it.
		d.cfg.Cluster.ResetAll()
		if d.policy.Incr != nil {
			d.policy.Incr.Place.Invalidate()
		}
		d.advanceClockLocked(d.now + d.cfg.Interval)
		d.rounds++
		d.roundsN.Store(int64(d.rounds))
		d.lastRoundWall.Store(time.Now().UnixNano())
		d.flight.Record("engine", obs.SevDebug, "round",
			obs.KI("round", int64(d.rounds)), obs.KI("jobs", 0))
		d.walRoundLocked()
		d.publishClusterLocked()
		return
	}
	d.rounds++
	d.roundsN.Store(int64(d.rounds))
	intervalEnd := d.now + d.cfg.Interval
	d.audit.Stamp(d.rounds, d.now)
	ivSpan := d.tracer.Begin("interval")
	ivStart := time.Now()

	// §3.2 pre-run profiling for jobs on their first round, then the
	// scheduler's estimated views — the round's estimation phase. Only
	// engine-guarded fields are touched; no shard lock needed.
	fitSpan := d.tracer.Begin("fit")
	for _, j := range active {
		if !j.profiled {
			samples := sim.PreRunProfile(j.speedEst, j.spec, d.cfg.PreRunSamples,
				d.cfg.SpeedNoise, d.rng)
			j.profiled = true
			if d.walOn() {
				d.walAppend(wal.TypeProfile,
					walProfile{ID: j.spec.ID, Samples: samples})
			}
		}
	}
	infos := make([]*core.JobInfo, len(active))
	for i, j := range active {
		refitStart := time.Now()
		infos[i] = sim.EstimatedView(d.cfg.Cluster, j.spec, j.progress,
			j.lossFit, j.speedEst, d.cfg.PriorEpochs, d.cfg.PriorityFactor)
		d.rec.ObserveRefitDuration(time.Since(refitStart).Seconds())
	}
	d.tracer.End(fitSpan)

	// Allocate against the cluster's aggregate capacity.
	allocSpan := d.tracer.Begin("allocate")
	allocStart := time.Now()
	alloc := d.policy.Allocate(infos, d.cfg.Cluster.Capacity())
	d.rec.ObserveAllocateDuration(time.Since(allocStart).Seconds())
	d.tracer.End(allocSpan)

	// Place. The cluster is rebuilt from scratch each round — so cancelled
	// jobs' resources are implicitly released — except that an incremental
	// policy owns the rebuild itself (its session skips both the reset and
	// the re-placement on rounds where nothing changed).
	placeSpan := d.tracer.Begin("place")
	placeStart := time.Now()
	if d.policy.Incr == nil {
		d.cfg.Cluster.ResetAll()
	}
	reqs := make([]core.PlacementRequest, 0, len(active))
	for _, info := range infos {
		a := alloc[info.ID]
		if a.PS > 0 && a.Workers > 0 {
			reqs = append(reqs, core.PlacementRequest{
				JobID: info.ID, Alloc: a,
				WorkerRes: info.WorkerRes, PSRes: info.PSRes,
			})
		}
	}
	placements, unplacedIDs := d.policy.Place(reqs, d.cfg.Cluster)

	// Fragmentation escape hatch (§4.2): shrink an unpackable allocation
	// until it fits rather than leaving the job idle for a round. Retries
	// bypass the incremental session (PlaceRetry) and the rescued placements
	// override — never mutate — the policy's returned maps.
	placeRetry := d.policy.PlaceRetry
	if placeRetry == nil {
		placeRetry = d.policy.Place
	}
	placeOverride := make(map[int]core.Placement)
	infoByID := make(map[int]*core.JobInfo, len(infos))
	for _, in := range infos {
		infoByID[in.ID] = in
	}
	for _, id := range unplacedIDs {
		a, info := alloc[id], infoByID[id]
		if info == nil || a.PS < 1 || a.Workers < 1 {
			continue
		}
		for a.PS+a.Workers > 2 {
			if a.Workers >= a.PS {
				a.Workers--
			} else {
				a.PS--
			}
			retry := []core.PlacementRequest{{
				JobID: id, Alloc: a,
				WorkerRes: info.WorkerRes, PSRes: info.PSRes,
			}}
			pls, unp := placeRetry(retry, d.cfg.Cluster)
			if len(unp) == 0 {
				placeOverride[id] = pls[id]
				break
			}
		}
	}
	d.rec.ObservePlaceDuration(time.Since(placeStart).Seconds())
	d.tracer.End(placeSpan)

	// Surface the round's incremental-session tier outcome: cumulative
	// counters into the recorder (for /metrics), a per-round delta onto the
	// event stream.
	if d.policy.Incr != nil {
		st := d.policy.Incr.Stats()
		d.rec.SetIncrStats(st)
		d.publish(Event{Type: EventRescheduled,
			Detail: roundTierDetail(d.lastIncr, st)})
		d.lastIncr = st
	}

	if d.cells != nil {
		if rs := d.cells.LastRound(); rs.JobsMoved > 0 {
			d.publish(Event{Type: EventRebalanced,
				Detail: fmt.Sprintf("moved=%d conflicts=%d retries=%d",
					rs.JobsMoved, rs.Conflicts, rs.Retries)})
		}
	}

	// Apply the round's deployments through the shard seams, emitting
	// decision events and charging §5.4 scaling pauses for changed
	// configurations. Each job's deployment swap is one short shard-lock
	// critical section; a job cancelled since the round's active cut is
	// detected here and skipped (its resources were never in this round's
	// placement anyway once the next round rebuilds the cluster).
	deploySpan := d.tracer.Begin("deploy")
	pauses := make(map[int]float64)
	for _, j := range active {
		id := j.spec.ID
		pl, ok := placements[id]
		if o, rescued := placeOverride[id]; rescued {
			pl, ok = o, true
		}
		sh := d.reg.shard(id)
		sh.mu.Lock()
		if j.state.terminal() { // cancelled mid-round
			sh.mu.Unlock()
			continue
		}
		if !ok {
			if j.placed {
				d.publish(Event{Type: EventUnplaced, Job: id})
			}
			moved := j.placed || j.state != StateWaiting
			j.placed = false
			j.alloc = core.Allocation{}
			j.nodes = nil
			j.state = StateWaiting
			if moved && d.walOn() {
				d.walAppend(wal.TypeDeploy, walDeploy{ID: id, State: StateWaiting})
			}
			sh.mu.Unlock()
			continue
		}
		ps, w := pl.Counts()
		newAlloc := core.Allocation{PS: ps, Workers: w}
		changed := j.placed && newAlloc != j.alloc
		fresh := !j.placed
		old := j.alloc
		j.alloc = newAlloc
		j.spread = workload.TaskSpread{
			PSOnNode:      pl.PSOnNode,
			WorkersOnNode: pl.WorkersOnNode,
		}
		j.nodes = pl.NodeIDs
		j.placed = true
		j.state = StateRunning
		switch {
		case fresh:
			d.publish(Event{Type: EventPlaced, Job: id, Alloc: &newAlloc,
				Nodes: pl.NodeIDs})
		case changed:
			d.publish(Event{Type: EventScaled, Job: id, Alloc: &newAlloc,
				Nodes: pl.NodeIDs,
				Detail: fmt.Sprintf("%dps/%dw -> %dps/%dw",
					old.PS, old.Workers, newAlloc.PS, newAlloc.Workers)})
		}
		if (fresh || changed) && d.walOn() {
			d.walAppend(wal.TypeDeploy, walDeploy{ID: id, State: StateRunning,
				PS: newAlloc.PS, W: newAlloc.Workers, Nodes: pl.NodeIDs})
		}
		sh.mu.Unlock()
		if fresh || changed {
			pause := d.cfg.ScalingBase + d.cfg.ScalingPerTask*float64(newAlloc.Tasks())
			if pause > d.cfg.Interval {
				pause = d.cfg.Interval
			}
			pauses[id] = pause
			if changed { // §6.2 counts reconfiguration, not first launch
				d.rec.AddScalingTime(pause)
			}
		}

		// Straggler lifecycle (§5.2): the Optimus policy replaces the slow
		// worker after one detection round. straggling is engine-guarded, so
		// these stay outside the shard lock.
		if j.straggling {
			j.straggling = false
			d.rec.AddRestarts(1)
			d.publish(Event{Type: EventRecovered, Job: id,
				Detail: "straggler replaced"})
			if d.walOn() {
				d.walAppend(wal.TypeFault, walFault{ID: id})
			}
		}
		if d.cfg.StragglerProb > 0 && d.rng.Float64() < d.cfg.StragglerProb {
			j.straggling = true
			d.rec.AddFault()
			d.publish(Event{Type: EventFault, Job: id,
				Detail: fmt.Sprintf("straggler x%.2f", d.cfg.StragglerSlowdown)})
			if d.walOn() {
				d.walAppend(wal.TypeFault, walFault{ID: id, Straggling: true})
			}
		}
	}

	// Advance one interval of ground-truth training physics. Deployment
	// fields are copied out under the shard lock; the (slow) physics and
	// estimator math runs outside it.
	for _, j := range active {
		id := j.spec.ID
		sh := d.reg.shard(id)
		sh.mu.Lock()
		if !j.placed || j.state.terminal() {
			sh.mu.Unlock()
			continue
		}
		jAlloc, jSpread := j.alloc, j.spread
		sh.mu.Unlock()

		stepsPerSec := j.spec.Model.PlacedSpeed(j.spec.Mode, jSpread)
		if j.straggling {
			stepsPerSec *= d.cfg.StragglerSlowdown
		}
		rate := sim.EpochsPerSecond(j.spec, stepsPerSec)
		start := d.now + pauses[id]
		if start >= intervalEnd || rate <= 0 {
			continue
		}
		remaining := j.totalEpochs - j.progress
		if gained := rate * (intervalEnd - start); gained < remaining {
			j.progress += gained
			d.observe(j, jAlloc, stepsPerSec)
		} else {
			done := start + remaining/rate
			sh.mu.Lock()
			if j.state.terminal() { // cancel raced the completion
				sh.mu.Unlock()
				continue
			}
			j.progress = j.totalEpochs
			j.state = StateDone
			j.doneAt = done
			j.placed = false
			j.alloc = core.Allocation{}
			j.nodes = nil
			d.publish(Event{Type: EventCompleted, Job: id,
				Detail: fmt.Sprintf("jct=%.0fs", done-j.spec.Arrival)})
			if d.walOn() {
				d.walAppend(wal.TypeComplete, walComplete{ID: id, DoneAt: done})
			}
			sh.mu.Unlock()
			d.live.Add(-1)
			d.rec.Complete(id, done)
		}
	}

	// Republish every active job's read-mostly status snapshot and digest the
	// round for the metrics timeline in the same shard-lock pass. Jobs that
	// went terminal mid-round already republished in Cancel / the completion
	// branch above, but rebuilding here is harmless (terminal state wins).
	stats := metrics.IntervalStats{Time: d.now}
	var usedCPU float64
	for _, j := range active {
		sh := d.reg.shard(j.spec.ID)
		sh.mu.Lock()
		j.status.Store(newStatusSnap(d.buildStatus(j)))
		switch j.state {
		case StateRunning:
			stats.RunningJobs++
			stats.RunningTasks += j.alloc.Tasks()
			usedCPU += j.spec.Model.WorkerRes[cluster.CPU]*float64(j.alloc.Workers) +
				j.spec.Model.PSRes[cluster.CPU]*float64(j.alloc.PS)
		case StatePending, StateWaiting:
			stats.WaitingJobs++
		}
		sh.mu.Unlock()
	}
	if total := d.cfg.Cluster.Capacity()[cluster.CPU]; total > 0 {
		stats.ClusterShare = usedCPU / total
	}
	d.rec.Snapshot(stats)

	d.tracer.End(deploySpan)
	d.rec.ObserveIntervalDuration(time.Since(ivStart).Seconds())
	if d.tracer.Enabled() {
		d.tracer.Annotate(ivSpan, fmt.Sprintf("round=%d jobs=%d", d.rounds, len(active)))
	}
	d.tracer.End(ivSpan)
	d.advanceClockLocked(intervalEnd)
	d.lastRoundWall.Store(time.Now().UnixNano())
	d.flight.Record("engine", obs.SevDebug, "round",
		obs.KI("round", int64(d.rounds)), obs.KI("jobs", int64(len(active))),
		obs.KI("elapsedUs", time.Since(ivStart).Microseconds()))
	// Commit the interval: one durable round record whose group flush also
	// hardens every buffered engine record above.
	d.walRoundLocked()
	d.publishClusterLocked()
}

// roundTierDetail renders one round's incremental-scheduling outcome (the
// delta between the previous and current cumulative counters) for the SSE
// decision stream, e.g. "alloc=incremental dirty=2 place=partial migrated=6".
func roundTierDetail(prev, cur core.IncrStats) string {
	tier := func(clean, incr, full uint64) string {
		switch {
		case full > 0:
			return "full"
		case incr > 0:
			return "incremental"
		case clean > 0:
			return "clean"
		default:
			return "none"
		}
	}
	allocTier := tier(cur.AllocClean-prev.AllocClean,
		cur.AllocIncremental-prev.AllocIncremental, cur.AllocFull-prev.AllocFull)
	placeTier := tier(cur.PlaceClean-prev.PlaceClean,
		cur.PlacePartial-prev.PlacePartial, cur.PlaceFull-prev.PlaceFull)
	if placeTier == "incremental" {
		placeTier = "partial"
	}
	return fmt.Sprintf("alloc=%s dirty=%d place=%s migrated=%d",
		allocTier, cur.LastDirty, placeTier, cur.LastMigrated)
}

// observe feeds the running job's interval measurements to its estimators,
// retaining the loss points for snapshot/restore. alloc is the caller's
// shard-lock-consistent copy of the job's deployment.
func (d *Daemon) observe(j *job, alloc core.Allocation, stepsPerSec float64) {
	// The WAL record carries exactly the accepted raw measurements, so
	// replaying it performs the same Observe/Add calls byte-identically.
	var rec walObserve
	if stepsPerSec > 0 {
		obs := stepsPerSec * (1 + d.cfg.SpeedNoise*d.rng.NormFloat64())
		if obs > 0 {
			_ = j.speedEst.Observe(alloc.PS, alloc.Workers, obs)
			rec.PS, rec.W, rec.Speed = alloc.PS, alloc.Workers, obs
		}
	}
	if j.progress > 0 {
		loss := j.spec.Model.TrueLoss(j.progress) * (1 + d.cfg.LossNoise*d.rng.NormFloat64())
		if loss > 0 && j.lossFit.Add(j.progress, loss) == nil {
			j.lossObs = append(j.lossObs, lossfit.Point{K: j.progress, Loss: loss})
			if len(j.lossObs) > maxLossObs {
				j.lossObs = j.lossObs[len(j.lossObs)-maxLossObs:]
			}
			rec.K, rec.Loss = j.progress, loss
		}
	}
	if d.walOn() {
		rec.ID, rec.Progress = j.spec.ID, j.progress
		d.walAppend(wal.TypeObserve, rec)
	}
}

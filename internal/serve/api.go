package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/metrics"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// Admission / lookup errors, mapped onto HTTP statuses by the handlers.
var (
	// ErrFull rejects a submission when MaxJobs live jobs already exist.
	ErrFull = errors.New("serve: registry full, try again later")
	// ErrNotFound names an unknown job ID.
	ErrNotFound = errors.New("serve: no such job")
	// ErrTerminal rejects operations on done/cancelled jobs.
	ErrTerminal = errors.New("serve: job already finished")
)

// maxBodyBytes bounds a submission request body.
const maxBodyBytes = 1 << 20

// SubmitRequest is the POST /v1/jobs body: the job owner picks a Table-1
// model, a training mode and a convergence threshold (§2.3 — the owner
// fixes what one task looks like, Optimus decides how many tasks).
type SubmitRequest struct {
	// Model is a workload zoo name, e.g. "resnext-110" (see workload.Zoo).
	Model string `json:"model"`
	// Mode is "async" or "sync".
	Mode string `json:"mode"`
	// Threshold is the convergence threshold on the normalized per-epoch
	// loss decrease, in (0, 0.5]. Defaults to 0.02.
	Threshold float64 `json:"threshold,omitempty"`
	// Downscale shrinks the dataset by this factor in (0, 1] (§6.1 uses it
	// so one run takes hours, not weeks). Defaults to 1.
	Downscale float64 `json:"downscale,omitempty"`
}

// DecodeSubmit parses and validates a submission body. It is strict: the
// body must be a single JSON object with no unknown fields. Exported (and
// fuzzed) because it is the daemon's untrusted-input boundary.
func DecodeSubmit(data []byte) (SubmitRequest, error) {
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return SubmitRequest{}, fmt.Errorf("serve: bad submit body: %w", err)
	}
	if dec.More() {
		return SubmitRequest{}, errors.New("serve: bad submit body: trailing data")
	}
	if _, err := req.spec(); err != nil {
		return SubmitRequest{}, err
	}
	return req, nil
}

// spec validates the request and converts it to a workload JobSpec (ID and
// Arrival are assigned at admission).
func (r SubmitRequest) spec() (workload.JobSpec, error) {
	model := workload.ZooByName(r.Model)
	if model == nil {
		return workload.JobSpec{}, fmt.Errorf("serve: unknown model %q", r.Model)
	}
	var mode speedfit.Mode
	switch r.Mode {
	case "async":
		mode = speedfit.Async
	case "sync":
		mode = speedfit.Sync
	default:
		return workload.JobSpec{}, fmt.Errorf("serve: mode must be \"async\" or \"sync\", got %q", r.Mode)
	}
	th := r.Threshold
	if th == 0 {
		th = 0.02
	}
	if math.IsNaN(th) || th <= 0 || th > 0.5 {
		return workload.JobSpec{}, fmt.Errorf("serve: threshold must be in (0, 0.5], got %g", r.Threshold)
	}
	ds := r.Downscale
	if ds == 0 {
		ds = 1
	}
	if math.IsNaN(ds) || ds <= 0 || ds > 1 {
		return workload.JobSpec{}, fmt.Errorf("serve: downscale must be in (0, 1], got %g", r.Downscale)
	}
	return workload.JobSpec{
		Model: model, Mode: mode, Threshold: th, Downscale: ds,
	}, nil
}

// LossFitStatus is the job's fitted §3.1 convergence curve as reported by
// GET /v1/jobs/{id}.
type LossFitStatus struct {
	B0       float64 `json:"b0"`
	B1       float64 `json:"b1"`
	B2       float64 `json:"b2"`
	MaxLoss  float64 `json:"maxLoss"`
	Residual float64 `json:"residual"`
	Samples  int     `json:"samples"`
}

// JobStatus is the API's view of one job.
type JobStatus struct {
	ID        int       `json:"id"`
	State     JobState  `json:"state"`
	Model     string    `json:"model"`
	Mode      string    `json:"mode"`
	Threshold float64   `json:"threshold"`
	Downscale float64   `json:"downscale,omitempty"`
	Submitted time.Time `json:"submitted"`
	// ArrivalSim / DoneAtSim / JCT are on the simulated clock, seconds.
	ArrivalSim float64 `json:"arrivalSim"`
	DoneAtSim  float64 `json:"doneAtSim,omitempty"`
	JCT        float64 `json:"jctSeconds,omitempty"`
	// ProgressEpochs is true progress; the Est* fields are the scheduler's
	// online estimates (they converge to truth as observations accumulate).
	ProgressEpochs     float64         `json:"progressEpochs"`
	EstTotalEpochs     float64         `json:"estTotalEpochs"`
	EstRemainingEpochs float64         `json:"estRemainingEpochs"`
	LossFit            *LossFitStatus  `json:"lossFit,omitempty"`
	SpeedConfigs       int             `json:"speedConfigs"`
	Alloc              core.Allocation `json:"alloc"`
	Nodes              []string        `json:"nodes,omitempty"`
	Straggling         bool            `json:"straggling,omitempty"`
}

// statusLocked renders one job; callers hold d.mu.
func (d *Daemon) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:             j.spec.ID,
		State:          j.state,
		Model:          j.spec.Model.Name,
		Mode:           j.spec.Mode.String(),
		Threshold:      j.spec.Threshold,
		Downscale:      j.spec.Downscale,
		Submitted:      j.submittedWall,
		ArrivalSim:     j.spec.Arrival,
		ProgressEpochs: j.progress,
		SpeedConfigs:   j.speedEst.Configurations(),
		Alloc:          j.alloc,
		Nodes:          j.nodes,
		Straggling:     j.straggling,
	}
	if j.spec.Downscale == 1 {
		st.Downscale = 0 // omitempty: default downscale is noise
	}
	if j.state == StateDone {
		st.DoneAtSim = j.doneAt
		st.JCT = j.doneAt - j.spec.Arrival
	}
	// The scheduler's remaining-work estimate, exactly as the allocator
	// sees it (§3.1 fit with the beginning-state prior as fallback).
	est := d.cfg.PriorEpochs
	if j.lossFit.Len() >= 5 {
		if m, err := j.lossFit.Fit(); err == nil {
			st.LossFit = &LossFitStatus{
				B0: m.B0, B1: m.B1, B2: m.B2,
				MaxLoss: m.MaxLoss, Residual: m.Residual,
				Samples: j.lossFit.Len(),
			}
			if steps, err := m.StepsToConverge(j.spec.Threshold, 1, 3); err == nil {
				est = steps
			}
		}
	}
	st.EstTotalEpochs = est
	if rem := est - j.progress; rem > 0 {
		st.EstRemainingEpochs = rem
	}
	return st
}

// Status returns one job's status.
func (d *Daemon) Status(id int) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return d.statusLocked(j), nil
}

// List returns every job's status in submission order.
func (d *Daemon) List() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.statusLocked(d.jobs[id]))
	}
	return out
}

// NodeStatus is one node's utilization in GET /v1/cluster.
type NodeStatus struct {
	ID       string             `json:"id"`
	Capacity map[string]float64 `json:"capacity"`
	Used     map[string]float64 `json:"used"`
}

// ClusterStatus is the GET /v1/cluster response. Cells is present only when
// the daemon runs the sharded multi-scheduler (-cells > 1).
type ClusterStatus struct {
	SimTime      float64      `json:"simTime"`
	Rounds       int          `json:"rounds"`
	Jobs         int          `json:"jobs"`
	LiveJobs     int          `json:"liveJobs"`
	ClusterShare float64      `json:"clusterShare"`
	Cells        *cells.Stats `json:"cells,omitempty"`
	// Scheduler carries the incremental-session tier counters (clean /
	// incremental / full intervals, dirty-set sizes, tasks migrated); present
	// only when the daemon runs a delta-driven policy.
	Scheduler *core.IncrStats `json:"scheduler,omitempty"`
	Nodes     []NodeStatus    `json:"nodes"`
}

func resourceMap(r cluster.Resources) map[string]float64 {
	out := make(map[string]float64, cluster.NumResourceTypes)
	for i := cluster.ResourceType(0); i < cluster.NumResourceTypes; i++ {
		if r[i] != 0 {
			out[i.String()] = r[i]
		}
	}
	return out
}

// Cluster reports per-node utilization as of the last scheduling round.
func (d *Daemon) Cluster() ClusterStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := ClusterStatus{
		SimTime:  d.now,
		Rounds:   d.rounds,
		Jobs:     len(d.jobs),
		LiveJobs: d.live,
	}
	if d.cells != nil {
		cs := d.cells.Stats()
		st.Cells = &cs
	}
	if d.policy.Incr != nil {
		is := d.policy.Incr.Stats()
		st.Scheduler = &is
	}
	var used, capacity cluster.Resources
	for _, n := range d.cfg.Cluster.Nodes() {
		st.Nodes = append(st.Nodes, NodeStatus{
			ID:       n.ID,
			Capacity: resourceMap(n.Capacity),
			Used:     resourceMap(n.Used()),
		})
		used = used.Add(n.Used())
		capacity = capacity.Add(n.Capacity)
	}
	if capacity[cluster.CPU] > 0 {
		st.ClusterShare = used[cluster.CPU] / capacity[cluster.CPU]
	}
	return st
}

// Handler returns the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{d.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/explain", d.handleExplain)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /v1/trace", d.handleTrace)
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Cluster())
	})
	mux.HandleFunc("GET /v1/events", d.handleEvents)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return d.instrumented(mux)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			errors.New("serve: submit body too large"))
		return
	}
	req, err := DecodeSubmit(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := d.Submit(req)
	if errors.Is(err, ErrFull) {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, _ := d.Status(id)
	writeJSON(w, http.StatusCreated, st)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job id %q", r.PathValue("id")))
		return
	}
	st, err := d.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job id %q", r.PathValue("id")))
		return
	}
	switch err := d.Cancel(id); {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		st, _ := d.Status(id)
		writeJSON(w, http.StatusOK, st)
	}
}

// handleMetrics exports the recorder counters plus daemon-level gauges in
// Prometheus text format.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.rec.WritePrometheus(w); err != nil {
		return
	}
	byState := map[JobState]int{}
	for _, j := range d.jobs {
		byState[j.state]++
	}
	_ = metrics.WriteCounter(w, "optimusd_rounds_total",
		"Scheduling rounds executed by the event loop.", float64(d.rounds))
	_ = metrics.WriteCounter(w, "optimusd_jobs_rejected_total",
		"Submissions rejected by admission control.", float64(d.rejected))
	_ = metrics.WriteCounter(w, "optimusd_jobs_cancelled_total",
		"Jobs cancelled by their owners.", float64(d.cancelled))
	_ = metrics.WriteGauge(w, "optimusd_sim_time_seconds",
		"Simulated clock of the event loop.", d.now)
	_ = metrics.WriteGauge(w, "optimusd_uptime_seconds",
		"Wall-clock seconds since daemon start.", time.Since(d.startWall).Seconds())
	for _, s := range []JobState{StatePending, StateWaiting, StateRunning, StateDone, StateCancelled} {
		_ = metrics.WriteGauge(w, "optimusd_jobs_"+string(s),
			"Jobs currently in state "+string(s)+".", float64(byState[s]))
	}
	if d.cells != nil {
		// One sample per cell; the Exporter deduplicates family preambles.
		ex := metrics.NewExporter(w)
		for _, cs := range d.cells.Stats().PerCell {
			id := strconv.Itoa(cs.Cell)
			_ = metrics.WriteLabeledGauge(ex, "optimusd_cell_jobs",
				"Jobs assigned to each scheduling cell.", "cell", id, float64(cs.Jobs))
			_ = metrics.WriteLabeledGauge(ex, "optimusd_cell_weight",
				"Aggregate dominant-share weight of each cell's jobs.", "cell", id, cs.Weight)
			_ = metrics.WriteLabeledGauge(ex, "optimusd_cell_nodes",
				"Nodes in each cell's stripe.", "cell", id, float64(cs.Nodes))
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"optimus/internal/cells"
	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/metrics"
	"optimus/internal/obs"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

// Admission / lookup errors, mapped onto HTTP statuses by the handlers.
var (
	// ErrFull rejects a submission when MaxJobs live jobs already exist.
	ErrFull = errors.New("serve: registry full, try again later")
	// ErrNotFound names an unknown job ID.
	ErrNotFound = errors.New("serve: no such job")
	// ErrTerminal rejects operations on done/cancelled jobs.
	ErrTerminal = errors.New("serve: job already finished")
)

// maxBodyBytes bounds a submission request body.
const maxBodyBytes = 1 << 20

// SubmitRequest is the POST /v1/jobs body: the job owner picks a Table-1
// model, a training mode and a convergence threshold (§2.3 — the owner
// fixes what one task looks like, Optimus decides how many tasks).
type SubmitRequest struct {
	// Model is a workload zoo name, e.g. "resnext-110" (see workload.Zoo).
	Model string `json:"model"`
	// Mode is "async" or "sync".
	Mode string `json:"mode"`
	// Threshold is the convergence threshold on the normalized per-epoch
	// loss decrease, in (0, 0.5]. Defaults to 0.02.
	Threshold float64 `json:"threshold,omitempty"`
	// Downscale shrinks the dataset by this factor in (0, 1] (§6.1 uses it
	// so one run takes hours, not weeks). Defaults to 1.
	Downscale float64 `json:"downscale,omitempty"`
}

// DecodeSubmit parses and validates a submission body. It is strict: the
// body must be a single JSON object with no unknown fields. Exported (and
// fuzzed) because it is the daemon's untrusted-input boundary.
func DecodeSubmit(data []byte) (SubmitRequest, error) {
	var req SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return SubmitRequest{}, fmt.Errorf("serve: bad submit body: %w", err)
	}
	if dec.More() {
		return SubmitRequest{}, errors.New("serve: bad submit body: trailing data")
	}
	if _, err := req.spec(); err != nil {
		return SubmitRequest{}, err
	}
	return req, nil
}

// spec validates the request and converts it to a workload JobSpec (ID and
// Arrival are assigned at admission).
func (r SubmitRequest) spec() (workload.JobSpec, error) {
	model := workload.ZooByName(r.Model)
	if model == nil {
		return workload.JobSpec{}, fmt.Errorf("serve: unknown model %q", r.Model)
	}
	var mode speedfit.Mode
	switch r.Mode {
	case "async":
		mode = speedfit.Async
	case "sync":
		mode = speedfit.Sync
	default:
		return workload.JobSpec{}, fmt.Errorf("serve: mode must be \"async\" or \"sync\", got %q", r.Mode)
	}
	th := r.Threshold
	if th == 0 {
		th = 0.02
	}
	if math.IsNaN(th) || th <= 0 || th > 0.5 {
		return workload.JobSpec{}, fmt.Errorf("serve: threshold must be in (0, 0.5], got %g", r.Threshold)
	}
	ds := r.Downscale
	if ds == 0 {
		ds = 1
	}
	if math.IsNaN(ds) || ds <= 0 || ds > 1 {
		return workload.JobSpec{}, fmt.Errorf("serve: downscale must be in (0, 1], got %g", r.Downscale)
	}
	return workload.JobSpec{
		Model: model, Mode: mode, Threshold: th, Downscale: ds,
	}, nil
}

// LossFitStatus is the job's fitted §3.1 convergence curve as reported by
// GET /v1/jobs/{id}.
type LossFitStatus struct {
	B0       float64 `json:"b0"`
	B1       float64 `json:"b1"`
	B2       float64 `json:"b2"`
	MaxLoss  float64 `json:"maxLoss"`
	Residual float64 `json:"residual"`
	Samples  int     `json:"samples"`
}

// JobStatus is the API's view of one job.
type JobStatus struct {
	ID        int       `json:"id"`
	State     JobState  `json:"state"`
	Model     string    `json:"model"`
	Mode      string    `json:"mode"`
	Threshold float64   `json:"threshold"`
	Downscale float64   `json:"downscale,omitempty"`
	Submitted time.Time `json:"submitted"`
	// ArrivalSim / DoneAtSim / JCT are on the simulated clock, seconds.
	ArrivalSim float64 `json:"arrivalSim"`
	DoneAtSim  float64 `json:"doneAtSim,omitempty"`
	JCT        float64 `json:"jctSeconds,omitempty"`
	// ProgressEpochs is true progress; the Est* fields are the scheduler's
	// online estimates (they converge to truth as observations accumulate).
	ProgressEpochs     float64         `json:"progressEpochs"`
	EstTotalEpochs     float64         `json:"estTotalEpochs"`
	EstRemainingEpochs float64         `json:"estRemainingEpochs"`
	LossFit            *LossFitStatus  `json:"lossFit,omitempty"`
	SpeedConfigs       int             `json:"speedConfigs"`
	Alloc              core.Allocation `json:"alloc"`
	Nodes              []string        `json:"nodes,omitempty"`
	Straggling         bool            `json:"straggling,omitempty"`
}

// statusSnap is one job's immutable read-mostly view: the rendered
// JobStatus plus a lazily cached JSON encoding, so the common GET
// /v1/jobs/{id} serves pre-encoded bytes without touching any lock. A new
// snap is swapped in whenever the job's state changes (every round by the
// engine, immediately by Cancel).
type statusSnap struct {
	st  JobStatus
	enc atomic.Pointer[[]byte]
}

func newStatusSnap(st JobStatus) *statusSnap { return &statusSnap{st: st} }

// bytes returns the snapshot's JSON encoding (trailing newline, matching
// json.Encoder), computing and caching it on first use. Concurrent first
// readers may both encode; either result is valid and one wins the cache.
func (s *statusSnap) bytes() []byte {
	if p := s.enc.Load(); p != nil {
		return *p
	}
	b, err := json.Marshal(s.st)
	if err != nil { // unreachable for JobStatus; keep the API total
		b = []byte(`{"error":"encode failure"}`)
	}
	b = append(b, '\n')
	s.enc.Store(&b)
	return b
}

// buildStatus renders one job from its live fields. Callers must either own
// the job exclusively (admission and restore, before the job is published)
// or hold both the engine mutex and the job's shard lock (the end-of-round
// republish).
func (d *Daemon) buildStatus(j *job) JobStatus {
	st := JobStatus{
		ID:             j.spec.ID,
		State:          j.state,
		Model:          j.spec.Model.Name,
		Mode:           j.spec.Mode.String(),
		Threshold:      j.spec.Threshold,
		Downscale:      j.spec.Downscale,
		Submitted:      j.submittedWall,
		ArrivalSim:     j.spec.Arrival,
		ProgressEpochs: j.progress,
		SpeedConfigs:   j.speedEst.Configurations(),
		Alloc:          j.alloc,
		Straggling:     j.straggling,
	}
	if len(j.nodes) > 0 {
		// Copy: j.nodes may alias the placer's reusable arena, but the
		// snapshot must stay immutable forever.
		st.Nodes = append([]string(nil), j.nodes...)
	}
	if j.spec.Downscale == 1 {
		st.Downscale = 0 // omitempty: default downscale is noise
	}
	if j.state == StateDone {
		st.DoneAtSim = j.doneAt
		st.JCT = j.doneAt - j.spec.Arrival
	}
	// The scheduler's remaining-work estimate, exactly as the allocator
	// sees it (§3.1 fit with the beginning-state prior as fallback).
	est := d.cfg.PriorEpochs
	if j.lossFit.Len() >= 5 {
		if m, err := j.lossFit.Fit(); err == nil {
			st.LossFit = &LossFitStatus{
				B0: m.B0, B1: m.B1, B2: m.B2,
				MaxLoss: m.MaxLoss, Residual: m.Residual,
				Samples: j.lossFit.Len(),
			}
			if steps, err := m.StepsToConverge(j.spec.Threshold, 1, 3); err == nil {
				est = steps
			}
		}
	}
	st.EstTotalEpochs = est
	if rem := est - j.progress; rem > 0 {
		st.EstRemainingEpochs = rem
	}
	return st
}

// Status returns one job's status: a shard-lock map lookup plus an atomic
// snapshot load, never blocked by the scheduler.
func (d *Daemon) Status(id int) (JobStatus, error) {
	j := d.reg.get(id)
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	return j.status.Load().st, nil
}

// List returns every job's status in submission order.
func (d *Daemon) List() []JobStatus {
	statuses := make([]JobStatus, 0, 64)
	d.reg.forEach(func(_ int, j *job) {
		statuses = append(statuses, j.status.Load().st)
	})
	// Monotonic ID assignment makes ID order submission order.
	sortStatuses(statuses)
	return statuses
}

func sortStatuses(s []JobStatus) {
	// Insertion-friendly: statuses arrive near-sorted per shard.
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k].ID < s[k-1].ID; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

// NodeStatus is one node's utilization in GET /v1/cluster.
type NodeStatus struct {
	ID       string             `json:"id"`
	Capacity map[string]float64 `json:"capacity"`
	Used     map[string]float64 `json:"used"`
}

// ClusterStatus is the GET /v1/cluster response. Cells is present only when
// the daemon runs the sharded multi-scheduler (-cells > 1).
type ClusterStatus struct {
	SimTime  float64 `json:"simTime"`
	Rounds   int     `json:"rounds"`
	Jobs     int     `json:"jobs"`
	LiveJobs int     `json:"liveJobs"`
	// IntervalOverruns counts Run ticks whose scheduling round outlasted the
	// tick period — the daemon's SLO signal under open-loop load.
	IntervalOverruns int64        `json:"intervalOverruns,omitempty"`
	ClusterShare     float64      `json:"clusterShare"`
	Cells            *cells.Stats `json:"cells,omitempty"`
	// Scheduler carries the incremental-session tier counters (clean /
	// incremental / full intervals, dirty-set sizes, tasks migrated); present
	// only when the daemon runs a delta-driven policy.
	Scheduler *core.IncrStats `json:"scheduler,omitempty"`
	// HA is the control-plane role block, present only under internal/ha
	// leadership (-wal-dir with -follow or a held lease).
	HA *HAStatus `json:"ha,omitempty"`
	// SLO is the burn-rate block (slo.go), recomputed at each interval
	// boundary; Build identifies the binary serving this status.
	SLO   *SLOStatus     `json:"slo,omitempty"`
	Build *obs.BuildInfo `json:"build,omitempty"`
	Nodes []NodeStatus   `json:"nodes"`
}

// clusterSnapshot is the RCU-style read-mostly cluster view: built by the
// engine at each interval boundary (and at New/Restore), swapped in with one
// atomic store, served lock-free with a lazily cached JSON encoding.
type clusterSnapshot struct {
	status ClusterStatus
	enc    atomic.Pointer[[]byte]
}

func (s *clusterSnapshot) bytes() []byte {
	if p := s.enc.Load(); p != nil {
		return *p
	}
	b, err := json.Marshal(s.status)
	if err != nil {
		b = []byte(`{"error":"encode failure"}`)
	}
	b = append(b, '\n')
	s.enc.Store(&b)
	return b
}

func resourceMap(r cluster.Resources) map[string]float64 {
	out := make(map[string]float64, cluster.NumResourceTypes)
	for i := cluster.ResourceType(0); i < cluster.NumResourceTypes; i++ {
		if r[i] != 0 {
			out[i.String()] = r[i]
		}
	}
	return out
}

// publishClusterLocked rebuilds the /v1/cluster snapshot from the live
// cluster and swaps it in. Callers hold d.mu; readers never do.
func (d *Daemon) publishClusterLocked() {
	st := ClusterStatus{
		SimTime:          d.now,
		Rounds:           d.rounds,
		Jobs:             d.reg.len(),
		LiveJobs:         int(d.live.Load()),
		IntervalOverruns: d.overruns.Load(),
	}
	if d.cells != nil {
		cs := d.cells.Stats()
		st.Cells = &cs
	}
	if d.policy.Incr != nil {
		is := d.policy.Incr.Stats()
		st.Scheduler = &is
	}
	st.HA = d.haStat.Load()
	slo := d.SLO()
	st.SLO = &slo
	build := obs.Build()
	st.Build = &build
	var used, capacity cluster.Resources
	for _, n := range d.cfg.Cluster.Nodes() {
		st.Nodes = append(st.Nodes, NodeStatus{
			ID:       n.ID,
			Capacity: resourceMap(n.Capacity),
			Used:     resourceMap(n.Used()),
		})
		used = used.Add(n.Used())
		capacity = capacity.Add(n.Capacity)
	}
	if capacity[cluster.CPU] > 0 {
		st.ClusterShare = used[cluster.CPU] / capacity[cluster.CPU]
	}
	d.clusterSnap.Store(&clusterSnapshot{status: st})
}

// Cluster reports utilization as of the last scheduling round. Lock-free:
// it loads the engine-published snapshot.
func (d *Daemon) Cluster() ClusterStatus {
	return d.clusterSnap.Load().status
}

// Handler returns the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{d.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/explain", d.handleExplain)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /v1/trace", d.handleTrace)
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSONBytes(w, http.StatusOK, d.clusterSnap.Load().bytes())
	})
	mux.HandleFunc("GET /v1/events", d.handleEvents)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", d.handleReadyz)
	mux.HandleFunc("GET /debug/bundle", d.handleDebugBundle)
	return d.instrumented(mux)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			errors.New("serve: submit body too large"))
		return
	}
	req, err := DecodeSubmit(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := d.Submit(req)
	if errors.Is(err, ErrFull) {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	if errors.Is(err, ErrNotLeader) {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := d.reg.get(id)
	writeJSONBytes(w, http.StatusCreated, j.status.Load().bytes())
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job id %q", r.PathValue("id")))
		return
	}
	j := d.reg.get(id)
	if j == nil {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSONBytes(w, http.StatusOK, j.status.Load().bytes())
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job id %q", r.PathValue("id")))
		return
	}
	switch err := d.Cancel(id); {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrNotLeader):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		j := d.reg.get(id)
		writeJSONBytes(w, http.StatusOK, j.status.Load().bytes())
	}
}

// handleMetrics exports the recorder counters plus daemon-level gauges in
// Prometheus text format.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	d.writeMetrics(w)
}

// writeMetrics renders the full exposition to any writer — the /metrics
// handler and the debug bundle (bundle.go) share it. Only the unsynchronized
// recorder needs the engine mutex; everything else reads atomics and
// snapshots.
func (d *Daemon) writeMetrics(w io.Writer) {
	d.mu.Lock()
	d.drainArrivalsLocked()
	err := d.rec.WritePrometheus(w)
	d.mu.Unlock()
	if err != nil {
		return
	}
	// API latency is recorded lock-free by the middleware into the daemon's
	// own atomic histogram (the recorder's family stays empty and is skipped
	// above, so the family appears exactly once).
	if h := d.apiHist.Snapshot(); h.Count() > 0 {
		_ = metrics.WriteHistogram(w, "optimus_api_request_duration_seconds",
			"Wall-clock latency of optimusd API requests.", &h)
	}
	byState := map[JobState]int{}
	d.reg.forEach(func(_ int, j *job) {
		byState[j.status.Load().st.State]++
	})
	_ = metrics.WriteCounter(w, "optimusd_rounds_total",
		"Scheduling rounds executed by the event loop.", float64(d.roundsN.Load()))
	_ = metrics.WriteCounter(w, "optimusd_jobs_rejected_total",
		"Submissions rejected by admission control.", float64(d.rejected.Load()))
	_ = metrics.WriteCounter(w, "optimusd_jobs_cancelled_total",
		"Jobs cancelled by their owners.", float64(d.cancelledN.Load()))
	_ = metrics.WriteCounter(w, "optimusd_interval_overruns_total",
		"Scheduling rounds that outlasted the wall-clock tick.", float64(d.overruns.Load()))
	_ = metrics.WriteCounter(w, "optimusd_sse_dropped_total",
		"Events dropped from slow SSE subscriber queues.", float64(d.bus.droppedTotal()))
	_ = metrics.WriteGauge(w, "optimusd_sse_subscribers",
		"Currently connected SSE subscribers.", float64(d.bus.numSubscribers()))
	_ = metrics.WriteGauge(w, "optimusd_sim_time_seconds",
		"Simulated clock of the event loop.", d.Now())
	_ = metrics.WriteGauge(w, "optimusd_uptime_seconds",
		"Wall-clock seconds since daemon start.", time.Since(d.startWall).Seconds())
	for _, s := range []JobState{StatePending, StateWaiting, StateRunning, StateDone, StateCancelled} {
		_ = metrics.WriteGauge(w, "optimusd_jobs_"+string(s),
			"Jobs currently in state "+string(s)+".", float64(byState[s]))
	}
	if l := d.wlog.Load(); l != nil {
		ws := l.Stats()
		_ = metrics.WriteCounter(w, "optimus_wal_appends_total",
			"Records appended to the write-ahead log this process.", float64(ws.Appends))
		_ = metrics.WriteCounter(w, "optimus_wal_fsyncs_total",
			"Fsync syscalls issued by the write-ahead log.", float64(ws.Fsyncs))
		_ = metrics.WriteCounter(w, "optimus_wal_bytes_total",
			"Bytes appended to the write-ahead log this process.", float64(ws.Bytes))
		_ = metrics.WriteCounter(w, "optimus_wal_checkpoints_total",
			"Snapshot checkpoint/compaction cycles this process.", float64(ws.Checkpoints))
		_ = metrics.WriteCounter(w, "optimus_wal_append_errors_total",
			"Failed write-ahead log appends.", float64(d.walErrs.Load()))
		_ = metrics.WriteCounter(w, "optimus_wal_replayed_records_total",
			"Records applied from the log at startup or while following.",
			float64(d.walReplayed.Load()))
		_ = metrics.WriteGauge(w, "optimus_wal_segments",
			"Live segment files in the write-ahead log directory.", float64(ws.Segments))
		_ = metrics.WriteGauge(w, "optimus_wal_last_seq",
			"Last assigned write-ahead log sequence number.", float64(ws.LastSeq))
		_ = metrics.WriteGauge(w, "optimus_wal_durable_seq",
			"Last write-ahead log sequence known to be on stable storage.",
			float64(ws.DurableSeq))
	}
	if ha := d.haStat.Load(); ha != nil {
		leader := 0.0
		if ha.Role == "leader" {
			leader = 1
		}
		_ = metrics.WriteGauge(w, "optimus_ha_leader",
			"1 when this daemon holds the leader lease, 0 when following.", leader)
		_ = metrics.WriteGauge(w, "optimus_ha_term",
			"Current lease term observed by this daemon.", float64(ha.Term))
		_ = metrics.WriteGauge(w, "optimus_ha_follower_lag_records",
			"Records the follower is behind the leader's log (0 on the leader).",
			float64(ha.LagRecords))
	}
	if snap := d.clusterSnap.Load(); snap.status.Cells != nil {
		// One sample per cell; the Exporter deduplicates family preambles.
		ex := metrics.NewExporter(w)
		for _, cs := range snap.status.Cells.PerCell {
			id := strconv.Itoa(cs.Cell)
			_ = metrics.WriteLabeledGauge(ex, "optimusd_cell_jobs",
				"Jobs assigned to each scheduling cell.", "cell", id, float64(cs.Jobs))
			_ = metrics.WriteLabeledGauge(ex, "optimusd_cell_weight",
				"Aggregate dominant-share weight of each cell's jobs.", "cell", id, cs.Weight)
			_ = metrics.WriteLabeledGauge(ex, "optimusd_cell_nodes",
				"Nodes in each cell's stripe.", "cell", id, float64(cs.Nodes))
		}
	}

	// Readiness plane (health.go): the aggregate verdict plus one labeled
	// sample per component check.
	ready := d.Readiness()
	up := 0.0
	if ready.Ready {
		up = 1
	}
	_ = metrics.WriteGauge(w, "optimus_ready",
		"1 when every readiness check passes, 0 otherwise.", up)
	ex := metrics.NewExporter(w)
	for name, c := range ready.Components {
		v := 0.0
		if c.OK {
			v = 1
		}
		_ = metrics.WriteLabeledGauge(ex, "optimus_component_up",
			"Per-component readiness check results.", "component", name, v)
	}

	// SLO burn rates (slo.go).
	slo := d.SLO()
	_ = metrics.WriteGauge(w, "optimus_slo_overrun_rate",
		"Fraction of scheduling rounds that outlasted the tick.", slo.OverrunRate)
	_ = metrics.WriteGauge(w, "optimus_slo_overrun_burn",
		"Interval-overrun budget burn rate (1 = burning exactly at target).", slo.OverrunBurn)
	_ = metrics.WriteGauge(w, "optimus_slo_api_p99_seconds",
		"API request latency p99.", slo.APIP99Seconds)
	_ = metrics.WriteGauge(w, "optimus_slo_api_slow_rate",
		"Fraction of API requests over the latency target.", slo.APISlowRate)
	_ = metrics.WriteGauge(w, "optimus_slo_api_slow_burn",
		"API latency budget burn rate.", slo.APISlowBurn)
	_ = metrics.WriteGauge(w, "optimus_slo_api_error_rate",
		"Fraction of API requests answered with a 5xx status.", slo.APIErrorRate)
	_ = metrics.WriteGauge(w, "optimus_slo_api_error_burn",
		"API error budget burn rate.", slo.APIErrorBurn)

	bi := obs.Build()
	_ = metrics.WriteInfoGauge(w, "optimus_build_info",
		"Build identity of the running binary.", [][2]string{
			{"version", bi.Version}, {"goversion", bi.GoVersion},
			{"revision", bi.Revision}, {"modified", fmt.Sprint(bi.Modified)},
		})
}

// jsonBufPool recycles encode buffers so responses are marshaled outside
// any lock without a per-request allocation.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf keeps pathological responses (full job lists at scale) from
// pinning large buffers in the pool forever.
const maxPooledBuf = 1 << 20

func writeJSONBytes(w http.ResponseWriter, status int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(status)
	_, _ = w.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		jsonBufPool.Put(buf)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, status, buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		jsonBufPool.Put(buf)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

package serve

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"optimus/internal/core"
	"optimus/internal/obs"
)

// ErrTracingDisabled rejects trace/explain requests on a daemon started
// without Config.Trace.
var ErrTracingDisabled = errors.New("serve: tracing disabled (start optimusd with -trace)")

// ExplainResponse is the GET /v1/jobs/{id}/explain body: the job's current
// state plus its complete recorded decision history — every §4.1 marginal-
// gain grant and every §4.2 placement, oldest first. History is bounded by
// Config.AuditBuffer; long-lived daemons see a suffix of very old jobs.
type ExplainResponse struct {
	Job        int              `json:"job"`
	State      JobState         `json:"state"`
	Alloc      core.Allocation  `json:"alloc"`
	Grants     []obs.GrantEvent `json:"grants"`
	Placements []obs.PlaceEvent `json:"placements"`
}

// Explain returns one job's decision history. ErrTracingDisabled when the
// daemon runs without tracing, ErrNotFound for unknown jobs.
func (d *Daemon) Explain(id int) (ExplainResponse, error) {
	if d.audit == nil {
		return ExplainResponse{}, ErrTracingDisabled
	}
	j := d.reg.get(id)
	if j == nil {
		return ExplainResponse{}, ErrNotFound
	}
	st := j.status.Load().st
	resp := ExplainResponse{Job: id, State: st.State, Alloc: st.Alloc}
	// The audit log has its own lock; no daemon lock is held here at all.
	resp.Grants = d.audit.Grants(id)
	resp.Placements = d.audit.Places(id)
	return resp, nil
}

// handleTrace serves the span ring as Chrome trace-event JSON, loadable in
// Perfetto / chrome://tracing.
func (d *Daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	if d.tracer == nil {
		writeError(w, http.StatusNotFound, ErrTracingDisabled)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, d.tracer.Spans())
}

func (d *Daemon) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("serve: bad job id "+strconv.Quote(r.PathValue("id"))))
		return
	}
	resp, err := d.Explain(id)
	switch {
	case errors.Is(err, ErrTracingDisabled), errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// statusCapture records the response status for SLO error accounting. Only
// non-streaming handlers are wrapped, so losing the Flusher upgrade is fine.
type statusCapture struct {
	http.ResponseWriter
	status int
}

func (s *statusCapture) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// instrumented wraps the API mux with latency observation into the
// optimus_api_request_duration_seconds histogram plus the SLO slow/error
// counters (slo.go). The SSE stream is exempt: its requests intentionally
// last for the subscriber's lifetime and would only pollute the latency
// distribution.
func (d *Daemon) instrumented(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/events" {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		sc := &statusCapture{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sc, r)
		// Lock-free: the atomic histogram keeps the middleware off every
		// daemon lock (the old path serialized all requests on d.mu here).
		elapsed := time.Since(start)
		d.apiHist.Observe(elapsed.Seconds())
		if elapsed > d.cfg.SLOAPILatencyTarget {
			d.apiSlow.Add(1)
		}
		if sc.status >= 500 {
			d.apiErrs.Add(1)
		}
	})
}

// Package chaos is the deterministic fault-injection engine behind the §5
// resilience claims: node crashes, task kills, transient stragglers, network
// degradation, checkpoint-write failures and delayed recoveries, expressed as
// a declarative, replayable schedule. A Schedule is either written by hand,
// parsed from a text file (ParseSchedule) or drawn from a seeded random
// process (Generate); an Injector then hands the faults to an execution
// backend — the discrete-time simulator (internal/sim) or the live PS runtime
// (internal/operator) — in time order.
//
// Determinism contract: a Schedule is plain data, Generate is a pure function
// of its GenConfig (seed included), and Injector.Window is a pure cursor over
// the sorted fault list. The same seed and schedule therefore produce the
// same fault sequence on every run, which is what lets the CLIs replay one
// fault trace across competing scheduling policies.
package chaos

import (
	"fmt"
	"sort"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// NodeCrash takes a node down at Time for Duration seconds; every task
	// hosted on it dies and its jobs must restore from checkpoint.
	NodeCrash Kind = iota
	// TaskKill kills one task of job Job (a PS or worker), forcing a
	// checkpoint restore of the whole incarnation (§5.4).
	TaskKill
	// Straggler degrades one worker of job Job to Severity× speed for
	// Duration seconds (§5.2); Optimus detects and replaces it.
	Straggler
	// NetworkSlow degrades the whole fabric to Severity× speed for Duration
	// seconds, slowing every running job.
	NetworkSlow
	// CheckpointFail makes job Job's next checkpoint write fail, widening the
	// rollback window of a later crash (§5.4's HDFS write failing).
	CheckpointFail
	// RecoveryDelay adds Duration seconds to job Job's next fault recovery
	// (slow checkpoint storage, image pulls, ...).
	RecoveryDelay
	// LeaderKill SIGKILLs the scheduler leader process at Time, exercising
	// the internal/ha failover path (WAL-tailing follower takes over within
	// one lease TTL). Consumed by the failover harness, not the simulator.
	LeaderKill

	numKinds
)

// String implements fmt.Stringer using the schedule-file spelling.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case TaskKill:
		return "task-kill"
	case Straggler:
		return "straggler"
	case NetworkSlow:
		return "net-slow"
	case CheckpointFail:
		return "ckpt-fail"
	case RecoveryDelay:
		return "recovery-delay"
	case LeaderKill:
		return "leader-kill"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindFromString parses the schedule-file spelling of a fault kind.
func KindFromString(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault kind %q", s)
}

// Fault is one scheduled failure event.
type Fault struct {
	Kind Kind
	Time float64 // injection time, seconds from experiment start
	Node string  // NodeCrash: node ID
	Job  int     // TaskKill / Straggler / CheckpointFail / RecoveryDelay
	// Task selects the worker a live backend targets for TaskKill/Straggler
	// (the simulator models tasks in aggregate and ignores it).
	Task int
	// Duration is the outage / degradation / extra-delay length in seconds.
	Duration float64
	// Severity is the speed multiplier in (0,1) for Straggler / NetworkSlow
	// (0.5 → the affected work runs at half speed).
	Severity float64
}

// Validate checks the fault's fields against its kind's requirements.
func (f Fault) Validate() error {
	if f.Time < 0 {
		return fmt.Errorf("chaos: %s: negative time %g", f.Kind, f.Time)
	}
	if f.Task < 0 {
		return fmt.Errorf("chaos: %s: negative task %d", f.Kind, f.Task)
	}
	needsJob := func() error {
		if f.Job < 0 {
			return fmt.Errorf("chaos: %s: invalid job %d", f.Kind, f.Job)
		}
		return nil
	}
	needsDuration := func() error {
		if f.Duration <= 0 {
			return fmt.Errorf("chaos: %s: duration %g must be positive", f.Kind, f.Duration)
		}
		return nil
	}
	needsSeverity := func() error {
		if f.Severity <= 0 || f.Severity >= 1 {
			return fmt.Errorf("chaos: %s: severity %g must be in (0,1)", f.Kind, f.Severity)
		}
		return nil
	}
	switch f.Kind {
	case NodeCrash:
		if f.Node == "" {
			return fmt.Errorf("chaos: node-crash: missing node")
		}
		return needsDuration()
	case TaskKill:
		return needsJob()
	case Straggler:
		if err := needsJob(); err != nil {
			return err
		}
		if err := needsDuration(); err != nil {
			return err
		}
		return needsSeverity()
	case NetworkSlow:
		if err := needsDuration(); err != nil {
			return err
		}
		return needsSeverity()
	case CheckpointFail:
		return needsJob()
	case RecoveryDelay:
		if err := needsJob(); err != nil {
			return err
		}
		return needsDuration()
	case LeaderKill:
		return nil // only Time matters; negative time caught above
	default:
		return fmt.Errorf("chaos: unknown kind %d", int(f.Kind))
	}
}

// String renders the fault in the schedule-file syntax.
func (f Fault) String() string {
	s := fmt.Sprintf("%s t=%g", f.Kind, f.Time)
	if f.Node != "" {
		s += fmt.Sprintf(" node=%s", f.Node)
	}
	switch f.Kind {
	case TaskKill, Straggler, CheckpointFail, RecoveryDelay:
		s += fmt.Sprintf(" job=%d", f.Job)
	}
	if f.Task != 0 {
		s += fmt.Sprintf(" task=%d", f.Task)
	}
	if f.Duration != 0 {
		s += fmt.Sprintf(" dur=%g", f.Duration)
	}
	if f.Severity != 0 {
		s += fmt.Sprintf(" sev=%g", f.Severity)
	}
	return s
}

// Schedule is an ordered list of faults to replay against a run.
type Schedule struct {
	Faults []Fault
}

// Len reports the number of scheduled faults.
func (s Schedule) Len() int { return len(s.Faults) }

// Validate checks every fault.
func (s Schedule) Validate() error {
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("chaos: fault %d: %w", i, err)
		}
	}
	return nil
}

// sorted returns the faults in time order (stable, so equal-time faults keep
// their schedule order — part of the determinism contract).
func (s Schedule) sorted() []Fault {
	out := make([]Fault, len(s.Faults))
	copy(out, s.Faults)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Injector is a cursor over a schedule: each Window call returns the faults
// firing in [t0, t1) and advances past them. Windows must be asked for in
// non-decreasing time order, which both backends do naturally.
type Injector struct {
	faults []Fault
	next   int
}

// NewInjector builds an injector over a validated copy of the schedule.
func NewInjector(s Schedule) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Injector{faults: s.sorted()}, nil
}

// Window returns the faults with Time in [t0, t1), advancing the cursor.
// Faults whose time was skipped over (before t0 but not yet returned) are
// delivered too — a fault must never be silently lost to a fast-forward.
func (in *Injector) Window(t0, t1 float64) []Fault {
	var out []Fault
	for in.next < len(in.faults) && in.faults[in.next].Time < t1 {
		out = append(out, in.faults[in.next])
		in.next++
	}
	_ = t0 // the lower bound is informational: late faults still fire
	return out
}

// Remaining reports how many faults have not fired yet.
func (in *Injector) Remaining() int { return len(in.faults) - in.next }

package chaos

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Schedule file syntax: one fault per line, `kind key=value ...`, with `#`
// comments and blank lines ignored. Keys: t (seconds, required), node, job,
// task, dur, sev. Example:
//
//	# two rack failures and a flaky fabric
//	node-crash t=1200 node=cpu-3 dur=1800
//	task-kill t=2400 job=5
//	straggler t=600 job=2 dur=1200 sev=0.5
//	net-slow t=3000 dur=600 sev=0.7
//	ckpt-fail t=4000 job=1
//	recovery-delay t=4000 job=1 dur=120

// ParseSchedule reads the text schedule format. Every accepted schedule
// validates and round-trips through WriteSchedule unchanged.
func ParseSchedule(r io.Reader) (Schedule, error) {
	var s Schedule
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := parseFault(line)
		if err != nil {
			return Schedule{}, fmt.Errorf("chaos: line %d: %w", lineNo, err)
		}
		s.Faults = append(s.Faults, f)
	}
	if err := sc.Err(); err != nil {
		return Schedule{}, fmt.Errorf("chaos: read schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

func parseFault(line string) (Fault, error) {
	fields := strings.Fields(line)
	kind, err := KindFromString(fields[0])
	if err != nil {
		return Fault{}, err
	}
	f := Fault{Kind: kind, Time: math.NaN()}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return Fault{}, fmt.Errorf("malformed field %q (want key=value)", kv)
		}
		switch key {
		case "t":
			f.Time, err = parseFinite(val)
		case "node":
			f.Node = val
		case "job":
			f.Job, err = strconv.Atoi(val)
		case "task":
			f.Task, err = strconv.Atoi(val)
		case "dur":
			f.Duration, err = parseFinite(val)
		case "sev":
			f.Severity, err = parseFinite(val)
		default:
			return Fault{}, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return Fault{}, fmt.Errorf("field %q: %w", kv, err)
		}
	}
	if math.IsNaN(f.Time) {
		return Fault{}, fmt.Errorf("%s: missing t=", kind)
	}
	return f, nil
}

// parseFinite parses a float and rejects NaN/Inf, which would silently break
// the injector's time ordering.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

// WriteSchedule writes the schedule in the text format ParseSchedule reads.
func WriteSchedule(w io.Writer, s Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, f := range s.Faults {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

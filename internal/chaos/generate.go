package chaos

import (
	"math"
	"math/rand"
	"sort"
)

// GenConfig parameterizes random schedule generation. Every process is driven
// by one seeded RNG consumed in a fixed order, so Generate is a pure function
// of this struct: the same config always yields the same schedule.
type GenConfig struct {
	Seed    int64
	Horizon float64 // faults are drawn in [0, Horizon) seconds

	// --- node crashes: per-node Poisson process ---
	Nodes      []string // node IDs eligible to crash
	NodeMTBF   float64  // mean seconds between crashes per node; 0 disables
	MeanOutage float64  // mean outage duration (exponential, floor 60 s)

	// --- per-job hazards ---
	Jobs []int // job IDs eligible for job-level faults
	// TaskKillRate / StragglerRate are per-job Poisson rates in events per
	// Horizon (e.g. 0.5 → each job expects half a kill over the run).
	TaskKillRate  float64
	StragglerRate float64
	// StragglerSlowdown / StragglerDur shape injected stragglers; defaults
	// 0.5 and Horizon/10.
	StragglerSlowdown float64
	StragglerDur      float64
	// CkptFailProb is the probability that a job suffers one checkpoint-write
	// failure, scheduled uniformly over the horizon.
	CkptFailProb float64

	// --- fabric ---
	// NetSlowCount fabric-wide degradation events, each NetSlowDur seconds at
	// NetSlowSeverity× speed (defaults Horizon/20 and 0.7).
	NetSlowCount    int
	NetSlowDur      float64
	NetSlowSeverity float64

	// --- control plane ---
	// LeaderKills scheduler-leader SIGKILLs, uniform over the horizon, for
	// the internal/ha failover harness.
	LeaderKills int
}

// Generate draws a schedule from the configured random processes. The result
// is sorted by time and always validates.
func Generate(cfg GenConfig) Schedule {
	if cfg.Horizon <= 0 {
		return Schedule{}
	}
	if cfg.StragglerSlowdown <= 0 || cfg.StragglerSlowdown >= 1 {
		cfg.StragglerSlowdown = 0.5
	}
	if cfg.StragglerDur <= 0 {
		cfg.StragglerDur = cfg.Horizon / 10
	}
	if cfg.MeanOutage <= 0 {
		cfg.MeanOutage = cfg.Horizon / 8
	}
	if cfg.NetSlowDur <= 0 {
		cfg.NetSlowDur = cfg.Horizon / 20
	}
	if cfg.NetSlowSeverity <= 0 || cfg.NetSlowSeverity >= 1 {
		cfg.NetSlowSeverity = 0.7
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var s Schedule

	// Node crashes: exponential inter-arrival times per node (Poisson MTBF).
	if cfg.NodeMTBF > 0 {
		for _, node := range cfg.Nodes {
			t := r.ExpFloat64() * cfg.NodeMTBF
			for t < cfg.Horizon {
				outage := r.ExpFloat64() * cfg.MeanOutage
				if outage < 60 {
					outage = 60
				}
				s.Faults = append(s.Faults, Fault{
					Kind: NodeCrash, Time: t, Node: node, Duration: outage,
				})
				t += outage + r.ExpFloat64()*cfg.NodeMTBF
			}
		}
	}

	// Per-job hazards: Poisson counts over the horizon.
	for _, job := range cfg.Jobs {
		for i, n := 0, poisson(r, cfg.TaskKillRate); i < n; i++ {
			s.Faults = append(s.Faults, Fault{
				Kind: TaskKill, Time: r.Float64() * cfg.Horizon, Job: job,
			})
		}
		for i, n := 0, poisson(r, cfg.StragglerRate); i < n; i++ {
			s.Faults = append(s.Faults, Fault{
				Kind: Straggler, Time: r.Float64() * cfg.Horizon, Job: job,
				Duration: cfg.StragglerDur, Severity: cfg.StragglerSlowdown,
			})
		}
		if cfg.CkptFailProb > 0 && r.Float64() < cfg.CkptFailProb {
			s.Faults = append(s.Faults, Fault{
				Kind: CheckpointFail, Time: r.Float64() * cfg.Horizon, Job: job,
			})
		}
	}

	// Fabric-wide slowdowns.
	for i := 0; i < cfg.NetSlowCount; i++ {
		s.Faults = append(s.Faults, Fault{
			Kind: NetworkSlow, Time: r.Float64() * cfg.Horizon,
			Duration: cfg.NetSlowDur, Severity: cfg.NetSlowSeverity,
		})
	}

	// Control-plane leader kills.
	for i := 0; i < cfg.LeaderKills; i++ {
		s.Faults = append(s.Faults, Fault{
			Kind: LeaderKill, Time: r.Float64() * cfg.Horizon,
		})
	}

	sort.SliceStable(s.Faults, func(i, j int) bool {
		return s.Faults[i].Time < s.Faults[j].Time
	})
	return s
}

// poisson draws from a Poisson distribution with the given mean (Knuth's
// product method — means here are small).
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	l := 1.0
	for k := 0; ; k++ {
		l *= r.Float64()
		if l <= limit {
			return k
		}
	}
}

package chaos

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSchedule hardens the schedule parser: arbitrary input must never
// panic, and every accepted schedule must validate and serialize stably
// (write → parse → write reproduces the first serialization byte for byte —
// the property the deterministic-replay contract rests on).
func FuzzParseSchedule(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteSchedule(&seed, validSchedule()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("# only a comment\n")
	f.Add("")
	f.Add("node-crash t=1200 node=cpu-3 dur=1800\n")
	f.Add("task-kill t=2400 job=5 task=1\n")
	f.Add("straggler t=600 job=2 dur=1200 sev=0.5\n")
	f.Add("net-slow t=3e3 dur=600 sev=0.7\nckpt-fail t=4000 job=1\n")
	f.Add("recovery-delay t=0 job=0 dur=1e-9\n")
	f.Add("task-kill t=nan job=1\n")
	f.Add("node-crash t=1 node=a dur=Inf\n")

	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSchedule(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics and hangs are not
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted schedule fails validation: %v", verr)
		}
		var first bytes.Buffer
		if werr := WriteSchedule(&first, s); werr != nil {
			t.Fatalf("accepted schedule failed to serialize: %v", werr)
		}
		again, err := ParseSchedule(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v\nserialized:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if werr := WriteSchedule(&second, again); werr != nil {
			t.Fatal(werr)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not stable:\nfirst:\n%s\nsecond:\n%s",
				first.String(), second.String())
		}
	})
}

package chaos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func validSchedule() Schedule {
	return Schedule{Faults: []Fault{
		{Kind: Straggler, Time: 600, Job: 2, Duration: 1200, Severity: 0.5},
		{Kind: NodeCrash, Time: 1200, Node: "cpu-3", Duration: 1800},
		{Kind: TaskKill, Time: 2400, Job: 5},
		{Kind: NetworkSlow, Time: 3000, Duration: 600, Severity: 0.7},
		{Kind: CheckpointFail, Time: 4000, Job: 1},
		{Kind: RecoveryDelay, Time: 4000, Job: 1, Duration: 120},
	}}
}

func TestValidateRejectsBadFaults(t *testing.T) {
	bad := []Fault{
		{Kind: NodeCrash, Time: 10, Duration: 60},                        // missing node
		{Kind: NodeCrash, Time: 10, Node: "n", Duration: 0},              // no outage
		{Kind: NodeCrash, Time: -1, Node: "n", Duration: 60},             // negative time
		{Kind: TaskKill, Time: 10, Job: -1},                              // bad job
		{Kind: Straggler, Time: 10, Job: 1, Duration: 60, Severity: 1.5}, // bad severity
		{Kind: Straggler, Time: 10, Job: 1, Duration: 0, Severity: 0.5},  // no duration
		{Kind: NetworkSlow, Time: 10, Duration: 60, Severity: 0},         // bad severity
		{Kind: RecoveryDelay, Time: 10, Job: 1},                          // no duration
		{Kind: Kind(99), Time: 10},                                       // unknown kind
		{Kind: TaskKill, Time: 10, Job: 1, Task: -2},                     // bad task
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", f)
		}
	}
	if err := validSchedule().Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := validSchedule()
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed schedule:\n got %+v\nwant %+v", got, s)
	}
}

func TestParseCommentsAndErrors(t *testing.T) {
	good := `
# header comment
node-crash t=100 node=gpu-1 dur=300

task-kill t=200 job=3 task=1
`
	s, err := ParseSchedule(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Faults[1].Task != 1 {
		t.Fatalf("parsed %+v", s)
	}

	for _, bad := range []string{
		"explode t=1",                     // unknown kind
		"task-kill job=1",                 // missing t
		"task-kill t=1 job=x",             // bad int
		"task-kill t=nan job=1",           // non-finite time
		"node-crash t=1 node=a dur=+Inf",  // non-finite duration
		"task-kill t=1 job=1 color=red",   // unknown key
		"task-kill t=1 job",               // malformed field
		"straggler t=1 job=1 dur=5 sev=2", // invalid severity
	} {
		if _, err := ParseSchedule(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestInjectorWindowsAndLateDelivery(t *testing.T) {
	in, err := NewInjector(validSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Window(0, 600); len(got) != 0 {
		t.Fatalf("window [0,600) = %v", got)
	}
	if got := in.Window(600, 1300); len(got) != 2 {
		t.Fatalf("window [600,1300) = %v", got)
	}
	// A fast-forward past fault times must still deliver them.
	if got := in.Window(5000, 6000); len(got) != 4 {
		t.Fatalf("late window delivered %d faults, want 4", len(got))
	}
	if in.Remaining() != 0 {
		t.Errorf("Remaining = %d", in.Remaining())
	}
}

func TestInjectorSortsSchedule(t *testing.T) {
	s := Schedule{Faults: []Fault{
		{Kind: TaskKill, Time: 500, Job: 1},
		{Kind: TaskKill, Time: 100, Job: 2},
	}}
	in, err := NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	got := in.Window(0, 1000)
	if len(got) != 2 || got[0].Job != 2 || got[1].Job != 1 {
		t.Fatalf("window = %v, want time order", got)
	}
}

func TestInjectorRejectsInvalid(t *testing.T) {
	if _, err := NewInjector(Schedule{Faults: []Fault{{Kind: NodeCrash, Time: 1}}}); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		Seed: 7, Horizon: 10000,
		Nodes: []string{"n0", "n1", "n2"}, NodeMTBF: 8000,
		Jobs: []int{1, 2, 3}, TaskKillRate: 1, StragglerRate: 1,
		CkptFailProb: 0.5, NetSlowCount: 2,
	}
	a, b := Generate(cfg), Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	if a.Len() == 0 {
		t.Fatal("generator produced no faults at these rates")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	for i := 1; i < a.Len(); i++ {
		if a.Faults[i].Time < a.Faults[i-1].Time {
			t.Fatal("generated schedule not sorted")
		}
	}
	cfg.Seed = 8
	if reflect.DeepEqual(a, Generate(cfg)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGenerateEmptyConfigs(t *testing.T) {
	if s := Generate(GenConfig{}); s.Len() != 0 {
		t.Errorf("zero config generated %d faults", s.Len())
	}
	if s := Generate(GenConfig{Horizon: 100}); s.Len() != 0 {
		t.Errorf("no-process config generated %d faults", s.Len())
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer(64)
	outer := tr.Begin("interval")
	inner := tr.Begin("allocate")
	leaf := tr.BeginJob("grant", 7)
	tr.End(leaf)
	tr.End(inner)
	tr.Annotate(outer, "round=1")
	tr.End(outer)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["allocate"].Parent != byName["interval"].ID {
		t.Errorf("allocate parent = %d, want %d", byName["allocate"].Parent, byName["interval"].ID)
	}
	if byName["grant"].Parent != byName["allocate"].ID {
		t.Errorf("grant parent = %d, want %d", byName["grant"].Parent, byName["allocate"].ID)
	}
	if byName["grant"].Job != 7 {
		t.Errorf("grant job = %d, want 7", byName["grant"].Job)
	}
	if byName["interval"].Detail != "round=1" {
		t.Errorf("detail = %q", byName["interval"].Detail)
	}
	if byName["interval"].Parent != 0 {
		t.Errorf("root span has parent %d", byName["interval"].Parent)
	}
	for _, s := range spans {
		if s.Dur < 0 {
			t.Errorf("span %s still open (dur %d)", s.Name, s.Dur)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 50; i++ {
		tr.End(tr.Begin("s"))
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("got %d spans, want ring size 8", len(spans))
	}
	for i, s := range spans {
		if want := int64(43 + i); s.ID != want {
			t.Errorf("span %d: ID %d, want %d", i, s.ID, want)
		}
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d, want 50", tr.Len())
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	nilT.End(nilT.Begin("x")) // must not panic
	nilT.Annotate(NoSpan, "y")
	if got := nilT.Spans(); got != nil {
		t.Errorf("nil tracer spans = %v", got)
	}

	tr := NewTracer(4)
	tr.SetEnabled(false)
	if ref := tr.Begin("off"); ref != NoSpan {
		t.Errorf("disabled Begin returned %d", ref)
	}
	if n := tr.Len(); n != 0 {
		t.Errorf("disabled tracer recorded %d spans", n)
	}
	tr.SetEnabled(true)
	tr.End(tr.Begin("on"))
	if n := len(tr.Spans()); n != 1 {
		t.Errorf("re-enabled tracer has %d spans, want 1", n)
	}
}

// TestTracerConcurrentExport exercises Spans/Reset racing Begin/End — the
// daemon serves /v1/trace while the scheduling loop records.
func TestTracerConcurrentExport(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sp := tr.Begin("work")
				tr.End(sp)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		tr.Spans()
	}
	close(stop)
	wg.Wait()
	for _, s := range tr.Spans() {
		if s.Name != "work" || s.Dur < 0 {
			t.Fatalf("torn span %+v", s)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	outer := tr.Begin("interval")
	tr.End(tr.BeginJob("allocate", 3))
	tr.Annotate(outer, `quote " backslash \ newline`+"\n")
	tr.End(outer)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("missing traceEvents key")
	}
	back, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Spans()
	if len(back) != len(orig) {
		t.Fatalf("round trip: %d spans, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("span %d: got %+v, want %+v", i, back[i], orig[i])
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("empty trace decoded to %d spans", len(back))
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzChromeTrace drives arbitrary span contents through the hand-rolled
// trace-event encoder and requires (a) the output is valid JSON and (b) the
// encoding/json-based decoder recovers the spans exactly. Strings are
// normalized to valid UTF-8 first, mirroring what the encoder itself does to
// invalid bytes, so equality is exact.
func FuzzChromeTrace(f *testing.F) {
	f.Add(int64(1), int64(0), "interval", 0, int64(100), int64(50), "round=1")
	f.Add(int64(2), int64(1), `with "quotes" and \slashes\`, 7, int64(0), int64(0), "x\ny\tz")
	f.Add(int64(3), int64(2), "unicode ✓ 日本語", -1, int64(1<<40), int64(1), string([]byte{0x01, 0x1f}))
	f.Fuzz(func(t *testing.T, id, parent int64, name string, job int, start, dur int64, detail string) {
		if dur < 0 {
			dur = -dur
		}
		if dur < 0 { // math.MinInt64
			dur = 0
		}
		span := Span{
			ID:     id,
			Parent: parent,
			Name:   strings.ToValidUTF8(name, "\uFFFD"),
			Job:    job,
			Start:  start,
			Dur:    dur,
			Detail: strings.ToValidUTF8(detail, "\uFFFD"),
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, []Span{span}); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("encoder emitted invalid JSON for %+v:\n%s", span, buf.String())
		}
		back, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(back) != 1 {
			t.Fatalf("decoded %d spans, want 1", len(back))
		}
		if back[0] != span {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back[0], span)
		}
	})
}

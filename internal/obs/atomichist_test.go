package obs

import (
	"math"
	"sync"
	"testing"
)

func TestAtomicHistogramMatchesHistogram(t *testing.T) {
	var a AtomicHistogram
	var h Histogram
	obs := []float64{0, 1e-7, 1e-6, 3e-6, 0.001, 0.02, 0.5, 3, 100, 1e5}
	for _, v := range obs {
		a.Observe(v)
		h.Observe(v)
	}
	// Invalid observations dropped by both.
	a.Observe(-1)
	a.Observe(math.NaN())
	h.Observe(-1)
	h.Observe(math.NaN())

	snap := a.Snapshot()
	if snap.Count() != h.Count() {
		t.Fatalf("count %d != %d", snap.Count(), h.Count())
	}
	if math.Abs(snap.Sum()-h.Sum()) > 1e-9 {
		t.Fatalf("sum %g != %g", snap.Sum(), h.Sum())
	}
	if snap.Max() != h.Max() {
		t.Fatalf("max %g != %g", snap.Max(), h.Max())
	}
	for i := 0; i <= HistBuckets; i++ {
		if snap.CumulativeCount(i) != h.CumulativeCount(i) {
			t.Fatalf("bucket %d cumulative %d != %d", i, snap.CumulativeCount(i), h.CumulativeCount(i))
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if snap.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q%g: %g != %g", q, snap.Quantile(q), h.Quantile(q))
		}
	}
}

func TestAtomicHistogramConcurrent(t *testing.T) {
	var a AtomicHistogram
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Observe(float64(w*per+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Count(); got != workers*per {
		t.Fatalf("count %d, want %d", got, workers*per)
	}
	snap := a.Snapshot()
	n := float64(workers * per)
	wantSum := 1e-6 * n * (n - 1) / 2
	if math.Abs(snap.Sum()-wantSum)/wantSum > 1e-9 {
		t.Fatalf("sum %g, want %g", snap.Sum(), wantSum)
	}
	if want := (n - 1) * 1e-6; snap.Max() != want {
		t.Fatalf("max %g, want %g", snap.Max(), want)
	}
}

package obs

import (
	"fmt"
	"math"
)

// HistBuckets is the number of finite log-spaced buckets: upper bounds
// 1µs·2^i for i = 0..HistBuckets-1, i.e. 1µs up to ~33.6s, plus an implicit
// +Inf overflow bucket. Doubling buckets keep the relative quantile error
// under 2× across the whole range — plenty for latency triage — while the
// fixed array keeps Observe allocation-free.
const HistBuckets = 26

// BucketBound returns the upper bound (seconds, inclusive) of finite bucket
// i, or +Inf for i >= HistBuckets.
func BucketBound(i int) float64 {
	if i >= HistBuckets {
		return math.Inf(1)
	}
	return 1e-6 * float64(uint64(1)<<uint(i))
}

// Histogram is a log-bucketed latency histogram over seconds. The zero value
// is ready to use. Like metrics.Recorder, it is not synchronized: the
// scheduling loop owns writes, and concurrent readers must hold the same
// lock the writer does (the optimusd event loop uses the daemon mutex).
type Histogram struct {
	counts [HistBuckets + 1]uint64 // +1 = overflow (+Inf) bucket
	count  uint64
	sum    float64
	max    float64
}

// Observe records one duration in seconds. Negative and NaN observations are
// dropped.
func (h *Histogram) Observe(seconds float64) {
	if math.IsNaN(seconds) || seconds < 0 {
		return
	}
	i := 0
	for i < HistBuckets && seconds > BucketBound(i) {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest observation in seconds.
func (h *Histogram) Max() float64 { return h.max }

// CumulativeCount returns the number of observations <= BucketBound(i)
// (Prometheus `le` semantics); i = HistBuckets is the +Inf bucket and equals
// Count().
func (h *Histogram) CumulativeCount(i int) uint64 {
	if i > HistBuckets {
		i = HistBuckets
	}
	var c uint64
	for b := 0; b <= i; b++ {
		c += h.counts[b]
	}
	return c
}

// Quantile estimates the p-quantile (0 <= p <= 1) as the upper bound of the
// bucket containing it, clamped to Max so the tail never over-reports. NaN
// when empty.
func (h *Histogram) Quantile(p float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i <= HistBuckets; i++ {
		cum += h.counts[i]
		if cum >= target {
			b := BucketBound(i)
			if b > h.max {
				b = h.max
			}
			return b
		}
	}
	return h.max
}

// Summary renders the standard latency digest.
func (h *Histogram) Summary() string {
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s max=%s",
		h.count, fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.95)),
		fmtDur(h.Quantile(0.99)), fmtDur(h.max))
}

// fmtDur renders seconds with a unit matched to magnitude.
func fmtDur(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.3fs", sec)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"
)

// Chrome trace-event JSON ("JSON Object Format" with a traceEvents array of
// "X" complete events), loadable by chrome://tracing and Perfetto. Each span
// becomes one event; ts/dur are microseconds as the format requires, while
// args carries the exact nanosecond values plus the span identity so the
// file round-trips losslessly through ReadChromeTrace (fuzz-verified).
//
// The encoder is hand-rolled rather than encoding/json-based so exporting a
// large ring does not materialize an intermediate []map; the decoder uses
// encoding/json and exists as the encoder's test oracle and for tooling that
// wants spans back out of a capture.

// WriteChromeTrace encodes spans as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, s := range spans {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := writeChromeEvent(w, s); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ms"}`+"\n")
	return err
}

func writeChromeEvent(w io.Writer, s Span) error {
	// ts and dur are float microseconds; exact values live in args.
	_, err := fmt.Fprintf(w,
		`{"name":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":1,`+
			`"args":{"id":%d,"parent":%d,"job":%d,"startNs":%d,"durNs":%d,"detail":%s}}`,
		jsonString(s.Name),
		strconv.FormatFloat(float64(s.Start)/1e3, 'f', 3, 64),
		strconv.FormatFloat(float64(s.Dur)/1e3, 'f', 3, 64),
		s.ID, s.Parent, s.Job, s.Start, s.Dur, jsonString(s.Detail))
	return err
}

// jsonString renders s as a JSON string literal. Unlike strconv.Quote it
// never emits \x escapes (invalid JSON); control characters become \u00XX
// and invalid UTF-8 bytes become U+FFFD, matching encoding/json.
func jsonString(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case r == utf8.RuneError && size == 1:
			buf = append(buf, `�`...)
		case r == '"':
			buf = append(buf, `\"`...)
		case r == '\\':
			buf = append(buf, `\\`...)
		case r == '\n':
			buf = append(buf, `\n`...)
		case r == '\r':
			buf = append(buf, `\r`...)
		case r == '\t':
			buf = append(buf, `\t`...)
		case r < 0x20:
			buf = append(buf, fmt.Sprintf(`\u%04x`, r)...)
		default:
			buf = append(buf, s[i:i+size]...)
		}
		i += size
	}
	return string(append(buf, '"'))
}

// chromeFile / chromeEvent mirror the subset of the trace-event format the
// encoder emits.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Args struct {
		ID      int64  `json:"id"`
		Parent  int64  `json:"parent"`
		Job     int    `json:"job"`
		StartNs int64  `json:"startNs"`
		DurNs   int64  `json:"durNs"`
		Detail  string `json:"detail"`
	} `json:"args"`
}

// ReadChromeTrace decodes a WriteChromeTrace capture back into spans.
// Events that are not "X" complete events (other tools may append metadata
// events) are skipped.
func ReadChromeTrace(r io.Reader) ([]Span, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: bad chrome trace: %w", err)
	}
	out := make([]Span, 0, len(f.TraceEvents))
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		out = append(out, Span{
			ID: ev.Args.ID, Parent: ev.Args.Parent, Name: ev.Name,
			Job: ev.Args.Job, Start: ev.Args.StartNs, Dur: ev.Args.DurNs,
			Detail: ev.Args.Detail,
		})
	}
	return out, nil
}

package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoggerLevelsAndComponents(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(32)
	lg := NewLogger(&buf, "optimusd", f)

	lg.Debugf("hidden %d", 1) // below SevInfo: stderr-silent, flight-recorded
	lg.Infof("listening on %s", ":0")
	lg.Named("ha").Warnf("lag %d", 3)
	lg.Named("wal").Errorf("append: %v", "disk gone")

	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked to output: %q", out)
	}
	for _, want := range []string{
		"optimusd: listening on :0",
		"ha: warn: lag 3",
		"wal: error: append: disk gone",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
	// Every line, including the suppressed debug one, reaches the black box.
	evs := f.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("flight recorded %d events, want 4", len(evs))
	}
	if evs[0].Msg != "hidden 1" || evs[0].Sev != SevDebug || evs[0].Component != "optimusd" {
		t.Fatalf("flight event 0 = %+v", evs[0])
	}
	if evs[2].Component != "ha" {
		t.Fatalf("flight event 2 component = %q", evs[2].Component)
	}

	lg.SetLevel(SevDebug)
	lg.Debugf("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("SetLevel(SevDebug) did not surface debug lines")
	}

	buf.Reset()
	lg.SetTimestamps(true)
	lg.Infof("stamped")
	if line := buf.String(); !strings.Contains(line, "INFO") &&
		!strings.Contains(line, "info") || !strings.Contains(line, "T") {
		t.Fatalf("timestamped line = %q", line)
	}
}

func TestLoggerFatalHook(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlightRecorder(8)
	lg := NewLogger(&buf, "optimusd", f)
	var hookReason string
	var exitCode = -1
	lg.core.exit = func(code int) { exitCode = code }
	lg.SetOnFatal(func(reason string) { hookReason = reason })

	lg.Fatalf("leader lease lost (%s): fail-stop", "held by intruder")

	if exitCode != 1 {
		t.Fatalf("exit code = %d, want 1", exitCode)
	}
	if want := "leader lease lost (held by intruder): fail-stop"; hookReason != want {
		t.Fatalf("hook reason = %q, want %q", hookReason, want)
	}
	if !strings.Contains(buf.String(), "fail-stop") {
		t.Fatalf("fatal line missing from output: %q", buf.String())
	}
	evs := f.Snapshot()
	if len(evs) != 1 || evs[0].Sev != SevError {
		t.Fatalf("flight events = %+v", evs)
	}

	// The hook runs once even if a second goroutine fatals after.
	hookReason = ""
	lg.Fatalf("second fatal")
	if hookReason != "" {
		t.Fatal("OnFatal hook ran twice")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var lg *Logger
	lg.Infof("dropped")
	lg.Named("x").Errorf("dropped")
	lg.SetLevel(SevDebug)
	lg.SetTimestamps(true)
	if lg.Flight() != nil {
		t.Fatal("nil logger has a flight recorder")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("BuildInfo.GoVersion empty")
	}
	if b.String() == "" {
		t.Fatal("BuildInfo.String empty")
	}
}

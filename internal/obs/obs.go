// Package obs is the scheduler's decision-tracing and explainability layer:
// nestable spans over the fit → allocate → place → deploy pipeline, an audit
// log of every §4.1 marginal-gain grant and §4.2 placement, and log-bucketed
// latency histograms. It is zero-dependency (standard library only) so the
// core kernels can carry optional obs hooks without import cycles, and it is
// built to cost nothing when off: every entry point is nil-receiver safe, a
// non-nil Tracer/AuditLog can be gated with SetEnabled, and the disabled
// path performs no allocation (CI-guarded by alloc_guard_test.go).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of scheduler work. Start and Dur are nanoseconds
// on the tracer's monotonic clock (Start is measured from the tracer's
// creation), so spans order and nest exactly as they executed.
type Span struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"` // 0 = root span
	Name   string `json:"name"`
	Job    int    `json:"job,omitempty"` // -1/0 when not job-scoped
	Start  int64  `json:"startNs"`
	Dur    int64  `json:"durNs"` // -1 while the span is open
	Detail string `json:"detail,omitempty"`
}

// SpanRef identifies an open span returned by Begin. The zero-cost disabled
// path returns NoSpan, which End ignores.
type SpanRef int64

// NoSpan is the ref returned when tracing is off; safe to End.
const NoSpan SpanRef = -1

// Tracer records spans into a fixed ring buffer. Begin/End are intended for
// one goroutine at a time (the scheduling loop); the internal mutex exists so
// Spans/Reset can run concurrently from an HTTP handler without tearing a
// slot. A nil *Tracer is a valid, permanently-disabled tracer.
type Tracer struct {
	on    atomic.Bool
	mu    sync.Mutex
	epoch time.Time
	ring  []Span
	next  int64   // last span ID issued (IDs are 1-based)
	stack []int64 // open span IDs, innermost last
}

// DefaultSpanBuffer is the ring capacity NewTracer uses for size <= 0.
const DefaultSpanBuffer = 8192

// NewTracer returns an enabled tracer retaining the last `size` spans.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultSpanBuffer
	}
	t := &Tracer{
		epoch: time.Now(),
		ring:  make([]Span, size),
		stack: make([]int64, 0, 16),
	}
	t.on.Store(true)
	return t
}

// SetEnabled toggles recording. Disabled Begin/End are branch-and-return:
// no lock, no clock read, no allocation.
func (t *Tracer) SetEnabled(v bool) {
	if t != nil {
		t.on.Store(v)
	}
}

// Enabled reports whether spans are being recorded. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// Begin opens a span nested under the innermost open span.
func (t *Tracer) Begin(name string) SpanRef { return t.BeginJob(name, 0) }

// BeginJob opens a job-scoped span.
func (t *Tracer) BeginJob(name string, job int) SpanRef {
	if t == nil || !t.on.Load() {
		return NoSpan
	}
	now := int64(time.Since(t.epoch))
	t.mu.Lock()
	t.next++
	id := t.next
	var parent int64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.stack = append(t.stack, id)
	t.ring[t.slot(id)] = Span{
		ID: id, Parent: parent, Name: name, Job: job, Start: now, Dur: -1,
	}
	t.mu.Unlock()
	return SpanRef(id)
}

// End closes the span, recording its duration. Ends of spans that have been
// overwritten in the ring (or NoSpan) are ignored. Closing an outer span
// implicitly discards any still-open inner spans, so a skipped End cannot
// corrupt the nesting stack.
func (t *Tracer) End(ref SpanRef) {
	if t == nil || ref <= 0 || !t.on.Load() {
		return
	}
	now := int64(time.Since(t.epoch))
	t.mu.Lock()
	for n := len(t.stack); n > 0; n = len(t.stack) {
		top := t.stack[n-1]
		t.stack = t.stack[:n-1]
		if top == int64(ref) {
			break
		}
	}
	if s := &t.ring[t.slot(int64(ref))]; s.ID == int64(ref) {
		s.Dur = now - s.Start
	}
	t.mu.Unlock()
}

// Annotate attaches a free-form detail string to an open or closed span
// still in the ring.
func (t *Tracer) Annotate(ref SpanRef, detail string) {
	if t == nil || ref <= 0 || !t.on.Load() {
		return
	}
	t.mu.Lock()
	if s := &t.ring[t.slot(int64(ref))]; s.ID == int64(ref) {
		s.Detail = detail
	}
	t.mu.Unlock()
}

func (t *Tracer) slot(id int64) int { return int((id - 1) % int64(len(t.ring))) }

// Spans returns a snapshot of the completed spans still in the ring, oldest
// first. Open spans are excluded. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := t.next - int64(len(t.ring)) + 1
	if lo < 1 {
		lo = 1
	}
	out := make([]Span, 0, t.next-lo+1)
	for id := lo; id <= t.next; id++ {
		s := t.ring[t.slot(id)]
		if s.ID == id && s.Dur >= 0 {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of spans ever begun. Nil-safe.
func (t *Tracer) Len() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Reset drops all recorded spans and open-span state, keeping the clock
// epoch so span timestamps remain monotone across resets.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ring {
		t.ring[i] = Span{}
	}
	t.next = 0
	t.stack = t.stack[:0]
}

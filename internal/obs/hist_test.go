package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(0)          // lands in the first bucket
	h.Observe(1e-6)       // exactly the first bound
	h.Observe(3e-6)       // (2µs, 4µs]
	h.Observe(1e-3)       // ~1ms
	h.Observe(2.0)        // seconds range
	h.Observe(1e9)        // overflow bucket
	h.Observe(-1)         // dropped
	h.Observe(math.NaN()) // dropped

	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Max() != 1e9 {
		t.Errorf("max = %g", h.Max())
	}
	if got := h.CumulativeCount(0); got != 2 {
		t.Errorf("le=1µs cumulative = %d, want 2", got)
	}
	if got := h.CumulativeCount(HistBuckets); got != 6 {
		t.Errorf("+Inf cumulative = %d, want count 6", got)
	}
	// p50 of 6 obs → 3rd: 3µs bucket, upper bound 4µs.
	if got := h.Quantile(0.5); got != 4e-6 {
		t.Errorf("p50 = %g, want 4e-6", got)
	}
	// Tail quantile is clamped to max.
	if got := h.Quantile(1); got != 1e9 {
		t.Errorf("p100 = %g, want clamp to max", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-5) // 10µs .. 10ms
	}
	prev := 0.0
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		q := h.Quantile(p)
		if q < prev {
			t.Errorf("quantile(%g) = %g < quantile before it %g", p, q, prev)
		}
		prev = q
	}
	// p50 of uniform 10µs..10ms is ~5ms; log buckets bound it within 2×.
	if q := h.Quantile(0.5); q < 2.5e-3 || q > 1e-2 {
		t.Errorf("p50 = %g, want within a bucket of 5ms", q)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	if got := h.Summary(); got != "n=0" {
		t.Errorf("empty summary = %q", got)
	}
	h.Observe(5e-4)
	s := h.Summary()
	for _, want := range []string{"n=1", "p50=", "p95=", "max="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestBucketBound(t *testing.T) {
	if BucketBound(0) != 1e-6 {
		t.Errorf("bound(0) = %g", BucketBound(0))
	}
	if BucketBound(10) != 1e-6*1024 {
		t.Errorf("bound(10) = %g", BucketBound(10))
	}
	if !math.IsInf(BucketBound(HistBuckets), 1) {
		t.Errorf("bound(%d) should be +Inf", HistBuckets)
	}
}

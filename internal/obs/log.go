package obs

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Logger is the daemons' leveled, component-tagged structured logger. Every
// line goes two places: formatted text to the output writer (stderr in the
// commands) and, when a FlightRecorder is attached, a structured event into
// the black box — so the bundle written after a crash carries the same lines
// the operator saw scroll by, in order, with everything around them.
//
// Loggers are cheap views over a shared core: Named returns a child tagged
// with another component, sharing the output lock, level and flight recorder.
// All methods are safe for concurrent use and nil-receiver safe (a nil logger
// discards everything), so library code can carry an optional logger.
type Logger struct {
	core      *logCore
	component string
}

type logCore struct {
	mu     sync.Mutex
	out    io.Writer
	min    atomic.Int32 // minimum Severity written to out
	stamps atomic.Bool  // prefix lines with a UTC timestamp
	flight *FlightRecorder
	// onFatal runs once, after the fatal line is emitted and recorded but
	// before exit — the daemon hangs its write-a-debug-bundle hook here.
	onFatal   atomic.Pointer[func(reason string)]
	fatalOnce sync.Once
	exit      func(int) // os.Exit, overridable in tests
}

// NewLogger builds a logger writing lines at or above SevInfo to out, tagged
// with component, teeing every line (all severities) into flight when it is
// non-nil. Timestamps are off by default (CLI style); daemons turn them on
// with SetTimestamps.
func NewLogger(out io.Writer, component string, flight *FlightRecorder) *Logger {
	c := &logCore{out: out, flight: flight, exit: os.Exit}
	c.min.Store(int32(SevInfo))
	return &Logger{core: c, component: component}
}

// Named returns a child logger tagged with component, sharing everything
// else. Nil-safe.
func (l *Logger) Named(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, component: component}
}

// SetLevel sets the minimum severity written to the output writer. The
// flight recorder keeps receiving every line regardless — the black box
// wants the debug noise that stderr doesn't.
func (l *Logger) SetLevel(min Severity) {
	if l != nil {
		l.core.min.Store(int32(min))
	}
}

// SetTimestamps toggles the UTC timestamp prefix on output lines.
func (l *Logger) SetTimestamps(v bool) {
	if l != nil {
		l.core.stamps.Store(v)
	}
}

// SetOnFatal installs the hook Fatalf runs before exiting (e.g. writing a
// fail-stop debug bundle). The hook runs at most once per process even if
// several goroutines Fatalf concurrently.
func (l *Logger) SetOnFatal(fn func(reason string)) {
	if l != nil {
		l.core.onFatal.Store(&fn)
	}
}

// Flight returns the attached recorder (nil when none).
func (l *Logger) Flight() *FlightRecorder {
	if l == nil {
		return nil
	}
	return l.core.flight
}

func (l *Logger) logf(sev Severity, format string, args ...any) string {
	if l == nil {
		return ""
	}
	msg := fmt.Sprintf(format, args...)
	l.core.flight.Record(l.component, sev, msg)
	if int32(sev) < l.core.min.Load() {
		return msg
	}
	c := l.core
	c.mu.Lock()
	if c.stamps.Load() {
		fmt.Fprintf(c.out, "%s %-5s %s: %s\n",
			time.Now().UTC().Format("2006-01-02T15:04:05.000Z"), sev, l.component, msg)
	} else if sev == SevInfo {
		// CLI style: info lines read like plain program output.
		fmt.Fprintf(c.out, "%s: %s\n", l.component, msg)
	} else {
		fmt.Fprintf(c.out, "%s: %s: %s\n", l.component, sev, msg)
	}
	c.mu.Unlock()
	return msg
}

// Debugf logs at SevDebug (stderr only when the level allows; always
// recorded in the flight ring).
func (l *Logger) Debugf(format string, args ...any) { l.logf(SevDebug, format, args...) }

// Infof logs at SevInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(SevInfo, format, args...) }

// Warnf logs at SevWarn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(SevWarn, format, args...) }

// Errorf logs at SevError.
func (l *Logger) Errorf(format string, args ...any) { l.logf(SevError, format, args...) }

// Fatalf logs at SevError, runs the OnFatal hook (once per process), and
// exits with status 1. A nil logger falls back to stderr + exit so misuse
// still fail-stops.
func (l *Logger) Fatalf(format string, args ...any) {
	if l == nil {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}
	msg := l.logf(SevError, format, args...)
	l.core.fatalOnce.Do(func() {
		if fn := l.core.onFatal.Load(); fn != nil && *fn != nil {
			(*fn)(msg)
		}
	})
	l.core.exit(1)
}

package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestFlightRecordSnapshot(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Record("engine", SevInfo, "round", KI("round", 1), KF("simTime", 600))
	f.Record("wal", SevError, "append failed", KS("err", "disk gone"))
	f.Record("ha", SevWarn, "lag", KU("records", 7), KB("torn", true))

	evs := f.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("Snapshot returned %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Wall == 0 {
			t.Fatalf("event %d has zero wall clock", i)
		}
	}
	if evs[0].Component != "engine" || evs[0].Sev != SevInfo || evs[0].Msg != "round" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	attrs := evs[2].Attrs()
	if attrs["records"] != uint64(7) || attrs["torn"] != true {
		t.Fatalf("event 2 attrs = %v", attrs)
	}
	if got := evs[1].Attrs()["err"]; got != "disk gone" {
		t.Fatalf("event 1 err attr = %v", got)
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlightRecorder(8) // power of two already
	for i := 0; i < 20; i++ {
		f.Record("c", SevDebug, "ev", KI("i", int64(i)))
	}
	evs := f.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("Snapshot returned %d events, want ring size 8", len(evs))
	}
	for i, ev := range evs {
		want := uint64(13 + i) // 20 recorded, ring keeps 13..20
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	if f.Len() != 20 {
		t.Fatalf("Len = %d, want 20", f.Len())
	}
	if tail := f.Tail(3); len(tail) != 3 || tail[2].Seq != 20 {
		t.Fatalf("Tail(3) = %v", tail)
	}
}

func TestFlightRoundsUpCapacity(t *testing.T) {
	f := NewFlightRecorder(100)
	if len(f.slots) != 128 {
		t.Fatalf("capacity = %d, want 128", len(f.slots))
	}
}

func TestFlightDisabledAndNil(t *testing.T) {
	var nilRec *FlightRecorder
	nilRec.Record("c", SevInfo, "dropped")
	if nilRec.Snapshot() != nil || nilRec.Len() != 0 || nilRec.Enabled() {
		t.Fatal("nil recorder should be inert")
	}
	f := NewFlightRecorder(8)
	f.SetEnabled(false)
	f.Record("c", SevInfo, "dropped")
	if f.Len() != 0 {
		t.Fatal("disabled recorder recorded an event")
	}
	f.SetEnabled(true)
	f.Record("c", SevInfo, "kept")
	if f.Len() != 1 {
		t.Fatal("re-enabled recorder dropped an event")
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record("w", SevDebug, "ev", KI("writer", int64(w)), KI("i", int64(i)))
			}
		}(w)
	}
	// Snapshot concurrently with the writers: must not tear or panic.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, ev := range f.Snapshot() {
				if ev.Component != "w" || ev.Msg != "ev" {
					panic(fmt.Sprintf("torn event: %+v", ev))
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if f.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", f.Len(), writers*per)
	}
	evs := f.Snapshot()
	if len(evs) != 128 {
		t.Fatalf("Snapshot returned %d events, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous sequences %d -> %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightRecordDoesNotAllocate(t *testing.T) {
	f := NewFlightRecorder(64)
	if n := testing.AllocsPerRun(200, func() {
		f.Record("engine", SevInfo, "round",
			KI("round", 1), KF("simTime", 600), KU("jobs", 3), KB("ok", true))
	}); n != 0 {
		t.Fatalf("enabled Record allocates %.1f/op, want 0", n)
	}
	f.SetEnabled(false)
	if n := testing.AllocsPerRun(200, func() {
		f.Record("engine", SevInfo, "round", KI("round", 1))
	}); n != 0 {
		t.Fatalf("disabled Record allocates %.1f/op, want 0", n)
	}
}

func TestFlightEventJSONRoundTrip(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("ha", SevError, "lease lost", KS("holder", "intruder"), KI("term", 4))
	b, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []FlightEvent
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	if len(back) != 1 {
		t.Fatalf("round-trip returned %d events", len(back))
	}
	ev := back[0]
	if ev.Seq != 1 || ev.Component != "ha" || ev.Sev != SevError || ev.Msg != "lease lost" {
		t.Fatalf("round-trip event = %+v", ev)
	}
	attrs := ev.Attrs()
	if attrs["holder"] != "intruder" {
		t.Fatalf("round-trip attrs = %v", attrs)
	}
	if s := ev.String(); s == "" {
		t.Fatal("String() empty")
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.Record("engine", SevDebug, "round",
				KI("round", 7), KU("jobs", 100), KF("simTime", 4200))
		}
	})
}

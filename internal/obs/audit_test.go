package obs

import "testing"

func TestAuditLogPerJobHistory(t *testing.T) {
	a := NewAuditLog(64)
	a.Stamp(1, 0)
	a.Grant(GrantEvent{Job: 1, Kind: GrantSeed, PS: 1, Workers: 1})
	a.Grant(GrantEvent{Job: 2, Kind: GrantSeed, PS: 1, Workers: 1})
	a.Grant(GrantEvent{Job: 1, Kind: GrantWorker, Gain: 42, PS: 1, Workers: 2})
	a.Stamp(2, 600)
	a.Grant(GrantEvent{Job: 1, Kind: GrantPS, Gain: 7, PS: 2, Workers: 2})
	a.Place(PlaceEvent{Job: 1, PS: 2, Workers: 2, Servers: 2, Even: true})

	g1 := a.Grants(1)
	if len(g1) != 3 {
		t.Fatalf("job 1 grants = %d, want 3", len(g1))
	}
	if g1[0].Kind != GrantSeed || g1[1].Kind != GrantWorker || g1[2].Kind != GrantPS {
		t.Errorf("wrong grant order: %+v", g1)
	}
	if g1[2].Round != 2 || g1[2].Time != 600 {
		t.Errorf("stamp not applied: round=%d time=%g", g1[2].Round, g1[2].Time)
	}
	if g1[0].Round != 1 || g1[0].Time != 0 {
		t.Errorf("first-round stamp wrong: %+v", g1[0])
	}
	if all := a.Grants(-1); len(all) != 4 {
		t.Errorf("all grants = %d, want 4", len(all))
	}
	if p := a.Places(1); len(p) != 1 || !p[0].Even || p[0].Round != 2 {
		t.Errorf("placements = %+v", p)
	}
	if p := a.Places(9); len(p) != 0 {
		t.Errorf("unknown job has placements: %+v", p)
	}
}

func TestAuditLogRingWrapAndDisabled(t *testing.T) {
	a := NewAuditLog(4)
	for i := 0; i < 10; i++ {
		a.Grant(GrantEvent{Job: i})
	}
	got := a.Grants(-1)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, ev := range got {
		if want := 6 + i; ev.Job != want {
			t.Errorf("event %d: job %d, want %d", i, ev.Job, want)
		}
	}

	a.SetEnabled(false)
	a.Grant(GrantEvent{Job: 99})
	a.Place(PlaceEvent{Job: 99})
	if evs := a.Grants(99); len(evs) != 0 {
		t.Errorf("disabled log recorded %v", evs)
	}

	var nilA *AuditLog
	if nilA.Enabled() {
		t.Error("nil log reports enabled")
	}
	nilA.Grant(GrantEvent{}) // must not panic
	nilA.Place(PlaceEvent{})
	nilA.Stamp(1, 0)
	if nilA.Grants(-1) != nil || nilA.Places(-1) != nil {
		t.Error("nil log returned events")
	}
}

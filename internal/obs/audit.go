package obs

import (
	"sync"
	"sync/atomic"
)

// GrantKind labels one §4.1 allocation action.
type GrantKind string

const (
	// GrantSeed is the phase-1 starvation-avoidance grant of one worker and
	// one parameter server.
	GrantSeed GrantKind = "seed"
	// GrantWorker / GrantPS are phase-2 marginal-gain grants of one task.
	GrantWorker GrantKind = "worker"
	GrantPS     GrantKind = "ps"
)

// GrantEvent records one step of the §4.1 marginal-gain allocator: which job
// won the grant, the (priority-scaled) normalized gain it bid, the dominant
// resource share of the granted task, and the allocation the job holds after
// the grant. HeapDepth is how many jobs were still bidding when this grant
// was taken — the competition the winner beat.
type GrantEvent struct {
	Seq   int64   `json:"seq"`
	Round int     `json:"round"`
	Time  float64 `json:"time"` // scheduler clock, seconds

	Job           int       `json:"job"`
	Kind          GrantKind `json:"kind"`
	Gain          float64   `json:"gain,omitempty"`
	DominantShare float64   `json:"dominantShare"`
	Priority      float64   `json:"priority"`
	HeapDepth     int       `json:"heapDepth,omitempty"`
	PS            int       `json:"ps"`
	Workers       int       `json:"workers"`
}

// PlaceEvent records one job's §4.2 placement: the servers its tasks landed
// on, how evenly they spread (Theorem 1 wants max−min task counts per used
// server of 0), and whether the exact even-split construction succeeded or
// the greedy fallback ran.
type PlaceEvent struct {
	Seq   int64   `json:"seq"`
	Round int     `json:"round"`
	Time  float64 `json:"time"`

	Job     int      `json:"job"`
	PS      int      `json:"ps"`
	Workers int      `json:"workers"`
	Servers int      `json:"servers"`
	Spread  int      `json:"spread"` // max−min tasks per used server
	Even    bool     `json:"even"`   // exact Theorem-1 even split
	Nodes   []string `json:"nodes,omitempty"`
}

// AuditLog retains the scheduler's recent decisions in two fixed rings, one
// for allocation grants and one for placements. It is safe for concurrent
// use: the scheduling loop appends while HTTP handlers query per-job
// history. A nil *AuditLog is a valid, permanently-disabled log.
type AuditLog struct {
	// enabled gates the hot-path hooks; checked without taking mu.
	enabled atomic.Bool

	mu        sync.Mutex
	grants    []GrantEvent
	places    []PlaceEvent
	nextGrant int64
	nextPlace int64
	round     int
	simTime   float64
}

// DefaultAuditBuffer is the per-ring capacity NewAuditLog uses for size <= 0.
const DefaultAuditBuffer = 16384

// NewAuditLog returns an enabled log retaining the last `size` grant events
// and the last `size` placement events.
func NewAuditLog(size int) *AuditLog {
	if size <= 0 {
		size = DefaultAuditBuffer
	}
	a := &AuditLog{
		grants: make([]GrantEvent, size),
		places: make([]PlaceEvent, size),
	}
	a.enabled.Store(true)
	return a
}

// SetEnabled toggles recording. While disabled, Grant/Place are
// branch-and-return: no lock, no allocation.
func (a *AuditLog) SetEnabled(v bool) {
	if a != nil {
		a.enabled.Store(v)
	}
}

// Enabled reports whether the log is recording. Nil-safe; the scheduler
// kernels call this before building an event so the disabled path does no
// work at all.
func (a *AuditLog) Enabled() bool { return a != nil && a.enabled.Load() }

// Stamp sets the round number and scheduler-clock time attached to events
// recorded until the next Stamp. The integration layer (sim.Run, the
// optimusd event loop) stamps once per interval so the kernels stay
// time-agnostic.
func (a *AuditLog) Stamp(round int, simTime float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.round, a.simTime = round, simTime
	a.mu.Unlock()
}

// Grant appends one allocation grant, filling Seq/Round/Time.
func (a *AuditLog) Grant(ev GrantEvent) {
	if !a.Enabled() {
		return
	}
	a.mu.Lock()
	a.nextGrant++
	ev.Seq, ev.Round, ev.Time = a.nextGrant, a.round, a.simTime
	a.grants[int((a.nextGrant-1)%int64(len(a.grants)))] = ev
	a.mu.Unlock()
}

// Place appends one placement record, filling Seq/Round/Time.
func (a *AuditLog) Place(ev PlaceEvent) {
	if !a.Enabled() {
		return
	}
	a.mu.Lock()
	a.nextPlace++
	ev.Seq, ev.Round, ev.Time = a.nextPlace, a.round, a.simTime
	a.places[int((a.nextPlace-1)%int64(len(a.places)))] = ev
	a.mu.Unlock()
}

// Reset drops all recorded events and the current stamp. Nil-safe.
func (a *AuditLog) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.grants {
		a.grants[i] = GrantEvent{}
	}
	for i := range a.places {
		a.places[i] = PlaceEvent{}
	}
	a.nextGrant, a.nextPlace = 0, 0
	a.round, a.simTime = 0, 0
}

// Grants returns the retained grant events oldest-first, filtered to one job
// when job >= 0. Nil-safe.
func (a *AuditLog) Grants(job int) []GrantEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	lo := a.nextGrant - int64(len(a.grants)) + 1
	if lo < 1 {
		lo = 1
	}
	var out []GrantEvent
	for seq := lo; seq <= a.nextGrant; seq++ {
		ev := a.grants[int((seq-1)%int64(len(a.grants)))]
		if ev.Seq == seq && (job < 0 || ev.Job == job) {
			out = append(out, ev)
		}
	}
	return out
}

// Places returns the retained placement events oldest-first, filtered to one
// job when job >= 0. Nil-safe.
func (a *AuditLog) Places(job int) []PlaceEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	lo := a.nextPlace - int64(len(a.places)) + 1
	if lo < 1 {
		lo = 1
	}
	var out []PlaceEvent
	for seq := lo; seq <= a.nextPlace; seq++ {
		ev := a.places[int((seq-1)%int64(len(a.places)))]
		if ev.Seq == seq && (job < 0 || ev.Job == job) {
			out = append(out, ev)
		}
	}
	return out
}

package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the daemon's always-on black box: a fixed ring of
// seq-stamped structured events fed from every control-plane hot spot (engine
// rounds, WAL appends and fsyncs, HA lease transitions, cells commits, SSE
// drops). Unlike the Tracer it is meant to run in production builds at all
// times, so the record path is built like AtomicHistogram's: a single atomic
// sequence claim plus one per-slot mutex held for a struct copy — no global
// lock, no allocation (CI-guarded by alloc_guard_test.go). When the process
// fail-stops, the ring is what the debug bundle dumps: the last few thousand
// things the scheduler believed and did.
//
// A nil *FlightRecorder is a valid, permanently-disabled recorder, and a
// non-nil one can be gated with SetEnabled; both disabled paths are a branch
// and a return.
type FlightRecorder struct {
	on    atomic.Bool
	next  atomic.Uint64 // last sequence issued (1-based)
	slots []flightSlot
	mask  uint64 // len(slots) - 1; capacity is a power of two
}

// flightSlot guards one ring entry. The per-slot mutex (rather than a global
// one) keeps concurrent writers on different slots contention-free; it is
// held only for a struct copy, a few nanoseconds.
type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// DefaultFlightBuffer is the ring capacity NewFlightRecorder uses for
// size <= 0: enough for several minutes of steady-state control-plane events.
const DefaultFlightBuffer = 4096

// NewFlightRecorder returns an enabled recorder retaining the last `size`
// events (rounded up to a power of two).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightBuffer
	}
	cap := 1
	for cap < size {
		cap <<= 1
	}
	f := &FlightRecorder{slots: make([]flightSlot, cap), mask: uint64(cap - 1)}
	f.on.Store(true)
	return f
}

// SetEnabled toggles recording. Nil-safe.
func (f *FlightRecorder) SetEnabled(v bool) {
	if f != nil {
		f.on.Store(v)
	}
}

// Enabled reports whether events are being recorded. Nil-safe.
func (f *FlightRecorder) Enabled() bool { return f != nil && f.on.Load() }

// Severity levels a flight event or log line.
type Severity uint8

const (
	SevDebug Severity = iota
	SevInfo
	SevWarn
	SevError
)

// String implements fmt.Stringer ("debug", "info", "warn", "error").
func (s Severity) String() string {
	switch s {
	case SevDebug:
		return "debug"
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return "sev(" + strconv.Itoa(int(s)) + ")"
	}
}

// MarshalJSON renders the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ParseSeverity parses the string form ("debug", "info", "warn", "error"),
// for -log-level flags.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "debug":
		return SevDebug, nil
	case "info":
		return SevInfo, nil
	case "warn":
		return SevWarn, nil
	case "error":
		return SevError, nil
	}
	return SevInfo, fmt.Errorf("obs: bad severity %q (want debug, info, warn or error)", s)
}

// UnmarshalJSON accepts the string form (for bundle round-trips).
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"debug"`:
		*s = SevDebug
	case `"info"`:
		*s = SevInfo
	case `"warn"`:
		*s = SevWarn
	case `"error"`:
		*s = SevError
	default:
		return fmt.Errorf("obs: bad severity %s", b)
	}
	return nil
}

// KV value kinds.
const (
	kvString uint8 = iota
	kvInt
	kvUint
	kvFloat
	kvBool
)

// KV is one key/value attribute of a flight event. It is a value type (no
// interface boxing) so passing attributes to Record never allocates.
type KV struct {
	K    string
	s    string
	i    int64
	f    float64
	kind uint8
}

// KS builds a string attribute.
func KS(k, v string) KV { return KV{K: k, s: v, kind: kvString} }

// KI builds an int attribute.
func KI(k string, v int64) KV { return KV{K: k, i: v, kind: kvInt} }

// KU builds a uint attribute.
func KU(k string, v uint64) KV { return KV{K: k, i: int64(v), kind: kvUint} }

// KF builds a float attribute.
func KF(k string, v float64) KV { return KV{K: k, f: v, kind: kvFloat} }

// KB builds a bool attribute.
func KB(k string, v bool) KV {
	var i int64
	if v {
		i = 1
	}
	return KV{K: k, i: i, kind: kvBool}
}

// Value returns the attribute's value boxed as any (read side only; the
// record path never calls it).
func (kv KV) Value() any {
	switch kv.kind {
	case kvInt:
		return kv.i
	case kvUint:
		return uint64(kv.i)
	case kvFloat:
		return kv.f
	case kvBool:
		return kv.i != 0
	default:
		return kv.s
	}
}

// appendText renders "k=v" without allocation beyond the destination growth.
func (kv KV) appendText(dst []byte) []byte {
	dst = append(dst, kv.K...)
	dst = append(dst, '=')
	switch kv.kind {
	case kvInt:
		dst = strconv.AppendInt(dst, kv.i, 10)
	case kvUint:
		dst = strconv.AppendUint(dst, uint64(kv.i), 10)
	case kvFloat:
		dst = strconv.AppendFloat(dst, kv.f, 'g', -1, 64)
	case kvBool:
		dst = strconv.AppendBool(dst, kv.i != 0)
	default:
		dst = append(dst, kv.s...)
	}
	return dst
}

// maxFlightKV is how many attributes one event retains; extras are dropped
// (the fixed array keeps the record path allocation-free).
const maxFlightKV = 4

// FlightEvent is one recorded control-plane event.
type FlightEvent struct {
	Seq       uint64 // recorder-assigned, strictly increasing
	Wall      int64  // unix nanoseconds
	Component string // "engine", "wal", "ha", "cells", "sse", "log", ...
	Sev       Severity
	Msg       string
	KVs       [maxFlightKV]KV
	NKV       uint8
}

// Attrs returns the event's attributes as a map (read side only).
func (e FlightEvent) Attrs() map[string]any {
	if e.NKV == 0 {
		return nil
	}
	m := make(map[string]any, e.NKV)
	for i := 0; i < int(e.NKV); i++ {
		m[e.KVs[i].K] = e.KVs[i].Value()
	}
	return m
}

// String renders "seq=12 2006-01-02T15:04:05.000Z error ha: lease lost k=v".
func (e FlightEvent) String() string {
	var b strings.Builder
	b.WriteString(time.Unix(0, e.Wall).UTC().Format("2006-01-02T15:04:05.000Z"))
	fmt.Fprintf(&b, " %-5s %s: %s", e.Sev, e.Component, e.Msg)
	for i := 0; i < int(e.NKV); i++ {
		b.WriteByte(' ')
		b.Write(e.KVs[i].appendText(nil))
	}
	return b.String()
}

// flightEventJSON is the wire form of one event; KVs flatten into a map.
type flightEventJSON struct {
	Seq       uint64         `json:"seq"`
	Wall      time.Time      `json:"wall"`
	Component string         `json:"component"`
	Sev       Severity       `json:"sev"`
	Msg       string         `json:"msg"`
	KV        map[string]any `json:"kv,omitempty"`
}

// MarshalJSON implements json.Marshaler (dump/bundle path only).
func (e FlightEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(flightEventJSON{
		Seq: e.Seq, Wall: time.Unix(0, e.Wall).UTC(),
		Component: e.Component, Sev: e.Sev, Msg: e.Msg, KV: e.Attrs(),
	})
}

// UnmarshalJSON implements json.Unmarshaler so bundles round-trip through
// optimus-trace. Attribute kinds collapse to string/float/bool (JSON's).
func (e *FlightEvent) UnmarshalJSON(b []byte) error {
	var w flightEventJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = FlightEvent{Seq: w.Seq, Wall: w.Wall.UnixNano(),
		Component: w.Component, Sev: w.Sev, Msg: w.Msg}
	for k, v := range w.KV {
		if int(e.NKV) >= maxFlightKV {
			break
		}
		switch t := v.(type) {
		case string:
			e.KVs[e.NKV] = KS(k, t)
		case float64:
			e.KVs[e.NKV] = KF(k, t)
		case bool:
			e.KVs[e.NKV] = KB(k, t)
		default:
			e.KVs[e.NKV] = KS(k, fmt.Sprint(t))
		}
		e.NKV++
	}
	return nil
}

// Record stamps and stores one event. The path is one atomic add, one
// uncontended mutex, one struct copy: no allocation, no global serialization.
// At most maxFlightKV attributes are retained. Nil-safe; a disabled recorder
// returns after a single atomic load.
func (f *FlightRecorder) Record(component string, sev Severity, msg string, kvs ...KV) {
	if f == nil || !f.on.Load() {
		return
	}
	seq := f.next.Add(1)
	wall := time.Now().UnixNano()
	n := len(kvs)
	if n > maxFlightKV {
		n = maxFlightKV
	}
	slot := &f.slots[(seq-1)&f.mask]
	slot.mu.Lock()
	slot.ev.Seq = seq
	slot.ev.Wall = wall
	slot.ev.Component = component
	slot.ev.Sev = sev
	slot.ev.Msg = msg
	for i := 0; i < n; i++ {
		slot.ev.KVs[i] = kvs[i]
	}
	for i := n; i < maxFlightKV; i++ {
		slot.ev.KVs[i] = KV{}
	}
	slot.ev.NKV = uint8(n)
	slot.mu.Unlock()
}

// Len returns the number of events ever recorded. Nil-safe.
func (f *FlightRecorder) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// Snapshot copies the resident events out of the ring, oldest first. An event
// being overwritten concurrently is skipped (its slot holds a different
// sequence by the time it is read). Nil-safe.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	hi := f.next.Load()
	lo := uint64(1)
	if n := uint64(len(f.slots)); hi > n {
		lo = hi - n + 1
	}
	if hi == 0 {
		return nil
	}
	out := make([]FlightEvent, 0, hi-lo+1)
	for seq := lo; seq <= hi; seq++ {
		slot := &f.slots[(seq-1)&f.mask]
		slot.mu.Lock()
		ev := slot.ev
		slot.mu.Unlock()
		if ev.Seq == seq {
			out = append(out, ev)
		}
	}
	return out
}

// Tail returns the newest n resident events, oldest first.
func (f *FlightRecorder) Tail(n int) []FlightEvent {
	all := f.Snapshot()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

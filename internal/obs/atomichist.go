package obs

import (
	"math"
	"sync/atomic"
)

// AtomicHistogram is the concurrency-safe sibling of Histogram: the same
// log-spaced buckets (1µs·2^i, i < HistBuckets, plus +Inf), but every
// Observe is a handful of atomic operations, so many goroutines can record
// into one histogram with no lock — the optimusd API middleware and the
// load harness's worker pool both sit on this type. Readers take a
// Snapshot, which is internally consistent per bucket (sum/max/count may
// trail each other by in-flight observations; for latency metrics that
// skew is harmless).
type AtomicHistogram struct {
	counts [HistBuckets + 1]atomic.Uint64
	sum    atomic.Uint64 // Float64bits, accumulated by CAS
	max    atomic.Uint64 // Float64bits, CAS-max
}

// Observe records one duration in seconds. Negative and NaN observations
// are dropped, mirroring Histogram.Observe.
func (h *AtomicHistogram) Observe(seconds float64) {
	if math.IsNaN(seconds) || seconds < 0 {
		return
	}
	i := 0
	for i < HistBuckets && seconds > BucketBound(i) {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+seconds)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if seconds <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(seconds)) {
			break
		}
	}
}

// Count returns the number of observations recorded so far.
func (h *AtomicHistogram) Count() uint64 {
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
	}
	return c
}

// Snapshot copies the current state into a plain Histogram, whose full
// read-side API (Quantile, Summary, CumulativeCount, Prometheus export)
// then applies. The bucket counts are read once each; count is derived
// from them so bucket/count stay mutually consistent.
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	for i := range h.counts {
		n := h.counts[i].Load()
		out.counts[i] = n
		out.count += n
	}
	out.sum = math.Float64frombits(h.sum.Load())
	out.max = math.Float64frombits(h.max.Load())
	return out
}

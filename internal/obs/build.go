package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: module version, Go toolchain and
// the VCS state stamped by `go build`. It is the `build` block of
// GET /v1/cluster, the optimus_build_info metric's labels, and part of every
// debug bundle — the first question of any incident is "what exactly is
// running?".
type BuildInfo struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"` // module version, "(devel)" for local builds
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`  // vcs.revision
	BuildTime string `json:"buildTime,omitempty"` // vcs.time
	Modified  bool   `json:"modified,omitempty"`  // vcs.modified (dirty tree)
}

var buildOnce = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.BuildTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
})

// Build returns the binary's build info, computed once.
func Build() BuildInfo { return buildOnce() }

// String renders one -version line, e.g.
// "optimus (devel) go1.22.1 rev 1a2b3c4d (modified)".
func (b BuildInfo) String() string {
	s := b.Module
	if s == "" {
		s = "optimus"
	}
	if b.Version != "" {
		s += " " + b.Version
	}
	s += " " + b.GoVersion
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
	}
	if b.Modified {
		s += " (modified)"
	}
	return s
}

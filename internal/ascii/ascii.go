// Package ascii renders small line charts as Unicode text, so the
// reproduction CLI can draw the paper's figures directly in a terminal —
// speed-vs-configuration curves, loss trajectories, sensitivity sweeps —
// without any plotting dependency.
package ascii

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64 // optional; indices are used when empty
	Y    []float64
}

// markers distinguish overlapping series.
var markers = []rune{'●', '▲', '■', '◆', '○', '△', '□', '◇'}

// Chart renders the series into a width×height character plot with a left
// axis, bottom axis and a legend line. Invalid input yields an explanatory
// string rather than a panic, since charts decorate CLI output.
func Chart(series []Series, width, height int) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}

	// Bounds across all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			x := float64(i)
			if len(s.X) == len(s.Y) {
				x = s.X[i]
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		return "(no finite data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			x := float64(i)
			if len(s.X) == len(s.Y) {
				x = s.X[i]
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		} else if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		b.WriteString(label)
		b.WriteString(" ┤")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", pad))
	b.WriteString(" └")
	b.WriteString(strings.Repeat("─", width))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", pad+2))
	xAxis := fmt.Sprintf("%-*s%s", width-len(fmt.Sprintf("%.3g", maxX)),
		fmt.Sprintf("%.3g", minX), fmt.Sprintf("%.3g", maxX))
	b.WriteString(xAxis)
	b.WriteByte('\n')

	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	b.WriteString(strings.Repeat(" ", pad+2))
	b.WriteString(strings.Join(legend, "   "))
	b.WriteByte('\n')
	return b.String()
}

package ascii

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	out := Chart([]Series{
		{Name: "up", Y: []float64{1, 2, 3, 4, 5}},
		{Name: "down", Y: []float64{5, 4, 3, 2, 1}},
	}, 40, 8)
	if !strings.Contains(out, "●") || !strings.Contains(out, "▲") {
		t.Error("markers missing")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8+3 { // grid + axis + x labels + legend
		t.Errorf("chart has %d lines, want 11", len(lines))
	}
}

func TestChartWithExplicitX(t *testing.T) {
	out := Chart([]Series{{
		Name: "speed", X: []float64{1, 2, 4, 8, 16}, Y: []float64{0.1, 0.2, 0.3, 0.35, 0.37},
	}}, 30, 6)
	if !strings.Contains(out, "16") {
		t.Error("x-axis max label missing")
	}
	if !strings.Contains(out, "0.37") {
		t.Error("y-axis max label missing")
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	if out := Chart(nil, 40, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	nanOnly := Chart([]Series{{Name: "x", Y: []float64{math.NaN(), math.Inf(1)}}}, 40, 8)
	if !strings.Contains(nanOnly, "no finite data") {
		t.Errorf("NaN chart = %q", nanOnly)
	}
	// Constant series must not divide by zero.
	flat := Chart([]Series{{Name: "flat", Y: []float64{2, 2, 2}}}, 40, 8)
	if !strings.Contains(flat, "●") {
		t.Error("flat series not plotted")
	}
	// Tiny dimensions clamp rather than panic.
	small := Chart([]Series{{Name: "s", Y: []float64{1, 2}}}, 1, 1)
	if small == "" {
		t.Error("tiny chart empty")
	}
}

func TestChartMixedValidity(t *testing.T) {
	out := Chart([]Series{{
		Name: "holes", Y: []float64{1, math.NaN(), 3, math.Inf(-1), 5},
	}}, 30, 5)
	if !strings.Contains(out, "●") {
		t.Error("valid points dropped")
	}
}

package baselines

import (
	"math/rand"
	"testing"
	"testing/quick"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

var (
	wres = cluster.Resources{cluster.CPU: 5, cluster.Memory: 10}
	pres = cluster.Resources{cluster.CPU: 5, cluster.Memory: 10}
)

func capFor(tasks int) cluster.Resources {
	return cluster.Resources{
		cluster.CPU:    float64(tasks) * 5,
		cluster.Memory: float64(tasks) * 10,
	}
}

func mkJob(id int, name string, mode speedfit.Mode, work float64) *core.JobInfo {
	m := workload.ZooByName(name)
	return &core.JobInfo{
		ID:            id,
		RemainingWork: work,
		Speed:         func(p, w int) float64 { return m.TrueSpeed(mode, p, w) },
		WorkerRes:     wres,
		PSRes:         pres,
	}
}

func TestDRFEqualizesIdenticalJobs(t *testing.T) {
	jobs := []*core.JobInfo{
		mkJob(0, "cnn-rand", speedfit.Async, 1e6),
		mkJob(1, "cnn-rand", speedfit.Async, 10), // size-oblivious!
	}
	alloc := DRFAllocate(jobs, capFor(40), 0)
	if alloc[0].Workers != alloc[1].Workers {
		t.Errorf("DRF should ignore job size: got %d vs %d workers",
			alloc[0].Workers, alloc[1].Workers)
	}
	if alloc[0].PS != alloc[0].Workers {
		t.Errorf("DRF must keep the 1:1 ratio, got %+v", alloc[0])
	}
}

func TestDRFWorkConserving(t *testing.T) {
	jobs := []*core.JobInfo{mkJob(0, "rnn-lstm", speedfit.Async, 1e6)}
	capacity := capFor(20)
	alloc := DRFAllocate(jobs, capacity, 0)
	// Work-conserving: fills the cluster (10 pairs of 2 tasks).
	if got := alloc[0].Tasks(); got != 20 {
		t.Errorf("DRF allocated %d tasks, want 20 (work-conserving)", got)
	}
}

func TestDRFMaxPairs(t *testing.T) {
	jobs := []*core.JobInfo{mkJob(0, "rnn-lstm", speedfit.Async, 1e6)}
	alloc := DRFAllocate(jobs, capFor(100), 3)
	if alloc[0].Workers != 3 {
		t.Errorf("workers = %d, want cap 3", alloc[0].Workers)
	}
}

func TestDRFRespectsCapacity(t *testing.T) {
	jobs := []*core.JobInfo{
		mkJob(0, "cnn-rand", speedfit.Async, 100),
		mkJob(1, "dssm", speedfit.Sync, 100),
		mkJob(2, "kaggle", speedfit.Async, 100),
	}
	capacity := capFor(7) // odd: 3 pairs + 1 task spare
	alloc := DRFAllocate(jobs, capacity, 0)
	var used cluster.Resources
	for id, a := range alloc {
		_ = id
		used = used.Add(wres.Scale(float64(a.Workers))).Add(pres.Scale(float64(a.PS)))
	}
	if !used.Fits(capacity) {
		t.Errorf("DRF overcommitted: %v > %v", used, capacity)
	}
}

func TestTetrisShortestFirst(t *testing.T) {
	long := mkJob(0, "rnn-lstm", speedfit.Async, 1e8)
	short := mkJob(1, "rnn-lstm", speedfit.Async, 1e3)
	// Capacity for 4 pairs with preferred 4: the short job must get its full
	// preferred allocation before the long one gets any.
	alloc := TetrisAllocate([]*core.JobInfo{long, short}, capFor(8), 4)
	if alloc[1].Workers != 4 {
		t.Errorf("short job got %d pairs, want 4", alloc[1].Workers)
	}
	if alloc[0].Workers != 0 {
		t.Errorf("long job got %d pairs, want 0", alloc[0].Workers)
	}
}

func TestTetrisWorkConservingLeftovers(t *testing.T) {
	jobs := []*core.JobInfo{
		mkJob(0, "cnn-rand", speedfit.Async, 1e4),
		mkJob(1, "cnn-rand", speedfit.Async, 2e4),
	}
	alloc := TetrisAllocate(jobs, capFor(40), 4)
	total := alloc[0].Tasks() + alloc[1].Tasks()
	if total != 40 {
		t.Errorf("Tetris used %d tasks of 40 available; should consume leftovers", total)
	}
}

func TestTetrisDefaultPreferred(t *testing.T) {
	jobs := []*core.JobInfo{mkJob(0, "cnn-rand", speedfit.Async, 1e4)}
	alloc := TetrisAllocate(jobs, capFor(2), 0) // 0 → default pairs
	if alloc[0].Workers != 1 {
		t.Errorf("got %+v, want a single pair under tiny capacity", alloc[0])
	}
}

func TestSpreadPlaceBalances(t *testing.T) {
	c := cluster.Uniform(4, capFor(4))
	reqs := []core.PlacementRequest{{
		JobID: 0, Alloc: core.Allocation{PS: 4, Workers: 4},
		WorkerRes: wres, PSRes: pres,
	}}
	pls, unplaced := SpreadPlace(reqs, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	pl := pls[0]
	if pl.Servers() != 4 {
		t.Errorf("spread used %d servers, want 4 (load balancing)", pl.Servers())
	}
	for i := range pl.NodeIDs {
		if pl.PSOnNode[i]+pl.WorkersOnNode[i] != 2 {
			t.Errorf("node %s has %d tasks, want 2", pl.NodeIDs[i],
				pl.PSOnNode[i]+pl.WorkersOnNode[i])
		}
	}
}

func TestPackPlaceMinimizesServers(t *testing.T) {
	c := cluster.Uniform(4, capFor(8))
	reqs := []core.PlacementRequest{{
		JobID: 0, Alloc: core.Allocation{PS: 2, Workers: 2},
		WorkerRes: wres, PSRes: pres,
	}}
	pls, unplaced := PackPlace(reqs, c)
	if len(unplaced) != 0 {
		t.Fatalf("unplaced: %v", unplaced)
	}
	if got := pls[0].Servers(); got != 1 {
		t.Errorf("pack used %d servers, want 1 (fragmentation-minimizing)", got)
	}
}

func TestPlacePartialWhenFragmented(t *testing.T) {
	// 3 slots for a 2ps+2w job: Kubernetes-style partial placement keeps
	// the fitting pods (at least 1 PS and 1 worker) running.
	c := cluster.Uniform(1, capFor(3))
	reqs := []core.PlacementRequest{{
		JobID: 0, Alloc: core.Allocation{PS: 2, Workers: 2},
		WorkerRes: wres, PSRes: pres,
	}}
	pls, unplaced := SpreadPlace(reqs, c)
	if len(unplaced) != 0 {
		t.Fatalf("expected partial placement, got unplaced=%v", unplaced)
	}
	ps, w := pls[0].Counts()
	if ps < 1 || w < 1 || ps+w != 3 {
		t.Errorf("partial placement = %dps/%dw, want 3 tasks with ≥1 of each", ps, w)
	}
}

func TestPlaceRollbackOnFailure(t *testing.T) {
	// Room for the PS but not for any worker: the job cannot run at all, so
	// everything must be rolled back.
	c := cluster.Uniform(1, capFor(1))
	reqs := []core.PlacementRequest{{
		JobID: 0, Alloc: core.Allocation{PS: 1, Workers: 1},
		WorkerRes: cluster.Resources{cluster.CPU: 50}, PSRes: pres,
	}}
	pls, unplaced := SpreadPlace(reqs, c)
	if len(pls) != 0 || len(unplaced) != 1 {
		t.Fatalf("expected full rollback, got placements=%v unplaced=%v", pls, unplaced)
	}
	if !c.Used().IsZero() {
		t.Errorf("rollback left %v allocated", c.Used())
	}
}

func TestPlaceZeroAlloc(t *testing.T) {
	c := cluster.Uniform(1, capFor(4))
	reqs := []core.PlacementRequest{{JobID: 7, WorkerRes: wres, PSRes: pres}}
	_, unplaced := PackPlace(reqs, c)
	if len(unplaced) != 1 || unplaced[0] != 7 {
		t.Errorf("unplaced = %v, want [7]", unplaced)
	}
}

// Property: both baseline placements never overcommit and place exactly the
// requested counts or roll back entirely.
func TestBaselinePlacementInvariants(t *testing.T) {
	for name, place := range map[string]func([]core.PlacementRequest, *cluster.Cluster) (map[int]core.Placement, []int){
		"spread": SpreadPlace,
		"pack":   PackPlace,
	} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			c := cluster.Uniform(1+r.Intn(6), capFor(1+r.Intn(8)))
			var reqs []core.PlacementRequest
			for i := 0; i < 1+r.Intn(5); i++ {
				reqs = append(reqs, core.PlacementRequest{
					JobID:     i,
					Alloc:     core.Allocation{PS: 1 + r.Intn(3), Workers: 1 + r.Intn(5)},
					WorkerRes: wres, PSRes: pres,
				})
			}
			pls, unplaced := place(reqs, c)
			for _, n := range c.Nodes() {
				if !n.Used().Fits(n.Capacity) {
					return false
				}
			}
			if len(pls)+len(unplaced) != len(reqs) {
				return false
			}
			for _, req := range reqs {
				if pl, ok := pls[req.JobID]; ok {
					// Partial placement is allowed, but never more than
					// requested and always at least one of each kind.
					ps, w := pl.Counts()
					if ps > req.Alloc.PS || w > req.Alloc.Workers || ps < 1 || w < 1 {
						return false
					}
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(31))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Package baselines implements the two comparison schedulers of §6.1:
//
//   - a DRF fairness scheduler (as in Hadoop/Yarn/Mesos): work-conserving
//     progressive filling that repeatedly grants a 1 PS + 1 worker pair to
//     the job with the lowest dominant share, and places tasks in a
//     load-balancing way (the Kubernetes default);
//   - Tetris: prefers jobs with low remaining duration or small resource
//     consumption, and packs tasks onto servers to minimize fragmentation.
//     As in the paper, Tetris borrows Optimus's speed/convergence estimates
//     for its remaining-time information.
//
// Both use a fixed PS:worker ratio of 1:1 (§6.1).
package baselines

import (
	"math"
	"sort"

	"optimus/internal/cluster"
	"optimus/internal/core"
)

// DRFAllocate grants (1 PS, 1 worker) pairs by progressive filling: at each
// round the job with the smallest dominant share receives one more pair,
// until no pair fits. It is work-conserving and job-size-oblivious — the
// two properties §2.3 criticizes.
//
// MaxPairsPerJob bounds one job's allocation (0 = unbounded, the default
// fairness-scheduler behaviour).
func DRFAllocate(jobs []*core.JobInfo, capacity cluster.Resources, maxPairsPerJob int) map[int]core.Allocation {
	out := make(map[int]core.Allocation, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	remaining := capacity
	type state struct {
		job   *core.JobInfo
		share float64
		used  cluster.Resources
	}
	states := make([]*state, 0, len(jobs))
	ordered := make([]*core.JobInfo, len(jobs))
	copy(ordered, jobs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, j := range ordered {
		out[j.ID] = core.Allocation{}
		states = append(states, &state{job: j})
	}

	for {
		// Pick the feasible job with the minimum dominant share.
		var best *state
		for _, s := range states {
			if maxPairsPerJob > 0 && out[s.job.ID].Workers >= maxPairsPerJob {
				continue
			}
			if atWorkerCap(s.job, out[s.job.ID]) {
				continue
			}
			pair := s.job.WorkerRes.Add(s.job.PSRes)
			if !pair.Fits(remaining) {
				continue
			}
			if best == nil || s.share < best.share ||
				(s.share == best.share && s.job.ID < best.job.ID) {
				best = s
			}
		}
		if best == nil {
			return out
		}
		pair := best.job.WorkerRes.Add(best.job.PSRes)
		remaining = remaining.Sub(pair)
		best.used = best.used.Add(pair)
		best.share, _ = best.used.DominantShare(capacity)
		a := out[best.job.ID]
		a.PS++
		a.Workers++
		out[best.job.ID] = a
	}
}

// TetrisAllocate grants (1 PS, 1 worker) pairs in shortest-remaining-time
// order: jobs are ranked by their estimated completion time at the 1:1
// ratio, each receives up to preferredPairs pairs, and leftover capacity is
// then distributed in the same order. The remaining-time estimate comes from
// the Optimus models (Q_j and f), exactly as §6.1 arranges.
func TetrisAllocate(jobs []*core.JobInfo, capacity cluster.Resources, preferredPairs int) map[int]core.Allocation {
	out := make(map[int]core.Allocation, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if preferredPairs <= 0 {
		preferredPairs = 4
	}
	remaining := capacity

	ordered := make([]*core.JobInfo, len(jobs))
	copy(ordered, jobs)
	// Rank by remaining time at the preferred configuration; small resource
	// demand breaks ties (Tetris's "low duration or small consumption").
	rt := func(j *core.JobInfo) float64 {
		f := j.Speed(preferredPairs, preferredPairs)
		if f <= 0 {
			return math.Inf(1)
		}
		return j.RemainingWork / f
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		ri, rj := rt(ordered[i]), rt(ordered[j])
		if ri != rj {
			return ri < rj
		}
		di, _ := ordered[i].WorkerRes.Add(ordered[i].PSRes).DominantShare(capacity)
		dj, _ := ordered[j].WorkerRes.Add(ordered[j].PSRes).DominantShare(capacity)
		if di != dj {
			return di < dj
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, j := range ordered {
		out[j.ID] = core.Allocation{}
	}

	grant := func(j *core.JobInfo, pairs int) {
		for g := 0; g < pairs; g++ {
			if atWorkerCap(j, out[j.ID]) {
				return
			}
			pair := j.WorkerRes.Add(j.PSRes)
			if !pair.Fits(remaining) {
				return
			}
			remaining = remaining.Sub(pair)
			a := out[j.ID]
			a.PS++
			a.Workers++
			out[j.ID] = a
		}
	}

	// Pass 1: preferred allocation, shortest first.
	for _, j := range ordered {
		grant(j, preferredPairs)
	}
	// Pass 2: distribute leftovers round-robin in the same order, so the
	// scheduler stays work-conserving like the original Tetris.
	for progress := true; progress; {
		progress = false
		for _, j := range ordered {
			before := out[j.ID].Workers
			grant(j, 1)
			if out[j.ID].Workers > before {
				progress = true
			}
		}
	}
	return out
}

func atWorkerCap(j *core.JobInfo, a core.Allocation) bool {
	if j.MaxWorkers > 0 && a.Workers >= j.MaxWorkers {
		return true
	}
	if j.MaxPS > 0 && a.PS >= j.MaxPS {
		return true
	}
	return false
}

// SpreadPlace is the load-balancing placement of the fairness scheduler
// (Kubernetes default): each task individually lands on the node with the
// most available CPU that fits it. Jobs are processed in ID order, PS tasks
// before workers.
func SpreadPlace(reqs []core.PlacementRequest, c *cluster.Cluster) (map[int]core.Placement, []int) {
	return placeTaskByTask(reqs, c, pickSpread)
}

// PackPlace is Tetris-style placement: each task lands on the node that,
// after hosting it, has the least leftover dominant share — best-fit packing
// that minimizes fragmentation.
func PackPlace(reqs []core.PlacementRequest, c *cluster.Cluster) (map[int]core.Placement, []int) {
	return placeTaskByTask(reqs, c, pickPack)
}

type picker func(c *cluster.Cluster, req cluster.Resources) *cluster.Node

func pickSpread(c *cluster.Cluster, req cluster.Resources) *cluster.Node {
	var best *cluster.Node
	var bestAvail float64 = -1
	for _, n := range c.Nodes() {
		if !n.CanFit(req) {
			continue
		}
		if a := n.Available()[cluster.CPU]; a > bestAvail ||
			(a == bestAvail && best != nil && n.ID < best.ID) {
			best, bestAvail = n, a
		}
	}
	return best
}

func pickPack(c *cluster.Cluster, req cluster.Resources) *cluster.Node {
	capacity := c.Capacity()
	var best *cluster.Node
	bestLeft := math.Inf(1)
	for _, n := range c.Nodes() {
		if !n.CanFit(req) {
			continue
		}
		left, _ := n.Available().Sub(req).DominantShare(capacity)
		if left < bestLeft || (left == bestLeft && best != nil && n.ID < best.ID) {
			best, bestLeft = n, left
		}
	}
	return best
}

// placeTaskByTask places every task of every request individually with the
// given node picker, rolling back a job entirely if any of its tasks cannot
// be placed (the job is then reported unplaced, like core.Place does).
func placeTaskByTask(reqs []core.PlacementRequest, c *cluster.Cluster, pick picker) (map[int]core.Placement, []int) {
	placements := make(map[int]core.Placement, len(reqs))
	var unplaced []int

	ordered := make([]core.PlacementRequest, len(reqs))
	copy(ordered, reqs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].JobID < ordered[j].JobID })

	for _, req := range ordered {
		if req.Alloc.PS <= 0 || req.Alloc.Workers <= 0 {
			unplaced = append(unplaced, req.JobID)
			continue
		}
		var placed []taskOnNode
		psPlaced, wPlaced := 0, 0
		for t := 0; t < req.Alloc.PS; t++ {
			n := pick(c, req.PSRes)
			if n == nil || n.Allocate(req.PSRes) != nil {
				break
			}
			placed = append(placed, taskOnNode{n, req.PSRes, true})
			psPlaced++
		}
		for t := 0; t < req.Alloc.Workers; t++ {
			n := pick(c, req.WorkerRes)
			if n == nil || n.Allocate(req.WorkerRes) != nil {
				break
			}
			placed = append(placed, taskOnNode{n, req.WorkerRes, false})
			wPlaced++
		}
		// Kubernetes-style behaviour: pods that fit run, the rest pend. The
		// job proceeds as long as it has at least one PS and one worker;
		// otherwise everything is rolled back and the job pends entirely.
		if psPlaced == 0 || wPlaced == 0 {
			for _, pt := range placed {
				if err := pt.node.Release(pt.res); err != nil {
					panic("baselines: rollback failed: " + err.Error())
				}
			}
			unplaced = append(unplaced, req.JobID)
			continue
		}
		placements[req.JobID] = buildPlacement(placed)
	}
	return placements, unplaced
}

type taskOnNode struct {
	node *cluster.Node
	res  cluster.Resources
	isPS bool
}

func buildPlacement(placed []taskOnNode) core.Placement {
	idx := make(map[string]int)
	var pl core.Placement
	for _, pt := range placed {
		i, ok := idx[pt.node.ID]
		if !ok {
			i = len(pl.NodeIDs)
			idx[pt.node.ID] = i
			pl.NodeIDs = append(pl.NodeIDs, pt.node.ID)
			pl.PSOnNode = append(pl.PSOnNode, 0)
			pl.WorkersOnNode = append(pl.WorkersOnNode, 0)
		}
		if pt.isPS {
			pl.PSOnNode[i]++
		} else {
			pl.WorkersOnNode[i]++
		}
	}
	return pl
}

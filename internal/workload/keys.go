package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// KeyDist picks which existing key (job ID index) an operation targets — the
// YCSB request-distribution model, reused by the optimusd load harness to
// decide which job a status poll or cancel hits. Draw returns an index in
// [0, n); n is the number of keys inserted so far, so the distribution
// adapts as the keyspace grows (YCSB's "operate on a growing table" mode).
// Implementations keep memoized state and are not safe for concurrent use;
// give each worker goroutine its own instance (they are cheap).
type KeyDist interface {
	// Draw returns a key index in [0, n). n must be >= 1.
	Draw(r *rand.Rand, n int) int
	Name() string
}

// NewKeyDist builds a distribution by name: "uniform", "zipfian" (theta
// defaults to 0.99, YCSB's constant) or "latest" (zipfian skew toward the
// most recently inserted keys).
func NewKeyDist(name string, theta float64) (KeyDist, error) {
	if theta == 0 {
		theta = zipfTheta
	}
	switch name {
	case "uniform":
		return uniformDist{}, nil
	case "zipfian":
		return &zipfianDist{theta: theta}, nil
	case "latest":
		return &latestDist{zipfianDist{theta: theta}}, nil
	default:
		return nil, fmt.Errorf("workload: unknown key distribution %q", name)
	}
}

// zipfTheta is YCSB's default skew constant.
const zipfTheta = 0.99

type uniformDist struct{}

func (uniformDist) Draw(r *rand.Rand, n int) int { return r.Intn(n) }
func (uniformDist) Name() string                 { return "uniform" }

// zipfianDist is the Gray et al. quick zipfian generator as used by YCSB:
// rank 0 is the hottest key. Unlike math/rand's Zipf (which requires s > 1)
// it supports theta in (0, 1), and it extends to a growing keyspace by
// recomputing zeta incrementally as n grows.
type zipfianDist struct {
	theta float64

	// memoized zeta(n, theta) state, extended incrementally.
	zetaN    int
	zeta     float64
	zeta2    float64 // zeta(2, theta), fixed
	computed bool
}

func (z *zipfianDist) Name() string { return "zipfian" }

func (z *zipfianDist) Draw(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	if !z.computed {
		z.zeta2 = 1 + math.Pow(0.5, z.theta)
		z.computed = true
	}
	// Extend zeta(n) from where the last draw left it: amortized O(1) when
	// the keyspace grows monotonically (the harness's case).
	if n < z.zetaN {
		z.zetaN, z.zeta = 0, 0
	}
	for i := z.zetaN + 1; i <= n; i++ {
		z.zeta += 1 / math.Pow(float64(i), z.theta)
	}
	z.zetaN = n

	alpha := 1 / (1 - z.theta)
	eta := (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zeta)
	u := r.Float64()
	uz := u * z.zeta
	if uz < 1 {
		return 0
	}
	if uz < z.zeta2 {
		return 1
	}
	k := int(float64(n) * math.Pow(eta*u-eta+1, alpha))
	if k >= n {
		k = n - 1
	}
	return k
}

// latestDist maps zipfian rank 0 to the newest key: YCSB's "latest"
// distribution, modeling pollers that hammer the jobs they just submitted.
type latestDist struct {
	z zipfianDist
}

func (l *latestDist) Name() string { return "latest" }

func (l *latestDist) Draw(r *rand.Rand, n int) int {
	return n - 1 - l.z.Draw(r, n)
}

package workload

import (
	"math"

	"optimus/internal/speedfit"
)

// TaskSpread describes how one job's tasks are distributed over servers:
// PSOnNode[k] and WorkersOnNode[k] for each server k hosting at least one of
// the job's tasks. The slices must have equal length.
type TaskSpread struct {
	PSOnNode      []int
	WorkersOnNode []int
}

// Total returns the total number of PS and workers in the spread.
func (s TaskSpread) Total() (p, w int) {
	for _, v := range s.PSOnNode {
		p += v
	}
	for _, v := range s.WorkersOnNode {
		w += v
	}
	return p, w
}

// EvenSpread builds the Theorem-1 optimal spread: p parameter servers and w
// workers over k servers, each server receiving ⌈/⌋ equal counts.
func EvenSpread(p, w, k int) TaskSpread {
	if k < 1 {
		k = 1
	}
	s := TaskSpread{PSOnNode: make([]int, k), WorkersOnNode: make([]int, k)}
	for i := 0; i < p; i++ {
		s.PSOnNode[i%k]++
	}
	for i := 0; i < w; i++ {
		s.WorkersOnNode[i%k]++
	}
	return s
}

// CrossServerTransferTime implements the Appendix transmission-time model:
// for each server k hosting any of the job's tasks, the PS-side cost is
// (S/p)·(w−w_k)/B and the worker-side cost (S/w)·(p−p_k)/b; a training
// step's transfer completes when the slowest finishes. Both terms are
// evaluated on every used server — that is the relaxation under which the
// paper's Theorem 1 (even placement on the fewest servers) is optimal. A
// single direction is returned; push and pull double it.
func (m *Model) CrossServerTransferTime(spread TaskSpread) float64 {
	p, w := spread.Total()
	if p < 1 || w < 1 {
		return math.Inf(1)
	}
	var worst float64
	for k := range spread.PSOnNode {
		pk, wk := spread.PSOnNode[k], spread.WorkersOnNode[k]
		if pk == 0 && wk == 0 {
			continue // server not used by this job
		}
		if t := (m.ModelBytes / float64(p)) * float64(w-wk) / m.PSBandwidth; t > worst {
			worst = t
		}
		if t := (m.ModelBytes / float64(w)) * float64(p-pk) / m.WkrBandwidth; t > worst {
			worst = t
		}
	}
	return worst
}

// intraNodeTransferFraction models the residual cost of parameter exchange
// between colocated tasks (shared-memory copies are fast but not free).
const intraNodeTransferFraction = 0.05

// PlacedStepTime is TrueStepTime with the ideal transfer term replaced by
// the placement-dependent Appendix model. The compute, update and overhead
// terms of Eqn 2 are unchanged; the data-transfer term becomes
// 2·max(cross-server time, intra-node floor).
func (m *Model) PlacedStepTime(mode speedfit.Mode, spread TaskSpread) float64 {
	p, w := spread.Total()
	if p < 1 || w < 1 {
		return math.Inf(1)
	}
	pf, wf := float64(p), float64(w)
	var mEff float64
	switch mode {
	case speedfit.Sync:
		mEff = float64(m.GlobalBatch) / wf
	default:
		mEff = float64(m.BatchPerWkr)
	}
	compute := mEff*m.FwdPerEx + m.Backward
	ideal := (m.ModelBytes / pf) * wf / m.PSBandwidth
	cross := m.CrossServerTransferTime(spread)
	transfer := cross
	if floor := ideal * intraNodeTransferFraction; transfer < floor {
		transfer = floor
	}
	update := (m.ModelBytes / m.UpdateRate) * wf / pf
	overhead := m.OverheadWkr*wf + m.OverheadPS*pf
	return compute + 2*transfer + update + overhead
}

// SmoothPlacedSpeed is the scheduler-facing analogue of PlacedSpeed: Eqn 2
// with the cross-server share of the transfer term varied *continuously*
// with the number of servers the job would span (k ≈ (p+w)/tasksPerNode).
// A fitted Eqn-3/4 model is smooth in (p, w) by construction; a scheduler
// optimizing greedily against a cliff-ridden exact placement surface stalls
// at server-boundary local optima, so predictions — like the paper's fitted
// models — must be smooth even though the simulator's ground truth is not.
func (m *Model) SmoothPlacedSpeed(mode speedfit.Mode, p, w int, tasksPerNode float64) float64 {
	if p < 1 || w < 1 {
		return 0
	}
	if tasksPerNode < 1 {
		tasksPerNode = 1
	}
	pf, wf := float64(p), float64(w)
	k := (pf + wf) / tasksPerNode
	if k < 1 {
		k = 1
	}
	crossFrac := 1 - 1/k
	if crossFrac < intraNodeTransferFraction {
		crossFrac = intraNodeTransferFraction
	}
	var mEff float64
	switch mode {
	case speedfit.Sync:
		mEff = float64(m.GlobalBatch) / wf
	default:
		mEff = float64(m.BatchPerWkr)
	}
	compute := mEff*m.FwdPerEx + m.Backward
	// Both directions of the Appendix transfer model, smoothed: the PS-side
	// cross traffic (S/p)·w and the worker-side cross traffic (S/w)·p, each
	// carrying the continuous cross-server fraction. The slowest end bounds
	// the step, as in CrossServerTransferTime.
	psSide := (m.ModelBytes / pf) * wf / m.PSBandwidth * crossFrac
	wkSide := (m.ModelBytes / wf) * pf / m.WkrBandwidth * crossFrac
	transfer := psSide
	if wkSide > transfer {
		transfer = wkSide
	}
	update := (m.ModelBytes / m.UpdateRate) * wf / pf
	overhead := m.OverheadWkr*wf + m.OverheadPS*pf
	t := compute + 2*transfer + update + overhead
	if t <= 0 {
		return 0
	}
	if mode == speedfit.Async {
		return wf / t
	}
	return 1 / t
}

// PlacedSpeed converts PlacedStepTime into steps/second for the given mode.
func (m *Model) PlacedSpeed(mode speedfit.Mode, spread TaskSpread) float64 {
	t := m.PlacedStepTime(mode, spread)
	if math.IsInf(t, 1) || t <= 0 {
		return 0
	}
	_, w := spread.Total()
	if mode == speedfit.Async {
		return float64(w) / t
	}
	return 1 / t
}

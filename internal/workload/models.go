// Package workload defines the deep-learning job zoo of Table 1 and the
// ground-truth physics that drive the simulator: per-model step times
// following Eqn 2 of the paper, training-loss curves following the §3.1
// convergence model, per-layer parameter-block distributions (for the §5.3
// load-balancing study), and job arrival processes (§6.1/§6.3).
//
// The scheduler never reads this ground truth directly — it only sees
// sampled (step, loss) and (p, w, speed) observations, exactly as in the
// paper. The constants below are calibrated so that the qualitative shapes
// of the paper's figures (diminishing returns, interior sync-speed optimum,
// minutes-to-weeks training-time spread) are preserved, not the absolute
// numbers, which depended on the authors' hardware.
package workload

import (
	"fmt"
	"math"

	"optimus/internal/cluster"
	"optimus/internal/speedfit"
)

// Model describes one Table-1 training workload and its simulation physics.
type Model struct {
	Name          string
	ParamsMillion float64 // number of parameters, millions
	NetType       string  // "CNN" or "RNN"
	Domain        string  // application domain
	Dataset       string
	DatasetSize   int // number of examples

	// --- physics for Eqn 2 (ground truth; seconds and bytes) ---
	ModelBytes   float64 // S: total parameter bytes (4 bytes/param)
	BatchPerWkr  int     // m: per-worker mini-batch (async)
	GlobalBatch  int     // M: global batch size (sync)
	FwdPerEx     float64 // T_forward: per-example forward time
	Backward     float64 // T_back: backward time per step (m-independent per §3.2)
	UpdateRate   float64 // bytes/s a PS applies updates at (T_update = S/UpdateRate)
	PSBandwidth  float64 // B: per-PS NIC bandwidth, bytes/s
	WkrBandwidth float64 // b: per-worker NIC bandwidth, bytes/s
	OverheadWkr  float64 // δ: per-worker communication overhead, s
	OverheadPS   float64 // δ': per-PS communication overhead, s

	// --- loss-curve truth (normalized, epoch-indexed): l(E)=1/(β0·E+β1)+β2 ---
	LossB0, LossB1, LossB2 float64

	// --- resource profiles (what one task requests) ---
	WorkerRes cluster.Resources
	PSRes     cluster.Resources

	// NumBlocks is the number of parameter blocks (NN layers) the model
	// splits into, used by the §5.3 parameter-assignment study.
	NumBlocks int
}

// Container profiles, following §2.3/§6.1: the paper's containers use 5 CPU
// cores and 10 GB memory. We keep CNN workers CPU-heavy and RNN workers
// memory-heavy (recurrent state), and give parameter servers of large models
// more memory, so dominant-resource reasoning (DRF, §4.1 normalization) has
// real heterogeneity to work with.
var (
	cpuWorker = cluster.Resources{cluster.CPU: 5, cluster.Memory: 10}
	rnnWorker = cluster.Resources{cluster.CPU: 4, cluster.Memory: 14}
	psProfile = cluster.Resources{cluster.CPU: 3, cluster.Memory: 8}
	psBig     = cluster.Resources{cluster.CPU: 3, cluster.Memory: 14}
)

const bytesPerParam = 4 // float32 parameters

// mb converts millions of parameters to bytes.
func mb(millions float64) float64 { return millions * 1e6 * bytesPerParam }

const gbe = 125e6 // 1 GbE in bytes/s, the testbed's switch (§6.1)

// Zoo returns the nine Table-1 models with calibrated physics. The slice is
// freshly allocated on each call so callers may mutate entries.
func Zoo() []*Model {
	return []*Model{
		{
			Name: "resnext-110", ParamsMillion: 1.7, NetType: "CNN",
			Domain: "image classification", Dataset: "CIFAR10", DatasetSize: 60000,
			ModelBytes: mb(1.7), BatchPerWkr: 128, GlobalBatch: 512,
			FwdPerEx: 0.0022, Backward: 0.35, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.016, OverheadPS: 0.016,
			LossB0: 0.18, LossB1: 1.0, LossB2: 0.05,
			WorkerRes: cpuWorker, PSRes: psProfile, NumBlocks: 110,
		},
		{
			Name: "resnet-50", ParamsMillion: 25, NetType: "CNN",
			Domain: "image classification", Dataset: "ImageNet", DatasetSize: 1313788,
			ModelBytes: mb(25), BatchPerWkr: 32, GlobalBatch: 256,
			FwdPerEx: 0.012, Backward: 0.9, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.024, OverheadPS: 0.024,
			LossB0: 0.12, LossB1: 0.9, LossB2: 0.08,
			WorkerRes: cpuWorker, PSRes: psBig, NumBlocks: 157,
		},
		{
			Name: "inception-bn", ParamsMillion: 11.3, NetType: "CNN",
			Domain: "image classification", Dataset: "Caltech", DatasetSize: 30607,
			ModelBytes: mb(11.3), BatchPerWkr: 64, GlobalBatch: 256,
			FwdPerEx: 0.006, Backward: 0.55, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.020, OverheadPS: 0.020,
			LossB0: 0.2, LossB1: 1.1, LossB2: 0.06,
			WorkerRes: cpuWorker, PSRes: psProfile, NumBlocks: 120,
		},
		{
			Name: "kaggle", ParamsMillion: 1.4, NetType: "CNN",
			Domain: "image classification", Dataset: "Kaggle-NDSB1", DatasetSize: 37920,
			ModelBytes: mb(1.4), BatchPerWkr: 64, GlobalBatch: 256,
			FwdPerEx: 0.0018, Backward: 0.2, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.012, OverheadPS: 0.012,
			LossB0: 0.3, LossB1: 1.2, LossB2: 0.04,
			WorkerRes: cpuWorker, PSRes: psProfile, NumBlocks: 24,
		},
		{
			Name: "cnn-rand", ParamsMillion: 6, NetType: "CNN",
			Domain: "sentence classification", Dataset: "MR", DatasetSize: 10662,
			ModelBytes: mb(6), BatchPerWkr: 50, GlobalBatch: 200,
			FwdPerEx: 0.0012, Backward: 0.1, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.012, OverheadPS: 0.012,
			LossB0: 0.5, LossB1: 1.0, LossB2: 0.03,
			WorkerRes: cpuWorker, PSRes: psProfile, NumBlocks: 8,
		},
		{
			Name: "dssm", ParamsMillion: 1.5, NetType: "RNN",
			Domain: "word representation", Dataset: "text8", DatasetSize: 214288,
			ModelBytes: mb(1.5), BatchPerWkr: 256, GlobalBatch: 1024,
			FwdPerEx: 0.0008, Backward: 0.12, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.012, OverheadPS: 0.012,
			LossB0: 0.25, LossB1: 1.3, LossB2: 0.07,
			WorkerRes: cpuWorker, PSRes: psProfile, NumBlocks: 6,
		},
		{
			Name: "rnn-lstm", ParamsMillion: 4.7, NetType: "RNN",
			Domain: "language modeling", Dataset: "PTB", DatasetSize: 1002000,
			ModelBytes: mb(4.7), BatchPerWkr: 128, GlobalBatch: 512,
			FwdPerEx: 0.0015, Backward: 0.25, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.016, OverheadPS: 0.016,
			LossB0: 0.15, LossB1: 1.0, LossB2: 0.1,
			WorkerRes: cpuWorker, PSRes: psProfile, NumBlocks: 12,
		},
		{
			Name: "seq2seq", ParamsMillion: 9.1, NetType: "RNN",
			Domain: "machine translation", Dataset: "WMT17", DatasetSize: 1000000,
			ModelBytes: mb(9.1), BatchPerWkr: 64, GlobalBatch: 256,
			FwdPerEx: 0.005, Backward: 0.6, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.020, OverheadPS: 0.020,
			// Fig. 7 fitted values: β0=0.21, β1=1.07, β2=0.07.
			LossB0: 0.21, LossB1: 1.07, LossB2: 0.07,
			WorkerRes: rnnWorker, PSRes: psProfile, NumBlocks: 30,
		},
		{
			Name: "ds2", ParamsMillion: 38, NetType: "RNN",
			Domain: "speech recognition", Dataset: "LibriSpeech", DatasetSize: 45000,
			ModelBytes: mb(38), BatchPerWkr: 16, GlobalBatch: 64,
			FwdPerEx: 0.05, Backward: 1.6, UpdateRate: 400e6,
			PSBandwidth: gbe, WkrBandwidth: gbe, OverheadWkr: 0.032, OverheadPS: 0.032,
			LossB0: 0.1, LossB1: 0.8, LossB2: 0.12,
			WorkerRes: rnnWorker, PSRes: psBig, NumBlocks: 45,
		},
	}
}

// ZooByName returns the model with the given name, or nil.
func ZooByName(name string) *Model {
	for _, m := range Zoo() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// StepsPerEpoch returns the number of training steps per epoch for the given
// mode, after applying a dataset downscale factor in (0, 1] (the §6.1 trick
// that keeps experiment runs to ~6 hours).
func (m *Model) StepsPerEpoch(mode speedfit.Mode, w int, downscale float64) int {
	if downscale <= 0 || downscale > 1 {
		downscale = 1
	}
	examples := float64(m.DatasetSize) * downscale
	var perStep float64
	switch mode {
	case speedfit.Sync:
		perStep = float64(m.GlobalBatch) // w workers each do M/w
	default:
		// Async: each of the w workers processes its own m examples per
		// step; one "job step" of aggregate progress covers w·m examples.
		if w < 1 {
			w = 1
		}
		perStep = float64(m.BatchPerWkr * w)
	}
	steps := int(math.Ceil(examples / perStep))
	if steps < 1 {
		steps = 1
	}
	return steps
}

// TrueStepTime evaluates Eqn 2 — the ground-truth duration of one training
// step with p parameter servers and w workers, assuming ideal (colocation-
// free) placement:
//
//	T = m·T_fwd + T_back + 2·(S/p)/(B/w') + T_update·w'/p + δ·w + δ'·p
//
// with w' = w (all workers push to each PS per step; for async the paper
// assumes w' grows linearly in w).
func (m *Model) TrueStepTime(mode speedfit.Mode, p, w int) float64 {
	if p < 1 || w < 1 {
		return math.Inf(1)
	}
	pf, wf := float64(p), float64(w)
	var mEff float64
	switch mode {
	case speedfit.Sync:
		mEff = float64(m.GlobalBatch) / wf
	default:
		mEff = float64(m.BatchPerWkr)
	}
	compute := mEff*m.FwdPerEx + m.Backward
	transfer := 2 * (m.ModelBytes / pf) * wf / m.PSBandwidth
	update := (m.ModelBytes / m.UpdateRate) * wf / pf
	overhead := m.OverheadWkr*wf + m.OverheadPS*pf
	return compute + transfer + update + overhead
}

// TrueSpeed is the ground-truth training speed in steps/second (Eqns 3–4):
// w/T for async (aggregate progress across workers), 1/T for sync.
func (m *Model) TrueSpeed(mode speedfit.Mode, p, w int) float64 {
	t := m.TrueStepTime(mode, p, w)
	if math.IsInf(t, 1) || t <= 0 {
		return 0
	}
	if mode == speedfit.Async {
		return float64(w) / t
	}
	return 1 / t
}

// TrueLoss evaluates the ground-truth normalized loss after `epoch` epochs.
func (m *Model) TrueLoss(epoch float64) float64 {
	den := m.LossB0*epoch + m.LossB1
	if den <= 0 {
		return 1 + m.LossB2
	}
	return 1/den + m.LossB2
}

// EpochsToConverge returns the ground-truth number of epochs until the
// per-epoch normalized-loss decrease stays below threshold for `consecutive`
// consecutive epochs (§2.1's completion rule).
func (m *Model) EpochsToConverge(threshold float64, consecutive int) float64 {
	if threshold <= 0 {
		threshold = 0.01
	}
	if consecutive < 1 {
		consecutive = 1
	}
	e := 1.0
	for m.TrueLoss(e)-m.TrueLoss(e+1) >= threshold {
		e++
		if e > 1e7 {
			return math.Inf(1)
		}
	}
	return e + float64(consecutive)
}

// Validate checks internal consistency of the model constants.
func (m *Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("workload: model has no name")
	case m.ModelBytes <= 0:
		return fmt.Errorf("workload: %s: non-positive model size", m.Name)
	case m.BatchPerWkr <= 0 || m.GlobalBatch <= 0:
		return fmt.Errorf("workload: %s: non-positive batch size", m.Name)
	case m.FwdPerEx <= 0 || m.Backward <= 0:
		return fmt.Errorf("workload: %s: non-positive compute time", m.Name)
	case m.PSBandwidth <= 0 || m.WkrBandwidth <= 0 || m.UpdateRate <= 0:
		return fmt.Errorf("workload: %s: non-positive rate", m.Name)
	case m.LossB0 <= 0 || m.LossB1 <= 0 || m.LossB2 < 0:
		return fmt.Errorf("workload: %s: invalid loss curve", m.Name)
	case m.DatasetSize <= 0:
		return fmt.Errorf("workload: %s: non-positive dataset", m.Name)
	case m.NumBlocks <= 0:
		return fmt.Errorf("workload: %s: non-positive block count", m.Name)
	}
	return nil
}

package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"optimus/internal/speedfit"
)

func TestZooShape(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 9 {
		t.Fatalf("zoo has %d models, want 9 (Table 1)", len(zoo))
	}
	names := map[string]bool{}
	for _, m := range zoo {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if names[m.Name] {
			t.Errorf("duplicate model %s", m.Name)
		}
		names[m.Name] = true
	}
	for _, want := range []string{"resnet-50", "seq2seq", "ds2", "resnext-110"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}

func TestZooByName(t *testing.T) {
	if ZooByName("resnet-50") == nil {
		t.Error("resnet-50 not found")
	}
	if ZooByName("nope") != nil {
		t.Error("expected nil for unknown model")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := ZooByName("kaggle")
	m.ModelBytes = 0
	if err := m.Validate(); err == nil {
		t.Error("expected error for zero model size")
	}
	m2 := ZooByName("kaggle")
	m2.LossB0 = 0
	if err := m2.Validate(); err == nil {
		t.Error("expected error for flat loss curve")
	}
}

func TestStepsPerEpoch(t *testing.T) {
	m := ZooByName("resnext-110")                                // 60000 examples, M=512, m=128
	if got := m.StepsPerEpoch(speedfit.Sync, 4, 1); got != 118 { // ceil(60000/512)
		t.Errorf("sync steps/epoch = %d, want 118", got)
	}
	if got := m.StepsPerEpoch(speedfit.Async, 4, 1); got != 118 { // ceil(60000/(128·4))
		t.Errorf("async steps/epoch (w=4) = %d, want 118", got)
	}
	// Downscale shrinks epochs proportionally.
	if got := m.StepsPerEpoch(speedfit.Sync, 4, 0.1); got != 12 {
		t.Errorf("downscaled steps/epoch = %d, want 12", got)
	}
	// Invalid downscale falls back to 1.
	if got := m.StepsPerEpoch(speedfit.Sync, 4, 7); got != 118 {
		t.Errorf("invalid downscale steps/epoch = %d, want 118", got)
	}
}

// Fig 4(a): with 20 total containers, sync ResNet-50 speed peaks at an
// interior worker count (the paper finds 8 workers / 12 PS).
func TestFig4aInteriorOptimum(t *testing.T) {
	m := ZooByName("resnet-50")
	best, bestW := 0.0, 0
	for w := 1; w <= 19; w++ {
		p := 20 - w
		if s := m.TrueSpeed(speedfit.Sync, p, w); s > best {
			best, bestW = s, w
		}
	}
	if bestW <= 2 || bestW >= 18 {
		t.Errorf("optimum at w=%d, want interior (paper: 8)", bestW)
	}
	t.Logf("Fig4(a) shape: optimum at %d workers / %d ps, speed %.4f steps/s",
		bestW, 20-bestW, best)
}

// Fig 4(b): at a 1:1 ps:worker ratio, speed gains flatten (and may reverse)
// as resources scale — no linear speedup.
func TestFig4bDiminishingReturns(t *testing.T) {
	m := ZooByName("resnet-50")
	s5 := m.TrueSpeed(speedfit.Sync, 5, 5)
	s10 := m.TrueSpeed(speedfit.Sync, 10, 10)
	s20 := m.TrueSpeed(speedfit.Sync, 20, 20)
	if s10 <= s5 {
		t.Errorf("speed should still grow 5→10 (s5=%g s10=%g)", s5, s10)
	}
	gain1 := s10 / s5
	gain2 := s20 / s10
	if gain2 >= gain1 {
		t.Errorf("expected diminishing returns: 5→10 gain %.2f, 10→20 gain %.2f", gain1, gain2)
	}
}

// Fig 2: training times must span orders of magnitude across the zoo.
func TestFig2TrainingTimeSpread(t *testing.T) {
	var times []float64
	for _, m := range Zoo() {
		epochs := m.EpochsToConverge(0.01, 3)
		steps := epochs * float64(m.StepsPerEpoch(speedfit.Sync, 1, 1))
		times = append(times, steps*m.TrueStepTime(speedfit.Sync, 1, 1))
	}
	sort.Float64s(times)
	if ratio := times[len(times)-1] / times[0]; ratio < 50 {
		t.Errorf("training-time spread %.1fx, want ≥ 50x (paper: minutes to weeks)", ratio)
	}
}

func TestTrueSpeedEdgeCases(t *testing.T) {
	m := ZooByName("cnn-rand")
	if m.TrueSpeed(speedfit.Sync, 0, 5) != 0 {
		t.Error("speed with p=0 should be 0")
	}
	if m.TrueSpeed(speedfit.Async, 5, 0) != 0 {
		t.Error("speed with w=0 should be 0")
	}
	if !math.IsInf(m.TrueStepTime(speedfit.Sync, 0, 1), 1) {
		t.Error("step time with p=0 should be +Inf")
	}
}

func TestTrueLossMonotoneDecreasing(t *testing.T) {
	for _, m := range Zoo() {
		prev := math.Inf(1)
		for e := 1.0; e <= 512; e *= 2 {
			l := m.TrueLoss(e)
			if l >= prev {
				t.Errorf("%s: loss not decreasing at epoch %g", m.Name, e)
			}
			prev = l
		}
	}
}

func TestEpochsToConvergeThresholdOrdering(t *testing.T) {
	m := ZooByName("seq2seq")
	loose := m.EpochsToConverge(0.05, 3)
	tight := m.EpochsToConverge(0.01, 3)
	if tight <= loose {
		t.Errorf("tight threshold epochs (%g) should exceed loose (%g)", tight, loose)
	}
	// Defaults kick in for invalid arguments.
	if got := m.EpochsToConverge(0, 0); got <= 0 || math.IsInf(got, 1) {
		t.Errorf("EpochsToConverge with defaults = %g", got)
	}
}

func TestParameterBlocks(t *testing.T) {
	m := ZooByName("resnet-50")
	blocks := m.ParameterBlocks()
	if len(blocks) != 157 {
		t.Fatalf("resnet-50 has %d blocks, want 157 (Table 3)", len(blocks))
	}
	var total int64
	maxB := int64(0)
	for _, b := range blocks {
		if b < 1 {
			t.Fatalf("block size %d < 1", b)
		}
		total += b
		if b > maxB {
			maxB = b
		}
	}
	if total != 25_000_000 {
		t.Errorf("total parameters = %d, want 25000000", total)
	}
	// The distribution must be skewed: the largest block holds a large
	// multiple of the mean (that's what breaks MXNet's threshold heuristic).
	mean := float64(total) / float64(len(blocks))
	if float64(maxB) < 5*mean {
		t.Errorf("largest block %d not ≫ mean %.0f; distribution not skewed", maxB, mean)
	}
	// Deterministic across calls.
	again := m.ParameterBlocks()
	for i := range blocks {
		if blocks[i] != again[i] {
			t.Fatal("ParameterBlocks not deterministic")
		}
	}
}

func TestEvenSpread(t *testing.T) {
	s := EvenSpread(4, 6, 3)
	p, w := s.Total()
	if p != 4 || w != 6 {
		t.Fatalf("Total = %d,%d want 4,6", p, w)
	}
	for k := range s.PSOnNode {
		if s.PSOnNode[k] < 1 || s.PSOnNode[k] > 2 {
			t.Errorf("ps on node %d = %d, want 1 or 2", k, s.PSOnNode[k])
		}
		if s.WorkersOnNode[k] != 2 {
			t.Errorf("workers on node %d = %d, want 2", k, s.WorkersOnNode[k])
		}
	}
	// k<1 clamps to a single node.
	s1 := EvenSpread(2, 2, 0)
	if len(s1.PSOnNode) != 1 {
		t.Errorf("EvenSpread with k=0 has %d nodes", len(s1.PSOnNode))
	}
}

// Fig 10: the paper's worked example. 2 PS + 4 workers on 3 servers; the
// even 1ps+2w per-server split (c) beats the unbalanced splits (a) and (b).
func TestFig10PlacementExample(t *testing.T) {
	m := ZooByName("resnet-50")
	// (a): server1={ps1,w1,w2}, server2={ps2,w3,w4}: cross-server data for
	// each ps is (S/2)·2 at B. We model via spreads.
	a := TaskSpread{PSOnNode: []int{1, 1}, WorkersOnNode: []int{2, 2}}
	// (b): server1={ps1,ps2,w3}, server2={w1,w2,w4} — ps node has 3 remote workers.
	b := TaskSpread{PSOnNode: []int{2, 0}, WorkersOnNode: []int{1, 3}}
	// (c) in the paper uses 3 servers: not expressible with 2 even counts;
	// with our continuous model, concentrating on fewer servers (a) wins.
	ta := m.CrossServerTransferTime(a)
	tb := m.CrossServerTransferTime(b)
	if ta >= tb {
		t.Errorf("even colocation (a): %g should beat skewed (b): %g", ta, tb)
	}
	// Theorem 1: fewer servers → less cross traffic. Compare even spreads of
	// the same job over 2 vs 3 servers.
	t2 := m.CrossServerTransferTime(EvenSpread(2, 4, 2))
	t3 := m.CrossServerTransferTime(EvenSpread(2, 4, 3))
	if t2 > t3 {
		t.Errorf("2-server spread (%g) should not be slower than 3-server (%g)", t2, t3)
	}
}

func TestPlacedStepTimeBounds(t *testing.T) {
	m := ZooByName("inception-bn")
	p, w := 4, 8
	ideal := m.TrueStepTime(speedfit.Sync, p, w)
	colocated := m.PlacedStepTime(speedfit.Sync, EvenSpread(p, w, 1))
	spread := m.PlacedStepTime(speedfit.Sync, EvenSpread(p, w, 12))
	if colocated > ideal {
		t.Errorf("fully colocated (%g) should beat the all-remote ideal model (%g)", colocated, ideal)
	}
	if spread < colocated {
		t.Errorf("wide spread (%g) should not beat colocated (%g)", spread, colocated)
	}
	if s := m.PlacedSpeed(speedfit.Sync, EvenSpread(0, 0, 1)); s != 0 {
		t.Errorf("PlacedSpeed with no tasks = %g, want 0", s)
	}
}

// Property: Theorem 1 — among spreads of (p,w) over k servers, the even
// spread minimizes cross-server transfer time versus random spreads.
func TestTheorem1Property(t *testing.T) {
	m := ZooByName("resnet-50")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		p := k + r.Intn(6)
		w := k + r.Intn(8)
		even := m.CrossServerTransferTime(EvenSpread(p, w, k))
		// Random alternative spread that uses all of the same k servers
		// (Theorem 1 compares placements on a fixed server set; using fewer
		// servers is covered by its separate smallest-k claim).
		alt := TaskSpread{PSOnNode: make([]int, k), WorkersOnNode: make([]int, k)}
		for i := 0; i < k; i++ {
			alt.WorkersOnNode[i]++ // ensure every server is used
		}
		for i := k; i < w; i++ {
			alt.WorkersOnNode[r.Intn(k)]++
		}
		for i := 0; i < p; i++ {
			alt.PSOnNode[r.Intn(k)]++
		}
		return even <= m.CrossServerTransferTime(alt)+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGenerate(t *testing.T) {
	jobs := Generate(GenConfig{N: 50, Horizon: 12000, Seed: 1, Downscale: 0.1})
	if len(jobs) != 50 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	prev := -1.0
	sawAsync, sawSync := false, false
	for _, j := range jobs {
		if j.Arrival < prev {
			t.Error("arrivals not sorted")
		}
		prev = j.Arrival
		if j.Arrival < 0 || j.Arrival > 12000 {
			t.Errorf("arrival %g outside window", j.Arrival)
		}
		if j.Threshold < 0.01-1e-12 || j.Threshold > 0.05+1e-12 {
			t.Errorf("threshold %g outside [0.01,0.05]", j.Threshold)
		}
		if j.Mode == speedfit.Async {
			sawAsync = true
		} else {
			sawSync = true
		}
	}
	if !sawAsync || !sawSync {
		t.Error("expected a mix of training modes")
	}
	// Deterministic for a fixed seed.
	again := Generate(GenConfig{N: 50, Horizon: 12000, Seed: 1, Downscale: 0.1})
	for i := range jobs {
		if jobs[i].Model.Name != again[i].Model.Name || jobs[i].Arrival != again[i].Arrival {
			t.Fatal("Generate not deterministic")
		}
	}
}

func TestGenerateForceMode(t *testing.T) {
	m := speedfit.Sync
	jobs := Generate(GenConfig{N: 20, Seed: 2, ForceMode: &m})
	for _, j := range jobs {
		if j.Mode != speedfit.Sync {
			t.Fatal("ForceMode not applied")
		}
	}
}

func TestGenerateEmpty(t *testing.T) {
	if jobs := Generate(GenConfig{N: 0}); jobs != nil {
		t.Errorf("expected nil for N=0, got %d jobs", len(jobs))
	}
}

func TestArrivalProcesses(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for name, fn := range map[string]ArrivalProcess{
		"uniform": UniformArrivals,
		"poisson": PoissonArrivals,
		"google":  GoogleTraceArrivals,
	} {
		ts := fn(r, 100, 10000)
		if len(ts) != 100 {
			t.Errorf("%s: %d arrivals, want 100", name, len(ts))
		}
		for i, v := range ts {
			if v < 0 || v > 10000 {
				t.Errorf("%s: arrival %g outside window", name, v)
			}
			if i > 0 && v < ts[i-1] {
				t.Errorf("%s: arrivals not sorted", name)
			}
		}
		if got := fn(r, 0, 100); len(got) != 0 {
			t.Errorf("%s: expected empty for n=0", name)
		}
	}
}

// GoogleTraceArrivals must be burstier than uniform: the maximum number of
// arrivals in any 5% window should be substantially higher.
func TestGoogleTraceIsBursty(t *testing.T) {
	burstiness := func(fn ArrivalProcess, seed int64) float64 {
		r := rand.New(rand.NewSource(seed))
		ts := fn(r, 400, 10000)
		best := 0
		for _, c := range ts {
			cnt := 0
			for _, v := range ts {
				if v >= c && v < c+500 {
					cnt++
				}
			}
			if cnt > best {
				best = cnt
			}
		}
		return float64(best)
	}
	var bu, bg float64
	for s := int64(0); s < 5; s++ {
		bu += burstiness(UniformArrivals, s)
		bg += burstiness(GoogleTraceArrivals, s)
	}
	if bg < bu*1.5 {
		t.Errorf("google-trace burstiness %.0f not ≫ uniform %.0f", bg, bu)
	}
}

func TestJobSpecString(t *testing.T) {
	j := JobSpec{ID: 3, Model: ZooByName("dssm"), Mode: speedfit.Async,
		Threshold: 0.02, Arrival: 100}
	if got := j.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestJobSpecTotals(t *testing.T) {
	j := JobSpec{Model: ZooByName("resnext-110"), Mode: speedfit.Sync,
		Threshold: 0.02, Downscale: 0.2}
	epochs := j.TotalEpochs()
	if epochs <= 0 || math.IsInf(epochs, 1) {
		t.Fatalf("TotalEpochs = %g", epochs)
	}
	steps := j.TotalSteps(4)
	if steps <= 0 {
		t.Fatalf("TotalSteps = %g", steps)
	}
	if steps < epochs { // at least one step per epoch
		t.Errorf("steps %g < epochs %g", steps, epochs)
	}
}

func TestSmoothPlacedSpeed(t *testing.T) {
	m := ZooByName("resnet-50")
	// Invalid configurations yield zero.
	if got := m.SmoothPlacedSpeed(speedfit.Sync, 0, 5, 3); got != 0 {
		t.Errorf("p=0 speed = %g", got)
	}
	if got := m.SmoothPlacedSpeed(speedfit.Async, 5, 0, 3); got != 0 {
		t.Errorf("w=0 speed = %g", got)
	}
	// tasksPerNode below 1 clamps.
	if got := m.SmoothPlacedSpeed(speedfit.Sync, 2, 2, 0); got <= 0 {
		t.Errorf("clamped tasksPerNode speed = %g", got)
	}
	// The smooth surface must be monotone along single-task additions for
	// async at small scale (no cliffs) — the property the greedy allocator
	// depends on.
	prev := m.SmoothPlacedSpeed(speedfit.Async, 4, 1, 3)
	for w := 2; w <= 12; w++ {
		cur := m.SmoothPlacedSpeed(speedfit.Async, 4, w, 3)
		if cur < prev*0.999 {
			t.Fatalf("async smooth speed dropped at w=%d: %g → %g", w, prev, cur)
		}
		prev = cur
	}
	// Colocated (few tasks, one node) beats heavily spread for sync.
	colocated := m.SmoothPlacedSpeed(speedfit.Sync, 1, 2, 3)
	spreadOut := m.SmoothPlacedSpeed(speedfit.Sync, 1, 2, 1) // 1 task/node → 3 nodes
	if spreadOut > colocated {
		t.Errorf("spread (%g) should not beat colocated (%g)", spreadOut, colocated)
	}
	// Worker-side transfer dominates in PS-heavy shapes: adding servers far
	// beyond workers must eventually slow the smooth surface down.
	few := m.SmoothPlacedSpeed(speedfit.Sync, 4, 4, 3)
	many := m.SmoothPlacedSpeed(speedfit.Sync, 40, 4, 3)
	if many >= few {
		t.Errorf("40 PS (%g) should be slower than 4 PS (%g) at 4 workers", many, few)
	}
}

func TestPlacedSpeedAsync(t *testing.T) {
	m := ZooByName("rnn-lstm")
	spread := EvenSpread(2, 4, 2)
	sp := m.PlacedSpeed(speedfit.Async, spread)
	if sp <= 0 {
		t.Fatalf("async placed speed = %g", sp)
	}
	// Async speed counts aggregate worker steps: w/T vs sync 1/T.
	sy := m.PlacedSpeed(speedfit.Sync, spread)
	if sp <= sy {
		t.Errorf("async aggregate speed %g should exceed sync %g here", sp, sy)
	}
}

func TestValidateAllBranches(t *testing.T) {
	mk := func(mutate func(*Model)) error {
		m := ZooByName("kaggle")
		mutate(m)
		return m.Validate()
	}
	cases := map[string]func(*Model){
		"no name":        func(m *Model) { m.Name = "" },
		"zero batch":     func(m *Model) { m.BatchPerWkr = 0 },
		"zero global":    func(m *Model) { m.GlobalBatch = 0 },
		"zero forward":   func(m *Model) { m.FwdPerEx = 0 },
		"zero backward":  func(m *Model) { m.Backward = 0 },
		"zero bandwidth": func(m *Model) { m.PSBandwidth = 0 },
		"zero update":    func(m *Model) { m.UpdateRate = 0 },
		"neg beta2":      func(m *Model) { m.LossB2 = -1 },
		"zero dataset":   func(m *Model) { m.DatasetSize = 0 },
		"zero blocks":    func(m *Model) { m.NumBlocks = 0 },
	}
	for name, mutate := range cases {
		if err := mk(mutate); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}
}

package workload

import (
	"math/rand"
	"testing"
)

func TestKeyDistBounds(t *testing.T) {
	for _, name := range []string{"uniform", "zipfian", "latest"} {
		d, err := NewKeyDist(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != name {
			t.Fatalf("Name() = %q, want %q", d.Name(), name)
		}
		r := rand.New(rand.NewSource(1))
		// Growing keyspace, exactly how the harness drives it.
		for n := 1; n <= 2000; n++ {
			k := d.Draw(r, n)
			if k < 0 || k >= n {
				t.Fatalf("%s: Draw(n=%d) = %d out of [0,%d)", name, n, k, n)
			}
		}
		// Shrinking n (restart) must not panic or go out of range either.
		for n := 2000; n >= 1; n /= 3 {
			if k := d.Draw(r, n); k < 0 || k >= n {
				t.Fatalf("%s: Draw(n=%d) = %d out of range after shrink", name, n, k)
			}
		}
	}
}

func TestKeyDistUnknown(t *testing.T) {
	if _, err := NewKeyDist("pareto", 0); err == nil {
		t.Fatal("expected error for unknown distribution")
	}
}

// TestZipfianSkew checks the defining property: with theta=0.99 the hottest
// key absorbs a large constant share of draws regardless of keyspace size,
// and low ranks dominate high ranks.
func TestZipfianSkew(t *testing.T) {
	d, _ := NewKeyDist("zipfian", 0)
	r := rand.New(rand.NewSource(42))
	const n, draws = 1000, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[d.Draw(r, n)]++
	}
	if f := float64(counts[0]) / draws; f < 0.05 {
		t.Fatalf("hottest key got %.3f of draws, want >= 0.05", f)
	}
	lo, hi := 0, 0
	for i := 0; i < 10; i++ {
		lo += counts[i]
	}
	for i := n - 100; i < n; i++ {
		hi += counts[i]
	}
	if lo <= hi {
		t.Fatalf("top-10 ranks drew %d <= bottom-100 ranks %d; not skewed", lo, hi)
	}
	// A uniform reference must not show that skew.
	u, _ := NewKeyDist("uniform", 0)
	uc := make([]int, n)
	for i := 0; i < draws; i++ {
		uc[u.Draw(r, n)]++
	}
	if f := float64(uc[0]) / draws; f > 0.01 {
		t.Fatalf("uniform hottest key got %.3f of draws, want ~1/n", f)
	}
}

// TestLatestSkew: "latest" must favor the newest keys (high indices).
func TestLatestSkew(t *testing.T) {
	d, _ := NewKeyDist("latest", 0)
	r := rand.New(rand.NewSource(7))
	const n, draws = 1000, 100000
	newest, oldest := 0, 0
	for i := 0; i < draws; i++ {
		k := d.Draw(r, n)
		if k >= n-10 {
			newest++
		}
		if k < 10 {
			oldest++
		}
	}
	if newest <= oldest*10 {
		t.Fatalf("latest dist drew newest-10 %d vs oldest-10 %d; want strong recency bias", newest, oldest)
	}
}

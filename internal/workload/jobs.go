package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"optimus/internal/speedfit"
)

// JobSpec is a training job as submitted to the cluster: a model, a training
// mode, a convergence threshold and an arrival time. The scheduler decides
// p and w; the owner only fixes per-task resource profiles (via the model).
type JobSpec struct {
	ID        int
	Model     *Model
	Mode      speedfit.Mode
	Threshold float64 // convergence threshold on normalized loss decrease/epoch
	Arrival   float64 // submission time, seconds from experiment start
	Downscale float64 // dataset downscale factor (§6.1), (0,1]
}

// String implements fmt.Stringer.
func (j JobSpec) String() string {
	return fmt.Sprintf("job%d(%s,%s,th=%.3f,t=%.0f)",
		j.ID, j.Model.Name, j.Mode, j.Threshold, j.Arrival)
}

// TotalEpochs is the ground-truth epochs to convergence for this job.
func (j JobSpec) TotalEpochs() float64 {
	return j.Model.EpochsToConverge(j.Threshold, 3)
}

// TotalSteps is the ground-truth total training steps for this job at the
// given worker count (async epochs shrink in steps as workers grow; the
// simulator re-evaluates as w changes).
func (j JobSpec) TotalSteps(w int) float64 {
	return j.TotalEpochs() * float64(j.Model.StepsPerEpoch(j.Mode, w, j.Downscale))
}

// GenConfig controls random workload generation, mirroring §6.1:
// "Job arrival happens randomly between [0,12000] seconds. Upon an arrival
// event, we randomly choose the job among the examples in Table 1 and decide
// to run it using asynchronous or synchronous training randomly. We vary the
// convergence threshold of jobs between 1% and 5%."
type GenConfig struct {
	N            int     // number of jobs
	Horizon      float64 // arrival window length in seconds (paper: 12000)
	Seed         int64
	Downscale    float64        // dataset downscale (paper: "so one run ≈ 6h")
	ForceMode    *speedfit.Mode // non-nil → all jobs use this mode (Fig 16)
	MinThreshold float64        // default 0.01
	MaxThreshold float64        // default 0.05
	Arrivals     ArrivalProcess // default UniformArrivals
}

// ArrivalProcess generates n sorted arrival times within [0, horizon].
type ArrivalProcess func(r *rand.Rand, n int, horizon float64) []float64

// UniformArrivals scatters arrivals uniformly at random over the window —
// the paper's default workload.
func UniformArrivals(r *rand.Rand, n int, horizon float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64() * horizon
	}
	sort.Float64s(out)
	return out
}

// PoissonArrivals produces a Poisson process ("3 arrivals per scheduling
// interval" in §6.3) scaled so n arrivals fit the horizon in expectation.
// Inter-arrival gaps are exponential; the sequence is truncated/extended to
// exactly n events, the last ones clamped to the horizon.
func PoissonArrivals(r *rand.Rand, n int, horizon float64) []float64 {
	if n <= 0 {
		return nil
	}
	rate := float64(n) / horizon
	out := make([]float64, 0, n)
	t := 0.0
	for len(out) < n {
		t += r.ExpFloat64() / rate
		if t > horizon {
			t = horizon
		}
		out = append(out, t)
	}
	return out
}

// GoogleTraceArrivals emulates the bursty pattern of the Google cluster
// trace excerpt the paper uses (§6.3: "many job arrival spikes"): most jobs
// arrive inside a handful of short spikes, with a trickle in between.
func GoogleTraceArrivals(r *rand.Rand, n int, horizon float64) []float64 {
	if n <= 0 {
		return nil
	}
	nSpikes := 3 + r.Intn(3)
	centers := make([]float64, nSpikes)
	for i := range centers {
		centers[i] = r.Float64() * horizon
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if r.Float64() < 0.8 { // 80% of arrivals land inside spikes
			c := centers[r.Intn(nSpikes)]
			t := c + r.NormFloat64()*horizon*0.01
			if t < 0 {
				t = 0
			}
			if t > horizon {
				t = horizon
			}
			out = append(out, t)
		} else {
			out = append(out, r.Float64()*horizon)
		}
	}
	sort.Float64s(out)
	return out
}

// Generate builds a random job mix per the configuration.
func Generate(cfg GenConfig) []JobSpec {
	if cfg.N <= 0 {
		return nil
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 12000
	}
	if cfg.Downscale <= 0 || cfg.Downscale > 1 {
		cfg.Downscale = 1
	}
	if cfg.MinThreshold <= 0 {
		cfg.MinThreshold = 0.01
	}
	if cfg.MaxThreshold < cfg.MinThreshold {
		cfg.MaxThreshold = 0.05
	}
	arrivalsFn := cfg.Arrivals
	if arrivalsFn == nil {
		arrivalsFn = UniformArrivals
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zoo := Zoo()
	arrivals := arrivalsFn(r, cfg.N, cfg.Horizon)

	jobs := make([]JobSpec, cfg.N)
	for i := range jobs {
		mode := speedfit.Mode(r.Intn(2))
		if cfg.ForceMode != nil {
			mode = *cfg.ForceMode
		}
		jobs[i] = JobSpec{
			ID:        i,
			Model:     zoo[r.Intn(len(zoo))],
			Mode:      mode,
			Threshold: cfg.MinThreshold + r.Float64()*(cfg.MaxThreshold-cfg.MinThreshold),
			Arrival:   arrivals[i],
			Downscale: cfg.Downscale,
		}
	}
	return jobs
}

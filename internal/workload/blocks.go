package workload

import (
	"math"
	"math/rand"
)

// ParameterBlocks generates the model's per-layer parameter-block sizes (in
// number of parameters), deterministically from the model name.
//
// Real DNNs have a bimodal layer-size distribution: a minority of weight
// blocks (convolution/FC/embedding matrices) hold almost all parameters —
// with a few disproportionately large ones, like ResNet-50's 2M-parameter FC
// layer — while the majority are tiny bias/BatchNorm vectors. That skew is
// exactly what breaks MXNet's threshold heuristic (§5.3): blocks just below
// the threshold land on random servers and unbalance them, while blocks
// above it are needlessly sliced. The dust blocks are also what allows the
// paper's PAA to equalize per-server request counts. We reproduce both modes
// with a deterministic draw whose total matches ParamsMillion and whose
// count matches NumBlocks.
func (m *Model) ParameterBlocks() []int64 {
	n := m.NumBlocks
	if n <= 0 {
		return nil
	}
	total := int64(m.ParamsMillion * 1e6)
	r := rand.New(rand.NewSource(seedFromName(m.Name)))

	// Split the count: ~40% weight blocks carry ~99.5% of the parameters,
	// the rest are bias/BN dust.
	nWeights := n * 2 / 5
	if nWeights < 1 {
		nWeights = 1
	}
	nDust := n - nWeights

	// Weight blocks: log-normal body plus capped giants.
	weights := make([]float64, nWeights)
	var wsum float64
	for i := range weights {
		w := math.Exp(r.NormFloat64())
		weights[i] = w
		wsum += w
	}
	giants := nWeights / 12
	if giants < 1 {
		giants = 1
	}
	for g := 0; g < giants; g++ {
		i := r.Intn(nWeights)
		boost := (5 + 5*r.Float64()) * wsum / float64(nWeights)
		if lim := 0.2 * wsum; boost > lim {
			boost = lim
		}
		weights[i] += boost
		wsum += boost
	}

	weightTotal := float64(total) * 0.995
	dustTotal := float64(total) - weightTotal

	blocks := make([]int64, 0, n)
	var assigned int64
	for _, w := range weights {
		b := int64(w / wsum * weightTotal)
		if b < 1 {
			b = 1
		}
		blocks = append(blocks, b)
		assigned += b
	}
	for i := 0; i < nDust; i++ {
		b := int64(dustTotal / float64(nDust) * (0.3 + 1.4*r.Float64()))
		if b < 1 {
			b = 1
		}
		blocks = append(blocks, b)
		assigned += b
	}

	// Fix rounding drift on the largest block so totals are exact.
	largest := 0
	for i, b := range blocks {
		if b > blocks[largest] {
			largest = i
		}
	}
	blocks[largest] += total - assigned
	if blocks[largest] < 1 {
		blocks[largest] = 1
	}

	// Interleave weight and dust blocks the way real layer orderings do.
	r.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	return blocks
}

// seedFromName hashes a model name to a deterministic RNG seed (FNV-1a).
func seedFromName(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & math.MaxInt64)
}

package operator

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"optimus/internal/chaos"
	"optimus/internal/kube"
	"optimus/internal/psys"
)

// Fault injection against the live backend. The same chaos.Fault vocabulary
// the simulator replays is applied here to real components:
//
//   - Straggler / NetworkSlow degrade worker step times in place (the §5.2
//     detector then replaces stragglers autonomously). Live injections have
//     no timer: they persist until the worker is replaced or the job's next
//     checkpoint/restart incarnation, which always starts healthy.
//   - TaskKill / NodeCrash tear down the affected incarnations and recover
//     them from a checkpoint taken at kill time (worker state is lost, server
//     parameter state survives — §5.4). A NodeCrash first drains the node so
//     the control plane re-places the pods elsewhere.
//   - CheckpointFail arms a one-shot checkpoint-write failure; if a kill
//     lands before the next successful write the job cold-restarts and its
//     progress is counted as wasted.
//   - RecoveryDelay stretches the affected job's next recovery.
type FaultStats struct {
	Injected           int
	Restarts           int // tasks restarted by kill/crash recovery
	CheckpointFailures int
	WastedSteps        int // training steps lost to cold restarts
}

// FaultStats reports the operator's fault-injection counters.
func (o *Operator) FaultStats() FaultStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.faults
}

// InjectFault applies one chaos fault to the running system. Unknown jobs and
// already-completed jobs make the injection a recorded no-op, mirroring the
// simulator's late-delivery semantics.
func (o *Operator) InjectFault(f chaos.Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	o.mu.Lock()
	o.faults.Injected++
	o.mu.Unlock()

	switch f.Kind {
	case chaos.Straggler:
		mj := o.lookup(f.Job)
		if mj == nil {
			return nil
		}
		return o.degradeWorker(mj, f.Task, stragglerDelay(f.Severity))
	case chaos.NetworkSlow:
		for _, mj := range o.managed() {
			mj.mu.Lock()
			job, workers := mj.job, mj.alloc.Workers
			mj.mu.Unlock()
			if job == nil {
				continue
			}
			for id := 0; id < workers; id++ {
				_ = job.InjectWorkerDelay(id, stragglerDelay(f.Severity))
			}
		}
		return nil
	case chaos.TaskKill:
		mj := o.lookup(f.Job)
		if mj == nil {
			return nil
		}
		return o.killAndRecover(mj)
	case chaos.NodeCrash:
		return o.crashNode(f.Node)
	case chaos.CheckpointFail:
		mj := o.lookup(f.Job)
		if mj == nil {
			return nil
		}
		mj.mu.Lock()
		job := mj.job
		mj.mu.Unlock()
		if job != nil {
			job.FailNextCheckpoint()
		}
		return nil
	case chaos.RecoveryDelay:
		mj := o.lookup(f.Job)
		if mj == nil {
			return nil
		}
		mj.mu.Lock()
		mj.restoreDelay += time.Duration(f.Duration * float64(time.Second))
		mj.mu.Unlock()
		return nil
	}
	return fmt.Errorf("operator: unsupported fault kind %v", f.Kind)
}

// stragglerDelay converts a chaos severity (fraction of healthy speed) into a
// per-step delay large enough for §5.2 detection: healthy steps on the tiny
// test models take microseconds, so single-digit milliseconds dominate.
func stragglerDelay(severity float64) time.Duration {
	if severity <= 0 || severity >= 1 {
		return 3 * time.Millisecond
	}
	return time.Duration((1 - severity) * float64(8*time.Millisecond))
}

// lookup returns the managed job, or nil when unknown or completed.
func (o *Operator) lookup(id int) *managedJob {
	o.mu.Lock()
	defer o.mu.Unlock()
	mj := o.jobs[id]
	if mj == nil || mj.completed {
		return nil
	}
	return mj
}

// managed returns all incomplete jobs.
func (o *Operator) managed() []*managedJob {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*managedJob, 0, len(o.jobs))
	for _, mj := range o.jobs {
		if !mj.completed {
			out = append(out, mj)
		}
	}
	return out
}

// degradeWorker injects per-step slowness into one of the job's workers.
func (o *Operator) degradeWorker(mj *managedJob, workerID int, d time.Duration) error {
	mj.mu.Lock()
	job := mj.job
	mj.mu.Unlock()
	if job == nil {
		return nil
	}
	if err := job.InjectWorkerDelay(workerID, d); err != nil {
		return fmt.Errorf("operator: degrade job %d: %w", mj.req.ID, err)
	}
	return nil
}

// killAndRecover tears down a job's incarnation and restarts it at the same
// allocation from a checkpoint taken at kill time. If the checkpoint write
// fails (an armed CheckpointFail), the job cold-restarts from scratch and the
// lost steps are counted as wasted work.
func (o *Operator) killAndRecover(mj *managedJob) error {
	mj.mu.Lock()
	job, alloc := mj.job, mj.alloc
	steps := mj.totalSteps
	delay := mj.restoreDelay
	mj.restoreDelay = 0
	mj.mu.Unlock()
	if job == nil {
		return nil
	}

	ckpt := filepath.Join(o.ckptDir, fmt.Sprintf("job-%d.recovery.ckpt", mj.req.ID))
	var params []float64
	ckptFailed := false
	if err := job.SaveCheckpoint(ckpt); err != nil {
		if !errors.Is(err, psys.ErrCheckpointFailed) {
			return fmt.Errorf("operator: recovery checkpoint job %d: %w", mj.req.ID, err)
		}
		ckptFailed = true
	} else {
		ck, err := psys.LoadCheckpoint(ckpt)
		os.Remove(ckpt)
		if err != nil {
			return fmt.Errorf("operator: recovery restore job %d: %w", mj.req.ID, err)
		}
		params = ck.Params
	}

	o.stopIncarnation(mj)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err := o.startIncarnation(mj, alloc, params); err != nil {
		return fmt.Errorf("operator: restart job %d: %w", mj.req.ID, err)
	}

	o.mu.Lock()
	o.faults.Restarts += alloc.Tasks()
	if ckptFailed {
		o.faults.CheckpointFailures++
		o.faults.WastedSteps += steps
	}
	o.mu.Unlock()
	if ckptFailed {
		// Progress restarts from zero: reset the counters the convergence
		// check and loss fitter key off so telemetry stays consistent.
		mj.mu.Lock()
		mj.totalSteps = 0
		mj.mu.Unlock()
	}
	return nil
}

// crashNode drains the node on the control plane and recovers every job that
// had tasks placed there; the §4.2 scheduler re-places the drained pods on
// the next Cycle.
func (o *Operator) crashNode(node string) error {
	affected := make(map[int]bool)
	for _, p := range o.api.ListPods() {
		if p.NodeName == node && p.Phase != kube.PodSucceeded && p.Phase != kube.PodFailed {
			affected[p.JobID] = true
		}
	}
	if err := o.api.DrainNode(node); err != nil {
		return fmt.Errorf("operator: crash node %s: %w", node, err)
	}
	for id := range affected {
		mj := o.lookup(id)
		if mj == nil {
			continue
		}
		if err := o.killAndRecover(mj); err != nil {
			return err
		}
	}
	return nil
}

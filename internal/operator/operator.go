// Package operator is the full Optimus control loop running against real
// components — the closed-loop system of §5.5: training jobs execute on the
// psys parameter-server framework, their live telemetry (losses, measured
// step rates) feeds the §3 estimators, the §4.1 marginal-gain allocator
// decides each job's (PS, workers) every scheduling interval, resizes happen
// via §5.4 checkpoint/restart, and the kube control plane tracks each job's
// pod group, placed by the §4.2 scheduler.
//
// Nothing here is simulated: the losses come from SGD on real data, speeds
// from wall-clock measurements, and convergence from the job owner's
// threshold applied to observed loss windows.
package operator

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/kube"
	"optimus/internal/lossfit"
	"optimus/internal/psys"
	"optimus/internal/speedfit"
)

// JobRequest is what a job owner submits: the training task plus the
// convergence threshold and per-task resource profiles (§2.3: the owner
// fixes the composition of each task; Optimus decides the counts).
type JobRequest struct {
	ID        int
	ModelSpec string // psys.ModelFromSpec format
	Examples  int
	Noise     float64
	Mode      speedfit.Mode
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      int64
	// Threshold: the job converges when the mean batch loss improves by
	// less than Threshold (relative to the first window) for three
	// consecutive windows.
	Threshold float64
	PSRes     cluster.Resources
	WorkerRes cluster.Resources
	// WorkerDelays injects per-worker slowness (straggler demos/tests).
	WorkerDelays map[int]time.Duration
}

func (r JobRequest) validate() error {
	switch {
	case r.Examples <= 0:
		return fmt.Errorf("operator: job %d: invalid dataset size", r.ID)
	case r.BatchSize <= 0 || r.LR <= 0:
		return fmt.Errorf("operator: job %d: invalid hyperparameters", r.ID)
	case r.Threshold <= 0:
		return fmt.Errorf("operator: job %d: invalid threshold", r.ID)
	}
	_, err := psys.ModelFromSpec(r.ModelSpec)
	return err
}

// managedJob is the operator's per-job state.
type managedJob struct {
	req  JobRequest
	data psys.Batch

	mu        sync.Mutex
	job       *psys.Job
	alloc     core.Allocation
	driveStop chan struct{}
	driveDone chan struct{}

	// live telemetry, appended by the driver goroutine
	totalSteps  int
	lossSum     float64
	lossN       int
	lastRate    float64 // measured steps/s at the current configuration
	replaced    int     // §5.2 straggler replacements performed
	windowLoss  []float64
	firstWindow float64
	flatWindows int
	completed   bool
	completedAt time.Time
	// restoreDelay stretches the next fault recovery (chaos RecoveryDelay).
	restoreDelay time.Duration

	fitter   *lossfit.Fitter
	speedEst *speedfit.Estimator
}

// Operator owns the scheduling loop.
type Operator struct {
	api     *kube.APIServer
	jc      *kube.JobController
	sched   *kube.OptimusScheduler
	ckptDir string

	mu     sync.Mutex
	jobs   map[int]*managedJob
	faults FaultStats
}

// New builds an operator against a kube control plane. Checkpoints for
// elastic rescaling are written under ckptDir.
func New(api *kube.APIServer, ckptDir string) *Operator {
	return &Operator{
		api:     api,
		jc:      kube.NewJobController(api),
		sched:   kube.NewOptimusScheduler(api),
		ckptDir: ckptDir,
		jobs:    make(map[int]*managedJob),
	}
}

// Submit admits a job: generates its dataset, starts it at the starvation
// floor of one PS + one worker (§4.1), registers the pod group and drives
// training in the background.
func (o *Operator) Submit(req JobRequest) error {
	if err := req.validate(); err != nil {
		return err
	}
	o.mu.Lock()
	if _, dup := o.jobs[req.ID]; dup {
		o.mu.Unlock()
		return fmt.Errorf("operator: job %d already submitted", req.ID)
	}
	o.mu.Unlock()

	mj, err := newManagedJob(req)
	if err != nil {
		return err
	}
	if err := o.startIncarnation(mj, core.Allocation{PS: 1, Workers: 1}, nil); err != nil {
		return err
	}
	if err := o.jc.Submit(kube.TrainingJob{
		ID: req.ID, PS: 1, Workers: 1,
		PSRes: req.PSRes, WorkerRes: req.WorkerRes,
	}); err != nil {
		o.stopIncarnation(mj)
		return err
	}
	o.mu.Lock()
	o.jobs[req.ID] = mj
	o.mu.Unlock()
	return nil
}

// newManagedJob builds the in-memory job state: deterministic dataset plus
// fresh estimators.
func newManagedJob(req JobRequest) (*managedJob, error) {
	model, err := psys.ModelFromSpec(req.ModelSpec)
	if err != nil {
		return nil, err
	}
	var data psys.Batch
	switch model.(type) {
	case psys.LogisticRegression:
		data, _, err = psys.SyntheticClassification(req.Examples, featureDim(model), req.Noise, req.Seed)
	default:
		data, _, err = psys.SyntheticRegression(req.Examples, featureDim(model), req.Noise, req.Seed)
	}
	if err != nil {
		return nil, err
	}
	return &managedJob{
		req: req, data: data,
		fitter:   lossfit.NewFitter(),
		speedEst: speedfit.NewEstimator(req.Mode, float64(req.BatchSize)),
	}, nil
}

func featureDim(m psys.Model) int {
	switch mm := m.(type) {
	case psys.LinearRegression:
		return mm.Features
	case psys.LogisticRegression:
		return mm.Features
	case psys.MLP:
		return mm.In
	default:
		return m.Dim()
	}
}

// startIncarnation launches (or relaunches) the psys job at the given shape
// and starts its background driver.
func (o *Operator) startIncarnation(mj *managedJob, alloc core.Allocation, initParams []float64) error {
	model, err := psys.ModelFromSpec(mj.req.ModelSpec)
	if err != nil {
		return err
	}
	job, err := psys.StartJob(psys.JobConfig{
		Model: model, Data: mj.data, Mode: mj.req.Mode,
		Workers: alloc.Workers, Servers: alloc.PS,
		BatchSize: mj.req.BatchSize, LR: mj.req.LR, Momentum: mj.req.Momentum,
		Seed: mj.req.Seed, InitParams: initParams,
		WorkerDelays: mj.req.WorkerDelays,
	})
	if err != nil {
		return err
	}
	mj.mu.Lock()
	mj.job = job
	mj.alloc = alloc
	mj.driveStop = make(chan struct{})
	mj.driveDone = make(chan struct{})
	stop, done := mj.driveStop, mj.driveDone
	mj.mu.Unlock()
	go o.drive(mj, job, alloc, stop, done)
	return nil
}

// drive runs the job in small step batches, accumulating telemetry, until
// told to stop.
func (o *Operator) drive(mj *managedJob, job *psys.Job, alloc core.Allocation, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	const batchSteps = 10
	for {
		select {
		case <-stop:
			return
		default:
		}
		start := time.Now()
		stats, err := job.RunSteps(batchSteps)
		if err != nil {
			return // job torn down (rescale or completion)
		}
		elapsed := time.Since(start).Seconds()
		var lossSum float64
		for _, s := range stats {
			lossSum += s.Loss
		}
		rate := float64(batchSteps) / elapsed
		if mj.req.Mode == speedfit.Async {
			// Aggregate async speed counts every worker's steps.
			rate = float64(batchSteps*alloc.Workers) / elapsed
		}
		mj.mu.Lock()
		mj.totalSteps += batchSteps
		mj.lossSum += lossSum / float64(len(stats))
		mj.lossN++
		mj.lastRate = rate
		mj.mu.Unlock()

		// §5.2: between step batches no steps are in flight, so the driver
		// can detect stragglers from gradient-production times and replace
		// them autonomously.
		if alloc.Workers > 1 && len(stats) >= alloc.Workers*batchSteps {
			for _, id := range psys.DetectStragglers(stats) {
				if err := job.ReplaceWorker(id); err != nil {
					return
				}
				mj.mu.Lock()
				mj.replaced++
				mj.mu.Unlock()
			}
		}
	}
}

// stopIncarnation halts the driver and tears the psys job down.
func (o *Operator) stopIncarnation(mj *managedJob) {
	mj.mu.Lock()
	stop, done, job := mj.driveStop, mj.driveDone, mj.job
	mj.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if job != nil {
		job.Stop() // unblocks a RunSteps in flight
	}
	if done != nil {
		<-done
	}
}

// CycleReport summarizes one scheduling interval.
type CycleReport struct {
	Active    int
	Completed []int
	Resized   []int
	Bound     int
}

// Cycle runs one scheduling interval: harvest telemetry, refresh the §3
// models, decide allocations (§4.1), apply resizes via checkpoint/restart
// (§5.4) and reconcile the pod groups (§4.2 placement on the control plane).
func (o *Operator) Cycle() (CycleReport, error) {
	var report CycleReport

	o.mu.Lock()
	jobs := make([]*managedJob, 0, len(o.jobs))
	for _, mj := range o.jobs {
		if !mj.completed {
			jobs = append(jobs, mj)
		}
	}
	o.mu.Unlock()
	report.Active = len(jobs)
	if len(jobs) == 0 {
		return report, nil
	}

	// 1. Telemetry → estimators, convergence check.
	var infos []*core.JobInfo
	byID := make(map[int]*managedJob)
	for _, mj := range jobs {
		mj.mu.Lock()
		var window float64
		if mj.lossN > 0 {
			window = mj.lossSum / float64(mj.lossN)
			mj.lossSum, mj.lossN = 0, 0
			mj.windowLoss = append(mj.windowLoss, window)
			if len(mj.windowLoss) == 1 {
				mj.firstWindow = window
			}
			_ = mj.fitter.Add(float64(mj.totalSteps), window)
			if mj.lastRate > 0 {
				_ = mj.speedEst.Observe(mj.alloc.PS, mj.alloc.Workers, mj.lastRate)
			}
		}
		// Convergence: the decrease between consecutive windows stays below
		// threshold·firstWindow for 3 windows (§2.1's rule on live loss).
		n := len(mj.windowLoss)
		if n >= 2 && mj.firstWindow > 0 {
			dec := mj.windowLoss[n-2] - mj.windowLoss[n-1]
			if dec < mj.req.Threshold*mj.firstWindow {
				mj.flatWindows++
			} else {
				mj.flatWindows = 0
			}
		}
		converged := mj.flatWindows >= 3
		mj.mu.Unlock()

		if converged {
			o.complete(mj)
			report.Completed = append(report.Completed, mj.req.ID)
			continue
		}
		infos = append(infos, o.viewOf(mj))
		byID[mj.req.ID] = mj
	}
	if len(infos) == 0 {
		return report, nil
	}

	// 2. Allocation against the cluster's total capacity.
	var capacity cluster.Resources
	for _, n := range o.api.ListNodes() {
		capacity = capacity.Add(n.Capacity)
	}
	alloc := core.Allocate(infos, capacity)

	// 3. Apply resizes: checkpoint/restart the psys job, resize the pod
	// group, let the scheduler re-place it.
	for id, mj := range byID {
		next := alloc[id]
		if next.PS < 1 || next.Workers < 1 {
			continue // paused this interval; keep the current incarnation
		}
		mj.mu.Lock()
		cur := mj.alloc
		mj.mu.Unlock()
		if next == cur {
			continue
		}
		if err := o.resize(mj, next); err != nil {
			return report, fmt.Errorf("operator: resize job %d: %w", id, err)
		}
		report.Resized = append(report.Resized, id)
	}

	// 4. Reconcile bindings on the control plane.
	bound, err := o.sched.ScheduleOnce()
	if err != nil {
		return report, err
	}
	report.Bound = bound
	return report, nil
}

// viewOf builds the scheduler's JobInfo from live estimates.
func (o *Operator) viewOf(mj *managedJob) *core.JobInfo {
	mj.mu.Lock()
	defer mj.mu.Unlock()
	info := &core.JobInfo{
		ID:        mj.req.ID,
		WorkerRes: mj.req.WorkerRes,
		PSRes:     mj.req.PSRes,
		// Real clusters cap task counts well below the batch size.
		MaxWorkers: 16,
		MaxPS:      16,
	}
	// Remaining work Q from the online loss fit; fall back to a prior when
	// the fit is not ready (the §4.1 beginning state).
	remaining := 500.0 // prior steps
	if mj.fitter.Len() >= 5 {
		if m, err := mj.fitter.Fit(); err == nil {
			if total, err := m.StepsToConverge(mj.req.Threshold, 10, 3); err == nil {
				if r := total - float64(mj.totalSteps); r > 1 {
					remaining = r
				} else {
					remaining = 1
				}
			}
		}
		info.Priority = 1.0
	} else {
		info.Priority = 0.95 // damp beginning-state jobs
	}
	info.RemainingWork = remaining

	if model, err := mj.speedEst.Fit(); err == nil {
		info.Speed = model.Speed
	} else {
		// Too few configurations observed: scale the measured rate by a
		// conservative linear model so the allocator can still reason.
		rate, p, w := mj.lastRate, mj.alloc.PS, mj.alloc.Workers
		if rate <= 0 {
			rate = 1
		}
		info.Speed = func(np, nw int) float64 {
			if np < 1 || nw < 1 {
				return 0
			}
			scale := float64(nw) / float64(w)
			if np < p {
				scale *= float64(np) / float64(p)
			}
			return rate * scale * 0.9
		}
	}
	return info
}

// resize performs the §5.4 checkpoint/restart and updates the pod group.
func (o *Operator) resize(mj *managedJob, next core.Allocation) error {
	mj.mu.Lock()
	job := mj.job
	mj.mu.Unlock()

	ckpt := filepath.Join(o.ckptDir, fmt.Sprintf("job-%d.ckpt", mj.req.ID))
	if err := job.SaveCheckpoint(ckpt); err != nil {
		if errors.Is(err, psys.ErrCheckpointFailed) {
			// Injected checkpoint-write failure: keep the current incarnation
			// and let the next interval retry the resize.
			o.mu.Lock()
			o.faults.CheckpointFailures++
			o.mu.Unlock()
			return nil
		}
		return err
	}
	ck, err := psys.LoadCheckpoint(ckpt)
	if err != nil {
		return err
	}
	o.stopIncarnation(mj)
	if err := o.startIncarnation(mj, next, ck.Params); err != nil {
		return err
	}
	defer os.Remove(ckpt)
	return o.jc.Resize(mj.req.ID, next.PS, next.Workers)
}

// complete tears a converged job down and removes its pods.
func (o *Operator) complete(mj *managedJob) {
	o.stopIncarnation(mj)
	_ = o.jc.Delete(mj.req.ID) // pods may already be gone on shutdown races
	mj.mu.Lock()
	mj.completed = true
	mj.completedAt = time.Now()
	mj.mu.Unlock()
}

// JobStatus is the externally visible state of one job.
type JobStatus struct {
	ID        int
	Completed bool
	Steps     int
	PS        int
	Workers   int
	LastLoss  float64
	// Replaced counts §5.2 straggler replacements over the job's lifetime.
	Replaced int
}

// Status reports all jobs.
func (o *Operator) Status() []JobStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]JobStatus, 0, len(o.jobs))
	for _, mj := range o.jobs {
		mj.mu.Lock()
		st := JobStatus{
			ID: mj.req.ID, Completed: mj.completed,
			Steps: mj.totalSteps, PS: mj.alloc.PS, Workers: mj.alloc.Workers,
			Replaced: mj.replaced,
		}
		if n := len(mj.windowLoss); n > 0 {
			st.LastLoss = mj.windowLoss[n-1]
		}
		mj.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Shutdown stops every job and driver.
func (o *Operator) Shutdown() {
	o.mu.Lock()
	jobs := make([]*managedJob, 0, len(o.jobs))
	for _, mj := range o.jobs {
		jobs = append(jobs, mj)
	}
	o.mu.Unlock()
	for _, mj := range jobs {
		if !mj.completed {
			o.stopIncarnation(mj)
		}
	}
}

package operator

import (
	"fmt"
	"os"
	"testing"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/kube"
	"optimus/internal/speedfit"
)

func res(cpu, mem float64) cluster.Resources {
	return cluster.Resources{cluster.CPU: cpu, cluster.Memory: mem}
}

func newAPI(t *testing.T, nodes int) *kube.APIServer {
	t.Helper()
	api := kube.NewAPIServer()
	for i := 0; i < nodes; i++ {
		if err := api.RegisterNode(kube.Node{
			Name: fmt.Sprintf("n%d", i), Capacity: res(16, 64),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return api
}

func request(id int) JobRequest {
	return JobRequest{
		ID:        id,
		ModelSpec: "linreg:24",
		Examples:  800,
		Noise:     0.01,
		Mode:      speedfit.Sync,
		BatchSize: 32,
		LR:        0.1,
		Seed:      int64(id + 1),
		Threshold: 0.02,
		PSRes:     res(3, 8),
		WorkerRes: res(5, 10),
	}
}

func TestSubmitValidation(t *testing.T) {
	op := New(newAPI(t, 2), t.TempDir())
	defer op.Shutdown()
	bad := request(1)
	bad.Threshold = 0
	if err := op.Submit(bad); err == nil {
		t.Error("zero threshold accepted")
	}
	bad = request(1)
	bad.ModelSpec = "nope"
	if err := op.Submit(bad); err == nil {
		t.Error("bad model accepted")
	}
	if err := op.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	if err := op.Submit(request(1)); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestSubmitCreatesPodGroup(t *testing.T) {
	api := newAPI(t, 2)
	op := New(api, t.TempDir())
	defer op.Shutdown()
	if err := op.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	pods := api.ListPods()
	if len(pods) != 2 { // starvation floor: 1 PS + 1 worker
		t.Fatalf("pods = %d, want 2", len(pods))
	}
}

// The full closed loop: submit real jobs, run scheduling cycles, and verify
// that the operator (a) grows allocations from the starvation floor using
// live measurements, (b) binds the pod groups, and (c) completes the jobs
// when their real losses converge.
func TestOperatorEndToEnd(t *testing.T) {
	api := newAPI(t, 3)
	op := New(api, t.TempDir())
	defer op.Shutdown()

	for id := 1; id <= 2; id++ {
		if err := op.Submit(request(id)); err != nil {
			t.Fatal(err)
		}
	}

	sawResize := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond) // let the drivers accumulate telemetry
		rep, err := op.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Resized) > 0 {
			sawResize = true
		}
		if rep.Active == 0 {
			break
		}
	}

	done := 0
	for _, st := range op.Status() {
		if st.Completed {
			done++
		}
		if st.Steps == 0 {
			t.Errorf("job %d made no progress", st.ID)
		}
	}
	if done != 2 {
		t.Fatalf("completed %d/2 jobs before deadline", done)
	}
	if !sawResize {
		t.Error("operator never rescaled a job despite spare capacity")
	}
	// Completed jobs must have no pods left.
	if pods := api.ListPods(); len(pods) != 0 {
		t.Errorf("%d pods left after completion", len(pods))
	}
}

func TestCycleOnEmptyOperator(t *testing.T) {
	op := New(newAPI(t, 1), t.TempDir())
	rep, err := op.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Active != 0 {
		t.Errorf("Active = %d", rep.Active)
	}
}

func TestOperatorAsyncJob(t *testing.T) {
	api := newAPI(t, 2)
	op := New(api, t.TempDir())
	defer op.Shutdown()
	req := request(5)
	req.Mode = speedfit.Async
	req.ModelSpec = "mlp:6x8"
	if err := op.Submit(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(40 * time.Millisecond)
		rep, err := op.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Active == 0 {
			break
		}
	}
	st := op.Status()
	if len(st) != 1 || !st[0].Completed {
		t.Fatalf("async job did not complete: %+v", st)
	}
}

func TestOperatorStatusShape(t *testing.T) {
	op := New(newAPI(t, 2), t.TempDir())
	defer op.Shutdown()
	if err := op.Submit(request(9)); err != nil {
		t.Fatal(err)
	}
	st := op.Status()
	if len(st) != 1 || st[0].ID != 9 || st[0].Completed {
		t.Errorf("Status = %+v", st)
	}
	if st[0].PS != 1 || st[0].Workers != 1 {
		t.Errorf("initial allocation = (%d,%d), want (1,1)", st[0].PS, st[0].Workers)
	}
}

func TestOperatorReplacesStragglers(t *testing.T) {
	api := newAPI(t, 2)
	op := New(api, t.TempDir())
	defer op.Shutdown()
	req := request(11)
	// The straggler costs 3ms/step while healthy workers take microseconds.
	req.WorkerDelays = map[int]time.Duration{0: 3 * time.Millisecond}
	if err := op.Submit(req); err != nil {
		t.Fatal(err)
	}
	// Grow past one worker so detection has peers to compare against, then
	// let the driver observe a few batches.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		rep, err := op.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		st := op.Status()[0]
		if st.Replaced > 0 || rep.Active == 0 {
			break
		}
	}
	st := op.Status()[0]
	if st.Replaced == 0 {
		t.Error("operator never replaced the injected straggler")
	}
}

// §5.5 fault tolerance: an operator crash loses nothing — a fresh operator
// recovers the persisted job state (parameters included) and finishes the
// workload.
func TestOperatorCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	statePath := StateFileName(dir)

	api1 := newAPI(t, 3)
	op1 := New(api1, dir)
	if err := op1.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	if err := op1.Submit(request(2)); err != nil {
		t.Fatal(err)
	}
	// Make some progress, then "crash" after a state save.
	time.Sleep(150 * time.Millisecond)
	if _, err := op1.Cycle(); err != nil {
		t.Fatal(err)
	}
	if err := op1.SaveState(statePath); err != nil {
		t.Fatal(err)
	}
	var stepsBefore int
	for _, st := range op1.Status() {
		stepsBefore += st.Steps
	}
	op1.Shutdown()

	// Restart: fresh control plane, fresh operator, recovered state.
	api2 := newAPI(t, 3)
	op2 := New(api2, dir)
	defer op2.Shutdown()
	if err := op2.RecoverInto(statePath); err != nil {
		t.Fatal(err)
	}
	// Recovery must restore progress counters and re-register pod groups.
	var stepsAfter int
	for _, st := range op2.Status() {
		stepsAfter += st.Steps
	}
	if stepsAfter < stepsBefore {
		t.Errorf("recovered steps %d < saved %d", stepsAfter, stepsBefore)
	}
	if pods := api2.ListPods(); len(pods) == 0 {
		t.Error("no pod groups re-registered after recovery")
	}
	// The recovered operator finishes the workload.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		rep, err := op2.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Active == 0 {
			break
		}
	}
	done := 0
	for _, st := range op2.Status() {
		if st.Completed {
			done++
		}
	}
	if done != 2 {
		t.Fatalf("recovered operator completed %d/2 jobs", done)
	}
	// Recovery into a non-empty operator is rejected.
	if err := op2.RecoverInto(statePath); err == nil {
		t.Error("recovery into a busy operator accepted")
	}
	// Corrupt state is rejected.
	bad := StateFileName(t.TempDir())
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	op3 := New(newAPI(t, 1), dir)
	defer op3.Shutdown()
	if err := op3.RecoverInto(bad); err == nil {
		t.Error("corrupt state accepted")
	}
}

package operator

import (
	"testing"
	"time"

	"optimus/internal/chaos"
	"optimus/internal/psys"
)

// cycleUntil drives scheduling cycles until pred holds or the deadline hits.
func cycleUntil(t *testing.T, op *Operator, d time.Duration, pred func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		time.Sleep(40 * time.Millisecond)
		if _, err := op.Cycle(); err != nil {
			t.Fatal(err)
		}
		if pred() {
			return true
		}
	}
	return pred()
}

func TestInjectFaultValidation(t *testing.T) {
	op := New(newAPI(t, 2), t.TempDir())
	defer op.Shutdown()
	if err := op.InjectFault(chaos.Fault{Kind: chaos.NodeCrash, Time: 1}); err == nil {
		t.Error("invalid fault accepted")
	}
	// Faults against unknown jobs are recorded no-ops, like the simulator's
	// late deliveries.
	if err := op.InjectFault(chaos.Fault{Kind: chaos.TaskKill, Time: 1, Job: 99}); err != nil {
		t.Fatal(err)
	}
	if fs := op.FaultStats(); fs.Injected != 1 || fs.Restarts != 0 {
		t.Errorf("stats = %+v", fs)
	}
}

// A task kill mid-training restarts the incarnation from a checkpoint: the
// job keeps its progress and still converges.
func TestTaskKillRecovers(t *testing.T) {
	op := New(newAPI(t, 2), t.TempDir())
	defer op.Shutdown()
	if err := op.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // accumulate some steps
	if err := op.InjectFault(chaos.Fault{Kind: chaos.TaskKill, Time: 0, Job: 1}); err != nil {
		t.Fatal(err)
	}
	if fs := op.FaultStats(); fs.Restarts == 0 {
		t.Fatalf("no restarts recorded: %+v", fs)
	}
	if !cycleUntil(t, op, 20*time.Second, func() bool { return op.Status()[0].Completed }) {
		t.Fatalf("job did not converge after task kill: %+v", op.Status())
	}
}

// A node crash drains the node, recovers the jobs placed there, and the
// scheduler re-places the pods on surviving nodes.
func TestNodeCrashDrainsAndRecovers(t *testing.T) {
	api := newAPI(t, 3)
	op := New(api, t.TempDir())
	defer op.Shutdown()
	for id := 1; id <= 2; id++ {
		if err := op.Submit(request(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Cycle until the scheduler binds a pod group somewhere.
	boundNode := func() string {
		for _, p := range api.ListPods() {
			if p.NodeName != "" {
				return p.NodeName
			}
		}
		return ""
	}
	if !cycleUntil(t, op, 20*time.Second, func() bool { return boundNode() != "" }) {
		t.Fatal("no pod ever bound")
	}
	crashed := boundNode()
	if err := op.InjectFault(chaos.Fault{
		Kind: chaos.NodeCrash, Time: 0, Node: crashed, Duration: 60,
	}); err != nil {
		t.Fatal(err)
	}
	if fs := op.FaultStats(); fs.Injected != 1 || fs.Restarts == 0 {
		t.Fatalf("stats after crash = %+v", fs)
	}
	if len(api.ListNodes()) != 2 {
		t.Errorf("node not drained: %d nodes", len(api.ListNodes()))
	}
	allDone := func() bool {
		for _, st := range op.Status() {
			if !st.Completed {
				return false
			}
		}
		return true
	}
	if !cycleUntil(t, op, 30*time.Second, allDone) {
		t.Fatalf("jobs did not converge after node crash: %+v", op.Status())
	}
	for _, p := range api.ListPods() {
		if p.NodeName == crashed {
			t.Errorf("pod %s still on crashed node", p.Name)
		}
	}
}

// An armed checkpoint failure makes the next kill a cold restart (progress
// wasted), and a resize that hits it skips the interval instead of erroring.
func TestCheckpointFailureWastesWork(t *testing.T) {
	op := New(newAPI(t, 2), t.TempDir())
	defer op.Shutdown()
	if err := op.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if err := op.InjectFault(chaos.Fault{Kind: chaos.CheckpointFail, Time: 0, Job: 1}); err != nil {
		t.Fatal(err)
	}
	if err := op.InjectFault(chaos.Fault{Kind: chaos.TaskKill, Time: 0, Job: 1}); err != nil {
		t.Fatal(err)
	}
	fs := op.FaultStats()
	if fs.CheckpointFailures != 1 {
		t.Errorf("checkpoint failures = %d, want 1", fs.CheckpointFailures)
	}
	if fs.WastedSteps == 0 {
		t.Error("cold restart recorded no wasted steps")
	}
	if !cycleUntil(t, op, 20*time.Second, func() bool { return op.Status()[0].Completed }) {
		t.Fatalf("job did not converge after cold restart: %+v", op.Status())
	}
}

// The psys-level one-shot flag feeds the operator's resize path: Cycle must
// tolerate the failed write and retry later.
func TestResizeToleratesCheckpointFailure(t *testing.T) {
	op := New(newAPI(t, 3), t.TempDir())
	defer op.Shutdown()
	if err := op.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	mj := op.lookup(1)
	mj.mu.Lock()
	job := mj.job
	mj.mu.Unlock()
	job.FailNextCheckpoint()
	// Cycle until a resize is attempted; the armed failure must not error it.
	sawFailure := func() bool { return op.FaultStats().CheckpointFailures > 0 }
	converged := func() bool { return op.Status()[0].Completed }
	cycleUntil(t, op, 20*time.Second, func() bool { return sawFailure() || converged() })
	if !sawFailure() && !converged() {
		t.Fatalf("neither checkpoint failure nor convergence: %+v", op.FaultStats())
	}
	if err := job.SaveCheckpoint(StateFileName(t.TempDir())); err != nil && sawFailure() {
		// One-shot: a later save on the same incarnation must succeed. The
		// incarnation may have been replaced by a successful resize, in which
		// case the old job is stopped and the save legitimately errors.
		if err != psys.ErrCheckpointFailed {
			t.Logf("save on old incarnation: %v (ok after resize)", err)
		} else {
			t.Error("checkpoint failure not one-shot")
		}
	}
}

// Satellite #4: straggler replacement when the replacement worker itself
// fails mid-recovery. The operator replaces the submitted straggler; we then
// degrade the fresh replacement via chaos injection and the §5.2 loop must
// detect and replace it again.
func TestStragglerReplacementSurvivesSecondFailure(t *testing.T) {
	api := newAPI(t, 2)
	op := New(api, t.TempDir())
	defer op.Shutdown()
	req := request(11)
	// Converge slowly enough that both replacement rounds happen mid-run.
	req.Threshold = 0.0005
	req.WorkerDelays = map[int]time.Duration{0: 3 * time.Millisecond}
	if err := op.Submit(req); err != nil {
		t.Fatal(err)
	}

	status := func() JobStatus { return op.Status()[0] }
	if !cycleUntil(t, op, 20*time.Second, func() bool {
		st := status()
		return st.Replaced >= 1 || st.Completed
	}) {
		t.Fatalf("first straggler never replaced: %+v", status())
	}
	if status().Completed {
		t.Skip("job converged before the first replacement could be observed")
	}
	first := status().Replaced

	// The replacement worker (same ID 0, fresh and healthy) fails in turn:
	// inject the same degradation against it mid-recovery.
	if err := op.InjectFault(chaos.Fault{
		Kind: chaos.Straggler, Time: 0, Job: 11, Task: 0,
		Duration: 60, Severity: 0.3,
	}); err != nil {
		t.Fatal(err)
	}
	if !cycleUntil(t, op, 20*time.Second, func() bool {
		st := status()
		return st.Replaced > first || st.Completed
	}) {
		t.Fatalf("degraded replacement never replaced: %+v", status())
	}
	if st := status(); !st.Completed && st.Replaced <= first {
		t.Fatalf("replacement count stuck at %d", st.Replaced)
	}
}

package operator

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	op := New(newAPI(t, 2), t.TempDir())
	defer op.Shutdown()
	if err := op.Submit(request(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Cycle(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := op.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"optimus_operator_faults_injected_total 0",
		"optimus_operator_jobs_running 1",
		"optimus_operator_jobs_completed 0",
		"# TYPE optimus_operator_training_steps_total counter",
		"# TYPE optimus_operator_ps_tasks gauge",
		`optimus_operator_job_last_loss{job="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
	// Tasks are deployed after a cycle.
	if !strings.Contains(out, "optimus_operator_worker_tasks") {
		t.Fatalf("no worker task gauge:\n%s", out)
	}
}

func TestWritePrometheusEmptyOperator(t *testing.T) {
	op := New(newAPI(t, 1), t.TempDir())
	defer op.Shutdown()
	var sb strings.Builder
	if err := op.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "optimus_operator_job_last_loss") {
		t.Fatalf("per-job series with no jobs:\n%s", out)
	}
	if !strings.Contains(out, "optimus_operator_jobs_running 0") {
		t.Fatalf("missing zero gauge:\n%s", out)
	}
}

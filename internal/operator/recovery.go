package operator

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"optimus/internal/core"
	"optimus/internal/kube"
)

// §5.5 fault tolerance: "we use etcd as fault-tolerant storage of job
// states. Kubernetes will automatically restart the scheduler if it fails."
// SaveState persists everything a restarted operator needs — each job's
// request, allocation, progress counters and model parameters — and Recover
// rebuilds a running operator from it. Estimator state is deliberately not
// persisted: a restarted Optimus re-learns its models from fresh telemetry,
// exactly as the paper's restarts do.

// persistedJob is the durable state of one managed job.
type persistedJob struct {
	Req         JobRequest
	Alloc       core.Allocation
	TotalSteps  int
	Replaced    int
	WindowLoss  []float64
	FirstWindow float64
	FlatWindows int
	Completed   bool
	Params      []float64
}

type persistedState struct {
	Jobs []persistedJob
}

// SaveState writes the operator's job state to path. Running jobs are
// checkpointed in place (their training continues uninterrupted).
func (o *Operator) SaveState(path string) error {
	o.mu.Lock()
	jobs := make([]*managedJob, 0, len(o.jobs))
	for _, mj := range o.jobs {
		jobs = append(jobs, mj)
	}
	o.mu.Unlock()

	var st persistedState
	for _, mj := range jobs {
		mj.mu.Lock()
		pj := persistedJob{
			Req:         mj.req,
			Alloc:       mj.alloc,
			TotalSteps:  mj.totalSteps,
			Replaced:    mj.replaced,
			WindowLoss:  append([]float64(nil), mj.windowLoss...),
			FirstWindow: mj.firstWindow,
			FlatWindows: mj.flatWindows,
			Completed:   mj.completed,
		}
		job := mj.job
		mj.mu.Unlock()
		if !pj.Completed && job != nil {
			params, err := job.Params()
			if err != nil {
				return fmt.Errorf("operator: snapshot job %d: %w", pj.Req.ID, err)
			}
			pj.Params = params
		}
		st.Jobs = append(st.Jobs, pj)
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("operator: save state: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(&st); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("operator: encode state: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// RecoverInto loads a saved state into a freshly constructed Operator:
// incomplete jobs restart from their persisted parameters at their last
// allocation, pod groups are re-registered on the control plane, and
// completed jobs are remembered as completed.
// The operator must be empty (no jobs submitted yet).
func (o *Operator) RecoverInto(path string) error {
	o.mu.Lock()
	if len(o.jobs) != 0 {
		o.mu.Unlock()
		return fmt.Errorf("operator: recovery target already has jobs")
	}
	o.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("operator: open state: %w", err)
	}
	defer f.Close()
	var st persistedState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return fmt.Errorf("operator: decode state: %w", err)
	}

	for _, pj := range st.Jobs {
		if err := o.recoverJob(pj); err != nil {
			return err
		}
	}
	return nil
}

func (o *Operator) recoverJob(pj persistedJob) error {
	if pj.Completed {
		mj := &managedJob{req: pj.Req, completed: true}
		mj.totalSteps = pj.TotalSteps
		mj.replaced = pj.Replaced
		o.mu.Lock()
		o.jobs[pj.Req.ID] = mj
		o.mu.Unlock()
		return nil
	}
	if err := pj.Req.validate(); err != nil {
		return err
	}
	// Rebuild the dataset deterministically, then restart training from the
	// persisted parameters at the persisted allocation.
	mj, err := o.rebuildManaged(pj)
	if err != nil {
		return err
	}
	alloc := pj.Alloc
	if alloc.PS < 1 || alloc.Workers < 1 {
		alloc = core.Allocation{PS: 1, Workers: 1}
	}
	if err := o.startIncarnation(mj, alloc, pj.Params); err != nil {
		return err
	}
	if err := o.jc.Submit(kube.TrainingJob{
		ID: pj.Req.ID, PS: alloc.PS, Workers: alloc.Workers,
		PSRes: pj.Req.PSRes, WorkerRes: pj.Req.WorkerRes,
	}); err != nil {
		o.stopIncarnation(mj)
		return err
	}
	o.mu.Lock()
	o.jobs[pj.Req.ID] = mj
	o.mu.Unlock()
	return nil
}

// rebuildManaged reconstructs the in-memory job state (dataset, estimators,
// counters) from the persisted record.
func (o *Operator) rebuildManaged(pj persistedJob) (*managedJob, error) {
	mj, err := newManagedJob(pj.Req)
	if err != nil {
		return nil, err
	}
	mj.totalSteps = pj.TotalSteps
	mj.replaced = pj.Replaced
	mj.windowLoss = append([]float64(nil), pj.WindowLoss...)
	mj.firstWindow = pj.FirstWindow
	mj.flatWindows = pj.FlatWindows
	return mj, nil
}

// StateFileName is the conventional state path under a directory.
func StateFileName(dir string) string { return filepath.Join(dir, "operator-state.gob") }

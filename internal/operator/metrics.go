package operator

import (
	"fmt"
	"io"
	"sort"

	"optimus/internal/metrics"
)

// WritePrometheus exports the operator's live state in Prometheus text
// format 0.0.4: per-system counters from the chaos fault ledger and
// aggregate job gauges from Status(). It takes the same snapshots the
// public accessors do, so it is safe to call while jobs are running.
func (o *Operator) WritePrometheus(w io.Writer) error {
	fs := o.FaultStats()
	if err := metrics.WriteCounter(w, "optimus_operator_faults_injected_total",
		"Chaos faults injected into the running system.",
		float64(fs.Injected)); err != nil {
		return err
	}
	if err := metrics.WriteCounter(w, "optimus_operator_task_restarts_total",
		"Tasks restarted by kill/crash recovery.",
		float64(fs.Restarts)); err != nil {
		return err
	}
	if err := metrics.WriteCounter(w, "optimus_operator_checkpoint_failures_total",
		"Armed checkpoint-write failures that fired.",
		float64(fs.CheckpointFailures)); err != nil {
		return err
	}
	if err := metrics.WriteCounter(w, "optimus_operator_wasted_steps_total",
		"Training steps lost to cold restarts.",
		float64(fs.WastedSteps)); err != nil {
		return err
	}

	jobs := o.Status()
	var completed, running, ps, workers, steps, replaced int
	for _, j := range jobs {
		if j.Completed {
			completed++
		} else {
			running++
			ps += j.PS
			workers += j.Workers
		}
		steps += j.Steps
		replaced += j.Replaced
	}
	if err := metrics.WriteCounter(w, "optimus_operator_training_steps_total",
		"Training steps executed across all jobs.", float64(steps)); err != nil {
		return err
	}
	if err := metrics.WriteCounter(w, "optimus_operator_stragglers_replaced_total",
		"Straggling workers replaced per the paper's section 5.2 policy.",
		float64(replaced)); err != nil {
		return err
	}
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"optimus_operator_jobs_running", "Jobs currently training.", float64(running)},
		{"optimus_operator_jobs_completed", "Jobs that reached convergence.", float64(completed)},
		{"optimus_operator_ps_tasks", "Parameter-server tasks deployed.", float64(ps)},
		{"optimus_operator_worker_tasks", "Worker tasks deployed.", float64(workers)},
	} {
		if err := metrics.WriteGauge(w, g.name, g.help, g.v); err != nil {
			return err
		}
	}

	// Per-job last loss, labelled by job ID in stable order.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	if len(jobs) > 0 {
		if _, err := fmt.Fprintf(w,
			"# HELP optimus_operator_job_last_loss Most recent training loss per job.\n# TYPE optimus_operator_job_last_loss gauge\n"); err != nil {
			return err
		}
		for _, j := range jobs {
			if _, err := fmt.Fprintf(w, "optimus_operator_job_last_loss{job=\"%d\"} %g\n",
				j.ID, j.LastLoss); err != nil {
				return err
			}
		}
	}
	return nil
}

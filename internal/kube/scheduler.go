package kube

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/core"
)

// OptimusScheduler is Optimus deployed as a custom scheduler pod (§5.5): it
// polls the API server for pending pods, groups them by job, and binds each
// job's pod group using the §4.2 placement scheme (fewest servers, even PS
// and worker counts per server). Pods that cannot be placed stay pending
// for the next cycle, as the paper prescribes.
type OptimusScheduler struct {
	api *APIServer
}

// NewOptimusScheduler builds a scheduler against the given control plane.
func NewOptimusScheduler(api *APIServer) *OptimusScheduler {
	return &OptimusScheduler{api: api}
}

// ScheduleOnce runs one scheduling cycle and returns the number of pods
// bound.
func (s *OptimusScheduler) ScheduleOnce() (int, error) {
	pods := s.api.ListPods()
	type group struct {
		jobID   int
		ps      []Pod
		workers []Pod
	}
	groups := make(map[int]*group)
	for _, p := range pods {
		if p.Phase != PodPending || p.NodeName != "" {
			continue
		}
		g := groups[p.JobID]
		if g == nil {
			g = &group{jobID: p.JobID}
			groups[p.JobID] = g
		}
		if p.Role == RolePS {
			g.ps = append(g.ps, p)
		} else {
			g.workers = append(g.workers, p)
		}
	}
	if len(groups) == 0 {
		return 0, nil
	}

	// Mirror the cluster's free state into a placement cluster.
	free := s.api.FreeCapacity()
	c := cluster.New()
	var nodeNames []string
	for name := range free {
		nodeNames = append(nodeNames, name)
	}
	sort.Strings(nodeNames)
	for _, name := range nodeNames {
		if err := c.AddNode(cluster.NewNode(name, free[name])); err != nil {
			return 0, err
		}
	}

	var reqs []core.PlacementRequest
	byJob := make(map[int]*group)
	for id, g := range groups {
		if len(g.ps) == 0 || len(g.workers) == 0 {
			continue // incomplete group; wait for all pods
		}
		byJob[id] = g
		reqs = append(reqs, core.PlacementRequest{
			JobID:     id,
			Alloc:     core.Allocation{PS: len(g.ps), Workers: len(g.workers)},
			WorkerRes: g.workers[0].Resources,
			PSRes:     g.ps[0].Resources,
		})
	}
	placements, _ := core.Place(reqs, c)

	bound := 0
	for id, pl := range placements {
		g := byJob[id]
		pi, wi := 0, 0
		for i, node := range pl.NodeIDs {
			for k := 0; k < pl.PSOnNode[i]; k++ {
				if err := s.api.Bind(g.ps[pi].Name, node); err != nil {
					return bound, fmt.Errorf("kube: bind %s: %w", g.ps[pi].Name, err)
				}
				pi++
				bound++
			}
			for k := 0; k < pl.WorkersOnNode[i]; k++ {
				if err := s.api.Bind(g.workers[wi].Name, node); err != nil {
					return bound, fmt.Errorf("kube: bind %s: %w", g.workers[wi].Name, err)
				}
				wi++
				bound++
			}
		}
	}
	return bound, nil
}

// PodRunner is invoked by a node agent when a pod starts on its node; the
// returned function (may be nil) is invoked when the pod should stop.
type PodRunner func(pod Pod) (stop func())

// Kubelet is a node agent: it watches for pods bound to its node and drives
// them Pending→Running, invoking the runner (which launches the actual
// process — in our examples, a psys task).
type Kubelet struct {
	api    *APIServer
	node   string
	runner PodRunner

	mu      sync.Mutex
	stops   map[string]func()
	cancel  func()
	stopped bool
	wg      sync.WaitGroup
}

// StartKubelet launches the agent loop for one node.
func StartKubelet(api *APIServer, node string, runner PodRunner) *Kubelet {
	k := &Kubelet{api: api, node: node, runner: runner, stops: make(map[string]func())}
	events, cancel := api.Watch()
	k.cancel = cancel
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		// Handle pods bound before the watch started.
		for _, p := range api.ListPods() {
			k.handle(Event{Type: EventModified, Pod: p})
		}
		for ev := range events {
			k.handle(ev)
		}
	}()
	return k
}

func (k *Kubelet) handle(ev Event) {
	p := ev.Pod
	if p.NodeName != k.node {
		return
	}
	switch ev.Type {
	case EventModified, EventAdded:
		if p.Phase != PodPending {
			return
		}
		k.mu.Lock()
		if k.stopped {
			k.mu.Unlock()
			return
		}
		if _, running := k.stops[p.Name]; running {
			k.mu.Unlock()
			return
		}
		var stop func()
		if k.runner != nil {
			stop = k.runner(p)
		}
		if stop == nil {
			stop = func() {}
		}
		k.stops[p.Name] = stop
		k.mu.Unlock()
		// Ignore racing deletes: SetPhase fails harmlessly if the pod went
		// away between the bind event and now.
		_ = k.api.SetPhase(p.Name, PodRunning)
	case EventDeleted:
		k.mu.Lock()
		stop := k.stops[p.Name]
		delete(k.stops, p.Name)
		k.mu.Unlock()
		if stop != nil {
			stop()
		}
	}
}

// Stop terminates the agent and stops all pods it runs.
func (k *Kubelet) Stop() {
	k.mu.Lock()
	if k.stopped {
		k.mu.Unlock()
		return
	}
	k.stopped = true
	stops := make([]func(), 0, len(k.stops))
	for _, s := range k.stops {
		stops = append(stops, s)
	}
	k.stops = map[string]func(){}
	k.mu.Unlock()
	k.cancel()
	k.wg.Wait()
	for _, s := range stops {
		s()
	}
}

// WaitRunning polls until at least n pods are Running or the timeout
// elapses, returning the running count. Convenience for tests and demos.
func WaitRunning(api *APIServer, n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		running := 0
		for _, p := range api.ListPods() {
			if p.Phase == PodRunning {
				running++
			}
		}
		if running >= n || time.Now().After(deadline) {
			return running
		}
		time.Sleep(2 * time.Millisecond)
	}
}

package kube

import (
	"fmt"
	"sync"

	"optimus/internal/cluster"
)

// TrainingJob is the orchestrator-side description of one PS training job:
// a gang of PS and worker pods with shared resource profiles.
type TrainingJob struct {
	ID        int
	PS        int
	Workers   int
	PSRes     cluster.Resources
	WorkerRes cluster.Resources
}

func (j TrainingJob) validate() error {
	if j.PS <= 0 || j.Workers <= 0 {
		return fmt.Errorf("kube: job %d needs ≥1 PS and ≥1 worker", j.ID)
	}
	return nil
}

// JobController owns the pod groups of training jobs: it turns job specs
// into pods, resizes gangs when the scheduler changes a job's allocation
// (the orchestrator half of §5.4's elastic scaling — the parameters
// themselves travel via checkpoint in the training runtime), and cleans up
// on completion.
type JobController struct {
	api *APIServer

	mu   sync.Mutex
	jobs map[int]TrainingJob
}

// NewJobController builds a controller against the control plane.
func NewJobController(api *APIServer) *JobController {
	return &JobController{api: api, jobs: make(map[int]TrainingJob)}
}

func podName(jobID int, role Role, idx int) string {
	return fmt.Sprintf("job%d-%s-%d", jobID, role, idx)
}

// Submit creates the job's pod group (all pods pending until a scheduler
// binds them).
func (jc *JobController) Submit(job TrainingJob) error {
	if err := job.validate(); err != nil {
		return err
	}
	jc.mu.Lock()
	defer jc.mu.Unlock()
	if _, dup := jc.jobs[job.ID]; dup {
		return fmt.Errorf("kube: job %d already submitted", job.ID)
	}
	created := make([]string, 0, job.PS+job.Workers)
	rollback := func() {
		for _, name := range created {
			_ = jc.api.DeletePod(name) // best-effort cleanup
		}
	}
	for i := 0; i < job.PS; i++ {
		name := podName(job.ID, RolePS, i)
		if err := jc.api.CreatePod(Pod{
			Name: name, JobID: job.ID, Role: RolePS, Resources: job.PSRes,
		}); err != nil {
			rollback()
			return err
		}
		created = append(created, name)
	}
	for i := 0; i < job.Workers; i++ {
		name := podName(job.ID, RoleWorker, i)
		if err := jc.api.CreatePod(Pod{
			Name: name, JobID: job.ID, Role: RoleWorker, Resources: job.WorkerRes,
		}); err != nil {
			rollback()
			return err
		}
		created = append(created, name)
	}
	jc.jobs[job.ID] = job
	return nil
}

// Resize replaces the job's pod group with one of the new shape. Following
// §5.4's checkpoint-based method, the whole gang restarts: old pods are
// deleted (their runtime checkpoints first, in the training layer) and a
// fresh pending group is created for the scheduler's next cycle.
func (jc *JobController) Resize(jobID, newPS, newWorkers int) error {
	jc.mu.Lock()
	defer jc.mu.Unlock()
	job, ok := jc.jobs[jobID]
	if !ok {
		return fmt.Errorf("kube: no job %d", jobID)
	}
	next := job
	next.PS, next.Workers = newPS, newWorkers
	if err := next.validate(); err != nil {
		return err
	}
	if next.PS == job.PS && next.Workers == job.Workers {
		return nil // no change
	}
	if err := jc.deletePodsLocked(job); err != nil {
		return err
	}
	delete(jc.jobs, jobID)
	// Re-create with the new shape (Submit re-validates and re-registers).
	jc.mu.Unlock()
	err := jc.Submit(next)
	jc.mu.Lock()
	return err
}

// Delete removes the job and all of its pods.
func (jc *JobController) Delete(jobID int) error {
	jc.mu.Lock()
	defer jc.mu.Unlock()
	job, ok := jc.jobs[jobID]
	if !ok {
		return fmt.Errorf("kube: no job %d", jobID)
	}
	if err := jc.deletePodsLocked(job); err != nil {
		return err
	}
	delete(jc.jobs, jobID)
	return nil
}

func (jc *JobController) deletePodsLocked(job TrainingJob) error {
	for i := 0; i < job.PS; i++ {
		if err := jc.api.DeletePod(podName(job.ID, RolePS, i)); err != nil {
			return err
		}
	}
	for i := 0; i < job.Workers; i++ {
		if err := jc.api.DeletePod(podName(job.ID, RoleWorker, i)); err != nil {
			return err
		}
	}
	return nil
}

// Jobs lists the submitted jobs.
func (jc *JobController) Jobs() []TrainingJob {
	jc.mu.Lock()
	defer jc.mu.Unlock()
	out := make([]TrainingJob, 0, len(jc.jobs))
	for _, j := range jc.jobs {
		out = append(out, j)
	}
	return out
}

// Pods returns the job's current pods.
func (jc *JobController) Pods(jobID int) []Pod {
	var out []Pod
	for _, p := range jc.api.ListPods() {
		if p.JobID == jobID {
			out = append(out, p)
		}
	}
	return out
}

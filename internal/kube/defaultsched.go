package kube

import (
	"sort"

	"optimus/internal/cluster"
)

// DefaultScheduler emulates the stock Kubernetes scheduler the baselines use
// (§6.1): each pending pod is bound independently to the feasible node with
// the most free CPU (least-loaded spread), with no notion of job gangs or
// PS/worker colocation.
type DefaultScheduler struct {
	api *APIServer
}

// NewDefaultScheduler builds a spread scheduler against the control plane.
func NewDefaultScheduler(api *APIServer) *DefaultScheduler {
	return &DefaultScheduler{api: api}
}

// ScheduleOnce binds every pending pod it can and returns the count bound.
// Pods that fit nowhere stay pending.
func (s *DefaultScheduler) ScheduleOnce() (int, error) {
	pods := s.api.ListPods()
	free := s.api.FreeCapacity()

	names := make([]string, 0, len(free))
	for n := range free {
		names = append(names, n)
	}
	sort.Strings(names)

	bound := 0
	for _, p := range pods {
		if p.Phase != PodPending || p.NodeName != "" {
			continue
		}
		best := ""
		bestCPU := -1.0
		for _, n := range names {
			if !p.Resources.Fits(free[n]) {
				continue
			}
			if cpu := free[n][cluster.CPU]; cpu > bestCPU {
				best, bestCPU = n, cpu
			}
		}
		if best == "" {
			continue // stays pending
		}
		if err := s.api.Bind(p.Name, best); err != nil {
			return bound, err
		}
		free[best] = free[best].Sub(p.Resources)
		bound++
	}
	return bound, nil
}

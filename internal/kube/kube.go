// Package kube is a miniature container orchestrator modeled on the
// Kubernetes surface Optimus deploys against (§5.5): a versioned API server
// holding node and pod objects with watch streams, bind-based scheduling
// with admission control, node agents that run bound pods, and an etcd-like
// snapshot/restore path that lets a failed scheduler recover its job state.
package kube

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"optimus/internal/cluster"
)

// PodPhase is the pod lifecycle state.
type PodPhase string

// Pod lifecycle phases.
const (
	PodPending   PodPhase = "Pending"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// Role distinguishes the two task kinds of a PS training job.
type Role string

// Pod roles.
const (
	RolePS     Role = "ps"
	RoleWorker Role = "worker"
)

// Pod is one schedulable unit (a PS or worker container).
type Pod struct {
	Name      string
	JobID     int
	Role      Role
	Resources cluster.Resources
	NodeName  string // "" until bound
	Phase     PodPhase
	Version   int // resource version at last mutation
}

// Node is one registered server.
type Node struct {
	Name     string
	Capacity cluster.Resources
}

// EventType classifies watch events.
type EventType string

// Watch event types.
const (
	EventAdded    EventType = "ADDED"
	EventModified EventType = "MODIFIED"
	EventDeleted  EventType = "DELETED"
)

// Event is one watch notification.
type Event struct {
	Type EventType
	Pod  Pod
}

// APIServer is the cluster control plane: a versioned object store with
// watches and admission-checked pod binding.
type APIServer struct {
	mu       sync.Mutex
	version  int
	nodes    map[string]*Node
	pods     map[string]*Pod
	watchers map[int]chan Event
	nextW    int
}

// NewAPIServer returns an empty control plane.
func NewAPIServer() *APIServer {
	return &APIServer{
		nodes:    make(map[string]*Node),
		pods:     make(map[string]*Pod),
		watchers: make(map[int]chan Event),
	}
}

// RegisterNode adds a node; duplicate names are rejected.
func (a *APIServer) RegisterNode(n Node) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.nodes[n.Name]; dup {
		return fmt.Errorf("kube: node %q exists", n.Name)
	}
	a.nodes[n.Name] = &n
	return nil
}

// CreatePod admits a new pending pod.
func (a *APIServer) CreatePod(p Pod) error {
	if p.Name == "" {
		return fmt.Errorf("kube: pod has no name")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.pods[p.Name]; dup {
		return fmt.Errorf("kube: pod %q exists", p.Name)
	}
	p.Phase = PodPending
	p.NodeName = ""
	a.version++
	p.Version = a.version
	a.pods[p.Name] = &p
	a.notifyLocked(Event{Type: EventAdded, Pod: p})
	return nil
}

// DeletePod removes a pod (any phase).
func (a *APIServer) DeletePod(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pods[name]
	if !ok {
		return fmt.Errorf("kube: no pod %q", name)
	}
	delete(a.pods, name)
	a.version++
	ev := *p
	ev.Version = a.version
	a.notifyLocked(Event{Type: EventDeleted, Pod: ev})
	return nil
}

// Bind assigns a pending pod to a node after an admission check against the
// node's free capacity (sum of resources of pods already bound there).
func (a *APIServer) Bind(podName, nodeName string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pods[podName]
	if !ok {
		return fmt.Errorf("kube: no pod %q", podName)
	}
	if p.NodeName != "" {
		return fmt.Errorf("kube: pod %q already bound to %q", podName, p.NodeName)
	}
	n, ok := a.nodes[nodeName]
	if !ok {
		return fmt.Errorf("kube: no node %q", nodeName)
	}
	free := n.Capacity
	for _, other := range a.pods {
		if other.NodeName == nodeName && other.Phase != PodSucceeded && other.Phase != PodFailed {
			free = free.Sub(other.Resources)
		}
	}
	if !p.Resources.Fits(free) {
		return fmt.Errorf("kube: pod %q (%v) does not fit node %q (free %v)",
			podName, p.Resources, nodeName, free)
	}
	p.NodeName = nodeName
	a.version++
	p.Version = a.version
	a.notifyLocked(Event{Type: EventModified, Pod: *p})
	return nil
}

// SetPhase transitions a pod's phase (used by node agents).
func (a *APIServer) SetPhase(podName string, phase PodPhase) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pods[podName]
	if !ok {
		return fmt.Errorf("kube: no pod %q", podName)
	}
	p.Phase = phase
	a.version++
	p.Version = a.version
	a.notifyLocked(Event{Type: EventModified, Pod: *p})
	return nil
}

// GetPod returns a snapshot of one pod.
func (a *APIServer) GetPod(name string) (Pod, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pods[name]
	if !ok {
		return Pod{}, false
	}
	return *p, true
}

// ListPods returns pod snapshots sorted by name.
func (a *APIServer) ListPods() []Pod {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Pod, 0, len(a.pods))
	for _, p := range a.pods {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ListNodes returns node snapshots sorted by name.
func (a *APIServer) ListNodes() []Node {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Node, 0, len(a.nodes))
	for _, n := range a.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FreeCapacity reports each node's unallocated resources.
func (a *APIServer) FreeCapacity() map[string]cluster.Resources {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]cluster.Resources, len(a.nodes))
	for name, n := range a.nodes {
		out[name] = n.Capacity
	}
	for _, p := range a.pods {
		if p.NodeName != "" && p.Phase != PodSucceeded && p.Phase != PodFailed {
			out[p.NodeName] = out[p.NodeName].Sub(p.Resources)
		}
	}
	return out
}

// Watch subscribes to pod events; cancel() unsubscribes and closes the
// channel. Slow consumers drop events rather than blocking the control
// plane (the channel is buffered).
func (a *APIServer) Watch() (<-chan Event, func()) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ch := make(chan Event, 256)
	id := a.nextW
	a.nextW++
	a.watchers[id] = ch
	cancel := func() {
		a.mu.Lock()
		defer a.mu.Unlock()
		if c, ok := a.watchers[id]; ok {
			delete(a.watchers, id)
			close(c)
		}
	}
	return ch, cancel
}

func (a *APIServer) notifyLocked(ev Event) {
	for _, ch := range a.watchers {
		select {
		case ch <- ev:
		default: // drop for slow consumers
		}
	}
}

// snapshotState is the etcd-persisted representation.
type snapshotState struct {
	Version int
	Nodes   []Node
	Pods    []Pod
}

// Snapshot serializes the control-plane state — the etcd write of §5.5.
func (a *APIServer) Snapshot() ([]byte, error) {
	a.mu.Lock()
	st := snapshotState{Version: a.version}
	for _, n := range a.nodes {
		st.Nodes = append(st.Nodes, *n)
	}
	for _, p := range a.pods {
		st.Pods = append(st.Pods, *p)
	}
	a.mu.Unlock()
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Name < st.Nodes[j].Name })
	sort.Slice(st.Pods, func(i, j int) bool { return st.Pods[i].Name < st.Pods[j].Name })
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("kube: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore rebuilds a control plane from a snapshot (scheduler recovery path:
// Kubernetes restarts the scheduler, which reloads job state from etcd).
func Restore(data []byte) (*APIServer, error) {
	var st snapshotState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("kube: restore: %w", err)
	}
	a := NewAPIServer()
	a.version = st.Version
	for _, n := range st.Nodes {
		node := n
		a.nodes[n.Name] = &node
	}
	for _, p := range st.Pods {
		pod := p
		a.pods[p.Name] = &pod
	}
	return a, nil
}

// DrainNode removes a node from the cluster: every live pod bound to it is
// reset to pending/unbound so a scheduler can re-place it elsewhere — the
// control-plane half of recovering from a server failure. Finished pods are
// left untouched.
func (a *APIServer) DrainNode(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.nodes[name]; !ok {
		return fmt.Errorf("kube: no node %q", name)
	}
	delete(a.nodes, name)
	for _, p := range a.pods {
		if p.NodeName != name || p.Phase == PodSucceeded || p.Phase == PodFailed {
			continue
		}
		p.NodeName = ""
		p.Phase = PodPending
		a.version++
		p.Version = a.version
		a.notifyLocked(Event{Type: EventModified, Pod: *p})
	}
	return nil
}

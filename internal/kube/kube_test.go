package kube

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"optimus/internal/cluster"
)

func res(cpu, mem float64) cluster.Resources {
	return cluster.Resources{cluster.CPU: cpu, cluster.Memory: mem}
}

func newTestCluster(t *testing.T, nodes int) *APIServer {
	t.Helper()
	api := NewAPIServer()
	for i := 0; i < nodes; i++ {
		if err := api.RegisterNode(Node{
			Name: fmt.Sprintf("n%d", i), Capacity: res(16, 64),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return api
}

func TestPodLifecycle(t *testing.T) {
	api := newTestCluster(t, 1)
	pod := Pod{Name: "w0", JobID: 1, Role: RoleWorker, Resources: res(4, 8)}
	if err := api.CreatePod(pod); err != nil {
		t.Fatal(err)
	}
	if err := api.CreatePod(pod); err == nil {
		t.Error("duplicate pod accepted")
	}
	if err := api.CreatePod(Pod{}); err == nil {
		t.Error("nameless pod accepted")
	}
	got, ok := api.GetPod("w0")
	if !ok || got.Phase != PodPending || got.NodeName != "" {
		t.Errorf("GetPod = %+v, %v", got, ok)
	}
	if err := api.Bind("w0", "n0"); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("w0", "n0"); err == nil {
		t.Error("double bind accepted")
	}
	if err := api.SetPhase("w0", PodRunning); err != nil {
		t.Fatal(err)
	}
	if err := api.DeletePod("w0"); err != nil {
		t.Fatal(err)
	}
	if err := api.DeletePod("w0"); err == nil {
		t.Error("double delete accepted")
	}
	if _, ok := api.GetPod("w0"); ok {
		t.Error("pod survives delete")
	}
}

func TestBindAdmissionControl(t *testing.T) {
	api := newTestCluster(t, 1)
	if err := api.CreatePod(Pod{Name: "big", Resources: res(12, 32)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("big", "n0"); err != nil {
		t.Fatal(err)
	}
	if err := api.CreatePod(Pod{Name: "big2", Resources: res(12, 32)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("big2", "n0"); err == nil {
		t.Error("overcommit bind accepted")
	}
	if err := api.Bind("big2", "missing"); err == nil {
		t.Error("bind to unknown node accepted")
	}
	if err := api.Bind("missing", "n0"); err == nil {
		t.Error("bind of unknown pod accepted")
	}
	// Finished pods release capacity.
	if err := api.SetPhase("big", PodSucceeded); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("big2", "n0"); err != nil {
		t.Errorf("bind after completion failed: %v", err)
	}
}

func TestFreeCapacity(t *testing.T) {
	api := newTestCluster(t, 2)
	if err := api.CreatePod(Pod{Name: "a", Resources: res(4, 8)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("a", "n0"); err != nil {
		t.Fatal(err)
	}
	free := api.FreeCapacity()
	if free["n0"][cluster.CPU] != 12 || free["n1"][cluster.CPU] != 16 {
		t.Errorf("FreeCapacity = %v", free)
	}
}

func TestWatchDeliversEvents(t *testing.T) {
	api := newTestCluster(t, 1)
	events, cancel := api.Watch()
	defer cancel()
	if err := api.CreatePod(Pod{Name: "w", Resources: res(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("w", "n0"); err != nil {
		t.Fatal(err)
	}
	if err := api.DeletePod("w"); err != nil {
		t.Fatal(err)
	}
	want := []EventType{EventAdded, EventModified, EventDeleted}
	for _, w := range want {
		select {
		case ev := <-events:
			if ev.Type != w {
				t.Errorf("event %v, want %v", ev.Type, w)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for %v", w)
		}
	}
	cancel()
	cancel() // idempotent
}

func TestSnapshotRestore(t *testing.T) {
	api := newTestCluster(t, 2)
	if err := api.CreatePod(Pod{Name: "p", JobID: 7, Role: RolePS, Resources: res(2, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("p", "n1"); err != nil {
		t.Fatal(err)
	}
	snap, err := api.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restored.GetPod("p")
	if !ok || got.NodeName != "n1" || got.JobID != 7 {
		t.Errorf("restored pod = %+v, %v", got, ok)
	}
	if len(restored.ListNodes()) != 2 {
		t.Errorf("restored %d nodes", len(restored.ListNodes()))
	}
	if _, err := Restore([]byte("garbage")); err == nil {
		t.Error("Restore accepted garbage")
	}
}

func TestOptimusSchedulerBindsJobGroups(t *testing.T) {
	api := newTestCluster(t, 3)
	// Job 1: 2 PS + 4 workers, each node fits 2 of each.
	for i := 0; i < 2; i++ {
		if err := api.CreatePod(Pod{
			Name: fmt.Sprintf("j1-ps-%d", i), JobID: 1, Role: RolePS,
			Resources: res(3, 8),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := api.CreatePod(Pod{
			Name: fmt.Sprintf("j1-w-%d", i), JobID: 1, Role: RoleWorker,
			Resources: res(5, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewOptimusScheduler(api)
	bound, err := s.ScheduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	if bound != 6 {
		t.Fatalf("bound %d pods, want 6", bound)
	}
	// All on as few nodes as possible (Theorem 1): 2ps+4w = 26 CPU → 2 nodes.
	nodes := map[string]bool{}
	for _, p := range api.ListPods() {
		if p.NodeName == "" {
			t.Errorf("pod %s unbound", p.Name)
		}
		nodes[p.NodeName] = true
	}
	if len(nodes) > 2 {
		t.Errorf("job spread over %d nodes, want ≤ 2", len(nodes))
	}
	// Idempotent second cycle.
	if n, err := s.ScheduleOnce(); err != nil || n != 0 {
		t.Errorf("second cycle bound %d (%v), want 0", n, err)
	}
}

func TestSchedulerWaitsForCompleteGroups(t *testing.T) {
	api := newTestCluster(t, 2)
	// Only workers so far — no PS yet: nothing should bind.
	if err := api.CreatePod(Pod{Name: "w", JobID: 1, Role: RoleWorker, Resources: res(5, 10)}); err != nil {
		t.Fatal(err)
	}
	s := NewOptimusScheduler(api)
	if n, err := s.ScheduleOnce(); err != nil || n != 0 {
		t.Errorf("bound %d (%v), want 0 for incomplete group", n, err)
	}
}

func TestKubeletRunsAndStopsPods(t *testing.T) {
	api := newTestCluster(t, 1)
	var mu sync.Mutex
	started, stopped := 0, 0
	runner := func(p Pod) func() {
		mu.Lock()
		started++
		mu.Unlock()
		return func() {
			mu.Lock()
			stopped++
			mu.Unlock()
		}
	}
	k := StartKubelet(api, "n0", runner)
	defer k.Stop()

	if err := api.CreatePod(Pod{Name: "t", JobID: 1, Role: RoleWorker, Resources: res(2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("t", "n0"); err != nil {
		t.Fatal(err)
	}
	if got := WaitRunning(api, 1, 2*time.Second); got != 1 {
		t.Fatalf("running pods = %d, want 1", got)
	}
	mu.Lock()
	if started != 1 {
		t.Errorf("started = %d, want 1", started)
	}
	mu.Unlock()

	if err := api.DeletePod("t"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := stopped
		mu.Unlock()
		if s == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pod stop callback never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestKubeletIgnoresOtherNodes(t *testing.T) {
	api := newTestCluster(t, 2)
	var mu sync.Mutex
	started := 0
	k := StartKubelet(api, "n0", func(p Pod) func() {
		mu.Lock()
		started++
		mu.Unlock()
		return nil
	})
	defer k.Stop()
	if err := api.CreatePod(Pod{Name: "x", Resources: res(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := api.Bind("x", "n1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if started != 0 {
		t.Errorf("kubelet for n0 started %d pods bound to n1", started)
	}
}

// End-to-end recovery: scheduler state survives a snapshot/restore cycle and
// a fresh scheduler continues binding (the §5.5 fault-tolerance story).
func TestSchedulerRecovery(t *testing.T) {
	api := newTestCluster(t, 2)
	mk := func(name string, role Role) {
		if err := api.CreatePod(Pod{Name: name, JobID: 1, Role: role, Resources: res(4, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	mk("ps0", RolePS)
	mk("w0", RoleWorker)
	snap, err := api.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": throw away everything, restore from etcd, reschedule.
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	s := NewOptimusScheduler(restored)
	bound, err := s.ScheduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	if bound != 2 {
		t.Errorf("recovered scheduler bound %d pods, want 2", bound)
	}
}

func TestDefaultSchedulerSpreads(t *testing.T) {
	api := newTestCluster(t, 3)
	for i := 0; i < 3; i++ {
		if err := api.CreatePod(Pod{
			Name: fmt.Sprintf("p%d", i), JobID: 1, Role: RoleWorker,
			Resources: res(5, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewDefaultScheduler(api)
	bound, err := s.ScheduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	if bound != 3 {
		t.Fatalf("bound %d, want 3", bound)
	}
	// Spread: one pod per node (least-loaded first).
	nodes := map[string]int{}
	for _, p := range api.ListPods() {
		nodes[p.NodeName]++
	}
	if len(nodes) != 3 {
		t.Errorf("default scheduler used %d nodes, want 3 (spread)", len(nodes))
	}
}

func TestDefaultSchedulerLeavesUnfittablePending(t *testing.T) {
	api := newTestCluster(t, 1)
	if err := api.CreatePod(Pod{Name: "huge", Resources: res(99, 99)}); err != nil {
		t.Fatal(err)
	}
	s := NewDefaultScheduler(api)
	bound, err := s.ScheduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	if bound != 0 {
		t.Errorf("bound %d, want 0", bound)
	}
	p, _ := api.GetPod("huge")
	if p.Phase != PodPending || p.NodeName != "" {
		t.Errorf("unfittable pod = %+v, want pending/unbound", p)
	}
}

// The two schedulers differ exactly as §4.2 predicts: for one job's pod
// group, Optimus packs onto the fewest servers while the default spreads.
func TestOptimusVsDefaultPlacementShape(t *testing.T) {
	mkCluster := func() *APIServer {
		api := newTestCluster(t, 4)
		for i := 0; i < 2; i++ {
			if err := api.CreatePod(Pod{
				Name: fmt.Sprintf("ps%d", i), JobID: 1, Role: RolePS,
				Resources: res(3, 8),
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2; i++ {
			if err := api.CreatePod(Pod{
				Name: fmt.Sprintf("w%d", i), JobID: 1, Role: RoleWorker,
				Resources: res(5, 10),
			}); err != nil {
				t.Fatal(err)
			}
		}
		return api
	}
	usedNodes := func(api *APIServer) int {
		nodes := map[string]bool{}
		for _, p := range api.ListPods() {
			if p.NodeName != "" {
				nodes[p.NodeName] = true
			}
		}
		return len(nodes)
	}
	optAPI := mkCluster()
	if _, err := NewOptimusScheduler(optAPI).ScheduleOnce(); err != nil {
		t.Fatal(err)
	}
	defAPI := mkCluster()
	if _, err := NewDefaultScheduler(defAPI).ScheduleOnce(); err != nil {
		t.Fatal(err)
	}
	opt, def := usedNodes(optAPI), usedNodes(defAPI)
	if opt >= def {
		t.Errorf("optimus used %d nodes, default %d; want fewer for optimus", opt, def)
	}
}

func TestDrainNodeReschedulesPods(t *testing.T) {
	api := newTestCluster(t, 2)
	for i := 0; i < 2; i++ {
		if err := api.CreatePod(Pod{
			Name: fmt.Sprintf("d%d", i), JobID: 1,
			Role: RoleWorker, Resources: res(5, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := api.CreatePod(Pod{Name: "dps", JobID: 1, Role: RolePS, Resources: res(3, 8)}); err != nil {
		t.Fatal(err)
	}
	s := NewOptimusScheduler(api)
	if _, err := s.ScheduleOnce(); err != nil {
		t.Fatal(err)
	}
	// Find the node hosting pods and drain it.
	var victim string
	for _, p := range api.ListPods() {
		if p.NodeName != "" {
			victim = p.NodeName
			break
		}
	}
	if victim == "" {
		t.Fatal("nothing was scheduled")
	}
	if err := api.DrainNode(victim); err != nil {
		t.Fatal(err)
	}
	if err := api.DrainNode(victim); err == nil {
		t.Error("double drain accepted")
	}
	if len(api.ListNodes()) != 1 {
		t.Errorf("nodes after drain = %d, want 1", len(api.ListNodes()))
	}
	// The drained pods are pending again; rescheduling places them on the
	// survivor (capacity permitting).
	bound, err := s.ScheduleOnce()
	if err != nil {
		t.Fatal(err)
	}
	if bound == 0 {
		t.Error("nothing rescheduled after drain")
	}
	for _, p := range api.ListPods() {
		if p.NodeName == victim {
			t.Errorf("pod %s still on drained node", p.Name)
		}
	}
}

package kube

import (
	"testing"
)

func submitTestJob(t *testing.T, jc *JobController, id, ps, w int) {
	t.Helper()
	err := jc.Submit(TrainingJob{
		ID: id, PS: ps, Workers: w,
		PSRes:     res(3, 8),
		WorkerRes: res(5, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestJobControllerSubmit(t *testing.T) {
	api := newTestCluster(t, 2)
	jc := NewJobController(api)
	submitTestJob(t, jc, 1, 2, 3)
	pods := jc.Pods(1)
	if len(pods) != 5 {
		t.Fatalf("created %d pods, want 5", len(pods))
	}
	ps, w := 0, 0
	for _, p := range pods {
		if p.Phase != PodPending {
			t.Errorf("pod %s phase %s, want Pending", p.Name, p.Phase)
		}
		if p.Role == RolePS {
			ps++
		} else {
			w++
		}
	}
	if ps != 2 || w != 3 {
		t.Errorf("roles = %dps/%dw, want 2/3", ps, w)
	}
	if err := jc.Submit(TrainingJob{ID: 1, PS: 1, Workers: 1}); err == nil {
		t.Error("duplicate submission accepted")
	}
	if err := jc.Submit(TrainingJob{ID: 2, PS: 0, Workers: 1}); err == nil {
		t.Error("zero-PS job accepted")
	}
	if len(jc.Jobs()) != 1 {
		t.Errorf("Jobs() = %d, want 1", len(jc.Jobs()))
	}
}

func TestJobControllerResize(t *testing.T) {
	api := newTestCluster(t, 3)
	jc := NewJobController(api)
	submitTestJob(t, jc, 1, 1, 2)
	// Bind the initial group so we can verify the resize recreates pods.
	if _, err := NewOptimusScheduler(api).ScheduleOnce(); err != nil {
		t.Fatal(err)
	}
	if err := jc.Resize(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	pods := jc.Pods(1)
	if len(pods) != 6 {
		t.Fatalf("after resize: %d pods, want 6", len(pods))
	}
	for _, p := range pods {
		if p.NodeName != "" || p.Phase != PodPending {
			t.Errorf("resized pod %s should be pending/unbound, got %s on %q",
				p.Name, p.Phase, p.NodeName)
		}
	}
	// No-op resize keeps pods as-is.
	if err := jc.Resize(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	if got := len(jc.Pods(1)); got != 6 {
		t.Errorf("no-op resize changed pod count to %d", got)
	}
	if err := jc.Resize(99, 1, 1); err == nil {
		t.Error("resize of unknown job accepted")
	}
	if err := jc.Resize(1, 0, 1); err == nil {
		t.Error("resize to zero PS accepted")
	}
}

func TestJobControllerDelete(t *testing.T) {
	api := newTestCluster(t, 2)
	jc := NewJobController(api)
	submitTestJob(t, jc, 1, 1, 1)
	if err := jc.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := len(jc.Pods(1)); got != 0 {
		t.Errorf("pods after delete = %d", got)
	}
	if err := jc.Delete(1); err == nil {
		t.Error("double delete accepted")
	}
}

// End-to-end reschedule cycle: submit → schedule → resize → schedule again —
// the §5.4 elastic loop seen from the orchestrator.
func TestJobControllerElasticCycle(t *testing.T) {
	api := newTestCluster(t, 3)
	jc := NewJobController(api)
	sched := NewOptimusScheduler(api)

	submitTestJob(t, jc, 7, 1, 2)
	if n, err := sched.ScheduleOnce(); err != nil || n != 3 {
		t.Fatalf("initial schedule bound %d (%v), want 3", n, err)
	}
	if err := jc.Resize(7, 2, 3); err != nil {
		t.Fatal(err)
	}
	if n, err := sched.ScheduleOnce(); err != nil || n != 5 {
		t.Fatalf("post-resize schedule bound %d (%v), want 5", n, err)
	}
	for _, p := range jc.Pods(7) {
		if p.NodeName == "" {
			t.Errorf("pod %s unbound after reschedule", p.Name)
		}
	}
}

package nnls

import (
	"math"
	"math/rand"
	"testing"
)

// randWellPosed builds an overdetermined full-rank problem whose solution has
// a mix of active and inactive coordinates: a Gaussian matrix with rows ≫
// cols is almost surely full rank, and rhs = A·x* + ε for a sparse
// non-negative x*.
func randWellPosed(r *rand.Rand) (*Matrix, []float64) {
	cols := 2 + r.Intn(8)
	rows := 3*cols + r.Intn(40)
	a := NewMatrix(rows, cols)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	truth := make([]float64, cols)
	for j := range truth {
		if r.Intn(2) == 0 {
			truth[j] = r.Float64() * 3
		}
	}
	b := make([]float64, rows)
	for i := 0; i < rows; i++ {
		var dot float64
		for j := 0; j < cols; j++ {
			dot += a.Data[i*cols+j] * truth[j]
		}
		b[i] = dot + 0.01*r.NormFloat64()
	}
	return a, b
}

// TestWarmStartMatchesCold reuses one workspace across a stream of unrelated
// well-posed problems and requires every warm-started solve to agree with a
// cold start: same solution and residual within solver tolerance. Carrying
// the previous problem's passive set into the next (wrong) problem is exactly
// the situation the warm path's feasibility check must survive.
func TestWarmStartMatchesCold(t *testing.T) {
	ws := NewWorkspace()
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a, b := randWellPosed(r)
		wx, wres, werr := ws.Solve(a, b)
		cx, cres, cerr := Solve(a, b)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("trial %d: warm err %v, cold err %v", trial, werr, cerr)
		}
		if werr != nil {
			continue
		}
		tol := 1e-6 * (1 + Norm2(b))
		if math.Abs(wres-cres) > tol {
			t.Fatalf("trial %d: warm residual %v vs cold %v", trial, wres, cres)
		}
		for j := range wx {
			if math.Abs(wx[j]-cx[j]) > tol {
				t.Fatalf("trial %d: x[%d] warm %v vs cold %v", trial, j, wx[j], cx[j])
			}
		}
	}
}

// TestWarmStartRefitSequence drives the caller pattern the warm start is
// built for: the same regression problem growing by one observation row per
// step. Each warm refit must match a cold solve of the identical problem.
func TestWarmStartRefitSequence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const cols, startRows, steps = 5, 20, 60
	truth := []float64{2, 0, 1.5, 0, 0.7}
	row := func(dst []float64) float64 {
		var dot float64
		for j := range dst {
			dst[j] = r.NormFloat64()
			dot += dst[j] * truth[j]
		}
		return dot + 0.01*r.NormFloat64()
	}
	a := NewMatrix(startRows, cols)
	b := make([]float64, startRows)
	for i := 0; i < startRows; i++ {
		b[i] = row(a.Data[i*cols : (i+1)*cols])
	}
	ws := NewWorkspace()
	for step := 0; step < steps; step++ {
		wx, wres, werr := ws.Solve(a, b)
		cx, cres, cerr := Solve(a, b)
		if werr != nil || cerr != nil {
			t.Fatalf("step %d: warm err %v, cold err %v", step, werr, cerr)
		}
		tol := 1e-6 * (1 + Norm2(b))
		if math.Abs(wres-cres) > tol {
			t.Fatalf("step %d: warm residual %v vs cold %v", step, wres, cres)
		}
		for j := range wx {
			if math.Abs(wx[j]-cx[j]) > tol {
				t.Fatalf("step %d: x[%d] warm %v vs cold %v", step, j, wx[j], cx[j])
			}
		}
		newRow := make([]float64, cols)
		b = append(b, row(newRow))
		a.Data = append(a.Data, newRow...)
		a.Rows++
	}
}

// TestWorkspaceSolveAllocationFree pins down the workspace contract: after
// the first solve sized the buffers, repeat solves of same-shaped problems
// allocate nothing.
func TestWorkspaceSolveAllocationFree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randWellPosed(r)
	ws := NewWorkspace()
	if _, _, err := ws.Solve(a, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := ws.Solve(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Workspace.Solve allocated %.1f times per run, want 0", allocs)
	}
}

package nnls

import (
	"errors"
	"math"
)

// ErrRankDeficient is returned when the coefficient matrix does not have full
// column rank and a unique least-squares solution does not exist.
var ErrRankDeficient = errors.New("nnls: matrix is rank deficient")

// LeastSquares solves min‖A·x − b‖₂ for a full-column-rank A (Rows ≥ Cols)
// using Householder QR factorization. A and b are not modified.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, errors.New("nnls: rhs length mismatch")
	}
	qr := a.Clone()
	rhs := make([]float64, len(b))
	copy(rhs, b)
	diag := make([]float64, a.Cols)
	x := make([]float64, a.Cols)
	if err := lstsqInPlace(qr, diag, rhs, x); err != nil {
		return nil, err
	}
	return x, nil
}

// lstsqInPlace is the allocation-free core of LeastSquares: it factorizes qr
// in place (reflector vectors in the lower triangle, R diagonal in diag),
// destroys rhs, and writes the solution into x (length qr.Cols). The
// operation sequence is bit-identical to the historical implementation that
// stashed the diagonal in a shadow segment of the Data slice.
func lstsqInPlace(qr *Matrix, diag, rhs, x []float64) error {
	if qr.Rows < qr.Cols {
		return errors.New("nnls: underdetermined system (rows < cols)")
	}
	if len(rhs) != qr.Rows {
		return errors.New("nnls: rhs length mismatch")
	}
	m, n := qr.Rows, qr.Cols

	// Relative tolerance for declaring a pivot column numerically zero.
	var scale float64
	for _, v := range qr.Data[:m*n] {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	rankTol := 2.2e-16 * scale * float64(m) * 16

	for k := 0; k < n; k++ {
		// Compute the Householder reflector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm <= rankTol {
			return ErrRankDeficient
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)

		// Apply the reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		// Apply the reflector to the right-hand side.
		var s float64
		for i := k; i < m; i++ {
			s += qr.At(i, k) * rhs[i]
		}
		s = -s / qr.At(k, k)
		for i := k; i < m; i++ {
			rhs[i] += s * qr.At(i, k)
		}
		// The reflector occupies the lower triangle including the diagonal
		// position, so R's diagonal (-norm) lives in a separate slice.
		diag[k] = -norm
	}

	// Back substitution on R (upper triangle of qr with diagonal in diag).
	for k := n - 1; k >= 0; k-- {
		s := rhs[k]
		for j := k + 1; j < n; j++ {
			s -= qr.At(k, j) * x[j]
		}
		d := diag[k]
		if d == 0 || math.Abs(d) < 1e-300 {
			return ErrRankDeficient
		}
		x[k] = s / d
	}
	return nil
}

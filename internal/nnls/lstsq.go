package nnls

import (
	"errors"
	"math"
)

// ErrRankDeficient is returned when the coefficient matrix does not have full
// column rank and a unique least-squares solution does not exist.
var ErrRankDeficient = errors.New("nnls: matrix is rank deficient")

// LeastSquares solves min‖A·x − b‖₂ for a full-column-rank A (Rows ≥ Cols)
// using Householder QR factorization. A and b are not modified.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("nnls: underdetermined system (rows < cols)")
	}
	if len(b) != a.Rows {
		return nil, errors.New("nnls: rhs length mismatch")
	}
	qr := a.Clone()
	rhs := make([]float64, len(b))
	copy(rhs, b)

	m, n := qr.Rows, qr.Cols

	// Relative tolerance for declaring a pivot column numerically zero.
	var scale float64
	for _, v := range qr.Data[:m*n] {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	rankTol := 2.2e-16 * scale * float64(m) * 16

	for k := 0; k < n; k++ {
		// Compute the Householder reflector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm <= rankTol {
			return nil, ErrRankDeficient
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)

		// Apply the reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		// Apply the reflector to the right-hand side.
		var s float64
		for i := k; i < m; i++ {
			s += qr.At(i, k) * rhs[i]
		}
		s = -s / qr.At(k, k)
		for i := k; i < m; i++ {
			rhs[i] += s * qr.At(i, k)
		}
		// Store -norm as R[k][k] implicitly via the diagonal sign trick:
		// we keep the reflector in the lower triangle; the R diagonal is -norm.
		// Record it by negating later during back substitution.
		qrDiagSet(qr, k, -norm)
	}

	// Back substitution on R (upper triangle of qr with diagonal in rdiag).
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := rhs[k]
		for j := k + 1; j < n; j++ {
			s -= qr.At(k, j) * x[j]
		}
		d := qrDiag(qr, k)
		if d == 0 || math.Abs(d) < 1e-300 {
			return nil, ErrRankDeficient
		}
		x[k] = s / d
	}
	return x, nil
}

// The QR loop needs to stash the R diagonal somewhere without disturbing the
// reflector vectors stored in the lower triangle (which include the diagonal
// position). We append a shadow diagonal to the matrix's Data slice.
func qrDiagSet(m *Matrix, k int, v float64) {
	need := m.Rows*m.Cols + m.Cols
	if cap(m.Data) < need {
		data := make([]float64, need)
		copy(data, m.Data)
		m.Data = data
	} else {
		m.Data = m.Data[:need]
	}
	m.Data[m.Rows*m.Cols+k] = v
}

func qrDiag(m *Matrix, k int) float64 {
	return m.Data[m.Rows*m.Cols+k]
}

package nnls

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system: x = (2, -3).
	a, err := FromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
		{2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3}
	b := a.MulVec(want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Classic line fit: y = 1 + 2t with noise-free data.
	ts := []float64{0, 1, 2, 3, 4}
	rows := make([][]float64, len(ts))
	b := make([]float64, len(ts))
	for i, tv := range ts {
		rows[i] = []float64{1, tv}
		b[i] = 1 + 2*tv
	}
	a, _ := FromRows(rows)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Errorf("got intercept %g slope %g, want 1 2", x[0], x[1])
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected rank-deficiency error")
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Fatal("expected error for rows < cols")
	}
}

func TestNNLSMatchesUnconstrainedWhenInterior(t *testing.T) {
	// Solution strictly positive → NNLS must equal plain least squares.
	a, _ := FromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
	})
	want := []float64{1.5, 2.5}
	b := a.MulVec(want)
	x, res, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-8) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	if res > 1e-8 {
		t.Errorf("residual = %g, want ~0", res)
	}
}

func TestNNLSClampsNegativeComponent(t *testing.T) {
	// The unconstrained solution has a negative coordinate; NNLS must clamp
	// it to zero and solve the reduced problem.
	a, _ := FromRows([][]float64{
		{1, 1},
		{1, -1},
	})
	b := []float64{1, 3} // unconstrained solution: (2, -1)
	x, _, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != 0 {
		t.Errorf("x[1] = %g, want 0", x[1])
	}
	// Reduced problem min (x0-1)^2 + (x0-3)^2 → x0 = 2.
	if !almostEqual(x[0], 2, 1e-8) {
		t.Errorf("x[0] = %g, want 2", x[0])
	}
}

func TestNNLSZeroRHS(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x, res, err := Solve(a, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %g, want 0", i, v)
		}
	}
	if res != 0 {
		t.Errorf("residual = %g, want 0", res)
	}
}

func TestNNLSKnownProblem(t *testing.T) {
	// Documented example (matches scipy.optimize.nnls):
	// A = [[1,0],[1,0],[0,1]], b = [2,1,1] → x = (1.5, 1).
	a, _ := FromRows([][]float64{{1, 0}, {1, 0}, {0, 1}})
	x, _, err := Solve(a, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1.5, 1e-9) || !almostEqual(x[1], 1, 1e-9) {
		t.Errorf("x = %v, want [1.5 1]", x)
	}
}

// Property: NNLS solutions are always non-negative and never beat the
// unconstrained optimum, but always do at least as well as the zero vector.
func TestNNLSProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 4 + r.Intn(12)
		cols := 1 + r.Intn(4)
		if cols > rows {
			cols = rows
		}
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, res, err := Solve(a, b)
		if err != nil {
			return false
		}
		for _, v := range x {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		zeroRes := Norm2(b)
		if res > zeroRes+1e-9 {
			return false // worse than doing nothing
		}
		// The returned residual must agree with a recomputation.
		return almostEqual(res, a.ResidualNorm(x, b), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: for problems whose true solution is non-negative and consistent,
// NNLS recovers it (residual ≈ 0).
func TestNNLSRecoversNonNegativeSolutions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 6 + r.Intn(10)
		cols := 1 + r.Intn(4)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		want := make([]float64, cols)
		for i := range want {
			want[i] = math.Abs(r.NormFloat64())
		}
		b := a.MulVec(want)
		x, res, err := Solve(a, b)
		if err != nil {
			return false
		}
		if res > 1e-6*(1+Norm2(b)) {
			return false
		}
		_ = x
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: KKT conditions hold at the solution: for x_j > 0 the gradient
// component is ~0; for x_j = 0 it is ≥ -tol.
func TestNNLSKKT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 8 + r.Intn(8)
		cols := 2 + r.Intn(3)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64() * 3
		}
		x, _, err := Solve(a, b)
		if err != nil {
			return false
		}
		// gradient of ½‖Ax−b‖² is Aᵀ(Ax−b); w = −gradient.
		w := a.TransMulVec(a.Residual(x, b))
		for j := range x {
			if x[j] > 1e-9 {
				if math.Abs(w[j]) > 1e-6 {
					return false
				}
			} else if w[j] > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(1, 0); got != 3 {
		t.Errorf("At(1,0) = %g, want 3", got)
	}
	m.Set(1, 0, 7)
	if got := m.At(1, 0); got != 7 {
		t.Errorf("after Set, At(1,0) = %g, want 7", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone aliases original storage")
	}
	v := m.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 11 {
		t.Errorf("MulVec = %v, want [3 11]", v)
	}
	tv := m.TransMulVec([]float64{1, 1})
	if tv[0] != 8 || tv[1] != 6 {
		t.Errorf("TransMulVec = %v, want [8 6]", tv)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %g, want 0", got)
	}
	// Overflow guard: huge components.
	big := 1e200
	if got := Norm2([]float64{big, big}); math.IsInf(got, 1) {
		t.Error("Norm2 overflowed")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func BenchmarkNNLSSmall(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := NewMatrix(30, 5)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	rhs := make([]float64, 30)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

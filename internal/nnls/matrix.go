// Package nnls provides dense least-squares solvers used by the Optimus
// performance models: an unconstrained solver based on Householder QR and a
// non-negative least-squares (NNLS) solver implementing the classical
// Lawson–Hanson active-set algorithm.
//
// The package replaces the SciPy NNLS routine the paper uses for fitting both
// the loss-curve model (§3.1) and the resource→speed models (§3.2). Only the
// standard library is used.
package nnls

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-filled rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nnls: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("nnls: no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("nnls: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("nnls: MulVec dimension mismatch: %d cols, %d vec", m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TransMulVec computes mᵀ·y.
func (m *Matrix) TransMulVec(y []float64) []float64 {
	if len(y) != m.Rows {
		panic(fmt.Sprintf("nnls: TransMulVec dimension mismatch: %d rows, %d vec", m.Rows, len(y)))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		yi := y[i]
		for j, v := range row {
			out[j] += v * yi
		}
	}
	return out
}

// Residual returns b − m·x.
func (m *Matrix) Residual(x, b []float64) []float64 {
	ax := m.MulVec(x)
	out := make([]float64, len(b))
	for i := range b {
		out[i] = b[i] - ax[i]
	}
	return out
}

// ResidualNorm returns ‖b − m·x‖₂.
func (m *Matrix) ResidualNorm(x, b []float64) float64 {
	return Norm2(m.Residual(x, b))
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func Norm2(v []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Dot returns the dot product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("nnls: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

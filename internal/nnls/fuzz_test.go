package nnls

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSolve hardens the NNLS solver: arbitrary well-formed inputs must never
// panic, never return negative or non-finite coordinates, and never report a
// residual worse than the zero vector's.
func FuzzSolve(f *testing.F) {
	f.Add(int64(1), 4, 2)
	f.Add(int64(2), 10, 5)
	f.Add(int64(3), 1, 1)
	f.Add(int64(4), 30, 6)

	f.Fuzz(func(t *testing.T, seed int64, rows, cols int) {
		if rows < 1 || rows > 64 || cols < 1 || cols > 16 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			// Mix magnitudes to stress conditioning.
			a.Data[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(5)-2))
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, res, err := Solve(a, b)
		if err != nil {
			return
		}
		for i, v := range x {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("x[%d] = %v", i, v)
			}
		}
		if math.IsNaN(res) || res > Norm2(b)+1e-6*(1+Norm2(b)) {
			t.Fatalf("residual %v worse than zero vector %v", res, Norm2(b))
		}
	})
}

package nnls

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSolve hardens the NNLS solver: arbitrary well-formed inputs must never
// panic, never return negative or non-finite coordinates, and never report a
// residual worse than the zero vector's.
func FuzzSolve(f *testing.F) {
	f.Add(int64(1), 4, 2)
	f.Add(int64(2), 10, 5)
	f.Add(int64(3), 1, 1)
	f.Add(int64(4), 30, 6)

	f.Fuzz(func(t *testing.T, seed int64, rows, cols int) {
		if rows < 1 || rows > 64 || cols < 1 || cols > 16 {
			return
		}
		r := rand.New(rand.NewSource(seed))
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			// Mix magnitudes to stress conditioning.
			a.Data[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(5)-2))
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, res, err := Solve(a, b)
		if err != nil {
			return
		}
		for i, v := range x {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("x[%d] = %v", i, v)
			}
		}
		if math.IsNaN(res) || res > Norm2(b)+1e-6*(1+Norm2(b)) {
			t.Fatalf("residual %v worse than zero vector %v", res, Norm2(b))
		}

		// A warm-started resolve of a perturbed problem (the online-refit
		// pattern, including a row count change: new observations arrived) must
		// obey the same invariants and match its own cold solve to within the
		// optimizer's tolerance. Warm-starting may pick a different vertex only
		// when the problem is degenerate, so compare residuals, not coordinates.
		var ws Workspace
		if _, _, err := ws.Solve(a, b); err != nil {
			return
		}
		rows2 := rows + r.Intn(3)
		a2 := NewMatrix(rows2, cols)
		copy(a2.Data, a.Data)
		for i := rows * cols; i < len(a2.Data); i++ {
			a2.Data[i] = r.NormFloat64()
		}
		b2 := make([]float64, rows2)
		for i := range b2 {
			if i < rows {
				b2[i] = b[i] * (1 + 0.01*r.NormFloat64())
			} else {
				b2[i] = r.NormFloat64()
			}
		}
		wx, wres, werr := ws.Solve(a2, b2)
		cx, cres, cerr := Solve(a2, b2)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("warm err %v, cold err %v", werr, cerr)
		}
		if werr != nil {
			return
		}
		for i, v := range wx {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("warm x[%d] = %v", i, v)
			}
		}
		tol := 1e-6 * (1 + Norm2(b2))
		if math.Abs(wres-cres) > tol {
			t.Fatalf("warm residual %v vs cold %v (tol %v)\nwarm x %v\ncold x %v",
				wres, cres, tol, wx, cx)
		}
	})
}

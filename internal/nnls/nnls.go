package nnls

import (
	"errors"
	"math"
)

// Options configures the NNLS solver.
type Options struct {
	// Tol is the dual-feasibility tolerance. Zero means an automatic value
	// scaled from the problem data.
	Tol float64
	// MaxIter bounds the number of outer iterations. Zero means 3·Cols+30.
	MaxIter int
}

// Solve finds x ≥ 0 minimizing ‖A·x − b‖₂ using the Lawson–Hanson active-set
// algorithm. It returns the solution and its residual norm.
func Solve(a *Matrix, b []float64) ([]float64, float64, error) {
	return SolveWith(a, b, Options{})
}

// SolveWith is Solve with explicit options.
func SolveWith(a *Matrix, b []float64, opt Options) ([]float64, float64, error) {
	if len(b) != a.Rows {
		return nil, 0, errors.New("nnls: rhs length mismatch")
	}
	n := a.Cols
	if n == 0 {
		return nil, Norm2(b), errors.New("nnls: empty matrix")
	}

	tol := opt.Tol
	if tol == 0 {
		// Scale-aware tolerance, mirroring the classical implementation.
		var amax float64
		for _, v := range a.Data[:a.Rows*a.Cols] {
			if av := math.Abs(v); av > amax {
				amax = av
			}
		}
		tol = 10 * 2.2e-16 * amax * float64(maxInt(a.Rows, a.Cols))
		if tol == 0 {
			tol = 1e-12
		}
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 3*n + 30
	}

	x := make([]float64, n)
	passive := make([]bool, n) // true → index in passive (free) set P

	for iter := 0; iter < maxIter; iter++ {
		// Dual vector w = Aᵀ(b − A·x).
		w := a.TransMulVec(a.Residual(x, b))

		// Pick the most violated constraint among the active set.
		j, wmax := -1, tol
		for k := 0; k < n; k++ {
			if !passive[k] && w[k] > wmax {
				j, wmax = k, w[k]
			}
		}
		if j < 0 {
			break // KKT conditions satisfied
		}
		passive[j] = true

		// Inner loop: solve the unconstrained problem on the passive set and
		// back off along the segment to x until feasibility is restored.
		for {
			z, ok := solvePassive(a, b, passive)
			if !ok {
				// The passive column set became rank deficient; drop the
				// newest column and give up on it this round.
				passive[j] = false
				break
			}
			if allPositive(z, passive, tol) {
				copyPassive(x, z, passive)
				break
			}
			alpha := math.Inf(1)
			for k := 0; k < n; k++ {
				if passive[k] && z[k] <= tol {
					if r := x[k] / (x[k] - z[k]); r < alpha {
						alpha = r
					}
				}
			}
			if math.IsInf(alpha, 1) {
				// Should not happen; guard against a stall.
				copyPassive(x, z, passive)
				break
			}
			for k := 0; k < n; k++ {
				if passive[k] {
					x[k] += alpha * (z[k] - x[k])
					if x[k] <= tol {
						x[k] = 0
						passive[k] = false
					}
				}
			}
		}
	}

	// Clamp numerical dust.
	for k := range x {
		if x[k] < 0 {
			x[k] = 0
		}
	}
	return x, a.ResidualNorm(x, b), nil
}

// solvePassive solves the unconstrained least-squares problem restricted to
// the passive columns, returning a full-length vector with zeros elsewhere.
func solvePassive(a *Matrix, b []float64, passive []bool) ([]float64, bool) {
	var cols []int
	for k, p := range passive {
		if p {
			cols = append(cols, k)
		}
	}
	if len(cols) == 0 {
		return make([]float64, a.Cols), true
	}
	sub := NewMatrix(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		for jj, c := range cols {
			sub.Set(i, jj, a.At(i, c))
		}
	}
	sol, err := LeastSquares(sub, b)
	if err != nil {
		return nil, false
	}
	z := make([]float64, a.Cols)
	for jj, c := range cols {
		z[c] = sol[jj]
	}
	return z, true
}

func allPositive(z []float64, passive []bool, tol float64) bool {
	for k, p := range passive {
		if p && z[k] <= tol {
			return false
		}
	}
	return true
}

func copyPassive(x, z []float64, passive []bool) {
	for k := range x {
		if passive[k] {
			x[k] = z[k]
		} else {
			x[k] = 0
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package nnls

// Options configures the NNLS solver.
type Options struct {
	// Tol is the dual-feasibility tolerance. Zero means an automatic value
	// scaled from the problem data.
	Tol float64
	// MaxIter bounds the number of outer iterations. Zero means 3·Cols+30.
	MaxIter int
}

// Solve finds x ≥ 0 minimizing ‖A·x − b‖₂ using the Lawson–Hanson active-set
// algorithm. It returns the solution and its residual norm.
//
// Solve is the convenience entry point: each call runs cold on a fresh
// Workspace, so the returned slice is caller-owned. Hot paths that solve
// related problems repeatedly should hold a Workspace and use its methods to
// reuse scratch buffers and warm-start from the previous active set.
func Solve(a *Matrix, b []float64) ([]float64, float64, error) {
	return SolveWith(a, b, Options{})
}

// SolveWith is Solve with explicit options.
func SolveWith(a *Matrix, b []float64, opt Options) ([]float64, float64, error) {
	var ws Workspace
	return ws.SolveWith(a, b, opt)
}

func allPositive(z []float64, passive []bool, tol float64) bool {
	for k, p := range passive {
		if p && z[k] <= tol {
			return false
		}
	}
	return true
}

func copyPassive(x, z []float64, passive []bool) {
	for k := range x {
		if passive[k] {
			x[k] = z[k]
		} else {
			x[k] = 0
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package nnls

import (
	"errors"
	"math"
)

// Workspace holds every scratch buffer one NNLS solve needs, so repeated
// solves — the steady state of the Optimus control loop, which refits the
// same loss and speed models every scheduling interval — allocate nothing
// after the first call.
//
// Beyond buffer reuse, a workspace warm-starts Lawson–Hanson from the
// previous solve's passive (free) set whenever the column count matches.
// The common caller pattern is "same problem plus one new observation row"
// (lossfit/speedfit refits after one Observe/Add), where the active set
// rarely changes: the warm path solves a single least-squares problem on the
// remembered passive set and, when that solution is strictly feasible,
// resumes the outer loop from it — usually terminating immediately with the
// KKT check instead of rebuilding the passive set one column at a time.
//
// A Workspace is not safe for concurrent use. The zero value is ready to use.
type Workspace struct {
	// solver state
	x       []float64
	resid   []float64
	dual    []float64
	z       []float64
	passive []bool

	// passive-subproblem scratch
	cols   []int
	sub    Matrix
	subRhs []float64
	subSol []float64
	diag   []float64

	// warm-start memory: the passive set of the previous successful solve.
	warm     []bool
	warmCols int
	hasWarm  bool
}

// NewWorkspace returns an empty workspace. The zero value works too; the
// constructor exists for symmetry with the rest of the package.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset drops the warm-start memory. Buffers are kept. Call it when the next
// problem is unrelated to the previous one (different model family, reused
// workspace across jobs) and a cold start is wanted.
func (ws *Workspace) Reset() { ws.hasWarm = false }

// Solve is SolveWith with default options.
func (ws *Workspace) Solve(a *Matrix, b []float64) ([]float64, float64, error) {
	return ws.SolveWith(a, b, Options{})
}

// SolveWith finds x ≥ 0 minimizing ‖A·x − b‖₂, reusing the workspace's
// buffers and warm-starting from the previous solve's passive set when the
// column counts match (row counts may differ — the passive set is a column
// property). The returned solution slice is owned by the workspace and is
// only valid until the next solve; callers that retain it must copy.
func (ws *Workspace) SolveWith(a *Matrix, b []float64, opt Options) ([]float64, float64, error) {
	if len(b) != a.Rows {
		return nil, 0, errors.New("nnls: rhs length mismatch")
	}
	n := a.Cols
	if n == 0 {
		return nil, Norm2(b), errors.New("nnls: empty matrix")
	}
	ws.ensure(a.Rows, n)

	tol := opt.Tol
	if tol == 0 {
		// Scale-aware tolerance, mirroring the classical implementation.
		var amax float64
		for _, v := range a.Data[:a.Rows*a.Cols] {
			if av := math.Abs(v); av > amax {
				amax = av
			}
		}
		tol = 10 * 2.2e-16 * amax * float64(maxInt(a.Rows, a.Cols))
		if tol == 0 {
			tol = 1e-12
		}
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 3*n + 30
	}

	x := ws.x[:n]
	passive := ws.passive[:n]
	for i := range x {
		x[i] = 0
		passive[i] = false
	}

	// Warm start: re-solve on the remembered passive set. Only a strictly
	// feasible solution is accepted; anything else falls back to a cold
	// start, so the warm path can never hurt correctness.
	if ws.hasWarm && ws.warmCols == n {
		any := false
		for k, p := range ws.warm[:n] {
			if p {
				passive[k] = true
				any = true
			}
		}
		if any {
			z, ok := ws.solvePassive(a, b, passive)
			if ok && allPositive(z, passive, tol) {
				copyPassive(x, z, passive)
			} else {
				for i := range passive {
					passive[i] = false
				}
			}
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Dual vector w = Aᵀ(b − A·x).
		w := ws.dualInto(a, x, b)

		// Pick the most violated constraint among the active set.
		j, wmax := -1, tol
		for k := 0; k < n; k++ {
			if !passive[k] && w[k] > wmax {
				j, wmax = k, w[k]
			}
		}
		if j < 0 {
			break // KKT conditions satisfied
		}
		passive[j] = true

		// Inner loop: solve the unconstrained problem on the passive set and
		// back off along the segment to x until feasibility is restored.
		for {
			z, ok := ws.solvePassive(a, b, passive)
			if !ok {
				// The passive column set became rank deficient; drop the
				// newest column and give up on it this round.
				passive[j] = false
				break
			}
			if allPositive(z, passive, tol) {
				copyPassive(x, z, passive)
				break
			}
			alpha := math.Inf(1)
			for k := 0; k < n; k++ {
				if passive[k] && z[k] <= tol {
					if r := x[k] / (x[k] - z[k]); r < alpha {
						alpha = r
					}
				}
			}
			if math.IsInf(alpha, 1) {
				// Should not happen; guard against a stall.
				copyPassive(x, z, passive)
				break
			}
			for k := 0; k < n; k++ {
				if passive[k] {
					x[k] += alpha * (z[k] - x[k])
					if x[k] <= tol {
						x[k] = 0
						passive[k] = false
					}
				}
			}
		}
	}

	// Clamp numerical dust.
	for k := range x {
		if x[k] < 0 {
			x[k] = 0
		}
	}

	// Remember the passive set for the next solve.
	copy(ws.warm[:n], passive)
	ws.warmCols = n
	ws.hasWarm = true

	return x, Norm2(ws.residInto(a, x, b)), nil
}

// ensure sizes every buffer for an m×n problem, growing only when needed.
func (ws *Workspace) ensure(m, n int) {
	if cap(ws.x) < n {
		ws.x = make([]float64, n)
		ws.dual = make([]float64, n)
		ws.z = make([]float64, n)
		ws.subSol = make([]float64, n)
		ws.diag = make([]float64, n)
		ws.cols = make([]int, 0, n)
		ws.passive = make([]bool, n)
		w := make([]bool, n)
		copy(w, ws.warm)
		ws.warm = w
	}
	if cap(ws.resid) < m {
		ws.resid = make([]float64, m)
		ws.subRhs = make([]float64, m)
	}
	if cap(ws.sub.Data) < m*n {
		ws.sub.Data = make([]float64, m*n)
	}
}

// residInto computes b − a·x into the workspace residual buffer.
func (ws *Workspace) residInto(a *Matrix, x, b []float64) []float64 {
	out := ws.resid[:a.Rows]
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = b[i] - s
	}
	return out
}

// dualInto computes aᵀ·(b − a·x) into the workspace dual buffer.
func (ws *Workspace) dualInto(a *Matrix, x, b []float64) []float64 {
	r := ws.residInto(a, x, b)
	out := ws.dual[:a.Cols]
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		ri := r[i]
		for j, v := range row {
			out[j] += v * ri
		}
	}
	return out
}

// solvePassive solves the unconstrained least-squares problem restricted to
// the passive columns, returning a full-length workspace-owned vector with
// zeros elsewhere.
func (ws *Workspace) solvePassive(a *Matrix, b []float64, passive []bool) ([]float64, bool) {
	n := a.Cols
	cols := ws.cols[:0]
	for k := 0; k < n; k++ {
		if passive[k] {
			cols = append(cols, k)
		}
	}
	ws.cols = cols
	z := ws.z[:n]
	for i := range z {
		z[i] = 0
	}
	if len(cols) == 0 {
		return z, true
	}
	m, nc := a.Rows, len(cols)
	ws.sub.Rows, ws.sub.Cols = m, nc
	ws.sub.Data = ws.sub.Data[:m*nc]
	for i := 0; i < m; i++ {
		src := a.Data[i*n : (i+1)*n]
		dst := ws.sub.Data[i*nc : (i+1)*nc]
		for jj, c := range cols {
			dst[jj] = src[c]
		}
	}
	rhs := ws.subRhs[:m]
	copy(rhs, b)
	sol := ws.subSol[:nc]
	if err := lstsqInPlace(&ws.sub, ws.diag[:nc], rhs, sol); err != nil {
		return nil, false
	}
	for jj, c := range cols {
		z[c] = sol[jj]
	}
	return z, true
}

package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 4, Memory: 8}
	b := Resources{CPU: 1, Memory: 2, GPU: 1}
	sum := a.Add(b)
	if sum[CPU] != 5 || sum[Memory] != 10 || sum[GPU] != 1 {
		t.Errorf("Add = %v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Errorf("Sub = %v, want %v", diff, a)
	}
	sc := a.Scale(2)
	if sc[CPU] != 8 || sc[Memory] != 16 {
		t.Errorf("Scale = %v", sc)
	}
}

func TestResourcesFits(t *testing.T) {
	cap := Resources{CPU: 10, Memory: 20}
	if !(Resources{CPU: 10, Memory: 20}).Fits(cap) {
		t.Error("exact fit rejected")
	}
	if (Resources{CPU: 10.1}).Fits(cap) {
		t.Error("oversized request accepted")
	}
	if !(Resources{}).Fits(cap) {
		t.Error("zero request rejected")
	}
}

func TestDominantShare(t *testing.T) {
	capT := Resources{CPU: 100, Memory: 200, GPU: 10, Bandwidth: 10}
	share, rt := (Resources{CPU: 10, Memory: 10, GPU: 2}).DominantShare(capT)
	if rt != GPU || share != 0.2 {
		t.Errorf("DominantShare = %g %v, want 0.2 gpu", share, rt)
	}
	// Zero-capacity dimensions are skipped.
	capNoGPU := Resources{CPU: 100}
	share, rt = (Resources{CPU: 5, GPU: 99}).DominantShare(capNoGPU)
	if rt != CPU || share != 0.05 {
		t.Errorf("DominantShare = %g %v, want 0.05 cpu", share, rt)
	}
}

func TestNodeAllocateRelease(t *testing.T) {
	n := NewNode("a", Resources{CPU: 10, Memory: 10})
	req := Resources{CPU: 4, Memory: 2}
	if err := n.Allocate(req); err != nil {
		t.Fatal(err)
	}
	if n.TaskCount() != 1 {
		t.Errorf("TaskCount = %d, want 1", n.TaskCount())
	}
	if got := n.Available(); got[CPU] != 6 || got[Memory] != 8 {
		t.Errorf("Available = %v", got)
	}
	if err := n.Allocate(Resources{CPU: 7}); err == nil {
		t.Error("expected over-allocation error")
	}
	if err := n.Release(req); err != nil {
		t.Fatal(err)
	}
	if !n.Used().IsZero() {
		t.Errorf("Used = %v after full release", n.Used())
	}
	if err := n.Release(req); err == nil {
		t.Error("expected error releasing more than allocated")
	}
}

func TestClusterAddAndLookup(t *testing.T) {
	c := New()
	if err := c.AddNode(NewNode("n1", Resources{CPU: 4})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(NewNode("n1", Resources{CPU: 4})); err == nil {
		t.Error("expected duplicate-ID error")
	}
	if c.Node("n1") == nil {
		t.Error("lookup failed")
	}
	if c.Node("missing") != nil {
		t.Error("expected nil for missing node")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestClusterAggregates(t *testing.T) {
	c := Uniform(3, Resources{CPU: 8, Memory: 16})
	total := c.Capacity()
	if total[CPU] != 24 || total[Memory] != 48 {
		t.Errorf("Capacity = %v", total)
	}
	if err := c.Nodes()[0].Allocate(Resources{CPU: 2}); err != nil {
		t.Fatal(err)
	}
	if got := c.Used(); got[CPU] != 2 {
		t.Errorf("Used = %v", got)
	}
	if got := c.Available(); got[CPU] != 22 {
		t.Errorf("Available = %v", got)
	}
	c.ResetAll()
	if !c.Used().IsZero() {
		t.Error("ResetAll left allocations")
	}
}

func TestSortedByAvailable(t *testing.T) {
	c := Uniform(3, Resources{CPU: 8})
	if err := c.Node("node-0").Allocate(Resources{CPU: 6}); err != nil {
		t.Fatal(err)
	}
	if err := c.Node("node-1").Allocate(Resources{CPU: 2}); err != nil {
		t.Fatal(err)
	}
	order := c.SortedByAvailable(CPU)
	if order[0].ID != "node-2" || order[1].ID != "node-1" || order[2].ID != "node-0" {
		t.Errorf("order = %s %s %s", order[0].ID, order[1].ID, order[2].ID)
	}
	// Ties break by ID.
	c2 := Uniform(3, Resources{CPU: 8})
	order2 := c2.SortedByAvailable(CPU)
	if order2[0].ID != "node-0" {
		t.Errorf("tie-break order starts with %s", order2[0].ID)
	}
}

func TestTestbedShape(t *testing.T) {
	c := Testbed()
	if c.Len() != 13 {
		t.Fatalf("testbed has %d nodes, want 13", c.Len())
	}
	capT := c.Capacity()
	// 7×16 + 6×8 = 160 cores, 6×2 = 12 GPUs.
	if capT[CPU] != 160 {
		t.Errorf("CPU capacity = %g, want 160", capT[CPU])
	}
	if capT[GPU] != 12 {
		t.Errorf("GPU capacity = %g, want 12", capT[GPU])
	}
}

func TestResourcesString(t *testing.T) {
	if got := (Resources{}).String(); got != "{}" {
		t.Errorf("zero string = %q", got)
	}
	got := (Resources{CPU: 5, Memory: 10}).String()
	if got != "{cpu=5 mem=10}" {
		t.Errorf("String = %q", got)
	}
}

// Property: any sequence of feasible Allocate calls followed by matching
// Release calls returns the node to its initial state.
func TestAllocateReleaseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := NewNode("x", Resources{CPU: 100, Memory: 100, GPU: 10, Bandwidth: 10})
		var granted []Resources
		for i := 0; i < 20; i++ {
			req := Resources{
				CPU:    float64(r.Intn(10)),
				Memory: float64(r.Intn(10)),
				GPU:    float64(r.Intn(2)),
			}
			if n.Allocate(req) == nil {
				granted = append(granted, req)
			}
		}
		for _, g := range granted {
			if n.Release(g) != nil {
				return false
			}
		}
		return n.Used().IsZero() && n.TaskCount() == 0
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Allocate never lets Used exceed Capacity.
func TestCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := NewNode("x", Resources{CPU: 16, Memory: 32})
		for i := 0; i < 50; i++ {
			req := Resources{CPU: r.Float64() * 8, Memory: r.Float64() * 16}
			_ = n.Allocate(req) // may fail; that's fine
			if !n.Used().Fits(n.Capacity) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

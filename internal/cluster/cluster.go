// Package cluster models the multi-resource server fleet Optimus schedules
// on: nodes with CPU / memory / GPU / network-bandwidth capacities, and the
// bookkeeping for per-node and cluster-wide allocation. It corresponds to the
// testbed of §6.1 (7 CPU servers + 6 GPU servers) and to the node model the
// discrete-time simulator uses.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ResourceType enumerates the resource dimensions tracked per node.
type ResourceType int

const (
	CPU       ResourceType = iota // cores
	Memory                        // GB
	GPU                           // devices
	Bandwidth                     // Gbps of NIC capacity

	NumResourceTypes
)

// String implements fmt.Stringer.
func (r ResourceType) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Memory:
		return "mem"
	case GPU:
		return "gpu"
	case Bandwidth:
		return "bw"
	default:
		return fmt.Sprintf("res(%d)", int(r))
	}
}

// Resources is a vector of resource quantities indexed by ResourceType.
type Resources [NumResourceTypes]float64

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	for i := range r {
		r[i] += o[i]
	}
	return r
}

// Sub returns r − o.
func (r Resources) Sub(o Resources) Resources {
	for i := range r {
		r[i] -= o[i]
	}
	return r
}

// Scale returns r scaled by f.
func (r Resources) Scale(f float64) Resources {
	for i := range r {
		r[i] *= f
	}
	return r
}

// Fits reports whether r fits inside capacity c (componentwise ≤, with a
// small epsilon so float accounting noise does not reject exact fits).
func (r Resources) Fits(c Resources) bool {
	const eps = 1e-9
	for i := range r {
		if r[i] > c[i]+eps {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is ≥ 0 (modulo epsilon).
func (r Resources) NonNegative() bool {
	const eps = 1e-9
	for _, v := range r {
		if v < -eps {
			return false
		}
	}
	return true
}

// IsZero reports whether all components are zero.
func (r Resources) IsZero() bool {
	for _, v := range r {
		if v != 0 {
			return false
		}
	}
	return true
}

// DominantShare returns the maximum of r[i]/capacity[i] over resource types
// with non-zero capacity, and the resource type attaining it. This is the
// DRF dominant share and also the "dominant resource" of §4.1's marginal
// gain normalization.
func (r Resources) DominantShare(capacity Resources) (float64, ResourceType) {
	best, bestType := 0.0, CPU
	for i := range r {
		if capacity[i] <= 0 {
			continue
		}
		if s := r[i] / capacity[i]; s > best {
			best, bestType = s, ResourceType(i)
		}
	}
	return best, bestType
}

// String renders the vector compactly, omitting zero components.
func (r Resources) String() string {
	var parts []string
	for i, v := range r {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", ResourceType(i), v))
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Node is one physical server.
type Node struct {
	ID       string
	Capacity Resources
	used     Resources
	// taskCount tracks how many scheduled tasks the node currently hosts,
	// used by placement to reason about colocations.
	taskCount int
}

// NewNode creates a node with the given capacity.
func NewNode(id string, capacity Resources) *Node {
	return &Node{ID: id, Capacity: capacity}
}

// Used returns the currently allocated resources.
func (n *Node) Used() Resources { return n.used }

// Available returns Capacity − Used.
func (n *Node) Available() Resources { return n.Capacity.Sub(n.used) }

// TaskCount returns the number of tasks currently placed on the node.
func (n *Node) TaskCount() int { return n.taskCount }

// CanFit reports whether req fits in the node's available resources.
func (n *Node) CanFit(req Resources) bool { return req.Fits(n.Available()) }

// Allocate reserves req on the node. It returns an error if the request does
// not fit, leaving the node unchanged.
func (n *Node) Allocate(req Resources) error {
	if !n.CanFit(req) {
		return fmt.Errorf("cluster: node %s cannot fit %v (available %v)",
			n.ID, req, n.Available())
	}
	n.used = n.used.Add(req)
	n.taskCount++
	return nil
}

// Release returns req to the node. Releasing more than allocated is a
// programming error and returns an error without modifying the node.
func (n *Node) Release(req Resources) error {
	remaining := n.used.Sub(req)
	if !remaining.NonNegative() {
		return fmt.Errorf("cluster: node %s release %v exceeds used %v", n.ID, req, n.used)
	}
	n.used = remaining
	// Clamp float dust so long alloc/release sequences don't drift.
	for i := range n.used {
		if math.Abs(n.used[i]) < 1e-9 {
			n.used[i] = 0
		}
	}
	if n.taskCount > 0 {
		n.taskCount--
	}
	return nil
}

// Reset clears all allocations on the node.
func (n *Node) Reset() {
	n.used = Resources{}
	n.taskCount = 0
}

// Cluster is a collection of nodes.
type Cluster struct {
	nodes []*Node
	byID  map[string]*Node
}

// New creates an empty cluster.
func New() *Cluster {
	return &Cluster{byID: make(map[string]*Node)}
}

// AddNode inserts a node; duplicate IDs are rejected.
func (c *Cluster) AddNode(n *Node) error {
	if _, dup := c.byID[n.ID]; dup {
		return fmt.Errorf("cluster: duplicate node id %q", n.ID)
	}
	c.nodes = append(c.nodes, n)
	c.byID[n.ID] = n
	return nil
}

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id string) *Node { return c.byID[id] }

// Nodes returns the nodes in insertion order. Callers must not mutate the
// slice itself (mutating nodes through the pointers is the intended use).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Capacity returns the summed capacity of all nodes — the C_r of §4.1's
// capacity constraint.
func (c *Cluster) Capacity() Resources {
	var total Resources
	for _, n := range c.nodes {
		total = total.Add(n.Capacity)
	}
	return total
}

// Used returns the summed allocations of all nodes.
func (c *Cluster) Used() Resources {
	var total Resources
	for _, n := range c.nodes {
		total = total.Add(n.used)
	}
	return total
}

// Available returns Capacity − Used.
func (c *Cluster) Available() Resources { return c.Capacity().Sub(c.Used()) }

// ResetAll clears allocations on every node.
func (c *Cluster) ResetAll() {
	for _, n := range c.nodes {
		n.Reset()
	}
}

// SortedByAvailable returns the nodes sorted in descending order of available
// capacity of the given resource type (ties broken by node ID for
// determinism). This is the server ordering of the §4.2 placement scheme,
// which uses available CPU.
func (c *Cluster) SortedByAvailable(rt ResourceType) []*Node {
	out := make([]*Node, len(c.nodes))
	copy(out, c.nodes)
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].Available()[rt], out[j].Available()[rt]
		if ai != aj {
			return ai > aj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Testbed builds the paper's evaluation cluster (§6.1): 7 CPU servers with
// two 8-core CPUs and 80 GB memory, and 6 GPU servers with one 8-core CPU,
// 2 GPUs and 48 GB memory, all on a 1 GbE switch.
func Testbed() *Cluster {
	c := New()
	for i := 0; i < 7; i++ {
		n := NewNode(fmt.Sprintf("cpu-%d", i),
			Resources{CPU: 16, Memory: 80, GPU: 0, Bandwidth: 1})
		if err := c.AddNode(n); err != nil {
			panic(err) // unreachable: IDs are unique by construction
		}
	}
	for i := 0; i < 6; i++ {
		n := NewNode(fmt.Sprintf("gpu-%d", i),
			Resources{CPU: 8, Memory: 48, GPU: 2, Bandwidth: 1})
		if err := c.AddNode(n); err != nil {
			panic(err)
		}
	}
	return c
}

// Uniform builds a cluster of n identical nodes, convenient for simulations
// and the scalability benchmarks (Fig. 12).
func Uniform(n int, capacity Resources) *Cluster {
	c := New()
	for i := 0; i < n; i++ {
		node := NewNode(fmt.Sprintf("node-%d", i), capacity)
		if err := c.AddNode(node); err != nil {
			panic(err)
		}
	}
	return c
}

package cells

import (
	"math/rand"
	"reflect"
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/metrics"
)

// runRounds drives one multi-scheduler through several allocate+place rounds
// on its own cluster, returning the final round's outputs.
func runRounds(ms *MultiScheduler, c *cluster.Cluster, params []jobParams, rounds int) (map[int]core.Allocation, map[int]core.Placement, []int) {
	var am map[int]core.Allocation
	var pm map[int]core.Placement
	var unplaced []int
	for r := 0; r < rounds; r++ {
		jobs := materialize(params)
		am = ms.Allocate(jobs, c.Capacity())
		c.ResetAll()
		pm, unplaced = ms.Place(buildReqs(jobs, am), c)
	}
	return am, pm, unplaced
}

// TestMultiCellValid checks the safety invariants at several cell counts: no
// node over capacity, every request either placed exactly once or reported
// unplaced, live cluster usage consistent with the shared store, and the
// placements' resources exactly accounted on the nodes they name.
func TestMultiCellValid(t *testing.T) {
	for _, nCells := range []int{2, 3, 4} {
		for seed := int64(1); seed <= 10; seed++ {
			rng := rand.New(rand.NewSource(seed))
			nJobs := 10 + rng.Intn(30)
			c := cluster.Uniform(8+rng.Intn(12), cluster.Resources{
				cluster.CPU:    16 + float64(rng.Intn(16)),
				cluster.Memory: 64 + float64(rng.Intn(64)),
			})
			params := make([]jobParams, nJobs)
			for i := range params {
				params[i] = randomParams(rng, i+1)
			}
			ms := New(Options{Cells: nCells})
			jobs := materialize(params)
			am := ms.Allocate(jobs, c.Capacity())
			c.ResetAll()
			reqs := buildReqs(jobs, am)
			pm, unplaced := ms.Place(reqs, c)

			for _, n := range c.Nodes() {
				if !n.Used().Fits(n.Capacity) {
					t.Fatalf("cells=%d seed %d: node %s over capacity: %v > %v",
						nCells, seed, n.ID, n.Used(), n.Capacity)
				}
			}
			seen := make(map[int]int)
			for id := range pm {
				seen[id]++
			}
			for _, id := range unplaced {
				seen[id]++
			}
			for _, r := range reqs {
				if seen[r.JobID] != 1 {
					t.Fatalf("cells=%d seed %d: job %d placed/unplaced %d times",
						nCells, seed, r.JobID, seen[r.JobID])
				}
			}
			// Sum of placement deltas must equal cluster usage exactly: the
			// commit path applies what it validated, nothing more or less.
			var want cluster.Resources
			for id, pl := range pm {
				var req core.PlacementRequest
				for _, r := range reqs {
					if r.JobID == id {
						req = r
						break
					}
				}
				for i := range pl.NodeIDs {
					want = want.Add(req.PSRes.Scale(float64(pl.PSOnNode[i]))).
						Add(req.WorkerRes.Scale(float64(pl.WorkersOnNode[i])))
				}
			}
			got := c.Used()
			for rt := range got {
				d := got[rt] - want[rt]
				if d < -1e-6 || d > 1e-6 {
					t.Fatalf("cells=%d seed %d: usage %v != placed %v", nCells, seed, got, want)
				}
			}
		}
	}
}

// TestMultiCellDeterministic pins the parallel compute / sequential commit
// split: two identical multi-cell runs must agree exactly, no matter how
// the per-cell goroutines interleave. A third run with the fan-out disabled
// must match too.
func TestMultiCellDeterministic(t *testing.T) {
	run := func(sequential bool) (map[int]core.Allocation, map[int]core.Placement, []int, Stats) {
		rng := rand.New(rand.NewSource(11))
		params := make([]jobParams, 24)
		for i := range params {
			params[i] = randomParams(rng, i+1)
		}
		c := cluster.Uniform(9, cluster.Resources{cluster.CPU: 24, cluster.Memory: 96})
		ms := New(Options{Cells: 3, Sequential: sequential})
		am, pm, up := runRounds(ms, c, params, 3)
		return am, pm, up, ms.Stats()
	}
	a1, p1, u1, s1 := run(false)
	a2, p2, u2, s2 := run(false)
	a3, p3, u3, s3 := run(true)
	for _, st := range []*Stats{&s1, &s2, &s3} {
		for i := range st.PerCell {
			st.PerCell[i].AllocMs, st.PerCell[i].PlaceMs = 0, 0
		}
	}
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(u1, u2) {
		t.Fatal("two parallel multi-cell runs diverge")
	}
	if !reflect.DeepEqual(a1, a3) || !reflect.DeepEqual(p1, p3) || !reflect.DeepEqual(u1, u3) {
		t.Fatal("parallel and sequential multi-cell runs diverge")
	}
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(s1, s3) {
		t.Fatalf("stats diverge: %+v vs %+v vs %+v", s1, s2, s3)
	}
}

// TestStatsAndRecorder checks that the commit protocol's outcomes reach both
// the Stats snapshot and a bound metrics.Recorder.
func TestStatsAndRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	params := make([]jobParams, 30)
	for i := range params {
		params[i] = randomParams(rng, i+1)
	}
	c := cluster.Uniform(10, cluster.Resources{cluster.CPU: 24, cluster.Memory: 96})
	rec := metrics.NewRecorder()
	ms := New(Options{Cells: 4})
	ms.BindRecorder(rec)
	runRounds(ms, c, params, 4)

	st := ms.Stats()
	if st.Cells != 4 || st.Rounds != 4 {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	if st.Commits == 0 {
		t.Fatal("no commits recorded")
	}
	if len(st.PerCell) != 4 {
		t.Fatalf("expected 4 per-cell entries, got %d", len(st.PerCell))
	}
	var jobs, nodes int
	for _, cs := range st.PerCell {
		jobs += cs.Jobs
		nodes += cs.Nodes
	}
	if jobs != 30 {
		t.Fatalf("per-cell job counts sum to %d, want 30", jobs)
	}
	if nodes != c.Len() {
		t.Fatalf("per-cell stripes sum to %d nodes, want %d", nodes, c.Len())
	}
	commits, conflicts, avoided, _, _ := rec.CellCounters()
	if uint64(commits) != st.Commits || uint64(conflicts) != st.Conflicts || uint64(avoided) != st.ConflictsAvoided {
		t.Fatalf("recorder (%d,%d,%d) disagrees with stats (%d,%d,%d)",
			commits, conflicts, avoided, st.Commits, st.Conflicts, st.ConflictsAvoided)
	}
}

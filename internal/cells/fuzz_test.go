package cells

import (
	"math/rand"
	"sync"
	"testing"

	"optimus/internal/cluster"
)

// FuzzCellCommit drives the optimistic-commit path with byte-encoded
// interleavings of stale snapshots and conflicting grants. Two invariants
// must hold under every interleaving: no node is ever committed past its
// capacity, and no grant is lost or phantom-applied — the store's final
// usage must equal the exact sum of the grants it reported committed.
func FuzzCellCommit(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 16, 32, 48, 255, 255, 255, 255, 0, 1, 2})
	f.Add([]byte{7, 0xf0, 200, 200, 3, 0x0f, 100, 100, 100, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nNodes = 4
		nodeCap := cluster.Resources{cluster.CPU: 16, cluster.Memory: 32}
		s := NewStore(cluster.Uniform(nNodes, nodeCap))

		// Four snapshot slots model four cells reading at different times;
		// grants cite whichever (possibly stale) slot the bytes pick.
		snaps := make([][]NodeState, 4)
		for i := range snaps {
			snaps[i] = s.Snapshot(nil)
		}
		model := make([]cluster.Resources, nNodes)

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for pos < len(data) {
			op := next()
			slot := int(op>>4) % len(snaps)
			if op%5 == 0 {
				snaps[slot] = s.Snapshot(snaps[slot])
				continue
			}
			mask := next()
			var g Grant
			g.Job = int(op)
			for ni := 0; ni < nNodes; ni++ {
				if mask&(1<<ni) == 0 {
					continue
				}
				frac := float64(next()) / 255 * 0.75
				g.Nodes = append(g.Nodes, ni)
				g.Deltas = append(g.Deltas, nodeCap.Scale(frac))
				g.Versions = append(g.Versions, snaps[slot][ni].Version)
			}
			if len(g.Nodes) == 0 {
				continue
			}
			res := s.Commit(g)
			if res.OK {
				// Mirror the store's arithmetic exactly: same deltas, same
				// Add order.
				for i, ni := range g.Nodes {
					model[ni] = model[ni].Add(g.Deltas[i])
				}
			}
			for _, ns := range s.Snapshot(nil) {
				if !ns.Used.NonNegative() || !ns.Used.Fits(ns.Capacity) {
					t.Fatalf("node %s over-committed: used %v capacity %v", ns.ID, ns.Used, ns.Capacity)
				}
			}
		}
		for i, ns := range s.Snapshot(nil) {
			if ns.Used != model[i] {
				t.Fatalf("grant lost or phantom-applied on node %d: store %v model %v", i, ns.Used, model[i])
			}
		}
	})
}

// TestStoreConcurrentCommits exercises the store under real goroutine
// interleavings (the fuzz harness is single-threaded): concurrent committers
// with private snapshots must never over-commit a node, and the final usage
// must match the sum of the grants reported successful. Run under make race
// this doubles as the store's race check.
func TestStoreConcurrentCommits(t *testing.T) {
	const nNodes, committers, iters = 8, 6, 200
	nodeCap := cluster.Resources{cluster.CPU: 16, cluster.Memory: 32}
	s := NewStore(cluster.Uniform(nNodes, nodeCap))

	var mu sync.Mutex
	applied := make([]cluster.Resources, nNodes)
	var attempts int

	var wg sync.WaitGroup
	for id := 0; id < committers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			var snap []NodeState
			for i := 0; i < iters; i++ {
				snap = s.Snapshot(snap)
				var g Grant
				g.Job = id*iters + i
				for ni := 0; ni < nNodes; ni++ {
					if rng.Intn(3) != 0 {
						continue
					}
					frac := rng.Float64() * 0.5
					g.Nodes = append(g.Nodes, ni)
					g.Deltas = append(g.Deltas, nodeCap.Scale(frac))
					g.Versions = append(g.Versions, snap[ni].Version)
				}
				if len(g.Nodes) == 0 {
					continue
				}
				res := s.Commit(g)
				mu.Lock()
				attempts++
				if res.OK {
					for j, ni := range g.Nodes {
						applied[ni] = applied[ni].Add(g.Deltas[j])
					}
				}
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()

	final := s.Snapshot(nil)
	for i, ns := range final {
		if !ns.Used.Fits(ns.Capacity) {
			t.Fatalf("node %d over capacity: %v > %v", i, ns.Used, ns.Capacity)
		}
		for rt := range ns.Used {
			d := ns.Used[rt] - applied[i][rt]
			if d < -1e-6 || d > 1e-6 {
				t.Fatalf("node %d usage %v != applied grants %v", i, ns.Used, applied[i])
			}
		}
	}
	commits, conflicts, _ := s.Counters()
	if int(commits+conflicts) != attempts {
		t.Fatalf("commits %d + conflicts %d != attempts %d", commits, conflicts, attempts)
	}
	if conflicts == 0 {
		t.Log("note: no conflicts observed this run (legal but unusual)")
	}
}

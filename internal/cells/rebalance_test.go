package cells

import (
	"math/rand"
	"reflect"
	"testing"
)

func applyMoves(jobs []JobAssignment, moves []Move) []JobAssignment {
	out := append([]JobAssignment(nil), jobs...)
	byJob := make(map[int]int, len(out))
	for i, j := range out {
		byJob[j.Job] = i
	}
	for _, mv := range moves {
		out[byJob[mv.Job]].Cell = mv.To
	}
	return out
}

func cellWeights(jobs []JobAssignment, cells int) []float64 {
	w := make([]float64, cells)
	for _, j := range jobs {
		w[j.Cell] += j.Weight
	}
	return w
}

func spread(w []float64) float64 {
	hi, lo := w[0], w[0]
	for _, v := range w[1:] {
		if v > hi {
			hi = v
		}
		if v < lo {
			lo = v
		}
	}
	return hi - lo
}

// TestRebalanceProperty is the satellite property test: with job weights
// finer than the threshold, the plan must bring every pair of cells within
// the threshold of each other; with arbitrary (lumpy) weights it must
// terminate, never widen the spread, conserve total weight, and leave every
// job in exactly one valid cell.
func TestRebalanceProperty(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cells := 2 + rng.Intn(4)
		nJobs := cells * (3 + rng.Intn(20))
		threshold := 0.05 + rng.Float64()*0.2
		fine := seed%2 == 0 // even seeds: every weight below the threshold

		jobs := make([]JobAssignment, nJobs)
		var total float64
		for i := range jobs {
			w := rng.Float64() * threshold * 0.95
			if !fine {
				w = rng.Float64() * threshold * 4
			}
			jobs[i] = JobAssignment{Job: i + 1, Cell: rng.Intn(cells), Weight: w}
			total += w
		}

		before := cellWeights(jobs, cells)
		moves := PlanRebalance(jobs, cells, threshold)
		after := applyMoves(jobs, moves)
		weights := cellWeights(after, cells)

		// Conservation: weights are job properties and every job lands in
		// exactly one valid cell, so totals match exactly.
		var sum float64
		for _, j := range after {
			if j.Cell < 0 || j.Cell >= cells {
				t.Fatalf("seed %d: job %d moved to invalid cell %d", seed, j.Job, j.Cell)
			}
			sum += j.Weight
		}
		if sum != total {
			t.Fatalf("seed %d: total weight not conserved: %v != %v", seed, sum, total)
		}
		if len(after) != nJobs {
			t.Fatalf("seed %d: job lost in rebalance", seed)
		}

		if spread(weights) > spread(before)+1e-9 {
			t.Fatalf("seed %d: rebalance widened the spread: %v -> %v", seed, spread(before), spread(weights))
		}
		if fine && spread(weights) > threshold+1e-9 {
			t.Fatalf("seed %d: spread %v exceeds threshold %v after rebalance (weights %v)",
				seed, spread(weights), threshold, weights)
		}

		// Determinism: same input, same plan.
		again := PlanRebalance(jobs, cells, threshold)
		if !reflect.DeepEqual(moves, again) {
			t.Fatalf("seed %d: rebalance plan not deterministic", seed)
		}
	}
}

// TestRebalanceEdgeCases pins the degenerate inputs.
func TestRebalanceEdgeCases(t *testing.T) {
	if mv := PlanRebalance(nil, 4, 0.1); mv != nil {
		t.Fatalf("empty input produced moves: %v", mv)
	}
	if mv := PlanRebalance([]JobAssignment{{Job: 1, Cell: 0, Weight: 1}}, 1, 0.1); mv != nil {
		t.Fatalf("single cell produced moves: %v", mv)
	}
	// Already balanced: no moves.
	jobs := []JobAssignment{
		{Job: 1, Cell: 0, Weight: 0.2},
		{Job: 2, Cell: 1, Weight: 0.2},
	}
	if mv := PlanRebalance(jobs, 2, 0.1); len(mv) != 0 {
		t.Fatalf("balanced input produced moves: %v", mv)
	}
	// One indivisible heavy job: nothing to move without inverting the
	// imbalance, so the plan stops rather than oscillating.
	jobs = []JobAssignment{{Job: 1, Cell: 0, Weight: 1.0}}
	if mv := PlanRebalance(jobs, 2, 0.1); len(mv) != 0 {
		t.Fatalf("indivisible job produced moves: %v", mv)
	}
}

package cells

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"optimus/internal/cluster"
	"optimus/internal/core"
	"optimus/internal/metrics"
	"optimus/internal/obs"
)

// Options configures a MultiScheduler.
type Options struct {
	// Cells is the number of scheduling cells (min 1). With 1 cell the
	// scheduler is byte-equivalent to the single-engine core kernels.
	Cells int
	// MaxCommitRetries bounds the re-place/re-commit attempts after a
	// conflicted commit before the job is reported unplaced (default 3).
	MaxCommitRetries int
	// RebalanceThreshold is the maximum tolerated gap between the
	// highest- and lowest-loaded cells' aggregate dominant shares before
	// jobs migrate (0 means the 0.1 default; negative disables).
	RebalanceThreshold float64
	// RebalanceEvery runs the rebalancer every k-th round (default 1).
	RebalanceEvery int
	// ConflictBackoff, when positive, sleeps before each commit retry,
	// doubling per attempt. The default 0 keeps runs deterministic; a real
	// deployment talking to a remote store would set it.
	ConflictBackoff time.Duration
	// Recorder, when set, accumulates commit/conflict/migration counters.
	Recorder *metrics.Recorder
	// Sequential disables the per-cell goroutine fan-out (for debugging
	// and allocation measurement); results are identical either way.
	Sequential bool
	// Flight, when set, receives black-box events for commit conflicts and
	// rebalancer migrations (nil-receiver safe, like every obs hook).
	Flight *obs.FlightRecorder
}

func (o *Options) fillDefaults() {
	if o.Cells < 1 {
		o.Cells = 1
	}
	if o.MaxCommitRetries <= 0 {
		o.MaxCommitRetries = 3
	}
	if o.RebalanceThreshold == 0 {
		o.RebalanceThreshold = 0.1
	}
	if o.RebalanceEvery <= 0 {
		o.RebalanceEvery = 1
	}
}

// cell is one scheduling shard: its own §4.1/§4.2 kernel sessions, a node
// stripe it prefers to place on, and a private whole-cluster replica rebuilt
// from store snapshots for the borrow path.
type cell struct {
	id    int
	alloc *core.AllocSession
	place *core.PlaceState

	// part holds this cell's node stripe; full is a private replica of the
	// whole cluster (part shares full's *Node pointers, so placements on
	// the stripe are visible to the borrow pass). With one cell part==full.
	part *cluster.Cluster
	full *cluster.Cluster

	snap  []NodeState
	infos []*core.JobInfo
	reqs  []core.PlacementRequest

	am         map[int]core.Allocation
	placements map[int]core.Placement
	borrowed   map[int]bool
	unplaced   []int
	dropped    []int

	reqAt      map[int]int
	borrowReqs []core.PlacementRequest
	retryReq   []core.PlacementRequest
	grant      Grant

	// Unchanged-cell fast path: the previous round's compute-phase inputs
	// (request list and snapshot per-node usage VALUES — store versions bump
	// every round, so only values can prove "unchanged") and outputs. When
	// both inputs match, the deterministic kernel would reproduce the cached
	// outputs exactly, so the cell skips the replica rebuild and placement
	// search entirely; commits still replay because the store is round-reset.
	havePrev     bool
	reused       bool // this round took the fast path
	lastReqs     []core.PlacementRequest
	lastUsed     []cluster.Resources
	lastPlaced   map[int]core.Placement
	lastUnplaced []int
	lastBorrowed []int

	allocNs int64
	placeNs int64
}

// RoundStats are the per-scheduling-round outcomes of the commit protocol
// and the rebalancer, reset at the start of each Allocate and accumulated
// across the round's Place calls (the simulator's shrink-retry loop may call
// Place several times per interval).
type RoundStats struct {
	Commits   int `json:"commits"`
	Conflicts int `json:"conflicts"`
	Avoided   int `json:"avoided"`
	Retries   int `json:"retries"`
	Borrowed  int `json:"borrowed"`
	Dropped   int `json:"dropped"`
	JobsMoved int `json:"jobsMoved"`
	// CellsReused counts cells that skipped their compute phase this round
	// because their requests and snapshot were unchanged.
	CellsReused int `json:"cellsReused,omitempty"`
}

// CellStats is one cell's slice of the cluster as of the last round.
type CellStats struct {
	Cell    int     `json:"cell"`
	Jobs    int     `json:"jobs"`
	Nodes   int     `json:"nodes"`
	Weight  float64 `json:"weight"`
	AllocMs float64 `json:"allocMs"`
	PlaceMs float64 `json:"placeMs"`
}

// Stats is the cumulative multi-scheduler state surfaced by optimusd's
// /v1/cluster endpoint and the experiment tables.
type Stats struct {
	Cells            int    `json:"cells"`
	Rounds           int    `json:"rounds"`
	Commits          uint64 `json:"commits"`
	Conflicts        uint64 `json:"conflicts"`
	ConflictsAvoided uint64 `json:"conflictsAvoided"`
	Retries          int    `json:"retries"`
	Borrowed         int    `json:"borrowed"`
	Dropped          int    `json:"dropped"`
	Rebalances       int    `json:"rebalances"`
	JobsMoved        int    `json:"jobsMoved"`
	// CellsReused is the cumulative number of per-cell compute phases skipped
	// by the unchanged-cell fast path.
	CellsReused int         `json:"cellsReused,omitempty"`
	PerCell     []CellStats `json:"perCell"`
}

// MultiScheduler shards scheduling across N cells over a shared-state store.
// Each round it partitions the live jobs across cells, runs every cell's
// allocator and placer in parallel against a snapshot of the store, and
// serializes only the optimistic commits. Allocate and Place satisfy the
// sim.Policy seam, so a MultiScheduler drops into the simulator and the
// daemon wherever the single-engine kernels do.
//
// Methods are not safe for concurrent use with each other; the integration
// layers (sim.Run's interval loop, optimusd's mutex-held tick) already
// serialize them.
type MultiScheduler struct {
	opt Options

	tracer *obs.Tracer
	audit  *obs.AuditLog

	store   *Store
	bound   *cluster.Cluster
	nodeIdx map[string]int

	cells     []*cell
	assign    map[int]int     // job ID → cell
	weight    map[int]float64 // job ID → dominant-share weight
	lastAlloc map[int]core.Allocation

	out        map[int]core.Allocation
	seen       map[int]struct{}
	cellWeight []float64
	newJobs    []*core.JobInfo
	jobsBuf    []JobAssignment
	retryQ     []retryItem

	rounds int
	round  RoundStats

	retries     int
	borrowed    int
	dropped     int
	rebalances  int
	jobsMoved   int
	cellsReused int
}

type retryItem struct {
	cell *cell
	req  core.PlacementRequest
}

// New builds a MultiScheduler. The cluster is bound lazily on the first
// Place call, so the same scheduler value works across simulator runs that
// construct their clusters after the policy.
func New(opt Options) *MultiScheduler {
	opt.fillDefaults()
	ms := &MultiScheduler{
		opt:       opt,
		assign:    make(map[int]int),
		weight:    make(map[int]float64),
		lastAlloc: make(map[int]core.Allocation),
	}
	for i := 0; i < opt.Cells; i++ {
		ms.cells = append(ms.cells, &cell{
			id:    i,
			alloc: core.NewAllocSession(),
			place: core.NewPlaceState(),
		})
	}
	return ms
}

// Instrument attaches tracing and audit sinks. The audit log is
// mutex-guarded and attaches to every cell's kernels; the tracer's span
// nesting stack is single-threaded, so kernels only get it when there is one
// cell (the orchestrator-level spans are always emitted from the calling
// goroutine and are safe at any cell count).
func (ms *MultiScheduler) Instrument(tr *obs.Tracer, au *obs.AuditLog) {
	ms.tracer, ms.audit = tr, au
	for _, c := range ms.cells {
		c.alloc.St.Audit = au
		c.place.Audit = au
		if len(ms.cells) == 1 {
			c.alloc.St.Trace = tr
			c.place.Trace = tr
		}
	}
}

// BindRecorder points commit/conflict/migration counters at a run's metrics
// recorder (the sim.Policy.BindRecorder hook).
func (ms *MultiScheduler) BindRecorder(rec *metrics.Recorder) {
	ms.opt.Recorder = rec
}

// Allocate partitions jobs across cells, runs every cell's §4.1 allocator
// against an even capacity share, and merges the per-cell grants. The
// returned map is owned by the scheduler and overwritten on the next call
// (same contract as core.AllocState.Allocate).
func (ms *MultiScheduler) Allocate(jobs []*core.JobInfo, capacity cluster.Resources) map[int]core.Allocation {
	ms.rounds++
	ms.round = RoundStats{}
	sp := ms.tracer.Begin("cells-allocate")

	ms.assignJobs(jobs, capacity)
	if len(ms.cells) > 1 && ms.opt.RebalanceThreshold > 0 && ms.rounds%ms.opt.RebalanceEvery == 0 {
		ms.rebalance(jobs)
	}

	for _, c := range ms.cells {
		c.infos = c.infos[:0]
	}
	for _, in := range jobs {
		c := ms.cells[ms.assign[in.ID]]
		c.infos = append(c.infos, in)
	}

	// Each cell allocates against an even share of the round's capacity.
	// Scale(1/1) is exact for one cell, preserving single-engine results.
	share := capacity.Scale(1 / float64(len(ms.cells)))
	ms.runCells(func(c *cell) {
		start := time.Now()
		c.am = c.alloc.Allocate(c.infos, share)
		c.allocNs = time.Since(start).Nanoseconds()
	})

	if ms.out == nil {
		ms.out = make(map[int]core.Allocation, len(jobs))
	} else {
		clear(ms.out)
	}
	for _, c := range ms.cells {
		for id, a := range c.am {
			ms.out[id] = a
		}
	}
	for id, a := range ms.out {
		if a.Tasks() > 0 {
			ms.lastAlloc[id] = a
		}
	}

	if ms.tracer.Enabled() {
		ms.tracer.Annotate(sp, fmt.Sprintf("cells=%d jobs=%d moved=%d", len(ms.cells), len(jobs), ms.round.JobsMoved))
	}
	ms.tracer.End(sp)
	return ms.out
}

// jobWeight is a job's aggregate dominant share at its last granted
// allocation (falling back to the 1+1 seed): the load measure the
// assignment and rebalancing decisions balance across cells.
func jobWeight(in *core.JobInfo, last core.Allocation, capacity cluster.Resources) float64 {
	p, w := last.PS, last.Workers
	if p < 1 || w < 1 {
		p, w = 1, 1
	}
	demand := in.PSRes.Scale(float64(p)).Add(in.WorkerRes.Scale(float64(w)))
	s, _ := demand.DominantShare(capacity)
	if s < 1e-9 {
		s = 1e-9
	}
	return s
}

// assignJobs refreshes job weights, drops state for departed jobs, and
// assigns arrivals (in job-ID order, so results are independent of input
// order) to the least-loaded cell.
func (ms *MultiScheduler) assignJobs(jobs []*core.JobInfo, capacity cluster.Resources) {
	if ms.seen == nil {
		ms.seen = make(map[int]struct{}, len(jobs))
	} else {
		clear(ms.seen)
	}
	for _, in := range jobs {
		ms.seen[in.ID] = struct{}{}
		ms.weight[in.ID] = jobWeight(in, ms.lastAlloc[in.ID], capacity)
	}
	for id := range ms.assign {
		if _, ok := ms.seen[id]; !ok {
			delete(ms.assign, id)
			delete(ms.weight, id)
			delete(ms.lastAlloc, id)
		}
	}

	w := ms.cellWeight[:0]
	for range ms.cells {
		w = append(w, 0)
	}
	ms.newJobs = ms.newJobs[:0]
	for _, in := range jobs {
		if ci, ok := ms.assign[in.ID]; ok {
			w[ci] += ms.weight[in.ID]
		} else {
			ms.newJobs = append(ms.newJobs, in)
		}
	}
	sort.Slice(ms.newJobs, func(i, j int) bool { return ms.newJobs[i].ID < ms.newJobs[j].ID })
	for _, in := range ms.newJobs {
		best := 0
		for ci := 1; ci < len(w); ci++ {
			if w[ci] < w[best] {
				best = ci
			}
		}
		ms.assign[in.ID] = best
		w[best] += ms.weight[in.ID]
	}
	ms.cellWeight = w
}

// rebalance migrates jobs between cells when the dominant-share gap exceeds
// the threshold, then refreshes the per-cell weight totals.
func (ms *MultiScheduler) rebalance(jobs []*core.JobInfo) {
	buf := ms.jobsBuf[:0]
	for _, in := range jobs {
		buf = append(buf, JobAssignment{Job: in.ID, Cell: ms.assign[in.ID], Weight: ms.weight[in.ID]})
	}
	ms.jobsBuf = buf
	moves := PlanRebalance(buf, len(ms.cells), ms.opt.RebalanceThreshold)
	for _, mv := range moves {
		ms.assign[mv.Job] = mv.To
		ms.cellWeight[mv.From] -= ms.weight[mv.Job]
		ms.cellWeight[mv.To] += ms.weight[mv.Job]
	}
	if len(moves) > 0 {
		ms.round.JobsMoved += len(moves)
		ms.jobsMoved += len(moves)
		ms.rebalances++
		if ms.opt.Recorder != nil {
			ms.opt.Recorder.AddCellJobsMoved(len(moves))
		}
		ms.opt.Flight.Record("cells", obs.SevInfo, "rebalanced",
			obs.KI("moved", int64(len(moves))), obs.KI("cells", int64(len(ms.cells))))
	}
}

// bind (re)builds the store and per-cell replica clusters whenever Place
// sees a new cluster value.
func (ms *MultiScheduler) bind(cl *cluster.Cluster) {
	if ms.bound == cl && ms.store != nil && ms.store.Len() == cl.Len() {
		return
	}
	ms.bound = cl
	ms.store = NewStore(cl)
	ms.nodeIdx = make(map[string]int, cl.Len())
	for i, n := range cl.Nodes() {
		ms.nodeIdx[n.ID] = i
	}
	n := len(ms.cells)
	for ci, c := range ms.cells {
		full := cluster.New()
		var part *cluster.Cluster
		if n > 1 {
			part = cluster.New()
		}
		for i, node := range cl.Nodes() {
			rep := cluster.NewNode(node.ID, node.Capacity)
			if err := full.AddNode(rep); err != nil {
				panic("cells: duplicate node ID in cluster: " + node.ID)
			}
			if n > 1 && i%n == ci {
				if err := part.AddNode(rep); err != nil {
					panic("cells: duplicate node ID in cluster: " + node.ID)
				}
			}
		}
		if n == 1 {
			part = full
		}
		c.full, c.part = full, part
		// A new cluster binding invalidates every cached compute result.
		c.havePrev = false
	}
}

// rebuildReplicas loads the cell's snapshot into its private replica
// cluster. Task counts are not reconstructed — the placer never reads them.
func (c *cell) rebuildReplicas() {
	for i, n := range c.full.Nodes() {
		n.Reset()
		if u := c.snap[i].Used; !u.IsZero() {
			if err := n.Allocate(u); err != nil {
				panic("cells: snapshot usage exceeds node capacity: " + err.Error())
			}
		}
	}
}

// runCells executes fn once per cell, in parallel unless there is a single
// cell or Sequential is set. Cells touch only their own state plus the
// mutex-guarded store and audit log, so the fan-out is race-free; all
// cross-cell arbitration happens afterwards on the calling goroutine.
func (ms *MultiScheduler) runCells(fn func(c *cell)) {
	if len(ms.cells) == 1 || ms.opt.Sequential {
		for _, c := range ms.cells {
			fn(c)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range ms.cells {
		wg.Add(1)
		go func(c *cell) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

// Place runs the sharded placement round: snapshot, parallel per-cell
// placement on each cell's stripe (with a whole-cluster borrow pass for
// jobs the stripe cannot host), then a sequential optimistic-commit sweep in
// cell order. Conflicted jobs re-place against fresh snapshots up to
// MaxCommitRetries times. The returned map is caller-owned; unplaced holds
// job IDs that found no feasible placement (same contract as
// core.PlaceState.Place).
func (ms *MultiScheduler) Place(reqs []core.PlacementRequest, cl *cluster.Cluster) (map[int]core.Placement, []int) {
	ms.bind(cl)
	sp := ms.tracer.Begin("cells-place")
	ms.store.BeginRound(cl)

	for _, c := range ms.cells {
		c.reqs = c.reqs[:0]
		c.unplaced = c.unplaced[:0]
		c.dropped = c.dropped[:0]
		c.placements = nil
		if c.borrowed == nil {
			c.borrowed = make(map[int]bool)
		} else {
			clear(c.borrowed)
		}
	}
	for _, r := range reqs {
		ci, ok := ms.assign[r.JobID]
		if !ok {
			// Place without a prior Allocate (defensive): deterministic
			// assignment by job ID.
			ci = r.JobID % len(ms.cells)
			if ci < 0 {
				ci = -ci
			}
			ms.assign[r.JobID] = ci
		}
		c := ms.cells[ci]
		c.reqs = append(c.reqs, r)
	}

	// Compute phase: each cell places against its snapshot, preferring its
	// own stripe and borrowing from the whole-cluster view for the rest. A
	// cell whose requests and snapshot usage are value-identical to the
	// previous round reuses its cached result — the kernel is a deterministic
	// pure function of exactly those inputs — and skips the replica rebuild
	// and placement search (the commit sweep below still replays its grants,
	// because the store is reset every round).
	ms.runCells(func(c *cell) {
		c.reused = false
		if len(c.reqs) == 0 {
			c.havePrev = false
			return
		}
		start := time.Now()
		c.snap = ms.store.Snapshot(c.snap)
		if c.canReuse() {
			c.placements = c.lastPlaced
			c.unplaced = append(c.unplaced[:0], c.lastUnplaced...)
			for _, id := range c.lastBorrowed {
				c.borrowed[id] = true
			}
			c.reused = true
			c.placeNs = time.Since(start).Nanoseconds()
			return
		}
		c.rebuildReplicas()
		pls, unp := c.place.Place(c.reqs, c.part)
		c.placements = pls
		c.unplaced = append(c.unplaced[:0], unp...)
		if len(ms.cells) > 1 && len(c.unplaced) > 0 {
			c.borrow()
		}
		c.saveRound()
		c.placeNs = time.Since(start).Nanoseconds()
	})
	for _, c := range ms.cells {
		if c.reused {
			ms.round.CellsReused++
			ms.cellsReused++
		}
	}

	// Commit phase: sequential, in cell order then request order — the
	// arbitration order is deterministic no matter how the compute phase's
	// goroutines interleaved.
	var commits, conflicts, avoided, retries, borrowed int
	csp := ms.tracer.Begin("cells-commit")
	placements := make(map[int]core.Placement, len(reqs))
	ms.retryQ = ms.retryQ[:0]
	for _, c := range ms.cells {
		for _, r := range c.reqs {
			pl, ok := c.placements[r.JobID]
			if !ok {
				continue
			}
			res := ms.commitAndApply(c, r, pl, cl)
			if res.OK {
				placements[r.JobID] = pl
				commits++
				if res.Stale {
					avoided++
				}
				if c.borrowed[r.JobID] {
					borrowed++
				}
			} else {
				conflicts++
				ms.retryQ = append(ms.retryQ, retryItem{cell: c, req: r})
			}
		}
	}
	if ms.tracer.Enabled() {
		ms.tracer.Annotate(csp, fmt.Sprintf("commits=%d conflicts=%d avoided=%d", commits, conflicts, avoided))
	}
	ms.tracer.End(csp)

	// Retry phase: conflicted jobs re-place one at a time against fresh
	// snapshots, with optional (off by default) exponential backoff.
	if len(ms.retryQ) > 0 {
		rsp := ms.tracer.Begin("cells-retry")
		for _, it := range ms.retryQ {
			pl, ok, attempts := ms.retryPlace(it.cell, it.req, cl)
			retries += attempts
			if ok {
				placements[it.req.JobID] = pl
				commits++
			} else {
				it.cell.dropped = append(it.cell.dropped, it.req.JobID)
			}
		}
		if ms.tracer.Enabled() {
			ms.tracer.Annotate(rsp, fmt.Sprintf("retried=%d attempts=%d", len(ms.retryQ), retries))
		}
		ms.tracer.End(rsp)
	}

	// Unplaced output preserves per-cell kernel order (for one cell this is
	// exactly the single-engine order the simulator's shrink-retry relies
	// on), with conflict-dropped jobs appended last.
	var unplaced []int
	for _, c := range ms.cells {
		for _, id := range c.unplaced {
			if _, ok := placements[id]; !ok {
				unplaced = append(unplaced, id)
			}
		}
		unplaced = append(unplaced, c.dropped...)
	}

	var droppedNow int
	for _, c := range ms.cells {
		droppedNow += len(c.dropped)
	}
	ms.round.Commits += commits
	ms.round.Conflicts += conflicts
	ms.round.Avoided += avoided
	ms.round.Retries += retries
	ms.round.Borrowed += borrowed
	ms.round.Dropped += droppedNow
	ms.retries += retries
	ms.borrowed += borrowed
	ms.dropped += droppedNow
	if rec := ms.opt.Recorder; rec != nil {
		rec.AddCellCommits(commits)
		rec.AddCellConflicts(conflicts)
		rec.AddCellConflictsAvoided(avoided)
		rec.AddCellRetries(retries)
	}
	if conflicts > 0 || droppedNow > 0 {
		ms.opt.Flight.Record("cells", obs.SevWarn, "commit conflicts",
			obs.KI("conflicts", int64(conflicts)), obs.KI("retries", int64(retries)),
			obs.KI("dropped", int64(droppedNow)), obs.KI("commits", int64(commits)))
	}

	if ms.tracer.Enabled() {
		ms.tracer.Annotate(sp, fmt.Sprintf("placed=%d unplaced=%d conflicts=%d", len(placements), len(unplaced), conflicts))
	}
	ms.tracer.End(sp)
	return placements, unplaced
}

// canReuse reports whether this round's compute inputs are value-identical
// to the previous round's, in which case the cached outputs are exactly what
// a recompute would produce. Store versions advance every round regardless
// of change, so the comparison is over request and usage VALUES.
func (c *cell) canReuse() bool {
	if !c.havePrev || len(c.reqs) != len(c.lastReqs) || len(c.snap) != len(c.lastUsed) {
		return false
	}
	for i := range c.reqs {
		if c.reqs[i] != c.lastReqs[i] {
			return false
		}
	}
	for i := range c.snap {
		if c.snap[i].Used != c.lastUsed[i] {
			return false
		}
	}
	return true
}

// saveRound records the compute phase's inputs and outputs for next round's
// canReuse check. It must run before the commit phase: retryPlace refreshes
// c.snap mid-round, and the saved usage must be the compute-time values.
func (c *cell) saveRound() {
	c.lastReqs = append(c.lastReqs[:0], c.reqs...)
	c.lastUsed = c.lastUsed[:0]
	for _, ns := range c.snap {
		c.lastUsed = append(c.lastUsed, ns.Used)
	}
	c.lastPlaced = c.placements
	c.lastUnplaced = append(c.lastUnplaced[:0], c.unplaced...)
	c.lastBorrowed = c.lastBorrowed[:0]
	for id, b := range c.borrowed {
		if b {
			c.lastBorrowed = append(c.lastBorrowed, id)
		}
	}
	c.havePrev = true
}

// borrow re-places the stripe's leftovers on the cell's whole-cluster
// replica. The replica already carries this cell's stripe placements (part
// shares full's nodes) plus every other cell's state as of the snapshot —
// the optimistic read the commit phase revalidates.
func (c *cell) borrow() {
	if c.reqAt == nil {
		c.reqAt = make(map[int]int, len(c.reqs))
	} else {
		clear(c.reqAt)
	}
	for i, r := range c.reqs {
		c.reqAt[r.JobID] = i
	}
	breqs := c.borrowReqs[:0]
	for _, id := range c.unplaced {
		breqs = append(breqs, c.reqs[c.reqAt[id]])
	}
	c.borrowReqs = breqs
	pls, unp := c.place.Place(breqs, c.full)
	for id, pl := range pls {
		c.placements[id] = pl
		c.borrowed[id] = true
	}
	c.unplaced = append(c.unplaced[:0], unp...)
}

// commitAndApply converts one placement into a version-stamped grant,
// commits it to the store, and on success mirrors it task-by-task onto the
// live cluster — exactly the order the single-engine placer applies its
// placements, so one-cell runs stay byte-identical.
func (ms *MultiScheduler) commitAndApply(c *cell, r core.PlacementRequest, pl core.Placement, cl *cluster.Cluster) CommitResult {
	g := &c.grant
	g.Job = r.JobID
	g.Nodes = g.Nodes[:0]
	g.Deltas = g.Deltas[:0]
	g.Versions = g.Versions[:0]
	for i, id := range pl.NodeIDs {
		ni := ms.nodeIdx[id]
		delta := r.PSRes.Scale(float64(pl.PSOnNode[i])).Add(r.WorkerRes.Scale(float64(pl.WorkersOnNode[i])))
		g.Nodes = append(g.Nodes, ni)
		g.Deltas = append(g.Deltas, delta)
		g.Versions = append(g.Versions, c.snap[ni].Version)
	}
	res := ms.store.Commit(*g)
	if res.OK {
		applyPlacement(r, pl, cl)
	}
	return res
}

// applyPlacement deploys a committed placement onto the live cluster,
// parameter servers first then workers per node (the single-engine
// commitPlacement order). The store validated the aggregate per-node delta,
// and every per-task prefix of a non-negative sum fits whenever the sum
// does, so failure here means the store and cluster disagree — a bug worth
// crashing on.
func applyPlacement(r core.PlacementRequest, pl core.Placement, cl *cluster.Cluster) {
	for i, id := range pl.NodeIDs {
		n := cl.Node(id)
		for t := 0; t < pl.PSOnNode[i]; t++ {
			if err := n.Allocate(r.PSRes); err != nil {
				panic("cells: committed placement does not fit live cluster: " + err.Error())
			}
		}
		for t := 0; t < pl.WorkersOnNode[i]; t++ {
			if err := n.Allocate(r.WorkerRes); err != nil {
				panic("cells: committed placement does not fit live cluster: " + err.Error())
			}
		}
	}
}

// retryPlace re-places one conflicted request against fresh snapshots until
// a commit lands or the retry budget runs out. Returns the placement, a
// success flag, and the number of attempts consumed.
func (ms *MultiScheduler) retryPlace(c *cell, r core.PlacementRequest, cl *cluster.Cluster) (core.Placement, bool, int) {
	backoff := ms.opt.ConflictBackoff
	for attempt := 1; attempt <= ms.opt.MaxCommitRetries; attempt++ {
		if attempt > 1 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		c.snap = ms.store.Snapshot(c.snap)
		c.rebuildReplicas()
		c.retryReq = append(c.retryReq[:0], r)
		pls, unp := c.place.Place(c.retryReq, c.full)
		if len(unp) > 0 {
			return core.Placement{}, false, attempt
		}
		pl := pls[r.JobID]
		if res := ms.commitAndApply(c, r, pl, cl); res.OK {
			return pl, true, attempt
		}
	}
	return core.Placement{}, false, ms.opt.MaxCommitRetries
}

// LastRound returns the commit/conflict/migration outcomes of the most
// recent scheduling round.
func (ms *MultiScheduler) LastRound() RoundStats { return ms.round }

// Stats snapshots the cumulative multi-scheduler state. Not safe to call
// concurrently with Allocate/Place; optimusd serializes both under its
// daemon mutex.
func (ms *MultiScheduler) Stats() Stats {
	st := Stats{
		Cells:       len(ms.cells),
		Rounds:      ms.rounds,
		Retries:     ms.retries,
		Borrowed:    ms.borrowed,
		Dropped:     ms.dropped,
		Rebalances:  ms.rebalances,
		JobsMoved:   ms.jobsMoved,
		CellsReused: ms.cellsReused,
	}
	if ms.store != nil {
		st.Commits, st.Conflicts, st.ConflictsAvoided = ms.store.Counters()
	}
	for ci, c := range ms.cells {
		cs := CellStats{
			Cell:    ci,
			Jobs:    len(c.infos),
			AllocMs: float64(c.allocNs) / 1e6,
			PlaceMs: float64(c.placeNs) / 1e6,
		}
		if ci < len(ms.cellWeight) {
			cs.Weight = ms.cellWeight[ci]
		}
		if c.part != nil {
			cs.Nodes = c.part.Len()
		}
		st.PerCell = append(st.PerCell, cs)
	}
	return st
}

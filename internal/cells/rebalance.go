package cells

import "sort"

// JobAssignment is one job's current cell and load weight (its aggregate
// dominant share at its last allocation), the rebalancer's input.
type JobAssignment struct {
	Job    int
	Cell   int
	Weight float64
}

// Move migrates one job between cells.
type Move struct {
	Job  int
	From int
	To   int
}

// PlanRebalance computes the job migrations that bring the gap between the
// heaviest and lightest cells' aggregate weights within threshold, or as
// close as the job granularity allows. It is a pure function of its inputs
// (the slice is copied, not mutated) and fully deterministic: jobs are
// considered in job-ID order and cell ties break toward the lowest index.
//
// Each move transfers a job of weight 0 < w < gap from the heaviest cell to
// the lightest, picking the w closest to gap/2. Such a move shrinks the sum
// of squared cell weights by 2w(gap−w) > 0, so the plan cannot cycle and
// terminates; when every job weight is below the threshold a qualifying move
// exists whenever the gap exceeds it, so the plan converges below threshold.
// With lumpier jobs the plan stops at the best achievable spread instead of
// oscillating.
func PlanRebalance(jobs []JobAssignment, cells int, threshold float64) []Move {
	if cells < 2 || len(jobs) == 0 || threshold < 0 {
		return nil
	}
	js := append([]JobAssignment(nil), jobs...)
	sort.Slice(js, func(i, j int) bool { return js[i].Job < js[j].Job })

	weights := make([]float64, cells)
	for i := range js {
		if js[i].Cell < 0 || js[i].Cell >= cells {
			js[i].Cell = 0
		}
		weights[js[i].Cell] += js[i].Weight
	}

	var moves []Move
	maxMoves := 64 * len(js)
	for len(moves) < maxMoves {
		hi, lo := 0, 0
		for ci := 1; ci < cells; ci++ {
			if weights[ci] > weights[hi] {
				hi = ci
			}
			if weights[ci] < weights[lo] {
				lo = ci
			}
		}
		gap := weights[hi] - weights[lo]
		if gap <= threshold {
			break
		}
		// The ideal transfer halves the gap; any 0 < w < gap strictly
		// reduces the spread.
		best, bestDist := -1, 0.0
		for i := range js {
			if js[i].Cell != hi {
				continue
			}
			w := js[i].Weight
			if w <= 0 || w >= gap {
				continue
			}
			d := w - gap/2
			if d < 0 {
				d = -d
			}
			if best == -1 || d < bestDist {
				best, bestDist = i, d
			}
		}
		if best == -1 {
			break // nothing movable without inverting the imbalance
		}
		moves = append(moves, Move{Job: js[best].Job, From: hi, To: lo})
		weights[hi] -= js[best].Weight
		weights[lo] += js[best].Weight
		js[best].Cell = lo
	}
	return moves
}

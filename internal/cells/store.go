// Package cells is the sharded shared-state multi-scheduler of ROADMAP item
// #1: the cluster is partitioned into N cells, each running its own §4.1
// allocator and §4.2 placer session against a read-only snapshot of a shared
// node-state store, then committing grants through an optimistic
// conflict-aware commit path (arktos-style: version-stamped node state,
// revalidation on stale reads, retry on conflict with bounded backoff). A
// cross-cell rebalancer migrates jobs between cells when their aggregate
// dominant shares drift apart.
//
// The design point is the one the shared-state scheduling literature
// (Omega/arktos, see SNIPPETS.md) converges on: compute in parallel against
// possibly-stale snapshots, serialize only the cheap commit step, and treat
// "my snapshot was stale but the grant still fits" as a committed success
// rather than a conflict — conflicts only occur when a foreign grant
// actually consumed the resources a cell planned on.
package cells

import (
	"sync"

	"optimus/internal/cluster"
)

// NodeState is one node's entry in the shared-state store: its capacity, the
// committed usage, and a version stamp bumped on every mutation. Cells read
// NodeState snapshots and carry the versions into their commit requests.
type NodeState struct {
	ID       string
	Capacity cluster.Resources
	Used     cluster.Resources
	Version  uint64
}

// Store is the shared cluster state all cells commit against. It is safe for
// concurrent use; snapshot and commit each take one short critical section,
// so the sequential commit path stays cheap even with many cells computing
// in parallel.
type Store struct {
	mu    sync.Mutex
	nodes []NodeState
	byID  map[string]int

	commits   uint64
	conflicts uint64
	avoided   uint64 // stale-version commits that revalidated and succeeded
}

// NewStore builds a store mirroring the cluster's nodes (insertion order is
// preserved, so store index i is cluster node i).
func NewStore(c *cluster.Cluster) *Store {
	s := &Store{
		nodes: make([]NodeState, c.Len()),
		byID:  make(map[string]int, c.Len()),
	}
	for i, n := range c.Nodes() {
		s.nodes[i] = NodeState{ID: n.ID, Capacity: n.Capacity, Used: n.Used(), Version: 1}
		s.byID[n.ID] = i
	}
	return s
}

// Len returns the number of nodes tracked.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}

// Index returns the store index of a node ID, or -1.
func (s *Store) Index(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byID[id]; ok {
		return i
	}
	return -1
}

// BeginRound resynchronizes the store's committed usage from the live
// cluster and bumps every version. The scheduling loops rebuild cluster
// allocations from scratch each interval (ResetAll + reservations for down
// or lent nodes), so the store must re-anchor on that base before cells
// snapshot it.
func (s *Store) BeginRound(c *cluster.Cluster) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range c.Nodes() {
		s.nodes[i].Used = n.Used()
		s.nodes[i].Version++
	}
}

// Snapshot copies the current node states into buf (grown as needed) and
// returns it. The copy is the cell's read-only view for one compute phase.
func (s *Store) Snapshot(buf []NodeState) []NodeState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(buf) < len(s.nodes) {
		buf = make([]NodeState, len(s.nodes))
	}
	buf = buf[:len(s.nodes)]
	copy(buf, s.nodes)
	return buf
}

// Grant is the unit of optimistic commit: one job's placement expressed as
// per-node resource deltas plus the versions the deltas were computed
// against. Nodes are store indices.
type Grant struct {
	Job      int
	Nodes    []int
	Deltas   []cluster.Resources
	Versions []uint64
}

// CommitResult reports the outcome of one Commit.
type CommitResult struct {
	// OK is true when every delta was applied atomically.
	OK bool
	// Stale is true when at least one node's version had moved since the
	// grant's snapshot. OK && Stale is the "conflict avoided" case: the read
	// was stale but revalidation against live state still fit.
	Stale bool
	// ConflictNode names the first node that failed revalidation (OK false).
	ConflictNode string
}

// Commit atomically applies a grant: every touched node is revalidated
// against live capacity (whether or not its version moved — the store never
// over-commits, even on malformed grants), and the grant is applied only if
// every delta fits. A version mismatch alone is not a conflict: arktos-style
// conflict avoidance re-checks the fit against current state and lets the
// commit through when the competing grants happened to be disjoint. On
// conflict nothing is mutated and the caller re-places against a fresh
// snapshot.
func (s *Store) Commit(g Grant) CommitResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res CommitResult
	for i, ni := range g.Nodes {
		if ni < 0 || ni >= len(s.nodes) {
			res.ConflictNode = "?"
			s.conflicts++
			return res
		}
		ns := &s.nodes[ni]
		if i < len(g.Versions) && g.Versions[i] != ns.Version {
			res.Stale = true
		}
		if !g.Deltas[i].Fits(ns.Capacity.Sub(ns.Used)) {
			res.ConflictNode = ns.ID
			s.conflicts++
			return res
		}
	}
	for i, ni := range g.Nodes {
		ns := &s.nodes[ni]
		ns.Used = ns.Used.Add(g.Deltas[i])
		ns.Version++
	}
	res.OK = true
	s.commits++
	if res.Stale {
		s.avoided++
	}
	return res
}

// Counters returns the cumulative commit outcomes: successful commits,
// conflicts (revalidation failures), and conflicts avoided (stale reads that
// still committed).
func (s *Store) Counters() (commits, conflicts, avoided uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.conflicts, s.avoided
}

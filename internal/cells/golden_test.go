package cells

import (
	"math/rand"
	"reflect"
	"testing"

	"optimus/internal/cluster"
	"optimus/internal/core"
)

// jobParams is the serializable seed of one synthetic job, materialized
// separately for each engine so neither shares Speed closures or JobInfo
// pointers with the other.
type jobParams struct {
	id         int
	workerRes  cluster.Resources
	psRes      cluster.Resources
	remaining  float64
	a, b       float64
	maxWorkers int
	maxPS      int
}

func randomParams(rng *rand.Rand, id int) jobParams {
	return jobParams{
		id: id,
		workerRes: cluster.Resources{
			cluster.CPU:    1 + float64(rng.Intn(4)),
			cluster.Memory: 2 + float64(rng.Intn(8)),
		},
		psRes: cluster.Resources{
			cluster.CPU:    1 + float64(rng.Intn(3)),
			cluster.Memory: 2 + float64(rng.Intn(6)),
		},
		remaining:  100 + rng.Float64()*5000,
		a:          0.5 + rng.Float64(),
		b:          0.5 + rng.Float64()*2,
		maxWorkers: 4 + rng.Intn(12),
		maxPS:      4 + rng.Intn(12),
	}
}

func (p jobParams) info() *core.JobInfo {
	a, b := p.a, p.b
	return &core.JobInfo{
		ID:            p.id,
		WorkerRes:     p.workerRes,
		PSRes:         p.psRes,
		RemainingWork: p.remaining,
		MaxWorkers:    p.maxWorkers,
		MaxPS:         p.maxPS,
		Speed: func(ps, w int) float64 {
			return a * float64(ps*w) / (b*float64(ps) + float64(w))
		},
	}
}

func materialize(params []jobParams) []*core.JobInfo {
	out := make([]*core.JobInfo, len(params))
	for i, p := range params {
		out[i] = p.info()
	}
	return out
}

func buildReqs(jobs []*core.JobInfo, alloc map[int]core.Allocation) []core.PlacementRequest {
	var reqs []core.PlacementRequest
	for _, in := range jobs {
		a := alloc[in.ID]
		if a.PS > 0 && a.Workers > 0 {
			reqs = append(reqs, core.PlacementRequest{
				JobID: in.ID, Alloc: a, WorkerRes: in.WorkerRes, PSRes: in.PSRes,
			})
		}
	}
	return reqs
}

// TestGoldenOneCellEquivalence is the acceptance-criteria pin: a 1-cell
// sharded scheduler must produce byte-identical allocations, placements,
// unplaced lists, and node states to the single-engine core kernels, across
// many seeds and multiple warm-state rounds (including the single-request
// re-place the simulator's shrink-retry loop issues).
func TestGoldenOneCellEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 4 + rng.Intn(16)
		nNodes := 4 + rng.Intn(10)
		nodeCap := cluster.Resources{
			cluster.CPU:    8 + float64(rng.Intn(24)),
			cluster.Memory: 32 + float64(rng.Intn(64)),
		}
		c1 := cluster.Uniform(nNodes, nodeCap)
		c2 := cluster.Uniform(nNodes, nodeCap)

		alloc := core.NewAllocState()
		place := core.NewPlaceState()
		ms := New(Options{Cells: 1})

		params := make([]jobParams, nJobs)
		for i := range params {
			params[i] = randomParams(rng, i+1)
		}
		nextID := nJobs + 1

		for round := 0; round < 3; round++ {
			jobs1 := materialize(params)
			jobs2 := materialize(params)
			capacity := c1.Capacity()

			a1 := alloc.Allocate(jobs1, capacity)
			a2 := ms.Allocate(jobs2, capacity)
			if !reflect.DeepEqual(a1, a2) {
				t.Fatalf("seed %d round %d: allocations diverge\nsingle: %v\ncells:  %v", seed, round, a1, a2)
			}

			c1.ResetAll()
			c2.ResetAll()
			reqs1 := buildReqs(jobs1, a1)
			reqs2 := buildReqs(jobs2, a2)
			p1, u1 := place.Place(reqs1, c1)
			p2, u2 := ms.Place(reqs2, c2)
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("seed %d round %d: placements diverge\nsingle: %v\ncells:  %v", seed, round, p1, p2)
			}
			if !reflect.DeepEqual(u1, u2) {
				t.Fatalf("seed %d round %d: unplaced diverge: %v vs %v", seed, round, u1, u2)
			}
			compareClusters(t, seed, round, c1, c2)

			// The simulator's shrink-retry path: re-place the first unplaced
			// job shrunk to its 1+1 seed, against the partially-used cluster.
			if len(u1) > 0 {
				id := u1[0]
				var base core.PlacementRequest
				for _, r := range reqs1 {
					if r.JobID == id {
						base = r
						break
					}
				}
				base.Alloc = core.Allocation{PS: 1, Workers: 1}
				rp1, ru1 := place.Place([]core.PlacementRequest{base}, c1)
				rp2, ru2 := ms.Place([]core.PlacementRequest{base}, c2)
				if !reflect.DeepEqual(rp1, rp2) || !reflect.DeepEqual(ru1, ru2) {
					t.Fatalf("seed %d round %d: shrink-retry diverges: %v/%v vs %v/%v",
						seed, round, rp1, ru1, rp2, ru2)
				}
				compareClusters(t, seed, round, c1, c2)
			}

			// Churn the job set: some jobs finish, new ones arrive.
			kept := params[:0]
			for _, p := range params {
				if (p.id+round)%4 != 0 {
					kept = append(kept, p)
				}
			}
			params = kept
			for i := 0; i < 2; i++ {
				params = append(params, randomParams(rng, nextID))
				nextID++
			}
		}
	}
}

func compareClusters(t *testing.T, seed int64, round int, c1, c2 *cluster.Cluster) {
	t.Helper()
	n1, n2 := c1.Nodes(), c2.Nodes()
	for i := range n1 {
		if n1[i].Used() != n2[i].Used() {
			t.Fatalf("seed %d round %d: node %s usage diverges: %v vs %v",
				seed, round, n1[i].ID, n1[i].Used(), n2[i].Used())
		}
		if n1[i].TaskCount() != n2[i].TaskCount() {
			t.Fatalf("seed %d round %d: node %s task count diverges: %d vs %d",
				seed, round, n1[i].ID, n1[i].TaskCount(), n2[i].TaskCount())
		}
	}
}

// Package trace persists workloads and simulation results as CSV, so
// experiments are replayable and results can be inspected with standard
// tooling — the reproduction's stand-in for the paper's collected testbed
// traces ("the simulator uses the following from the traces collected from
// our testbed experiments", §6.1).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"optimus/internal/metrics"
	"optimus/internal/speedfit"
	"optimus/internal/workload"
)

var jobHeader = []string{"id", "model", "mode", "threshold", "arrival", "downscale"}

// WriteJobs serializes a job trace.
func WriteJobs(w io.Writer, jobs []workload.JobSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jobHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, j := range jobs {
		if j.Model == nil {
			return fmt.Errorf("trace: job %d has no model", j.ID)
		}
		rec := []string{
			strconv.Itoa(j.ID),
			j.Model.Name,
			j.Mode.String(),
			strconv.FormatFloat(j.Threshold, 'g', -1, 64),
			strconv.FormatFloat(j.Arrival, 'g', -1, 64),
			strconv.FormatFloat(j.Downscale, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write job %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadJobs parses a job trace, resolving model names against the zoo.
func ReadJobs(r io.Reader) ([]workload.JobSpec, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	if !equalHeader(records[0], jobHeader) {
		return nil, fmt.Errorf("trace: bad header %v (want %v)", records[0], jobHeader)
	}
	jobs := make([]workload.JobSpec, 0, len(records)-1)
	for i, rec := range records[1:] {
		line := i + 2
		if len(rec) != len(jobHeader) {
			return nil, fmt.Errorf("trace: line %d: %d fields, want %d", line, len(rec), len(jobHeader))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad id %q", line, rec[0])
		}
		model := workload.ZooByName(rec[1])
		if model == nil {
			return nil, fmt.Errorf("trace: line %d: unknown model %q", line, rec[1])
		}
		var mode speedfit.Mode
		switch rec[2] {
		case "async":
			mode = speedfit.Async
		case "sync":
			mode = speedfit.Sync
		default:
			return nil, fmt.Errorf("trace: line %d: unknown mode %q", line, rec[2])
		}
		threshold, err := strconv.ParseFloat(rec[3], 64)
		if err != nil || threshold <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad threshold %q", line, rec[3])
		}
		arrival, err := strconv.ParseFloat(rec[4], 64)
		if err != nil || arrival < 0 {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", line, rec[4])
		}
		downscale, err := strconv.ParseFloat(rec[5], 64)
		if err != nil || downscale < 0 || downscale > 1 {
			return nil, fmt.Errorf("trace: line %d: bad downscale %q", line, rec[5])
		}
		jobs = append(jobs, workload.JobSpec{
			ID: id, Model: model, Mode: mode,
			Threshold: threshold, Arrival: arrival, Downscale: downscale,
		})
	}
	return jobs, nil
}

var timelineHeader = []string{
	"time", "running_tasks", "running_jobs", "waiting_jobs",
	"worker_util", "ps_util", "cluster_share",
}

// WriteTimeline serializes per-interval statistics (the Fig-14 series).
func WriteTimeline(w io.Writer, tl []metrics.IntervalStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, s := range tl {
		rec := []string{
			strconv.FormatFloat(s.Time, 'g', -1, 64),
			strconv.Itoa(s.RunningTasks),
			strconv.Itoa(s.RunningJobs),
			strconv.Itoa(s.WaitingJobs),
			strconv.FormatFloat(s.WorkerUtil, 'g', -1, 64),
			strconv.FormatFloat(s.PSUtil, 'g', -1, 64),
			strconv.FormatFloat(s.ClusterShare, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write snapshot: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

var jctHeader = []string{"job_id", "jct_seconds"}

// WriteJCTs serializes per-job completion times.
func WriteJCTs(w io.Writer, jcts map[int]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(jctHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	ids := make([]int, 0, len(jcts))
	for id := range jcts {
		ids = append(ids, id)
	}
	sortInts(ids)
	for _, id := range ids {
		rec := []string{strconv.Itoa(id), strconv.FormatFloat(jcts[id], 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write jct: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func equalHeader(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

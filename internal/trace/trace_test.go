package trace

import (
	"bytes"
	"strings"
	"testing"

	"optimus/internal/metrics"
	"optimus/internal/workload"
)

func TestJobsRoundTrip(t *testing.T) {
	jobs := workload.Generate(workload.GenConfig{N: 20, Horizon: 5000, Seed: 3, Downscale: 0.05})
	var buf bytes.Buffer
	if err := WriteJobs(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("read %d jobs, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], got[i]
		if a.ID != b.ID || a.Model.Name != b.Model.Name || a.Mode != b.Mode ||
			a.Threshold != b.Threshold || a.Arrival != b.Arrival || a.Downscale != b.Downscale {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestWriteJobsNilModel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJobs(&buf, []workload.JobSpec{{ID: 1}}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestReadJobsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "a,b,c\n",
		"short row":     "id,model,mode,threshold,arrival,downscale\n1,resnet-50\n",
		"bad id":        "id,model,mode,threshold,arrival,downscale\nx,resnet-50,sync,0.01,0,1\n",
		"unknown model": "id,model,mode,threshold,arrival,downscale\n1,nope,sync,0.01,0,1\n",
		"bad mode":      "id,model,mode,threshold,arrival,downscale\n1,resnet-50,half,0.01,0,1\n",
		"bad threshold": "id,model,mode,threshold,arrival,downscale\n1,resnet-50,sync,-1,0,1\n",
		"bad arrival":   "id,model,mode,threshold,arrival,downscale\n1,resnet-50,sync,0.01,-5,1\n",
		"bad downscale": "id,model,mode,threshold,arrival,downscale\n1,resnet-50,sync,0.01,0,2\n",
	}
	for name, input := range cases {
		if _, err := ReadJobs(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	tl := []metrics.IntervalStats{
		{Time: 0, RunningTasks: 5, RunningJobs: 2, WaitingJobs: 1, WorkerUtil: 0.5, PSUtil: 0.2, ClusterShare: 0.7},
		{Time: 600, RunningTasks: 8},
	}
	if err := WriteTimeline(&buf, tl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,5,2,1,0.5,0.2,0.7") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteJCTsSorted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJCTs(&buf, map[int]float64{3: 30, 1: 10, 2: 20}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{"job_id,jct_seconds", "1,10", "2,20", "3,30"}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

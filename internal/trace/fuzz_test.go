package trace

import (
	"bytes"
	"strings"
	"testing"

	"optimus/internal/workload"
)

// FuzzReadJobs hardens the CSV trace parser: arbitrary input must never
// panic, and every accepted trace must survive a write→read round trip.
func FuzzReadJobs(f *testing.F) {
	var seed bytes.Buffer
	jobs := workload.Generate(workload.GenConfig{N: 5, Horizon: 100, Seed: 1, Downscale: 0.5})
	if err := WriteJobs(&seed, jobs); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("id,model,mode,threshold,arrival,downscale\n1,resnet-50,sync,0.01,5,1\n")
	f.Add("id,model,mode\n")
	f.Add("")
	f.Add("id,model,mode,threshold,arrival,downscale\nx,y,z,a,b,c\n")
	f.Add("id,model,mode,threshold,arrival,downscale\n1,resnet-50,sync,nan,5,1\n")

	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ReadJobs(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteJobs(&buf, parsed); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		again, err := ReadJobs(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(parsed) {
			t.Fatalf("round trip changed job count: %d → %d", len(parsed), len(again))
		}
	})
}

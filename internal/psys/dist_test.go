package psys

import (
	"sync"
	"testing"
	"time"

	"optimus/internal/speedfit"
)

func TestModelFromSpec(t *testing.T) {
	cases := map[string]int{
		"linreg:20": 20,
		"logreg:5":  5,
		"mlp:4x8":   4*8 + 8 + 8 + 1,
	}
	for spec, dim := range cases {
		m, err := ModelFromSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if m.Dim() != dim {
			t.Errorf("%s: Dim = %d, want %d", spec, m.Dim(), dim)
		}
	}
	for _, bad := range []string{"", "linreg:0", "resnet", "mlp:4", "mlp:0x3"} {
		if _, err := ModelFromSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestDistSpecValidation(t *testing.T) {
	good := DistSpec{
		ModelSpec: "linreg:8", Mode: speedfit.Sync,
		Workers: 2, Servers: 2, BatchSize: 16, LR: 0.1, Examples: 100,
	}
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Workers = 0
	if err := bad.validate(); err == nil {
		t.Error("zero workers accepted")
	}
	bad = good
	bad.ModelSpec = "nope"
	if err := bad.validate(); err == nil {
		t.Error("bad model spec accepted")
	}
}

// Full multi-"process" run over real TCP: coordinator, 2 servers, 3 workers,
// all talking through sockets exactly as separate OS processes would.
func TestDistributedTrainingEndToEnd(t *testing.T) {
	coord, err := StartCoordinator(DistSpec{
		ModelSpec: "linreg:16", Mode: speedfit.Sync,
		Workers: 3, Servers: 2, BatchSize: 16, LR: 0.1,
		Seed: 5, Examples: 600, Noise: 0.01,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var servers []*DistServer
	for i := 0; i < 2; i++ {
		s, err := RunDistServer(coord.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		servers = append(servers, s)
	}
	if got := coord.Status().ServersReady; got != 2 {
		t.Fatalf("ServersReady = %d, want 2", got)
	}

	var wg sync.WaitGroup
	losses := make([]float64, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := RunDistWorker(coord.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer w.Close()
			losses[i], errs[i] = w.Steps(40)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	st := coord.Status()
	if st.WorkersJoined != 3 {
		t.Errorf("WorkersJoined = %d, want 3", st.WorkersJoined)
	}
	if st.Reports != 3*40 {
		t.Errorf("Reports = %d, want 120", st.Reports)
	}
	// Losses must have converged to a small value (noise floor ~1e-4).
	for i, l := range losses {
		if l > 0.05 {
			t.Errorf("worker %d final batch loss %g, want < 0.05", i, l)
		}
	}
	if len(st.MeanComputeNS) != 3 {
		t.Errorf("compute stats for %d workers, want 3", len(st.MeanComputeNS))
	}
}

func TestDistributedSlotLimits(t *testing.T) {
	coord, err := StartCoordinator(DistSpec{
		ModelSpec: "linreg:4", Mode: speedfit.Async,
		Workers: 1, Servers: 1, BatchSize: 8, LR: 0.1,
		Seed: 1, Examples: 50,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	s1, err := RunDistServer(coord.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, err := RunDistServer(coord.Addr(), "127.0.0.1:0"); err == nil {
		t.Error("second server accepted for a 1-server job")
	}
	w1, err := RunDistWorker(coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	if _, err := RunDistWorker(coord.Addr()); err == nil {
		t.Error("second worker accepted for a 1-worker job")
	}
}

func TestDistributedWorkerBlocksUntilServersReady(t *testing.T) {
	coord, err := StartCoordinator(DistSpec{
		ModelSpec: "linreg:4", Mode: speedfit.Async,
		Workers: 1, Servers: 1, BatchSize: 8, LR: 0.1,
		Seed: 1, Examples: 50,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	type result struct {
		w   *DistWorker
		err error
	}
	done := make(chan result, 1)
	go func() {
		w, err := RunDistWorker(coord.Addr())
		done <- result{w, err}
	}()
	select {
	case <-done:
		t.Fatal("worker registered before any server was up")
	case <-time.After(30 * time.Millisecond):
	}
	s, err := RunDistServer(coord.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		r.w.Close()
	case <-time.After(3 * time.Second):
		t.Fatal("worker never unblocked after server came up")
	}
}

func TestCoordinatorCloseUnblocksWaiters(t *testing.T) {
	coord, err := StartCoordinator(DistSpec{
		ModelSpec: "linreg:4", Mode: speedfit.Async,
		Workers: 1, Servers: 1, BatchSize: 8, LR: 0.1,
		Seed: 1, Examples: 50,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunDistWorker(coord.Addr())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	coord.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("worker registration succeeded on a closed coordinator")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("worker registration hung after coordinator close")
	}
}

func TestDistributedMatchesLocalJob(t *testing.T) {
	// The distributed run and the in-process job must implement the same
	// math: with identical spec the parameter trajectories agree.
	spec := DistSpec{
		ModelSpec: "linreg:8", Mode: speedfit.Sync,
		Workers: 2, Servers: 2, BatchSize: 100, LR: 0.1,
		Seed: 9, Examples: 200, Noise: 0,
	}
	coord, err := StartCoordinator(spec, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	for i := 0; i < 2; i++ {
		s, err := RunDistServer(coord.Addr(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
	}
	var wg sync.WaitGroup
	var distLoss [2]float64
	var derr [2]error
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := RunDistWorker(coord.Addr())
			if err != nil {
				derr[i] = err
				return
			}
			defer w.Close()
			distLoss[i], derr[i] = w.Steps(60)
		}(i)
	}
	wg.Wait()
	for _, err := range derr {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Loss must be substantially reduced — a proxy for agreement, since the
	// local job uses different seeded init.
	if distLoss[0] > 0.1 || distLoss[1] > 0.1 {
		t.Errorf("distributed losses %v, want < 0.1", distLoss)
	}
}

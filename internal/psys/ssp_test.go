package psys

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSSPValidation(t *testing.T) {
	if _, err := NewSSPCoordinator(-1, []int{0}); err == nil {
		t.Error("negative slack accepted")
	}
	if _, err := NewSSPCoordinator(1, nil); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := NewSSPCoordinator(1, []int{0, 0}); err == nil {
		t.Error("duplicate workers accepted")
	}
	c, err := NewSSPCoordinator(1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Advance(99); err == nil {
		t.Error("unknown worker accepted")
	}
}

func TestSSPBoundsStaleness(t *testing.T) {
	const slack = 2
	c, err := NewSSPCoordinator(slack, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var maxSeen int64
	var wg sync.WaitGroup
	run := func(id int, steps int, delay time.Duration) {
		defer wg.Done()
		for s := 0; s < steps; s++ {
			if delay > 0 {
				time.Sleep(delay)
			}
			if err := c.Advance(id); err != nil {
				return
			}
			if st := int64(c.Staleness()); st > atomic.LoadInt64(&maxSeen) {
				atomic.StoreInt64(&maxSeen, st)
			}
		}
	}
	wg.Add(2)
	go run(0, 50, 0)                    // fast worker
	go run(1, 50, 500*time.Microsecond) // slow worker
	wg.Wait()
	if got := atomic.LoadInt64(&maxSeen); got > slack+1 {
		t.Errorf("observed staleness %d, bound %d (+1 transient)", got, slack)
	}
}

func TestSSPZeroSlackIsLockstep(t *testing.T) {
	c, err := NewSSPCoordinator(0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Worker 0 advances once, then must block until worker 1 advances.
	done := make(chan error, 1)
	go func() {
		if err := c.Advance(0); err != nil { // round 1; slowest=0 → 1-0 > 0 → blocks
			done <- err
			return
		}
		done <- nil
	}()
	select {
	case <-done:
		t.Fatal("fast worker was not blocked at slack 0")
	case <-time.After(30 * time.Millisecond):
	}
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("fast worker still blocked after slow caught up")
	}
}

func TestSSPRemoveUnblocks(t *testing.T) {
	c, err := NewSSPCoordinator(0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() { done <- c.Advance(0) }()
	time.Sleep(10 * time.Millisecond)
	c.Remove(1) // the laggard leaves (replaced); waiter must wake
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Advance still blocked after Remove")
	}
}

func TestSSPCloseUnblocks(t *testing.T) {
	c, err := NewSSPCoordinator(0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Advance(0) }()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("got %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Advance still blocked after Close")
	}
}

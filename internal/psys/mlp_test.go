package psys

import (
	"math"
	"math/rand"
	"testing"

	"optimus/internal/speedfit"
)

func TestMLPDimAndBlocks(t *testing.T) {
	m := MLP{In: 8, Hidden: 16}
	if got, want := m.Dim(), 16*8+16+16+1; got != want {
		t.Errorf("Dim = %d, want %d", got, want)
	}
	var sum int
	for _, b := range m.BlockSizes() {
		sum += b
	}
	if sum != m.Dim() {
		t.Errorf("blocks sum to %d, want %d", sum, m.Dim())
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

// Gradient check against central finite differences.
func TestMLPGradientMatchesFiniteDifference(t *testing.T) {
	m := MLP{In: 4, Hidden: 3}
	r := rand.New(rand.NewSource(9))
	params := make([]float64, m.Dim())
	for i := range params {
		params[i] = r.NormFloat64() * 0.5
	}
	batch := Batch{}
	for i := 0; i < 6; i++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = r.NormFloat64()
		}
		batch.X = append(batch.X, x)
		batch.Y = append(batch.Y, r.NormFloat64())
	}
	grad := make([]float64, m.Dim())
	m.Gradient(params, grad, batch)

	const h = 1e-6
	for i := 0; i < m.Dim(); i += 3 { // spot-check a third of the coordinates
		orig := params[i]
		params[i] = orig + h
		up := m.Loss(params, batch)
		params[i] = orig - h
		down := m.Loss(params, batch)
		params[i] = orig
		fd := (up - down) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Fatalf("grad[%d] = %g, finite difference %g", i, grad[i], fd)
		}
	}
}

func TestMLPTrainsOnPS(t *testing.T) {
	// A nonlinear target the linear models cannot fit: y = tanh-ish of x.
	r := rand.New(rand.NewSource(17))
	batch := Batch{}
	for i := 0; i < 600; i++ {
		x := []float64{r.NormFloat64(), r.NormFloat64()}
		batch.X = append(batch.X, x)
		batch.Y = append(batch.Y, math.Tanh(2*x[0])-math.Tanh(x[1]))
	}
	model := MLP{In: 2, Hidden: 8}
	j, err := StartJob(JobConfig{
		Model: model, Data: batch, Mode: speedfit.Sync,
		Workers: 2, Servers: 2, BatchSize: 32, LR: 0.1,
		Momentum:   0.9,
		BlockSizes: model.BlockSizes(), // one block per layer, as frameworks do
		Seed:       17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	before, _ := j.Loss()
	if _, err := j.RunSteps(400); err != nil {
		t.Fatal(err)
	}
	after, _ := j.Loss()
	if after >= before*0.2 {
		t.Errorf("MLP loss %g → %g; expected ≥5x reduction", before, after)
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	data, _, err := SyntheticRegression(600, 24, 0.01, 21)
	if err != nil {
		t.Fatal(err)
	}
	lossAfter := func(mu float64) float64 {
		j, err := StartJob(JobConfig{
			Model: LinearRegression{Features: 24}, Data: data,
			Mode: speedfit.Sync, Workers: 2, Servers: 2,
			BatchSize: 32, LR: 0.02, Momentum: mu, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Stop()
		if _, err := j.RunSteps(60); err != nil {
			t.Fatal(err)
		}
		l, err := j.Loss()
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	plain := lossAfter(0)
	withMomentum := lossAfter(0.9)
	if withMomentum >= plain {
		t.Errorf("momentum loss %g not below plain SGD %g after equal steps",
			withMomentum, plain)
	}
}

func TestMomentumValidation(t *testing.T) {
	data, _, _ := SyntheticRegression(50, 4, 0, 1)
	_, err := StartJob(JobConfig{
		Model: LinearRegression{Features: 4}, Data: data,
		Mode: speedfit.Sync, Workers: 1, Servers: 1,
		BatchSize: 8, LR: 0.1, Momentum: 1.0,
	})
	if err == nil {
		t.Error("momentum 1.0 accepted")
	}
	s, err := NewServer(speedfit.Sync, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMomentum(-0.1); err == nil {
		t.Error("negative momentum accepted")
	}
	if err := s.SetMomentum(0.5); err != nil {
		t.Errorf("valid momentum rejected: %v", err)
	}
}

package psys

// ServerConn is a worker's connection to one parameter server. The two
// implementations are the zero-cost in-process conn and the framed TCP conn —
// both expose identical push/pull semantics so engines and workers are
// transport-agnostic.
type ServerConn interface {
	// Push delivers a gradient for a block.
	Push(blockID int, grad []float64) error
	// Pull returns the block's parameters at version ≥ minVersion.
	Pull(blockID int, minVersion int) (params []float64, version int, err error)
	// Close releases the connection.
	Close() error
}

// blockPuller is the optional zero-allocation fast path of a ServerConn:
// Pull with a caller-provided buffer. Both built-in transports implement it;
// workers type-assert for it and fall back to Pull otherwise, so external
// ServerConn implementations keep working unchanged.
type blockPuller interface {
	PullInto(blockID, minVersion int, dst []float64) (params []float64, version int, err error)
}

// localConn is the in-process transport: direct method calls on the server.
type localConn struct {
	s *Server
}

// LocalConn connects to a server within the same process.
func LocalConn(s *Server) ServerConn { return &localConn{s: s} }

func (c *localConn) Push(blockID int, grad []float64) error { return c.s.Push(blockID, grad) }

func (c *localConn) Pull(blockID int, minVersion int) ([]float64, int, error) {
	return c.s.Pull(blockID, minVersion)
}

func (c *localConn) PullInto(blockID, minVersion int, dst []float64) ([]float64, int, error) {
	return c.s.PullInto(blockID, minVersion, dst)
}

func (c *localConn) Close() error { return nil }

package psys

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
)

// ErrCheckpointFailed is returned by SaveCheckpoint when a chaos injection
// armed via Job.FailNextCheckpoint eats the write.
var ErrCheckpointFailed = errors.New("psys: checkpoint write failed (injected)")

// Checkpoint is the serialized training state of §5.4's checkpoint-based
// elastic scaling: model identity, parameters and progress.
type Checkpoint struct {
	ModelName string
	Dim       int
	Params    []float64
	Rounds    int
}

// SaveCheckpoint captures the job's current parameters to a file (the HDFS
// write of §5.4).
func (j *Job) SaveCheckpoint(path string) error {
	j.mu.Lock()
	if j.ckptFail {
		j.ckptFail = false
		j.mu.Unlock()
		return ErrCheckpointFailed
	}
	j.mu.Unlock()
	params, err := j.Params()
	if err != nil {
		return fmt.Errorf("psys: checkpoint gather: %w", err)
	}
	ck := Checkpoint{
		ModelName: j.cfg.Model.Name(),
		Dim:       len(params),
		Params:    params,
		Rounds:    j.Rounds(),
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("psys: checkpoint create: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		return fmt.Errorf("psys: checkpoint encode: %w", err)
	}
	return f.Sync()
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("psys: checkpoint open: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return Checkpoint{}, fmt.Errorf("psys: checkpoint decode: %w", err)
	}
	if ck.Dim != len(ck.Params) {
		return Checkpoint{}, fmt.Errorf("psys: corrupt checkpoint: dim %d, %d params",
			ck.Dim, len(ck.Params))
	}
	return ck, nil
}

// Scale performs §5.4's elastic resize: checkpoint the job, stop it, and
// restart it with the new worker/server counts from the checkpoint. The
// returned job continues training from the saved parameters; data chunks are
// reassigned to the new workers (§5.1).
func Scale(j *Job, newWorkers, newServers int, checkpointPath string) (*Job, error) {
	if newWorkers <= 0 || newServers <= 0 {
		return nil, fmt.Errorf("psys: invalid scale target %dw/%dp", newWorkers, newServers)
	}
	if err := j.SaveCheckpoint(checkpointPath); err != nil {
		return nil, err
	}
	ck, err := LoadCheckpoint(checkpointPath)
	if err != nil {
		return nil, err
	}
	if ck.ModelName != j.cfg.Model.Name() || ck.Dim != j.cfg.Model.Dim() {
		return nil, fmt.Errorf("psys: checkpoint mismatch: %s/%d vs %s/%d",
			ck.ModelName, ck.Dim, j.cfg.Model.Name(), j.cfg.Model.Dim())
	}
	j.Stop()

	cfg := j.cfg
	cfg.Workers = newWorkers
	cfg.Servers = newServers
	cfg.InitParams = ck.Params
	cfg.BlockSizes = nil   // relayout for the new server count
	cfg.WorkerDelays = nil // replaced workers are healthy
	nj, err := StartJob(cfg)
	if err != nil {
		return nil, err
	}
	nj.mu.Lock()
	nj.rounds = ck.Rounds
	nj.mu.Unlock()
	return nj, nil
}
